// Command worldgen synthesizes an experiment world and describes it:
// country composition, AS counts, access-capacity mix and the Table I
// testbed placement. Useful for eyeballing a population before committing
// to a long run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"napawine/internal/report"
	"napawine/internal/topology"
	"napawine/internal/world"
)

func main() {
	var (
		peers = flag.Int("peers", 500, "background peer count")
		seed  = flag.Int64("seed", 1, "world seed")
		fast  = flag.Float64("highbw", 0.70, "high-bandwidth fraction of background peers")
	)
	flag.Parse()

	w, err := world.Build(world.Spec{
		Seed:              *seed,
		Peers:             *peers,
		HighBwFraction:    *fast,
		NATFraction:       0.25,
		FWFraction:        0.05,
		SubnetsPerAS:      3,
		ProbeASBackground: 6,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}

	fmt.Printf("world seed=%d: %d probes, %d background peers, %d ASes, %d subnets\n\n",
		*seed, len(w.Probes), len(w.Background), len(w.Topo.ASes()), w.Topo.Subnets())

	byCC := map[topology.CC]int{}
	fastN, natN, fwN := 0, 0, 0
	for _, bg := range w.Background {
		byCC[bg.Host.Country]++
		if bg.Link.HighBandwidth() {
			fastN++
		}
		if bg.Link.NAT {
			natN++
		}
		if bg.Link.Firewall {
			fwN++
		}
	}
	ccs := make([]string, 0, len(byCC))
	for cc := range byCC {
		ccs = append(ccs, string(cc))
	}
	sort.Slice(ccs, func(i, j int) bool { return byCC[topology.CC(ccs[i])] > byCC[topology.CC(ccs[j])] })
	t := report.NewTable("Background population by country", "CC", "Peers", "Share%")
	for _, cc := range ccs {
		n := byCC[topology.CC(cc)]
		t.Add(cc, fmt.Sprintf("%d", n), report.Pct(100*float64(n)/float64(len(w.Background))))
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
	fmt.Printf("\naccess mix: %.1f%% high-bw, %.1f%% NAT, %.1f%% firewalled\n",
		100*float64(fastN)/float64(len(w.Background)),
		100*float64(natN)/float64(len(w.Background)),
		100*float64(fwN)/float64(len(w.Background)))

	t2 := report.NewTable("\nTestbed placement", "Probe", "AS", "CC", "Access", "Subnet")
	for _, p := range w.Probes {
		t2.Add(p.Label, p.ASName, string(p.Host.Country), p.Link.Spec.String(),
			fmt.Sprintf("%d", p.Host.Subnet))
	}
	if err := t2.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
}
