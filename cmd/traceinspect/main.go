// Command traceinspect summarizes or converts a binary probe trace
// produced by the napawine simulator.
//
// Usage:
//
//	traceinspect -trace probe.nwt            # header + per-peer summary
//	traceinspect -trace probe.nwt -csv out.csv
//	traceinspect -trace probe.nwt -top 5     # top contributors only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"napawine/internal/analysis"
	"napawine/internal/packet"
	"napawine/internal/report"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "binary trace file (required)")
		csvPath   = flag.String("csv", "", "also convert the trace to CSV at this path")
		top       = flag.Int("top", 10, "show the top-N peers by video bytes")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "traceinspect: -trace is required")
		os.Exit(2)
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := packet.NewReader(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s\n  probe: %v\n  label: %q\n", *tracePath, r.Probe(), r.Label())

	var recs []packet.Record
	agg := analysis.New(r.Probe(), analysis.DefaultConfig())
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatal(err)
		}
		agg.Consume(rec)
		if *csvPath != "" {
			recs = append(recs, rec)
		}
	}
	fmt.Printf("  records: %d, distinct peers: %d\n\n", agg.Records(), agg.PeerCount())

	t := report.NewTable(fmt.Sprintf("Top %d peers by video bytes", *top),
		"Peer", "Video RX", "Video TX", "Total RX", "Total TX", "MinIPG", "Hops")
	for i, addr := range agg.PeerAddrs() {
		if i >= *top {
			break
		}
		p := agg.Peer(addr)
		hops := "-"
		if p.Hops() >= 0 {
			hops = fmt.Sprintf("%d", p.Hops())
		}
		ipg := "-"
		if p.MinIPG > 0 {
			ipg = p.MinIPG.String()
		}
		t.Add(addr.String(),
			fmt.Sprintf("%d", p.VideoDown), fmt.Sprintf("%d", p.VideoUp),
			fmt.Sprintf("%d", p.TotalDown), fmt.Sprintf("%d", p.TotalUp),
			ipg, hops)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := packet.WriteCSV(out, recs); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d records to %s\n", len(recs), *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinspect:", err)
	os.Exit(1)
}
