// Command napawine runs the paper's experiments and regenerates its tables
// and figures.
//
// Usage:
//
//	napawine -exp table2                 # Table II across all three apps
//	napawine -exp table4 -duration 10m   # the headline awareness table
//	napawine -exp all -apps SopCast      # everything, one app
//	napawine -exp hopsweep               # A2 ablation: HOP threshold sweep
//	napawine -exp table1                 # testbed inventory (no simulation)
//	napawine -seeds 5 -workers 4         # replicated sweep, tables with ±stderr
//
// Deterministic: the same -seed regenerates identical tables; the same
// -seed/-seeds pair regenerates identical sweep tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"napawine"
	"napawine/internal/report"
	"napawine/internal/world"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig1|fig2|hopsweep|all")
		appsFlag = flag.String("apps", "PPLive,SopCast,TVAnts", "comma-separated application list")
		seed     = flag.Int64("seed", 1, "simulation seed (sweep: first trial seed)")
		seeds    = flag.Int("seeds", 1, "trial seeds per app; >1 runs a replicated sweep with ±stderr tables")
		duration = flag.Duration("duration", 5*time.Minute, "virtual experiment duration")
		factor   = flag.Float64("scale", 1.0, "background population scale factor")
		workers  = flag.Int("workers", 0, "parallel experiments (0 = GOMAXPROCS)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *exp == "table1" {
		renderTableI(*csv)
		return
	}

	wanted := map[string]bool{}
	appList := []string{}
	for _, a := range strings.Split(*appsFlag, ",") {
		a = strings.TrimSpace(a)
		if wanted[a] {
			continue
		}
		wanted[a] = true
		appList = append(appList, a)
	}

	if *seeds > 1 {
		runSweep(appList, *seed, *seeds, *duration, *factor, *workers, *exp, *csv)
		return
	}

	fmt.Fprintf(os.Stderr, "running %s for %v (seed %d, scale %.2f)...\n",
		*appsFlag, *duration, *seed, *factor)
	start := time.Now()
	all, err := napawine.RunAll(napawine.Scale{
		Seed: *seed, Duration: *duration, PeerFactor: *factor, Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}
	results := all[:0:0]
	for _, r := range all {
		if wanted[r.App] {
			results = append(results, r)
		}
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no results for apps %q", *appsFlag))
	}
	var events uint64
	for _, r := range results {
		events += r.Events
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d simulation events)\n\n",
		time.Since(start).Round(time.Millisecond), events)

	render := func(t *napawine.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	show := func(name string) bool { return *exp == name || *exp == "all" }
	if show("table2") {
		render(napawine.TableII(results))
	}
	if show("table3") {
		render(napawine.TableIII(results))
	}
	if show("table4") {
		render(napawine.TableIV(results))
		for _, r := range results {
			fmt.Printf("%s: measured hop median %.0f, mean continuity %.3f\n",
				r.App, r.HopMedianMeasured, r.MeanContinuity)
		}
		fmt.Println()
	}
	if show("fig1") {
		if err := napawine.RenderFigure1(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if show("fig2") {
		if err := napawine.RenderFigure2(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if show("hopsweep") {
		for _, r := range results {
			t, err := napawine.HopSweep(r, 15, 23)
			if err != nil {
				fatal(err)
			}
			render(t)
		}
	}
}

// runSweep executes the replicated multi-seed battery and renders the
// aggregated (mean ± stderr) tables. Figures and the hop sweep are
// single-run reductions and are not replicated here.
func runSweep(appList []string, seed int64, trials int, duration time.Duration, factor float64, workers int, exp string, csv bool) {
	if exp == "fig1" || exp == "fig2" || exp == "hopsweep" {
		fatal(fmt.Errorf("-exp %s is a single-run reduction; drop -seeds or use -seeds 1", exp))
	}
	fmt.Fprintf(os.Stderr, "sweeping %s × %d seeds for %v (base seed %d, scale %.2f)...\n",
		strings.Join(appList, ","), trials, duration, seed, factor)
	start := time.Now()
	res, err := napawine.Sweep(napawine.SweepSpec{
		Apps:       appList,
		BaseSeed:   seed,
		Trials:     trials,
		Duration:   duration,
		PeerFactor: factor,
		Workers:    workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d runs)\n\n",
		time.Since(start).Round(time.Millisecond), len(appList)*trials)

	render := func(t *napawine.Table) {
		var err error
		if csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}
	show := func(name string) bool { return exp == name || exp == "all" }
	if show("table2") {
		render(res.TableII())
	}
	if show("table3") {
		render(res.TableIII())
	}
	if show("table4") {
		render(res.TableIV())
		render(res.HealthTable())
	}
}

func renderTableI(csv bool) {
	t := report.NewTable("TABLE I — NAPA-WINE testbed",
		"Site", "CC", "AS", "High-bw hosts", "Home probes", "NAT", "FW")
	for _, s := range world.TableI() {
		homes := make([]string, 0, len(s.Homes))
		nat := 0
		fw := 0
		for _, h := range s.Homes {
			homes = append(homes, h.Access.Spec.String())
			if h.Access.NAT {
				nat++
			}
			if h.Access.Firewall {
				fw++
			}
		}
		nat += s.HighBwNAT
		fwMark := fmt.Sprintf("%d", fw)
		if s.HighBwFW {
			fwMark += "+site"
		}
		t.Add(s.Name, string(s.Country), s.ASLabel,
			fmt.Sprintf("%d", s.HighBw), strings.Join(homes, " "),
			fmt.Sprintf("%d", nat), fwMark)
	}
	var err error
	if csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "napawine:", err)
	os.Exit(1)
}
