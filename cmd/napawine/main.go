// Command napawine runs the paper's experiments and regenerates its tables
// and figures.
//
// Usage:
//
//	napawine -exp table2                 # Table II across all three apps
//	napawine -exp table4 -duration 10m   # the headline awareness table
//	napawine -exp all -apps SopCast      # everything, one app
//	napawine -exp hopsweep               # A2 ablation: HOP threshold sweep
//	napawine -exp table1                 # testbed inventory (no simulation)
//	napawine -seeds 5 -workers 4         # replicated sweep, tables with ±stderr
//	napawine -scenario flashcrowd        # inject a workload scenario + time series
//	napawine -scenario-file f.json       # inject a file-authored workload scenario
//	napawine -scenario-list              # show the scenario registry
//	napawine -strategy rarest            # swap the chunk-scheduling strategy
//	napawine -strategy-list              # show the strategy registry
//
// Deterministic: the same -seed regenerates identical tables; the same
// -seed/-seeds pair regenerates identical sweep tables — scenario or not,
// and regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"napawine"
	"napawine/internal/report"
	"napawine/internal/world"
)

// validExps lists the accepted -exp values, in help order.
var validExps = []string{"table1", "table2", "table3", "table4", "fig1", "fig2", "hopsweep", "all"}

// validateArgs rejects unknown -exp, application, -scenario and -strategy
// values with an error that lists the valid choices, before any simulation
// starts. A typo must be a loud usage error, never a silently empty run.
// scenarioFile is only checked for flag compatibility here; the file itself
// is loaded (and fails loudly) in main.
func validateArgs(exp string, appList []string, scenarioName, scenarioFile, strategyName string) error {
	ok := false
	for _, v := range validExps {
		if exp == v {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown -exp %q (valid: %s)", exp, strings.Join(validExps, ", "))
	}
	if len(appList) == 0 {
		return fmt.Errorf("empty -apps list (valid: %s)", strings.Join(napawine.Apps(), ", "))
	}
	for _, a := range appList {
		if _, err := napawine.ProfileOf(a); err != nil {
			return fmt.Errorf("unknown app %q (valid: %s)", a, strings.Join(napawine.Apps(), ", "))
		}
	}
	if scenarioName != "" && scenarioFile != "" {
		return fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	}
	if scenarioName != "" {
		if _, err := napawine.ScenarioByName(scenarioName); err != nil {
			return fmt.Errorf("unknown -scenario %q (valid: %s)",
				scenarioName, strings.Join(napawine.ScenarioNames(), ", "))
		}
		if exp == "table1" {
			return fmt.Errorf("-scenario runs no simulation under -exp table1 (the testbed inventory is static)")
		}
	}
	if scenarioFile != "" && exp == "table1" {
		return fmt.Errorf("-scenario-file runs no simulation under -exp table1 (the testbed inventory is static)")
	}
	if strategyName != "" {
		if _, err := napawine.StrategyByName(strategyName); err != nil {
			return fmt.Errorf("unknown -strategy %q (valid: %s)",
				strategyName, strings.Join(napawine.StrategyNames(), ", "))
		}
		if exp == "table1" {
			return fmt.Errorf("-strategy runs no simulation under -exp table1 (the testbed inventory is static)")
		}
	}
	return nil
}

// parseApps splits and dedups the -apps flag, dropping empty entries.
func parseApps(appsFlag string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range strings.Split(appsFlag, ",") {
		a = strings.TrimSpace(a)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// scenarioList renders the registry for -scenario-list.
func scenarioList() string {
	var b strings.Builder
	b.WriteString("registered scenarios:\n")
	for _, name := range napawine.ScenarioNames() {
		s, err := napawine.ScenarioByName(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %-11s %s\n", name, s.Description)
	}
	return b.String()
}

// strategyList renders the registry for -strategy-list.
func strategyList() string {
	var b strings.Builder
	b.WriteString("registered chunk strategies:\n")
	for _, name := range napawine.StrategyNames() {
		fmt.Fprintf(&b, "  %-14s %s\n", name, napawine.StrategyDescription(name))
	}
	return b.String()
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(validExps, "|"))
		appsFlag  = flag.String("apps", "PPLive,SopCast,TVAnts", "comma-separated application list")
		seed      = flag.Int64("seed", 1, "simulation seed (sweep: first trial seed)")
		seeds     = flag.Int("seeds", 1, "trial seeds per app; >1 runs a replicated sweep with ±stderr tables")
		duration  = flag.Duration("duration", 5*time.Minute, "virtual experiment duration")
		factor    = flag.Float64("scale", 1.0, "background population scale factor")
		workers   = flag.Int("workers", 0, "parallel experiments (0 = GOMAXPROCS)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		scn       = flag.String("scenario", "", "workload scenario to inject (see -scenario-list)")
		scnFile   = flag.String("scenario-file", "", "JSON scenario file to inject (see README: authoring scenario files)")
		listScens = flag.Bool("scenario-list", false, "list registered workload scenarios and exit")
		strat     = flag.String("strategy", "", "chunk-scheduling strategy (see -strategy-list)")
		listStrat = flag.Bool("strategy-list", false, "list registered chunk strategies and exit")
	)
	flag.Parse()

	if *listScens {
		fmt.Print(scenarioList())
		return
	}
	if *listStrat {
		fmt.Print(strategyList())
		return
	}

	appList := parseApps(*appsFlag)
	if err := validateArgs(*exp, appList, *scn, *scnFile, *strat); err != nil {
		fmt.Fprintln(os.Stderr, "napawine:", err)
		flag.Usage()
		os.Exit(2)
	}

	// Load the file spec up front: a broken file must die as a usage error
	// before any simulation starts, on both the single-run and sweep paths.
	var fileSpec *napawine.ScenarioSpec
	if *scnFile != "" {
		var err error
		fileSpec, err = napawine.LoadScenarioFile(*scnFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			os.Exit(2)
		}
	}

	if *exp == "table1" {
		renderTableI(*csv)
		return
	}

	if *seeds > 1 {
		runSweep(appList, *seed, *seeds, *duration, *factor, *workers, *exp, *csv, *scn, fileSpec, *strat)
		return
	}

	fmt.Fprintf(os.Stderr, "running %s for %v (seed %d, scale %.2f)...\n",
		strings.Join(appList, ","), *duration, *seed, *factor)
	if *scn != "" {
		fmt.Fprintf(os.Stderr, "scenario: %s\n", *scn)
	}
	if fileSpec != nil {
		fmt.Fprintf(os.Stderr, "scenario: %s (from %s)\n", fileSpec.Name, *scnFile)
	}
	if *strat != "" {
		fmt.Fprintf(os.Stderr, "strategy: %s\n", *strat)
	}
	start := time.Now()
	results, err := napawine.RunAll(napawine.Scale{
		Seed: *seed, Duration: *duration, PeerFactor: *factor, Workers: *workers,
		Scenario: *scn, ScenarioSpec: fileSpec, Strategy: *strat, Apps: appList,
	})
	if err != nil {
		fatal(err)
	}
	var events uint64
	for _, r := range results {
		events += r.Events
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d simulation events)\n\n",
		time.Since(start).Round(time.Millisecond), events)

	render := func(t *napawine.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	show := func(name string) bool { return *exp == name || *exp == "all" }
	if show("table2") {
		render(napawine.TableII(results))
	}
	if show("table3") {
		render(napawine.TableIII(results))
	}
	if show("table4") {
		render(napawine.TableIV(results))
		for _, r := range results {
			fmt.Printf("%s: measured hop median %.0f, mean continuity %.3f\n",
				r.App, r.HopMedianMeasured, r.MeanContinuity)
		}
		fmt.Println()
	}
	if show("fig1") {
		if err := napawine.RenderFigure1(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if show("fig2") {
		if err := napawine.RenderFigure2(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if show("hopsweep") {
		for _, r := range results {
			t, err := napawine.HopSweep(r, 15, 23)
			if err != nil {
				fatal(err)
			}
			render(t)
		}
	}
	if *scn != "" || fileSpec != nil {
		if series := napawine.SeriesTable(results); series != nil {
			render(series)
		}
	}
}

// runSweep executes the replicated multi-seed battery and renders the
// aggregated (mean ± stderr) tables. Figures and the hop sweep are
// single-run reductions and are not replicated here.
func runSweep(appList []string, seed int64, trials int, duration time.Duration, factor float64, workers int, exp string, csv bool, scn string, fileSpec *napawine.ScenarioSpec, strat string) {
	if exp == "fig1" || exp == "fig2" || exp == "hopsweep" {
		fatal(fmt.Errorf("-exp %s is a single-run reduction; drop -seeds or use -seeds 1", exp))
	}
	fmt.Fprintf(os.Stderr, "sweeping %s × %d seeds for %v (base seed %d, scale %.2f)...\n",
		strings.Join(appList, ","), trials, duration, seed, factor)
	if scn != "" {
		fmt.Fprintf(os.Stderr, "scenario: %s\n", scn)
	}
	if fileSpec != nil {
		fmt.Fprintf(os.Stderr, "scenario: %s (file spec)\n", fileSpec.Name)
	}
	if strat != "" {
		fmt.Fprintf(os.Stderr, "strategy: %s\n", strat)
	}
	start := time.Now()
	res, err := napawine.Sweep(napawine.SweepSpec{
		Apps:         appList,
		BaseSeed:     seed,
		Trials:       trials,
		Duration:     duration,
		PeerFactor:   factor,
		Workers:      workers,
		Scenario:     scn,
		ScenarioSpec: fileSpec,
		Strategy:     strat,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d runs)\n\n",
		time.Since(start).Round(time.Millisecond), len(appList)*trials)

	render := func(t *napawine.Table) {
		var err error
		if csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}
	show := func(name string) bool { return exp == name || exp == "all" }
	if show("table2") {
		render(res.TableII())
	}
	if show("table3") {
		render(res.TableIII())
	}
	if show("table4") {
		render(res.TableIV())
		render(res.HealthTable())
	}
	if scn != "" || fileSpec != nil {
		if series := res.SeriesTable(); series != nil {
			render(series)
		}
	}
}

func renderTableI(csv bool) {
	t := report.NewTable("TABLE I — NAPA-WINE testbed",
		"Site", "CC", "AS", "High-bw hosts", "Home probes", "NAT", "FW")
	for _, s := range world.TableI() {
		homes := make([]string, 0, len(s.Homes))
		nat := 0
		fw := 0
		for _, h := range s.Homes {
			homes = append(homes, h.Access.Spec.String())
			if h.Access.NAT {
				nat++
			}
			if h.Access.Firewall {
				fw++
			}
		}
		nat += s.HighBwNAT
		fwMark := fmt.Sprintf("%d", fw)
		if s.HighBwFW {
			fwMark += "+site"
		}
		t.Add(s.Name, string(s.Country), s.ASLabel,
			fmt.Sprintf("%d", s.HighBw), strings.Join(homes, " "),
			fmt.Sprintf("%d", nat), fwMark)
	}
	var err error
	if csv {
		err = t.RenderCSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "napawine:", err)
	os.Exit(1)
}
