// Command napawine runs the paper's experiments and regenerates its tables
// and figures.
//
// Usage:
//
//	napawine -exp table2                 # Table II across all three apps
//	napawine -exp table4 -duration 10m   # the headline awareness table
//	napawine -exp all -apps SopCast      # everything, one app
//	napawine -exp hopsweep               # A2 ablation: HOP threshold sweep
//	napawine -exp table1                 # testbed inventory (no simulation)
//	napawine -seeds 5 -workers 4         # replicated sweep, tables with ±stderr
//	napawine -scenario flashcrowd        # inject a workload scenario + time series
//	napawine -scenario-file f.json       # inject a file-authored workload scenario
//	napawine -scenario-list              # show the scenario registry
//	napawine -strategy rarest            # swap the chunk-scheduling strategy
//	napawine -strategy-list              # show the strategy registry
//	napawine -study strategy-comparison  # run a registered study grid
//	napawine -study-file s.json          # run a file-authored study grid
//	napawine -study-list                 # show the study registry
//	napawine -out tables.txt             # write tables to a file, not stdout
//	napawine -http localhost:8080        # live dashboard while the run executes
//	napawine -svg-out charts/            # write SVG chart artifacts
//	napawine -study X -listen :9000      # coordinate a distributed fleet
//	napawine -join host:9000             # join a fleet as a worker
//	napawine -study X -listen :0 -resume spool/  # checkpoint cells; restart resumes
//
// Deterministic: the same -seed regenerates identical tables; the same
// -seed/-seeds pair regenerates identical sweep and study tables — scenario
// or not, and regardless of -workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"napawine"
	"napawine/internal/dash"
	"napawine/internal/fleet"
	"napawine/internal/plot"
	"napawine/internal/report"
	"napawine/internal/world"
)

// validExps lists the accepted -exp values, in help order.
var validExps = []string{"table1", "table2", "table3", "table4", "fig1", "fig2", "hopsweep", "all"}

// validateArgs rejects unknown -exp, application, -scenario and -strategy
// values with an error that lists the valid choices, before any simulation
// starts. A typo must be a loud usage error, never a silently empty run.
// scenarioFile is only checked for flag compatibility here; the file itself
// is loaded (and fails loudly) in main.
func validateArgs(exp string, appList []string, scenarioName, scenarioFile, strategyName string) error {
	ok := false
	for _, v := range validExps {
		if exp == v {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown -exp %q (valid: %s)", exp, strings.Join(validExps, ", "))
	}
	if len(appList) == 0 {
		return fmt.Errorf("empty -apps list (valid: %s)", strings.Join(napawine.Apps(), ", "))
	}
	for _, a := range appList {
		if _, err := napawine.ProfileOf(a); err != nil {
			return fmt.Errorf("unknown app %q (valid: %s)", a, strings.Join(napawine.Apps(), ", "))
		}
	}
	if scenarioName != "" && scenarioFile != "" {
		return fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	}
	if scenarioName != "" {
		if _, err := napawine.ScenarioByName(scenarioName); err != nil {
			return fmt.Errorf("unknown -scenario %q (valid: %s)",
				scenarioName, strings.Join(napawine.ScenarioNames(), ", "))
		}
		if exp == "table1" {
			return fmt.Errorf("-scenario runs no simulation under -exp table1 (the testbed inventory is static)")
		}
	}
	if scenarioFile != "" && exp == "table1" {
		return fmt.Errorf("-scenario-file runs no simulation under -exp table1 (the testbed inventory is static)")
	}
	if strategyName != "" {
		// StrategyByName's own error lists the registry and the hybrid
		// grammar, so a parameterized typo gets the syntax it needs.
		if _, err := napawine.StrategyByName(strategyName); err != nil {
			return fmt.Errorf("bad -strategy: %w", err)
		}
		if exp == "table1" {
			return fmt.Errorf("-strategy runs no simulation under -exp table1 (the testbed inventory is static)")
		}
	}
	return nil
}

// validateStudyArgs rejects flag combinations that contradict a -study /
// -study-file run: a study defines its own axes, so the single-run
// scenario/strategy/experiment selectors must not be silently ignored.
// explicit reports which flags the user actually set on the command line.
func validateStudyArgs(studyName, studyFile string, explicit map[string]bool) error {
	if studyName != "" && studyFile != "" {
		return fmt.Errorf("-study and -study-file are mutually exclusive")
	}
	if studyName != "" {
		if _, err := napawine.StudyByName(studyName); err != nil {
			return fmt.Errorf("unknown -study %q (valid: %s)",
				studyName, strings.Join(napawine.StudyNames(), ", "))
		}
	}
	for _, f := range []string{"exp", "scenario", "scenario-file", "strategy"} {
		if explicit[f] {
			return fmt.Errorf("-%s does not apply to a study run (the study defines its own axes)", f)
		}
	}
	return nil
}

// fleetJoinFlags are the only flags a -join worker may set: everything else
// about the run — the study, its axes, shards, durations — comes from the
// coordinator, and a locally-set knob would be silently ignored.
var fleetJoinFlags = []string{"join", "workers", "cpuprofile", "memprofile"}

// validateFleetArgs rejects flag combinations that contradict a fleet run.
// A coordinator (-listen) needs a study to serve and takes no -workers (it
// runs no cells itself); a worker (-join) takes nothing but its concurrency
// budget and profiles; -resume and -lease-ttl only mean anything to a
// coordinator.
func validateFleetArgs(listen, join string, leaseTTL time.Duration, explicit map[string]bool) error {
	if listen != "" && join != "" {
		return fmt.Errorf("-listen and -join are mutually exclusive (a process is a coordinator or a worker, not both)")
	}
	if listen == "" {
		for _, f := range []string{"resume", "lease-ttl"} {
			if explicit[f] {
				return fmt.Errorf("-%s requires -listen (it configures the fleet coordinator)", f)
			}
		}
	} else {
		if !explicit["study"] && !explicit["study-file"] {
			return fmt.Errorf("-listen requires -study or -study-file (the coordinator serves a study grid)")
		}
		if explicit["workers"] {
			return fmt.Errorf("-workers does not apply to -listen (the coordinator runs no cells; each -join worker sets its own)")
		}
		if leaseTTL <= 0 {
			return fmt.Errorf("non-positive -lease-ttl %v", leaseTTL)
		}
	}
	if join != "" {
		allowed := map[string]bool{}
		for _, f := range fleetJoinFlags {
			allowed[f] = true
		}
		var bad []string
		for f := range explicit {
			if !allowed[f] {
				bad = append(bad, "-"+f)
			}
		}
		if len(bad) > 0 {
			sort.Strings(bad)
			return fmt.Errorf("%s does not apply to -join (the worker takes its study and settings from the coordinator)",
				strings.Join(bad, ", "))
		}
	}
	return nil
}

// parseApps splits and dedups the -apps flag, dropping empty entries.
func parseApps(appsFlag string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range strings.Split(appsFlag, ",") {
		a = strings.TrimSpace(a)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// scenarioList renders the registry for -scenario-list.
func scenarioList() string {
	var b strings.Builder
	b.WriteString("registered scenarios:\n")
	for _, name := range napawine.ScenarioNames() {
		s, err := napawine.ScenarioByName(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %-11s %s\n", name, s.Description)
	}
	return b.String()
}

// strategyList renders the registry for -strategy-list: every registered
// name with its description, plus the parameterized hybrid family grammar.
func strategyList() string {
	var b strings.Builder
	b.WriteString("registered chunk strategies:\n")
	for _, name := range napawine.StrategyNames() {
		fmt.Fprintf(&b, "  %-14s %s\n", name, napawine.StrategyDescription(name))
	}
	b.WriteString("parameterized family:\n")
	fmt.Fprintf(&b, "  %s\n", napawine.HybridGrammar)
	return b.String()
}

// studyList renders the registry for -study-list.
func studyList() string {
	var b strings.Builder
	b.WriteString("registered studies:\n")
	for _, name := range napawine.StudyNames() {
		st, err := napawine.StudyByName(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "  %-20s %s (%d runs)\n", name, st.Description, st.Runs())
	}
	return b.String()
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(validExps, "|"))
		appsFlag  = flag.String("apps", "PPLive,SopCast,TVAnts", "comma-separated application list")
		seed      = flag.Int64("seed", 1, "simulation seed (sweep/study: first trial seed)")
		seeds     = flag.Int("seeds", 1, "trial seeds per app; >1 runs a replicated sweep with ±stderr tables")
		duration  = flag.Duration("duration", 5*time.Minute, "virtual experiment duration")
		factor    = flag.Float64("scale", 1.0, "background population scale factor")
		peers     = flag.Int("peers", 0, "absolute background population (overrides -scale; 0 = per-app default)")
		leanLed   = flag.Bool("lean-ledger", false, "O(1)-memory ground-truth accounting (auto at very large -peers)")
		workers   = flag.Int("workers", 0, "parallel experiments (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "parallel shard engines per run, partitioned by AS (0 or 1 = serial engine)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outPath   = flag.String("out", "", "write tables/CSV to this file instead of stdout")
		scn       = flag.String("scenario", "", "workload scenario to inject (see -scenario-list)")
		scnFile   = flag.String("scenario-file", "", "JSON scenario file to inject (see README: authoring scenario files)")
		listScens = flag.Bool("scenario-list", false, "list registered workload scenarios and exit")
		strat     = flag.String("strategy", "", "chunk-scheduling strategy: registered name or hybrid:k=v,... (see -strategy-list)")
		queueDep  = flag.Int("queue-depth", 0, "bound every peer's uplink queue at this many chunks, tail-dropping beyond it (0 = unbounded, congestion off)")
		listStrat = flag.Bool("strategy-list", false, "list registered chunk strategies and exit")
		studyName = flag.String("study", "", "registered study grid to run (see -study-list)")
		studyFile = flag.String("study-file", "", "JSON study file to run (see README: running studies)")
		listStudy = flag.Bool("study-list", false, "list registered studies and exit")
		httpAddr  = flag.String("http", "", "serve a live dashboard on this address while the run executes (port 0 picks a free one; see README: watching a study live)")
		httpWait  = flag.Duration("http-linger", 0, "keep the -http dashboard serving this long after the run finishes")
		svgOut    = flag.String("svg-out", "", "write SVG chart artifacts into this directory")
		listen    = flag.String("listen", "", "coordinate a distributed fleet: serve the -study/-study-file grid to -join workers on this address (port 0 picks a free one; see README: running a fleet)")
		joinAddr  = flag.String("join", "", "join the fleet coordinator at this host:port as a worker and execute leased cells")
		resumeDir = flag.String("resume", "", "-listen: checkpoint completed cells into this spool directory and skip them on restart")
		leaseTTL  = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "-listen: cell lease window; a worker silent this long loses its cell back to the queue")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// One world sizing at a time: an explicit -peers with an explicit
	// -scale would silently run whichever won inside the study layer.
	if explicit["peers"] && explicit["scale"] {
		fmt.Fprintln(os.Stderr, "napawine: -peers and -scale are mutually exclusive")
		flag.Usage()
		os.Exit(2)
	}
	if *httpWait != 0 && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "napawine: -http-linger requires -http")
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "napawine: negative -shards %d\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	if *queueDep < 0 {
		fmt.Fprintf(os.Stderr, "napawine: negative -queue-depth %d\n", *queueDep)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateFleetArgs(*listen, *joinAddr, *leaseTTL, explicit); err != nil {
		fmt.Fprintln(os.Stderr, "napawine:", err)
		flag.Usage()
		os.Exit(2)
	}
	// Two parallelism levels multiply: each in-flight experiment runs
	// -shards goroutines. An explicit pair that oversubscribes the machine
	// is a usage error; an unset -workers is derated automatically so the
	// default stays "use the machine once", not -shards times over. A -join
	// worker skips the local check: its shard count is the study's own,
	// discovered at join time, and RunWorker applies the same guard there.
	if *joinAddr == "" {
		w, err := fleet.WorkerBudget(*workers, explicit["workers"], *shards, runtime.GOMAXPROCS(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			flag.Usage()
			os.Exit(2)
		}
		*workers = w
	}

	if *listScens {
		fmt.Print(scenarioList())
		return
	}
	if *listStrat {
		fmt.Print(strategyList())
		return
	}
	if *listStudy {
		fmt.Print(studyList())
		return
	}

	// Profiles cover everything from here on. A usage error below exits
	// without flushing them — those invocations ran nothing worth
	// profiling anyway.
	defer startProfiles(*cpuProf, *memProf)()

	// A fleet worker needs nothing local: it downloads the study, leases
	// cells until the coordinator disbands it, and prints no tables (the
	// coordinator renders the assembled result).
	if *joinAddr != "" {
		err := fleet.RunWorker(context.Background(), fleet.WorkerConfig{
			Addr:    *joinAddr,
			Workers: *workers, ExplicitWorkers: explicit["workers"],
			Log: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if errors.Is(err, fleet.ErrOversubscribed) {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			flag.Usage()
			os.Exit(2)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	// openOut resolves -out. It runs only after every usage validation and
	// file load has passed, so a usage error can never truncate an
	// artifact from a previous run — and before any simulation starts, so
	// a bad destination is still an up-front error, never a post-run
	// surprise. The returned close flushes on the success path; fatal
	// exits skip it, which is fine — those paths wrote nothing worth
	// keeping.
	openOut := func() (io.Writer, func()) {
		if *outPath == "" {
			return os.Stdout, func() {}
		}
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		return f, func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	// startDash binds the live dashboard when -http is set; the returned
	// finish lingers (for -http-linger, so scripts and CI can still curl a
	// finished run) and then tears it down.
	startDash := func() (*dash.Server, func()) {
		if *httpAddr == "" {
			return nil, func() {}
		}
		ds, err := dash.New(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dashboard: http://%s/\n", ds.Addr())
		return ds, func() {
			if *httpWait > 0 {
				fmt.Fprintf(os.Stderr, "dashboard lingering %v\n", *httpWait)
				time.Sleep(*httpWait)
			}
			_ = ds.Close()
		}
	}

	// writeSVGs resolves -svg-out; a render failure is fatal so a partial
	// artifact directory is never mistaken for a complete one.
	writeSVGs := func(arts []plot.Artifact) {
		if *svgOut == "" || len(arts) == 0 {
			return
		}
		paths, err := plot.WriteDir(*svgOut, arts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d SVG artifacts to %s\n", len(paths), *svgOut)
	}

	if *studyName != "" || *studyFile != "" {
		if err := validateStudyArgs(*studyName, *studyFile, explicit); err != nil {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			flag.Usage()
			os.Exit(2)
		}
		st := loadStudy(*studyName, *studyFile)
		applyStudyOverrides(st, *seed, *seeds, *duration, *factor, *peers, *leanLed, *shards, *queueDep, parseApps(*appsFlag), explicit)
		// Re-validate after the overrides and before -out opens: a bad
		// -apps override (or any axis error) must be a usage error that
		// leaves a previous run's artifact untouched.
		if err := st.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			os.Exit(2)
		}
		out, closeOut := openOut()
		ds, finishDash := startDash()
		if *listen != "" {
			runFleetCoordinator(st, *listen, *resumeDir, *leaseTTL, *csv, out, ds, writeSVGs)
		} else {
			runStudy(st, *workers, *csv, out, ds, writeSVGs)
		}
		closeOut()
		finishDash()
		return
	}

	appList := parseApps(*appsFlag)
	if err := validateArgs(*exp, appList, *scn, *scnFile, *strat); err != nil {
		fmt.Fprintln(os.Stderr, "napawine:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *exp == "table1" && (*httpAddr != "" || *svgOut != "") {
		fmt.Fprintln(os.Stderr, "napawine: -http and -svg-out run no simulation under -exp table1 (the testbed inventory is static)")
		flag.Usage()
		os.Exit(2)
	}

	// Load the file spec up front: a broken file must die as a usage error
	// before any simulation starts, on both the single-run and sweep paths.
	var fileSpec *napawine.ScenarioSpec
	if *scnFile != "" {
		var err error
		fileSpec, err = napawine.LoadScenarioFile(*scnFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "napawine:", err)
			os.Exit(2)
		}
	}
	out, closeOut := openOut()

	if *exp == "table1" {
		renderTableI(*csv, out)
		closeOut()
		return
	}

	// The study layer rejects a double world sizing; with -peers the
	// untouched -scale default must not count as one.
	effFactor := *factor
	if explicit["peers"] {
		effFactor = 0
	}

	if *seeds > 1 {
		ds, finishDash := startDash()
		runSweep(appList, *seed, *seeds, *duration, effFactor, *peers, *leanLed, *shards, *queueDep, *workers, *exp, *csv, *scn, fileSpec, *strat, out, ds, writeSVGs)
		closeOut()
		finishDash()
		return
	}

	if *peers > 0 {
		fmt.Fprintf(os.Stderr, "running %s for %v (seed %d, %d peers)...\n",
			strings.Join(appList, ","), *duration, *seed, *peers)
	} else {
		fmt.Fprintf(os.Stderr, "running %s for %v (seed %d, scale %.2f)...\n",
			strings.Join(appList, ","), *duration, *seed, *factor)
	}
	if *scn != "" {
		fmt.Fprintf(os.Stderr, "scenario: %s\n", *scn)
	}
	if fileSpec != nil {
		fmt.Fprintf(os.Stderr, "scenario: %s (from %s)\n", fileSpec.Name, *scnFile)
	}
	if *strat != "" {
		fmt.Fprintf(os.Stderr, "strategy: %s\n", *strat)
	}
	if *queueDep > 0 {
		fmt.Fprintf(os.Stderr, "congestion: uplink queue depth %d (tail-drop)\n", *queueDep)
	}
	start := time.Now()
	sc := napawine.Scale{
		Seed: *seed, Duration: *duration, PeerFactor: effFactor, Peers: *peers,
		LeanLedger: *leanLed, Shards: *shards, Workers: *workers,
		Scenario: *scn, ScenarioSpec: fileSpec, Strategy: *strat,
		QueueDepth: *queueDep, Apps: appList,
	}
	ds, finishDash := startDash()
	runOpts := []napawine.StudyOption{napawine.WithObserver(&progress{start: start})}
	if ds != nil {
		if err := ds.BeginStudy(sc.Battery()); err != nil {
			fatal(err)
		}
		runOpts = append(runOpts, napawine.WithObserver(ds))
	}
	results, err := napawine.RunAll(sc, runOpts...)
	if err != nil {
		fatal(err)
	}
	var events uint64
	for _, r := range results {
		events += r.Events
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d simulation events)\n\n",
		time.Since(start).Round(time.Millisecond), events)

	render := renderer(*csv, out)

	show := func(name string) bool { return *exp == name || *exp == "all" }
	if show("table2") {
		render(napawine.TableII(results))
	}
	if show("table3") {
		render(napawine.TableIII(results))
	}
	if show("table4") {
		render(napawine.TableIV(results))
		for _, r := range results {
			fmt.Fprintf(out, "%s: measured hop median %.0f, mean continuity %.3f\n",
				r.App, r.HopMedianMeasured, r.MeanContinuity)
		}
		fmt.Fprintln(out)
	}
	if show("fig1") {
		if err := napawine.RenderFigure1(out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}
	if show("fig2") {
		if err := napawine.RenderFigure2(out, results); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}
	if show("hopsweep") {
		for _, r := range results {
			t, err := napawine.HopSweep(r, 15, 23)
			if err != nil {
				fatal(err)
			}
			render(t)
		}
	}
	if *scn != "" || fileSpec != nil {
		if series := napawine.SeriesTable(results); series != nil {
			render(series)
		}
	}
	if *queueDep > 0 {
		// Per-app congestion ground truth, printed with the tables so a
		// bounded-queue run documents its loss regime (and CI can assert
		// the queues actually dropped).
		for _, r := range results {
			loss := 0.0
			if offered := r.ChunksServed + r.Drops; offered > 0 {
				loss = 100 * float64(r.Drops) / float64(offered)
			}
			fmt.Fprintf(out, "%s congestion: drops %d, retransmits %d, backoffs %d, loss %.2f%%\n",
				r.App, r.Drops, r.Retransmits, r.Backoffs, loss)
		}
		fmt.Fprintln(out)
	}
	writeSVGs(append(napawine.SeriesPlots(results), napawine.Figure1Plots(results)...))
	closeOut()
	finishDash()
}

// renderer builds the shared table writer: aligned ASCII or CSV, onto out.
func renderer(csv bool, out io.Writer) func(*napawine.Table) {
	return func(t *napawine.Table) {
		var err error
		if csv {
			err = t.RenderCSV(out)
		} else {
			err = t.Render(out)
			fmt.Fprintln(out)
		}
		if err != nil {
			fatal(err)
		}
	}
}

// progress prints one line per finished study cell on stderr, so a long
// grid shows movement while tables wait for the end. Cell identity comes
// from the RunInfo the study layer hands every observer — the same values
// the dashboard renders — so the terminal and the browser always agree on
// which cell is which.
type progress struct {
	mu    sync.Mutex
	done  int
	start time.Time
}

func (p *progress) OnRunStart(napawine.StudyRunInfo) {}

func (p *progress) OnRunDone(info napawine.StudyRunInfo, sum napawine.RunSummary, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if err != nil {
		fmt.Fprintf(os.Stderr, "cell %d/%d %s FAILED: %v\n",
			info.Index+1, info.Total, info.Label(), err)
		return
	}
	fmt.Fprintf(os.Stderr, "cell %d/%d %s done (continuity %.3f, %d/%d finished, %v elapsed)\n",
		info.Index+1, info.Total, info.Label(), sum.MeanContinuity,
		p.done, info.Total, time.Since(p.start).Round(time.Second))
}

func (p *progress) OnSample(napawine.StudyRunInfo, napawine.SeriesSample) {}

// loadStudy resolves -study / -study-file; a bad name or file is a usage
// error before anything else happens.
func loadStudy(name, file string) *napawine.Study {
	var st *napawine.Study
	var err error
	if file != "" {
		st, err = napawine.LoadStudyFile(file)
	} else {
		st, err = napawine.StudyByName(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "napawine:", err)
		os.Exit(2)
	}
	return st
}

// applyStudyOverrides folds explicitly-set command-line knobs over the
// study's own, so one registered grid scales from a CI smoke run to the
// full campaign.
func applyStudyOverrides(st *napawine.Study, seed int64, trials int, duration time.Duration, factor float64, peers int, leanLedger bool, shards int, queueDepth int, appList []string, explicit map[string]bool) {
	if explicit["duration"] {
		st.Duration = napawine.StudyDuration(duration)
	}
	if explicit["seeds"] {
		st.Seeds = nil
		st.Trials = trials
	}
	if explicit["seed"] {
		st.Seeds = nil
		st.BaseSeed = seed
	}
	if explicit["scale"] {
		st.PeerFactor = factor
		st.Peers = 0
	}
	if explicit["peers"] {
		st.Peers = peers
		st.PeerFactor = 0
	}
	if explicit["lean-ledger"] {
		st.LeanLedger = leanLedger
	}
	if explicit["shards"] {
		st.Shards = shards
	}
	if explicit["queue-depth"] {
		// An explicit depth pins the whole grid, collapsing any congestion
		// axis the study declared (the two are mutually exclusive).
		st.QueueDepths = nil
		st.QueueDepth = queueDepth
	}
	if explicit["apps"] {
		st.Apps = appList
	}
}

// runStudy executes a study grid and renders its comparison table, with
// the live dashboard and SVG artifacts riding the same observer stream.
func runStudy(st *napawine.Study, workers int, csv bool, out io.Writer, ds *dash.Server, writeSVGs func([]plot.Artifact)) {
	fmt.Fprintf(os.Stderr, "study %s: %d runs (%d apps × %d strategies × %d scenarios × %d variants × %d congestion levels × %d seeds)\n",
		st.Name, st.Runs(), len(st.AppList()), len(st.StrategyList()),
		len(st.ScenarioList()), len(st.VariantList()), len(st.QueueDepthList()), len(st.SeedList()))
	start := time.Now()
	opts := []napawine.StudyOption{
		napawine.WithWorkers(workers),
		napawine.WithObserver(&progress{start: start}),
	}
	if ds != nil {
		if err := ds.BeginStudy(st); err != nil {
			fatal(err)
		}
		opts = append(opts, napawine.WithObserver(ds))
	}
	res, err := napawine.RunStudy(context.Background(), st, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))

	render := renderer(csv, out)
	render(res.ComparisonTable())
	writeSVGs(res.MetricBars())
}

// runFleetCoordinator serves a study grid to -join workers instead of
// running it locally: same progress lines, dashboard and artifacts as
// runStudy — the observers just watch a fleet execute the cells. Fleet
// events (worker joins, lease expiries, spool restores) additionally
// narrate onto the dashboard's fleet log.
func runFleetCoordinator(st *napawine.Study, listen, resumeDir string, leaseTTL time.Duration, csv bool, out io.Writer, ds *dash.Server, writeSVGs func([]plot.Artifact)) {
	fmt.Fprintf(os.Stderr, "study %s: %d runs, distributed (lease ttl %v)\n", st.Name, st.Runs(), leaseTTL)
	start := time.Now()
	obs := []napawine.StudyObserver{&progress{start: start}}
	if ds != nil {
		if err := ds.BeginStudy(st); err != nil {
			fatal(err)
		}
		obs = append(obs, ds)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		if ds != nil {
			ds.Note("fleet", fmt.Sprintf(format, args...))
		}
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Study: st, Addr: listen, LeaseTTL: leaseTTL, SpoolDir: resumeDir,
		Observers: obs, Log: logf,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleet: coordinating on %s (join with: napawine -join %s)\n", coord.Addr(), coord.Addr())
	res, err := coord.Wait(context.Background())
	_ = coord.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))

	render := renderer(csv, out)
	render(res.ComparisonTable())
	writeSVGs(res.MetricBars())
}

// runSweep executes the replicated multi-seed battery and renders the
// aggregated (mean ± stderr) tables. Figures and the hop sweep are
// single-run reductions and are not replicated here.
func runSweep(appList []string, seed int64, trials int, duration time.Duration, factor float64, peers int, leanLedger bool, shards int, queueDepth int, workers int, exp string, csv bool, scn string, fileSpec *napawine.ScenarioSpec, strat string, out io.Writer, ds *dash.Server, writeSVGs func([]plot.Artifact)) {
	if exp == "fig1" || exp == "fig2" || exp == "hopsweep" {
		fatal(fmt.Errorf("-exp %s is a single-run reduction; drop -seeds or use -seeds 1", exp))
	}
	fmt.Fprintf(os.Stderr, "sweeping %s × %d seeds for %v (base seed %d, scale %.2f)...\n",
		strings.Join(appList, ","), trials, duration, seed, factor)
	if scn != "" {
		fmt.Fprintf(os.Stderr, "scenario: %s\n", scn)
	}
	if fileSpec != nil {
		fmt.Fprintf(os.Stderr, "scenario: %s (file spec)\n", fileSpec.Name)
	}
	if strat != "" {
		fmt.Fprintf(os.Stderr, "strategy: %s\n", strat)
	}
	if queueDepth > 0 {
		fmt.Fprintf(os.Stderr, "congestion: uplink queue depth %d (tail-drop)\n", queueDepth)
	}
	start := time.Now()
	spec := napawine.SweepSpec{
		Apps:         appList,
		BaseSeed:     seed,
		Trials:       trials,
		Duration:     duration,
		PeerFactor:   factor,
		Peers:        peers,
		LeanLedger:   leanLedger,
		Shards:       shards,
		Workers:      workers,
		Scenario:     scn,
		ScenarioSpec: fileSpec,
		Strategy:     strat,
		QueueDepth:   queueDepth,
	}
	opts := []napawine.StudyOption{napawine.WithObserver(&progress{start: start})}
	if ds != nil {
		if err := ds.BeginStudy(spec.Study()); err != nil {
			fatal(err)
		}
		opts = append(opts, napawine.WithObserver(ds))
	}
	res, err := napawine.SweepCtx(context.Background(), spec, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v (%d runs)\n\n",
		time.Since(start).Round(time.Millisecond), len(appList)*trials)

	render := renderer(csv, out)
	show := func(name string) bool { return exp == name || exp == "all" }
	if show("table2") {
		render(res.TableII())
	}
	if show("table3") {
		render(res.TableIII())
	}
	if show("table4") {
		render(res.TableIV())
		render(res.HealthTable())
	}
	if scn != "" || fileSpec != nil {
		if series := res.SeriesTable(); series != nil {
			render(series)
		}
	}
	writeSVGs(res.SeriesPlots())
}

func renderTableI(csv bool, out io.Writer) {
	t := report.NewTable("TABLE I — NAPA-WINE testbed",
		"Site", "CC", "AS", "High-bw hosts", "Home probes", "NAT", "FW")
	for _, s := range world.TableI() {
		homes := make([]string, 0, len(s.Homes))
		nat := 0
		fw := 0
		for _, h := range s.Homes {
			homes = append(homes, h.Access.Spec.String())
			if h.Access.NAT {
				nat++
			}
			if h.Access.Firewall {
				fw++
			}
		}
		nat += s.HighBwNAT
		fwMark := fmt.Sprintf("%d", fw)
		if s.HighBwFW {
			fwMark += "+site"
		}
		t.Add(s.Name, string(s.Country), s.ASLabel,
			fmt.Sprintf("%d", s.HighBw), strings.Join(homes, " "),
			fmt.Sprintf("%d", nat), fwMark)
	}
	var err error
	if csv {
		err = t.RenderCSV(out)
	} else {
		err = t.Render(out)
	}
	if err != nil {
		fatal(err)
	}
}

// startProfiles wires -cpuprofile / -memprofile (runtime/pprof). The
// returned stop ends the CPU profile and writes the heap profile; fatal
// exits skip it, losing the profiles the way go test's -cpuprofile does on
// a crash.
func startProfiles(cpu, mem string) func() {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fatal(err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // up-to-date allocation stats, like net/http/pprof
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "napawine:", err)
	os.Exit(1)
}
