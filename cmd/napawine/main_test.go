package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateArgsAcceptsValidCombos(t *testing.T) {
	for _, tc := range []struct {
		exp      string
		apps     []string
		scenario string
		strategy string
	}{
		{"all", []string{"PPLive", "SopCast", "TVAnts"}, "", ""},
		{"table4", []string{"TVAnts"}, "flashcrowd", ""},
		{"table1", []string{"PPLive"}, "", ""},
		{"hopsweep", []string{"SopCast"}, "steady", "rarest"},
		{"table2", []string{"PPLive"}, "", "latest-useful"},
	} {
		if err := validateArgs(tc.exp, tc.apps, tc.scenario, "", tc.strategy); err != nil {
			t.Errorf("validateArgs(%q, %v, %q) = %v, want nil", tc.exp, tc.apps, tc.scenario, err)
		}
	}
}

func TestValidateArgsRejectsUnknownExp(t *testing.T) {
	err := validateArgs("tabel4", []string{"PPLive"}, "", "", "")
	if err == nil {
		t.Fatal("typo'd -exp accepted")
	}
	for _, v := range validExps {
		if !strings.Contains(err.Error(), v) {
			t.Errorf("usage error %q does not list valid exp %q", err, v)
		}
	}
}

func TestValidateArgsRejectsUnknownApp(t *testing.T) {
	err := validateArgs("all", []string{"PPLive", "Joost"}, "", "", "")
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	for _, want := range []string{"Joost", "PPLive", "SopCast", "TVAnts"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("usage error %q missing %q", err, want)
		}
	}
}

func TestValidateArgsRejectsEmptyApps(t *testing.T) {
	if err := validateArgs("all", nil, "", "", ""); err == nil {
		t.Error("empty app list accepted")
	}
}

func TestValidateArgsRejectsUnknownScenario(t *testing.T) {
	err := validateArgs("all", []string{"PPLive"}, "worldcup", "", "")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, want := range []string{"worldcup", "steady", "flashcrowd", "diurnal", "partition"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("usage error %q missing %q", err, want)
		}
	}
}

func TestParseApps(t *testing.T) {
	got := parseApps(" TVAnts, PPLive,TVAnts,, ")
	if len(got) != 2 || got[0] != "TVAnts" || got[1] != "PPLive" {
		t.Errorf("parseApps = %v, want [TVAnts PPLive]", got)
	}
	if got := parseApps(""); got != nil {
		t.Errorf("parseApps(\"\") = %v, want nil", got)
	}
}

func TestScenarioListNamesEveryScenario(t *testing.T) {
	out := scenarioList()
	for _, name := range []string{"steady", "flashcrowd", "diurnal", "partition", "outage", "throttle", "failover", "zapping", "regional"} {
		if !strings.Contains(out, name) {
			t.Errorf("-scenario-list output missing %q:\n%s", name, out)
		}
	}
}

func TestValidateArgsRejectsScenarioWithTable1(t *testing.T) {
	if err := validateArgs("table1", []string{"PPLive"}, "flashcrowd", "", ""); err == nil {
		t.Error("-scenario with -exp table1 accepted (it would be silently ignored)")
	}
}

func TestValidateArgsRejectsUnknownStrategy(t *testing.T) {
	err := validateArgs("all", []string{"PPLive"}, "", "", "newest")
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, want := range []string{"newest", "urgent-random", "latest-useful", "rarest", "deadline"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("usage error %q missing %q", err, want)
		}
	}
}

func TestValidateArgsRejectsStrategyWithTable1(t *testing.T) {
	if err := validateArgs("table1", []string{"PPLive"}, "", "", "rarest"); err == nil {
		t.Error("-strategy with -exp table1 accepted (it would be silently ignored)")
	}
}

func TestValidateArgsScenarioFile(t *testing.T) {
	if err := validateArgs("all", []string{"PPLive"}, "", "f.json", ""); err != nil {
		t.Errorf("-scenario-file alone rejected: %v", err)
	}
	if err := validateArgs("all", []string{"PPLive"}, "flashcrowd", "f.json", ""); err == nil {
		t.Error("-scenario together with -scenario-file accepted")
	}
	if err := validateArgs("table1", []string{"PPLive"}, "", "f.json", ""); err == nil {
		t.Error("-scenario-file with -exp table1 accepted (it would be silently ignored)")
	}
}

func TestStrategyListNamesEveryStrategy(t *testing.T) {
	out := strategyList()
	for _, name := range []string{"urgent-random", "latest-useful", "rarest", "deadline"} {
		if !strings.Contains(out, name) {
			t.Errorf("-strategy-list output missing %q:\n%s", name, out)
		}
	}
}

func TestStudyListNamesEveryStudy(t *testing.T) {
	out := studyList()
	for _, name := range []string{"strategy-comparison", "blind-ablation"} {
		if !strings.Contains(out, name) {
			t.Errorf("-study-list output missing %q:\n%s", name, out)
		}
	}
}

func TestValidateStudyArgs(t *testing.T) {
	none := map[string]bool{}
	if err := validateStudyArgs("strategy-comparison", "", none); err != nil {
		t.Errorf("registered study rejected: %v", err)
	}
	if err := validateStudyArgs("", "s.json", none); err != nil {
		t.Errorf("study file rejected: %v", err)
	}
	if err := validateStudyArgs("strategy-comparison", "s.json", none); err == nil {
		t.Error("-study together with -study-file accepted")
	}
	err := validateStudyArgs("worldcup", "", none)
	if err == nil {
		t.Fatal("unknown study accepted")
	}
	for _, want := range []string{"worldcup", "strategy-comparison"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("usage error %q missing %q", err, want)
		}
	}
	// Overridable knobs are fine; axis-defining flags are not.
	if err := validateStudyArgs("strategy-comparison", "",
		map[string]bool{"study": true, "duration": true, "seeds": true, "scale": true}); err != nil {
		t.Errorf("override flags rejected: %v", err)
	}
	for _, f := range []string{"exp", "scenario", "scenario-file", "strategy"} {
		if err := validateStudyArgs("strategy-comparison", "", map[string]bool{f: true}); err == nil {
			t.Errorf("-%s with -study accepted (it would be silently ignored)", f)
		}
	}
}

func TestValidateFleetArgs(t *testing.T) {
	ttl := 30 * time.Second
	// Plain local runs are untouched.
	if err := validateFleetArgs("", "", ttl, map[string]bool{"exp": true}); err != nil {
		t.Errorf("local run rejected: %v", err)
	}
	// A coordinator needs a study and owns -resume/-lease-ttl.
	if err := validateFleetArgs(":0", "", ttl,
		map[string]bool{"listen": true, "study": true, "resume": true, "lease-ttl": true}); err != nil {
		t.Errorf("coordinator flags rejected: %v", err)
	}
	if err := validateFleetArgs(":0", "", ttl, map[string]bool{"listen": true}); err == nil {
		t.Error("-listen without a study accepted")
	}
	if err := validateFleetArgs(":0", "", ttl,
		map[string]bool{"listen": true, "study": true, "workers": true}); err == nil {
		t.Error("-workers with -listen accepted (the coordinator runs no cells)")
	}
	if err := validateFleetArgs(":0", "", 0,
		map[string]bool{"listen": true, "study": true}); err == nil {
		t.Error("non-positive -lease-ttl accepted")
	}
	// Coordinator and worker roles are exclusive.
	if err := validateFleetArgs(":0", "host:1", ttl,
		map[string]bool{"listen": true, "join": true, "study": true}); err == nil {
		t.Error("-listen together with -join accepted")
	}
	// -resume / -lease-ttl mean nothing without -listen.
	for _, f := range []string{"resume", "lease-ttl"} {
		if err := validateFleetArgs("", "", ttl, map[string]bool{f: true}); err == nil {
			t.Errorf("-%s without -listen accepted", f)
		}
	}
	// A worker takes only its budget and profiles; everything else about
	// the run comes from the coordinator.
	if err := validateFleetArgs("", "host:1", ttl,
		map[string]bool{"join": true, "workers": true, "cpuprofile": true, "memprofile": true}); err != nil {
		t.Errorf("worker whitelist rejected: %v", err)
	}
	for _, f := range []string{"shards", "study", "study-file", "exp", "seeds", "duration", "out", "svg-out", "http"} {
		err := validateFleetArgs("", "host:1", ttl, map[string]bool{"join": true, f: true})
		if err == nil || !strings.Contains(err.Error(), "-"+f) {
			t.Errorf("-%s with -join: %v, want a usage error naming it", f, err)
		}
	}
}
