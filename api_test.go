package napawine_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"napawine"
)

// runBattery executes the full three-app battery once at miniature scale
// and caches it for every assertion in this file.
var battery []*napawine.Result

func getBattery(t *testing.T) []*napawine.Result {
	t.Helper()
	if battery != nil {
		return battery
	}
	results, err := napawine.RunAll(napawine.Scale{
		Seed:       99,
		Duration:   2 * time.Minute,
		PeerFactor: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	battery = results
	return results
}

func TestRunAllOrderAndHealth(t *testing.T) {
	results := getBattery(t)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	want := []string{"PPLive", "SopCast", "TVAnts"}
	for i, r := range results {
		if r.App != want[i] {
			t.Errorf("results[%d] = %s, want %s", i, r.App, want[i])
		}
		if r.MeanContinuity < 0.6 {
			t.Errorf("%s continuity = %.2f (swarm unhealthy)", r.App, r.MeanContinuity)
		}
		if len(r.Observations) == 0 {
			t.Errorf("%s produced no observations", r.App)
		}
	}
}

func TestPublicTablesRender(t *testing.T) {
	results := getBattery(t)
	var b strings.Builder
	for _, tab := range []*napawine.Table{
		napawine.TableII(results),
		napawine.TableIII(results),
		napawine.TableIV(results),
	} {
		b.Reset()
		if err := tab.Render(&b); err != nil {
			t.Fatal(err)
		}
		for _, app := range napawine.Apps() {
			if !strings.Contains(b.String(), app) {
				t.Errorf("table %q missing %s", tab.Title, app)
			}
		}
	}
	b.Reset()
	if err := napawine.RenderFigure1(&b, results); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := napawine.RenderFigure2(&b, results); err != nil {
		t.Fatal(err)
	}
}

// The paper's qualitative conclusions must hold end-to-end through the
// public API, even at miniature scale.
func TestPaperConclusionsHold(t *testing.T) {
	results := getBattery(t)
	byApp := map[string]*napawine.Result{}
	for _, r := range results {
		byApp[r.App] = r
	}
	cell := func(app, prop string) napawine.TableIVCell {
		for _, c := range napawine.ComputeTableIV(byApp[app]) {
			if c.Property == prop {
				return c
			}
		}
		t.Fatalf("missing %s/%s", app, prop)
		return napawine.TableIVCell{}
	}

	// 1. Every application prefers high-bandwidth peers, byte-wise more
	// than peer-wise.
	for _, app := range napawine.Apps() {
		bw := cell(app, "BW")
		if !bw.BDPrime.Valid() || bw.BDPrime.BytePct < 60 {
			t.Errorf("%s BW B'D = %.1f, want strong", app, bw.BDPrime.BytePct)
		}
		if bw.BDPrime.BytePct < bw.PDPrime.PeerPct {
			t.Errorf("%s BW byte preference below peer preference", app)
		}
	}

	// 2. TVAnts has the strongest same-AS peer discovery.
	tvAS := cell("TVAnts", "AS")
	scAS := cell("SopCast", "AS")
	if tvAS.PDPrime.PeerPct <= scAS.PDPrime.PeerPct {
		t.Errorf("TVAnts P'D(AS)=%.1f should exceed SopCast's %.1f",
			tvAS.PDPrime.PeerPct, scAS.PDPrime.PeerPct)
	}

	// 3. No application shows a real HOP preference: the paper's
	// signature is B′ ≈ P′ on the HOP row ("almost no difference emerges
	// comparing P′ and B′"), which is scale-free — the absolute level
	// depends on where the fixed 19-hop threshold cuts this world's
	// distance distribution.
	for _, app := range napawine.Apps() {
		hop := cell(app, "HOP")
		if !hop.BDPrime.Valid() {
			continue
		}
		if diff := hop.BDPrime.BytePct - hop.PDPrime.PeerPct; diff > 25 || diff < -25 {
			t.Errorf("%s HOP B'D=%.1f vs P'D=%.1f: byte/peer divergence signals a preference",
				app, hop.BDPrime.BytePct, hop.PDPrime.PeerPct)
		}
	}
}

func TestHopSweepAPI(t *testing.T) {
	results := getBattery(t)
	tab, err := napawine.HopSweep(results[1], 17, 21)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, th := range []string{"17", "19", "21"} {
		if !strings.Contains(b.String(), th) {
			t.Errorf("sweep missing threshold %s", th)
		}
	}
	if _, err := napawine.HopSweep(results[0], 10, 5); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := napawine.HopSweep(results[0], 0, 5); err == nil {
		t.Error("zero lower bound should fail")
	}
}

func TestProfileVariantAPI(t *testing.T) {
	base, err := napawine.ProfileOf(napawine.TVAnts)
	if err != nil {
		t.Fatal(err)
	}
	v := napawine.ProfileVariant(base, "tv-blind", func(p *napawine.Profile) {
		p.DiscoveryWeight = napawine.Uniform{}
	})
	if v.Name != "tv-blind" || base.Name != "TVAnts" {
		t.Error("variant naming wrong")
	}
	if _, err := napawine.ProfileOf("Babelgum"); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestDefaultConfigKnobs(t *testing.T) {
	cfg := napawine.DefaultConfig(napawine.PPLive)
	if cfg.App != napawine.PPLive || cfg.World.Peers == 0 {
		t.Error("default config incomplete")
	}
}

// TestSweepAPI exercises the replicated battery through the facade: three
// applications × five seeds in parallel, reduced to aggregated tables with
// error bars. Miniature scale keeps the 15 runs fast.
func TestSweepAPI(t *testing.T) {
	res, err := napawine.Sweep(napawine.SweepSpec{
		BaseSeed:   301,
		Trials:     5,
		Duration:   20 * time.Second,
		PeerFactor: 0.02, // floors at 50 peers per swarm
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Trials(); got != 5 {
		t.Fatalf("Trials = %d, want 5", got)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Groups))
	}
	wantApps := []string{"PPLive", "SopCast", "TVAnts"}
	for i, g := range res.Groups {
		if g.Label != wantApps[i] {
			t.Errorf("group %d label = %q, want %q", i, g.Label, wantApps[i])
		}
		if len(g.Summaries) != 5 {
			t.Errorf("%s summaries = %d, want 5", g.Label, len(g.Summaries))
		}
		seen := map[int64]bool{}
		for _, s := range g.Summaries {
			if s.App != g.App {
				t.Errorf("summary app %q in group %q", s.App, g.App)
			}
			seen[s.Seed] = true
		}
		if len(seen) != 5 {
			t.Errorf("%s has duplicate seeds: %v", g.Label, seen)
		}
	}
	var b strings.Builder
	for _, tab := range []*napawine.Table{
		res.TableII(), res.TableIII(), res.TableIV(), res.HealthTable(),
	} {
		b.Reset()
		if err := tab.Render(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "±") {
			t.Errorf("aggregated table lacks error bars:\n%s", b.String())
		}
		for _, app := range wantApps {
			if !strings.Contains(b.String(), app) {
				t.Errorf("table missing %s row:\n%s", app, b.String())
			}
		}
	}
}

// TestSummarizeMatchesSingleRunTables pins the per-run reduction to the
// single-run table pipeline: a Summary must carry exactly the numbers the
// unreplicated Table II/III code computes from the full Result.
func TestSummarizeMatchesSingleRunTables(t *testing.T) {
	r := getBattery(t)[1] // SopCast
	s := napawine.Summarize(r)
	if s.App != r.App {
		t.Errorf("summary app = %q, want %q", s.App, r.App)
	}
	var rx float64
	for _, p := range r.PerProbe {
		rx += p.RxKbps
	}
	rx /= float64(len(r.PerProbe))
	if diff := s.RxKbpsMean - rx; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("RxKbpsMean = %v, want %v", s.RxKbpsMean, rx)
	}
	if len(s.TableIV) != 5 {
		t.Errorf("TableIV cells = %d, want 5 properties", len(s.TableIV))
	}
	if s.Events != r.Events || s.MeanContinuity != r.MeanContinuity {
		t.Error("summary health fields diverge from result")
	}
}

// TestLeanLedgerPublicRun pins Config.LeanLedger through the public API: a
// lean run must be observably identical to a full run (same events, same
// observations, same series) while keeping resident ledger memory O(1) —
// no per-peer or per-pair maps — and the scenario series O(buckets).
func TestLeanLedgerPublicRun(t *testing.T) {
	run := func(lean bool) *napawine.Result {
		cfg := napawine.DefaultConfig(napawine.PPLive)
		cfg.Seed = 321
		cfg.Duration = 60 * time.Second
		cfg.World.Peers = 60
		cfg.LeanLedger = lean
		cfg.Scenario = &napawine.ScenarioSpec{Name: "steady"}
		r, err := napawine.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	full := run(false)
	lean := run(true)

	if full.Events != lean.Events {
		t.Fatalf("lean run diverged: %d events vs %d", lean.Events, full.Events)
	}
	if !lean.Ledger.Lean() || full.Ledger.Lean() {
		t.Fatalf("Lean() flags wrong: lean=%v full=%v", lean.Ledger.Lean(), full.Ledger.Lean())
	}
	if lean.Ledger.VideoByPair != nil || lean.Ledger.VideoRx != nil ||
		lean.Ledger.VideoTx != nil || lean.Ledger.ChunksServed != nil {
		t.Error("lean ledger allocated per-peer maps")
	}
	if lean.Ledger.VideoTotal != full.Ledger.VideoTotal ||
		lean.Ledger.VideoIntraAS != full.Ledger.VideoIntraAS ||
		lean.Ledger.SignalTotal != full.Ledger.SignalTotal {
		t.Error("lean scalar totals diverged from full run")
	}
	if lean.MeanContinuity != full.MeanContinuity || lean.VideoBytes != full.VideoBytes {
		t.Errorf("summary stats diverged: continuity %v vs %v, video %d vs %d",
			lean.MeanContinuity, full.MeanContinuity, lean.VideoBytes, full.VideoBytes)
	}
	// Observations carry NaN fields (DeepEqual-hostile), so compare the
	// rendered table bytes — the observable contract — instead.
	if len(lean.Observations) != len(full.Observations) {
		t.Errorf("observation counts diverged: %d vs %d", len(lean.Observations), len(full.Observations))
	}
	render := func(r *napawine.Result) string {
		var b strings.Builder
		for _, tab := range []*napawine.Table{
			napawine.TableII([]*napawine.Result{r}),
			napawine.TableIV([]*napawine.Result{r}),
		} {
			if err := tab.Render(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	if render(lean) != render(full) {
		t.Error("rendered tables diverged between lean and full runs")
	}
	if !reflect.DeepEqual(lean.Series, full.Series) {
		t.Error("series diverged between lean and full runs")
	}
	if len(lean.Series) == 0 || len(lean.Series) > 96 {
		t.Errorf("series has %d buckets, want 1..96 (scenario.MaxBuckets)", len(lean.Series))
	}
}
