// Package napawine reproduces "Network Awareness of P2P Live Streaming
// Applications" (Ciullo et al., IEEE IPDPS 2009): a packet-level emulation
// of the NAPA-WINE measurement campaign over PPLive-, SopCast- and
// TVAnts-like mesh-pull swarms, plus the paper's preference-partition
// framework that infers each application's network awareness from passive
// traces.
//
// The typical entry point runs one experiment per application and renders
// the paper's tables:
//
//	results, err := napawine.RunAll(napawine.Scale{Seed: 1, Duration: 10 * time.Minute})
//	...
//	napawine.TableIV(results).Render(os.Stdout)
//
// Everything underneath — the discrete-event engine, synthetic AS/country
// topology, access-link model, the overlay protocol and the analysis
// pipeline — is exposed through internal packages; this facade re-exports
// the surface a downstream user needs.
package napawine

import (
	"context"
	"fmt"
	"io"
	"time"

	"napawine/internal/access"
	"napawine/internal/apps"
	"napawine/internal/core"
	"napawine/internal/experiment"
	"napawine/internal/fleet"
	"napawine/internal/overlay"
	"napawine/internal/plot"
	"napawine/internal/policy"
	"napawine/internal/report"
	"napawine/internal/runner"
	"napawine/internal/scenario"
	"napawine/internal/study"
	"napawine/internal/sweep"
)

// Re-exported experiment types.
type (
	// Config parameterizes one experiment (see experiment.Config).
	Config = experiment.Config
	// Result is one experiment's output.
	Result = experiment.Result
	// ProbeStats summarizes one vantage point.
	ProbeStats = experiment.ProbeStats
	// TableIVCell is one (property, app) cell group of Table IV.
	TableIVCell = experiment.TableIVCell
	// GeoBreakdown is the Figure-1 dataset.
	GeoBreakdown = experiment.GeoBreakdown
	// ASTraffic is the Figure-2 dataset.
	ASTraffic = experiment.ASTraffic
	// Metrics carries one preference-index evaluation (Eqs. 1–8).
	Metrics = core.Metrics
	// Observation is the per-(probe, peer) aggregate the framework
	// consumes.
	Observation = core.Observation
	// Profile is an application behaviour profile.
	Profile = overlay.Profile
	// Table is a renderable result table.
	Table = report.Table
)

// Re-exported policy types for building custom application profiles (the
// paper's future-work direction: more locality-aware clients).
type (
	// ChunkStrategy orders each scheduler round's chunk requests across
	// the pull window (the Mathieu–Perino scheduling-strategy space).
	ChunkStrategy = policy.ChunkStrategy
	// ChunkRef is one missing chunk as a strategy sees it.
	ChunkRef = policy.ChunkRef
	// UrgentRandom is the default urgent-head + random-tail strategy.
	UrgentRandom = policy.UrgentRandom
	// LatestUseful requests the newest chunk first.
	LatestUseful = policy.LatestUseful
	// RarestFirst requests the fewest-holders chunk first.
	RarestFirst = policy.RarestFirst
	// DeadlineFirst requests strictly oldest-first.
	DeadlineFirst = policy.DeadlineFirst
	// Hybrid is the parameterized strategy family subsuming the presets,
	// expressible as "hybrid:u=0.3,r=0.5" names (see HybridGrammar).
	Hybrid = policy.Hybrid
	// CongestionModel bounds every peer's uplink queue (see
	// Config.Congestion and Scale.QueueDepth).
	CongestionModel = access.CongestionModel
	// Weight scores peer-selection candidates.
	Weight = policy.Weight
	// Uniform is location- and bandwidth-blind selection.
	Uniform = policy.Uniform
	// BandwidthBias prefers measured-fast peers.
	BandwidthBias = policy.BandwidthBias
	// ASBias prefers same-AS peers.
	ASBias = policy.ASBias
	// CCBias prefers same-country peers.
	CCBias = policy.CCBias
	// SubnetBias prefers same-subnet peers.
	SubnetBias = policy.SubnetBias
	// RTTBias prefers nearby peers.
	RTTBias = policy.RTTBias
	// ProductWeight composes weights multiplicatively.
	ProductWeight = policy.Product
)

// Application names as printed in the paper.
const (
	PPLive  = "PPLive"
	SopCast = "SopCast"
	TVAnts  = "TVAnts"
)

// Apps lists the three applications in the paper's order.
func Apps() []string { return []string{PPLive, SopCast, TVAnts} }

// DefaultConfig returns the calibrated configuration for one application.
func DefaultConfig(app string) Config { return experiment.Default(app) }

// ProfileOf returns a fresh behaviour profile for one application.
func ProfileOf(app string) (*Profile, error) { return apps.ByName(app) }

// ProfileVariant derives an ablation profile from base with one knob
// mutated.
func ProfileVariant(base *Profile, name string, mutate func(*Profile)) *Profile {
	return apps.Variant(base, name, mutate)
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// Scale compactly adjusts the default experiment battery.
type Scale struct {
	Seed     int64
	Duration time.Duration
	// PeerFactor scales each application's default background
	// population (1.0 = paper-calibrated default; 0 selects 1.0).
	PeerFactor float64
	// Peers pins the background population to an absolute count instead
	// of scaling the default (0 = leave to PeerFactor). Mutually
	// exclusive with PeerFactor, like Study.Peers.
	Peers int
	// LeanLedger forces O(1)-memory ground-truth accounting regardless of
	// world size; large worlds switch to it automatically.
	LeanLedger bool
	// Shards splits every run's swarm across that many parallel shard
	// engines, partitioned by AS (experiment.Config.Shards); 0 or 1 keeps
	// the serial engine and its byte-identical output.
	Shards int
	// Workers bounds parallel experiments (0 = GOMAXPROCS). Each
	// in-flight experiment additionally runs Shards goroutines.
	Workers int
	// Scenario names a registered workload scenario to replay in every
	// run ("" = stationary default). See ScenarioNames.
	Scenario string
	// ScenarioSpec, when non-nil, is the workload timeline itself — e.g. a
	// file-authored spec from LoadScenarioFile — and takes precedence over
	// Scenario. The battery never mutates it; every run gets a deep copy.
	ScenarioSpec *ScenarioSpec
	// Strategy names a chunk-scheduling strategy applied to every run:
	// a registered name (see StrategyNames) or a parameterized hybrid
	// member (see HybridGrammar). "" = each profile's own, i.e.
	// urgent-random.
	Strategy string
	// QueueDepth bounds every peer's uplink queue (tail-drop loss beyond
	// it) and switches the overlay to its congestion-signal path; 0 keeps
	// the unbounded congestion-off default.
	QueueDepth int
	// Apps restricts the battery to these applications (nil = all three).
	// Restricting here skips the unwanted simulations entirely instead of
	// filtering their results afterwards. Results come back in the paper's
	// order regardless of the order given here.
	Apps []string
}

// Battery compiles the Scale into its study: a one-seed grid whose only
// (potentially) non-trivial axis is the application list. RunAll is a thin
// adapter over this — same cell order, same per-cell configuration as the
// pre-study battery, so its output is byte-identical (the golden-digest
// tests pin this).
func (s Scale) Battery() *Study {
	return &Study{
		Name:       "battery",
		Apps:       s.Apps,
		Strategies: []string{s.Strategy},
		Scenarios:  []StudyScenario{{Name: s.Scenario, Spec: s.ScenarioSpec}},
		Seeds:      []int64{s.Seed},
		Duration:   StudyDuration(s.Duration),
		PeerFactor: s.PeerFactor,
		Peers:      s.Peers,
		QueueDepth: s.QueueDepth,
		LeanLedger: s.LeanLedger,
		Shards:     s.Shards,
	}
}

// RunAll executes the selected applications' experiments in parallel and
// returns them in the paper's order. Extra study options (an Observer —
// e.g. a dash.Server — say) are forwarded to the underlying engine.
func RunAll(s Scale, opts ...StudyOption) ([]*Result, error) {
	res, err := study.Run(context.Background(), s.Battery(),
		append([]study.Option{study.WithWorkers(s.Workers), study.WithFullResults()}, opts...)...)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(res.Full))
	for _, r := range res.Full {
		if r != nil {
			results = append(results, r)
		}
	}
	experiment.SortResults(results)
	return results, nil
}

// Re-exported sweep types: the replicated multi-seed battery layer.
type (
	// SweepSpec parameterizes a replicated battery (apps × seeds ×
	// optional profile variants).
	SweepSpec = sweep.Spec
	// SweepVariant derives an ablation profile inside a sweep.
	SweepVariant = sweep.Variant
	// SweepResult aggregates per-seed summaries and renders Tables II–IV
	// with mean ± stderr error bars.
	SweepResult = sweep.Result
	// RunSummary is the bounded-memory per-run reduction a sweep retains.
	RunSummary = experiment.Summary
)

// Sweep executes a replicated battery in parallel: one independent
// experiment per (app, variant, seed), each reduced to a RunSummary as it
// completes so memory stays bounded by the worker count. The same spec
// reproduces byte-identical aggregated tables.
func Sweep(spec SweepSpec) (*SweepResult, error) { return sweep.Run(spec) }

// SweepCtx is Sweep under a context: cancellation aborts the battery
// promptly and returns ctx.Err(). Study options (e.g. WithObserver) are
// forwarded to the underlying execution engine.
func SweepCtx(ctx context.Context, spec SweepSpec, opts ...StudyOption) (*SweepResult, error) {
	return sweep.RunCtx(ctx, spec, opts...)
}

// Re-exported study types: the declarative experiment-grid layer that every
// execution path above the engine now runs through.
type (
	// Study is a declarative experiment grid — apps × strategies ×
	// scenarios × profile variants × seeds — with a strict JSON codec.
	Study = study.Study
	// StudyScenario is one scenario-axis cell: a registered name or an
	// inline timeline.
	StudyScenario = study.Scenario
	// StudyVariant is one profile-variant-axis cell.
	StudyVariant = study.Variant
	// StudyDuration is a time.Duration that travels through study JSON as
	// a human-readable string ("5m").
	StudyDuration = study.Duration
	// StudyResult holds one executed cell per grid point and pivots
	// summaries along any axis.
	StudyResult = study.Result
	// StudyCell is one executed grid point.
	StudyCell = study.Cell
	// StudyAxis names a grid dimension for pivots.
	StudyAxis = study.Axis
	// StudyMetric is one per-run number a study can pivot.
	StudyMetric = study.Metric
	// StudyObserver receives execution progress and streamed time-series
	// buckets; callbacks fire concurrently from worker goroutines.
	StudyObserver = study.Observer
	// StudyRunInfo identifies one grid cell to an observer.
	StudyRunInfo = study.RunInfo
	// StudyOption configures RunStudy.
	StudyOption = study.Option
)

// The six study grid axes.
const (
	AxisApp        = study.AxisApp
	AxisStrategy   = study.AxisStrategy
	AxisScenario   = study.AxisScenario
	AxisVariant    = study.AxisVariant
	AxisCongestion = study.AxisCongestion
	AxisSeed       = study.AxisSeed
)

// RunStudy executes a declarative study under a context: one experiment
// per grid cell, reduced to bounded summaries as cells complete. When ctx
// is cancelled mid-battery RunStudy halts in-flight cells promptly, skips
// unstarted ones, and returns the partial result alongside ctx.Err();
// completed cells are marked Done and their summaries are well-formed.
func RunStudy(ctx context.Context, st *Study, opts ...StudyOption) (*StudyResult, error) {
	return study.Run(ctx, st, opts...)
}

// WithWorkers bounds a study's parallel cells (0 = GOMAXPROCS).
func WithWorkers(n int) StudyOption { return study.WithWorkers(n) }

// WithObserver streams per-run progress and per-bucket time series to obs.
func WithObserver(obs StudyObserver) StudyOption { return study.WithObserver(obs) }

// StudyNames lists the registered studies.
func StudyNames() []string { return study.Names() }

// StudyByName returns a fresh copy of a registered study.
func StudyByName(name string) (*Study, error) { return study.ByName(name) }

// LoadStudyFile reads, decodes and validates a JSON study file (see README
// "Running studies" and examples/studies/).
func LoadStudyFile(path string) (*Study, error) { return study.LoadFile(path) }

// DecodeStudy parses one JSON study.
func DecodeStudy(r io.Reader) (*Study, error) { return study.Decode(r) }

// EncodeStudy writes a study as indented JSON; every registered study
// round-trips through Encode/Decode unchanged.
func EncodeStudy(w io.Writer, st *Study) error { return study.Encode(w, st) }

// StudyMetrics lists the registered pivot metrics.
func StudyMetrics() []StudyMetric { return study.Metrics() }

// StudyMetricByKey resolves a registered pivot metric.
func StudyMetricByKey(key string) (StudyMetric, error) { return study.MetricByKey(key) }

// Seeds builds n sequential trial seeds starting at base, the conventional
// input for SweepSpec.Seeds.
func Seeds(base int64, n int) []int64 { return runner.Seeds(base, n) }

// Re-exported fleet types: distributed study execution. One coordinator
// serves a study's grid cells over HTTP/JSON leases; any number of workers
// join, execute cells locally, and stream progress back, with completed
// cells checkpointed for bit-for-bit resume (see README: running a fleet).
type (
	// FleetCoordinator serves a study grid to fleet workers and fans their
	// progress into study observers.
	FleetCoordinator = fleet.Coordinator
	// FleetCoordinatorConfig parameterizes NewFleetCoordinator.
	FleetCoordinatorConfig = fleet.CoordinatorConfig
	// FleetWorkerConfig parameterizes RunFleetWorker.
	FleetWorkerConfig = fleet.WorkerConfig
)

// NewFleetCoordinator starts serving a study's cells to fleet workers.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) (*FleetCoordinator, error) {
	return fleet.NewCoordinator(cfg)
}

// RunFleetWorker joins a coordinator and executes leased cells until the
// grid completes, a cell fails, or ctx is cancelled.
func RunFleetWorker(ctx context.Context, cfg FleetWorkerConfig) error {
	return fleet.RunWorker(ctx, cfg)
}

// StudyCellDigest is the canonical digest of one grid cell under the study
// identified by studyDigest (Study.Digest) — the fleet's checkpoint key.
func StudyCellDigest(studyDigest string, info StudyRunInfo) string {
	return study.CellDigest(studyDigest, info)
}

// EncodeStudyResult writes a study result — the study plus its executed
// cells — as strict, bit-stable JSON.
func EncodeStudyResult(w io.Writer, r *StudyResult) error { return study.EncodeResult(w, r) }

// DecodeStudyResult parses one result file, strictly: unknown fields are
// errors and the cells must match the embedded study's own grid.
func DecodeStudyResult(r io.Reader) (*StudyResult, error) { return study.DecodeResult(r) }

// EncodeRunSummary writes one per-run summary as strict, bit-stable JSON —
// the unit the fleet checkpoints and ships over its wire protocol.
func EncodeRunSummary(w io.Writer, s *RunSummary) error { return study.EncodeSummary(w, s) }

// DecodeRunSummary parses one per-run summary, strictly.
func DecodeRunSummary(r io.Reader) (*RunSummary, error) { return study.DecodeSummary(r) }

// Re-exported scenario types: the declarative workload-timeline layer.
type (
	// ScenarioSpec is a named, seedable workload timeline (flash crowd,
	// diurnal wave, AS partition, tracker outage, ...).
	ScenarioSpec = scenario.Spec
	// ScenarioEvent is one timeline entry of a ScenarioSpec.
	ScenarioEvent = scenario.Event
	// SeriesSample is one time-series bucket of a scenario run.
	SeriesSample = experiment.SeriesSample
	// ASSample is one tracked AS's slice of a SeriesSample.
	ASSample = experiment.ASSample
	// PlotArtifact is one named, renderable SVG chart.
	PlotArtifact = plot.Artifact
)

// Scenario event kinds and arrival shapes, for building custom timelines.
const (
	ScenarioArrivals        = scenario.Arrivals
	ScenarioDepartures      = scenario.Departures
	ScenarioPartition       = scenario.Partition
	ScenarioThrottle        = scenario.Throttle
	ScenarioTrackerOutage   = scenario.TrackerOutage
	ScenarioSourceFailover  = scenario.SourceFailover
	ScenarioRegionalChurn   = scenario.RegionalChurn
	ScenarioCountryThrottle = scenario.CountryThrottle
	ScenarioZap             = scenario.Zap

	ShapeUniform = scenario.ShapeUniform
	ShapeBurst   = scenario.ShapeBurst
	ShapeWave    = scenario.ShapeWave
)

// ScenarioNames lists the registered workload scenarios.
func ScenarioNames() []string { return scenario.Names() }

// LoadScenarioFile reads, decodes and validates a JSON scenario file (see
// README "Authoring scenario files" and examples/scenarios/). The returned
// spec plugs into Scale.ScenarioSpec, SweepSpec.ScenarioSpec or
// Config.Scenario exactly like a registered one.
func LoadScenarioFile(path string) (*ScenarioSpec, error) { return scenario.LoadFile(path) }

// DecodeScenario parses one JSON scenario spec.
func DecodeScenario(r io.Reader) (*ScenarioSpec, error) { return scenario.Decode(r) }

// EncodeScenario writes a spec as indented JSON; every registered scenario
// round-trips through Encode/Decode unchanged.
func EncodeScenario(w io.Writer, s *ScenarioSpec) error { return scenario.Encode(w, s) }

// StrategyNames lists the registered chunk-scheduling strategies, default
// first.
func StrategyNames() []string { return policy.StrategyNames() }

// StrategyByName resolves a chunk-scheduling strategy: a registered name,
// a parameterized hybrid member ("hybrid:u=0.3,r=0.5", see HybridGrammar),
// or "" for the default (urgent-random).
func StrategyByName(name string) (ChunkStrategy, error) { return policy.StrategyByName(name) }

// StrategyDescription returns the one-line description of a registered or
// parameterized strategy ("" when unknown).
func StrategyDescription(name string) string { return policy.StrategyDescription(name) }

// HybridGrammar documents the parameterized hybrid strategy name syntax.
const HybridGrammar = policy.HybridGrammar

// ParseHybrid parses a "hybrid[:k=v,...]" strategy name into its member.
func ParseHybrid(name string) (Hybrid, error) { return policy.ParseHybrid(name) }

// ScenarioByName returns a fresh copy of a registered workload scenario.
func ScenarioByName(name string) (*ScenarioSpec, error) { return scenario.ByName(name) }

// SeriesTable renders the per-bucket time series of scenario runs that
// share a scenario and duration.
func SeriesTable(results []*Result) *Table { return experiment.SeriesTable(results) }

// ASSeriesTable renders the per-AS time-series breakdown of scenario runs
// that sampled one (nil when none did).
func ASSeriesTable(results []*Result) *Table { return experiment.ASSeriesTable(results) }

// SeriesPlots renders the scenario time series of results as SVG line
// charts — swarm-wide metrics plus per-AS breakdowns. Nil when no result
// carried a series.
func SeriesPlots(results []*Result) []PlotArtifact { return experiment.SeriesPlots(results) }

// Figure1Plots renders each result's Figure-1 geographic breakdown as one
// grouped SVG bar chart.
func Figure1Plots(results []*Result) []PlotArtifact { return experiment.Figure1Plots(results) }

// WritePlots renders SVG artifacts into dir (created if absent), one file
// per artifact, and returns the written file names.
func WritePlots(dir string, arts []PlotArtifact) ([]string, error) { return plot.WriteDir(dir, arts) }

// Summarize reduces one Result to its sweep summary.
func Summarize(r *Result) RunSummary { return experiment.Summarize(r) }

// TableII builds the experiment-summary table.
func TableII(results []*Result) *Table { return experiment.TableII(results) }

// TableIII builds the self-induced-bias table.
func TableIII(results []*Result) *Table { return experiment.TableIII(results) }

// TableIV builds the network-awareness table.
func TableIV(results []*Result) *Table { return experiment.TableIV(results) }

// ComputeTableIV returns the raw Table IV metrics for one result.
func ComputeTableIV(r *Result) []TableIVCell { return experiment.ComputeTableIV(r) }

// Figure1 computes the geographic breakdown for one result.
func Figure1(r *Result) GeoBreakdown { return experiment.ComputeFigure1(r) }

// RenderFigure1 writes the Figure-1 bars for a set of results.
func RenderFigure1(w io.Writer, results []*Result) error {
	return experiment.RenderFigure1(w, results)
}

// Figure2 computes the AS-to-AS probe traffic matrix for one result.
func Figure2(r *Result) ASTraffic { return experiment.ComputeFigure2(r) }

// RenderFigure2 writes the Figure-2 matrices for a set of results.
func RenderFigure2(w io.Writer, results []*Result) error {
	return experiment.RenderFigure2(w, results)
}

// HopSweep evaluates the HOP preference indices across a band of
// thresholds around the paper's fixed 19, the A2 ablation: it shows the
// 50/50 split is not an artifact of the exact cut.
func HopSweep(r *Result, lo, hi int) (*Table, error) {
	if lo > hi || lo < 1 {
		return nil, fmt.Errorf("napawine: bad hop sweep range [%d,%d]", lo, hi)
	}
	t := report.NewTable(
		fmt.Sprintf("HOP threshold sweep — %s", r.App),
		"Threshold", "B'D%", "P'D%", "B'U%", "P'U%")
	for th := lo; th <= hi; th++ {
		c := core.HOPClassifier{Threshold: th}
		d := core.Compute(r.Observations, core.Download, c, r.Cfg.Contrib, true)
		u := core.Compute(r.Observations, core.Upload, c, r.Cfg.Contrib, true)
		t.Add(fmt.Sprintf("%d", th),
			report.PctOrDash(d.BytePct, d.Valid()),
			report.PctOrDash(d.PeerPct, d.Valid()),
			report.PctOrDash(u.BytePct, u.Valid()),
			report.PctOrDash(u.PeerPct, u.Valid()))
	}
	return t, nil
}
