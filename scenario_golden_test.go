package napawine_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"napawine"
)

// The scenario golden digest: a seed-1717 TVAnts flashcrowd run at
// miniature scale, every table plus the per-bucket time series, hashed.
// This is the byte-order guard for the scenario codec/refactor work: a
// change to event compilation order, RNG consumption, or series sampling
// lands here as a digest mismatch instead of as silent drift of the
// dynamic-workload numbers. Update the constant only for a change that
// *intends* to alter scenario output, and say so in the commit.
const scenarioGoldenDigest = "b7491815c09aa275d7b24c104455ce407f154ca7cb2d56100df46cfa9527dd70"

func scenarioGoldenRender(t testing.TB, spec *napawine.ScenarioSpec) string {
	t.Helper()
	results, err := napawine.RunAll(napawine.Scale{
		Seed:         1717,
		Duration:     60 * time.Second,
		PeerFactor:   0.1,
		Apps:         []string{napawine.TVAnts},
		Scenario:     "flashcrowd",
		ScenarioSpec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tab := range []*napawine.Table{
		napawine.TableII(results), napawine.TableIII(results), napawine.TableIV(results),
		napawine.SeriesTable(results),
	} {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

func TestScenarioGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario run simulates a full swarm; skipped under -short")
	}
	digest := scenarioGoldenRender(t, nil)
	if digest != scenarioGoldenDigest {
		t.Errorf("scenario table digest drifted:\n got %s\nwant %s\nevery rendered byte of a scenario run must survive refactors", digest, scenarioGoldenDigest)
	}
}

// TestScenarioGoldenDigestFromFile: the same timeline authored as a JSON
// file must reproduce the registered scenario's run byte-for-byte — the
// codec is a parser, never a different simulation.
func TestScenarioGoldenDigestFromFile(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenario run simulates a full swarm; skipped under -short")
	}
	spec, err := napawine.LoadScenarioFile("examples/scenarios/flashcrowd.json")
	if err != nil {
		t.Fatal(err)
	}
	digest := scenarioGoldenRender(t, spec)
	if digest != scenarioGoldenDigest {
		t.Errorf("file-authored flashcrowd diverged from the registered run:\n got %s\nwant %s", digest, scenarioGoldenDigest)
	}
}
