module napawine

go 1.24
