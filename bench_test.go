// Benchmark harness: one benchmark per paper table and figure (E1–E6 in
// DESIGN.md) plus the two ablations (A1, A2).
//
// Simulation benchmarks (the ones that *regenerate* a table's data) run a
// miniature world per iteration; reduction benchmarks (computing a table
// from captured observations) reuse one cached battery. Run everything
// with:
//
//	go test -bench=. -benchmem
//
// and a single full-size regeneration with e.g.:
//
//	go test -bench=BenchmarkTableIV -benchtime=1x
package napawine_test

import (
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"napawine"
	"napawine/internal/world"
)

// benchBattery lazily runs one miniature three-app battery shared by the
// reduction benchmarks.
var (
	benchOnce    sync.Once
	benchResults []*napawine.Result
	benchErr     error
)

func benchBatteryResults(b *testing.B) []*napawine.Result {
	b.Helper()
	benchOnce.Do(func() {
		benchResults, benchErr = napawine.RunAll(napawine.Scale{
			Seed:       4242,
			Duration:   2 * time.Minute,
			PeerFactor: 0.15,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResults
}

// BenchmarkTableI regenerates the E1 experiment: building the Table I
// testbed world (no background swarm, no simulation).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := world.Build(world.Spec{Seed: int64(i + 1), Peers: 0, HighBwFraction: 0.7, SubnetsPerAS: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(w.Probes) != 44 {
			b.Fatal("testbed size wrong")
		}
	}
}

// BenchmarkTableII regenerates the E2 experiment end to end at miniature
// scale: one SopCast swarm simulated per iteration, then the Table II row
// reduction.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := napawine.DefaultConfig(napawine.SopCast)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 90 * time.Second
		cfg.World.Peers = 120
		r, err := napawine.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := napawine.TableII([]*napawine.Result{r}).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIII measures the E4 reduction: the self-induced-bias table
// computed from the cached battery's observations.
func BenchmarkTableIII(b *testing.B) {
	results := benchBatteryResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := napawine.TableIII(results).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIV measures the E5 reduction: all five preference
// partitions × two directions × primed/full variants × three applications.
func BenchmarkTableIV(b *testing.B) {
	results := benchBatteryResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := napawine.TableIV(results).Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 measures the E3 reduction: the geographic breakdown of
// peers and bytes.
func BenchmarkFigure1(b *testing.B) {
	results := benchBatteryResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := napawine.RenderFigure1(io.Discard, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 measures the E6 reduction: the AS-to-AS probe traffic
// matrix and its intra/inter ratio R.
func BenchmarkFigure2(b *testing.B) {
	results := benchBatteryResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := napawine.RenderFigure2(io.Discard, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationASKnobs regenerates the A1 ablation: a TVAnts variant
// with AS-blind discovery, simulated per iteration at miniature scale.
func BenchmarkAblationASKnobs(b *testing.B) {
	base, err := napawine.ProfileOf(napawine.TVAnts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := napawine.DefaultConfig(napawine.TVAnts)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 90 * time.Second
		cfg.World.Peers = 100
		cfg.Profile = napawine.ProfileVariant(base, "TVAnts-blind", func(p *napawine.Profile) {
			p.DiscoveryWeight = napawine.Uniform{}
		})
		r, err := napawine.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = napawine.ComputeTableIV(r)
	}
}

// BenchmarkAblationHopThreshold measures the A2 ablation: sweeping the HOP
// partition threshold across the cached observations.
func BenchmarkAblationHopThreshold(b *testing.B) {
	results := benchBatteryResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range results {
			if _, err := napawine.HopSweep(r, 15, 23); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweep measures the replicated battery layer end to end: three
// applications × three seeds at miniature scale, fanned through the
// parallel runner and reduced to the aggregated mean±stderr tables.
func BenchmarkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := napawine.Sweep(napawine.SweepSpec{
			BaseSeed:   int64(i*100 + 1),
			Trials:     3,
			Duration:   45 * time.Second,
			PeerFactor: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range []*napawine.Table{res.TableII(), res.TableIII(), res.TableIV()} {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSwarmSimulation isolates the engine: events per second for a
// mid-size PPLive-profile swarm (the heaviest profile). The Shards4
// variant runs the identical workload split across four shard engines —
// on a multi-core box the wall-time ratio between the two is the
// parallel engine's speedup.
func BenchmarkSwarmSimulation(b *testing.B) {
	benchSwarm(b, 0)
}

func BenchmarkSwarmSimulationShards4(b *testing.B) {
	benchSwarm(b, 4)
}

func benchSwarm(b *testing.B, shards int) {
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := napawine.DefaultConfig(napawine.PPLive)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 60 * time.Second
		cfg.World.Peers = 200
		cfg.Shards = shards
		r, err := napawine.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkSwarmSimulation100k is the large-swarm smoke: a 10⁵-peer
// PPLive swarm under a steady scenario, one iteration per -benchtime=1x.
// At this population the experiment layer auto-enables the lean ledger
// (LeanLedgerAutoPeers), so resident accounting memory is O(1) scalars
// plus an O(buckets) series — the benchmark asserts the switch engaged.
// Gated behind NAPAWINE_LARGE_BENCH because one iteration simulates a
// hundred thousand peers; the generic -bench=. smoke skips it.
func BenchmarkSwarmSimulation100k(b *testing.B) {
	benchSwarm100k(b, 0)
}

// BenchmarkSwarmSimulation100kShards8 is the parallel-engine acceptance
// benchmark: the same 10⁵-peer swarm split across eight shard engines.
// Compare against BenchmarkSwarmSimulation100k on a machine with ≥8
// cores for the sharded-clock speedup.
func BenchmarkSwarmSimulation100kShards8(b *testing.B) {
	benchSwarm100k(b, 8)
}

func benchSwarm100k(b *testing.B, shards int) {
	if os.Getenv("NAPAWINE_LARGE_BENCH") == "" {
		b.Skip("set NAPAWINE_LARGE_BENCH=1 to run the 100k-peer smoke")
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := napawine.DefaultConfig(napawine.PPLive)
		cfg.Seed = int64(i + 1)
		cfg.Duration = 30 * time.Second
		cfg.World.Peers = 100_000
		cfg.Shards = shards
		cfg.Scenario = &napawine.ScenarioSpec{Name: "steady"}
		r, err := napawine.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Ledger.Lean() {
			b.Fatal("100k-peer run did not auto-enable the lean ledger")
		}
		events += r.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}
