// Biasstudy: Table III made tangible — how much the testbed measures
// *itself* instead of the swarm, and how the probe-filtering of §III-C
// corrects for it.
//
// The NAPA-WINE probes are islands of high-bandwidth hosts sharing LANs,
// ASes and countries. Left unfiltered, they dominate each other's
// contributor sets and fake locality preferences. The study runs one
// experiment and prints every awareness index twice: over the full
// contributor set and over the set with probes removed.
//
//	go run ./examples/biasstudy
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"napawine"
)

func main() {
	cfg := napawine.DefaultConfig(napawine.TVAnts)
	cfg.Seed = 13
	cfg.Duration = 4 * time.Minute
	cfg.World.Peers = 260

	fmt.Println("running a TVAnts swarm to measure the testbed's self-induced bias...")
	result, err := napawine.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	results := []*napawine.Result{result}
	if err := napawine.TableIII(results).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("Per-property effect of the probe filter (download direction):")
	fmt.Printf("%-5s %12s %12s %14s\n", "Prop", "B% (all)", "B'% (no W)", "inflation B-B'")
	for _, c := range napawine.ComputeTableIV(result) {
		if !c.BD.Valid() {
			continue
		}
		inflation := c.BD.BytePct - c.BDPrime.BytePct
		fmt.Printf("%-5s %12.1f %12.1f %14.1f\n",
			c.Property, c.BD.BytePct, c.BDPrime.BytePct, inflation)
	}

	fmt.Println()
	fmt.Println("NET never survives the filter (only probes share subnets), and the")
	fmt.Println("HOP/AS rows deflate once probe-to-probe traffic is removed: exactly")
	fmt.Println("the correction the paper applies before drawing any conclusion.")
}
