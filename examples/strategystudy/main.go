// Strategystudy: run the registered strategy-comparison study — the
// Mathieu–Perino chunk-scheduling space replayed per application — scaled
// down to example size, with live progress from a study Observer, and pivot
// the results two ways.
//
//	go run ./examples/strategystudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"napawine"
)

// ticker is a minimal study Observer: one line per finished run. Observer
// callbacks fire concurrently from worker goroutines, so it counts with an
// atomic instead of assuming order.
type ticker struct{ done atomic.Int64 }

func (t *ticker) OnRunStart(napawine.StudyRunInfo) {}

func (t *ticker) OnRunDone(info napawine.StudyRunInfo, sum napawine.RunSummary, err error) {
	n := t.done.Add(1)
	if err != nil {
		fmt.Printf("  [%d/%d] %s failed: %v\n", n, info.Total, info.Label(), err)
		return
	}
	fmt.Printf("  [%d/%d] %s: continuity %.3f, source %.0f kbps, diffusion %.2fs\n",
		n, info.Total, info.Label(), sum.MeanContinuity, sum.SourceKbps, sum.DiffusionDelayS)
}

func (t *ticker) OnSample(napawine.StudyRunInfo, napawine.SeriesSample) {}

func main() {
	// Start from the registered study (the same grid ships as
	// examples/studies/strategy-comparison.json) and shrink it to example
	// scale: the axes stay, the swarms get small.
	st, err := napawine.StudyByName("strategy-comparison")
	if err != nil {
		log.Fatal(err)
	}
	st.Duration = napawine.StudyDuration(45 * time.Second)
	st.Trials = 2
	st.PeerFactor = 0.1

	fmt.Printf("study %q: %d runs (%d apps × %d strategies × %d seeds)\n",
		st.Name, st.Runs(), len(st.AppList()), len(st.StrategyList()), len(st.SeedList()))
	start := time.Now()
	res, err := napawine.RunStudy(context.Background(), st, napawine.WithObserver(&ticker{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// The headline artifact: continuity, source load and diffusion delay
	// contrasted across every (app, strategy) pair.
	if err := res.ComparisonTable().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The same results pivot along any axis: here diffusion delay as
	// strategies × apps.
	delay, err := napawine.StudyMetricByKey("diffusion-delay")
	if err != nil {
		log.Fatal(err)
	}
	if err := res.PivotTable(delay, napawine.AxisStrategy, napawine.AxisApp).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table: latest-useful diffuses newest chunks fastest at")
	fmt.Println("deadline risk; deadline-first chases continuity and leans on the")
	fmt.Println("source; urgent-random (every 2008 client's choice) splits the")
	fmt.Println("difference. Full scale: go run ./cmd/napawine -study strategy-comparison")
}
