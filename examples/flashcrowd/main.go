// Flashcrowd: replay the built-in flash-crowd scenario against a small
// TVAnts-like swarm and watch its locality bias respond in the per-bucket
// time series — the dynamic view the paper's hour-long averages cannot show.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"napawine"
)

func main() {
	cfg := napawine.DefaultConfig(napawine.TVAnts)
	cfg.Seed = 7
	cfg.Duration = 2 * time.Minute
	cfg.World.Peers = 150

	// The flash crowd: a deferred peer pool the size of the base audience
	// bursts in at ~25% of the run; half the swarm walks away near the end.
	scn, err := napawine.ScenarioByName("flashcrowd")
	if err != nil {
		log.Fatal(err)
	}
	scn.Buckets = 16 // finer sampling than the default 12
	cfg.Scenario = scn

	fmt.Printf("running scenario %q over a 2-virtual-minute TVAnts swarm...\n", scn.Name)
	fmt.Printf("  %s\n", scn.Description)
	start := time.Now()
	result, err := napawine.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v: %d events, mean continuity %.3f\n\n",
		time.Since(start).Round(time.Millisecond), result.Events, result.MeanContinuity)

	results := []*napawine.Result{result}
	if err := napawine.SeriesTable(results).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := napawine.TableIV(results).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the series: Online jumps when the crowd arrives and sags")
	fmt.Println("after the exodus; Intra-AS% is TVAnts' locality bias per bucket —")
	fmt.Println("the crowd dilutes it until discovery re-finds same-AS partners.")
	fmt.Println("Other scenarios: go run ./cmd/napawine -scenario-list")
}
