// Awareness: the full paper battery — run PPLive-, SopCast- and
// TVAnts-like swarms and regenerate Tables II–IV and Figures 1–2.
//
//	go run ./examples/awareness            # ~a minute of wall time
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"napawine"
)

func main() {
	fmt.Println("running the three applications in parallel (4 virtual minutes each)...")
	start := time.Now()
	results, err := napawine.RunAll(napawine.Scale{
		Seed:       21,
		Duration:   4 * time.Minute,
		PeerFactor: 0.5, // half-size worlds keep the demo quick
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	for _, render := range []func() error{
		func() error { return napawine.TableII(results).Render(os.Stdout) },
		func() error { return napawine.TableIII(results).Render(os.Stdout) },
		func() error { return napawine.TableIV(results).Render(os.Stdout) },
		func() error { return napawine.RenderFigure1(os.Stdout, results) },
		func() error { return napawine.RenderFigure2(os.Stdout, results) },
	} {
		if err := render(); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("Shape checks against the paper:")
	for _, r := range results {
		cells := napawine.ComputeTableIV(r)
		var as napawine.TableIVCell
		for _, c := range cells {
			if c.Property == "AS" {
				as = c
			}
		}
		ratio := 0.0
		if as.PDPrime.PeerPct > 0 {
			ratio = as.BDPrime.BytePct / as.PDPrime.PeerPct
		}
		fig2 := napawine.Figure2(r)
		fmt.Printf("  %-8s AS B'/P' ratio=%.1f  Fig2 R=%.2f  hop median=%.0f\n",
			r.App, ratio, fig2.R, r.HopMedianMeasured)
	}
	fmt.Println("\nExpected: PPLive ratio ≫ 1, TVAnts ratio ≈ 2 with the largest P',")
	fmt.Println("SopCast ratio ≈ 1; Fig2 R largest for TVAnts.")
}
