// Quickstart: run one small SopCast-like experiment and print its
// network-awareness indices (the paper's Table IV rows for one app).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"napawine"
)

func main() {
	cfg := napawine.DefaultConfig(napawine.SopCast)
	cfg.Seed = 7
	cfg.Duration = 3 * time.Minute // keep the demo fast; use 10m+ for stable numbers
	cfg.World.Peers = 250

	fmt.Println("running a 3-virtual-minute SopCast swarm (250 background peers)...")
	start := time.Now()
	result, err := napawine.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v: %d events, mean continuity %.3f, hop median %.0f\n\n",
		time.Since(start).Round(time.Millisecond),
		result.Events, result.MeanContinuity, result.HopMedianMeasured)

	if err := napawine.TableIV([]*napawine.Result{result}).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table: BW rows show the strong bandwidth preference")
	fmt.Println("every 2008-era P2P-TV client embeds; SopCast's AS rows show B ≈ P,")
	fmt.Println("i.e. no location awareness — matching the paper's conclusion.")
}
