// Custompolicy: the A1 ablation plus the paper's future-work direction.
//
// The paper measures *what* awareness each client embeds but cannot say
// *where* it lives (discovery vs chunk scheduling). Because our profiles
// expose those knobs, we can isolate them: run stock TVAnts, a variant
// with AS-blind discovery, a variant with AS-blind scheduling, and a
// future-work variant that also weighs RTT — then let the unchanged
// measurement framework report what each one looks like on the wire.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"time"

	"napawine"
)

func run(label string, mutate func(*napawine.Profile)) *napawine.Result {
	cfg := napawine.DefaultConfig(napawine.TVAnts)
	cfg.Seed = 5
	cfg.Duration = 4 * time.Minute
	cfg.World.Peers = 240

	if mutate != nil {
		base, err := napawine.ProfileOf(napawine.TVAnts)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Profile = napawine.ProfileVariant(base, label, mutate)
	}
	result, err := napawine.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return result
}

func describe(label string, r *napawine.Result) {
	var as, hop napawine.TableIVCell
	for _, c := range napawine.ComputeTableIV(r) {
		switch c.Property {
		case "AS":
			as = c
		case "HOP":
			hop = c
		}
	}
	fig2 := napawine.Figure2(r)
	fmt.Printf("%-22s AS: B'D=%5.1f P'D=%5.1f   HOP: B'D=%5.1f P'D=%5.1f   R=%5.2f\n",
		label, as.BDPrime.BytePct, as.PDPrime.PeerPct,
		hop.BDPrime.BytePct, hop.PDPrime.PeerPct, fig2.R)
}

func main() {
	fmt.Println("running four TVAnts-world experiments (ablation + future work)...")

	stock := run("stock", nil)
	describe("stock TVAnts", stock)

	noDisc := run("TVAnts-blindDiscovery", func(p *napawine.Profile) {
		p.DiscoveryWeight = napawine.Uniform{}
	})
	describe("AS-blind discovery", noDisc)

	noSched := run("TVAnts-blindScheduling", func(p *napawine.Profile) {
		p.RequestWeight = napawine.BandwidthBias{
			Ref: 384_000, Alpha: 2, Floor: 768_000,
		}
		p.RetainWeight = napawine.BandwidthBias{
			Ref: 384_000, Alpha: 1, Floor: 192_000,
		}
	})
	describe("AS-blind scheduling", noSched)

	rttAware := run("TVAnts-rttAware", func(p *napawine.Profile) {
		p.DiscoveryWeight = napawine.ProductWeight{
			p.DiscoveryWeight,
			napawine.RTTBias{Near: 60 * time.Millisecond, Factor: 12},
		}
		p.RequestWeight = napawine.ProductWeight{
			p.RequestWeight,
			napawine.RTTBias{Near: 60 * time.Millisecond, Factor: 4},
		}
	})
	describe("RTT-aware (future)", rttAware)

	fmt.Println("\nReading the rows:")
	fmt.Println("  - removing discovery bias collapses P' (few same-AS peers found);")
	fmt.Println("  - removing scheduling bias narrows B' toward P';")
	fmt.Println("  - the RTT-aware variant lifts the HOP row above the stock ≈50/50,")
	fmt.Println("    showing the unchanged framework would expose a locality-aware")
	fmt.Println("    client — the paper's closing recommendation made concrete.")
}
