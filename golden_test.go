package napawine_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"napawine"
)

// The golden battery: every table and figure of a three-app seed-4242 run
// at miniature scale, hashed. The digest was captured on main before the
// selection-pipeline refactor; any hot-path change that perturbs the event
// or RNG sequence — a reordered iteration, an extra draw, a float computed
// differently — lands here as a digest mismatch instead of as a silent
// drift of the paper's tables. Update the constants only for a change that
// *intends* to alter simulation output, and say so in the commit.
const (
	goldenDigest = "2546bd16b122687bf0db1b40350c7c83d98d03cfe0e843d0d01c1e9292c650e1"
	goldenEvents = 237686
)

func goldenRender(t testing.TB) (string, uint64) {
	t.Helper()
	results, err := napawine.RunAll(napawine.Scale{
		Seed:       4242,
		Duration:   90 * time.Second,
		PeerFactor: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tab := range []*napawine.Table{
		napawine.TableII(results), napawine.TableIII(results), napawine.TableIV(results),
	} {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := napawine.RenderFigure1(&buf, results); err != nil {
		t.Fatal(err)
	}
	if err := napawine.RenderFigure2(&buf, results); err != nil {
		t.Fatal(err)
	}
	var events uint64
	for _, r := range results {
		events += r.Events
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())), events
}

func TestGoldenMiniBatteryDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("golden battery simulates three full swarms; skipped under -short")
	}
	digest, events := goldenRender(t)
	if events != goldenEvents {
		t.Errorf("event count drifted: got %d, want %d — the refactor changed the event sequence", events, goldenEvents)
	}
	if digest != goldenDigest {
		t.Errorf("table digest drifted:\n got %s\nwant %s\nevery rendered table/figure byte must survive hot-path refactors", digest, goldenDigest)
	}
}
