package napawine_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"napawine"
)

// TestStudyFileMatchesRegistered pins the shipped study artifacts to the
// registry: examples/studies/<name>.json must be byte-for-byte what
// EncodeStudy writes for the registered study of the same name, and decode
// back to the identical grid. With the executor fully deterministic (see
// the study package's cross-worker test), spec identity is run identity.
func TestStudyFileMatchesRegistered(t *testing.T) {
	for _, name := range napawine.StudyNames() {
		loaded, err := napawine.LoadStudyFile("examples/studies/" + name + ".json")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reg, err := napawine.StudyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var fromFile, fromReg bytes.Buffer
		if err := napawine.EncodeStudy(&fromFile, loaded); err != nil {
			t.Fatal(err)
		}
		if err := napawine.EncodeStudy(&fromReg, reg); err != nil {
			t.Fatal(err)
		}
		if fromFile.String() != fromReg.String() {
			t.Errorf("%s: examples/studies/%s.json differs from the registered study:\n--- file ---\n%s\n--- registry ---\n%s",
				name, name, fromFile.String(), fromReg.String())
		}
	}
}

// scaleDown shrinks a study to test size without touching its axes.
func scaleDown(st *napawine.Study) {
	st.Duration = napawine.StudyDuration(20 * time.Second)
	st.Seeds = nil
	st.Trials = 1
	st.PeerFactor = 0.05
	st.Apps = []string{napawine.TVAnts}
}

// TestStrategyComparisonArtifact runs the headline study (scaled down) end
// to end through the facade twice — once from the registry, once from the
// shipped JSON file — and requires byte-identical comparison tables that
// actually contrast all four strategies on continuity, source load and
// diffusion delay.
func TestStrategyComparisonArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("study battery simulates four swarms; skipped under -short")
	}
	render := func(st *napawine.Study) string {
		scaleDown(st)
		res, err := napawine.RunStudy(context.Background(), st, napawine.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.ComparisonTable().Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	reg, err := napawine.StudyByName("strategy-comparison")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := napawine.LoadStudyFile("examples/studies/strategy-comparison.json")
	if err != nil {
		t.Fatal(err)
	}
	a, b := render(reg), render(fromFile)
	if a != b {
		t.Errorf("file-authored study diverged from the registered run:\n--- registry ---\n%s\n--- file ---\n%s", a, b)
	}
	for _, want := range []string{
		"urgent-random", "latest-useful", "rarest", "deadline",
		"Continuity", "Source kbps", "Source share%", "Diffusion s",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("comparison table missing %q:\n%s", want, a)
		}
	}
}

// TestRunStudyPivots exercises the axis pivot through the facade.
func TestRunStudyPivots(t *testing.T) {
	if testing.Short() {
		t.Skip("study battery simulates swarms; skipped under -short")
	}
	st := &napawine.Study{
		Name:       "pivot-test",
		Apps:       []string{napawine.TVAnts},
		Strategies: []string{"urgent-random", "deadline"},
		Seeds:      []int64{3, 4},
		Duration:   napawine.StudyDuration(20 * time.Second),
		PeerFactor: 0.05,
	}
	res, err := napawine.RunStudy(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	m, err := napawine.StudyMetricByKey("continuity")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.PivotTable(m, napawine.AxisStrategy, napawine.AxisSeed).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"urgent-random", "deadline", "3", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("pivot table missing %q:\n%s", want, out)
		}
	}
	if got := res.Levels(napawine.AxisStrategy); len(got) != 2 {
		t.Errorf("strategy levels = %v", got)
	}
}

// TestRunStudyCancellationFacade: the facade propagates cancellation and
// returns the partial result, matching the documented contract.
func TestRunStudyCancellationFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := napawine.StudyByName("strategy-comparison")
	if err != nil {
		t.Fatal(err)
	}
	res, err := napawine.RunStudy(ctx, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Cells) != st.Runs() {
		t.Error("cancelled study did not return its partial (empty) grid")
	}
}
