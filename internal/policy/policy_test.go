package policy

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"napawine/internal/units"
)

func TestUniform(t *testing.T) {
	u := Uniform{}
	if u.Weight(Info{}) != 1 || u.Weight(Info{SameAS: true, EstRate: units.Gbps}) != 1 {
		t.Error("uniform weight must be 1 everywhere")
	}
	if u.Name() != "uniform" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestBandwidthBias(t *testing.T) {
	b := BandwidthBias{Ref: 384 * units.Kbps, Alpha: 1, Floor: 384 * units.Kbps}
	low := b.Weight(Info{EstRate: 384 * units.Kbps})
	high := b.Weight(Info{EstRate: 3840 * units.Kbps})
	if math.Abs(low-1) > 1e-12 {
		t.Errorf("weight at ref rate = %v, want 1", low)
	}
	if math.Abs(high-10) > 1e-12 {
		t.Errorf("weight at 10×ref = %v, want 10", high)
	}
	// Unmeasured candidates get the floor, not zero.
	if got := b.Weight(Info{}); math.Abs(got-1) > 1e-12 {
		t.Errorf("unmeasured weight = %v, want floor 1", got)
	}
	// Alpha sharpens the bias.
	sharp := BandwidthBias{Ref: 384 * units.Kbps, Alpha: 2, Floor: 384 * units.Kbps}
	if got := sharp.Weight(Info{EstRate: 3840 * units.Kbps}); math.Abs(got-100) > 1e-9 {
		t.Errorf("alpha=2 weight = %v, want 100", got)
	}
	// Zero ref defaults instead of dividing by zero.
	noRef := BandwidthBias{Alpha: 1, Floor: 384 * units.Kbps}
	if got := noRef.Weight(Info{EstRate: 384 * units.Kbps}); got <= 0 {
		t.Errorf("zero-ref weight = %v", got)
	}
	// No floor, no measurement → unselectable.
	bare := BandwidthBias{Ref: 384 * units.Kbps, Alpha: 1}
	if got := bare.Weight(Info{}); got != 0 {
		t.Errorf("no-floor unmeasured weight = %v, want 0", got)
	}
}

func TestLocalityBiases(t *testing.T) {
	as := ASBias{Factor: 8}
	if as.Weight(Info{SameAS: true}) != 8 || as.Weight(Info{}) != 1 {
		t.Error("ASBias wrong")
	}
	cc := CCBias{Factor: 3}
	if cc.Weight(Info{SameCC: true}) != 3 || cc.Weight(Info{}) != 1 {
		t.Error("CCBias wrong")
	}
	net := SubnetBias{Factor: 5}
	if net.Weight(Info{SameSubnet: true}) != 5 || net.Weight(Info{}) != 1 {
		t.Error("SubnetBias wrong")
	}
	rtt := RTTBias{Near: 50 * time.Millisecond, Factor: 4}
	if rtt.Weight(Info{RTT: 10 * time.Millisecond}) != 4 {
		t.Error("near candidate should get factor")
	}
	if rtt.Weight(Info{RTT: 100 * time.Millisecond}) != 1 {
		t.Error("far candidate should get 1")
	}
	if rtt.Weight(Info{}) != 1 {
		t.Error("unmeasured RTT should get 1")
	}
}

func TestProduct(t *testing.T) {
	p := Product{ASBias{Factor: 8}, CCBias{Factor: 2}}
	if got := p.Weight(Info{SameAS: true, SameCC: true}); got != 16 {
		t.Errorf("product = %v, want 16", got)
	}
	if got := p.Weight(Info{}); got != 1 {
		t.Errorf("product = %v, want 1", got)
	}
	if Product(nil).Weight(Info{}) != 1 {
		t.Error("empty product should be 1")
	}
	if Product(nil).Name() != "uniform" {
		t.Error("empty product name")
	}
	// Zero short-circuits.
	z := Product{BandwidthBias{Ref: units.Kbps, Alpha: 1}, ASBias{Factor: 8}}
	if got := z.Weight(Info{SameAS: true}); got != 0 {
		t.Errorf("zero factor product = %v, want 0", got)
	}
	name := Product{Uniform{}, ASBias{Factor: 8}}.Name()
	if name != "uniform·as×8.0" {
		t.Errorf("Name = %q", name)
	}
}

func mkCands(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{Index: i}
	}
	return out
}

func TestSampleBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := mkCands(10)
	got := Sample(rng, cands, 4, Uniform{})
	if len(got) != 4 {
		t.Fatalf("sample size = %d, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c.Index] {
			t.Fatal("sample has duplicates")
		}
		seen[c.Index] = true
	}
	// k larger than population returns everything.
	all := Sample(rng, cands, 100, Uniform{})
	if len(all) != 10 {
		t.Errorf("oversized k returned %d", len(all))
	}
	if Sample(rng, nil, 3, Uniform{}) != nil {
		t.Error("empty population should return nil")
	}
	if Sample(rng, cands, 0, Uniform{}) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestSampleRespectsWeights(t *testing.T) {
	// Candidate 0 is same-AS with factor 10; it should be picked first far
	// more often than 1/n of the time.
	rng := rand.New(rand.NewSource(2))
	cands := mkCands(10)
	cands[0].Info.SameAS = true
	w := ASBias{Factor: 10}
	hits := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		got := Sample(rng, cands, 1, w)
		if len(got) == 1 && got[0].Index == 0 {
			hits++
		}
	}
	// Expected P ≈ 10/19 ≈ 0.53. Require > 0.4 to stay robust.
	if frac := float64(hits) / trials; frac < 0.4 {
		t.Errorf("weighted candidate picked %.3f of the time, want ≈0.53", frac)
	}
}

func TestSampleExcludesZeroWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := mkCands(5)
	// Only candidate 2 is measurably fast; the rest have zero weight under
	// a floor-less bandwidth bias.
	cands[2].Info.EstRate = units.Mbps
	w := BandwidthBias{Ref: units.Kbps, Alpha: 1}
	for i := 0; i < 100; i++ {
		got := Sample(rng, cands, 3, w)
		if len(got) != 1 || got[0].Index != 2 {
			t.Fatalf("zero-weight candidates selected: %v", got)
		}
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	// Every candidate must be reachable under uniform sampling.
	rng := rand.New(rand.NewSource(4))
	cands := mkCands(6)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, c := range Sample(rng, cands, 2, Uniform{}) {
			seen[c.Index] = true
		}
	}
	if len(seen) != 6 {
		t.Errorf("uniform sampling covered %d of 6 candidates", len(seen))
	}
}

func TestPickOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cands := mkCands(8)
	cands[3].Info.SameAS = true
	w := ASBias{Factor: 1000}
	hits := 0
	for i := 0; i < 1000; i++ {
		c := PickOne(rng, cands, w)
		if c.Index == 3 {
			hits++
		}
	}
	if hits < 950 {
		t.Errorf("heavily weighted candidate hit %d/1000", hits)
	}
	if got := PickOne(rng, nil, Uniform{}); got.Index != -1 {
		t.Errorf("empty PickOne = %v, want index -1", got.Index)
	}
	// All-zero weights are unselectable.
	zero := BandwidthBias{Ref: units.Kbps, Alpha: 1}
	if got := PickOne(rng, mkCands(3), zero); got.Index != -1 {
		t.Errorf("all-zero PickOne = %v, want -1", got.Index)
	}
}

func TestPickOneDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cands := mkCands(2)
	cands[0].Info.EstRate = 3 * units.Mbps
	cands[1].Info.EstRate = 1 * units.Mbps
	w := BandwidthBias{Ref: units.Mbps, Alpha: 1}
	c0 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if PickOne(rng, cands, w).Index == 0 {
			c0++
		}
	}
	frac := float64(c0) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("3:1 weighting picked first %v of the time, want ≈0.75", frac)
	}
}

func TestWorst(t *testing.T) {
	cands := mkCands(4)
	cands[0].Info.EstRate = 4 * units.Mbps
	cands[1].Info.EstRate = 1 * units.Mbps
	cands[2].Info.EstRate = 9 * units.Mbps
	cands[3].Info.EstRate = 1 * units.Mbps
	w := BandwidthBias{Ref: units.Mbps, Alpha: 1}
	got := Worst(cands, w)
	if got.Index != 1 { // tie between 1 and 3 broken by lower index
		t.Errorf("Worst = %d, want 1", got.Index)
	}
	if Worst(nil, w).Index != -1 {
		t.Error("empty Worst should be -1")
	}
}

func TestSampleDeterminism(t *testing.T) {
	run := func() []int {
		rng := rand.New(rand.NewSource(42))
		cands := mkCands(20)
		for i := range cands {
			cands[i].Info.EstRate = units.BitRate(i) * units.Mbps
		}
		var out []int
		for i := 0; i < 50; i++ {
			for _, c := range Sample(rng, cands, 3, BandwidthBias{Ref: units.Mbps, Alpha: 1, Floor: units.Kbps}) {
				out = append(out, c.Index)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic under fixed seed")
		}
	}
}

func BenchmarkSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cands := mkCands(200)
	for i := range cands {
		cands[i].Info.EstRate = units.BitRate(i%17) * units.Mbps
		cands[i].Info.SameAS = i%13 == 0
	}
	w := Product{BandwidthBias{Ref: units.Mbps, Alpha: 1, Floor: units.Kbps}, ASBias{Factor: 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(rng, cands, 20, w)
	}
}

func BenchmarkPickOne(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cands := mkCands(40)
	for i := range cands {
		cands[i].Info.EstRate = units.BitRate(i%11+1) * units.Mbps
	}
	w := BandwidthBias{Ref: units.Mbps, Alpha: 1.5, Floor: units.Kbps}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PickOne(rng, cands, w)
	}
}
