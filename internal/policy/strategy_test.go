package policy

import (
	"math/rand"
	"reflect"
	"testing"
)

// refsFixture builds an ascending window of chunks with varied holder
// counts, urgent prefix first — the shape the scheduler hands a strategy.
func refsFixture() []ChunkRef {
	return []ChunkRef{
		{ID: 10, Holders: 5, Urgent: true},
		{ID: 11, Holders: 1, Urgent: true},
		{ID: 12, Holders: 3, Urgent: true},
		{ID: 13, Holders: 1, Urgent: false},
		{ID: 14, Holders: 0, Urgent: false},
		{ID: 15, Holders: 3, Urgent: false},
		{ID: 16, Holders: 2, Urgent: false},
	}
}

func ids(refs []ChunkRef) []int64 {
	out := make([]int64, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

func TestDeadlineFirstOrdersAscending(t *testing.T) {
	refs := refsFixture()
	// Scramble first: the strategy must not rely on pre-sorted input.
	refs[0], refs[5] = refs[5], refs[0]
	DeadlineFirst{}.Order(rand.New(rand.NewSource(1)), refs)
	want := []int64{10, 11, 12, 13, 14, 15, 16}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("deadline order = %v, want %v", ids(refs), want)
	}
}

func TestLatestUsefulOrdersDescending(t *testing.T) {
	refs := refsFixture()
	LatestUseful{}.Order(rand.New(rand.NewSource(1)), refs)
	want := []int64{16, 15, 14, 13, 12, 11, 10}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("latest-useful order = %v, want %v", ids(refs), want)
	}
}

func TestRarestFirstOrdersByHoldersThenID(t *testing.T) {
	refs := refsFixture()
	RarestFirst{}.Order(rand.New(rand.NewSource(1)), refs)
	// Holders: 14→0, 11→1, 13→1 (tie: lower id first), 16→2, 12→3, 15→3, 10→5.
	want := []int64{14, 11, 13, 16, 12, 15, 10}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("rarest order = %v, want %v", ids(refs), want)
	}
	if !(RarestFirst{}).NeedHolders() {
		t.Error("rarest must request holder counts")
	}
	for _, s := range []ChunkStrategy{UrgentRandom{}, LatestUseful{}, DeadlineFirst{}} {
		if s.NeedHolders() {
			t.Errorf("%s claims to need holder counts", s.Name())
		}
	}
}

func TestUrgentRandomKeepsUrgentPrefixShufflesTail(t *testing.T) {
	refs := refsFixture()
	UrgentRandom{}.Order(rand.New(rand.NewSource(7)), refs)
	if got, want := ids(refs[:3]), []int64{10, 11, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("urgent prefix reordered: %v, want %v", got, want)
	}
	tail := map[int64]bool{}
	for _, r := range refs[3:] {
		if r.Urgent {
			t.Errorf("urgent chunk %d leaked into the shuffled tail", r.ID)
		}
		tail[r.ID] = true
	}
	for _, id := range []int64{13, 14, 15, 16} {
		if !tail[id] {
			t.Errorf("tail lost chunk %d", id)
		}
	}
}

// TestStrategyOrderDeterministic is the cross-worker reproducibility
// contract: identical refs and RNG state must give identical orders, and
// the sorted strategies must not touch the RNG at all (a draw would
// desynchronize every later selection in the run).
func TestStrategyOrderDeterministic(t *testing.T) {
	for _, s := range []ChunkStrategy{UrgentRandom{}, LatestUseful{}, RarestFirst{}, DeadlineFirst{}} {
		a, b := refsFixture(), refsFixture()
		s.Order(rand.New(rand.NewSource(42)), a)
		s.Order(rand.New(rand.NewSource(42)), b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different order: %v vs %v", s.Name(), ids(a), ids(b))
		}
	}
	// The three sorted strategies must consume zero draws: a run under a
	// different RNG state yields the same order.
	for _, s := range []ChunkStrategy{LatestUseful{}, RarestFirst{}, DeadlineFirst{}} {
		a, b := refsFixture(), refsFixture()
		s.Order(rand.New(rand.NewSource(1)), a)
		s.Order(rand.New(rand.NewSource(999)), b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s consumed randomness: %v vs %v", s.Name(), ids(a), ids(b))
		}
		rng := rand.New(rand.NewSource(5))
		before := rng.Int63()
		rng = rand.New(rand.NewSource(5))
		s.Order(rng, refsFixture())
		if rng.Int63() != before {
			t.Errorf("%s advanced the RNG", s.Name())
		}
	}
}

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	if len(names) != 4 || names[0] != "urgent-random" {
		t.Fatalf("StrategyNames = %v, want default first of four", names)
	}
	for _, name := range names {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("registry name %q resolves to strategy %q", name, s.Name())
		}
		if StrategyDescription(name) == "" {
			t.Errorf("strategy %q has no description", name)
		}
	}
	if s, err := StrategyByName(""); err != nil || s.Name() != DefaultStrategy().Name() {
		t.Errorf("empty name must select the default, got %v, %v", s, err)
	}
	if _, err := StrategyByName("newest"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
