package policy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// refsFixture builds an ascending window of chunks with varied holder
// counts, urgent prefix first — the shape the scheduler hands a strategy.
func refsFixture() []ChunkRef {
	return []ChunkRef{
		{ID: 10, Holders: 5, Urgent: true},
		{ID: 11, Holders: 1, Urgent: true},
		{ID: 12, Holders: 3, Urgent: true},
		{ID: 13, Holders: 1, Urgent: false},
		{ID: 14, Holders: 0, Urgent: false},
		{ID: 15, Holders: 3, Urgent: false},
		{ID: 16, Holders: 2, Urgent: false},
	}
}

func ids(refs []ChunkRef) []int64 {
	out := make([]int64, len(refs))
	for i, r := range refs {
		out[i] = r.ID
	}
	return out
}

func TestDeadlineFirstOrdersAscending(t *testing.T) {
	refs := refsFixture()
	// Scramble first: the strategy must not rely on pre-sorted input.
	refs[0], refs[5] = refs[5], refs[0]
	DeadlineFirst{}.Order(rand.New(rand.NewSource(1)), refs)
	want := []int64{10, 11, 12, 13, 14, 15, 16}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("deadline order = %v, want %v", ids(refs), want)
	}
}

func TestLatestUsefulOrdersDescending(t *testing.T) {
	refs := refsFixture()
	LatestUseful{}.Order(rand.New(rand.NewSource(1)), refs)
	want := []int64{16, 15, 14, 13, 12, 11, 10}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("latest-useful order = %v, want %v", ids(refs), want)
	}
}

func TestRarestFirstOrdersByHoldersThenID(t *testing.T) {
	refs := refsFixture()
	RarestFirst{}.Order(rand.New(rand.NewSource(1)), refs)
	// Holders: 14→0, 11→1, 13→1 (tie: lower id first), 16→2, 12→3, 15→3, 10→5.
	want := []int64{14, 11, 13, 16, 12, 15, 10}
	if !reflect.DeepEqual(ids(refs), want) {
		t.Errorf("rarest order = %v, want %v", ids(refs), want)
	}
	if !(RarestFirst{}).NeedHolders() {
		t.Error("rarest must request holder counts")
	}
	for _, s := range []ChunkStrategy{UrgentRandom{}, LatestUseful{}, DeadlineFirst{}} {
		if s.NeedHolders() {
			t.Errorf("%s claims to need holder counts", s.Name())
		}
	}
}

func TestUrgentRandomKeepsUrgentPrefixShufflesTail(t *testing.T) {
	refs := refsFixture()
	UrgentRandom{}.Order(rand.New(rand.NewSource(7)), refs)
	if got, want := ids(refs[:3]), []int64{10, 11, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("urgent prefix reordered: %v, want %v", got, want)
	}
	tail := map[int64]bool{}
	for _, r := range refs[3:] {
		if r.Urgent {
			t.Errorf("urgent chunk %d leaked into the shuffled tail", r.ID)
		}
		tail[r.ID] = true
	}
	for _, id := range []int64{13, 14, 15, 16} {
		if !tail[id] {
			t.Errorf("tail lost chunk %d", id)
		}
	}
}

// TestStrategyOrderDeterministic is the cross-worker reproducibility
// contract: identical refs and RNG state must give identical orders, and
// the sorted strategies must not touch the RNG at all (a draw would
// desynchronize every later selection in the run).
func TestStrategyOrderDeterministic(t *testing.T) {
	for _, s := range []ChunkStrategy{UrgentRandom{}, LatestUseful{}, RarestFirst{}, DeadlineFirst{}} {
		a, b := refsFixture(), refsFixture()
		s.Order(rand.New(rand.NewSource(42)), a)
		s.Order(rand.New(rand.NewSource(42)), b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different order: %v vs %v", s.Name(), ids(a), ids(b))
		}
	}
	// The three sorted strategies must consume zero draws: a run under a
	// different RNG state yields the same order.
	for _, s := range []ChunkStrategy{LatestUseful{}, RarestFirst{}, DeadlineFirst{}} {
		a, b := refsFixture(), refsFixture()
		s.Order(rand.New(rand.NewSource(1)), a)
		s.Order(rand.New(rand.NewSource(999)), b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s consumed randomness: %v vs %v", s.Name(), ids(a), ids(b))
		}
		rng := rand.New(rand.NewSource(5))
		before := rng.Int63()
		rng = rand.New(rand.NewSource(5))
		s.Order(rng, refsFixture())
		if rng.Int63() != before {
			t.Errorf("%s advanced the RNG", s.Name())
		}
	}
}

func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	if len(names) != 4 || names[0] != "urgent-random" {
		t.Fatalf("StrategyNames = %v, want default first of four", names)
	}
	for _, name := range names {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("registry name %q resolves to strategy %q", name, s.Name())
		}
		if StrategyDescription(name) == "" {
			t.Errorf("strategy %q has no description", name)
		}
	}
	if s, err := StrategyByName(""); err != nil || s.Name() != DefaultStrategy().Name() {
		t.Errorf("empty name must select the default, got %v, %v", s, err)
	}
	if _, err := StrategyByName("newest"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestParseHybrid(t *testing.T) {
	good := []struct {
		name string
		want Hybrid
	}{
		{"hybrid", Hybrid{}},
		{"hybrid:u=0.4", Hybrid{UrgentFrac: 0.4}},
		{"hybrid:u=0.4,r=1,d=-0.5,a=2", Hybrid{UrgentFrac: 0.4, RarestWeight: 1, DeadlineBias: -0.5, AwareWeight: 2}},
		{"hybrid:d=1", Hybrid{DeadlineBias: 1}},
	}
	for _, c := range good {
		h, err := ParseHybrid(c.name)
		if err != nil {
			t.Errorf("ParseHybrid(%q): %v", c.name, err)
			continue
		}
		if h != c.want {
			t.Errorf("ParseHybrid(%q) = %+v, want %+v", c.name, h, c.want)
		}
		// Canonical name round-trips through the parser.
		back, err := ParseHybrid(h.Name())
		if err != nil || back != h {
			t.Errorf("round-trip %q -> %q -> %+v (%v)", c.name, h.Name(), back, err)
		}
	}
	bad := []string{
		"hybrid:",        // empty parameter list
		"hybrid:u",       // missing value
		"hybrid:u=",      // empty value
		"hybrid:=1",      // empty key
		"hybrid:x=1",     // unknown key
		"hybrid:u=2",     // urgent fraction out of [0,1]
		"hybrid:u=-0.1",  // urgent fraction out of [0,1]
		"hybrid:r=-1",    // negative rarest weight
		"hybrid:a=-1",    // negative awareness
		"hybrid:d=NaN",   // non-finite
		"hybrid:d=+Inf",  // non-finite
		"hybrid:u=x",     // unparseable value
		"hybrid:u=1,u=1", // duplicate key
		"hybridx",        // junk after the family name
		"rarest",         // not a hybrid name at all
	}
	for _, name := range bad {
		if _, err := ParseHybrid(name); err == nil {
			t.Errorf("ParseHybrid(%q) accepted", name)
		}
	}
}

// TestHybridSubsumesPresets pins the family-coverage claim: the four
// documented members reproduce the registered presets byte-for-byte on the
// same input, consuming identical RNG draws.
func TestHybridSubsumesPresets(t *testing.T) {
	pairs := []struct {
		member Hybrid
		preset ChunkStrategy
	}{
		{Hybrid{UrgentFrac: 1}, UrgentRandom{}},
		{Hybrid{DeadlineBias: 1}, DeadlineFirst{}},
		{Hybrid{DeadlineBias: -1}, LatestUseful{}},
		{Hybrid{RarestWeight: 1}, RarestFirst{}},
	}
	for _, p := range pairs {
		a, b := refsFixture(), refsFixture()
		ra, rb := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
		p.member.Order(ra, a)
		p.preset.Order(rb, b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s vs %s: orders differ: %v vs %v", p.member.Name(), p.preset.Name(), ids(a), ids(b))
		}
		if ra.Int63() != rb.Int63() {
			t.Errorf("%s vs %s: RNG draw counts differ", p.member.Name(), p.preset.Name())
		}
		if p.member.NeedHolders() != p.preset.NeedHolders() {
			t.Errorf("%s vs %s: NeedHolders differ", p.member.Name(), p.preset.Name())
		}
	}
}

// TestStrategyFamilyDeterministic is the determinism contract over the
// whole strategy space, registered and parameterized: same input and RNG
// state → same order and same draw count, and NeedHolders=false strategies
// must be blind to Holders (the scheduler skips counting them).
func TestStrategyFamilyDeterministic(t *testing.T) {
	names := append(StrategyNames(),
		"hybrid", "hybrid:u=0.4", "hybrid:u=0.4,r=1", "hybrid:u=0.4,r=1,a=1",
		"hybrid:d=-1", "hybrid:u=0.3,d=0.7", "hybrid:r=2,d=0.25,a=0.5")
	for _, name := range names {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("StrategyByName(%q): %v", name, err)
		}
		a, b := refsFixture(), refsFixture()
		ra, rb := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
		s.Order(ra, a)
		s.Order(rb, b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different order: %v vs %v", name, ids(a), ids(b))
		}
		if ra.Int63() != rb.Int63() {
			t.Errorf("%s: same seed, different draw count", name)
		}
		if !s.NeedHolders() {
			// Zeroing every holder count must not change the order: a
			// strategy that declares itself holder-blind and then reads
			// Holders would silently break the scheduler's skip.
			c := refsFixture()
			for i := range c {
				c[i].Holders = 0
			}
			s.Order(rand.New(rand.NewSource(42)), c)
			if !reflect.DeepEqual(ids(a), ids(c)) {
				t.Errorf("%s: NeedHolders=false but order depends on Holders: %v vs %v", name, ids(a), ids(c))
			}
		}
	}
}

func TestStrategyByNameHybrid(t *testing.T) {
	s, err := StrategyByName("hybrid:u=0.4,r=1,a=1")
	if err != nil {
		t.Fatalf("StrategyByName: %v", err)
	}
	h, ok := s.(Hybrid)
	if !ok {
		t.Fatalf("StrategyByName returned %T, want Hybrid", s)
	}
	if h != (Hybrid{UrgentFrac: 0.4, RarestWeight: 1, AwareWeight: 1}) {
		t.Errorf("parsed member = %+v", h)
	}
	if got := Awareness(s); got != 1 {
		t.Errorf("Awareness = %v, want 1", got)
	}
	for _, name := range StrategyNames() {
		p, _ := StrategyByName(name)
		if Awareness(p) != 0 {
			t.Errorf("preset %s reports awareness", name)
		}
	}
	if desc := StrategyDescription("hybrid:u=0.4,r=1,a=1"); desc == "" {
		t.Error("valid hybrid has no description")
	}
	if desc := StrategyDescription("hybrid:x=1"); desc != "" {
		t.Errorf("invalid hybrid has description %q", desc)
	}
	if _, err := StrategyByName("hybrid:x=1"); err == nil {
		t.Error("bad hybrid name accepted")
	}
}

func TestLossPenalty(t *testing.T) {
	if got := LossPenalty(0.5, 0); got != 1 {
		t.Errorf("agnostic penalty = %v, want 1", got)
	}
	if got := LossPenalty(0, 1); got != 1 {
		t.Errorf("lossless penalty = %v, want 1", got)
	}
	if got := LossPenalty(0.5, 1); got != 0.25 {
		t.Errorf("LossPenalty(0.5,1) = %v, want 0.25", got)
	}
	// The floor keeps a fully lossy partner re-probeable.
	if got, want := LossPenalty(1, 1), 0.05*0.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("floored penalty = %v, want %v", got, want)
	}
	// Higher awareness discounts harder.
	if LossPenalty(0.3, 2) >= LossPenalty(0.3, 1) {
		t.Error("awareness 2 should discount more than awareness 1")
	}
}
