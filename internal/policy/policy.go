// Package policy defines the peer-selection machinery whose parameters are
// exactly the "network awareness" the paper measures: how strongly a client
// weighs bandwidth, AS locality, country, subnet or path length when it
// decides whom to talk to and whom to pull chunks from.
//
// A Weight maps what a real client can know about a candidate — measured
// throughput, locality facts derivable from the candidate's IP, measured
// RTT — to a non-negative selection weight. Application profiles
// (internal/apps) compose weights multiplicatively; the analysis layer then
// has to rediscover those compositions from traffic alone, which is the
// whole experiment.
package policy

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"napawine/internal/units"
)

// Info is everything a selection decision may legitimately depend on. It
// deliberately contains only client-observable facts; ground-truth link
// capacity, for instance, appears solely through the measured EstRate.
type Info struct {
	SameSubnet bool
	SameAS     bool
	SameCC     bool
	RTT        time.Duration
	// EstRate is the client's own estimate of the candidate's delivery
	// rate (EWMA of past chunk transfers); zero when never measured.
	EstRate units.BitRate
}

// Weight scores a candidate. Implementations must be pure: the same Info
// always yields the same weight, so selection randomness lives entirely in
// the sampler's RNG.
type Weight interface {
	Weight(Info) float64
	Name() string
}

// Uniform ignores the candidate entirely: pure random selection, the
// baseline against which awareness is defined.
type Uniform struct{}

// Weight returns 1 for every candidate.
func (Uniform) Weight(Info) float64 { return 1 }

// Name identifies the policy.
func (Uniform) Name() string { return "uniform" }

// BandwidthBias favors candidates whose measured delivery rate is high:
// weight = (rate/Ref)^Alpha, with unmeasured candidates charged Floor so
// that newcomers still get probed, and rates clamped at Cap — beyond a few
// dozen Mbit/s a partner cannot deliver chunks any faster in practice, so
// an uncapped estimate would make LAN neighbours pathologically dominant.
// This is the mechanism behind the strong BW rows of Table IV.
type BandwidthBias struct {
	Ref   units.BitRate // normalization, typically the stream rate
	Alpha float64       // bias strength; 0 degenerates to uniform
	Floor units.BitRate // optimistic rate assumed for unmeasured peers
	Cap   units.BitRate // rate ceiling (0 = uncapped)
}

// Weight implements Weight.
func (b BandwidthBias) Weight(i Info) float64 {
	ref := b.Ref
	if ref <= 0 {
		ref = 384 * units.Kbps
	}
	r := i.EstRate
	if r <= 0 {
		r = b.Floor
	}
	if r <= 0 {
		return 0
	}
	if b.Cap > 0 && r > b.Cap {
		r = b.Cap
	}
	return math.Pow(float64(r)/float64(ref), b.Alpha)
}

// Name identifies the policy.
func (b BandwidthBias) Name() string { return fmt.Sprintf("bw^%.1f", b.Alpha) }

// ASBias multiplies the weight by Factor for candidates in the caller's AS.
// Factor > 1 is the knob that produces TVAnts- and PPLive-style AS
// preference; Factor == 1 is SopCast-style location blindness.
type ASBias struct{ Factor float64 }

// Weight implements Weight.
func (b ASBias) Weight(i Info) float64 {
	if i.SameAS {
		return b.Factor
	}
	return 1
}

// Name identifies the policy.
func (b ASBias) Name() string { return fmt.Sprintf("as×%.1f", b.Factor) }

// CCBias multiplies the weight by Factor for same-country candidates.
// No 2008-era client used it (the paper finds CC preference is entirely an
// AS echo); it exists for ablation experiments.
type CCBias struct{ Factor float64 }

// Weight implements Weight.
func (b CCBias) Weight(i Info) float64 {
	if i.SameCC {
		return b.Factor
	}
	return 1
}

// Name identifies the policy.
func (b CCBias) Name() string { return fmt.Sprintf("cc×%.1f", b.Factor) }

// SubnetBias multiplies the weight by Factor for same-subnet candidates.
type SubnetBias struct{ Factor float64 }

// Weight implements Weight.
func (b SubnetBias) Weight(i Info) float64 {
	if i.SameSubnet {
		return b.Factor
	}
	return 1
}

// Name identifies the policy.
func (b SubnetBias) Name() string { return fmt.Sprintf("net×%.1f", b.Factor) }

// RTTBias favors nearby candidates: weight = Factor when RTT < Near,
// else 1. It is the "seek shorter paths" behaviour the paper's conclusion
// recommends and finds absent; included for the future-work ablation.
type RTTBias struct {
	Near   time.Duration
	Factor float64
}

// Weight implements Weight.
func (b RTTBias) Weight(i Info) float64 {
	if i.RTT > 0 && i.RTT < b.Near {
		return b.Factor
	}
	return 1
}

// Name identifies the policy.
func (b RTTBias) Name() string { return fmt.Sprintf("rtt<%v×%.1f", b.Near, b.Factor) }

// Product composes weights multiplicatively.
type Product []Weight

// Weight implements Weight as the product of the factors.
func (p Product) Weight(i Info) float64 {
	w := 1.0
	for _, f := range p {
		w *= f.Weight(i)
		if w == 0 {
			return 0
		}
	}
	return w
}

// Name identifies the composition.
func (p Product) Name() string {
	if len(p) == 0 {
		return "uniform"
	}
	s := p[0].Name()
	for _, f := range p[1:] {
		s += "·" + f.Name()
	}
	return s
}

// Candidate pairs an opaque caller index with the selectable facts.
type Candidate struct {
	Index int
	Info  Info
}

// Sample draws up to k distinct candidates with probability proportional to
// their weights, using the Efraimidis–Spirakis exponential-key method. Zero
// or negative-weight candidates are never selected. The result preserves
// selection order (strongest keys first). One-shot wrapper over Scorer;
// recurring callers should hold a Scorer and reuse its buffers.
func Sample(rng *rand.Rand, cands []Candidate, k int, w Weight) []Candidate {
	var s Scorer
	for _, c := range cands {
		s.Push(c, w)
	}
	picked := s.Sample(rng, k)
	if picked == nil {
		return nil
	}
	out := make([]Candidate, len(picked))
	copy(out, picked)
	return out
}

// PickOne draws a single candidate with probability proportional to weight,
// the hot path of per-chunk scheduling. Returns index -1 when nothing is
// selectable. One-shot wrapper over Scorer.
func PickOne(rng *rand.Rand, cands []Candidate, w Weight) Candidate {
	var s Scorer
	for _, c := range cands {
		s.Push(c, w)
	}
	return s.PickOne(rng)
}

// Worst returns the candidate with the lowest weight (ties broken by lower
// index), or index -1 for an empty slate. Used by partner-churn logic that
// periodically drops its least useful partner. One-shot wrapper over Scorer.
func Worst(cands []Candidate, w Weight) Candidate {
	var s Scorer
	for _, c := range cands {
		s.Push(c, w)
	}
	return s.Worst()
}
