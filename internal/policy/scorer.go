package policy

import (
	"cmp"
	"math"
	"math/rand"
	"slices"
)

// Scorer is the incremental, allocation-free face of the selection
// primitives. A caller owns one Scorer per recurring decision (a node's
// chunk scheduler, its partner churn loop), pushes the current candidate
// slate each round — either raw Infos to be weighed now, or weights it
// cached earlier — and draws with Sample/PickOne/Worst. All buffers are
// retained between rounds, so steady-state selection allocates nothing.
//
// The free functions Sample, PickOne and Worst are thin wrappers over a
// throwaway Scorer; a Scorer round consumes exactly the same RNG draws in
// exactly the same order, so replacing one with the other cannot perturb a
// seeded run.
//
// Weight caching contract: a Weight is pure, and of the facts in Info only
// EstRate (and in principle RTT) ever changes for an established pair —
// SameAS/SameCC/SameSubnet are immutable from the moment two peers meet.
// Callers may therefore compute a candidate's weight once at partnership
// formation, reuse it via PushScored every round, and recompute only when
// the mutable facts change. Score is the invalidation helper: it
// recomputes both of a pair's cached weights in one place.
type Scorer struct {
	cands   []Candidate
	weights []float64
	keys    []sampleKey
	out     []Candidate
}

type sampleKey struct {
	c   Candidate
	key float64
}

// compareSampleKeys orders sample keys strongest-first, caller index
// ascending on (measure-zero) ties.
func compareSampleKeys(a, b sampleKey) int {
	if a.key != b.key {
		if a.key > b.key {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.c.Index, b.c.Index)
}

// Reset clears the slate for a new round, keeping the buffers.
func (s *Scorer) Reset() {
	s.cands = s.cands[:0]
	s.weights = s.weights[:0]
}

// Push adds a candidate, weighing it with w now.
func (s *Scorer) Push(c Candidate, w Weight) {
	s.PushScored(c, w.Weight(c.Info))
}

// PushScored adds a candidate whose weight the caller already holds —
// typically a cached score computed at partnership formation and
// invalidated only when the pair's EstRate moved.
func (s *Scorer) PushScored(c Candidate, weight float64) {
	s.cands = append(s.cands, c)
	s.weights = append(s.weights, weight)
}

// Len reports the current slate size.
func (s *Scorer) Len() int { return len(s.cands) }

// PickOne draws one candidate with probability proportional to weight.
// Returns index -1 when nothing is selectable. Exactly one rng.Float64 is
// consumed when any weight is positive, none otherwise — the same contract
// as the free PickOne.
func (s *Scorer) PickOne(rng *rand.Rand) Candidate {
	total := 0.0
	for i, wt := range s.weights {
		if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			wt = 0
			s.weights[i] = 0
		}
		total += wt
	}
	if total <= 0 {
		return Candidate{Index: -1}
	}
	x := rng.Float64() * total
	for i, wt := range s.weights {
		x -= wt
		if x < 0 {
			return s.cands[i]
		}
	}
	return s.cands[len(s.cands)-1]
}

// Worst returns the lowest-weight candidate (ties broken by lower Index),
// or index -1 for an empty slate. No RNG is consumed.
func (s *Scorer) Worst() Candidate {
	if len(s.cands) == 0 {
		return Candidate{Index: -1}
	}
	best := 0
	bestW := math.Inf(1)
	for i, wt := range s.weights {
		if wt < bestW || (wt == bestW && s.cands[i].Index < s.cands[best].Index) {
			best, bestW = i, wt
		}
	}
	return s.cands[best]
}

// Sample draws up to k distinct candidates with probability proportional
// to weight (Efraimidis–Spirakis exponential keys), strongest keys first.
// The returned slice aliases the Scorer's scratch buffer: it is valid
// until the next Sample call. One rng.Float64 is consumed per
// positive-weight candidate, in push order, exactly like the free Sample.
func (s *Scorer) Sample(rng *rand.Rand, k int) []Candidate {
	if k <= 0 || len(s.cands) == 0 {
		return nil
	}
	s.keys = s.keys[:0]
	for i, c := range s.cands {
		wt := s.weights[i]
		if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			continue
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		// key = u^(1/w): larger is better; equivalent to -ln(u)/w ascending.
		s.keys = append(s.keys, sampleKey{c: c, key: math.Pow(u, 1/wt)})
	}
	// slices.SortFunc (unlike sort.Slice) allocates nothing. The
	// comparator is a strict total order (keys are in (0,1), ties broken
	// by distinct caller indices), so the sorted sequence is unique —
	// identical no matter which sort produces it.
	slices.SortFunc(s.keys, compareSampleKeys)
	if k > len(s.keys) {
		k = len(s.keys)
	}
	s.out = s.out[:0]
	for i := 0; i < k; i++ {
		s.out = append(s.out, s.keys[i].c)
	}
	return s.out
}

// Score computes the candidate weights a caller caches per partner: the
// request-time and retain-time scores of one Info under a profile's two
// policies. It exists so every invalidation site (partnership formation,
// a delivery-rate update) refreshes both caches through one door.
func Score(request, retain Weight, i Info) (requestScore, retainScore float64) {
	return request.Weight(i), retain.Weight(i)
}
