package policy

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"sort"
)

// ChunkRef describes one missing chunk to a scheduling strategy: its stream
// id, how many partners currently advertise it (the rarity signal), and
// whether it sits in the urgent head of the pull window (close to its
// playout deadline).
type ChunkRef struct {
	ID      int64
	Holders int
	Urgent  bool
}

// ChunkStrategy orders the missing chunks a scheduler round will request.
// The scheduler hands it the candidate chunks of the pull window, in
// ascending id order, and issues requests in whatever order the strategy
// leaves them — until the in-flight budget runs out, so the front of the
// slice matters most.
//
// Implementations must be deterministic: identical refs and an identical
// RNG state must yield an identical order (and consume identical draws),
// independent of anything else — this is what keeps multi-worker sweeps
// byte-reproducible. Order must not allocate; it runs once per scheduler
// tick per node.
//
// The strategy space is the one Mathieu & Perino study for epidemic live
// streaming: how a peer spends its request budget — on the newest useful
// data, on the rarest, or on the most imminent deadline — trades off
// diffusion speed against playout safety.
type ChunkStrategy interface {
	Name() string
	// NeedHolders reports whether Order reads ChunkRef.Holders; when false
	// the scheduler skips the per-chunk availability count entirely.
	NeedHolders() bool
	Order(rng *rand.Rand, refs []ChunkRef)
}

// UrgentRandom is the default, CoolStreaming-style hybrid the emulator has
// always used: chunks in the urgent head of the window are requested
// oldest-first, and the remaining budget is spread over the rest of the
// window uniformly at random so availability diversifies instead of every
// peer chasing the same piece.
type UrgentRandom struct{}

// Name identifies the strategy.
func (UrgentRandom) Name() string { return "urgent-random" }

// NeedHolders implements ChunkStrategy.
func (UrgentRandom) NeedHolders() bool { return false }

// Order keeps the urgent prefix in ascending id order and shuffles the
// tail. Refs arrive ascending, so the urgent chunks already form a prefix.
func (UrgentRandom) Order(rng *rand.Rand, refs []ChunkRef) {
	split := 0
	for split < len(refs) && refs[split].Urgent {
		split++
	}
	tail := refs[split:]
	rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
}

// LatestUseful requests the newest chunk first. Fresh data spreads through
// the swarm fastest (every peer still misses it, so serving capacity for
// it is maximal), at the price of more deadline misses under load — the
// classic "latest useful chunk" policy of the epidemic-streaming
// literature.
type LatestUseful struct{}

// Name identifies the strategy.
func (LatestUseful) Name() string { return "latest-useful" }

// NeedHolders implements ChunkStrategy.
func (LatestUseful) NeedHolders() bool { return false }

// Order sorts by descending id. Deterministic, no RNG.
func (LatestUseful) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int { return cmp.Compare(b.ID, a.ID) })
}

// RarestFirst requests the chunk the fewest partners advertise, ties
// broken oldest-first — BitTorrent's availability-maximizing policy
// transplanted to the live window. It keeps rare pieces from dying out
// when upload capacity is scarce.
type RarestFirst struct{}

// Name identifies the strategy.
func (RarestFirst) Name() string { return "rarest" }

// NeedHolders implements ChunkStrategy.
func (RarestFirst) NeedHolders() bool { return true }

// Order sorts by ascending holder count, then ascending id. Deterministic,
// no RNG.
func (RarestFirst) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int {
		if a.Holders != b.Holders {
			return cmp.Compare(a.Holders, b.Holders)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// DeadlineFirst requests strictly oldest-first: every request chases the
// most imminent playout deadline. Safest for the local viewer, worst for
// the swarm — late chunks are fetched when almost nobody needs them
// anymore, so peers rarely hold anything early enough to serve others.
type DeadlineFirst struct{}

// Name identifies the strategy.
func (DeadlineFirst) Name() string { return "deadline" }

// NeedHolders implements ChunkStrategy.
func (DeadlineFirst) NeedHolders() bool { return false }

// Order sorts by ascending id. Deterministic, no RNG.
func (DeadlineFirst) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int { return cmp.Compare(a.ID, b.ID) })
}

// DefaultStrategy returns the strategy a nil Profile.ChunkStrategy selects:
// the behaviour the emulator has always had.
func DefaultStrategy() ChunkStrategy { return UrgentRandom{} }

// strategyInfo pairs a registered strategy with its one-line description.
type strategyInfo struct {
	s    ChunkStrategy
	desc string
}

// strategies is the registry, keyed by Name().
var strategies = map[string]strategyInfo{
	UrgentRandom{}.Name():  {UrgentRandom{}, "urgent head oldest-first, rest of the window at random (default)"},
	LatestUseful{}.Name():  {LatestUseful{}, "newest chunk first: fastest diffusion, most deadline risk"},
	RarestFirst{}.Name():   {RarestFirst{}, "fewest-holders chunk first, ties oldest-first"},
	DeadlineFirst{}.Name(): {DeadlineFirst{}, "strictly oldest-first: chase every playout deadline"},
}

// StrategyNames lists the registered chunk strategies, default first, the
// rest alphabetically.
func StrategyNames() []string {
	names := make([]string, 0, len(strategies))
	def := DefaultStrategy().Name()
	for name := range strategies {
		if name != def {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return append([]string{def}, names...)
}

// StrategyByName resolves a registered chunk strategy; "" selects the
// default.
func StrategyByName(name string) (ChunkStrategy, error) {
	if name == "" {
		return DefaultStrategy(), nil
	}
	if info, ok := strategies[name]; ok {
		return info.s, nil
	}
	return nil, fmt.Errorf("policy: unknown chunk strategy %q (valid: %v)", name, StrategyNames())
}

// StrategyDescription returns the one-line description of a registered
// strategy ("" when unknown).
func StrategyDescription(name string) string { return strategies[name].desc }
