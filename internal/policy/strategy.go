package policy

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// ChunkRef describes one missing chunk to a scheduling strategy: its stream
// id, how many partners currently advertise it (the rarity signal), and
// whether it sits in the urgent head of the pull window (close to its
// playout deadline).
type ChunkRef struct {
	ID      int64
	Holders int
	Urgent  bool
}

// ChunkStrategy orders the missing chunks a scheduler round will request.
// The scheduler hands it the candidate chunks of the pull window, in
// ascending id order, and issues requests in whatever order the strategy
// leaves them — until the in-flight budget runs out, so the front of the
// slice matters most.
//
// Implementations must be deterministic: identical refs and an identical
// RNG state must yield an identical order (and consume identical draws),
// independent of anything else — this is what keeps multi-worker sweeps
// byte-reproducible. Order must not allocate; it runs once per scheduler
// tick per node.
//
// The strategy space is the one Mathieu & Perino study for epidemic live
// streaming: how a peer spends its request budget — on the newest useful
// data, on the rarest, or on the most imminent deadline — trades off
// diffusion speed against playout safety.
type ChunkStrategy interface {
	Name() string
	// NeedHolders reports whether Order reads ChunkRef.Holders; when false
	// the scheduler skips the per-chunk availability count entirely.
	NeedHolders() bool
	Order(rng *rand.Rand, refs []ChunkRef)
}

// UrgentRandom is the default, CoolStreaming-style hybrid the emulator has
// always used: chunks in the urgent head of the window are requested
// oldest-first, and the remaining budget is spread over the rest of the
// window uniformly at random so availability diversifies instead of every
// peer chasing the same piece.
type UrgentRandom struct{}

// Name identifies the strategy.
func (UrgentRandom) Name() string { return "urgent-random" }

// NeedHolders implements ChunkStrategy.
func (UrgentRandom) NeedHolders() bool { return false }

// Order keeps the urgent prefix in ascending id order and shuffles the
// tail. Refs arrive ascending, so the urgent chunks already form a prefix.
func (UrgentRandom) Order(rng *rand.Rand, refs []ChunkRef) {
	split := 0
	for split < len(refs) && refs[split].Urgent {
		split++
	}
	tail := refs[split:]
	rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
}

// LatestUseful requests the newest chunk first. Fresh data spreads through
// the swarm fastest (every peer still misses it, so serving capacity for
// it is maximal), at the price of more deadline misses under load — the
// classic "latest useful chunk" policy of the epidemic-streaming
// literature.
type LatestUseful struct{}

// Name identifies the strategy.
func (LatestUseful) Name() string { return "latest-useful" }

// NeedHolders implements ChunkStrategy.
func (LatestUseful) NeedHolders() bool { return false }

// Order sorts by descending id. Deterministic, no RNG.
func (LatestUseful) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int { return cmp.Compare(b.ID, a.ID) })
}

// RarestFirst requests the chunk the fewest partners advertise, ties
// broken oldest-first — BitTorrent's availability-maximizing policy
// transplanted to the live window. It keeps rare pieces from dying out
// when upload capacity is scarce.
type RarestFirst struct{}

// Name identifies the strategy.
func (RarestFirst) Name() string { return "rarest" }

// NeedHolders implements ChunkStrategy.
func (RarestFirst) NeedHolders() bool { return true }

// Order sorts by ascending holder count, then ascending id. Deterministic,
// no RNG.
func (RarestFirst) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int {
		if a.Holders != b.Holders {
			return cmp.Compare(a.Holders, b.Holders)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// DeadlineFirst requests strictly oldest-first: every request chases the
// most imminent playout deadline. Safest for the local viewer, worst for
// the swarm — late chunks are fetched when almost nobody needs them
// anymore, so peers rarely hold anything early enough to serve others.
type DeadlineFirst struct{}

// Name identifies the strategy.
func (DeadlineFirst) Name() string { return "deadline" }

// NeedHolders implements ChunkStrategy.
func (DeadlineFirst) NeedHolders() bool { return false }

// Order sorts by ascending id. Deterministic, no RNG.
func (DeadlineFirst) Order(rng *rand.Rand, refs []ChunkRef) {
	slices.SortFunc(refs, func(a, b ChunkRef) int { return cmp.Compare(a.ID, b.ID) })
}

// DefaultStrategy returns the strategy a nil Profile.ChunkStrategy selects:
// the behaviour the emulator has always had.
func DefaultStrategy() ChunkStrategy { return UrgentRandom{} }

// Hybrid is the parameterized chunk-strategy family that spans the space
// between the four registered presets (Mathieu–Perino's design axes:
// deadline safety vs diffusion speed vs availability). Its Order:
//
//  1. An urgent head: up to ceil(UrgentFrac·len(refs)) chunks from the
//     urgent prefix keep absolute priority, oldest-first.
//  2. The tail is sorted by the score RarestWeight·Holders +
//     DeadlineBias·(ID−base), ascending, ties oldest-first — or shuffled
//     uniformly when both weights are zero (the diversification the
//     default preset uses).
//
// Members reproduce the presets exactly: {UrgentFrac:1} is urgent-random,
// {DeadlineBias:1} is deadline, {DeadlineBias:-1} is latest-useful, and
// {RarestWeight:1} is rarest — byte-for-byte, RNG draws included (pinned
// by tests).
//
// AwareWeight is orthogonal to chunk order: it tells the scheduler to
// discount partners by their observed-loss EWMA (see CongestionAware and
// LossPenalty), which only matters when the access layer's congestion
// model can actually drop transfers.
//
// Hybrids are named by a grammar the strategy registry parses:
// "hybrid:u=0.4,r=1,a=1" (see ParseHybrid); construct-by-literal and
// parse-by-name yield identical behaviour.
type Hybrid struct {
	// UrgentFrac ∈ [0,1] caps the absolute-priority urgent head as a
	// fraction of the candidate window.
	UrgentFrac float64
	// RarestWeight ≥ 0 weighs the holder count: higher chases rarer
	// chunks harder.
	RarestWeight float64
	// DeadlineBias weighs chunk age: positive requests older chunks first
	// (deadline-chasing), negative newer-first (latest-useful diffusion).
	DeadlineBias float64
	// AwareWeight ≥ 0 scales the scheduler's loss-based partner discount;
	// 0 keeps partner selection congestion-agnostic.
	AwareWeight float64
}

// Name renders the canonical grammar form: "hybrid" plus every non-zero
// parameter in u,r,d,a order. ParseHybrid(h.Name()) round-trips.
func (h Hybrid) Name() string {
	var b strings.Builder
	b.WriteString("hybrid")
	sep := byte(':')
	add := func(key byte, v float64) {
		if v == 0 {
			return
		}
		b.WriteByte(sep)
		sep = ','
		b.WriteByte(key)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	add('u', h.UrgentFrac)
	add('r', h.RarestWeight)
	add('d', h.DeadlineBias)
	add('a', h.AwareWeight)
	return b.String()
}

// NeedHolders reports whether the score reads Holders.
func (h Hybrid) NeedHolders() bool { return h.RarestWeight != 0 }

// CongestionAwareness implements CongestionAware.
func (h Hybrid) CongestionAwareness() float64 { return h.AwareWeight }

// Order implements ChunkStrategy; see the type comment for the semantics.
func (h Hybrid) Order(rng *rand.Rand, refs []ChunkRef) {
	head := 0
	if h.UrgentFrac > 0 {
		max := int(math.Ceil(h.UrgentFrac * float64(len(refs))))
		for head < len(refs) && head < max && refs[head].Urgent {
			head++
		}
	}
	tail := refs[head:]
	if h.RarestWeight == 0 && h.DeadlineBias == 0 {
		rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
		return
	}
	if len(tail) < 2 {
		return
	}
	// Score against the window base so the age term stays small and exact
	// in float64 whatever the absolute chunk ids are.
	r, d, base := h.RarestWeight, h.DeadlineBias, tail[0].ID
	slices.SortFunc(tail, func(a, b ChunkRef) int {
		sa := r*float64(a.Holders) + d*float64(a.ID-base)
		sb := r*float64(b.Holders) + d*float64(b.ID-base)
		if sa != sb {
			return cmp.Compare(sa, sb)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// CongestionAware marks strategies whose scheduler should fold observed
// partner loss into partner selection. The scheduler checks for it on the
// active strategy; presets do not implement it, which is exactly what makes
// them the "agnostic" arm of an awareness ablation.
type CongestionAware interface {
	// CongestionAwareness returns the loss-discount weight (0 = agnostic).
	CongestionAwareness() float64
}

// Awareness reports a strategy's congestion-awareness weight: its
// CongestionAwareness when it implements CongestionAware, else 0.
func Awareness(s ChunkStrategy) float64 {
	if ca, ok := s.(CongestionAware); ok {
		return ca.CongestionAwareness()
	}
	return 0
}

// LossPenalty maps a partner's observed-loss EWMA (0..1) to the
// multiplicative request-weight factor a congestion-aware scheduler
// applies: (1−loss)^(2·aware), floored so even a fully lossy partner keeps
// a token weight and can be re-probed once its backoff expires. aware ≤ 0
// or loss ≤ 0 leave the weight untouched.
func LossPenalty(loss, aware float64) float64 {
	if aware <= 0 || loss <= 0 {
		return 1
	}
	keep := 1 - loss
	if keep < 0.05 {
		keep = 0.05
	}
	return math.Pow(keep, 2*aware)
}

// HybridGrammar documents the parameterized strategy names StrategyByName
// accepts alongside the registered presets.
const HybridGrammar = "hybrid[:k=v,...] with keys " +
	"u (urgent fraction, 0..1), r (rarest weight, >=0), " +
	"d (deadline bias, +old-first / -new-first), " +
	"a (congestion awareness, >=0); omitted keys are 0, " +
	"e.g. \"hybrid:u=0.4,r=1,a=1\""

// ParseHybrid parses a hybrid family name — "hybrid" alone (the all-zero
// member: a pure uniform shuffle) or "hybrid:" followed by comma-separated
// key=value parameters per HybridGrammar. Unknown keys, duplicate keys,
// out-of-range or non-finite values are errors.
func ParseHybrid(name string) (Hybrid, error) {
	rest, ok := strings.CutPrefix(name, "hybrid")
	if !ok {
		return Hybrid{}, fmt.Errorf("policy: %q is not a hybrid strategy name", name)
	}
	var h Hybrid
	if rest == "" {
		return h, nil
	}
	if rest[0] != ':' {
		return Hybrid{}, fmt.Errorf("policy: bad hybrid name %q (want %s)", name, HybridGrammar)
	}
	var seen [4]bool
	for _, kv := range strings.Split(rest[1:], ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || key == "" || val == "" {
			return Hybrid{}, fmt.Errorf("policy: bad hybrid parameter %q in %q (want %s)", kv, name, HybridGrammar)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return Hybrid{}, fmt.Errorf("policy: bad hybrid value %q in %q", kv, name)
		}
		var slot *float64
		var idx int
		switch key {
		case "u":
			if f < 0 || f > 1 {
				return Hybrid{}, fmt.Errorf("policy: hybrid urgent fraction %v out of [0,1] in %q", f, name)
			}
			slot, idx = &h.UrgentFrac, 0
		case "r":
			if f < 0 {
				return Hybrid{}, fmt.Errorf("policy: negative hybrid rarest weight %v in %q", f, name)
			}
			slot, idx = &h.RarestWeight, 1
		case "d":
			slot, idx = &h.DeadlineBias, 2
		case "a":
			if f < 0 {
				return Hybrid{}, fmt.Errorf("policy: negative hybrid awareness %v in %q", f, name)
			}
			slot, idx = &h.AwareWeight, 3
		default:
			return Hybrid{}, fmt.Errorf("policy: unknown hybrid key %q in %q (want %s)", key, name, HybridGrammar)
		}
		if seen[idx] {
			return Hybrid{}, fmt.Errorf("policy: duplicate hybrid key %q in %q", key, name)
		}
		seen[idx] = true
		*slot = f
	}
	return h, nil
}

// strategyInfo pairs a registered strategy with its one-line description.
type strategyInfo struct {
	s    ChunkStrategy
	desc string
}

// strategies is the registry, keyed by Name().
var strategies = map[string]strategyInfo{
	UrgentRandom{}.Name():  {UrgentRandom{}, "urgent head oldest-first, rest of the window at random (default)"},
	LatestUseful{}.Name():  {LatestUseful{}, "newest chunk first: fastest diffusion, most deadline risk"},
	RarestFirst{}.Name():   {RarestFirst{}, "fewest-holders chunk first, ties oldest-first"},
	DeadlineFirst{}.Name(): {DeadlineFirst{}, "strictly oldest-first: chase every playout deadline"},
}

// StrategyNames lists the registered chunk strategies, default first, the
// rest alphabetically.
func StrategyNames() []string {
	names := make([]string, 0, len(strategies))
	def := DefaultStrategy().Name()
	for name := range strategies {
		if name != def {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return append([]string{def}, names...)
}

// StrategyByName resolves a chunk strategy: "" selects the default, a
// registered preset name its preset, and any "hybrid..." name a parsed
// member of the parameterized family (see HybridGrammar).
func StrategyByName(name string) (ChunkStrategy, error) {
	if name == "" {
		return DefaultStrategy(), nil
	}
	if info, ok := strategies[name]; ok {
		return info.s, nil
	}
	if strings.HasPrefix(name, "hybrid") {
		return ParseHybrid(name)
	}
	return nil, fmt.Errorf("policy: unknown chunk strategy %q (valid: %v, or parameterized %s)",
		name, StrategyNames(), HybridGrammar)
}

// StrategyDescription returns the one-line description of a registered
// preset, a generated description for a valid hybrid family name, and ""
// otherwise.
func StrategyDescription(name string) string {
	if info, ok := strategies[name]; ok {
		return info.desc
	}
	if h, err := ParseHybrid(name); err == nil {
		return fmt.Sprintf("hybrid family member: urgent %g, rarest %g, deadline %g, aware %g",
			h.UrgentFrac, h.RarestWeight, h.DeadlineBias, h.AwareWeight)
	}
	return ""
}
