package policy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"napawine/internal/units"
)

func scorerSlate() []Candidate {
	return []Candidate{
		{Index: 0, Info: Info{EstRate: 4 * units.Mbps}},
		{Index: 1, Info: Info{SameAS: true, EstRate: 1 * units.Mbps}},
		{Index: 2, Info: Info{}},
		{Index: 3, Info: Info{SameCC: true, EstRate: 600 * units.Kbps}},
		{Index: 4, Info: Info{SameSubnet: true, EstRate: 20 * units.Mbps}},
	}
}

func scorerWeight() Weight {
	return Product{
		BandwidthBias{Ref: 384 * units.Kbps, Alpha: 2, Floor: 384 * units.Kbps},
		ASBias{Factor: 4},
	}
}

// TestScorerMatchesFreeFunctions is the byte-reproducibility contract of
// the refactor: a Scorer round must make exactly the choices — and consume
// exactly the RNG draws — of the one-shot helpers it replaced on the hot
// path.
func TestScorerMatchesFreeFunctions(t *testing.T) {
	cands, w := scorerSlate(), scorerWeight()
	for seed := int64(1); seed <= 50; seed++ {
		var s Scorer
		for _, c := range cands {
			s.Push(c, w)
		}
		rngA, rngB := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		if got, want := s.PickOne(rngA), PickOne(rngB, cands, w); got.Index != want.Index {
			t.Fatalf("seed %d: Scorer.PickOne = %d, free PickOne = %d", seed, got.Index, want.Index)
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("seed %d: PickOne consumed different draw counts", seed)
		}

		if got, want := s.Worst(), Worst(cands, w); got.Index != want.Index {
			t.Fatalf("seed %d: Scorer.Worst = %d, free Worst = %d", seed, got.Index, want.Index)
		}

		rngA, rngB = rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		got := s.Sample(rngA, 3)
		want := Sample(rngB, cands, 3, w)
		gi := make([]int, len(got))
		for i, c := range got {
			gi[i] = c.Index
		}
		wi := make([]int, len(want))
		for i, c := range want {
			wi[i] = c.Index
		}
		if !reflect.DeepEqual(gi, wi) {
			t.Fatalf("seed %d: Scorer.Sample = %v, free Sample = %v", seed, gi, wi)
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("seed %d: Sample consumed different draw counts", seed)
		}
	}
}

// TestScorerReuseDoesNotAllocate pins the whole point of the type: a
// steady-state selection round on retained buffers is allocation-free.
func TestScorerReuseDoesNotAllocate(t *testing.T) {
	cands, w := scorerSlate(), scorerWeight()
	var s Scorer
	rng := rand.New(rand.NewSource(1))
	round := func() {
		s.Reset()
		for _, c := range cands {
			s.PushScored(c, w.Weight(c.Info))
		}
		s.PickOne(rng)
		s.Worst()
		s.Sample(rng, 3)
	}
	round() // warm the buffers
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Errorf("steady-state Scorer round allocates %.1f times", allocs)
	}
}

func TestScorerEmptyAndNonPositive(t *testing.T) {
	var s Scorer
	rng := rand.New(rand.NewSource(1))
	if got := s.PickOne(rng); got.Index != -1 {
		t.Errorf("empty PickOne = %d, want -1", got.Index)
	}
	if got := s.Worst(); got.Index != -1 {
		t.Errorf("empty Worst = %d, want -1", got.Index)
	}
	if got := s.Sample(rng, 2); got != nil {
		t.Errorf("empty Sample = %v, want nil", got)
	}
	s.PushScored(Candidate{Index: 7}, 0)
	s.PushScored(Candidate{Index: 8}, math.NaN())
	s.PushScored(Candidate{Index: 9}, math.Inf(1))
	before := rand.New(rand.NewSource(3)).Int63()
	rng = rand.New(rand.NewSource(3))
	if got := s.PickOne(rng); got.Index != -1 {
		t.Errorf("all-unselectable PickOne = %d, want -1", got.Index)
	}
	if rng.Int63() != before {
		t.Error("unselectable PickOne consumed a draw")
	}
	if got := s.Sample(rand.New(rand.NewSource(3)), 2); len(got) != 0 {
		t.Errorf("all-unselectable Sample = %v, want empty", got)
	}
}

// TestScoreRecomputesBothWeights exercises the one invalidation door the
// overlay uses when a partner's delivery-rate estimate moves.
func TestScoreRecomputesBothWeights(t *testing.T) {
	req := BandwidthBias{Ref: 384 * units.Kbps, Alpha: 2, Floor: 384 * units.Kbps}
	ret := BandwidthBias{Ref: 384 * units.Kbps, Alpha: 1, Floor: 192 * units.Kbps}
	info := Info{SameAS: true, RTT: 12 * time.Millisecond, EstRate: 2 * units.Mbps}
	gotReq, gotRet := Score(req, ret, info)
	if gotReq != req.Weight(info) || gotRet != ret.Weight(info) {
		t.Errorf("Score = (%v, %v), want (%v, %v)", gotReq, gotRet, req.Weight(info), ret.Weight(info))
	}
	info.EstRate *= 2
	nextReq, nextRet := Score(req, ret, info)
	if nextReq <= gotReq || nextRet <= gotRet {
		t.Errorf("faster rate must raise both scores: (%v, %v) -> (%v, %v)", gotReq, gotRet, nextReq, nextRet)
	}
}
