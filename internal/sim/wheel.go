package sim

import "math/bits"

// The event queue is a hierarchical timing wheel (calendar queue): O(1)
// amortized schedule and fire at any queue depth, where the former binary
// heap paid O(log n) per operation — a log factor that dominated the
// profile once swarms grew past ~10⁴ peers and millions of events sat
// pending at once.
//
// Layout. Virtual time is bucketed into ticks of 2^tickShift ns (~131 µs).
// Level 0 holds one slot per tick for the next levelSlots ticks; each
// higher level widens the slot span by levelSlots×, so eight levels of 64
// slots cover every representable instant. An event is filed at the lowest
// level whose current rotation contains its tick — equivalently, the level
// of the highest bit in which its tick differs from the cursor's. As the
// cursor reaches a higher-level slot, that slot spills: its events cascade
// down one or more levels (each event moves at most numLevels times over
// its whole life, which is the O(1) amortized bound).
//
// Ordering. The engine's contract is exact (at, seq) order — same-instant
// events fire in scheduling order, and the golden-digest tests pin the
// resulting byte stream. Ticks are coarser than instants, so events of the
// tick being drained sit in `cur`, a small binary min-heap ordered by
// (at, seq). The heap stays shallow — it holds roughly one tick's worth of
// events (plus any scheduled at-or-behind the cursor after it overshot a
// run horizon) — so its log factor is over the per-tick population, not
// the whole queue.
//
// Invariants:
//   - every wheel event's tick is strictly greater than curTick, and lies
//     in its level's current rotation (it shares all bits above that level
//     with curTick);
//   - enqueue routes anything at tick ≤ curTick into cur, so the heap head,
//     when present, is always the global minimum;
//   - cancelled timers are discarded lazily, per wheel slot at spill time
//     and at the heap head, exactly like the old heap's head discard.
const (
	tickShift  = 17 // one tick = 2^17 ns ≈ 131 µs
	levelBits  = 6
	levelSlots = 1 << levelBits
	levelMask  = levelSlots - 1
	// numLevels×levelBits bits of tick index on top of tickShift cover
	// 17+48 = 65 ≥ 63 bits: the top level never wraps for any positive
	// instant, so no overflow list is needed.
	numLevels = 8
)

// enqueue files one event: into the current-tick heap when its tick is at
// or behind the cursor, otherwise into the lowest wheel level whose current
// rotation contains it.
func (e *Engine) enqueue(ev event) {
	tk := int64(ev.at) >> tickShift
	if tk <= e.curTick {
		e.heapPush(ev)
		return
	}
	// The level is the highest differing bit between the event's tick and
	// the cursor's, in levelBits groups.
	lvl := (bits.Len64(uint64(tk^e.curTick)) - 1) / levelBits
	idx := (tk >> (levelBits * lvl)) & levelMask
	e.slots[lvl][idx] = append(e.slots[lvl][idx], ev)
	e.occ[lvl] |= 1 << uint(idx)
	e.wheelCount++
}

// advance moves the cursor to the next occupied slot — the one holding the
// queue's minimum tick, since level ranges are disjoint and ordered — and
// spills it. Reports false when the wheel holds nothing.
func (e *Engine) advance() bool {
	if e.wheelCount == 0 {
		return false
	}
	for lvl := 0; lvl < numLevels; lvl++ {
		shift := levelBits * lvl
		curIdx := uint((e.curTick >> shift) & levelMask)
		// Occupied slots strictly after the cursor's slot in this level's
		// rotation. The cursor's own slot is never occupied here: its
		// events live at a lower level (or in cur) by the filing rule.
		after := e.occ[lvl] & (^uint64(0) << (curIdx + 1))
		if after == 0 {
			continue
		}
		idx := int64(bits.TrailingZeros64(after))
		abs := (e.curTick>>shift)&^int64(levelMask) | idx
		e.curTick = abs << shift
		e.spill(lvl, idx)
		return true
	}
	panic("sim: wheel count positive but no occupied slot")
}

// spill drains one slot: cancelled timers are discarded (the per-slot lazy
// ghost discard), live events re-file — into cur for the slot's first tick,
// into lower levels for the rest. The slot keeps its capacity for reuse.
func (e *Engine) spill(lvl int, idx int64) {
	s := e.slots[lvl][idx]
	// Re-filing never targets this same slot (spilled events land strictly
	// below lvl, or in cur), so reusing the backing array is safe.
	e.slots[lvl][idx] = s[:0]
	e.occ[lvl] &^= 1 << uint(idx)
	e.wheelCount -= len(s)
	for i := range s {
		ev := s[i]
		s[i] = event{} // release fn/timer references held by the kept slab
		if t := ev.timer; t != nil && t.cancelled {
			e.ghost--
			continue
		}
		e.enqueue(ev)
	}
}

// headLive discards cancelled timers at the heap head and cascades wheel
// slots until the heap head is the next event that will actually execute.
// Reports false when no live event remains anywhere.
func (e *Engine) headLive() bool {
	for {
		for len(e.cur) > 0 {
			if t := e.cur[0].timer; t != nil && t.cancelled {
				e.heapPop()
				e.ghost--
				continue
			}
			return true
		}
		if !e.advance() {
			return false
		}
	}
}

// releaseIfDrained frees the queue's slabs once no live event remains, so a
// flash-crowd spike's peak capacity is not pinned for the rest of a long
// study. Any events still stored are cancelled ghosts and go with the slabs.
func (e *Engine) releaseIfDrained() {
	if len(e.cur)+e.wheelCount-e.ghost != 0 {
		return
	}
	e.cur = nil
	e.ghost = 0
	e.wheelCount = 0
	// Occupancy only says which slots hold events now; drained slots keep
	// their capacity until released here, so every slot is cleared.
	for lvl := range e.slots {
		for i := range e.slots[lvl] {
			e.slots[lvl][i] = nil
		}
		e.occ[lvl] = 0
	}
}

// less orders the current-tick heap by instant, then by scheduling order —
// the engine's same-instant FIFO guarantee.
func (e *Engine) less(i, j int) bool {
	a, b := &e.cur[i], &e.cur[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev event) {
	e.cur = append(e.cur, ev)
	i := len(e.cur) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.cur[i], e.cur[parent] = e.cur[parent], e.cur[i]
		i = parent
	}
}

func (e *Engine) heapPop() event {
	h := e.cur
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/timer references to the GC
	e.cur = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			break
		}
		e.cur[i], e.cur[m] = e.cur[m], e.cur[i]
		i = m
	}
	return top
}
