package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Errorf("clock = %v, want 30ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var trace []string
	e.Schedule(time.Second, func() {
		trace = append(trace, "outer")
		e.Schedule(time.Second, func() { trace = append(trace, "inner") })
		// Zero-delay event fires at the same instant, after already
		// queued same-instant events, before later ones.
		e.Schedule(0, func() { trace = append(trace, "zero") })
	})
	e.Schedule(1500*time.Millisecond, func() { trace = append(trace, "mid") })
	e.RunUntilIdle()
	want := []string{"outer", "zero", "mid", "inner"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	e := New(1)
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(3*time.Second, func() { fired++ })
	e.Run(2 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s (rest at horizon)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// Resume past the horizon.
	e.Run(5 * time.Second)
	if fired != 2 {
		t.Errorf("after resume fired = %d, want 2", fired)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	fired := 0
	e.Schedule(time.Second, func() { fired++; e.Stop() })
	e.Schedule(2*time.Second, func() { fired++ })
	e.Run(10 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (Stop should halt the run)", fired)
	}
	e.Run(10 * time.Second) // resumes
	if fired != 2 {
		t.Errorf("after resume fired = %d, want 2", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	tm.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Error("cancelled timer fired")
	}
	tm.Cancel() // double cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil cancel is a no-op
}

func TestCancelledTimerNotProcessed(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {})
	tm := e.After(2*time.Second, func() { t.Error("cancelled timer ran") })
	e.Schedule(3*time.Second, func() {})
	tm.Cancel()
	e.RunUntilIdle()
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2 (cancelled timer must not count)", e.Processed())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := New(1)
	tm := e.After(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	tm.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending = %d after cancel, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", e.Pending())
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := New(1)
	fired := 0
	tm := e.After(time.Second, func() { fired++ })
	e.Schedule(5*time.Second, func() {})
	e.RunUntilIdle()
	tm.Cancel() // already fired: must not corrupt the ghost count
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0 (cancel-after-fire leaked a ghost)", e.Pending())
	}
}

func TestRunHorizonWithCancelledHead(t *testing.T) {
	// A cancelled timer at the head of the queue must not let Run execute
	// a live event that lies beyond the horizon.
	e := New(1)
	tm := e.After(time.Second, func() {})
	fired := false
	e.Schedule(3*time.Second, func() { fired = true })
	tm.Cancel()
	e.Run(2 * time.Second)
	if fired {
		t.Error("event beyond horizon executed (cancelled head mishandled)")
	}
	if e.Now() != Time(2*time.Second) {
		t.Errorf("clock = %v, want 2s", e.Now())
	}
	e.Run(5 * time.Second)
	if !fired {
		t.Error("event not executed after horizon extension")
	}
}

func TestTimerFires(t *testing.T) {
	e := New(1)
	fired := false
	e.After(time.Second, func() { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Error("timer did not fire")
	}
}

func TestEvery(t *testing.T) {
	e := New(1)
	count := 0
	cancel := e.Every(0, time.Second, 0, func() { count++ })
	e.Run(10*time.Second + time.Millisecond)
	if count != 11 { // t=0s..10s inclusive
		t.Errorf("count = %d, want 11", count)
	}
	cancel()
	e.Run(20 * time.Second)
	if count != 11 {
		t.Errorf("after cancel count = %d, want 11", count)
	}
}

func TestEverySelfCancel(t *testing.T) {
	e := New(1)
	count := 0
	var cancel func()
	cancel = e.Every(0, time.Second, 0, func() {
		count++
		if count == 3 {
			cancel()
		}
	})
	e.Run(time.Minute)
	if count != 3 {
		t.Errorf("count = %d, want 3 (self-cancel)", count)
	}
}

func TestEveryJitterStaysWithinBounds(t *testing.T) {
	e := New(42)
	var times []Time
	e.Every(0, time.Second, 500*time.Millisecond, func() { times = append(times, e.Now()) })
	e.Run(30 * time.Second)
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap < time.Second || gap >= 1500*time.Millisecond {
			t.Fatalf("jittered gap %v out of [1s, 1.5s)", gap)
		}
	}
	if len(times) < 15 {
		t.Fatalf("too few firings: %d", len(times))
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New(1)
	assertPanics(t, func() { e.Schedule(-time.Second, func() {}) })
	assertPanics(t, func() { e.After(-time.Second, func() {}) })
	assertPanics(t, func() { e.Every(0, 0, 0, func() {}) })
	assertPanics(t, func() { e.At(Time(-1), func() {}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := New(seed)
		var out []int64
		e.Every(0, 100*time.Millisecond, 50*time.Millisecond, func() {
			out = append(out, int64(e.Now())+e.Rand().Int63n(1000))
		})
		e.Run(10 * time.Second)
		return out
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical jittered runs")
	}
}

// Property: any batch of events fires in nondecreasing time order and the
// clock never moves backwards.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := New(3)
		var fired []Time
		for _, d := range delaysMs {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.RunUntilIdle()
		if len(fired) != len(delaysMs) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProcessedCount(t *testing.T) {
	e := New(1)
	for i := 0; i < 57; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunUntilIdle()
	if e.Processed() != 57 {
		t.Errorf("Processed = %d, want 57", e.Processed())
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(2 * time.Second)
	if a.Seconds() != 2 {
		t.Errorf("Seconds = %v", a.Seconds())
	}
	if a.Add(time.Second) != Time(3*time.Second) {
		t.Errorf("Add failed")
	}
	if a.Sub(Time(time.Second)) != time.Second {
		t.Errorf("Sub failed")
	}
	if a.String() != "2s" {
		t.Errorf("String = %q", a.String())
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New(1)
	rng := rand.New(rand.NewSource(2))
	var churn func()
	churn = func() {
		e.Schedule(time.Duration(rng.Int63n(int64(time.Second))), churn)
	}
	for i := 0; i < 64; i++ {
		churn()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
