// Package sim implements the deterministic discrete-event engine underneath
// every emulated swarm.
//
// The engine is single-goroutine by design: determinism is a hard
// requirement (the same seed must regenerate the same paper table
// byte-for-byte), so parallelism belongs one level up, across independent
// experiments (see internal/runner), never inside one engine. Events
// scheduled for the same instant fire in scheduling order, which makes the
// tie-break rule explicit instead of accidental.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual instant, measured as an offset from the start of the
// experiment. It is a distinct type so that wall-clock time.Time values
// cannot leak into the simulation by accident.
type Time time.Duration

// String renders the instant in ordinary duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the instant in seconds, the unit used for rate
// computations in the analysis layer.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add offsets the instant by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between u and t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// event is stored by value in the heap slice: a simulation schedules
// millions of events per run, and a per-event heap allocation (plus the
// interface boxing container/heap forces on every Push/Pop) dominated the
// profile before the engine moved to this layout.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	timer *Timer // non-nil only for cancellable events (After)
}

// Engine is a discrete-event scheduler with a virtual clock and its own
// seeded random source. The zero value is not usable; construct with New.
type Engine struct {
	now    Time
	seq    uint64
	events []event // binary min-heap ordered by (at, seq)
	rng    *rand.Rand
	// ghost counts cancelled timers still sitting in the queue; they are
	// discarded lazily when they reach the head.
	ghost   int
	stopped bool
	// processed counts executed events; exposed for tests and for the
	// benchmark harness to report event throughput. Cancelled timers are
	// skipped, never executed, and therefore never counted.
	processed uint64
}

// New returns an engine whose random source is seeded with seed. Two engines
// built with the same seed and fed the same schedule behave identically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All randomness in
// a simulation must flow through this source; using any other source breaks
// reproducibility.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many live events are waiting in the queue. Cancelled
// timers that have not yet been discarded are excluded.
func (e *Engine) Pending() int { return len(e.events) - e.ghost }

// less orders the heap by instant, then by scheduling order, which is the
// engine's same-instant FIFO guarantee.
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/timer references to the GC
	e.events = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			break
		}
		e.events[i], e.events[m] = e.events[m], e.events[i]
		i = m
	}
	return top
}

// dropCancelled discards cancelled timers sitting at the head of the queue,
// so that the head, if any, is always the next event that will actually
// execute. Skipped events advance neither the clock nor Processed.
func (e *Engine) dropCancelled() {
	for len(e.events) > 0 {
		t := e.events[0].timer
		if t == nil || !t.cancelled {
			return
		}
		e.pop()
		e.ghost--
	}
}

// Schedule runs fn after delay of virtual time. A negative delay is a
// programming error and panics: allowing it would silently reorder the past.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now.Add(delay), fn)
}

// At runs fn at the absolute virtual instant t, which must not precede the
// current clock.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	eng       *Engine
	cancelled bool
	fired     bool
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op, so callers need no bookkeeping.
func (t *Timer) Cancel() {
	if t == nil || t.cancelled || t.fired {
		return
	}
	t.cancelled = true
	t.eng.ghost++
}

// After schedules fn like Schedule but returns a Timer handle that can
// cancel it. Cancellation is lazy: the event stays queued and is discarded
// when it reaches the head of the queue, which keeps the heap free of random
// deletions. A cancelled event never executes and never counts as processed.
func (e *Engine) After(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	t := &Timer{eng: e}
	e.seq++
	e.push(event{at: e.now.Add(delay), seq: e.seq, fn: fn, timer: t})
	return t
}

// Every schedules fn to run now+first, then repeatedly every interval, with
// a uniform jitter in [0, jitter) resampled on each firing. It returns a
// cancel function. Jittered periodic events are how the overlay models
// keep-alives and buffer-map exchanges without phase-locking every peer.
func (e *Engine) Every(first, interval, jitter time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped { // fn may cancel itself
			return
		}
		next := interval
		if jitter > 0 {
			next += time.Duration(e.rng.Int63n(int64(jitter)))
		}
		e.Schedule(next, tick)
	}
	e.Schedule(first, tick)
	return func() { stopped = true }
}

// Step executes the single earliest live pending event and reports whether
// one existed. The clock jumps to the event's instant. Cancelled timers
// encountered on the way are discarded silently.
func (e *Engine) Step() bool {
	e.dropCancelled()
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	if ev.timer != nil {
		ev.timer.fired = true
	}
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the clock would pass horizon or the queue
// drains or Stop is called. On return the clock rests at min(horizon, last
// event time); events scheduled beyond the horizon stay queued.
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	end := Time(horizon)
	for !e.stopped {
		e.dropCancelled()
		if len(e.events) == 0 || e.events[0].at > end {
			break
		}
		e.Step()
	}
	if e.now < end && !e.stopped {
		e.now = end
	}
}

// RunUntilIdle executes every queued event regardless of time. Useful in
// tests; real experiments use Run with a horizon.
func (e *Engine) RunUntilIdle() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Stop makes the current Run/RunUntilIdle return after the executing event
// completes. The queue is preserved, so a run can be resumed.
func (e *Engine) Stop() { e.stopped = true }
