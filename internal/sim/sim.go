// Package sim implements the deterministic discrete-event engine underneath
// every emulated swarm.
//
// Each Engine is single-goroutine by design: determinism is a hard
// requirement (the same seed must regenerate the same paper table
// byte-for-byte), so an engine never runs events concurrently. Events
// scheduled for the same instant fire in scheduling order, which makes the
// tie-break rule explicit instead of accidental.
//
// Parallelism lives at two levels above the single engine: across
// independent experiments (see internal/study), and — since the sharded
// engine (sharded.go) — across shards inside one experiment, where N
// engines run in conservative lockstep windows and exchange work through
// deterministically ordered mailboxes.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual instant, measured as an offset from the start of the
// experiment. It is a distinct type so that wall-clock time.Time values
// cannot leak into the simulation by accident.
type Time time.Duration

// String renders the instant in ordinary duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the instant in seconds, the unit used for rate
// computations in the analysis layer.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add offsets the instant by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between u and t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// event is stored by value in the wheel slots and the current-tick heap: a
// simulation schedules millions of events per run, and a per-event heap
// allocation (plus the interface boxing container/heap forces on every
// Push/Pop) dominated the profile before the engine moved to this layout.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	timer *Timer // non-nil only for cancellable events (After)
}

// Engine is a discrete-event scheduler with a virtual clock and its own
// seeded random source. The zero value is not usable; construct with New.
//
// The queue is a hierarchical timing wheel (see wheel.go): O(1) amortized
// schedule and fire regardless of how many events are pending, preserving
// the exact (at, seq) firing order of the binary heap it replaced.
type Engine struct {
	now Time
	seq uint64
	rng *rand.Rand

	// Timing-wheel queue state (wheel.go). cur is the small (at, seq)
	// min-heap of the tick being drained; slots/occ are the wheel levels
	// and their occupancy bitmaps; curTick is the wheel cursor.
	cur        []event
	curTick    int64
	slots      [numLevels][levelSlots][]event
	occ        [numLevels]uint64
	wheelCount int // events stored in wheel slots, ghosts included

	// ghost counts cancelled timers still sitting in the queue; they are
	// discarded lazily — per wheel slot at spill time, and at the heap
	// head.
	ghost   int
	stopped bool
	// processed counts executed events; exposed for tests and for the
	// benchmark harness to report event throughput. Cancelled timers are
	// skipped, never executed, and therefore never counted.
	processed uint64
}

// New returns an engine whose random source is seeded with seed. Two engines
// built with the same seed and fed the same schedule behave identically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
//
// Ordering contract: the source is shared by every caller on this engine,
// so the draw sequence is defined by event execution order — (at, seq)
// order during a run, plus setup-code draws in program order before Run.
// Any randomness consumed outside that order (from another goroutine, or
// interleaved with a different engine's events) breaks reproducibility.
// Under the sharded engine each shard owns its own Engine and therefore its
// own stream; model code must draw from the engine of the shard whose event
// is executing, never from a neighbour shard's source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many live events are waiting in the queue. Cancelled
// timers that have not yet been discarded are excluded.
func (e *Engine) Pending() int { return len(e.cur) + e.wheelCount - e.ghost }

// NextAt reports the instant of the earliest live pending event, or false
// when the queue holds none. Cancelled timers encountered on the way to the
// head are discarded, exactly as Step would; the observable schedule is
// unchanged. The sharded coordinator uses this peek to clip lockstep
// windows at the next global event and to jump over idle gaps.
func (e *Engine) NextAt() (Time, bool) {
	if !e.headLive() {
		return 0, false
	}
	return e.cur[0].at, true
}

// Schedule runs fn after delay of virtual time. A negative delay is a
// programming error and panics: allowing it would silently reorder the past.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now.Add(delay), fn)
}

// At runs fn at the absolute virtual instant t, which must not precede the
// current clock.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	e.seq++
	e.enqueue(event{at: t, seq: e.seq, fn: fn})
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	eng       *Engine
	cancelled bool
	fired     bool
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or already cancelled timer is a no-op, so callers need no bookkeeping.
func (t *Timer) Cancel() {
	if t == nil || t.cancelled || t.fired {
		return
	}
	t.cancelled = true
	t.eng.ghost++
}

// After schedules fn like Schedule but returns a Timer handle that can
// cancel it. Cancellation is lazy: the event stays queued and is discarded
// when it reaches the head of the queue, which keeps the heap free of random
// deletions. A cancelled event never executes and never counts as processed.
func (e *Engine) After(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	t := &Timer{eng: e}
	e.seq++
	e.enqueue(event{at: e.now.Add(delay), seq: e.seq, fn: fn, timer: t})
	return t
}

// Every schedules fn to run now+first, then repeatedly every interval, with
// a uniform jitter in [0, jitter) resampled on each firing. It returns a
// cancel function. Jittered periodic events are how the overlay models
// keep-alives and buffer-map exchanges without phase-locking every peer.
func (e *Engine) Every(first, interval, jitter time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped { // fn may cancel itself
			return
		}
		next := interval
		if jitter > 0 {
			next += time.Duration(e.rng.Int63n(int64(jitter)))
		}
		e.Schedule(next, tick)
	}
	e.Schedule(first, tick)
	return func() { stopped = true }
}

// Step executes the single earliest live pending event and reports whether
// one existed. The clock jumps to the event's instant. Cancelled timers
// encountered on the way are discarded silently.
func (e *Engine) Step() bool {
	if !e.headLive() {
		return false
	}
	ev := e.heapPop()
	if ev.timer != nil {
		ev.timer.fired = true
	}
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the clock would pass horizon or the queue
// drains or Stop is called. On return the clock rests at min(horizon, last
// event time); events scheduled beyond the horizon stay queued. A run that
// drains the queue completely also releases the queue's internal capacity,
// so a workload spike (a flash crowd's arrival burst) does not pin its
// peak event memory for the rest of a long study.
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	end := Time(horizon)
	for !e.stopped {
		if !e.headLive() || e.cur[0].at > end {
			break
		}
		e.Step()
	}
	if e.now < end && !e.stopped {
		e.now = end
	}
	e.releaseIfDrained()
}

// RunUntilIdle executes every queued event regardless of time. Useful in
// tests; real experiments use Run with a horizon.
func (e *Engine) RunUntilIdle() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.releaseIfDrained()
}

// Stop makes the current Run/RunUntilIdle return after the executing event
// completes. The queue is preserved, so a run can be resumed.
func (e *Engine) Stop() { e.stopped = true }
