package sim

import (
	"fmt"
	"sync"
	"time"
)

// Sharded coordinates N shard engines plus one global engine in
// conservative lockstep windows, so a single simulation can drain events on
// several cores without giving up determinism.
//
// Model. Every simulated entity is owned by exactly one shard; its events
// run on that shard's Engine, on that shard's goroutine, against that
// shard's RNG stream. Anything that must observe or mutate state across
// shards — scenario timeline events, the metrics sampler, tracker snapshot
// refreshes — runs on the global engine, which only executes at window
// barriers while every shard goroutine is parked, and may therefore touch
// anything.
//
// Windows. The coordinator repeatedly picks a window end
//
//	next = min(m + lookahead, nextGlobalEvent, horizon)
//
// where m is the earliest pending instant across all engines and lookahead
// is a lower bound on the latency of any cross-shard interaction (for the
// overlay: the minimum inter-shard topology.OneWayDelay). Shards then run
// concurrently to next. The bound makes this safe: an event executing at
// t ≤ next can only affect another shard at t+lookahead ≥ next, i.e. never
// inside the current window, so no shard can run ahead of a message it
// should have received. Clipping at the next global event only shortens
// windows and preserves the bound.
//
// Cross-shard sends. During the concurrent phase a shard must not call
// into another shard's Engine; it appends the send to its own per-
// destination mailbox via Send. At the barrier the coordinator flushes all
// mailboxes, per destination, sorted by (at, src shard, seq) — a total
// order independent of goroutine scheduling — which makes shards=N runs
// byte-identical for a fixed N. A send that lands exactly on the window
// boundary is enqueued behind the barrier and executes first thing in the
// next window.
//
// shards=1 collapses the machinery entirely: the global engine is the one
// shard, Run delegates to Engine.Run, and behavior is byte-identical to
// the serial engine.
type Sharded struct {
	shards    []*Engine
	global    *Engine
	lookahead Time
	stopped   bool

	// mail[src][dst] buffers cross-shard sends made during the concurrent
	// phase; each inner slice is appended to only by shard src's goroutine,
	// so no locking is needed. crossSeq[src] numbers shard src's sends to
	// every destination, giving the flush sort a total order.
	mail     [][][]crossEvent
	crossSeq []uint64
	// parallel is true exactly while shard goroutines are running. It is
	// written only by the coordinator while workers are parked, so workers
	// observe a stable value.
	parallel bool
	// scratch for the per-destination merge at flush time.
	flushBuf []crossEvent
}

// crossEvent is one cross-shard send awaiting the barrier flush.
type crossEvent struct {
	at  Time
	src int
	seq uint64
	fn  func()
}

// NewSharded builds a coordinator over n shard engines. lookahead must be a
// positive lower bound on the virtual latency of every cross-shard
// interaction; the caller (the experiment layer) derives it from the
// topology and its shard partition. Shard i draws from an RNG stream
// seeded by mixing (seed, i), so streams are decorrelated and each is a
// pure function of the pair (seed, shards).
func NewSharded(seed int64, n int, lookahead time.Duration) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("sim: shards must be >= 1, got %d", n))
	}
	if n > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	s := &Sharded{global: New(seed), lookahead: Time(lookahead)}
	if n == 1 {
		s.shards = []*Engine{s.global}
		return s
	}
	s.shards = make([]*Engine, n)
	for i := range s.shards {
		s.shards[i] = New(mixSeed(seed, int64(i)))
	}
	s.crossSeq = make([]uint64, n)
	s.mail = make([][][]crossEvent, n)
	for i := range s.mail {
		s.mail[i] = make([][]crossEvent, n)
	}
	return s
}

// mixSeed derives shard i's RNG seed from the run seed with a splitmix64
// finalizer, so neighbouring shard indexes yield decorrelated streams.
func mixSeed(seed, i int64) int64 {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// N reports the shard count.
func (s *Sharded) N() int { return len(s.shards) }

// Shard returns shard i's engine. Model code owned by shard i must schedule
// and draw randomness exclusively through this engine.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// Global returns the barrier-phase engine. Events scheduled here may read
// and mutate state on any shard, because they only execute while every
// shard goroutine is parked. With one shard it is the shard engine itself.
func (s *Sharded) Global() *Engine { return s.global }

// Lookahead reports the window width bound the coordinator runs under.
func (s *Sharded) Lookahead() time.Duration { return time.Duration(s.lookahead) }

// Now reports the coordinated virtual clock. All engines agree on it at
// every barrier; during the concurrent phase shard clocks may individually
// be anywhere inside the current window.
func (s *Sharded) Now() Time { return s.global.now }

// Processed totals executed events across the shards and the global engine.
func (s *Sharded) Processed() uint64 {
	if len(s.shards) == 1 {
		return s.global.processed
	}
	total := s.global.processed
	for _, sh := range s.shards {
		total += sh.processed
	}
	return total
}

// Pending totals live queued events across the shards and the global
// engine, plus any cross-shard sends still waiting in mailboxes.
func (s *Sharded) Pending() int {
	if len(s.shards) == 1 {
		return s.global.Pending()
	}
	total := s.global.Pending()
	for _, sh := range s.shards {
		total += sh.Pending()
	}
	for _, row := range s.mail {
		for _, box := range row {
			total += len(box)
		}
	}
	return total
}

// Stop makes the current Run return at the next barrier. It must be called
// from a global event (or between runs); shard events cannot stop the
// coordinator because they have no safe way to reach it mid-window.
func (s *Sharded) Stop() {
	s.stopped = true
	s.global.Stop()
}

// Send schedules fn at absolute instant at on shard dst's engine, on behalf
// of shard src. During the concurrent phase the send is buffered in the
// (src, dst) mailbox and delivered at the barrier; during the barrier phase
// (global events, setup code) it goes straight into dst's queue. Same-shard
// sends always go straight in: they are ordinary intra-engine scheduling.
func (s *Sharded) Send(src, dst int, at Time, fn func()) {
	if dst == src || !s.parallel {
		s.shards[dst].At(at, fn)
		return
	}
	s.crossSeq[src]++
	s.mail[src][dst] = append(s.mail[src][dst],
		crossEvent{at: at, src: src, seq: s.crossSeq[src], fn: fn})
}

// Run executes events until the coordinated clock would pass horizon, the
// queues drain, or Stop is called. Semantics match Engine.Run: events with
// at ≤ horizon execute, the clock rests at horizon (or where Stop left it),
// later events stay queued.
func (s *Sharded) Run(horizon time.Duration) {
	if len(s.shards) == 1 {
		s.global.Run(horizon)
		return
	}
	s.stopped = false
	end := Time(horizon)

	// Persistent workers for this Run: each waits for a window end, runs
	// its shard to it, and signals the barrier. They exit when their
	// channel closes, so a Run never leaks goroutines.
	starts := make([]chan Time, len(s.shards))
	var wg sync.WaitGroup
	for i := range starts {
		starts[i] = make(chan Time, 1)
		go func(i int, ch <-chan Time) {
			for next := range ch {
				s.shards[i].Run(time.Duration(next))
				wg.Done()
			}
		}(i, starts[i])
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()

	for !s.stopped {
		m, ok := s.minNext()
		if !ok || m > end {
			// Nothing left at or before the horizon: rest every clock at
			// the horizon, like Engine.Run, and return.
			for _, sh := range s.shards {
				if sh.now < end {
					sh.now = end
				}
				sh.releaseIfDrained()
			}
			if s.global.now < end {
				s.global.now = end
			}
			s.global.releaseIfDrained()
			return
		}
		// Jump the window base over any idle gap, then extend by the
		// lookahead bound and clip at the horizon and the next global
		// event. m ≥ now always: no engine can hold an event in the past.
		next := m.Add(time.Duration(s.lookahead))
		if next > end {
			next = end
		}
		if g, ok := s.global.NextAt(); ok && g < next {
			next = g
		}

		// Concurrent phase.
		s.parallel = true
		wg.Add(len(s.shards))
		for _, ch := range starts {
			ch <- next
		}
		wg.Wait()
		s.parallel = false

		// Barrier: deliver cross-shard sends in (at, src, seq) order, then
		// run global events due in the closed window.
		s.flush(next)
		s.global.Run(time.Duration(next))
		if s.global.stopped {
			// A global event called Stop (or Engine.Stop on the global
			// engine directly); leave every queue intact for resumption.
			s.stopped = true
		}
	}
}

// minNext reports the earliest pending instant across every engine,
// ignoring mailboxes (always empty between windows).
func (s *Sharded) minNext() (Time, bool) {
	var m Time
	ok := false
	for _, sh := range s.shards {
		if t, live := sh.NextAt(); live && (!ok || t < m) {
			m, ok = t, true
		}
	}
	if t, live := s.global.NextAt(); live && (!ok || t < m) {
		m, ok = t, true
	}
	return m, ok
}

// flush delivers all buffered cross-shard sends. Per destination, events
// from every source mailbox merge in (at, src, seq) order — deterministic
// regardless of how the window's goroutines interleaved — and enqueue in
// that order, so the destination's (at, seq) tie-break preserves it. An
// arrival before the barrier instant would mean the lookahead bound was
// violated; that is a bug in the caller's bound, and it panics loudly
// rather than silently reordering the past.
func (s *Sharded) flush(barrier Time) {
	for dst := range s.shards {
		buf := s.flushBuf[:0]
		for src := range s.shards {
			if src == dst {
				continue
			}
			box := s.mail[src][dst]
			if len(box) == 0 {
				continue
			}
			buf = append(buf, box...)
			for i := range box {
				box[i] = crossEvent{} // release fn references
			}
			s.mail[src][dst] = box[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sortCross(buf)
		sh := s.shards[dst]
		for i := range buf {
			ev := &buf[i]
			if ev.at < barrier {
				panic(fmt.Sprintf("sim: cross-shard send at %v arrived inside window ending %v (lookahead bound violated)", ev.at, barrier))
			}
			sh.At(ev.at, ev.fn)
			*ev = crossEvent{}
		}
		s.flushBuf = buf[:0]
	}
}

// sortCross orders by (at, src, seq): insertion sort, since mailbox batches
// are small (one window's worth of cross traffic per destination) and each
// source's run arrives already seq-ordered.
func sortCross(evs []crossEvent) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && crossAfter(evs[j], ev) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

func crossAfter(a, b crossEvent) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
