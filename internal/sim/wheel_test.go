package sim

import (
	"math/rand"
	"testing"
	"time"
)

// refEngine reimplements the engine's previous queue — a single binary
// min-heap over (at, seq) with lazy head discard of cancelled timers — as a
// reference model. The differential tests below drive it and the timing
// wheel with identical randomized workloads and demand identical behaviour.
type refEngine struct {
	now       Time
	seq       uint64
	events    []refEvent
	ghost     int
	processed uint64
}

type refEvent struct {
	at    Time
	seq   uint64
	fn    func()
	timer *refTimer
}

type refTimer struct {
	eng       *refEngine
	cancelled bool
	fired     bool
}

func (t *refTimer) cancel() {
	if t.cancelled || t.fired {
		return
	}
	t.cancelled = true
	t.eng.ghost++
}

func (e *refEngine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *refEngine) push(ev refEvent) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

func (e *refEngine) pop() refEvent {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = refEvent{}
	e.events = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.less(r, l) {
			m = r
		}
		if !e.less(m, i) {
			break
		}
		e.events[i], e.events[m] = e.events[m], e.events[i]
		i = m
	}
	return top
}

func (e *refEngine) dropCancelled() {
	for len(e.events) > 0 {
		t := e.events[0].timer
		if t == nil || !t.cancelled {
			return
		}
		e.pop()
		e.ghost--
	}
}

func (e *refEngine) step() bool {
	e.dropCancelled()
	if len(e.events) == 0 {
		return false
	}
	ev := e.pop()
	if ev.timer != nil {
		ev.timer.fired = true
	}
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

func (e *refEngine) run(horizon time.Duration) {
	end := Time(horizon)
	for {
		e.dropCancelled()
		if len(e.events) == 0 || e.events[0].at > end {
			break
		}
		e.step()
	}
	if e.now < end {
		e.now = end
	}
}

// sched abstracts the two engines so one workload driver exercises both.
type sched interface {
	now() Time
	pending() int
	processedCount() uint64
	schedule(d time.Duration, fn func())
	after(d time.Duration, fn func()) (cancel func())
	run(horizon time.Duration)
	stepToIdle()
}

type wheelSched struct{ e *Engine }

func (s wheelSched) now() Time                           { return s.e.Now() }
func (s wheelSched) pending() int                        { return s.e.Pending() }
func (s wheelSched) processedCount() uint64              { return s.e.Processed() }
func (s wheelSched) schedule(d time.Duration, fn func()) { s.e.Schedule(d, fn) }
func (s wheelSched) run(horizon time.Duration)           { s.e.Run(horizon) }
func (s wheelSched) stepToIdle()                         { s.e.RunUntilIdle() }
func (s wheelSched) after(d time.Duration, fn func()) func() {
	t := s.e.After(d, fn)
	return t.Cancel
}

type refSched struct{ e *refEngine }

func (s refSched) now() Time              { return s.e.now }
func (s refSched) pending() int           { return len(s.e.events) - s.e.ghost }
func (s refSched) processedCount() uint64 { return s.e.processed }
func (s refSched) schedule(d time.Duration, fn func()) {
	s.e.seq++
	s.e.push(refEvent{at: s.e.now.Add(d), seq: s.e.seq, fn: fn})
}
func (s refSched) after(d time.Duration, fn func()) func() {
	t := &refTimer{eng: s.e}
	s.e.seq++
	s.e.push(refEvent{at: s.e.now.Add(d), seq: s.e.seq, fn: fn, timer: t})
	return t.cancel
}
func (s refSched) run(horizon time.Duration) { s.e.run(horizon) }
func (s refSched) stepToIdle() {
	for s.e.step() {
	}
}

type fireRec struct {
	id int
	at Time
}

// driveWorkload runs a randomized schedule against s: mixed delay
// magnitudes (zero, sub-tick, multi-tick, exact tick and level-boundary
// multiples), same-instant ties, nested scheduling from callbacks, and
// cancellations both immediate and issued later from unrelated events. The
// rng is re-seeded per engine, so two engines that fire events in the same
// order draw identical decisions and produce comparable traces.
func driveWorkload(s sched, seed int64, segments []time.Duration) []fireRec {
	rng := rand.New(rand.NewSource(seed))
	var recs []fireRec
	var cancels []func()
	nextID := 0
	budget := 3000
	prev := time.Duration(0)

	randDelay := func() time.Duration {
		switch rng.Intn(10) {
		case 0:
			return 0
		case 1:
			return prev // deliberate same-instant tie with a sibling
		case 2:
			return time.Duration(rng.Int63n(1000)) // sub-µs, far below one tick
		case 3:
			return time.Duration(rng.Int63n(int64(time.Millisecond)))
		case 4:
			return time.Duration(rng.Int63n(int64(time.Second)))
		case 5:
			return time.Duration(rng.Int63n(int64(time.Minute)))
		case 6:
			return time.Duration(1+rng.Int63n(levelSlots)) << tickShift // exact tick multiples
		case 7:
			return time.Duration(1+rng.Int63n(8)) << (tickShift + levelBits) // level-1 slot boundaries
		default:
			return time.Duration(1+rng.Int63n(4)) << (tickShift + 2*levelBits) // level-2 slot boundaries
		}
	}

	var spawn func()
	spawn = func() {
		if budget <= 0 {
			return
		}
		budget--
		id := nextID
		nextID++
		d := randDelay()
		prev = d
		fn := func() {
			recs = append(recs, fireRec{id, s.now()})
			for k := rng.Intn(3); k > 0; k-- { // nested scheduling from the callback
				spawn()
			}
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				// Cancel a timer queued by an earlier, unrelated event —
				// it may sit in any wheel level or in the current tick.
				i := rng.Intn(len(cancels))
				cancels[i]()
				cancels[i] = cancels[len(cancels)-1]
				cancels = cancels[:len(cancels)-1]
			}
		}
		if rng.Intn(4) == 0 {
			cancel := s.after(d, fn)
			if rng.Intn(3) == 0 {
				cancel() // immediate cancellation
			} else {
				cancels = append(cancels, cancel)
			}
		} else {
			s.schedule(d, fn)
		}
	}

	for i := 0; i < 400; i++ {
		spawn()
	}
	for _, h := range segments {
		s.run(h)
	}
	s.stepToIdle()
	return recs
}

// TestWheelMatchesHeapDifferential is the core equivalence check: the same
// randomized workload through the old heap and the new wheel must fire the
// same events in the same order at the same instants, with matching
// processed counts, pending counts, and final clocks.
func TestWheelMatchesHeapDifferential(t *testing.T) {
	segments := []time.Duration{
		500 * time.Millisecond, // horizon mid-workload: cursor overshoot path
		2 * time.Second,
		time.Minute,
	}
	for seed := int64(1); seed <= 8; seed++ {
		wheel := wheelSched{New(0)}
		ref := refSched{&refEngine{}}
		got := driveWorkload(wheel, seed, segments)
		want := driveWorkload(ref, seed, segments)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at firing %d: wheel %+v, heap %+v",
					seed, i, got[i], want[i])
			}
		}
		if gp, wp := wheel.processedCount(), ref.processedCount(); gp != wp {
			t.Errorf("seed %d: processed %d, reference %d", seed, gp, wp)
		}
		if gp, wp := wheel.pending(), ref.pending(); gp != wp {
			t.Errorf("seed %d: pending %d, reference %d", seed, gp, wp)
		}
		if gn, wn := wheel.now(), ref.now(); gn != wn {
			t.Errorf("seed %d: clock %v, reference %v", seed, gn, wn)
		}
	}
}

// TestCancelInHigherWheelLevel cancels timers that sit in level ≥ 1 slots
// before any cascade has touched them; they must neither fire nor linger in
// Pending, and the queue must drain cleanly around them.
func TestCancelInHigherWheelLevel(t *testing.T) {
	e := New(1)
	oneTick := time.Duration(1) << tickShift
	level1 := oneTick * levelSlots // lands in level 1
	level2 := level1 * levelSlots  // lands in level 2

	tm1 := e.After(level1+oneTick, func() { t.Error("cancelled level-1 timer fired") })
	tm2 := e.After(level2+oneTick, func() { t.Error("cancelled level-2 timer fired") })
	fired := 0
	e.Schedule(level2+2*oneTick, func() { fired++ })
	tm1.Cancel()
	tm2.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntilIdle()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", e.Pending())
	}
}

// TestCancelAfterCascadeIntoCurrentTick cancels a timer after its slot has
// spilled into the current-tick heap (its sibling at the same tick already
// fired), exercising the heap-head discard path.
func TestCancelAfterCascadeIntoCurrentTick(t *testing.T) {
	e := New(1)
	oneTick := time.Duration(1) << tickShift
	at := 5 * oneTick
	var tm *Timer
	// First event of the tick cancels the second while both are in cur.
	e.Schedule(at, func() { tm.Cancel() })
	tm = e.After(at+oneTick/2, func() { t.Error("timer cancelled in current tick fired") })
	e.Schedule(at+oneTick-1, func() {}) // same tick, after the cancelled timer
	e.RunUntilIdle()
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

// TestRunHorizonCursorOvershoot pins the subtle interaction between Run
// horizons and the wheel cursor: peeking at a far-future event advances the
// cursor past the horizon, and events scheduled afterwards at nearer
// instants land behind the cursor — they must still fire first, in order.
func TestRunHorizonCursorOvershoot(t *testing.T) {
	e := New(1)
	var trace []string
	e.Schedule(10*time.Minute, func() { trace = append(trace, "far") })
	e.Run(time.Second) // peeks at the 10-minute event, overshooting the cursor
	if e.Now() != Time(time.Second) {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
	e.Schedule(time.Second, func() { trace = append(trace, "near") })
	e.Schedule(2*time.Second, func() { trace = append(trace, "mid") })
	e.RunUntilIdle()
	want := []string{"near", "mid", "far"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

// TestRunReleasesQueueCapacity checks the drain-release contract: once a Run
// empties the queue, the engine lets go of the event slabs a workload spike
// grew, instead of pinning peak capacity for the rest of a long study.
func TestRunReleasesQueueCapacity(t *testing.T) {
	e := New(1)
	for i := 0; i < 10000; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	tm := e.After(5*time.Second, func() {}) // a ghost must not block the release
	tm.Cancel()
	e.Run(time.Minute)
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	if e.cur != nil {
		t.Errorf("cur heap capacity not released after drain")
	}
	for lvl := range e.slots {
		for i := range e.slots[lvl] {
			if e.slots[lvl][i] != nil {
				t.Fatalf("slot [%d][%d] capacity not released after drain", lvl, i)
			}
		}
	}
	// The engine must stay fully usable after a release.
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Error("engine unusable after capacity release")
	}
}

// BenchmarkEngineDeepQueue measures schedule+fire cost with many events
// pending at once — the regime where the old heap paid its log factor.
func BenchmarkEngineDeepQueue(b *testing.B) {
	e := New(1)
	rng := rand.New(rand.NewSource(2))
	var churn func()
	churn = func() {
		e.Schedule(time.Duration(rng.Int63n(int64(time.Minute))), churn)
	}
	for i := 0; i < 1<<16; i++ {
		churn()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
