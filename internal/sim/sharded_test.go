package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardedTrace runs a synthetic cross-shard workload and returns one event
// trace per shard. Each trace slice is appended to only by its own shard's
// events (ticker lines by the shard, arrival lines by the destination), so
// the traces are data-race-free and — if the coordinator is deterministic —
// a pure function of (seed, n).
func shardedTrace(n int, seed int64, horizon time.Duration) [][]string {
	const la = 10 * time.Millisecond
	s := NewSharded(seed, n, la)
	traces := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		eng := s.Shard(i)
		eng.Every(0, 3*time.Millisecond, time.Millisecond, func() {
			now := eng.Now()
			traces[i] = append(traces[i], fmt.Sprintf("tick %d@%v r%d", i, now, eng.Rand().Int63n(1000)))
			dst := (i + 1) % n
			at := now.Add(la + time.Duration(eng.Rand().Int63n(int64(time.Millisecond))))
			s.Send(i, dst, at, func() {
				traces[dst] = append(traces[dst], fmt.Sprintf("recv %d<-%d@%v", dst, i, s.Shard(dst).Now()))
			})
		})
	}
	s.Run(horizon)
	return traces
}

func TestShardedDeterminism(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		a := shardedTrace(n, 7, 200*time.Millisecond)
		b := shardedTrace(n, 7, 200*time.Millisecond)
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("n=%d shard %d: trace lengths differ: %d vs %d", n, i, len(a[i]), len(b[i]))
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("n=%d shard %d diverges at %d: %q vs %q", n, i, j, a[i][j], b[i][j])
				}
			}
		}
		if len(a[0]) == 0 {
			t.Fatalf("n=%d: empty trace — workload never ran", n)
		}
	}
}

// One shard must be the serial engine exactly: same event sequence, same
// RNG stream, same processed count, no goroutines.
func TestShardedOneShardMatchesSerial(t *testing.T) {
	workload := func(eng *Engine) []string {
		var out []string
		eng.Every(0, 7*time.Millisecond, 3*time.Millisecond, func() {
			out = append(out, fmt.Sprintf("%v r%d", eng.Now(), eng.Rand().Int63n(1000)))
		})
		return out
	}
	serial := New(5)
	so := workload(serial)
	serial.Run(300 * time.Millisecond)

	sh := NewSharded(5, 1, 0)
	if sh.Shard(0) != sh.Global() {
		t.Fatal("one-shard coordinator must expose the global engine as the shard")
	}
	po := workload(sh.Shard(0))
	sh.Run(300 * time.Millisecond)

	if len(so) != len(*(&po)) {
		t.Fatalf("trace lengths differ: %d vs %d", len(so), len(po))
	}
	for i := range so {
		if so[i] != po[i] {
			t.Fatalf("diverges at %d: %q vs %q", i, so[i], po[i])
		}
	}
	if serial.Processed() != sh.Processed() {
		t.Errorf("Processed: serial %d, sharded %d", serial.Processed(), sh.Processed())
	}
	if sh.Now() != Time(300*time.Millisecond) {
		t.Errorf("clock = %v, want 300ms", sh.Now())
	}
}

// Mailbox flush must deliver same-instant cross sends ordered by
// (at, src shard, seq) no matter which goroutine finished first.
func TestShardedFlushOrdering(t *testing.T) {
	const la = 10 * time.Millisecond
	s := NewSharded(1, 3, la)
	var got []string
	at := Time(la + 5*time.Millisecond)
	// Shards 1 and 2 each send two same-instant events to shard 0 from
	// inside the first window; the arrival order must be src 1 (seq order)
	// then src 2 (seq order), regardless of scheduling.
	for _, src := range []int{2, 1} { // registration order must not matter
		src := src
		s.Shard(src).Schedule(5*time.Millisecond, func() {
			for k := 0; k < 2; k++ {
				k := k
				s.Send(src, 0, at, func() {
					got = append(got, fmt.Sprintf("%d.%d", src, k))
				})
			}
		})
	}
	s.Run(100 * time.Millisecond)
	want := []string{"1.0", "1.1", "2.0", "2.1"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flush order = %v, want %v", got, want)
		}
	}
}

// A global event pins a window barrier; shard events at exactly that
// instant run in the closing window (shard phase), then the global event
// runs with every clock resting exactly on the barrier.
func TestShardedGlobalBarrierTiming(t *testing.T) {
	const la = 10 * time.Millisecond
	s := NewSharded(1, 2, la)
	bar := Time(15 * time.Millisecond)
	var order []string
	s.Shard(0).At(bar, func() { order = append(order, "shard@barrier") })
	s.Global().At(bar, func() {
		order = append(order, "global@barrier")
		if s.Shard(0).Now() != bar || s.Shard(1).Now() != bar {
			t.Errorf("shard clocks at global event: %v, %v, want %v",
				s.Shard(0).Now(), s.Shard(1).Now(), bar)
		}
	})
	// Keep the shards busy before and after the barrier.
	s.Shard(1).Schedule(time.Millisecond, func() {})
	s.Shard(1).Schedule(20*time.Millisecond, func() {})
	s.Run(50 * time.Millisecond)
	if len(order) != 2 || order[0] != "shard@barrier" || order[1] != "global@barrier" {
		t.Fatalf("order = %v, want [shard@barrier global@barrier]", order)
	}
}

// A cross send landing exactly on the window boundary is enqueued behind
// the barrier and executes first thing in the next window, at its exact
// instant — never early, never time-skewed.
func TestShardedSendOnWindowBoundary(t *testing.T) {
	const la = 10 * time.Millisecond
	s := NewSharded(1, 2, la)
	fired := false
	s.Shard(0).Schedule(0, func() {
		// The window is [0, la] (m=0, no closer global event), so this
		// lands exactly on the boundary.
		s.Send(0, 1, Time(la), func() {
			fired = true
			if now := s.Shard(1).Now(); now != Time(la) {
				t.Errorf("boundary send executed at %v, want %v", now, Time(la))
			}
		})
	})
	s.Run(100 * time.Millisecond)
	if !fired {
		t.Fatal("boundary send never executed")
	}
}

func TestShardedStopFromGlobalAndResume(t *testing.T) {
	const la = 10 * time.Millisecond
	s := NewSharded(1, 2, la)
	// Per-shard counters: shard events run concurrently and must not
	// share mutable state (the same rule the overlay lives by).
	var counts [2]int
	for i := 0; i < 2; i++ {
		i := i
		s.Shard(i).Every(0, 5*time.Millisecond, 0, func() { counts[i]++ })
	}
	s.Global().Schedule(20*time.Millisecond, func() { s.Stop() })
	s.Run(time.Second)
	if s.Now() != Time(20*time.Millisecond) {
		t.Fatalf("clock after Stop = %v, want 20ms", s.Now())
	}
	stopped := counts[0] + counts[1]
	if stopped == 0 {
		t.Fatal("nothing ran before Stop")
	}
	s.Run(40 * time.Millisecond) // resumes where Stop left off
	if counts[0]+counts[1] <= stopped {
		t.Errorf("run did not resume after Stop (count %d -> %d)", stopped, counts[0]+counts[1])
	}
	if s.Now() != Time(40*time.Millisecond) {
		t.Errorf("clock after resume = %v, want 40ms", s.Now())
	}
}

func TestShardedPendingCountsMailboxes(t *testing.T) {
	s := NewSharded(1, 2, time.Millisecond)
	s.Shard(0).Schedule(time.Millisecond, func() {})
	s.Global().Schedule(time.Millisecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	// White box: a buffered mailbox entry counts as pending.
	s.parallel = true
	s.Send(0, 1, Time(5*time.Millisecond), func() {})
	s.parallel = false
	if got := s.Pending(); got != 3 {
		t.Errorf("Pending with mailbox entry = %d, want 3", got)
	}
}

func TestShardedLookaheadViolationPanics(t *testing.T) {
	s := NewSharded(1, 2, time.Millisecond)
	s.parallel = true
	s.Send(0, 1, Time(time.Millisecond), func() {})
	s.parallel = false
	assertPanics(t, func() { s.flush(Time(2 * time.Millisecond)) })
}

func TestShardedConstructorPanics(t *testing.T) {
	assertPanics(t, func() { NewSharded(1, 0, time.Millisecond) })
	assertPanics(t, func() { NewSharded(1, 2, 0) })
	// One shard needs no lookahead.
	if s := NewSharded(1, 1, 0); s.N() != 1 {
		t.Errorf("N = %d, want 1", s.N())
	}
}

// Pending must stay exact under a cancellation-heavy workload whose ghosts
// die in every corner of the timing wheel: some in the current tick, some
// in higher levels (cancelled before their spill), some after cascading
// down, interleaved with live events that do run.
func TestPendingGhostHeavyWorkload(t *testing.T) {
	e := New(9)
	type entry struct {
		tm *Timer
		d  time.Duration
	}
	var ts []entry
	fired := 0
	// Delays spanning the wheel's levels: sub-tick, few-tick, and far
	// enough to land two levels up.
	for i := 0; i < 400; i++ {
		d := time.Duration(1+i) * 700 * time.Microsecond
		if i%3 == 0 {
			d = time.Duration(1+i) * 97 * time.Millisecond // higher levels
		}
		ts = append(ts, entry{e.After(d, func() { fired++ }), d})
	}
	// Wave 1: cancel every other timer before anything runs.
	live := len(ts)
	for i := 0; i < len(ts); i += 2 {
		ts[i].tm.Cancel()
		live--
	}
	if got := e.Pending(); got != live {
		t.Fatalf("Pending = %d, want %d after mass cancel", got, live)
	}
	// Run partway, then wave 2: cancel more — no-ops on already-fired
	// timers, fresh ghosts on pending ones (some already cascaded down).
	const cut = 5 * time.Second
	e.Run(cut)
	for i := 1; i < len(ts); i += 4 {
		ts[i].tm.Cancel()
	}
	wantPending, wantFired := 0, 0
	for i, en := range ts {
		switch {
		case i%2 == 0: // wave 1: never fires
		case i%4 == 1: // wave 2: fired only if its instant beat the cut
			if en.d <= cut {
				wantFired++
			}
		default: // never cancelled
			wantFired++
			if en.d > cut {
				wantPending++
			}
		}
	}
	if got := e.Pending(); got != wantPending {
		t.Fatalf("Pending = %d, want %d after mid-run cancels", got, wantPending)
	}
	e.RunUntilIdle()
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0 after drain", got)
	}
	if fired != wantFired {
		t.Errorf("fired = %d, want %d", fired, wantFired)
	}
}
