// Package world synthesizes the experiment's population: the exact Table I
// NAPA-WINE testbed (7 sites, 4 countries, 6 institutional ASes, DSL/CATV
// home probes with NAT/firewall flags) plus a configurable China-dominant
// background swarm for each application run.
package world

import (
	"fmt"

	"napawine/internal/access"
	"napawine/internal/topology"
)

// SiteSpec describes one testbed site from Table I.
type SiteSpec struct {
	Name    string
	Country topology.CC
	ASLabel string // paper's anonymized AS name (AS1..AS6)
	// Institutional hosts on the site LAN.
	HighBw    int
	HighBwNAT int  // high-bw hosts behind the institution's NAT
	HighBwFW  bool // the whole site LAN sits behind a firewall
	// Home probes attached through consumer ISPs ("ASx" rows).
	Homes []HomeSpec
}

// HomeSpec is one home probe row of Table I.
type HomeSpec struct {
	Access access.Link
}

// TableI reproduces the paper's testbed inventory.
//
// Note on arithmetic: the text states "44 peers, including 37 PCs from 7
// different industrial/academic sites, and 7 home PCs". Reading UniTN's
// "6-7 high-bw NAT" rows as two of the site's NATted hosts (rather than two
// additional hosts) makes the rows sum to exactly 37 + 7 = 44, so that is
// the encoding used here: UniTN has 5 institutional hosts of which 2 sit
// behind the campus NAT.
func TableI() []SiteSpec {
	return []SiteSpec{
		{
			Name: "BME", Country: "HU", ASLabel: "AS1",
			HighBw: 4,
			Homes:  []HomeSpec{{Access: access.DSL6}},
		},
		{
			Name: "PoliTO", Country: "IT", ASLabel: "AS2",
			HighBw: 9,
			Homes: []HomeSpec{
				{Access: access.DSL4},
				{Access: withNAT(access.DSL8)},
				{Access: withNAT(access.DSL8)},
			},
		},
		{
			Name: "MT", Country: "HU", ASLabel: "AS3",
			HighBw: 4,
		},
		{
			Name: "FFT", Country: "FR", ASLabel: "AS5",
			HighBw: 3,
		},
		{
			Name: "ENST", Country: "FR", ASLabel: "AS4",
			HighBw: 4, HighBwFW: true,
			Homes: []HomeSpec{{Access: withNAT(access.DSL22)}},
		},
		{
			Name: "UniTN", Country: "IT", ASLabel: "AS2",
			HighBw: 5, HighBwNAT: 2,
			Homes: []HomeSpec{{Access: withNATFW(access.DSL25)}},
		},
		{
			Name: "WUT", Country: "PL", ASLabel: "AS6",
			HighBw: 8,
			Homes:  []HomeSpec{{Access: access.CATV6}},
		},
	}
}

func withNAT(l access.Link) access.Link {
	l.NAT = true
	return l
}

func withNATFW(l access.Link) access.Link {
	l.NAT = true
	l.Firewall = true
	return l
}

// Probe is one NAPA-WINE vantage point.
type Probe struct {
	Label  string // e.g. "PoliTO-3" or "PoliTO-home-1"
	Site   string
	ASName string // paper label: AS1..AS6 for sites, ASx for homes
	Host   topology.Host
	Link   access.Link
}

// HighBandwidth reports whether the probe is one of the institutional
// "high-bw" vantage points (the population Figure 2 is computed over).
func (p *Probe) HighBandwidth() bool { return p.Link.HighBandwidth() }

// probeCounts tallies the Table I inventory for validation.
func probeCounts(sites []SiteSpec) (institutional, homes int) {
	for _, s := range sites {
		institutional += s.HighBw
		homes += len(s.Homes)
	}
	return
}

// ErrTableI guards against accidental edits to the inventory.
var errTableI = fmt.Errorf("world: Table I inventory mismatch")

// ValidateTableI checks the structural facts the paper states: 7 sites,
// 4 countries, 6 distinct institutional ASes, 7 home probes.
func ValidateTableI(sites []SiteSpec) error {
	if len(sites) != 7 {
		return fmt.Errorf("%w: %d sites, want 7", errTableI, len(sites))
	}
	countries := map[topology.CC]bool{}
	ases := map[string]bool{}
	_, homes := probeCounts(sites)
	for _, s := range sites {
		countries[s.Country] = true
		ases[s.ASLabel] = true
	}
	if len(countries) != 4 {
		return fmt.Errorf("%w: %d countries, want 4", errTableI, len(countries))
	}
	if len(ases) != 6 {
		return fmt.Errorf("%w: %d institutional ASes, want 6", errTableI, len(ases))
	}
	if homes != 7 {
		return fmt.Errorf("%w: %d home probes, want 7", errTableI, homes)
	}
	return nil
}
