package world

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"napawine/internal/access"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// CountryShare gives one country's slice of the background population.
type CountryShare struct {
	CC        topology.CC
	Continent topology.Continent
	Share     float64 // relative weight, normalized internally
	ASes      int     // autonomous systems hosting this country's peers
}

// Spec parameterizes background-population synthesis.
type Spec struct {
	Seed  int64
	Peers int // background peers (excluding probes and source)

	// HighBwFraction is the share of background peers on institutional-
	// grade symmetric links; the rest get consumer DSL/CATV profiles.
	HighBwFraction float64

	// NATFraction/FWFraction apply to consumer-grade background peers.
	NATFraction float64
	FWFraction  float64

	// Mix is the country composition; nil selects DefaultMix (China-peak
	// CCTV-1 audience as in §II).
	Mix []CountryShare

	SubnetsPerAS int

	// ProbeASBackground places this many background peers inside each
	// institutional probe AS. Without them the non-NAPA-WINE same-AS
	// contributor sets (the P′/B′ AS rows of Table IV) would be
	// structurally empty.
	ProbeASBackground int

	// ExtraPeers synthesizes a deferred peer pool on top of the base
	// background: hosts drawn from the same country mix and link
	// distribution, materialized in World.Deferred but never started by the
	// experiment's default arrival schedule. Workload scenarios (flash
	// crowds, diurnal waves) activate them over time. The pool is generated
	// strictly after the base world, so for a given Seed the base
	// population is byte-identical whether ExtraPeers is 0 or not.
	ExtraPeers int
}

// DefaultMix is the China-dominant audience of a CCTV-1 broadcast at China
// peak hour, with the four probe countries present but small (§II, Fig. 1).
func DefaultMix() []CountryShare {
	return []CountryShare{
		{CC: "CN", Continent: topology.Asia, Share: 0.62, ASes: 14},
		{CC: "HU", Continent: topology.Europe, Share: 0.02, ASes: 3},
		{CC: "IT", Continent: topology.Europe, Share: 0.03, ASes: 3},
		{CC: "FR", Continent: topology.Europe, Share: 0.025, ASes: 3},
		{CC: "PL", Continent: topology.Europe, Share: 0.015, ASes: 3},
		{CC: "US", Continent: topology.NorthAmerica, Share: 0.08, ASes: 5},
		{CC: "JP", Continent: topology.Asia, Share: 0.06, ASes: 3},
		{CC: "KR", Continent: topology.Asia, Share: 0.05, ASes: 3},
		{CC: "DE", Continent: topology.Europe, Share: 0.04, ASes: 3},
		{CC: "UK", Continent: topology.Europe, Share: 0.03, ASes: 3},
		{CC: "ES", Continent: topology.Europe, Share: 0.02, ASes: 2},
	}
}

// Peer is one background swarm member.
type Peer struct {
	Host topology.Host
	Link access.Link
}

// World is a fully materialized experiment population.
type World struct {
	Topo       *topology.Topology
	Probes     []Probe
	Background []Peer
	// Deferred is the scenario-activated peer pool (Spec.ExtraPeers): built
	// like Background but left offline until a scenario schedules arrivals.
	Deferred []Peer
	// SourceHost/SourceLink describe the stream injection point (a
	// well-provisioned host in the channel's home country).
	SourceHost topology.Host
	SourceLink access.Link

	// probeAddrs indexes the NAPA-WINE set W for O(1) membership tests.
	probeAddrs map[netip.Addr]bool
	// ASNames maps paper labels (AS1..AS6) to synthesized AS numbers.
	ASNames map[string]topology.ASN
}

// IsProbe reports whether addr belongs to the NAPA-WINE probe set W.
func (w *World) IsProbe(addr netip.Addr) bool { return w.probeAddrs[addr] }

// ProbeAddrs returns the probe set as a map copy.
func (w *World) ProbeAddrs() map[netip.Addr]bool {
	out := make(map[netip.Addr]bool, len(w.probeAddrs))
	for k := range w.probeAddrs {
		out[k] = true
	}
	return out
}

// consumer access profiles sampled for background low-bw peers.
var consumerLinks = []access.Link{
	access.DSL4, access.DSL6, access.DSL8, access.DSL22, access.DSL25, access.CATV6,
}

// institutional profiles sampled for background high-bw peers.
var institutionalLinks = []access.Link{
	access.LAN100,
	{Kind: access.Institutional, Spec: units.Symmetric(20 * units.Mbps)},
	{Kind: access.Institutional, Spec: units.Symmetric(50 * units.Mbps)},
	{Kind: access.FTTH, Spec: units.MustAccessSpec("100/20")},
}

// defaultSubnetsPerAS sizes the background address space for the
// population. Placement samples a country bucket's subnets uniformly at
// random (with a handful of retries on a full /24), so each bucket needs
// roughly twice its expected load in capacity to absorb the multinomial
// skew. The floor of 3 keeps every world built before population-aware
// sizing byte-identical: at ≤ a few thousand peers no bucket needs more.
func defaultSubnetsPerAS(peers int, mix []CountryShare) int {
	const hostsPerSubnet = 253 // usable addresses in a /24
	need := 3
	totalShare := 0.0
	for _, m := range mix {
		totalShare += m.Share
	}
	if totalShare <= 0 {
		return need
	}
	for _, m := range mix {
		ases := m.ASes
		if ases <= 0 {
			ases = 1
		}
		load := 2 * float64(peers) * (m.Share / totalShare)
		n := int(math.Ceil(load / float64(ases*hostsPerSubnet)))
		if n > need {
			need = n
		}
	}
	return need
}

// Build materializes the testbed plus a background swarm per spec.
func Build(spec Spec) (*World, error) {
	if spec.Peers < 0 {
		return nil, fmt.Errorf("world: negative peer count %d", spec.Peers)
	}
	if spec.ExtraPeers < 0 {
		return nil, fmt.Errorf("world: negative extra peer count %d", spec.ExtraPeers)
	}
	if spec.HighBwFraction < 0 || spec.HighBwFraction > 1 {
		return nil, fmt.Errorf("world: HighBwFraction %v out of [0,1]", spec.HighBwFraction)
	}
	mix := spec.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	if spec.SubnetsPerAS <= 0 {
		spec.SubnetsPerAS = defaultSubnetsPerAS(spec.Peers+spec.ExtraPeers, mix)
	}
	sites := TableI()
	if err := ValidateTableI(sites); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	b := topology.NewBuilder(spec.Seed)

	// Countries: testbed countries first (their continents are fixed),
	// then the background mix.
	b.AddCountry("HU", topology.Europe)
	b.AddCountry("IT", topology.Europe)
	b.AddCountry("FR", topology.Europe)
	b.AddCountry("PL", topology.Europe)
	totalShare := 0.0
	for _, m := range mix {
		b.AddCountry(m.CC, m.Continent)
		totalShare += m.Share
	}
	if totalShare <= 0 {
		return nil, fmt.Errorf("world: country mix has no mass")
	}

	// Institutional ASes (AS1..AS6). PoliTO and UniTN share AS2.
	asNames := map[string]topology.ASN{}
	siteSubnet := map[string]topology.SubnetID{}
	for _, s := range sites {
		if _, ok := asNames[s.ASLabel]; !ok {
			asNames[s.ASLabel] = b.AddAS(s.Country)
		}
		siteSubnet[s.Name] = b.AddSubnet(asNames[s.ASLabel])
	}
	// One extra subnet per probe AS for same-AS background peers: they
	// share the AS but not the campus LAN. Iterate labels in a fixed
	// order — map order would randomize subnet allocation and break
	// same-seed reproducibility.
	probeASLabels := []string{"AS1", "AS2", "AS3", "AS4", "AS5", "AS6"}
	probeASExtra := map[string]topology.SubnetID{}
	for _, label := range probeASLabels {
		probeASExtra[label] = b.AddSubnet(asNames[label])
	}

	// Background country ASes and subnets.
	type bucket struct {
		share   float64
		subnets []topology.SubnetID
	}
	buckets := make([]bucket, len(mix))
	for i, m := range mix {
		ases := m.ASes
		if ases <= 0 {
			ases = 1
		}
		bk := bucket{share: m.Share / totalShare}
		for a := 0; a < ases; a++ {
			asn := b.AddAS(m.CC)
			for s := 0; s < spec.SubnetsPerAS; s++ {
				bk.subnets = append(bk.subnets, b.AddSubnet(asn))
			}
		}
		buckets[i] = bk
	}

	// Home-probe consumer ASes ("ASx"): one per home probe, each with its
	// own subnet, in the site's country.
	var homeSubnets []topology.SubnetID
	for _, s := range sites {
		for range s.Homes {
			asn := b.AddAS(s.Country)
			homeSubnets = append(homeSubnets, b.AddSubnet(asn))
		}
	}

	topo := b.Build()
	w := &World{
		Topo:       topo,
		probeAddrs: make(map[netip.Addr]bool),
		ASNames:    asNames,
	}

	// Materialize probes.
	homeIdx := 0
	for _, s := range sites {
		for i := 0; i < s.HighBw; i++ {
			link := access.LAN100
			if i < s.HighBwNAT {
				link.NAT = true
			}
			if s.HighBwFW {
				link.Firewall = true
			}
			h, err := topo.NewHost(siteSubnet[s.Name])
			if err != nil {
				return nil, err
			}
			w.Probes = append(w.Probes, Probe{
				Label:  fmt.Sprintf("%s-%d", s.Name, i+1),
				Site:   s.Name,
				ASName: s.ASLabel,
				Host:   h,
				Link:   link,
			})
			w.probeAddrs[h.Addr] = true
		}
		for j, home := range s.Homes {
			h, err := topo.NewHost(homeSubnets[homeIdx])
			if err != nil {
				return nil, err
			}
			w.Probes = append(w.Probes, Probe{
				Label:  fmt.Sprintf("%s-home-%d", s.Name, j+1),
				Site:   s.Name,
				ASName: "ASx",
				Host:   h,
				Link:   home.Access,
			})
			w.probeAddrs[h.Addr] = true
			homeIdx++
		}
	}

	// Background peers inside probe ASes.
	for _, label := range probeASLabels {
		for i := 0; i < spec.ProbeASBackground; i++ {
			h, err := topo.NewHost(probeASExtra[label])
			if err != nil {
				return nil, err
			}
			w.Background = append(w.Background, Peer{Host: h, Link: sampleLink(rng, spec)})
		}
	}

	// Background peers by country mix.
	pickBucket := func() bucket {
		x := rng.Float64()
		acc := 0.0
		for _, bk := range buckets {
			acc += bk.share
			if x < acc {
				return bk
			}
		}
		return buckets[len(buckets)-1]
	}
	placePeer := func(i int) (Peer, error) {
		bk := pickBucket()
		sn := bk.subnets[rng.Intn(len(bk.subnets))]
		h, err := topo.NewHost(sn)
		if err != nil {
			// Subnet full: retry a few times on other subnets.
			placed := false
			for attempt := 0; attempt < 8; attempt++ {
				sn = bk.subnets[rng.Intn(len(bk.subnets))]
				if h, err = topo.NewHost(sn); err == nil {
					placed = true
					break
				}
			}
			if !placed {
				return Peer{}, fmt.Errorf("world: cannot place background peer %d: %v", i, err)
			}
		}
		return Peer{Host: h, Link: sampleLink(rng, spec)}, nil
	}
	for i := 0; i < spec.Peers; i++ {
		p, err := placePeer(i)
		if err != nil {
			return nil, err
		}
		w.Background = append(w.Background, p)
	}

	// Source: well-provisioned host in the mix's first (dominant) country.
	srcBucket := buckets[0]
	srcHost, err := topo.NewHost(srcBucket.subnets[0])
	if err != nil {
		return nil, err
	}
	w.SourceHost = srcHost
	w.SourceLink = access.LAN1000

	// Deferred pool last: everything above must be byte-identical for a
	// given seed whether or not a scenario asked for extra peers.
	for i := 0; i < spec.ExtraPeers; i++ {
		p, err := placePeer(spec.Peers + i)
		if err != nil {
			return nil, err
		}
		w.Deferred = append(w.Deferred, p)
	}

	return w, nil
}

func sampleLink(rng *rand.Rand, spec Spec) access.Link {
	if rng.Float64() < spec.HighBwFraction {
		return institutionalLinks[rng.Intn(len(institutionalLinks))]
	}
	l := consumerLinks[rng.Intn(len(consumerLinks))]
	if rng.Float64() < spec.NATFraction {
		l.NAT = true
	}
	if rng.Float64() < spec.FWFraction {
		l.Firewall = true
	}
	return l
}
