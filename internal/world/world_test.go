package world

import (
	"testing"

	"napawine/internal/topology"
)

func smallSpec(seed int64, peers int) Spec {
	return Spec{
		Seed:              seed,
		Peers:             peers,
		HighBwFraction:    0.6,
		NATFraction:       0.2,
		FWFraction:        0.05,
		SubnetsPerAS:      2,
		ProbeASBackground: 3,
	}
}

func TestTableIStructure(t *testing.T) {
	sites := TableI()
	if err := ValidateTableI(sites); err != nil {
		t.Fatal(err)
	}
	inst, homes := probeCounts(sites)
	if inst != 37 || homes != 7 {
		t.Errorf("inventory = %d institutional + %d homes, want 37+7 (§II: 44 peers)", inst, homes)
	}
	// Spot-check rows against the paper.
	byName := map[string]SiteSpec{}
	for _, s := range sites {
		byName[s.Name] = s
	}
	if s := byName["PoliTO"]; s.HighBw != 9 || len(s.Homes) != 3 || s.Country != "IT" {
		t.Errorf("PoliTO row wrong: %+v", s)
	}
	if s := byName["ENST"]; !s.HighBwFW || s.Country != "FR" {
		t.Error("ENST must be firewalled, in FR")
	}
	if s := byName["UniTN"]; s.HighBwNAT != 2 || s.ASLabel != "AS2" {
		t.Error("UniTN must have 2 NATted high-bw hosts in AS2")
	}
	if byName["PoliTO"].ASLabel != byName["UniTN"].ASLabel {
		t.Error("PoliTO and UniTN share AS2 in the paper")
	}
	// Home accesses must match the Table I spec strings.
	if byName["ENST"].Homes[0].Access.Spec.String() != "22/1.8" {
		t.Error("ENST home must be 22/1.8")
	}
	if byName["WUT"].Homes[0].Access.Kind.String() != "CATV" {
		t.Error("WUT home must be CATV")
	}
}

func TestValidateTableIFailures(t *testing.T) {
	good := TableI()
	if err := ValidateTableI(good[:6]); err == nil {
		t.Error("6 sites should fail")
	}
	mutated := TableI()
	mutated[0].Homes = nil // drop a home probe
	if err := ValidateTableI(mutated); err == nil {
		t.Error("6 home probes should fail")
	}
	merged := TableI()
	merged[2].ASLabel = "AS1" // MT joins AS1 → only 5 ASes
	if err := ValidateTableI(merged); err == nil {
		t.Error("5 institutional ASes should fail")
	}
}

func TestBuildWorld(t *testing.T) {
	w, err := Build(smallSpec(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Probes) != 44 {
		t.Errorf("probes = %d, want 44 (§II)", len(w.Probes))
	}
	if len(w.Background) != 200+6*3 {
		t.Errorf("background = %d, want %d", len(w.Background), 200+18)
	}
	// Every probe address must resolve in the registry to its declared
	// location facts.
	for _, p := range w.Probes {
		got, ok := w.Topo.Locate(p.Host.Addr)
		if !ok {
			t.Fatalf("probe %s not locatable", p.Label)
		}
		if got != p.Host {
			t.Errorf("probe %s locate mismatch", p.Label)
		}
		if !w.IsProbe(p.Host.Addr) {
			t.Errorf("probe %s not in probe set", p.Label)
		}
	}
	// Background peers are never in the probe set.
	for _, bg := range w.Background {
		if w.IsProbe(bg.Host.Addr) {
			t.Error("background peer flagged as probe")
		}
	}
	// Source exists and is high-bandwidth, in the dominant country.
	if !w.SourceLink.HighBandwidth() {
		t.Error("source must be high-bw")
	}
	if w.SourceHost.Country != "CN" {
		t.Errorf("source country = %s, want CN", w.SourceHost.Country)
	}
}

func TestProbeASStructure(t *testing.T) {
	w, err := Build(smallSpec(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	// PoliTO and UniTN probes share an AS; other sites do not.
	asOf := map[string]topology.ASN{}
	for _, p := range w.Probes {
		if p.ASName != "ASx" {
			if prev, ok := asOf[p.Site]; ok && prev != p.Host.AS {
				t.Errorf("site %s spans two ASes", p.Site)
			}
			asOf[p.Site] = p.Host.AS
		}
	}
	if asOf["PoliTO"] != asOf["UniTN"] {
		t.Error("PoliTO and UniTN must share AS2")
	}
	if asOf["BME"] == asOf["MT"] {
		t.Error("BME (AS1) and MT (AS3) must be distinct ASes")
	}
	// Home probes sit in their own consumer ASes, not the site AS.
	for _, p := range w.Probes {
		if p.ASName == "ASx" {
			for site, asn := range asOf {
				if p.Host.AS == asn {
					t.Errorf("home probe %s landed in institutional AS of %s", p.Label, site)
				}
			}
		}
	}
}

func TestProbeASBackgroundPresent(t *testing.T) {
	w, err := Build(smallSpec(3, 50))
	if err != nil {
		t.Fatal(err)
	}
	// Each institutional AS must contain background (non-probe) peers in
	// a subnet different from the campus LANs.
	probeAS := map[topology.ASN]bool{}
	probeSubnets := map[topology.SubnetID]bool{}
	for _, p := range w.Probes {
		if p.ASName != "ASx" {
			probeAS[p.Host.AS] = true
			probeSubnets[p.Host.Subnet] = true
		}
	}
	counts := map[topology.ASN]int{}
	for _, bg := range w.Background {
		if probeAS[bg.Host.AS] {
			counts[bg.Host.AS]++
			if probeSubnets[bg.Host.Subnet] {
				t.Error("probe-AS background peer landed on a campus LAN subnet")
			}
		}
	}
	if len(counts) != 6 {
		t.Errorf("background present in %d probe ASes, want 6", len(counts))
	}
}

func TestCountryMixRoughlyHonored(t *testing.T) {
	w, err := Build(smallSpec(4, 2000))
	if err != nil {
		t.Fatal(err)
	}
	byCC := map[topology.CC]int{}
	for _, bg := range w.Background {
		byCC[bg.Host.Country]++
	}
	n := len(w.Background)
	cnFrac := float64(byCC["CN"]) / float64(n)
	if cnFrac < 0.5 || cnFrac > 0.75 {
		t.Errorf("CN fraction = %.2f, want ≈0.62", cnFrac)
	}
	for _, cc := range []topology.CC{"HU", "IT", "FR", "PL"} {
		if byCC[cc] == 0 {
			t.Errorf("no background peers in probe country %s", cc)
		}
	}
}

func TestHighBwFractionRoughlyHonored(t *testing.T) {
	spec := smallSpec(5, 2000)
	spec.HighBwFraction = 0.6
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	fast := 0
	for _, bg := range w.Background {
		if bg.Link.HighBandwidth() {
			fast++
		}
	}
	frac := float64(fast) / float64(len(w.Background))
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("high-bw fraction = %.2f, want ≈0.6", frac)
	}
}

func TestBuildDeterminism(t *testing.T) {
	w1, err := Build(smallSpec(7, 300))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(smallSpec(7, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Background) != len(w2.Background) {
		t.Fatal("background sizes differ")
	}
	for i := range w1.Background {
		if w1.Background[i].Host != w2.Background[i].Host ||
			w1.Background[i].Link != w2.Background[i].Link {
			t.Fatalf("background peer %d differs across identical builds", i)
		}
	}
	for i := range w1.Probes {
		if w1.Probes[i].Host != w2.Probes[i].Host {
			t.Fatalf("probe %d differs across identical builds", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{Seed: 1, Peers: -5}); err == nil {
		t.Error("negative peers should fail")
	}
	if _, err := Build(Spec{Seed: 1, HighBwFraction: 1.5}); err == nil {
		t.Error("bad fraction should fail")
	}
	if _, err := Build(Spec{Seed: 1, Mix: []CountryShare{{CC: "CN", Continent: topology.Asia, Share: 0}}}); err == nil {
		t.Error("massless mix should fail")
	}
}

func TestProbeAddrsIsCopy(t *testing.T) {
	w, err := Build(smallSpec(8, 10))
	if err != nil {
		t.Fatal(err)
	}
	m := w.ProbeAddrs()
	for k := range m {
		delete(m, k)
	}
	if len(w.ProbeAddrs()) == 0 {
		t.Error("ProbeAddrs returned internal storage")
	}
}

func BenchmarkBuildWorld2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(smallSpec(int64(i), 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeferredPoolLeavesBaseWorldIdentical(t *testing.T) {
	base, err := Build(smallSpec(9, 200))
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(9, 200)
	spec.ExtraPeers = 150
	grown, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Deferred) != 150 {
		t.Fatalf("deferred pool = %d peers, want 150", len(grown.Deferred))
	}
	if len(base.Deferred) != 0 {
		t.Fatalf("base world grew a deferred pool of %d", len(base.Deferred))
	}
	if len(base.Background) != len(grown.Background) {
		t.Fatal("background sizes differ once a deferred pool is requested")
	}
	for i := range base.Background {
		if base.Background[i] != grown.Background[i] {
			t.Fatalf("background peer %d differs once a deferred pool is requested", i)
		}
	}
	if base.SourceHost != grown.SourceHost {
		t.Error("source host moved once a deferred pool is requested")
	}
	// Deferred peers are real, located hosts drawn from the same mix.
	for i, p := range grown.Deferred {
		if _, ok := grown.Topo.Locate(p.Host.Addr); !ok {
			t.Fatalf("deferred peer %d has an unlocatable address", i)
		}
		if grown.IsProbe(p.Host.Addr) {
			t.Fatalf("deferred peer %d collides with the probe set", i)
		}
	}
}

func TestDeferredPoolValidation(t *testing.T) {
	spec := smallSpec(1, 10)
	spec.ExtraPeers = -1
	if _, err := Build(spec); err == nil {
		t.Error("negative extra peers should fail")
	}
}

// Population-aware address-space sizing: the default SubnetsPerAS must stay
// at the historical 3 for every small world (seed-stability) and grow with
// the population so large swarms can actually be placed.
func TestDefaultSubnetsPerASScaling(t *testing.T) {
	if got := defaultSubnetsPerAS(1000, DefaultMix()); got != 3 {
		t.Errorf("1k peers: SubnetsPerAS = %d, want 3 (historical default)", got)
	}
	big := defaultSubnetsPerAS(100_000, DefaultMix())
	// CN binds: 62% of 2×100k peers over 14 ASes of 253-host subnets.
	if big < 35 {
		t.Errorf("100k peers: SubnetsPerAS = %d, want ≥ 35", big)
	}
}

func TestBuildLargeSwarmPlaces(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 30k-peer world")
	}
	w, err := Build(Spec{Seed: 9, Peers: 30_000, HighBwFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Background) != 30_000 {
		t.Fatalf("placed %d background peers, want 30000", len(w.Background))
	}
}
