package experiment

import (
	"fmt"
	"sort"
	"time"

	"napawine/internal/overlay"
	"napawine/internal/report"
	"napawine/internal/sim"
	"napawine/internal/stats"
	"napawine/internal/topology"
)

// SeriesSample is one time-series bucket of a scenario run: the swarm's
// state at the bucket boundary plus the traffic the bucket accumulated.
// The per-bucket intra-AS share is the dynamic counterpart of Table IV's AS
// row — it shows locality bias responding to the scenario's events instead
// of averaged over the whole run.
type SeriesSample struct {
	// T is the bucket's end instant as an offset from the run start.
	T time.Duration
	// Online counts online non-source peers at T.
	Online int
	// Continuity is the mean playout continuity across those peers.
	Continuity float64
	// IntraASPct is the share of the bucket's video bytes that stayed
	// inside one AS; IntraASValid is false when the bucket moved no video.
	IntraASPct   float64
	IntraASValid bool
	// VideoKbps is the swarm-wide video throughput over the bucket.
	VideoKbps float64
	// TrackerUp reports whether the tracker was reachable at T.
	TrackerUp bool
	// PerAS breaks the bucket down by autonomous system for the run's
	// tracked ASes (the top Config.ASSeriesK by initial population),
	// ASN-ascending. Empty when per-AS sampling is disabled.
	PerAS []ASSample
}

// ASSample is one AS's slice of a series bucket: how many of its peers are
// online, how well they play, and how much of the video they received in
// the bucket came from inside the AS — the per-AS view of Table IV's
// locality row, resolved over time.
type ASSample struct {
	AS topology.ASN
	// Online counts the AS's online non-source peers at the bucket end.
	Online int
	// Continuity is the mean playout continuity across those peers; zero
	// when none are online.
	Continuity float64
	// IntraPct is the share of video bytes received by this AS's peers
	// during the bucket that originated inside the same AS; IntraValid is
	// false when the AS received no video this bucket.
	IntraPct   float64
	IntraValid bool
}

// DefaultASSeriesK is how many ASes a scenario run tracks when
// Config.ASSeriesK is zero. Small on purpose: per-AS series cost
// O(buckets·K) memory and the paper's topologies concentrate most peers in
// a handful of ASes.
const DefaultASSeriesK = 6

// seriesRecorder samples the swarm at fixed bucket boundaries on the
// engine's own clock, so the series is part of the deterministic event
// sequence: same seed and spec, same bytes, regardless of how many
// experiments run in parallel around this one. Memory is bounded by the
// bucket count, never the run length.
type seriesRecorder struct {
	samples    []SeriesSample
	prevIntra  int64
	prevTotal  int64
	bucketSecs float64
	// onSample, when non-nil, streams each bucket to the caller as it is
	// recorded (the Config.OnSample hook).
	onSample func(SeriesSample)

	// Per-AS tracking, bounded to the top-K ASes by population at recorder
	// creation. asTracked is ASN-ascending; asSlot maps an ASN to its index
	// in the parallel slices. All empty/nil when per-AS sampling is off.
	asTracked   []topology.ASN
	asSlot      map[topology.ASN]int
	prevASRx    []int64
	prevASIntra []int64
}

// recordSeries installs a periodic sampler for `buckets` buckets across the
// horizon and returns the recorder whose samples fill in as the run
// progresses. asK bounds per-AS tracking: 0 selects DefaultASSeriesK,
// negative disables it.
func recordSeries(eng *sim.Engine, net *overlay.Network, buckets int, horizon time.Duration, onSample func(SeriesSample), asK int) *seriesRecorder {
	every := horizon / time.Duration(buckets)
	if every <= 0 {
		every = horizon
		buckets = 1
	}
	r := &seriesRecorder{
		samples:    make([]SeriesSample, 0, buckets),
		bucketSecs: every.Seconds(),
		onSample:   onSample,
	}
	if asK == 0 {
		asK = DefaultASSeriesK
	}
	if asK > 0 {
		r.trackTopASes(net, asK)
	}
	eng.Every(every, every, 0, func() {
		if len(r.samples) >= buckets {
			return
		}
		r.sample(eng, net)
	})
	return r
}

// trackTopASes fixes the recorder's tracked-AS set: the k most-populated
// ASes among the swarm's current non-source peers (count descending, ASN
// ascending on ties), stored ASN-ascending. The set is chosen once so each
// AS's series stays continuous; peers that later join untracked ASes are
// still counted in the swarm-wide columns, just not broken out.
func (r *seriesRecorder) trackTopASes(net *overlay.Network, k int) {
	counts := make(map[topology.ASN]int)
	for _, nd := range net.Nodes() {
		if nd.IsSource() {
			continue
		}
		counts[nd.Host.AS]++
	}
	ases := make([]topology.ASN, 0, len(counts))
	for as := range counts {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool {
		if counts[ases[i]] != counts[ases[j]] {
			return counts[ases[i]] > counts[ases[j]]
		}
		return ases[i] < ases[j]
	})
	if len(ases) > k {
		ases = ases[:k]
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	r.asTracked = ases
	r.asSlot = make(map[topology.ASN]int, len(ases))
	for i, as := range ases {
		r.asSlot[as] = i
	}
	r.prevASRx = make([]int64, len(ases))
	r.prevASIntra = make([]int64, len(ases))
}

func (r *seriesRecorder) sample(eng *sim.Engine, net *overlay.Network) {
	online := 0
	var cont stats.Accumulator
	asOnline := make([]int, len(r.asTracked))
	asCont := make([]stats.Accumulator, len(r.asTracked))
	for _, nd := range net.Nodes() {
		if nd.IsSource() || !nd.Online() {
			continue
		}
		online++
		cont.Add(nd.Continuity())
		if slot, ok := r.asSlot[nd.Host.AS]; ok {
			asOnline[slot]++
			asCont[slot].Add(nd.Continuity())
		}
	}
	// A bucket boundary is a window barrier (the sampler runs on the
	// global engine), so the per-shard ledgers are quiescent and the view
	// — live ledger on one shard, merged snapshot otherwise — is exact.
	led := net.LedgerView()
	intra := led.VideoIntraAS - r.prevIntra
	total := led.VideoTotal - r.prevTotal
	r.prevIntra = led.VideoIntraAS
	r.prevTotal = led.VideoTotal
	s := SeriesSample{
		T:          time.Duration(eng.Now()),
		Online:     online,
		Continuity: cont.Mean(),
		VideoKbps:  float64(total) * 8 / 1000 / r.bucketSecs,
		TrackerUp:  !net.TrackerPaused(),
	}
	if total > 0 {
		s.IntraASPct = 100 * float64(intra) / float64(total)
		s.IntraASValid = true
	}
	if len(r.asTracked) > 0 {
		s.PerAS = make([]ASSample, len(r.asTracked))
		for i, as := range r.asTracked {
			rx := led.VideoRxByAS[as] - r.prevASRx[i]
			asIntra := led.VideoIntraByAS[as] - r.prevASIntra[i]
			r.prevASRx[i] = led.VideoRxByAS[as]
			r.prevASIntra[i] = led.VideoIntraByAS[as]
			a := ASSample{AS: as, Online: asOnline[i], Continuity: asCont[i].Mean()}
			if rx > 0 {
				a.IntraPct = 100 * float64(asIntra) / float64(rx)
				a.IntraValid = true
			}
			s.PerAS[i] = a
		}
	}
	r.samples = append(r.samples, s)
	if r.onSample != nil {
		r.onSample(s)
	}
}

// TrackerMark renders a series table's tracker column: the outage marker is
// what makes a tracker-outage window visible in an otherwise smooth table.
// Shared with the sweep renderer so single-run and aggregated series agree.
func TrackerMark(up bool) string {
	if up {
		return "up"
	}
	return "DOWN"
}

// SeriesTable renders the per-bucket time series of one or more runs that
// share a scenario and duration, bucket-major so each app's response to the
// same instant sits on adjacent rows. Returns nil when no run carried a
// series (no scenario), mirroring the sweep-side SeriesTable.
func SeriesTable(results []*Result) *report.Table {
	name := ""
	buckets := 0
	for _, r := range results {
		if r.Scenario != "" {
			name = r.Scenario
		}
		if len(r.Series) > buckets {
			buckets = len(r.Series)
		}
	}
	if buckets == 0 {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("Time series — scenario %q", name),
		"T", "App", "Online", "Continuity", "Intra-AS%", "Video kbps", "Tracker")
	for b := 0; b < buckets; b++ {
		for _, r := range results {
			if b >= len(r.Series) {
				continue
			}
			s := r.Series[b]
			t.Add(s.T.String(), r.App,
				fmt.Sprintf("%d", s.Online),
				fmt.Sprintf("%.3f", s.Continuity),
				report.PctOrDash(s.IntraASPct, s.IntraASValid),
				fmt.Sprintf("%.0f", s.VideoKbps),
				TrackerMark(s.TrackerUp))
		}
	}
	return t
}

// ASSeriesTable renders the per-AS breakdown of the same runs, bucket-major
// then ASN-ascending, so one bucket's ASes read as a block. Returns nil when
// no run carried per-AS samples (no scenario, or ASSeriesK < 0).
func ASSeriesTable(results []*Result) *report.Table {
	name := ""
	any := false
	for _, r := range results {
		if r.Scenario != "" {
			name = r.Scenario
		}
		for _, s := range r.Series {
			if len(s.PerAS) > 0 {
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("Per-AS time series — scenario %q", name),
		"T", "App", "AS", "Online", "Continuity", "Intra-AS%")
	buckets := 0
	for _, r := range results {
		if len(r.Series) > buckets {
			buckets = len(r.Series)
		}
	}
	for b := 0; b < buckets; b++ {
		for _, r := range results {
			if b >= len(r.Series) {
				continue
			}
			s := r.Series[b]
			for _, a := range s.PerAS {
				t.Add(s.T.String(), r.App,
					fmt.Sprintf("%d", a.AS),
					fmt.Sprintf("%d", a.Online),
					fmt.Sprintf("%.3f", a.Continuity),
					report.PctOrDash(a.IntraPct, a.IntraValid))
			}
		}
	}
	return t
}
