package experiment

import (
	"fmt"
	"time"

	"napawine/internal/overlay"
	"napawine/internal/report"
	"napawine/internal/sim"
	"napawine/internal/stats"
)

// SeriesSample is one time-series bucket of a scenario run: the swarm's
// state at the bucket boundary plus the traffic the bucket accumulated.
// The per-bucket intra-AS share is the dynamic counterpart of Table IV's AS
// row — it shows locality bias responding to the scenario's events instead
// of averaged over the whole run.
type SeriesSample struct {
	// T is the bucket's end instant as an offset from the run start.
	T time.Duration
	// Online counts online non-source peers at T.
	Online int
	// Continuity is the mean playout continuity across those peers.
	Continuity float64
	// IntraASPct is the share of the bucket's video bytes that stayed
	// inside one AS; IntraASValid is false when the bucket moved no video.
	IntraASPct   float64
	IntraASValid bool
	// VideoKbps is the swarm-wide video throughput over the bucket.
	VideoKbps float64
	// TrackerUp reports whether the tracker was reachable at T.
	TrackerUp bool
}

// seriesRecorder samples the swarm at fixed bucket boundaries on the
// engine's own clock, so the series is part of the deterministic event
// sequence: same seed and spec, same bytes, regardless of how many
// experiments run in parallel around this one. Memory is bounded by the
// bucket count, never the run length.
type seriesRecorder struct {
	samples    []SeriesSample
	prevIntra  int64
	prevTotal  int64
	bucketSecs float64
	// onSample, when non-nil, streams each bucket to the caller as it is
	// recorded (the Config.OnSample hook).
	onSample func(SeriesSample)
}

// recordSeries installs a periodic sampler for `buckets` buckets across the
// horizon and returns the recorder whose samples fill in as the run
// progresses.
func recordSeries(eng *sim.Engine, net *overlay.Network, buckets int, horizon time.Duration, onSample func(SeriesSample)) *seriesRecorder {
	every := horizon / time.Duration(buckets)
	if every <= 0 {
		every = horizon
		buckets = 1
	}
	r := &seriesRecorder{
		samples:    make([]SeriesSample, 0, buckets),
		bucketSecs: every.Seconds(),
		onSample:   onSample,
	}
	eng.Every(every, every, 0, func() {
		if len(r.samples) >= buckets {
			return
		}
		r.sample(eng, net)
	})
	return r
}

func (r *seriesRecorder) sample(eng *sim.Engine, net *overlay.Network) {
	online := 0
	var cont stats.Accumulator
	for _, nd := range net.Nodes() {
		if nd.IsSource() || !nd.Online() {
			continue
		}
		online++
		cont.Add(nd.Continuity())
	}
	intra := net.Ledger.VideoIntraAS - r.prevIntra
	total := net.Ledger.VideoTotal - r.prevTotal
	r.prevIntra = net.Ledger.VideoIntraAS
	r.prevTotal = net.Ledger.VideoTotal
	s := SeriesSample{
		T:          time.Duration(eng.Now()),
		Online:     online,
		Continuity: cont.Mean(),
		VideoKbps:  float64(total) * 8 / 1000 / r.bucketSecs,
		TrackerUp:  !net.TrackerPaused(),
	}
	if total > 0 {
		s.IntraASPct = 100 * float64(intra) / float64(total)
		s.IntraASValid = true
	}
	r.samples = append(r.samples, s)
	if r.onSample != nil {
		r.onSample(s)
	}
}

// TrackerMark renders a series table's tracker column: the outage marker is
// what makes a tracker-outage window visible in an otherwise smooth table.
// Shared with the sweep renderer so single-run and aggregated series agree.
func TrackerMark(up bool) string {
	if up {
		return "up"
	}
	return "DOWN"
}

// SeriesTable renders the per-bucket time series of one or more runs that
// share a scenario and duration, bucket-major so each app's response to the
// same instant sits on adjacent rows. Returns nil when no run carried a
// series (no scenario), mirroring the sweep-side SeriesTable.
func SeriesTable(results []*Result) *report.Table {
	name := ""
	buckets := 0
	for _, r := range results {
		if r.Scenario != "" {
			name = r.Scenario
		}
		if len(r.Series) > buckets {
			buckets = len(r.Series)
		}
	}
	if buckets == 0 {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("Time series — scenario %q", name),
		"T", "App", "Online", "Continuity", "Intra-AS%", "Video kbps", "Tracker")
	for b := 0; b < buckets; b++ {
		for _, r := range results {
			if b >= len(r.Series) {
				continue
			}
			s := r.Series[b]
			t.Add(s.T.String(), r.App,
				fmt.Sprintf("%d", s.Online),
				fmt.Sprintf("%.3f", s.Continuity),
				report.PctOrDash(s.IntraASPct, s.IntraASValid),
				fmt.Sprintf("%.0f", s.VideoKbps),
				TrackerMark(s.TrackerUp))
		}
	}
	return t
}
