package experiment

import (
	"napawine/internal/core"
	"napawine/internal/stats"
)

// Summary is the bounded-memory reduction of one Result: every number a
// replicated sweep needs to rebuild Tables II–IV, and nothing else. A full
// Result retains one Observation per probe×peer pair plus the ground-truth
// ledger — tens of megabytes per run — so a battery of apps × seeds reduces
// each run to a Summary the moment it completes and lets the Result go.
type Summary struct {
	App  string
	Seed int64

	// Scenario names the workload timeline this run executed ("" = none);
	// Series carries its per-bucket time series. Bounded by construction:
	// the sampler never records more than scenario.MaxBuckets buckets per
	// run, so a sweep's summaries stay a few KB each no matter the run
	// length.
	Scenario string
	Series   []SeriesSample

	// Table II inputs: mean and max across this run's probes.
	RxKbpsMean, RxKbpsMax       float64
	TxKbpsMean, TxKbpsMax       float64
	AllPeersMean, AllPeersMax   float64
	ContribRxMean, ContribRxMax float64
	ContribTxMean, ContribTxMax float64

	// Table III inputs.
	SelfBiasContrib core.SelfBias
	SelfBiasAll     core.SelfBias

	// Table IV inputs, one cell per paper property in classifier order.
	TableIV []SummaryCell

	// Run health, reported by the sweep summary table.
	HopMedian      float64
	MeanContinuity float64
	Events         uint64
	Unlocated      int

	// Study comparison metrics: the source's video upload rate and its
	// share of all video bytes moved (VideoBytes > 0 makes the share
	// measurable), and the mean chunk diffusion delay in seconds across
	// DiffusionChunks first-time deliveries (> 0 makes it measurable).
	SourceKbps      float64
	SourceSharePct  float64
	VideoBytes      int64
	DiffusionDelayS float64
	DiffusionChunks int64

	// Congestion totals, all zero when the run had no queue bound. LossPct
	// is drops over offered load (served + dropped), the per-run loss rate
	// the awareness ablation compares strategies on.
	Drops        int64
	Retransmits  int64
	Backoffs     int64
	ChunksServed int64
	LossPct      float64
}

// SummaryCell flattens one Table IV (property, app) cell group into the
// eight printed columns with their validity flags, in the paper's order:
// B'D, P'D, BD, PD, B'U, P'U, BU, PU.
type SummaryCell struct {
	Property string
	Vals     [8]float64
	Valid    [8]bool
}

// TableIVColumns names the eight Table IV columns in SummaryCell order.
var TableIVColumns = [8]string{"B'D%", "P'D%", "BD%", "PD%", "B'U%", "P'U%", "BU%", "PU%"}

// Summarize reduces a Result to its Summary. It is the only part of a
// Result a sweep retains per run.
func Summarize(r *Result) Summary {
	s := Summary{
		App:             r.App,
		Seed:            r.Cfg.Seed,
		Scenario:        r.Scenario,
		Series:          r.Series,
		HopMedian:       r.HopMedianMeasured,
		MeanContinuity:  r.MeanContinuity,
		Events:          r.Events,
		Unlocated:       r.Unlocated,
		SourceKbps:      r.SourceKbps,
		SourceSharePct:  r.SourceSharePct,
		VideoBytes:      r.VideoBytes,
		DiffusionDelayS: r.MeanDiffusionDelay.Seconds(),
		DiffusionChunks: r.DiffusionChunks,
		Drops:           r.Drops,
		Retransmits:     r.Retransmits,
		Backoffs:        r.Backoffs,
		ChunksServed:    r.ChunksServed,
	}
	if offered := r.ChunksServed + r.Drops; offered > 0 {
		s.LossPct = 100 * float64(r.Drops) / float64(offered)
	}

	rx, tx, all, crx, ctx := r.probeAccums()
	s.RxKbpsMean, s.RxKbpsMax = rx.Mean(), rx.Max()
	s.TxKbpsMean, s.TxKbpsMax = tx.Mean(), tx.Max()
	s.AllPeersMean, s.AllPeersMax = all.Mean(), all.Max()
	s.ContribRxMean, s.ContribRxMax = crx.Mean(), crx.Max()
	s.ContribTxMean, s.ContribTxMax = ctx.Mean(), ctx.Max()

	s.SelfBiasContrib = core.ComputeSelfBias(r.Observations, r.Cfg.Contrib, true)
	s.SelfBiasAll = core.ComputeSelfBias(r.Observations, r.Cfg.Contrib, false)
	s.TableIV = flattenTableIV(r)
	return s
}

// probeAccums folds the per-probe statistics into one accumulator per
// Table II column family. TableII (single-run) and Summarize (sweep) both
// read these, so the two modes can never drift.
func (r *Result) probeAccums() (rx, tx, all, crx, ctx stats.Accumulator) {
	for _, p := range r.PerProbe {
		rx.Add(p.RxKbps)
		tx.Add(p.TxKbps)
		all.Add(float64(p.AllPeers))
		crx.Add(float64(p.ContribRx))
		ctx.Add(float64(p.ContribTx))
	}
	return
}

// flattenTableIV reduces one result's Table IV metrics to the eight printed
// columns with their validity flags. It is the single source of the
// column-order and dash conventions for both the single-run renderer and
// the sweep aggregation.
func flattenTableIV(r *Result) []SummaryCell {
	cells := make([]SummaryCell, 0, 5)
	for _, cell := range ComputeTableIV(r) {
		sc := SummaryCell{Property: cell.Property}
		netPrime := cell.Property == "NET"
		metrics := [8]core.Metrics{
			cell.BDPrime, cell.PDPrime, cell.BD, cell.PD,
			cell.BUPrime, cell.PUPrime, cell.BU, cell.PU,
		}
		// Even columns print byte-wise bias, odd columns peer-wise, matching
		// TableIVColumns. Primed columns (0, 1, 4, 5) inherit the NET dash
		// convention: the primed partition is structurally undefined for
		// NET (the only same-subnet peers are probes, so P\W contains no
		// preferred member by construction), and the paper prints dashes
		// rather than 0.0.
		for i, m := range metrics {
			if i%2 == 0 {
				sc.Vals[i] = m.BytePct
			} else {
				sc.Vals[i] = m.PeerPct
			}
			prime := i == 0 || i == 1 || i == 4 || i == 5
			sc.Valid[i] = m.Valid() && !(netPrime && prime)
		}
		cells = append(cells, sc)
	}
	return cells
}
