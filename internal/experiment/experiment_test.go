package experiment

import (
	"strings"
	"testing"
	"time"

	"napawine/internal/core"
	"napawine/internal/scenario"
)

// smallConfig shrinks a default config to test scale.
func smallConfig(app string, seed int64) Config {
	cfg := Default(app)
	cfg.Seed = seed
	cfg.Duration = 3 * time.Minute
	cfg.World.Seed = seed
	cfg.World.Peers = 160
	cfg.World.ProbeASBackground = 4
	return cfg
}

// runSmall caches one run per app for the whole test file (runs are the
// expensive part; assertions are cheap).
var cache = map[string]*Result{}

func runSmall(t *testing.T, app string) *Result {
	t.Helper()
	if r, ok := cache[app]; ok {
		return r
	}
	r, err := Run(smallConfig(app, 11))
	if err != nil {
		t.Fatal(err)
	}
	cache[app] = r
	return r
}

func TestRunProducesHealthySwarm(t *testing.T) {
	r := runSmall(t, "SopCast")
	if r.MeanContinuity < 0.75 {
		t.Errorf("mean continuity = %.2f, want ≥ 0.75 (swarm must sustain the stream)", r.MeanContinuity)
	}
	if len(r.PerProbe) != 44 {
		t.Errorf("probes = %d, want 44", len(r.PerProbe))
	}
	if len(r.Observations) == 0 {
		t.Fatal("no observations at all")
	}
	if r.Unlocated != 0 {
		t.Errorf("unlocated peers = %d, want 0 in synthetic world", r.Unlocated)
	}
	if r.Events == 0 {
		t.Error("no events processed")
	}
}

func TestProbesReceiveStream(t *testing.T) {
	r := runSmall(t, "SopCast")
	// Non-firewalled probes should pull roughly the stream rate; firewalled
	// ones (ENST) can still download since they initiate connections.
	healthy := 0
	for _, p := range r.PerProbe {
		if p.RxKbps > 250 {
			healthy++
		}
	}
	if healthy < len(r.PerProbe)*3/4 {
		t.Errorf("only %d/%d probes pull ≥250 kbps", healthy, len(r.PerProbe))
	}
}

func TestBWRowShape(t *testing.T) {
	r := runSmall(t, "SopCast")
	cells := ComputeTableIV(r)
	var bw TableIVCell
	for _, c := range cells {
		if c.Property == "BW" {
			bw = c
		}
	}
	// Download side: strong high-bandwidth preference (paper: P′ 83–86,
	// B′ 96–98). Bands widened for the scaled world.
	if !bw.BDPrime.Valid() {
		t.Fatal("BW download metrics empty")
	}
	if bw.PDPrime.PeerPct < 60 {
		t.Errorf("P'D(BW) = %.1f, want strong preference (>60)", bw.PDPrime.PeerPct)
	}
	if bw.BDPrime.BytePct < 80 {
		t.Errorf("B'D(BW) = %.1f, want very strong preference (>80)", bw.BDPrime.BytePct)
	}
	if bw.BDPrime.BytePct <= bw.PDPrime.PeerPct {
		t.Errorf("B'D(BW)=%.1f should exceed P'D(BW)=%.1f (fast peers carry more each)",
			bw.BDPrime.BytePct, bw.PDPrime.PeerPct)
	}
	// Upload side: unmeasurable, like the dashes in the paper.
	if bw.BUPrime.Valid() {
		t.Error("BW upload should be unmeasurable from passive traces")
	}
}

func TestHopMedianInPaperRegime(t *testing.T) {
	r := runSmall(t, "SopCast")
	if r.HopMedianMeasured < 10 || r.HopMedianMeasured > 28 {
		t.Errorf("hop median = %.0f, want within [10,28] (paper: 18-20)", r.HopMedianMeasured)
	}
}

func TestSelfBiasPresent(t *testing.T) {
	// TVAnts is the paper's strongest self-bias case (Table III: 56% of
	// bytes from 30% of peers): its AS-biased discovery steers probes
	// toward the probe-dense institutional ASes.
	r := runSmall(t, "TVAnts")
	contrib := core.ComputeSelfBias(r.Observations, r.Cfg.Contrib, true)
	if contrib.PeerPct <= 0 {
		t.Fatal("no probe-to-probe contributions at all")
	}
	if contrib.BytePct <= contrib.PeerPct {
		t.Errorf("TVAnts self-bias bytes (%.1f) should exceed peers (%.1f)",
			contrib.BytePct, contrib.PeerPct)
	}
	// SopCast, with no locality knob, must sit near neutral: probes in a
	// world where high-bandwidth access is common are not special.
	sc := runSmall(t, "SopCast")
	scBias := core.ComputeSelfBias(sc.Observations, sc.Cfg.Contrib, true)
	if scBias.BytePct < 0.6*scBias.PeerPct {
		t.Errorf("SopCast self-bias bytes (%.1f) collapsed far below peers (%.1f)",
			scBias.BytePct, scBias.PeerPct)
	}
}

func TestTableRendering(t *testing.T) {
	r := runSmall(t, "SopCast")
	results := []*Result{r}

	var b strings.Builder
	if err := TableII(results).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SopCast") {
		t.Error("Table II missing app row")
	}

	b.Reset()
	if err := TableIII(results).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "self-induced") {
		t.Error("Table III title missing")
	}

	b.Reset()
	if err := TableIV(results).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, prop := range []string{"BW", "AS", "CC", "NET", "HOP"} {
		if !strings.Contains(out, prop) {
			t.Errorf("Table IV missing %s row", prop)
		}
	}
	// The BW upload cells must be dashes.
	bwLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BW") {
			bwLine = line
		}
	}
	if !strings.Contains(bwLine, "-") {
		t.Errorf("BW row should contain dashed upload cells: %q", bwLine)
	}

	b.Reset()
	if err := RenderFigure1(&b, results); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"CN", "HU", "IT", "FR", "PL", "*"} {
		if !strings.Contains(b.String(), label) {
			t.Errorf("Figure 1 missing %s", label)
		}
	}

	b.Reset()
	if err := RenderFigure2(&b, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "AS1") || !strings.Contains(b.String(), "R=") {
		t.Error("Figure 2 missing matrix or ratio")
	}
}

func TestFigure1Normalized(t *testing.T) {
	r := runSmall(t, "SopCast")
	g := ComputeFigure1(r)
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	for name, series := range map[string][]float64{"peers": g.Peers, "rx": g.RX, "tx": g.TX} {
		if s := sum(series); s < 99.9 || s > 100.1 {
			t.Errorf("%s shares sum to %.2f, want 100", name, s)
		}
	}
	// CN must be the largest named country group (the channel is
	// Chinese). At this shrunken test scale the probes and their
	// same-AS neighbours dilute CN's absolute share, so dominance over
	// the probe countries is the scale-independent assertion.
	for i, label := range g.Labels[1:5] {
		if g.Peers[0] <= g.Peers[i+1] {
			t.Errorf("CN peer share %.1f not above %s share %.1f", g.Peers[0], label, g.Peers[i+1])
		}
	}
	if g.Peers[0] < 25 {
		t.Errorf("CN peer share = %.1f, want ≥ 25", g.Peers[0])
	}
}

func TestFigure2PairAccounting(t *testing.T) {
	r := runSmall(t, "SopCast")
	f := ComputeFigure2(r)
	// Pair accounting is fixed by Table I. Institutional high-bw probes:
	// AS1=4, AS2=14 (PoliTO 9 + UniTN 5), AS3=4, AS4=4, AS5=3, AS6=8.
	// Off-diagonal directed pairs: 37² − Σn² = 1369 − 317 = 1052.
	// Diagonal pairs survive only across subnets, i.e. PoliTO↔UniTN
	// inside AS2: 9·5·2 = 90. Total 1142.
	if f.Pairs != 1142 {
		t.Errorf("directed pairs = %d, want 1142", f.Pairs)
	}
	if !f.ROk {
		t.Error("R should be computable for SopCast run")
	}
}

func TestSortResults(t *testing.T) {
	rs := []*Result{{App: "TVAnts"}, {App: "PPLive"}, {App: "SopCast"}}
	SortResults(rs)
	if rs[0].App != "PPLive" || rs[1].App != "SopCast" || rs[2].App != "TVAnts" {
		t.Errorf("order = %s,%s,%s", rs[0].App, rs[1].App, rs[2].App)
	}
}

func TestUnknownAppFails(t *testing.T) {
	if _, err := Run(Config{App: "Zattoo", Seed: 1, Duration: time.Second}); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestDefaultsScaleWithApp(t *testing.T) {
	pp, sc, tv := Default("PPLive"), Default("SopCast"), Default("TVAnts")
	if !(pp.World.Peers > sc.World.Peers && sc.World.Peers > tv.World.Peers) {
		t.Error("world sizes must follow PPLive > SopCast > TVAnts")
	}
}

// TestSourceLoadMetrics: the study comparison metrics must be populated on
// every run — the source uploads, its share is measurable, and chunks
// record diffusion delays.
func TestSourceLoadMetrics(t *testing.T) {
	r := runSmall(t, "SopCast")
	if r.SourceKbps <= 0 {
		t.Errorf("SourceKbps = %v, want > 0", r.SourceKbps)
	}
	if r.VideoBytes <= 0 || r.SourceSharePct <= 0 || r.SourceSharePct > 100 {
		t.Errorf("source share = %v%% of %d bytes", r.SourceSharePct, r.VideoBytes)
	}
	if r.DiffusionChunks <= 0 || r.MeanDiffusionDelay <= 0 {
		t.Errorf("diffusion: %d chunks, mean %v", r.DiffusionChunks, r.MeanDiffusionDelay)
	}
	s := Summarize(r)
	if s.SourceKbps != r.SourceKbps || s.DiffusionDelayS != r.MeanDiffusionDelay.Seconds() {
		t.Error("summary diverges from result on study metrics")
	}
}

// TestSourceLoadSurvivesFailover is the attribution regression guard:
// source load is accounted at send time against whichever node is the
// origin, so after a source-failover handoff the promoted backup's
// injection still counts. Under the old VideoTx[original-source] readout
// the post-handoff share collapsed toward the pre-failover fraction only.
func TestSourceLoadSurvivesFailover(t *testing.T) {
	scn, err := scenario.ByName("failover")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig("TVAnts", 11)
	cfg.World.Peers = 120
	cfg.Scenario = scn
	fo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := smallConfig("TVAnts", 11)
	base.World.Peers = 120
	steady, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if fo.SourceKbps <= 0 {
		t.Fatalf("failover run reports no source load at all")
	}
	// The failover blacks the feed out for 5%% of the run, so some drop is
	// expected — but with send-time attribution the share stays the same
	// order of magnitude as the steady run, not the pre-40%% stub.
	if fo.SourceSharePct < steady.SourceSharePct*0.5 {
		t.Errorf("failover source share %.1f%% collapsed vs steady %.1f%%: post-handoff injection not attributed",
			fo.SourceSharePct, steady.SourceSharePct)
	}
}
