package experiment

import (
	"fmt"
	"io"
	"sort"

	"napawine/internal/core"
	"napawine/internal/report"
	"napawine/internal/stats"
	"napawine/internal/topology"
)

// TableII builds the experiment-summary table (paper Table II): mean and
// maximum, across probes, of stream rates, peer population and contributor
// counts.
func TableII(results []*Result) *report.Table {
	t := report.NewTable(
		"TABLE II — Summary of experiments (mean / max across probes)",
		"App", "RX kbps mean", "RX kbps max", "TX kbps mean", "TX kbps max",
		"All peers mean", "All peers max", "Contrib RX mean", "Contrib RX max",
		"Contrib TX mean", "Contrib TX max")
	for _, r := range results {
		rx, tx, all, crx, ctx := r.probeAccums()
		t.Add(r.App,
			fmt.Sprintf("%.0f", rx.Mean()), fmt.Sprintf("%.0f", rx.Max()),
			fmt.Sprintf("%.0f", tx.Mean()), fmt.Sprintf("%.0f", tx.Max()),
			fmt.Sprintf("%.0f", all.Mean()), fmt.Sprintf("%.0f", all.Max()),
			fmt.Sprintf("%.0f", crx.Mean()), fmt.Sprintf("%.0f", crx.Max()),
			fmt.Sprintf("%.0f", ctx.Mean()), fmt.Sprintf("%.0f", ctx.Max()))
	}
	return t
}

// TableIII builds the NAPA-WINE self-induced-bias table (paper Table III).
func TableIII(results []*Result) *report.Table {
	t := report.NewTable(
		"TABLE III — NAPA-WINE self-induced bias",
		"App", "Contrib Peer%", "Contrib Bytes%", "All Peer%", "All Bytes%")
	for _, r := range results {
		contrib := core.ComputeSelfBias(r.Observations, r.Cfg.Contrib, true)
		all := core.ComputeSelfBias(r.Observations, r.Cfg.Contrib, false)
		t.Add(r.App,
			report.Pct(contrib.PeerPct), report.Pct(contrib.BytePct),
			report.Pct(all.PeerPct), report.Pct(all.BytePct))
	}
	return t
}

// TableIVCell carries the four download and four upload indices for one
// (property, application) pair, in the paper's column order.
type TableIVCell struct {
	Property string
	App      string
	// Download: primed then full-contributor variants.
	BDPrime, PDPrime, BD, PD core.Metrics
	// Upload.
	BUPrime, PUPrime, BU, PU core.Metrics
}

// ComputeTableIV evaluates all five properties for one result.
//
// Following §III-C, the BW metric is evaluated on the download side only:
// access bandwidth of a remote peer can be inferred solely from packet
// trains it sends, so the paper "limitedly consider[s] the downlink
// direction for the BW metric" and prints dashes on the upload side. The
// emulated swarm would sometimes make the upload side measurable (partners
// exchange video both ways), but the methodology is reproduced as
// published.
func ComputeTableIV(r *Result) []TableIVCell {
	cells := make([]TableIVCell, 0, 5)
	for _, c := range core.PaperClassifiers() {
		cell := TableIVCell{Property: c.Name(), App: r.App}
		cell.BDPrime = core.Compute(r.Observations, core.Download, c, r.Cfg.Contrib, true)
		cell.PDPrime = cell.BDPrime
		cell.BD = core.Compute(r.Observations, core.Download, c, r.Cfg.Contrib, false)
		cell.PD = cell.BD
		if c.Name() == "BW" {
			// Upload cells stay zero-valued (Valid() == false → dash).
			cell.BUPrime = core.Metrics{Property: "BW", Direction: core.Upload, ExcludeProbes: true}
			cell.PUPrime = cell.BUPrime
			cell.BU = core.Metrics{Property: "BW", Direction: core.Upload}
			cell.PU = cell.BU
		} else {
			cell.BUPrime = core.Compute(r.Observations, core.Upload, c, r.Cfg.Contrib, true)
			cell.PUPrime = cell.BUPrime
			cell.BU = core.Compute(r.Observations, core.Upload, c, r.Cfg.Contrib, false)
			cell.PU = cell.BU
		}
		cells = append(cells, cell)
	}
	return cells
}

// TableIV renders the network-awareness table (paper Table IV) for a set
// of per-application results. Column order and dash conventions come from
// flattenTableIV, shared with the sweep aggregation.
func TableIV(results []*Result) *report.Table {
	t := report.NewTable(
		"TABLE IV — Network awareness as peer-wise and byte-wise bias",
		append([]string{"Net", "App"}, TableIVColumns[:]...)...)
	flat := make([][]SummaryCell, len(results))
	for i, r := range results {
		flat[i] = flattenTableIV(r)
	}
	for _, prop := range []string{"BW", "AS", "CC", "NET", "HOP"} {
		for i, r := range results {
			for _, cell := range flat[i] {
				if cell.Property != prop {
					continue
				}
				row := make([]string, 0, 10)
				row = append(row, prop, r.App)
				for col := 0; col < 8; col++ {
					row = append(row, report.PctOrDash(cell.Vals[col], cell.Valid[col]))
				}
				t.Add(row...)
			}
		}
	}
	return t
}

// GeoBreakdown is one application's Figure-1 dataset: percentage of peers,
// received bytes and transmitted bytes per country group.
type GeoBreakdown struct {
	App    string
	Labels []string // CN, HU, IT, FR, PL, *
	Peers  []float64
	RX     []float64
	TX     []float64
}

// figure1Countries are the named groups of Figure 1; everything else
// aggregates under "*".
var figure1Countries = []topology.CC{"CN", "HU", "IT", "FR", "PL"}

// ComputeFigure1 reduces a result to its geographic breakdown.
func ComputeFigure1(r *Result) GeoBreakdown {
	idx := map[topology.CC]int{}
	labels := make([]string, 0, len(figure1Countries)+1)
	for i, cc := range figure1Countries {
		idx[cc] = i
		labels = append(labels, string(cc))
	}
	star := len(figure1Countries)
	labels = append(labels, "*")

	peers := make([]float64, star+1)
	rx := make([]float64, star+1)
	tx := make([]float64, star+1)
	var totalPeers, totalRx, totalTx float64
	for _, o := range r.Observations {
		h, ok := r.World.Topo.Locate(o.Peer)
		bucket := star
		if ok {
			if i, named := idx[h.Country]; named {
				bucket = i
			}
		}
		peers[bucket]++
		rx[bucket] += float64(o.TotalDown)
		tx[bucket] += float64(o.TotalUp)
		totalPeers++
		totalRx += float64(o.TotalDown)
		totalTx += float64(o.TotalUp)
	}
	for i := range peers {
		peers[i] = stats.Percent(peers[i], totalPeers)
		rx[i] = stats.Percent(rx[i], totalRx)
		tx[i] = stats.Percent(tx[i], totalTx)
	}
	return GeoBreakdown{App: r.App, Labels: labels, Peers: peers, RX: rx, TX: tx}
}

// RenderFigure1 writes the Figure-1 bars for a set of results.
func RenderFigure1(w io.Writer, results []*Result) error {
	for _, r := range results {
		g := ComputeFigure1(r)
		sections := []struct {
			name   string
			series []float64
		}{
			{"# peers", g.Peers}, {"RX bytes", g.RX}, {"TX bytes", g.TX},
		}
		for _, s := range sections {
			bars := report.NewBars(fmt.Sprintf("Figure 1 — %s — %s (%%)", g.App, s.name))
			for i, label := range g.Labels {
				bars.Add(label, s.series[i], "")
			}
			if err := bars.Render(w, 50); err != nil {
				return err
			}
		}
	}
	return nil
}

// ASTraffic is one application's Figure-2 dataset: the AS-to-AS matrix of
// average exchanged bytes between high-bandwidth probes plus the
// intra/inter ratio R.
type ASTraffic struct {
	App    string
	Labels []string // AS1..AS6
	// Mean bytes transferred per directed probe pair from AS-i to AS-j.
	Mean [][]float64
	// R is mean intra-AS pair traffic over mean inter-AS pair traffic.
	R     float64
	ROk   bool
	Pairs int
}

// ComputeFigure2 reduces a result to the Figure-2 statistic. Traffic is
// taken from the upload side of each probe's observations about other
// high-bandwidth probes, so every directed pair is counted exactly once;
// pairs that never exchanged a packet count as zero, like the white cells
// of the paper's plot.
//
// Same-subnet probe pairs are excluded from both the sums and the pair
// counts, following §IV-B: "excluding the traffic exchanged among peers in
// the same SubNet" — otherwise the campus LANs dominate every diagonal
// cell and R measures subnet locality, not AS locality. The surviving
// intra-AS population is the PoliTO↔UniTN cross-campus traffic inside AS2.
func ComputeFigure2(r *Result) ASTraffic {
	labels := []string{"AS1", "AS2", "AS3", "AS4", "AS5", "AS6"}
	li := map[string]int{}
	for i, l := range labels {
		li[l] = i
	}
	// High-bandwidth institutional probes, bucketed per AS and subnet.
	type probeInfo struct {
		as     int
		subnet topology.SubnetID
	}
	infos := map[string]probeInfo{} // by label
	perAS := map[int][]probeInfo{}
	for _, p := range r.World.Probes {
		if p.HighBandwidth() && p.ASName != "ASx" {
			pi := probeInfo{as: li[p.ASName], subnet: p.Host.Subnet}
			infos[p.Label] = pi
			perAS[pi.as] = append(perAS[pi.as], pi)
		}
	}
	// Pair counts excluding same-subnet pairs.
	pairCount := make([][]int, len(labels))
	for i := range pairCount {
		pairCount[i] = make([]int, len(labels))
	}
	for i := range labels {
		for j := range labels {
			for _, a := range perAS[i] {
				for _, b := range perAS[j] {
					if a == b && i == j {
						continue
					}
					if i == j && a.subnet == b.subnet {
						continue
					}
					pairCount[i][j]++
				}
			}
		}
	}
	// Diagonal self-pair correction: the loop above cannot distinguish
	// two distinct probes with identical (as, subnet) from a self-pair,
	// but those are same-subnet and excluded anyway, so only the distinct
	// subnet combinations remain — already correct.

	sum := make([][]float64, len(labels))
	for i := range sum {
		sum[i] = make([]float64, len(labels))
	}
	for _, o := range r.Observations {
		if !o.PeerIsProbe || o.SameSubnet {
			continue
		}
		probe, ok := r.ProbeOf(o.Probe)
		if !ok || !probe.HighBandwidth() || probe.ASName == "ASx" {
			continue
		}
		peer, ok := r.ProbeOf(o.Peer)
		if !ok || !peer.HighBandwidth() || peer.ASName == "ASx" {
			continue
		}
		sum[li[probe.ASName]][li[peer.ASName]] += float64(o.VideoUp)
	}
	mean := make([][]float64, len(labels))
	var intraSum, interSum float64
	var intraPairs, interPairs int
	for i := range labels {
		mean[i] = make([]float64, len(labels))
		for j := range labels {
			pairs := pairCount[i][j]
			if pairs > 0 {
				mean[i][j] = sum[i][j] / float64(pairs)
			}
			if i == j {
				intraSum += sum[i][j]
				intraPairs += pairs
			} else {
				interSum += sum[i][j]
				interPairs += pairs
			}
		}
	}
	out := ASTraffic{App: r.App, Labels: labels, Mean: mean, Pairs: intraPairs + interPairs}
	if interPairs > 0 && interSum > 0 && intraPairs > 0 {
		out.R = (intraSum / float64(intraPairs)) / (interSum / float64(interPairs))
		out.ROk = true
	}
	return out
}

// RenderFigure2 writes the Figure-2 matrices (values in KB per pair).
func RenderFigure2(w io.Writer, results []*Result) error {
	for _, r := range results {
		f := ComputeFigure2(r)
		title := fmt.Sprintf("Figure 2 — %s — mean KB exchanged per high-bw probe pair (R=%s)",
			f.App, ratioString(f))
		err := report.Matrix(w, title, f.Labels, func(i, j int) string {
			return fmt.Sprintf("%.0f", f.Mean[i][j]/1000)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func ratioString(f ASTraffic) string {
	if !f.ROk {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", f.R)
}

// SortResults orders results in the paper's application order.
func SortResults(results []*Result) {
	rank := map[string]int{"PPLive": 0, "SopCast": 1, "TVAnts": 2}
	sort.SliceStable(results, func(i, j int) bool {
		return rank[results[i].App] < rank[results[j].App]
	})
}
