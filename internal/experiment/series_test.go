package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"napawine/internal/scenario"
)

// scenarioConfig is a fast scenario run: a small swarm over a short
// horizon, enough for the crowd to arrive and the sampler to fill buckets.
func scenarioConfig(name string, seed int64) Config {
	cfg := Default("TVAnts")
	cfg.Seed = seed
	cfg.World.Seed = seed
	cfg.World.Peers = 60
	cfg.World.ProbeASBackground = 2
	cfg.Duration = 60 * time.Second
	spec, err := scenario.ByName(name)
	if err != nil {
		panic(err)
	}
	cfg.Scenario = spec
	return cfg
}

func TestScenarioRunProducesSeries(t *testing.T) {
	r, err := Run(scenarioConfig("flashcrowd", 5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "flashcrowd" {
		t.Errorf("Scenario = %q, want flashcrowd", r.Scenario)
	}
	if len(r.Series) != scenario.DefaultBuckets {
		t.Fatalf("series has %d buckets, want %d", len(r.Series), scenario.DefaultBuckets)
	}
	// The flash crowd arrives in [25%, 35%] of the run: the online
	// population after the burst must exceed the population before it.
	pre, post := r.Series[2], r.Series[len(r.Series)-4]
	if post.Online <= pre.Online {
		t.Errorf("flash crowd invisible in series: online %d at %v vs %d at %v",
			pre.Online, pre.T, post.Online, post.T)
	}
	for i, s := range r.Series {
		if s.T <= 0 || s.T > r.Duration {
			t.Errorf("bucket %d at %v outside the run", i, s.T)
		}
		if s.Continuity < 0 || s.Continuity > 1 {
			t.Errorf("bucket %d continuity %v outside [0,1]", i, s.Continuity)
		}
		if s.IntraASValid && (s.IntraASPct < 0 || s.IntraASPct > 100) {
			t.Errorf("bucket %d intra-AS %v%% outside [0,100]", i, s.IntraASPct)
		}
	}
	// Summaries carry the series for sweeps, bounded by the bucket cap.
	sum := Summarize(r)
	if sum.Scenario != "flashcrowd" || len(sum.Series) != len(r.Series) {
		t.Errorf("summary lost the series: scenario %q, %d buckets", sum.Scenario, len(sum.Series))
	}
	if len(sum.Series) > scenario.MaxBuckets {
		t.Errorf("summary series exceeds the memory bound: %d buckets", len(sum.Series))
	}
}

func TestRunWithoutScenarioHasNoSeries(t *testing.T) {
	r := runSmall(t, "TVAnts")
	if r.Scenario != "" || len(r.Series) != 0 {
		t.Errorf("plain run grew a series: scenario %q, %d buckets", r.Scenario, len(r.Series))
	}
}

func TestScenarioSeriesDeterministic(t *testing.T) {
	render := func() string {
		r, err := Run(scenarioConfig("outage", 9))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := SeriesTable([]*Result{r}).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same scenario+seed produced different series tables:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	// The outage window [35%, 60%] must be visible as DOWN tracker marks.
	if !strings.Contains(a, "DOWN") {
		t.Errorf("outage scenario series never shows the tracker down:\n%s", a)
	}
	if !strings.Contains(a, "up") {
		t.Errorf("outage scenario series never shows the tracker up:\n%s", a)
	}
}

func TestSeriesTableShape(t *testing.T) {
	r, err := Run(scenarioConfig("steady", 3))
	if err != nil {
		t.Fatal(err)
	}
	tab := SeriesTable([]*Result{r})
	if len(tab.Rows) != len(r.Series) {
		t.Errorf("table has %d rows for %d buckets", len(tab.Rows), len(r.Series))
	}
	if !strings.Contains(tab.Title, "steady") {
		t.Errorf("table title %q does not name the scenario", tab.Title)
	}
}

func TestSeriesTableNilWithoutScenario(t *testing.T) {
	r := runSmall(t, "TVAnts")
	if tab := SeriesTable([]*Result{r}); tab != nil {
		t.Errorf("scenario-less results produced a series table: %q", tab.Title)
	}
}

// TestRunLeavesCallerSpecUnmodified is the spec-aliasing regression guard:
// Run clones the caller's scenario spec before validating or compiling it,
// so the original must come back bit-for-bit identical even when the run
// derives state (ExtraPeers, buckets) from it.
func TestRunLeavesCallerSpecUnmodified(t *testing.T) {
	cfg := scenarioConfig("flashcrowd", 6)
	want := cfg.Scenario.Clone()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Scenario, want) {
		t.Errorf("Run mutated the caller's scenario spec:\n before %+v\n after  %+v", want, cfg.Scenario)
	}
}

// TestScenarioRunFailover: the failover scenario runs end-to-end through
// the experiment layer and the promoted source keeps the stream alive.
func TestScenarioRunFailover(t *testing.T) {
	r, err := Run(scenarioConfig("failover", 8))
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanContinuity <= 0.3 {
		t.Errorf("post-failover continuity %.3f: the promoted source did not carry the stream", r.MeanContinuity)
	}
	if len(r.Series) == 0 {
		t.Error("failover run produced no series")
	}
}

// TestScenarioRunZapping: the zapping scenario dips the online population
// inside its window and refills it afterwards.
func TestScenarioRunZapping(t *testing.T) {
	r, err := Run(scenarioConfig("zapping", 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != scenario.DefaultBuckets {
		t.Fatalf("series has %d buckets, want %d", len(r.Series), scenario.DefaultBuckets)
	}
	// Zap window [50%, 60%]: bucket 6 (ends at 55%) sits inside the dip;
	// the final bucket must have recovered above it.
	dip, end := r.Series[6], r.Series[len(r.Series)-1]
	if end.Online <= dip.Online {
		t.Errorf("zapping dip did not recover: online %d at %v vs %d at %v",
			dip.Online, dip.T, end.Online, end.T)
	}
}
