package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"napawine/internal/scenario"
)

// scenarioConfig is a fast scenario run: a small swarm over a short
// horizon, enough for the crowd to arrive and the sampler to fill buckets.
func scenarioConfig(name string, seed int64) Config {
	cfg := Default("TVAnts")
	cfg.Seed = seed
	cfg.World.Seed = seed
	cfg.World.Peers = 60
	cfg.World.ProbeASBackground = 2
	cfg.Duration = 60 * time.Second
	spec, err := scenario.ByName(name)
	if err != nil {
		panic(err)
	}
	cfg.Scenario = spec
	return cfg
}

func TestScenarioRunProducesSeries(t *testing.T) {
	r, err := Run(scenarioConfig("flashcrowd", 5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "flashcrowd" {
		t.Errorf("Scenario = %q, want flashcrowd", r.Scenario)
	}
	if len(r.Series) != scenario.DefaultBuckets {
		t.Fatalf("series has %d buckets, want %d", len(r.Series), scenario.DefaultBuckets)
	}
	// The flash crowd arrives in [25%, 35%] of the run: the online
	// population after the burst must exceed the population before it.
	pre, post := r.Series[2], r.Series[len(r.Series)-4]
	if post.Online <= pre.Online {
		t.Errorf("flash crowd invisible in series: online %d at %v vs %d at %v",
			pre.Online, pre.T, post.Online, post.T)
	}
	for i, s := range r.Series {
		if s.T <= 0 || s.T > r.Duration {
			t.Errorf("bucket %d at %v outside the run", i, s.T)
		}
		if s.Continuity < 0 || s.Continuity > 1 {
			t.Errorf("bucket %d continuity %v outside [0,1]", i, s.Continuity)
		}
		if s.IntraASValid && (s.IntraASPct < 0 || s.IntraASPct > 100) {
			t.Errorf("bucket %d intra-AS %v%% outside [0,100]", i, s.IntraASPct)
		}
	}
	// Summaries carry the series for sweeps, bounded by the bucket cap.
	sum := Summarize(r)
	if sum.Scenario != "flashcrowd" || len(sum.Series) != len(r.Series) {
		t.Errorf("summary lost the series: scenario %q, %d buckets", sum.Scenario, len(sum.Series))
	}
	if len(sum.Series) > scenario.MaxBuckets {
		t.Errorf("summary series exceeds the memory bound: %d buckets", len(sum.Series))
	}
}

func TestRunWithoutScenarioHasNoSeries(t *testing.T) {
	r := runSmall(t, "TVAnts")
	if r.Scenario != "" || len(r.Series) != 0 {
		t.Errorf("plain run grew a series: scenario %q, %d buckets", r.Scenario, len(r.Series))
	}
}

func TestScenarioSeriesDeterministic(t *testing.T) {
	render := func() string {
		r, err := Run(scenarioConfig("outage", 9))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := SeriesTable([]*Result{r}).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("same scenario+seed produced different series tables:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	// The outage window [35%, 60%] must be visible as DOWN tracker marks.
	if !strings.Contains(a, "DOWN") {
		t.Errorf("outage scenario series never shows the tracker down:\n%s", a)
	}
	if !strings.Contains(a, "up") {
		t.Errorf("outage scenario series never shows the tracker up:\n%s", a)
	}
}

func TestSeriesTableShape(t *testing.T) {
	r, err := Run(scenarioConfig("steady", 3))
	if err != nil {
		t.Fatal(err)
	}
	tab := SeriesTable([]*Result{r})
	if len(tab.Rows) != len(r.Series) {
		t.Errorf("table has %d rows for %d buckets", len(tab.Rows), len(r.Series))
	}
	if !strings.Contains(tab.Title, "steady") {
		t.Errorf("table title %q does not name the scenario", tab.Title)
	}
}

func TestSeriesTableNilWithoutScenario(t *testing.T) {
	r := runSmall(t, "TVAnts")
	if tab := SeriesTable([]*Result{r}); tab != nil {
		t.Errorf("scenario-less results produced a series table: %q", tab.Title)
	}
}

// TestRunLeavesCallerSpecUnmodified is the spec-aliasing regression guard:
// Run clones the caller's scenario spec before validating or compiling it,
// so the original must come back bit-for-bit identical even when the run
// derives state (ExtraPeers, buckets) from it.
func TestRunLeavesCallerSpecUnmodified(t *testing.T) {
	cfg := scenarioConfig("flashcrowd", 6)
	want := cfg.Scenario.Clone()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Scenario, want) {
		t.Errorf("Run mutated the caller's scenario spec:\n before %+v\n after  %+v", want, cfg.Scenario)
	}
}

// TestScenarioRunFailover: the failover scenario runs end-to-end through
// the experiment layer and the promoted source keeps the stream alive.
func TestScenarioRunFailover(t *testing.T) {
	r, err := Run(scenarioConfig("failover", 8))
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanContinuity <= 0.3 {
		t.Errorf("post-failover continuity %.3f: the promoted source did not carry the stream", r.MeanContinuity)
	}
	if len(r.Series) == 0 {
		t.Error("failover run produced no series")
	}
}

// TestScenarioSeriesPerAS pins the per-AS breakdown contract: every bucket
// carries at most ASSeriesK tracked ASes, ASN-ascending and identical
// across buckets; per-AS online counts partition within the swarm total;
// and the shares stay in range.
func TestScenarioSeriesPerAS(t *testing.T) {
	r, err := Run(scenarioConfig("flashcrowd", 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Fatal("no series")
	}
	first := r.Series[0].PerAS
	if len(first) == 0 || len(first) > DefaultASSeriesK {
		t.Fatalf("bucket 0 tracks %d ASes, want 1..%d", len(first), DefaultASSeriesK)
	}
	for b, s := range r.Series {
		if len(s.PerAS) != len(first) {
			t.Fatalf("bucket %d tracks %d ASes, bucket 0 tracked %d", b, len(s.PerAS), len(first))
		}
		asOnline := 0
		for i, a := range s.PerAS {
			if a.AS != first[i].AS {
				t.Errorf("bucket %d slot %d is AS %d, bucket 0 had AS %d — tracked set drifted", b, i, a.AS, first[i].AS)
			}
			if i > 0 && a.AS <= s.PerAS[i-1].AS {
				t.Errorf("bucket %d per-AS not ASN-ascending: %d after %d", b, a.AS, s.PerAS[i-1].AS)
			}
			if a.Online < 0 || a.Online > s.Online {
				t.Errorf("bucket %d AS %d online %d outside [0,%d]", b, a.AS, a.Online, s.Online)
			}
			if a.Continuity < 0 || a.Continuity > 1 {
				t.Errorf("bucket %d AS %d continuity %v outside [0,1]", b, a.AS, a.Continuity)
			}
			if a.IntraValid && (a.IntraPct < 0 || a.IntraPct > 100) {
				t.Errorf("bucket %d AS %d intra %v%% outside [0,100]", b, a.AS, a.IntraPct)
			}
			asOnline += a.Online
		}
		if asOnline > s.Online {
			t.Errorf("bucket %d tracked-AS online sum %d exceeds swarm online %d", b, asOnline, s.Online)
		}
	}
	tab := ASSeriesTable([]*Result{r})
	if tab == nil {
		t.Fatal("ASSeriesTable returned nil for a run with per-AS samples")
	}
	if want := len(r.Series) * len(first); len(tab.Rows) != want {
		t.Errorf("per-AS table has %d rows, want %d", len(tab.Rows), want)
	}
	if !strings.Contains(tab.Title, "flashcrowd") {
		t.Errorf("per-AS table title %q does not name the scenario", tab.Title)
	}
}

// TestScenarioSeriesPerASKnobs: ASSeriesK bounds and disables the
// breakdown, and the accounting survives LeanLedger (the maps it rides are
// O(ASes), kept in both ledger modes).
func TestScenarioSeriesPerASKnobs(t *testing.T) {
	cfg := scenarioConfig("steady", 3)
	cfg.ASSeriesK = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b, s := range r.Series {
		if len(s.PerAS) != 1 {
			t.Fatalf("bucket %d tracks %d ASes with ASSeriesK=1", b, len(s.PerAS))
		}
	}

	cfg = scenarioConfig("steady", 3)
	cfg.ASSeriesK = -1
	r, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b, s := range r.Series {
		if len(s.PerAS) != 0 {
			t.Fatalf("bucket %d carries per-AS samples with ASSeriesK=-1", b)
		}
	}
	if tab := ASSeriesTable([]*Result{r}); tab != nil {
		t.Errorf("disabled per-AS sampling still produced a table: %q", tab.Title)
	}

	lean := scenarioConfig("steady", 3)
	lean.LeanLedger = true
	lr, err := Run(lean)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(scenarioConfig("steady", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Series) != len(full.Series) {
		t.Fatalf("lean run has %d buckets, full %d", len(lr.Series), len(full.Series))
	}
	for b := range full.Series {
		if !reflect.DeepEqual(full.Series[b].PerAS, lr.Series[b].PerAS) {
			t.Errorf("bucket %d per-AS diverged under LeanLedger:\n full %+v\n lean %+v",
				b, full.Series[b].PerAS, lr.Series[b].PerAS)
		}
	}
}

// TestScenarioRunZapping: the zapping scenario dips the online population
// inside its window and refills it afterwards.
func TestScenarioRunZapping(t *testing.T) {
	r, err := Run(scenarioConfig("zapping", 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != scenario.DefaultBuckets {
		t.Fatalf("series has %d buckets, want %d", len(r.Series), scenario.DefaultBuckets)
	}
	// Zap window [50%, 60%]: bucket 6 (ends at 55%) sits inside the dip;
	// the final bucket must have recovered above it.
	dip, end := r.Series[6], r.Series[len(r.Series)-1]
	if end.Online <= dip.Online {
		t.Errorf("zapping dip did not recover: online %d at %v vs %d at %v",
			dip.Online, dip.T, end.Online, end.T)
	}
}
