package experiment

import (
	"testing"
	"time"

	"napawine/internal/access"
)

// congestedConfig is a deliberately tight swarm: short run, bounded uplink
// queues one chunk deep, so tail-drop loss is guaranteed to fire.
func congestedConfig(seed int64, strategy string) Config {
	cfg := Default("TVAnts")
	cfg.Seed = seed
	cfg.Duration = 90 * time.Second
	cfg.World.Seed = seed
	cfg.World.Peers = 120
	cfg.World.ProbeASBackground = 4
	cfg.Strategy = strategy
	cfg.Congestion = access.CongestionModel{QueueDepth: 1, LossMode: access.LossTailDrop}
	return cfg
}

func TestDefaultRunHasNoCongestion(t *testing.T) {
	r := runSmall(t, "SopCast")
	if r.Drops != 0 || r.Retransmits != 0 || r.Backoffs != 0 {
		t.Errorf("congestion counters nonzero with congestion off: drops %d, retx %d, backoffs %d",
			r.Drops, r.Retransmits, r.Backoffs)
	}
	if r.ChunksServed == 0 {
		t.Error("no chunks served at all")
	}
}

func TestBoundedQueueDropsAndRecovers(t *testing.T) {
	r, err := Run(congestedConfig(7, "hybrid:u=0.4,r=1,a=1"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Drops == 0 {
		t.Fatal("queue depth 1 produced no drops — congestion model not wired")
	}
	if r.Retransmits == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
	if r.Backoffs == 0 {
		t.Error("drops occurred but no partner was backed off")
	}
	s := Summarize(r)
	if s.LossPct <= 0 || s.LossPct >= 100 {
		t.Errorf("loss = %.2f%%, want strictly inside (0,100)", s.LossPct)
	}
	// Retransmission must keep the stream alive despite forced loss.
	if r.MeanContinuity < 0.5 {
		t.Errorf("mean continuity = %.2f under loss, want ≥ 0.5", r.MeanContinuity)
	}
}

func TestCongestedRunDeterministic(t *testing.T) {
	a, err := Run(congestedConfig(3, "hybrid:u=0.4,r=1,a=1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(congestedConfig(3, "hybrid:u=0.4,r=1,a=1"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Drops != b.Drops || a.Retransmits != b.Retransmits || a.Backoffs != b.Backoffs {
		t.Errorf("congestion counters differ across identical runs: (%d,%d,%d) vs (%d,%d,%d)",
			a.Drops, a.Retransmits, a.Backoffs, b.Drops, b.Retransmits, b.Backoffs)
	}
	if a.Events != b.Events || a.MeanContinuity != b.MeanContinuity {
		t.Errorf("run diverged: events %d vs %d, continuity %v vs %v",
			a.Events, b.Events, a.MeanContinuity, b.MeanContinuity)
	}
}

func TestInvalidCongestionModelRejected(t *testing.T) {
	cfg := Default("TVAnts")
	cfg.Duration = time.Second
	cfg.Congestion = access.CongestionModel{QueueDepth: -1}
	if _, err := Run(cfg); err == nil {
		t.Error("negative queue depth accepted")
	}
	cfg.Congestion = access.CongestionModel{LossMode: access.LossTailDrop}
	if _, err := Run(cfg); err == nil {
		t.Error("loss mode without queue depth accepted")
	}
}
