package experiment

import (
	"fmt"
	"math"

	"napawine/internal/plot"
)

// seriesMetric is one plottable column of the scenario time series; invalid
// buckets map to NaN so the renderer breaks the line instead of plotting a
// fake zero.
type seriesMetric struct {
	name   string // artifact stem and chart title fragment
	ylabel string
	get    func(SeriesSample) float64
}

var seriesMetrics = []seriesMetric{
	{"online", "online peers",
		func(s SeriesSample) float64 { return float64(s.Online) }},
	{"continuity", "continuity",
		func(s SeriesSample) float64 { return s.Continuity }},
	{"intra-as", "intra-AS %", func(s SeriesSample) float64 {
		if !s.IntraASValid {
			return math.NaN()
		}
		return s.IntraASPct
	}},
	{"video-kbps", "video kbps",
		func(s SeriesSample) float64 { return s.VideoKbps }},
}

// SeriesPlots renders the scenario time series of results as SVG line
// charts: one chart per swarm-wide metric with one series per application,
// plus per-AS breakdowns (online, continuity, intra-AS share; one series
// per tracked AS) for every result that sampled them. Nil when no result
// carried a series — mirroring SeriesTable.
func SeriesPlots(results []*Result) []plot.Artifact {
	scenario := ""
	carried := false
	for _, r := range results {
		if r.Scenario != "" {
			scenario = r.Scenario
		}
		if len(r.Series) > 0 {
			carried = true
		}
	}
	if !carried {
		return nil
	}

	var arts []plot.Artifact
	for _, m := range seriesMetrics {
		l := &plot.Line{
			Title:  fmt.Sprintf("%s — scenario %q", m.ylabel, scenario),
			XLabel: "virtual time", YLabel: m.ylabel, XTime: true,
		}
		for _, r := range results {
			if len(r.Series) == 0 {
				continue
			}
			s := plot.Series{Name: r.App,
				X: make([]float64, len(r.Series)), Y: make([]float64, len(r.Series))}
			for i, smp := range r.Series {
				s.X[i] = smp.T.Seconds()
				s.Y[i] = m.get(smp)
			}
			l.Series = append(l.Series, s)
		}
		arts = append(arts, plot.Artifact{Name: "series-" + m.name, Chart: l})
	}

	for _, r := range results {
		arts = append(arts, perASPlots(r, scenario)...)
	}
	return arts
}

// asMetric is one plottable column of the per-AS breakdown.
type asMetric struct {
	name   string
	ylabel string
	get    func(ASSample) float64
}

var asMetrics = []asMetric{
	{"online", "online peers",
		func(a ASSample) float64 { return float64(a.Online) }},
	{"continuity", "continuity",
		func(a ASSample) float64 { return a.Continuity }},
	{"intra-as", "intra-AS %", func(a ASSample) float64 {
		if !a.IntraValid {
			return math.NaN()
		}
		return a.IntraPct
	}},
}

// perASPlots renders one result's per-AS series: one chart per metric, one
// series per tracked AS. Empty when the run sampled no per-AS breakdown.
func perASPlots(r *Result, scenario string) []plot.Artifact {
	if len(r.Series) == 0 || len(r.Series[0].PerAS) == 0 {
		return nil
	}
	ases := r.Series[0].PerAS
	var arts []plot.Artifact
	for _, m := range asMetrics {
		l := &plot.Line{
			Title:  fmt.Sprintf("per-AS %s — %s, scenario %q", m.ylabel, r.App, scenario),
			XLabel: "virtual time", YLabel: m.ylabel, XTime: true,
		}
		for slot, a := range ases {
			s := plot.Series{Name: fmt.Sprintf("AS %d", a.AS),
				X: make([]float64, len(r.Series)), Y: make([]float64, len(r.Series))}
			for i, smp := range r.Series {
				s.X[i] = smp.T.Seconds()
				if slot < len(smp.PerAS) {
					s.Y[i] = m.get(smp.PerAS[slot])
				} else {
					s.Y[i] = math.NaN()
				}
			}
			l.Series = append(l.Series, s)
		}
		arts = append(arts, plot.Artifact{
			Name:  fmt.Sprintf("per-as-%s-%s", m.name, plot.Slug(r.App)),
			Chart: l,
		})
	}
	return arts
}

// Figure1Plots renders each result's Figure-1 geographic breakdown as one
// grouped SVG bar chart: countries on the x axis, the peer/RX/TX shares as
// the three series — the graphical twin of RenderFigure1's ASCII bars.
func Figure1Plots(results []*Result) []plot.Artifact {
	var arts []plot.Artifact
	for _, r := range results {
		g := ComputeFigure1(r)
		b := &plot.Bar{
			Title:  fmt.Sprintf("Figure 1 — %s — geographic breakdown (%%)", g.App),
			YLabel: "%", Groups: g.Labels,
			Series: []plot.BarSeries{
				{Name: "# peers", Vals: g.Peers},
				{Name: "RX bytes", Vals: g.RX},
				{Name: "TX bytes", Vals: g.TX},
			},
		}
		arts = append(arts, plot.Artifact{Name: "fig1-" + plot.Slug(g.App), Chart: b})
	}
	return arts
}
