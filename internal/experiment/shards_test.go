package experiment

import (
	"math"
	"testing"
	"time"

	"napawine/internal/scenario"
	"napawine/internal/topology"
	"napawine/internal/world"
)

// mustScenario resolves a registered scenario or fails the test.
func mustScenario(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// shardCfg is the shared workload for the sharded-run tests: small enough
// to run in seconds, long enough for churn, gossip, and steady-state video
// exchange to all happen.
func shardCfg(shards int) Config {
	cfg := Default("TVAnts")
	cfg.Duration = 2 * time.Minute
	cfg.Shards = shards
	return cfg
}

// ledgerInvariants asserts the accounting identities that must hold exactly
// for any shard count: they are conservation laws of the protocol, not
// statistics. chunkSize is the calendar's fixed chunk size.
func ledgerInvariants(t *testing.T, res *Result) {
	t.Helper()
	led := res.Ledger
	const chunkSize = 48_000 // 48 × units.KB, the calendar's chunk size
	if led.VideoTotal != led.ChunksServedTotal*chunkSize {
		t.Errorf("VideoTotal = %d, want ChunksServedTotal×chunk = %d",
			led.VideoTotal, led.ChunksServedTotal*chunkSize)
	}
	var rxByAS, intraByAS int64
	for _, v := range led.VideoRxByAS {
		rxByAS += v
	}
	for _, v := range led.VideoIntraByAS {
		intraByAS += v
	}
	if rxByAS != led.VideoTotal {
		t.Errorf("sum(VideoRxByAS) = %d, want VideoTotal %d", rxByAS, led.VideoTotal)
	}
	if intraByAS != led.VideoIntraAS {
		t.Errorf("sum(VideoIntraByAS) = %d, want VideoIntraAS %d", intraByAS, led.VideoIntraAS)
	}
	if led.VideoIntraAS > led.VideoTotal {
		t.Errorf("VideoIntraAS %d exceeds VideoTotal %d", led.VideoIntraAS, led.VideoTotal)
	}
	var rx, tx int64
	for _, v := range led.VideoRx {
		rx += v
	}
	for _, v := range led.VideoTx {
		tx += v
	}
	if rx != led.VideoTotal || tx != led.VideoTotal {
		t.Errorf("per-peer video sums rx=%d tx=%d, want VideoTotal %d", rx, tx, led.VideoTotal)
	}
	if led.SourceVideoTx > led.VideoTotal {
		t.Errorf("SourceVideoTx %d exceeds VideoTotal %d", led.SourceVideoTx, led.VideoTotal)
	}
}

// TestShardedDifferential is the shards=1 vs shards=N agreement test: the
// conservation identities hold exactly on both engines, and the swarm-level
// figures agree within loose statistical bands — a sharded run draws
// different RNG streams, so it is a different sample of the same swarm, the
// way a different seed's run is.
func TestShardedDifferential(t *testing.T) {
	serial, err := Run(shardCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	ledgerInvariants(t, serial)
	for _, n := range []int{2, 4} {
		res, err := Run(shardCfg(n))
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		ledgerInvariants(t, res)
		rel := math.Abs(float64(res.Ledger.VideoTotal)-float64(serial.Ledger.VideoTotal)) /
			float64(serial.Ledger.VideoTotal)
		if rel > 0.15 {
			t.Errorf("shards=%d: VideoTotal %d vs serial %d (%.0f%% apart, want ≤15%%)",
				n, res.Ledger.VideoTotal, serial.Ledger.VideoTotal, 100*rel)
		}
		if math.Abs(res.MeanContinuity-serial.MeanContinuity) > 0.05 {
			t.Errorf("shards=%d: continuity %.4f vs serial %.4f",
				n, res.MeanContinuity, serial.MeanContinuity)
		}
		if math.Abs(res.SourceSharePct-serial.SourceSharePct) > 3 {
			t.Errorf("shards=%d: source share %.2f%% vs serial %.2f%%",
				n, res.SourceSharePct, serial.SourceSharePct)
		}
	}
}

// TestShardedDeterministicAcrossRuns pins the shards=N determinism
// contract: the same (seed, shards) pair replays the identical simulation,
// goroutine scheduling notwithstanding.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(shardCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shardCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Errorf("Events differ: %d vs %d", a.Events, b.Events)
	}
	if a.Ledger.VideoTotal != b.Ledger.VideoTotal {
		t.Errorf("VideoTotal differs: %d vs %d", a.Ledger.VideoTotal, b.Ledger.VideoTotal)
	}
	if a.Ledger.SignalTotal != b.Ledger.SignalTotal {
		t.Errorf("SignalTotal differs: %d vs %d", a.Ledger.SignalTotal, b.Ledger.SignalTotal)
	}
	if a.Ledger.VideoIntraAS != b.Ledger.VideoIntraAS {
		t.Errorf("VideoIntraAS differs: %d vs %d", a.Ledger.VideoIntraAS, b.Ledger.VideoIntraAS)
	}
	if a.MeanContinuity != b.MeanContinuity {
		t.Errorf("MeanContinuity differs: %v vs %v", a.MeanContinuity, b.MeanContinuity)
	}
	if a.MeanDiffusionDelay != b.MeanDiffusionDelay {
		t.Errorf("MeanDiffusionDelay differs: %v vs %v", a.MeanDiffusionDelay, b.MeanDiffusionDelay)
	}
	if len(a.Observations) != len(b.Observations) {
		t.Errorf("observation counts differ: %d vs %d", len(a.Observations), len(b.Observations))
	}
}

// TestShardedScenarioRun exercises the global-engine integration: scenario
// timeline, per-bucket sampler and cancel-free run all riding barriers
// while four shards execute the swarm.
func TestShardedScenarioRun(t *testing.T) {
	cfg := shardCfg(4)
	cfg.Scenario = mustScenario(t, "flashcrowd")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ledgerInvariants(t, a)
	if len(a.Series) == 0 {
		t.Fatal("scenario run sampled no series buckets")
	}
	cfg2 := shardCfg(4)
	cfg2.Scenario = mustScenario(t, "flashcrowd")
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series lengths differ: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		x, y := a.Series[i], b.Series[i]
		if x.Online != y.Online || x.Continuity != y.Continuity || x.VideoKbps != y.VideoKbps {
			t.Fatalf("series bucket %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestPartitionAS(t *testing.T) {
	cfg := Default("SopCast")
	w, err := world.Build(cfg.World)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[topology.ASN]int{w.SourceHost.AS: 1}
	for _, p := range w.Probes {
		counts[p.Host.AS]++
	}
	for _, bg := range w.Background {
		counts[bg.Host.AS]++
	}
	for _, dp := range w.Deferred {
		counts[dp.Host.AS]++
	}

	part, n := partitionAS(w, 4)
	if n != 4 {
		t.Fatalf("effective shards = %d, want 4 (world has %d ASes)", n, len(counts))
	}
	load := make([]int, n)
	for as, c := range counts {
		idx, ok := part[as]
		if !ok {
			t.Fatalf("AS %d not assigned to any shard", as)
		}
		if idx < 0 || idx >= n {
			t.Fatalf("AS %d assigned out-of-range shard %d", as, idx)
		}
		load[idx] += c
	}
	// Greedy largest-first bin-packing: every shard is populated, and no
	// shard's load exceeds the best-balanced load by more than the largest
	// single AS (the classic LPT bound, loose form).
	largest, total := 0, 0
	for _, c := range counts {
		total += c
		if c > largest {
			largest = c
		}
	}
	for i, l := range load {
		if l == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if l > total/n+largest {
			t.Errorf("shard %d load %d exceeds balance bound %d", i, l, total/n+largest)
		}
	}

	// Determinism: the partition is a pure function of (world, n).
	again, _ := partitionAS(w, 4)
	for as, idx := range part {
		if again[as] != idx {
			t.Fatalf("partition not deterministic at AS %d: %d vs %d", as, idx, again[as])
		}
	}

	// Clamping: more shards than ASes degrades to one shard per AS.
	_, clamped := partitionAS(w, 10_000)
	if clamped != len(counts) {
		t.Errorf("clamped shards = %d, want AS count %d", clamped, len(counts))
	}
	if _, one := partitionAS(w, 0); one != 1 {
		t.Errorf("shards floor = %d, want 1", one)
	}
}
