// Package experiment orchestrates full paper experiments: build a world
// (Table I testbed + background swarm), run one application's swarm for a
// virtual hour (or any horizon), capture packet traces at every probe, and
// reduce them — through internal/analysis and internal/core — into the
// numbers behind Tables II–IV and Figures 1–2.
package experiment

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"time"

	"napawine/internal/access"
	"napawine/internal/analysis"
	"napawine/internal/apps"
	"napawine/internal/chunkstream"
	"napawine/internal/core"
	"napawine/internal/overlay"
	"napawine/internal/packet"
	"napawine/internal/policy"
	"napawine/internal/scenario"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/stats"
	"napawine/internal/topology"
	"napawine/internal/units"
	"napawine/internal/world"
)

// Config parameterizes one experiment run.
type Config struct {
	App      string // "PPLive", "SopCast" or "TVAnts"
	Seed     int64
	Duration time.Duration // virtual run length

	// Profile, when non-nil, overrides the stock profile selected by App.
	// This is how ablation variants (apps.Variant) are run: the world and
	// scale still come from App's defaults, the behaviour from Profile.
	Profile *overlay.Profile

	// Strategy names a registered chunk-scheduling strategy
	// (policy.StrategyNames) that overrides the profile's: how a peer
	// spends its per-tick request budget across the pull window. ""
	// keeps the profile's own strategy (urgent-random for the stock
	// profiles), so default runs stay byte-identical.
	Strategy string

	// Scenario, when non-nil, injects a declarative workload timeline
	// (flash crowd, diurnal wave, partition, tracker outage, ...) into the
	// run and turns on per-bucket time-series sampling (Result.Series).
	// Its ExtraPeerFactor sizes World.ExtraPeers unless the caller already
	// set that explicitly.
	Scenario *scenario.Spec

	// OnSample, when non-nil, streams each time-series bucket to the
	// caller the moment the sampler records it — the live-progress hook
	// the study Observer rides on. Only scenario runs sample buckets, so
	// the callback never fires without a Scenario. It runs on the
	// simulation goroutine; implementations must not block.
	OnSample func(SeriesSample)

	// ASSeriesK bounds per-AS time-series tracking to the K most-populated
	// ASes: zero selects DefaultASSeriesK, negative disables the per-AS
	// breakdown entirely. The bound keeps series memory at
	// O(buckets·K) regardless of topology size, and the accounting rides
	// the ledger's per-AS totals, so it works under LeanLedger too.
	ASSeriesK int

	World world.Spec

	// Overlay constants (zero values select defaults).
	BufferWindow  int
	TrackerBatch  int
	ContactFanout int
	JitterMax     time.Duration
	UplinkBusyCap time.Duration

	// Congestion bounds every peer's uplink queue (tail-drop loss beyond
	// the depth) and switches the overlay to its congestion-signal path:
	// timeout backoff, retransmits, loss-aware partner weighting. The zero
	// value keeps today's unbounded FIFO and the byte-identical defaults.
	Congestion access.CongestionModel

	// Shards splits the swarm across that many parallel shard engines, one
	// goroutine each, partitioned by AS (every AS lives whole on one
	// shard) and coordinated in conservative lockstep windows bounded by
	// the minimum inter-shard one-way delay. 0 or 1 runs the serial engine
	// and is byte-identical to it; N > 1 is deterministic for that N but
	// draws different (decorrelated) RNG streams, so its figures differ
	// from the serial run the way a different seed's would. The count is
	// clamped to the number of populated ASes.
	Shards int

	// LeanLedger drops the overlay ledger's per-peer and per-pair maps,
	// keeping only swarm-wide totals — the setting that takes resident
	// metric memory from O(peers) to O(1) and makes 10⁵-peer worlds fit.
	// Every figure Result reports comes from the totals, so the switch
	// changes memory, never results. It turns itself on automatically at
	// LeanLedgerAutoPeers and beyond.
	LeanLedger bool

	// Background churn (probes never churn, like the testbed).
	ChurnMeanOn  time.Duration
	ChurnMeanOff time.Duration

	// Join staggering windows.
	BackgroundJoinWindow time.Duration
	ProbeJoinWindow      time.Duration

	// FlushEvery bounds capture-spool memory during long runs.
	FlushEvery time.Duration

	// StoreTraces, when non-empty, writes every probe's capture to
	// <dir>/<probe-label>.nwt in the binary trace format — the paper's
	// workflow of archiving raw captures for offline analysis (the
	// NAPA-WINE traces were "made available to the research community").
	StoreTraces string

	// Analysis knobs.
	Analysis analysis.Config
	Contrib  core.ContribThresholds
}

// Default returns the calibrated configuration for one application. World
// sizes are scaled down from the paper's populations (PPLive ≫ SopCast ≫
// TVAnts, §II Table II) to laptop scale while preserving the ratios that
// drive every percentage in the tables.
func Default(app string) Config {
	cfg := Config{
		App:      app,
		Seed:     1,
		Duration: 10 * time.Minute,

		BufferWindow:  90,
		TrackerBatch:  24,
		JitterMax:     2 * time.Millisecond,
		UplinkBusyCap: 2 * time.Second,

		ChurnMeanOn:  150 * time.Second,
		ChurnMeanOff: 40 * time.Second,

		BackgroundJoinWindow: 60 * time.Second,
		ProbeJoinWindow:      20 * time.Second,
		FlushEvery:           10 * time.Second,

		Analysis: analysis.DefaultConfig(),
		Contrib:  core.DefaultContrib,
	}
	cfg.World = world.Spec{
		Seed:              1,
		HighBwFraction:    0.70,
		NATFraction:       0.25,
		FWFraction:        0.05,
		ProbeASBackground: 8,
	}
	switch app {
	case "PPLive":
		cfg.World.Peers = 1400
	case "SopCast":
		cfg.World.Peers = 550
	case "TVAnts":
		cfg.World.Peers = 240
	default:
		cfg.World.Peers = 500
	}
	return cfg
}

// LeanLedgerAutoPeers is the total population (background plus scenario
// extras) at which a run switches to the lean ledger on its own: below it,
// per-peer ground truth is cheap and handy for debugging; at and above it,
// the maps are the dominant resident allocation and nothing reads them.
const LeanLedgerAutoPeers = 20000

// ScalePeers scales the background population by factor (<= 0 leaves the
// default), flooring at 50 peers so a tiny factor still yields a viable
// swarm. Single-run batteries (napawine.RunAll) and sweeps share this rule;
// the same scale flag must mean the same world in both modes.
func (c *Config) ScalePeers(factor float64) {
	if factor <= 0 {
		return
	}
	c.World.Peers = int(float64(c.World.Peers) * factor)
	if c.World.Peers < 50 {
		c.World.Peers = 50
	}
}

func (c *Config) fillDefaults() {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	if c.BufferWindow <= 0 {
		c.BufferWindow = 90
	}
	if c.TrackerBatch <= 0 {
		c.TrackerBatch = 24
	}
	if c.UplinkBusyCap <= 0 {
		c.UplinkBusyCap = 2 * time.Second
	}
	if c.ChurnMeanOn <= 0 {
		c.ChurnMeanOn = 150 * time.Second
	}
	if c.ChurnMeanOff <= 0 {
		c.ChurnMeanOff = 40 * time.Second
	}
	if c.BackgroundJoinWindow <= 0 {
		c.BackgroundJoinWindow = 60 * time.Second
	}
	if c.ProbeJoinWindow <= 0 {
		c.ProbeJoinWindow = 20 * time.Second
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 10 * time.Second
	}
	if c.Analysis.VideoSizeFloor == 0 {
		c.Analysis = analysis.DefaultConfig()
	}
	if c.Contrib.MinBytes == 0 {
		c.Contrib = core.DefaultContrib
	}
	// World.SubnetsPerAS stays 0 here on purpose: world.Build sizes the
	// address space from the final population (3 for small worlds, larger
	// for 10⁵-peer swarms), and Peers/ExtraPeers may still change after
	// fillDefaults (ScalePeers, scenario ExtraPeerFactor).
	if c.World.Seed == 0 {
		c.World.Seed = c.Seed
	}
}

// ProbeStats summarizes one vantage point, feeding Table II.
type ProbeStats struct {
	Probe     world.Probe
	RxKbps    float64 // all inbound bytes over the run
	TxKbps    float64
	AllPeers  int // distinct remote addresses seen
	ContribRx int // download contributors
	ContribTx int // upload contributors
}

// Result is everything one run produces.
type Result struct {
	App      string
	Cfg      Config
	World    *world.World
	Duration time.Duration

	// Observations across all probes (one entry per probe×peer pair).
	Observations []core.Observation
	// Unlocated counts peers the registry could not place.
	Unlocated int

	PerProbe []ProbeStats

	// HopMedianMeasured is the observed hop median (paper: 18–20).
	HopMedianMeasured float64

	// MeanContinuity is the average playout continuity across online
	// peers at the end of the run — the sanity check that the emulated
	// swarm actually sustained the stream.
	MeanContinuity float64

	// SourceKbps is the stream source's video upload rate over the run —
	// the "source load" a self-sustaining swarm keeps near the stream
	// rate and a starved one multiplies. SourceSharePct is the same load
	// as a share of all video bytes moved (0 when no video moved;
	// VideoBytes carries the denominator).
	SourceKbps     float64
	SourceSharePct float64
	VideoBytes     int64

	// MeanDiffusionDelay is the mean virtual time from a chunk's calendar
	// birth to its first delivery at a peer, across DiffusionChunks
	// deliveries — the chunk-scheduling figure of merit. Zero when
	// nothing was delivered.
	MeanDiffusionDelay time.Duration
	DiffusionChunks    int64

	// Congestion ground truth, all zero unless Cfg.Congestion bounds the
	// uplink queues: chunks tail-dropped at full queues, re-requests
	// issued after a timeout, partner backoff activations, and the chunks
	// that did get served (the loss-rate denominator alongside Drops).
	Drops        int64
	Retransmits  int64
	Backoffs     int64
	ChunksServed int64

	// Scenario names the workload timeline the run executed ("" = none).
	Scenario string
	// Series is the per-bucket time series a scenario run samples; empty
	// without a scenario. Length is bounded by scenario.MaxBuckets.
	Series []SeriesSample

	// Ledger is ground truth for validation; analysis never reads it.
	Ledger *overlay.Ledger

	// Events is the engine's processed-event count (throughput metric).
	Events uint64

	probeByAddr map[netip.Addr]world.Probe
}

// ProbeOf resolves a probe address to its testbed identity.
func (r *Result) ProbeOf(addr netip.Addr) (world.Probe, bool) {
	p, ok := r.probeByAddr[addr]
	return p, ok
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) { return RunCtx(context.Background(), cfg) }

// cancelPoll is how often (in virtual time) a cancellable run checks its
// context. Virtual seconds pass in wall-clock milliseconds, so a cancelled
// context stops the engine promptly without the engine ever knowing about
// contexts.
const cancelPoll = time.Second

// RunCtx executes one experiment under a context. Cancellation is polled on
// the engine's own clock every cancelPoll of virtual time: when ctx is
// done, the engine halts mid-run and RunCtx returns ctx.Err() with no
// Result. A context that can never be cancelled (ctx.Done() == nil, e.g.
// context.Background()) installs no poll events; cancellable runs subtract
// their poll firings from the reported event count — either way
// Result.Events (a rendered sweep/study metric) stays identical to a
// context-free Run, preserving the byte-identical-tables contract for
// callers that merely wire up Ctrl-C.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if err := cfg.Congestion.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	prof := cfg.Profile
	if prof == nil {
		var err error
		prof, err = apps.ByName(cfg.App)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Strategy != "" {
		strat, err := policy.StrategyByName(cfg.Strategy)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		// Copy before mutating: the profile may be shared by other runs of
		// a parallel battery.
		cp := *prof
		cp.ChunkStrategy = strat
		prof = &cp
	}
	if cfg.Scenario != nil {
		// Work on a private deep copy: the caller's Spec may be shared
		// across the parallel runs of a battery, and Run must leave it
		// bit-for-bit untouched no matter what compilation does.
		cfg.Scenario = cfg.Scenario.Clone()
		if err := cfg.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		if cfg.World.ExtraPeers == 0 {
			cfg.World.ExtraPeers = int(cfg.Scenario.ExtraPeerFactor * float64(cfg.World.Peers))
		}
	}
	w, err := world.Build(cfg.World)
	if err != nil {
		return nil, fmt.Errorf("experiment: world: %w", err)
	}

	// Shard layout: whole ASes bin-packed across the requested shard
	// count, window width from the closest inter-shard subnet pair. One
	// shard degenerates to the serial engine (sim.NewSharded and
	// overlay.NewSharded collapse to their serial forms by construction).
	part, shards := partitionAS(w, cfg.Shards)
	var lookahead time.Duration
	if shards > 1 {
		lookahead = w.Topo.MinInterGroupDelay(part)
		if lookahead <= 0 {
			shards = 1
		}
	}
	sh := sim.NewSharded(cfg.Seed, shards, lookahead)
	eng := sh.Global()
	cal := chunkstream.NewCalendar(apps.StreamRate, 48*units.KB)
	lean := cfg.LeanLedger || cfg.World.Peers+cfg.World.ExtraPeers >= LeanLedgerAutoPeers
	net := overlay.NewSharded(sh, w.Topo, overlay.Config{
		Calendar:      cal,
		BufferWindow:  cfg.BufferWindow,
		TrackerBatch:  cfg.TrackerBatch,
		ContactFanout: cfg.ContactFanout,
		JitterMax:     cfg.JitterMax,
		UplinkBusyCap: cfg.UplinkBusyCap,
		Congestion:    cfg.Congestion,
		LeanLedger:    lean,
	}, part)

	source := net.AddSource(w.SourceHost, w.SourceLink, prof)

	type probeRT struct {
		probe world.Probe
		node  *overlay.Node
		agg   *analysis.Aggregator
		tally *sniffer.TallySink
	}
	probes := make([]probeRT, 0, len(w.Probes))
	var traceFiles []*os.File
	var traceSinks []*sniffer.WriterSink
	defer func() {
		for _, f := range traceFiles {
			f.Close()
		}
	}()
	for _, p := range w.Probes {
		node := net.AddNode(p.Host, p.Link, prof)
		cap := net.AttachSniffer(node)
		agg := analysis.New(p.Host.Addr, cfg.Analysis)
		tally := sniffer.NewTallySink(p.Host.Addr)
		cap.Attach(agg)
		cap.Attach(tally)
		if cfg.StoreTraces != "" {
			path := filepath.Join(cfg.StoreTraces, p.Label+".nwt")
			f, err := os.Create(path)
			if err != nil {
				return nil, fmt.Errorf("experiment: trace file: %w", err)
			}
			tw, err := packet.NewWriter(f, p.Host.Addr, cfg.App+"/"+p.Label)
			if err != nil {
				return nil, fmt.Errorf("experiment: trace header: %w", err)
			}
			sink := &sniffer.WriterSink{W: tw}
			cap.Attach(sink)
			traceFiles = append(traceFiles, f)
			traceSinks = append(traceSinks, sink)
		}
		probes = append(probes, probeRT{probe: p, node: node, agg: agg, tally: tally})
	}

	background := make([]*overlay.Node, 0, len(w.Background))
	for _, bg := range w.Background {
		background = append(background, net.AddNode(bg.Host, bg.Link, prof))
	}
	deferred := make([]*overlay.Node, 0, len(w.Deferred))
	for _, dp := range w.Deferred {
		deferred = append(deferred, net.AddNode(dp.Host, dp.Link, prof))
	}

	// Arrivals: source first, probes early, background staggered with
	// churn. All offsets flow from the seeded *global* engine RNG in node
	// order — a pure function of (seed, world), whatever the shard count —
	// while each join lands on its node's own shard engine.
	source.ScheduleJoin(0)
	rng := eng.Rand()
	for _, p := range probes {
		delay := time.Duration(rng.Int63n(int64(cfg.ProbeJoinWindow)))
		p.node.ScheduleJoin(delay)
	}
	for _, node := range background {
		first := time.Duration(rng.Int63n(int64(cfg.BackgroundJoinWindow)))
		meanOn := cfg.ChurnMeanOn
		if node.Link.HighBandwidth() {
			// Institutional peers (campus PCs, always-on boxes) hold
			// sessions much longer than consumer DSL viewers; session
			// stability is what lets locality-aware clients keep their
			// few same-AS partners once found.
			meanOn *= 4
		}
		node.ScheduleChurn(first, meanOn, cfg.ChurnMeanOff)
	}

	// Scenario timeline and its time-series sampler. Compiling after the
	// base arrival schedule keeps the engine-RNG consumption order (and
	// therefore byte-identical replay) well defined.
	var series *seriesRecorder
	if cfg.Scenario != nil {
		err := scenario.Compile(cfg.Scenario, scenario.Env{
			Eng:        eng,
			Net:        net,
			Horizon:    cfg.Duration,
			Background: background,
			Deferred:   deferred,
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		series = recordSeries(eng, net, cfg.Scenario.BucketCount(), cfg.Duration, cfg.OnSample, cfg.ASSeriesK)
	}

	// Periodic spool flush bounds memory for hour-scale runs.
	eng.Every(cfg.FlushEvery, cfg.FlushEvery, 0, net.FlushCapturesBefore)

	var polls uint64
	if ctx.Done() != nil {
		eng.Every(cancelPoll, cancelPoll, 0, func() {
			polls++
			if ctx.Err() != nil {
				sh.Stop()
			}
		})
	}

	sh.Run(cfg.Duration)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	net.FlushCaptures()
	for i, sink := range traceSinks {
		if sink.Err != nil {
			return nil, fmt.Errorf("experiment: trace write: %w", sink.Err)
		}
		if err := sink.W.Close(); err != nil {
			return nil, fmt.Errorf("experiment: trace close: %w", err)
		}
		if err := traceFiles[i].Sync(); err != nil {
			return nil, fmt.Errorf("experiment: trace sync: %w", err)
		}
	}

	// Reduce. The ledger view is the live ledger on one shard and a merged
	// snapshot of the per-shard ledgers otherwise.
	led := net.LedgerView()
	res := &Result{
		App:      cfg.App,
		Cfg:      cfg,
		World:    w,
		Duration: cfg.Duration,
		Ledger:   led,
		// Poll firings are harness bookkeeping, not swarm activity; see
		// the RunCtx doc for why they are excluded from the metric.
		Events:      sh.Processed() - polls,
		probeByAddr: make(map[netip.Addr]world.Probe, len(w.Probes)),
	}
	if cfg.Scenario != nil {
		res.Scenario = cfg.Scenario.Name
		res.Series = series.samples
	}
	probeSet := w.ProbeAddrs()
	secs := cfg.Duration.Seconds()
	var continuity stats.Accumulator
	for _, p := range probes {
		res.probeByAddr[p.probe.Host.Addr] = p.probe
		obs, unlocated := p.agg.Observations(w.Topo, probeSet)
		res.Unlocated += unlocated
		stat := ProbeStats{
			Probe:    p.probe,
			RxKbps:   float64(p.tally.InBytes) * 8 / 1000 / secs,
			TxKbps:   float64(p.tally.OutBytes) * 8 / 1000 / secs,
			AllPeers: p.agg.PeerCount(),
		}
		for _, o := range obs {
			if core.Contributor(o, core.Download, cfg.Contrib) {
				stat.ContribRx++
			}
			if core.Contributor(o, core.Upload, cfg.Contrib) {
				stat.ContribTx++
			}
		}
		res.PerProbe = append(res.PerProbe, stat)
		res.Observations = append(res.Observations, obs...)
	}
	if med, ok := core.HopMedian(res.Observations); ok {
		res.HopMedianMeasured = med
	}
	for _, n := range net.Nodes() {
		if n.Online() && !n.IsSource() {
			continuity.Add(n.Continuity())
		}
	}
	res.MeanContinuity = continuity.Mean()

	// SourceVideoTx is attributed at send time, so under a source-failover
	// scenario the promoted backup's injection counts as source load while
	// its earlier life as an ordinary peer does not.
	srcTx := led.SourceVideoTx
	res.SourceKbps = float64(srcTx) * 8 / 1000 / secs
	res.VideoBytes = led.VideoTotal
	if led.VideoTotal > 0 {
		res.SourceSharePct = 100 * float64(srcTx) / float64(led.VideoTotal)
	}
	res.DiffusionChunks = led.DiffusionChunks
	if led.DiffusionChunks > 0 {
		res.MeanDiffusionDelay = led.DiffusionDelaySum / time.Duration(led.DiffusionChunks)
	}
	res.Drops = led.DropsTotal
	res.Retransmits = led.RetransmitsTotal
	res.Backoffs = led.BackoffsTotal
	res.ChunksServed = led.ChunksServedTotal
	return res, nil
}

// partitionAS maps every populated AS wholly onto one of at most n shards
// and reports the effective shard count (clamped to the number of populated
// ASes, floored at one). ASes are placed largest population first (ASN
// ascending on ties) onto the least-loaded shard — a deterministic greedy
// bin-packing, so the layout is a pure function of (world, n) and shards=N
// runs replay byte-identically.
func partitionAS(w *world.World, n int) (map[topology.ASN]int, int) {
	counts := make(map[topology.ASN]int)
	counts[w.SourceHost.AS]++
	for _, p := range w.Probes {
		counts[p.Host.AS]++
	}
	for _, bg := range w.Background {
		counts[bg.Host.AS]++
	}
	for _, dp := range w.Deferred {
		counts[dp.Host.AS]++
	}
	if n < 1 {
		n = 1
	}
	if n > len(counts) {
		n = len(counts)
	}
	ases := make([]topology.ASN, 0, len(counts))
	for as := range counts {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool {
		if counts[ases[i]] != counts[ases[j]] {
			return counts[ases[i]] > counts[ases[j]]
		}
		return ases[i] < ases[j]
	})
	part := make(map[topology.ASN]int, len(ases))
	load := make([]int, n)
	for _, as := range ases {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		part[as] = best
		load[best] += counts[as]
	}
	return part, n
}
