package experiment

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"napawine/internal/analysis"
	"napawine/internal/core"
	"napawine/internal/packet"
)

// The paper's workflow is capture-then-analyze-offline. This test runs an
// experiment that archives every probe trace, then replays one trace from
// disk through a fresh aggregator and checks the offline observations are
// identical to the live ones.
func TestOfflineTraceReplayMatchesLive(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig("TVAnts", 17)
	cfg.Duration = 2 * time.Minute
	cfg.World.Peers = 120
	cfg.StoreTraces = dir

	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 44 {
		t.Fatalf("trace files = %d, want 44 (one per probe)", len(entries))
	}

	// Replay every trace and rebuild the observation set offline.
	probeSet := r.World.ProbeAddrs()
	var offline []core.Observation
	var records uint64
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := packet.NewReader(f)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := analysis.FromTrace(rd, cfg.Analysis)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		records += agg.Records()
		obs, unlocated := agg.Observations(r.World.Topo, probeSet)
		if unlocated != 0 {
			t.Fatalf("offline replay could not locate %d peers", unlocated)
		}
		offline = append(offline, obs...)
	}
	if records == 0 {
		t.Fatal("archived traces are empty")
	}
	if len(offline) != len(r.Observations) {
		t.Fatalf("offline observations = %d, live = %d", len(offline), len(r.Observations))
	}

	// The framework must produce byte-identical indices from either path.
	for _, c := range core.PaperClassifiers() {
		for _, dir := range []core.Direction{core.Download, core.Upload} {
			for _, excl := range []bool{false, true} {
				live := core.Compute(r.Observations, dir, c, cfg.Contrib, excl)
				repl := core.Compute(offline, dir, c, cfg.Contrib, excl)
				if live.PeerPct != repl.PeerPct || live.BytePct != repl.BytePct ||
					live.PeersPreferred != repl.PeersPreferred ||
					live.BytesPreferred != repl.BytesPreferred {
					t.Errorf("%s/%s excl=%v: offline %v != live %v",
						c.Name(), dir, excl, repl, live)
				}
			}
		}
	}
}

func TestStoreTracesBadDirFails(t *testing.T) {
	cfg := smallConfig("SopCast", 3)
	cfg.Duration = 30 * time.Second
	cfg.World.Peers = 30
	cfg.StoreTraces = "/nonexistent/path/that/cannot/be/created"
	if _, err := Run(cfg); err == nil {
		t.Error("unwritable trace dir should fail the run")
	}
}
