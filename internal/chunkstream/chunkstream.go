// Package chunkstream models the live video feed the swarm distributes: a
// constant-bit-rate chunk calendar (the paper's channel is 384 kbit/s
// CCTV-1 encoded with Windows Media 9), sliding-window buffer maps, and a
// playout tracker for continuity accounting.
//
// Chunks are the unit of exchange in every 2008-era mesh-pull P2P-TV
// system: the source slices the stream into fixed-size pieces, peers
// advertise what they hold via buffer maps and pull missing pieces from
// partners before their playout deadline.
package chunkstream

import (
	"fmt"
	"math/bits"
	"time"

	"napawine/internal/sim"
	"napawine/internal/units"
)

// ChunkID numbers chunks from 0 in stream order.
type ChunkID int64

// Calendar maps virtual time to chunk availability for a CBR stream.
type Calendar struct {
	rate  units.BitRate
	size  units.ByteSize
	every time.Duration
}

// NewCalendar builds the chunk calendar for a stream of the given rate cut
// into chunks of the given size. It panics on non-positive parameters.
func NewCalendar(rate units.BitRate, chunkSize units.ByteSize) Calendar {
	if rate <= 0 || chunkSize <= 0 {
		panic(fmt.Sprintf("chunkstream: bad calendar rate=%v size=%v", rate, chunkSize))
	}
	return Calendar{rate: rate, size: chunkSize, every: rate.TransmitTime(chunkSize)}
}

// Rate reports the stream's nominal bit rate.
func (c Calendar) Rate() units.BitRate { return c.rate }

// ChunkSize reports the size of every chunk.
func (c Calendar) ChunkSize() units.ByteSize { return c.size }

// Interval reports the wall-clock spacing between chunk births.
func (c Calendar) Interval() time.Duration { return c.every }

// LatestAt reports the newest chunk that exists at time t (chunk 0 is born
// at t=0), or -1 before the stream starts.
func (c Calendar) LatestAt(t sim.Time) ChunkID {
	if t < 0 {
		return -1
	}
	return ChunkID(int64(t) / int64(c.every))
}

// BornAt reports the instant chunk id comes into existence at the source.
func (c Calendar) BornAt(id ChunkID) sim.Time {
	return sim.Time(int64(id) * int64(c.every))
}

// BufferMap is a sliding-window set of chunk ids, the data structure peers
// gossip to advertise holdings. The window is a fixed-capacity bitfield:
// real clients cap their buffer at a few tens of seconds of stream.
type BufferMap struct {
	base   ChunkID // first id covered by the window
	window int     // capacity in chunks
	bits   []uint64
}

// NewBufferMap builds an empty map covering [base, base+window).
func NewBufferMap(base ChunkID, window int) *BufferMap {
	if window <= 0 {
		panic(fmt.Sprintf("chunkstream: non-positive window %d", window))
	}
	return &BufferMap{base: base, window: window, bits: make([]uint64, (window+63)/64)}
}

// Reset re-aims an existing map at [base, base+window) with nothing held,
// reusing the bitfield allocation. It is how the overlay recycles buffer
// maps across join/leave episodes instead of allocating one per join.
func (m *BufferMap) Reset(base ChunkID) {
	m.base = base
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Base reports the lowest chunk id the window covers.
func (m *BufferMap) Base() ChunkID { return m.base }

// Window reports the window capacity in chunks.
func (m *BufferMap) Window() int { return m.window }

// contains reports whether id falls inside the window.
func (m *BufferMap) contains(id ChunkID) bool {
	return id >= m.base && id < m.base+ChunkID(m.window)
}

// Set marks id as held. Ids outside the window are ignored and reported:
// the overlay treats an out-of-window delivery as wasted work.
func (m *BufferMap) Set(id ChunkID) bool {
	if !m.contains(id) {
		return false
	}
	off := int(id - m.base)
	m.bits[off/64] |= 1 << (off % 64)
	return true
}

// Has reports whether id is held. Anything outside the window reads false.
func (m *BufferMap) Has(id ChunkID) bool {
	if !m.contains(id) {
		return false
	}
	off := int(id - m.base)
	return m.bits[off/64]&(1<<(off%64)) != 0
}

// Count reports how many chunks are held.
func (m *BufferMap) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Advance slides the window so it starts at newBase, dropping ids below it.
// Sliding backwards is a programming error and panics (live streams only
// move forward).
func (m *BufferMap) Advance(newBase ChunkID) {
	if newBase < m.base {
		panic(fmt.Sprintf("chunkstream: Advance backwards %d < %d", newBase, m.base))
	}
	shift := int(newBase - m.base)
	if shift == 0 {
		return
	}
	if shift >= m.window {
		for i := range m.bits {
			m.bits[i] = 0
		}
		m.base = newBase
		return
	}
	// Shift the bitfield right by `shift` bits across words.
	wordShift, bitShift := shift/64, shift%64
	n := len(m.bits)
	for i := 0; i < n; i++ {
		var v uint64
		if i+wordShift < n {
			v = m.bits[i+wordShift] >> bitShift
			if bitShift > 0 && i+wordShift+1 < n {
				v |= m.bits[i+wordShift+1] << (64 - bitShift)
			}
		}
		m.bits[i] = v
	}
	// Clear any bits beyond the window capacity that the shift exposed.
	m.base = newBase
	m.clearTail()
}

// clearTail zeroes bits at positions ≥ window inside the last word.
func (m *BufferMap) clearTail() {
	extra := len(m.bits)*64 - m.window
	if extra > 0 {
		m.bits[len(m.bits)-1] &= ^uint64(0) >> extra
	}
}

// Missing lists held-elsewhere candidates: ids in [from, to) inside the
// window that are not held. The slice is freshly allocated.
func (m *BufferMap) Missing(from, to ChunkID) []ChunkID {
	if from < m.base {
		from = m.base
	}
	if max := m.base + ChunkID(m.window); to > max {
		to = max
	}
	var out []ChunkID
	for id := from; id < to; id++ {
		if !m.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Snapshot encodes the holdings as (base, bitset copy); used to serialize
// buffer-map signaling packets' payload size and to diff against a partner.
func (m *BufferMap) Snapshot() (ChunkID, []uint64) {
	return m.SnapshotInto(nil)
}

// SnapshotInto is the allocation-free Snapshot: the bitset is copied into
// dst (grown only when too small) and the filled slice is returned.
// Signaling loops that fire every second per node thread one scratch
// buffer through it instead of allocating a copy per tick.
func (m *BufferMap) SnapshotInto(dst []uint64) (ChunkID, []uint64) {
	if cap(dst) < len(m.bits) {
		dst = make([]uint64, len(m.bits))
	}
	dst = dst[:len(m.bits)]
	copy(dst, m.bits)
	return m.base, dst
}

// WireSize reports the bytes a buffer-map announcement occupies on the
// wire: 8 bytes of base plus the bitfield. Used to size signaling packets.
func (m *BufferMap) WireSize() units.ByteSize {
	return units.ByteSize(8 + len(m.bits)*8)
}

// LoadSnapshot replaces the map's contents with a snapshot received from a
// partner. The snapshot's word count must match the window capacity; a
// mismatch panics because it means two peers disagree about the protocol's
// window size.
func (m *BufferMap) LoadSnapshot(base ChunkID, bits []uint64) {
	if len(bits) != len(m.bits) {
		panic(fmt.Sprintf("chunkstream: snapshot width %d words, window needs %d", len(bits), len(m.bits)))
	}
	m.base = base
	copy(m.bits, bits)
	m.clearTail()
}

// Playout tracks in-order delivery to the decoder and accounts continuity:
// a chunk missing when its deadline passes is skipped and counted as a
// miss. The continuity index (delivered / due) is the QoE statistic used to
// sanity-check that an emulated swarm actually sustains the stream.
type Playout struct {
	next      ChunkID // next chunk the decoder needs
	delivered int64
	missed    int64
}

// NewPlayout starts the decoder wanting chunk first.
func NewPlayout(first ChunkID) *Playout { return &Playout{next: first} }

// Reset restarts the tracker at chunk first with zeroed continuity
// counters, reusing the allocation across join/leave episodes.
func (p *Playout) Reset(first ChunkID) { *p = Playout{next: first} }

// Next reports the chunk the decoder is waiting for.
func (p *Playout) Next() ChunkID { return p.next }

// CatchUp consumes chunks from the buffer map up to (and excluding)
// deadline: chunks present advance delivery; chunks absent once the
// deadline has passed them are skipped as misses.
func (p *Playout) CatchUp(m *BufferMap, deadline ChunkID) {
	for p.next < deadline {
		if m.Has(p.next) {
			p.delivered++
		} else {
			p.missed++
		}
		p.next++
	}
}

// Skip advances past the next chunk without charging a miss. Used during
// join warm-up, when a chunk was due before the peer had any chance to
// fetch it; counting those as misses would misreport steady-state quality.
func (p *Playout) Skip() { p.next++ }

// Delivered reports chunks played.
func (p *Playout) Delivered() int64 { return p.delivered }

// Missed reports chunks skipped.
func (p *Playout) Missed() int64 { return p.missed }

// Continuity reports delivered/(delivered+missed), 1.0 when nothing was due
// yet.
func (p *Playout) Continuity() float64 {
	due := p.delivered + p.missed
	if due == 0 {
		return 1
	}
	return float64(p.delivered) / float64(due)
}
