package chunkstream

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"napawine/internal/sim"
	"napawine/internal/units"
)

func TestCalendarBasics(t *testing.T) {
	// The paper's channel: 384 kbit/s. With 48 KB chunks, one chunk per
	// second exactly.
	c := NewCalendar(384*units.Kbps, 48*units.KB)
	if c.Interval() != time.Second {
		t.Fatalf("interval = %v, want 1s", c.Interval())
	}
	if c.Rate() != 384*units.Kbps || c.ChunkSize() != 48*units.KB {
		t.Error("accessors disagree with constructor")
	}
	if got := c.LatestAt(0); got != 0 {
		t.Errorf("LatestAt(0) = %d, want 0", got)
	}
	if got := c.LatestAt(sim.Time(2500 * time.Millisecond)); got != 2 {
		t.Errorf("LatestAt(2.5s) = %d, want 2", got)
	}
	if got := c.LatestAt(-1); got != -1 {
		t.Errorf("LatestAt(<0) = %d, want -1", got)
	}
	if got := c.BornAt(3); got != sim.Time(3*time.Second) {
		t.Errorf("BornAt(3) = %v, want 3s", got)
	}
}

func TestCalendarRoundTripProperty(t *testing.T) {
	c := NewCalendar(384*units.Kbps, 16*units.KB)
	f := func(idRaw uint32) bool {
		id := ChunkID(idRaw)
		// A chunk is the latest chunk at its own birth instant.
		return c.LatestAt(c.BornAt(id)) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCalendarPanics(t *testing.T) {
	assertPanics(t, func() { NewCalendar(0, units.KB) })
	assertPanics(t, func() { NewCalendar(units.Kbps, 0) })
}

func TestBufferMapSetHas(t *testing.T) {
	m := NewBufferMap(100, 64)
	if m.Has(100) {
		t.Error("fresh map should be empty")
	}
	if !m.Set(100) || !m.Set(163) {
		t.Error("in-window Set should succeed")
	}
	if m.Set(99) || m.Set(164) {
		t.Error("out-of-window Set should fail")
	}
	if !m.Has(100) || !m.Has(163) {
		t.Error("Set chunks should read back")
	}
	if m.Has(99) || m.Has(164) || m.Has(150) {
		t.Error("unset/out-of-window chunks should read false")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if m.Base() != 100 || m.Window() != 64 {
		t.Error("accessors wrong")
	}
}

func TestBufferMapAdvance(t *testing.T) {
	m := NewBufferMap(0, 100)
	for i := ChunkID(0); i < 100; i += 2 {
		m.Set(i)
	}
	m.Advance(10)
	if m.Base() != 10 {
		t.Fatalf("base = %d", m.Base())
	}
	for i := ChunkID(10); i < 100; i++ {
		want := i%2 == 0
		if m.Has(i) != want {
			t.Fatalf("after advance Has(%d) = %v, want %v", i, m.Has(i), want)
		}
	}
	if m.Has(8) {
		t.Error("dropped chunk still readable")
	}
	// The freed tail must be writable.
	if !m.Set(105) || !m.Has(105) {
		t.Error("tail after advance not writable")
	}
}

func TestBufferMapAdvanceFar(t *testing.T) {
	m := NewBufferMap(0, 50)
	for i := ChunkID(0); i < 50; i++ {
		m.Set(i)
	}
	m.Advance(1000) // far beyond the window: everything drops
	if m.Count() != 0 {
		t.Errorf("Count after far advance = %d, want 0", m.Count())
	}
	if !m.Set(1001) || !m.Has(1001) {
		t.Error("map unusable after far advance")
	}
}

func TestBufferMapAdvanceZero(t *testing.T) {
	m := NewBufferMap(5, 10)
	m.Set(7)
	m.Advance(5) // no-op
	if !m.Has(7) || m.Base() != 5 {
		t.Error("zero advance changed state")
	}
}

func TestBufferMapAdvanceBackwardsPanics(t *testing.T) {
	m := NewBufferMap(10, 10)
	assertPanics(t, func() { m.Advance(9) })
}

func TestBufferMapWindowPanics(t *testing.T) {
	assertPanics(t, func() { NewBufferMap(0, 0) })
	assertPanics(t, func() { NewBufferMap(0, -5) })
}

// Property: Advance behaves exactly like a reference set-based window.
func TestBufferMapAdvanceEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16, advances []uint8) bool {
		const window = 96
		m := NewBufferMap(0, window)
		ref := map[ChunkID]bool{}
		base := ChunkID(0)
		ai := 0
		for i, op := range ops {
			id := base + ChunkID(op%window*2) // half in-window, half out
			inWindow := id >= base && id < base+window
			if m.Set(id) != inWindow {
				return false
			}
			if inWindow {
				ref[id] = true
			}
			if i%3 == 2 && ai < len(advances) {
				base += ChunkID(advances[ai] % 40)
				ai++
				m.Advance(base)
				for k := range ref {
					if k < base {
						delete(ref, k)
					}
				}
			}
		}
		for id := base; id < base+window; id++ {
			if m.Has(id) != ref[id] {
				return false
			}
		}
		return m.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMissing(t *testing.T) {
	m := NewBufferMap(10, 20)
	m.Set(11)
	m.Set(13)
	got := m.Missing(10, 15)
	want := []ChunkID{10, 12, 14}
	if len(got) != len(want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Missing = %v, want %v", got, want)
		}
	}
	// Clamped to window on both ends.
	if got := m.Missing(0, 1000); len(got) != 18 {
		t.Errorf("clamped Missing length = %d, want 18", len(got))
	}
	if got := m.Missing(100, 200); got != nil {
		t.Errorf("out-of-window Missing = %v, want nil", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	m := NewBufferMap(0, 64)
	m.Set(5)
	base, bits := m.Snapshot()
	if base != 0 || bits[0] != 1<<5 {
		t.Fatalf("snapshot = %d %x", base, bits)
	}
	bits[0] = 0
	if !m.Has(5) {
		t.Error("snapshot shares storage with map")
	}
}

func TestWireSize(t *testing.T) {
	m := NewBufferMap(0, 128)
	if got := m.WireSize(); got != units.ByteSize(8+2*8) {
		t.Errorf("WireSize = %v", got)
	}
}

func TestPlayoutContinuity(t *testing.T) {
	m := NewBufferMap(0, 100)
	p := NewPlayout(0)
	if p.Continuity() != 1 {
		t.Error("fresh playout continuity should be 1")
	}
	for i := ChunkID(0); i < 10; i++ {
		if i != 4 && i != 7 {
			m.Set(i)
		}
	}
	p.CatchUp(m, 10)
	if p.Delivered() != 8 || p.Missed() != 2 {
		t.Fatalf("delivered/missed = %d/%d, want 8/2", p.Delivered(), p.Missed())
	}
	if got := p.Continuity(); got != 0.8 {
		t.Errorf("continuity = %v, want 0.8", got)
	}
	if p.Next() != 10 {
		t.Errorf("Next = %d, want 10", p.Next())
	}
	// CatchUp is idempotent at the same deadline.
	p.CatchUp(m, 10)
	if p.Delivered() != 8 || p.Missed() != 2 {
		t.Error("repeated CatchUp changed counters")
	}
}

func TestPlayoutLateDeliveryDoesNotRewind(t *testing.T) {
	m := NewBufferMap(0, 100)
	p := NewPlayout(0)
	p.CatchUp(m, 5) // all 5 missed
	m.Set(2)        // arrives too late
	p.CatchUp(m, 5)
	if p.Missed() != 5 || p.Delivered() != 0 {
		t.Errorf("late delivery rewrote history: %d/%d", p.Delivered(), p.Missed())
	}
}

func TestBufferMapStressRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := NewBufferMap(0, 256)
	base := ChunkID(0)
	live := map[ChunkID]bool{}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(3) {
		case 0, 1:
			id := base + ChunkID(rng.Intn(256))
			m.Set(id)
			live[id] = true
		case 2:
			base += ChunkID(rng.Intn(8))
			m.Advance(base)
			for k := range live {
				if k < base {
					delete(live, k)
				}
			}
		}
	}
	for id := base; id < base+256; id++ {
		if m.Has(id) != live[id] {
			t.Fatalf("divergence at %d", id)
		}
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func BenchmarkBufferMapSetAdvance(b *testing.B) {
	m := NewBufferMap(0, 512)
	for i := 0; i < b.N; i++ {
		m.Set(ChunkID(i))
		// Slide the window forward periodically, like a live stream;
		// never backwards (Advance would rightly panic).
		if i%64 == 63 && i > 400 {
			m.Advance(ChunkID(i - 400))
		}
	}
}

func BenchmarkMissing(b *testing.B) {
	m := NewBufferMap(0, 512)
	for i := 0; i < 512; i += 3 {
		m.Set(ChunkID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Missing(0, 512)
	}
}

func TestBufferMapReset(t *testing.T) {
	m := NewBufferMap(0, 100)
	for i := 0; i < 100; i += 2 {
		m.Set(ChunkID(i))
	}
	m.Reset(500)
	if m.Base() != 500 {
		t.Errorf("Base = %d after Reset, want 500", m.Base())
	}
	if m.Window() != 100 {
		t.Errorf("Window = %d after Reset, want 100", m.Window())
	}
	if m.Count() != 0 {
		t.Errorf("Count = %d after Reset, want 0 (stale bits survived)", m.Count())
	}
	if !m.Set(550) || !m.Has(550) {
		t.Error("Set/Has broken after Reset")
	}
}

func TestPlayoutReset(t *testing.T) {
	m := NewBufferMap(0, 100)
	m.Set(0)
	p := NewPlayout(0)
	p.CatchUp(m, 3) // 1 delivered, 2 missed
	p.Reset(42)
	if p.Next() != 42 {
		t.Errorf("Next = %d after Reset, want 42", p.Next())
	}
	if p.Delivered() != 0 || p.Missed() != 0 {
		t.Errorf("counters survived Reset: delivered=%d missed=%d", p.Delivered(), p.Missed())
	}
	if p.Continuity() != 1 {
		t.Errorf("Continuity = %v after Reset, want 1", p.Continuity())
	}
}
