package chunkstream

import "testing"

func TestLoadSnapshotRoundTrip(t *testing.T) {
	src := NewBufferMap(100, 128)
	src.Set(100)
	src.Set(177)
	src.Set(227)
	base, bits := src.Snapshot()

	dst := NewBufferMap(0, 128)
	dst.Set(5) // pre-existing state must be fully replaced
	dst.LoadSnapshot(base, bits)
	if dst.Base() != 100 {
		t.Fatalf("base = %d", dst.Base())
	}
	for id := ChunkID(100); id < 228; id++ {
		if dst.Has(id) != src.Has(id) {
			t.Fatalf("divergence at %d", id)
		}
	}
	if dst.Has(5) {
		t.Error("old contents survived LoadSnapshot")
	}
	if dst.Count() != 3 {
		t.Errorf("Count = %d, want 3", dst.Count())
	}
}

func TestLoadSnapshotWidthMismatchPanics(t *testing.T) {
	m := NewBufferMap(0, 128)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch should panic")
		}
	}()
	m.LoadSnapshot(0, make([]uint64, 1))
}

func TestLoadSnapshotClearsTailBits(t *testing.T) {
	// A malicious/corrupt snapshot with bits beyond the window must not
	// leak into Has/Count.
	m := NewBufferMap(0, 70) // 2 words, 58 tail bits unused
	bits := []uint64{0, ^uint64(0)}
	m.LoadSnapshot(0, bits)
	if m.Count() != 6 { // only bits 64..69 are in-window
		t.Errorf("Count = %d, want 6", m.Count())
	}
	if m.Has(70) || m.Has(100) {
		t.Error("out-of-window bits visible")
	}
}
