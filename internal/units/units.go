// Package units provides the small value types shared by every layer of the
// simulator: bit rates, byte sizes and the conversions between them and
// simulated time.
//
// Keeping these as distinct named types (rather than bare int64) catches the
// classic bandwidth-arithmetic mistakes — mixing bits with bytes, or rates
// with volumes — at compile time, which matters in a codebase whose whole
// point is inferring link capacity from packet spacing.
package units

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// BitRate is a link or stream rate in bits per second.
type BitRate int64

// Common bit-rate scales. The paper quotes all rates in kbit/s and Mbit/s
// (decimal, as ISPs do), so these use powers of ten.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// ByteSize is a data volume in bytes.
type ByteSize int64

// Common byte-size scales (decimal, matching the rate scales so that
// rate×time → volume round-trips exactly).
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
)

// Bits reports the volume in bits.
func (s ByteSize) Bits() int64 { return int64(s) * 8 }

// String renders the size with a human-readable suffix.
func (s ByteSize) String() string {
	switch {
	case s >= GB:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(GB))
	case s >= MB:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(MB))
	case s >= KB:
		return fmt.Sprintf("%.2fKB", float64(s)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(s))
}

// String renders the rate with a human-readable suffix.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	}
	return fmt.Sprintf("%dbps", int64(r))
}

// Kilobits reports the rate in kbit/s as a float, the unit used by every
// table in the paper.
func (r BitRate) Kilobits() float64 { return float64(r) / float64(Kbps) }

// TransmitTime reports how long a link at rate r needs to serialize size
// bytes. A zero or negative rate yields an infinite-like maximal duration so
// that a misconfigured link blocks visibly instead of dividing by zero.
func (r BitRate) TransmitTime(size ByteSize) time.Duration {
	if r <= 0 {
		return time.Duration(1<<62 - 1)
	}
	bits := size.Bits()
	// duration = bits / rate seconds; compute in nanoseconds without
	// overflowing for any realistic size (up to ~1 EB at 1 bps).
	sec := bits / int64(r)
	rem := bits % int64(r)
	ns := sec*int64(time.Second) + rem*int64(time.Second)/int64(r)
	return time.Duration(ns)
}

// BytesIn reports how many whole bytes a link at rate r delivers in d.
func (r BitRate) BytesIn(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	bits := int64(r) * int64(d) / int64(time.Second)
	return ByteSize(bits / 8)
}

// RateOf reports the average rate that moved size bytes in d.
func RateOf(size ByteSize, d time.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(size.Bits() * int64(time.Second) / int64(d))
}

var errBadRate = errors.New("units: malformed bit rate")

// ParseBitRate parses strings such as "384kbps", "6Mbps", "512 kbps",
// "10mbit", "0.384Mbps" and plain integers (taken as bit/s). It accepts the
// loose spellings that appear in testbed inventories.
func ParseBitRate(s string) (BitRate, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, errBadRate
	}
	mult := BitRate(1)
	for _, suf := range []struct {
		text string
		m    BitRate
	}{
		{"gbps", Gbps}, {"gbit/s", Gbps}, {"gbit", Gbps}, {"g", Gbps},
		{"mbps", Mbps}, {"mbit/s", Mbps}, {"mbit", Mbps}, {"m", Mbps},
		{"kbps", Kbps}, {"kbit/s", Kbps}, {"kbit", Kbps}, {"k", Kbps},
		{"bps", BitPerSecond},
	} {
		if strings.HasSuffix(t, suf.text) {
			mult = suf.m
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.text))
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%w: %q", errBadRate, s)
	}
	return BitRate(v * float64(mult)), nil
}

// MustBitRate is ParseBitRate for static tables; it panics on bad input.
func MustBitRate(s string) BitRate {
	r, err := ParseBitRate(s)
	if err != nil {
		panic(err)
	}
	return r
}

// AccessSpec describes an asymmetric access link the way the paper's
// Table I does: "6/0.512" means 6 Mbit/s down, 0.512 Mbit/s up.
type AccessSpec struct {
	Down BitRate
	Up   BitRate
}

// ParseAccessSpec parses "down/up" with both values in Mbit/s, the notation
// used throughout Table I (e.g. "6/0.512", "22/1.8", "2.5/0.384").
func ParseAccessSpec(s string) (AccessSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), "/")
	if len(parts) != 2 {
		return AccessSpec{}, fmt.Errorf("units: access spec %q: want down/up", s)
	}
	down, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || down <= 0 {
		return AccessSpec{}, fmt.Errorf("units: access spec %q: bad downlink", s)
	}
	up, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil || up <= 0 {
		return AccessSpec{}, fmt.Errorf("units: access spec %q: bad uplink", s)
	}
	return AccessSpec{
		Down: BitRate(down * float64(Mbps)),
		Up:   BitRate(up * float64(Mbps)),
	}, nil
}

// MustAccessSpec is ParseAccessSpec for static tables; it panics on bad input.
func MustAccessSpec(s string) AccessSpec {
	a, err := ParseAccessSpec(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the spec in Table I notation.
func (a AccessSpec) String() string {
	return fmt.Sprintf("%g/%g", float64(a.Down)/float64(Mbps), float64(a.Up)/float64(Mbps))
}

// Symmetric builds an access spec with equal up and down capacity, the shape
// of the institutional "high-bw" LAN attachments in Table I.
func Symmetric(r BitRate) AccessSpec { return AccessSpec{Down: r, Up: r} }
