package units

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTransmitTimeKnownValues(t *testing.T) {
	cases := []struct {
		rate BitRate
		size ByteSize
		want time.Duration
	}{
		// The calibration point from §III-B of the paper: a 1250-byte
		// packet on a 10 Mbit/s link serializes in exactly 1 ms.
		{10 * Mbps, 1250 * Byte, time.Millisecond},
		{100 * Mbps, 1250 * Byte, 100 * time.Microsecond},
		{384 * Kbps, 48 * KB, time.Second},
		{1 * Mbps, 125 * KB, time.Second},
		{512 * Kbps, 1250 * Byte, 19531250 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := c.rate.TransmitTime(c.size); got != c.want {
			t.Errorf("TransmitTime(%v, %v) = %v, want %v", c.rate, c.size, got, c.want)
		}
	}
}

func TestTransmitTimeZeroRate(t *testing.T) {
	if got := BitRate(0).TransmitTime(KB); got < time.Hour {
		t.Errorf("zero rate should yield effectively infinite time, got %v", got)
	}
	if got := BitRate(-5).TransmitTime(KB); got < time.Hour {
		t.Errorf("negative rate should yield effectively infinite time, got %v", got)
	}
}

func TestBytesIn(t *testing.T) {
	if got := (384 * Kbps).BytesIn(time.Second); got != 48*KB {
		t.Errorf("384kbps over 1s = %v, want 48KB", got)
	}
	if got := (10 * Mbps).BytesIn(time.Millisecond); got != 1250*Byte {
		t.Errorf("10Mbps over 1ms = %v, want 1250B", got)
	}
	if got := (10 * Mbps).BytesIn(-time.Second); got != 0 {
		t.Errorf("negative duration should give 0, got %v", got)
	}
	if got := BitRate(0).BytesIn(time.Second); got != 0 {
		t.Errorf("zero rate should give 0, got %v", got)
	}
}

func TestRateOf(t *testing.T) {
	if got := RateOf(48*KB, time.Second); got != 384*Kbps {
		t.Errorf("RateOf(48KB, 1s) = %v, want 384kbps", got)
	}
	if got := RateOf(KB, 0); got != 0 {
		t.Errorf("RateOf with zero duration = %v, want 0", got)
	}
}

// Round trip: for rates and sizes in the simulator's realistic envelope,
// transmitting for TransmitTime(size) delivers size bytes back (within the
// one-byte truncation of integer arithmetic).
func TestTransmitRoundTripProperty(t *testing.T) {
	f := func(rateKbps uint16, sizeKB uint16) bool {
		rate := BitRate(int64(rateKbps)+1) * Kbps
		size := ByteSize(int64(sizeKB)+1) * KB
		d := rate.TransmitTime(size)
		back := rate.BytesIn(d)
		diff := int64(size) - int64(back)
		return diff >= 0 && diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TransmitTime is monotone in size and antitone in rate.
func TestTransmitTimeMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := BitRate(rng.Int63n(int64(Gbps))) + Kbps
		s1 := ByteSize(rng.Int63n(int64(MB))) + 1
		s2 := s1 + ByteSize(rng.Int63n(int64(MB)))
		if r.TransmitTime(s1) > r.TransmitTime(s2) {
			t.Fatalf("TransmitTime not monotone in size: r=%v s1=%v s2=%v", r, s1, s2)
		}
		r2 := r + BitRate(rng.Int63n(int64(Mbps)))
		if r2.TransmitTime(s1) > r.TransmitTime(s1) {
			t.Fatalf("TransmitTime not antitone in rate: r=%v r2=%v s=%v", r, r2, s1)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
	}{
		{"384kbps", 384 * Kbps},
		{"384 kbps", 384 * Kbps},
		{"384Kbit/s", 384 * Kbps},
		{"10Mbps", 10 * Mbps},
		{"10m", 10 * Mbps},
		{"0.512Mbps", 512 * Kbps},
		{"1.8M", 1800 * Kbps},
		{"1g", Gbps},
		{"1000", 1000 * BitPerSecond},
		{"250bps", 250 * BitPerSecond},
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if err != nil {
			t.Errorf("ParseBitRate(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBitRate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseBitRateErrors(t *testing.T) {
	for _, in := range []string{"", "fast", "-3Mbps", "..k", "Mbps"} {
		if _, err := ParseBitRate(in); err == nil {
			t.Errorf("ParseBitRate(%q) should fail", in)
		}
	}
}

func TestMustBitRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBitRate should panic on bad input")
		}
	}()
	MustBitRate("not-a-rate")
}

func TestParseAccessSpec(t *testing.T) {
	// Every access spec that appears in Table I of the paper.
	cases := []struct {
		in       string
		down, up BitRate
	}{
		{"6/0.512", 6 * Mbps, 512 * Kbps},
		{"4/0.384", 4 * Mbps, 384 * Kbps},
		{"8/0.384", 8 * Mbps, 384 * Kbps},
		{"22/1.8", 22 * Mbps, 1800 * Kbps},
		{"2.5/0.384", 2500 * Kbps, 384 * Kbps},
	}
	for _, c := range cases {
		got, err := ParseAccessSpec(c.in)
		if err != nil {
			t.Errorf("ParseAccessSpec(%q) error: %v", c.in, err)
			continue
		}
		if got.Down != c.down || got.Up != c.up {
			t.Errorf("ParseAccessSpec(%q) = %v/%v, want %v/%v", c.in, got.Down, got.Up, c.down, c.up)
		}
	}
}

func TestParseAccessSpecErrors(t *testing.T) {
	for _, in := range []string{"", "6", "6/", "/0.5", "6/0/5", "a/b", "0/1", "1/0", "-1/1"} {
		if _, err := ParseAccessSpec(in); err == nil {
			t.Errorf("ParseAccessSpec(%q) should fail", in)
		}
	}
}

func TestAccessSpecString(t *testing.T) {
	a := MustAccessSpec("6/0.512")
	if got := a.String(); got != "6/0.512" {
		t.Errorf("String() = %q, want 6/0.512", got)
	}
}

func TestSymmetric(t *testing.T) {
	a := Symmetric(100 * Mbps)
	if a.Up != a.Down || a.Up != 100*Mbps {
		t.Errorf("Symmetric(100Mbps) = %+v", a)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   string
		rate BitRate
	}{
		{"384.00Kbps", 384 * Kbps},
		{"10.00Mbps", 10 * Mbps},
		{"1.00Gbps", Gbps},
		{"12bps", 12},
	}
	for _, c := range cases {
		if got := c.rate.String(); got != c.in {
			t.Errorf("String() = %q, want %q", got, c.in)
		}
	}
	sizes := []struct {
		want string
		size ByteSize
	}{
		{"48.00KB", 48 * KB},
		{"3.00MB", 3 * MB},
		{"2.50GB", 2500 * MB},
		{"999B", 999},
	}
	for _, c := range sizes {
		if got := c.size.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKilobits(t *testing.T) {
	if got := (384 * Kbps).Kilobits(); got != 384 {
		t.Errorf("Kilobits() = %v, want 384", got)
	}
}
