// Package analysis performs the paper's offline trace inference: it reduces
// a probe's packet-level capture to per-peer aggregates and derives, from
// passively observable fields only, everything the core framework needs —
// video byte ledgers (contributor heuristic of [14]), minimum inter-packet
// gaps inside video trains (the §III-B packet-pair bandwidth estimator) and
// router-hop counts from received TTLs.
//
// The ground-truth Kind annotation present in records is deliberately not
// consulted: video packets are recognized by size, exactly as a real trace
// analysis must. Tests validate the size heuristic against the annotation.
package analysis

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"napawine/internal/core"
	"napawine/internal/packet"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// Config tunes the passive heuristics.
type Config struct {
	// VideoSizeFloor: packets at least this large are treated as video
	// payload. Control traffic (buffer maps, requests, keepalives,
	// bounded peer-exchange lists) stays below it; chunk-train packets
	// are full MTU except the final fragment.
	VideoSizeFloor units.ByteSize
	// FullPacket is the packet-pair probe size: IPG is measured between
	// consecutive inbound packets of at least this size, so the gap
	// equals a full packet's serialization time at the bottleneck.
	FullPacket units.ByteSize
}

// DefaultConfig matches the paper's setup (1250-byte packets, 1 ms ⇔
// 10 Mbit/s calibration).
func DefaultConfig() Config {
	return Config{VideoSizeFloor: 1000, FullPacket: 1250}
}

// PeerAggregate accumulates one remote peer's traffic as seen at the probe.
type PeerAggregate struct {
	VideoUp, VideoDown int64 // video payload bytes by direction
	TotalUp, TotalDown int64 // all bytes by direction
	VideoPktsUp        int
	VideoPktsDown      int

	// MinIPG is the packet-pair estimate; zero until two consecutive
	// full-size inbound video packets have been seen.
	MinIPG time.Duration
	// MaxTTL over received packets; hop count = 128 − MaxTTL (the
	// largest TTL corresponds to the fewest hops and is the most direct
	// observation of the path).
	MaxTTL   uint8
	Received bool

	lastFull sim.Time
	hasFull  bool
}

// Hops reports the inferred hop count, −1 when nothing was received.
func (p *PeerAggregate) Hops() int {
	if !p.Received {
		return -1
	}
	return packet.InitialTTL - int(p.MaxTTL)
}

// Aggregator consumes a probe's records and maintains per-peer aggregates.
// It implements sniffer.Consumer, so it can run live during a simulation or
// be fed from a stored trace with identical results.
type Aggregator struct {
	probe netip.Addr
	cfg   Config
	peers map[netip.Addr]*PeerAggregate
	count uint64
}

// New builds an aggregator for the given probe address.
func New(probe netip.Addr, cfg Config) *Aggregator {
	if cfg.VideoSizeFloor <= 0 || cfg.FullPacket < cfg.VideoSizeFloor {
		panic(fmt.Sprintf("analysis: bad config %+v", cfg))
	}
	return &Aggregator{probe: probe, cfg: cfg, peers: make(map[netip.Addr]*PeerAggregate)}
}

// Probe reports the probe address.
func (a *Aggregator) Probe() netip.Addr { return a.probe }

// Records reports how many records were consumed.
func (a *Aggregator) Records() uint64 { return a.count }

// PeerCount reports how many distinct remote peers were observed — the
// paper's "all peers" population for this probe.
func (a *Aggregator) PeerCount() int { return len(a.peers) }

// Peer returns the aggregate for one remote address, nil when never seen.
func (a *Aggregator) Peer(remote netip.Addr) *PeerAggregate { return a.peers[remote] }

// PeerAddrs returns every observed remote address, sorted by descending
// total video bytes (then by address for determinism). Tools use this to
// list top contributors.
func (a *Aggregator) PeerAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(a.peers))
	for addr := range a.peers {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool {
		vi := a.peers[out[i]].VideoDown + a.peers[out[i]].VideoUp
		vj := a.peers[out[j]].VideoDown + a.peers[out[j]].VideoUp
		if vi != vj {
			return vi > vj
		}
		return out[i].Less(out[j])
	})
	return out
}

// Consume folds one record into the aggregates.
func (a *Aggregator) Consume(r packet.Record) {
	remote, inbound := sniffer.Remote(r, a.probe)
	agg := a.peers[remote]
	if agg == nil {
		agg = &PeerAggregate{}
		a.peers[remote] = agg
	}
	a.count++
	size := int64(r.Size)
	isVideo := r.Size >= a.cfg.VideoSizeFloor
	if inbound {
		agg.TotalDown += size
		agg.Received = true
		if r.TTL > agg.MaxTTL {
			agg.MaxTTL = r.TTL
		}
		if isVideo {
			agg.VideoDown += size
			agg.VideoPktsDown++
			if r.Size >= a.cfg.FullPacket {
				if agg.hasFull {
					gap := r.TS.Sub(agg.lastFull)
					if gap > 0 && (agg.MinIPG == 0 || gap < agg.MinIPG) {
						agg.MinIPG = gap
					}
				}
				agg.hasFull = true
				agg.lastFull = r.TS
			}
		}
	} else {
		agg.TotalUp += size
		if isVideo {
			agg.VideoUp += size
			agg.VideoPktsUp++
		}
	}
}

// Locator resolves an address to its location facts — in production the
// registry built into the synthetic topology, in the real world a
// whois/GeoIP database.
type Locator interface {
	Locate(netip.Addr) (topology.Host, bool)
}

// Observations converts the aggregates into framework observations,
// resolving locality against loc and marking probe-set membership from
// probeSet. Peers the locator cannot place are skipped and counted in the
// second return value (real traces always contain a few unmappable
// addresses; silently mixing them into a partition would bias it).
func (a *Aggregator) Observations(loc Locator, probeSet map[netip.Addr]bool) ([]core.Observation, int) {
	probeHost, ok := loc.Locate(a.probe)
	if !ok {
		// A probe outside the registry is a setup bug, not data noise.
		panic(fmt.Sprintf("analysis: probe %v not in registry", a.probe))
	}
	obs := make([]core.Observation, 0, len(a.peers))
	unlocated := 0
	for remote, agg := range a.peers {
		h, ok := loc.Locate(remote)
		if !ok {
			unlocated++
			continue
		}
		obs = append(obs, core.Observation{
			Probe:       a.probe,
			Peer:        remote,
			VideoUp:     agg.VideoUp,
			VideoDown:   agg.VideoDown,
			TotalUp:     agg.TotalUp,
			TotalDown:   agg.TotalDown,
			MinIPG:      agg.MinIPG,
			Hops:        agg.Hops(),
			SameAS:      h.AS == probeHost.AS,
			SameCC:      h.Country == probeHost.Country,
			SameSubnet:  h.Subnet == probeHost.Subnet,
			PeerIsProbe: probeSet[remote],
		})
	}
	return obs, unlocated
}

// FromTrace replays a stored binary trace through a fresh aggregator —
// the paper's actual workflow (capture during the experiment, analyze
// offline). The trace's own header determines the probe address.
func FromTrace(r *packet.Reader, cfg Config) (*Aggregator, error) {
	a := New(r.Probe(), cfg)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return a, nil
		}
		if err != nil {
			return nil, err
		}
		a.Consume(rec)
	}
}
