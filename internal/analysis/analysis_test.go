package analysis

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"napawine/internal/access"
	"napawine/internal/core"
	"napawine/internal/packet"
	"napawine/internal/sim"
	"napawine/internal/topology"
	"napawine/internal/units"
)

var (
	probeAddr = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	peerX     = netip.AddrFrom4([4]byte{10, 0, 1, 1})
	peerY     = netip.AddrFrom4([4]byte{10, 0, 2, 1})
)

func vid(ts int64, src, dst netip.Addr, size units.ByteSize, ttl uint8) packet.Record {
	return packet.Record{TS: sim.Time(ts), Src: src, Dst: dst, Size: size, TTL: ttl, Kind: packet.Video}
}

func sig(ts int64, src, dst netip.Addr, size units.ByteSize, ttl uint8) packet.Record {
	return packet.Record{TS: sim.Time(ts), Src: src, Dst: dst, Size: size, TTL: ttl, Kind: packet.Signaling}
}

func TestAggregationByDirectionAndSize(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	a.Consume(vid(1000, peerX, probeAddr, 1250, 110)) // video in
	a.Consume(vid(2000, peerX, probeAddr, 1250, 110)) // video in
	a.Consume(vid(3000, probeAddr, peerX, 1250, 128)) // video out
	a.Consume(sig(4000, peerX, probeAddr, 80, 110))   // signaling in
	a.Consume(sig(5000, probeAddr, peerX, 60, 128))   // signaling out

	agg := a.Peer(peerX)
	if agg == nil {
		t.Fatal("peer never aggregated")
	}
	if agg.VideoDown != 2500 || agg.VideoUp != 1250 {
		t.Errorf("video bytes = %d/%d", agg.VideoDown, agg.VideoUp)
	}
	if agg.TotalDown != 2580 || agg.TotalUp != 1310 {
		t.Errorf("total bytes = %d/%d", agg.TotalDown, agg.TotalUp)
	}
	if agg.VideoPktsDown != 2 || agg.VideoPktsUp != 1 {
		t.Errorf("video pkts = %d/%d", agg.VideoPktsDown, agg.VideoPktsUp)
	}
	if a.PeerCount() != 1 || a.Records() != 5 {
		t.Errorf("counters: peers=%d records=%d", a.PeerCount(), a.Records())
	}
}

func TestSizeHeuristicIgnoresKindAnnotation(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	// A 1250-byte packet annotated Signaling still counts as video (the
	// analysis must be passive); an 80-byte packet annotated Video does
	// not.
	a.Consume(sig(1000, peerX, probeAddr, 1250, 110))
	a.Consume(vid(2000, peerX, probeAddr, 80, 110))
	agg := a.Peer(peerX)
	if agg.VideoDown != 1250 {
		t.Errorf("VideoDown = %d, want 1250 (size-based)", agg.VideoDown)
	}
}

func TestMinIPGMeasurement(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	base := int64(time.Second)
	ms := int64(time.Millisecond)
	// Train 1: gaps 5ms, 3ms. Train 2 (much later): gap 0.4ms.
	for i, off := range []int64{0, 5 * ms, 8 * ms} {
		_ = i
		a.Consume(vid(base+off, peerX, probeAddr, 1250, 110))
	}
	a.Consume(vid(base+int64(10*time.Second), peerX, probeAddr, 1250, 110))
	a.Consume(vid(base+int64(10*time.Second)+4*ms/10, peerX, probeAddr, 1250, 110))

	if got := a.Peer(peerX).MinIPG; got != 400*time.Microsecond {
		t.Errorf("MinIPG = %v, want 400µs", got)
	}
}

func TestMinIPGIgnoresShortAndOutboundPackets(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	base := int64(time.Second)
	a.Consume(vid(base, peerX, probeAddr, 1250, 110))
	// Short final fragment arrives 0.1ms later: must not shrink the IPG.
	a.Consume(vid(base+int64(100*time.Microsecond), peerX, probeAddr, 500, 110))
	// Outbound full-size packets must not contribute either.
	a.Consume(vid(base+int64(200*time.Microsecond), probeAddr, peerX, 1250, 128))
	a.Consume(vid(base+int64(5*time.Millisecond), peerX, probeAddr, 1250, 110))
	// The gap is measured between the two full-size inbound packets at
	// base and base+5ms; the short fragment and the outbound packet must
	// not move the train cursor.
	if got := a.Peer(peerX).MinIPG; got != 5*time.Millisecond {
		t.Errorf("MinIPG = %v, want 5ms", got)
	}
}

func TestMinIPGUnmeasurableWithSingleTrainPacket(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	a.Consume(vid(1000, peerX, probeAddr, 1250, 110))
	if got := a.Peer(peerX).MinIPG; got != 0 {
		t.Errorf("single packet should leave IPG unmeasured, got %v", got)
	}
}

func TestHopsFromTTL(t *testing.T) {
	a := New(probeAddr, DefaultConfig())
	a.Consume(sig(1000, peerX, probeAddr, 80, 109)) // 19 hops
	a.Consume(sig(2000, peerX, probeAddr, 80, 111)) // 17 hops — max TTL wins
	if got := a.Peer(peerX).Hops(); got != 17 {
		t.Errorf("Hops = %d, want 17 (from max TTL)", got)
	}
	// A peer we only send to has no hop estimate.
	a.Consume(sig(3000, probeAddr, peerY, 80, 128))
	if got := a.Peer(peerY).Hops(); got != -1 {
		t.Errorf("send-only peer Hops = %d, want -1", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config should panic")
		}
	}()
	New(probeAddr, Config{VideoSizeFloor: 0, FullPacket: 1250})
}

// buildTinyTopo gives a registry with the probe, a same-AS peer and a
// remote peer.
func buildTinyTopo(t *testing.T) (*topology.Topology, topology.Host, topology.Host, topology.Host) {
	t.Helper()
	b := topology.NewBuilder(3)
	b.AddCountry("IT", topology.Europe)
	b.AddCountry("CN", topology.Asia)
	itAS := b.AddAS("IT")
	cnAS := b.AddAS("CN")
	itSub1 := b.AddSubnet(itAS)
	itSub2 := b.AddSubnet(itAS)
	cnSub := b.AddSubnet(cnAS)
	topo := b.Build()
	probe, err := topo.NewHost(itSub1)
	if err != nil {
		t.Fatal(err)
	}
	sameAS, err := topo.NewHost(itSub2)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := topo.NewHost(cnSub)
	if err != nil {
		t.Fatal(err)
	}
	return topo, probe, sameAS, remote
}

func TestObservations(t *testing.T) {
	topo, probe, sameAS, remote := buildTinyTopo(t)
	a := New(probe.Addr, DefaultConfig())
	ttlSame := uint8(128 - topo.HopCount(probe, sameAS))
	ttlRemote := uint8(128 - topo.HopCount(probe, remote))
	a.Consume(vid(1000, sameAS.Addr, probe.Addr, 1250, ttlSame))
	a.Consume(vid(int64(time.Millisecond)+1000, sameAS.Addr, probe.Addr, 1250, ttlSame))
	a.Consume(vid(2000, remote.Addr, probe.Addr, 1250, ttlRemote))

	probeSet := map[netip.Addr]bool{probe.Addr: true, sameAS.Addr: true}
	obs, unlocated := a.Observations(topo, probeSet)
	if unlocated != 0 {
		t.Fatalf("unlocated = %d", unlocated)
	}
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	byPeer := map[netip.Addr]core.Observation{}
	for _, o := range obs {
		byPeer[o.Peer] = o
	}
	so := byPeer[sameAS.Addr]
	if !so.SameAS || !so.SameCC || so.SameSubnet {
		t.Errorf("same-AS observation wrong: %+v", so)
	}
	if !so.PeerIsProbe {
		t.Error("probe-set membership lost")
	}
	if so.Hops != topo.HopCount(probe, sameAS) {
		t.Errorf("hops = %d, want %d", so.Hops, topo.HopCount(probe, sameAS))
	}
	ro := byPeer[remote.Addr]
	if ro.SameAS || ro.SameCC || ro.PeerIsProbe {
		t.Errorf("remote observation wrong: %+v", ro)
	}
}

func TestObservationsSkipsUnlocatable(t *testing.T) {
	topo, probe, _, _ := buildTinyTopo(t)
	a := New(probe.Addr, DefaultConfig())
	alien := netip.AddrFrom4([4]byte{192, 0, 2, 9})
	a.Consume(sig(1000, alien, probe.Addr, 80, 100))
	obs, unlocated := a.Observations(topo, nil)
	if len(obs) != 0 || unlocated != 1 {
		t.Errorf("obs=%d unlocated=%d, want 0/1", len(obs), unlocated)
	}
}

func TestObservationsUnknownProbePanics(t *testing.T) {
	topo, _, _, _ := buildTinyTopo(t)
	a := New(netip.AddrFrom4([4]byte{192, 0, 2, 1}), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("unknown probe should panic")
		}
	}()
	a.Observations(topo, nil)
}

func TestFromTraceMatchesLiveAggregation(t *testing.T) {
	topo, probe, sameAS, remote := buildTinyTopo(t)
	_ = topo
	recs := []packet.Record{
		vid(1000, sameAS.Addr, probe.Addr, 1250, 115),
		vid(1000+int64(2*time.Millisecond), sameAS.Addr, probe.Addr, 1250, 115),
		sig(5000+int64(2*time.Millisecond), probe.Addr, remote.Addr, 80, 128),
		vid(9000+int64(4*time.Millisecond), remote.Addr, probe.Addr, 1250, 100),
	}
	live := New(probe.Addr, DefaultConfig())
	for _, r := range recs {
		live.Consume(r)
	}

	var buf bytes.Buffer
	w, err := packet.NewWriter(&buf, probe.Addr, "replay-test")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := packet.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := FromTrace(rd, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.PeerCount() != live.PeerCount() || replayed.Records() != live.Records() {
		t.Fatal("replay diverged from live aggregation")
	}
	for _, addr := range []netip.Addr{sameAS.Addr, remote.Addr} {
		a, b := live.Peer(addr), replayed.Peer(addr)
		if a.VideoDown != b.VideoDown || a.MinIPG != b.MinIPG || a.MaxTTL != b.MaxTTL ||
			a.TotalUp != b.TotalUp {
			t.Errorf("peer %v aggregates diverge: %+v vs %+v", addr, a, b)
		}
	}
}

// End-to-end inference check: the min-IPG classifier applied to a real
// access.Train must recover the ground-truth link class.
func TestIPGClassifierAgainstTrainGroundTruth(t *testing.T) {
	cases := []struct {
		name   string
		up     units.BitRate
		highBw bool
	}{
		{"LAN100", 100 * units.Mbps, true},
		{"LAN20", 20 * units.Mbps, true},
		{"DSL-512k", 512 * units.Kbps, false},
		{"DSL-1.8M", 1800 * units.Kbps, false},
	}
	for _, c := range cases {
		a := New(probeAddr, DefaultConfig())
		sizes := access.Packetize(48 * units.KB)
		_, arrives := access.Train(sim.Time(time.Second), sizes, c.up,
			100*units.Mbps, 40*time.Millisecond, nil, 0)
		for i, at := range arrives {
			a.Consume(vid(int64(at), peerX, probeAddr, sizes[i], 108))
		}
		obs := core.Observation{MinIPG: a.Peer(peerX).MinIPG}
		pref, ok := core.NewBWClassifier().Classify(obs)
		if !ok {
			t.Fatalf("%s: unmeasurable", c.name)
		}
		if pref != c.highBw {
			t.Errorf("%s: classified high-bw=%v, truth %v (IPG %v)",
				c.name, pref, c.highBw, a.Peer(peerX).MinIPG)
		}
	}
}

func BenchmarkConsume(b *testing.B) {
	a := New(probeAddr, DefaultConfig())
	r := vid(0, peerX, probeAddr, 1250, 110)
	for i := 0; i < b.N; i++ {
		r.TS = sim.Time(i * 1000)
		a.Consume(r)
	}
}
