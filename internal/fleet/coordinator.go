package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// DefaultLeaseTTL is the lease window when CoordinatorConfig leaves it
// unset: generous enough that a worker heartbeating at TTL/3 survives a few
// dropped posts, short enough that a killed worker's cells requeue quickly.
const DefaultLeaseTTL = 30 * time.Second

// waitRetry is the poll delay suggested to workers when nothing is leasable
// right now (every cell leased or done, but the grid not yet complete).
const waitRetry = 500 * time.Millisecond

// Cell lifecycle at the coordinator.
const (
	statePending = iota
	stateLeased
	stateDone
)

// cellState tracks one grid cell through the lease protocol.
type cellState struct {
	state    int
	worker   string    // lease owner (stateLeased) or computing worker (stateDone)
	deadline time.Time // lease expiry (stateLeased)
	started  bool      // an OnRunStart was fanned for the current lease
	sum      experiment.Summary
}

// CoordinatorConfig parameterizes NewCoordinator.
type CoordinatorConfig struct {
	// Study is the grid to distribute. It must be encodable (the codec's
	// contract): a study carrying a programmatic variant Mutate cannot
	// travel to workers and is rejected.
	Study *study.Study
	// Addr is the listen address (host:port; port 0 picks a free one).
	Addr string
	// LeaseTTL is the lease window; 0 selects DefaultLeaseTTL. A cell
	// whose lease is not renewed (by heartbeat, event or result) within
	// the window returns to the queue.
	LeaseTTL time.Duration
	// SpoolDir, when non-empty, checkpoints every completed cell there and
	// restores already-completed cells on start — the -resume directory.
	SpoolDir string
	// Observers receive the same callbacks a local study.Run would issue,
	// with RunInfo.Worker attributing each cell to the worker that
	// computed it ("spool" for restored cells). Deliveries are
	// panic-isolated per observer, like study.Run's fan-out.
	Observers []study.Observer
	// Log, when non-nil, receives one line per fleet event (worker joins,
	// lease expiries, checkpoint restores). It must be safe for concurrent
	// use.
	Log func(format string, args ...any)
}

// Coordinator serves a study grid to fleet workers and fans their progress
// back into observers. Create with NewCoordinator, harvest with Wait, tear
// down with Close.
type Coordinator struct {
	st        *study.Study
	studyJSON []byte
	digest    string
	digests   []string // per-index cell digests
	infos     []study.RunInfo
	ttl       time.Duration
	spool     *spool
	observers []study.Observer
	log       func(format string, args ...any)

	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup

	mu        sync.Mutex
	cells     []cellState
	remaining int             // cells not yet done
	workers   map[string]bool // worker names seen, for join logging
	failErr   error           // first cell failure, by lowest grid index
	failIdx   int

	done   chan struct{} // closed when remaining hits 0
	failed chan struct{} // closed on the first cell failure
}

// NewCoordinator validates and digests the study, restores any spooled
// cells, binds the listener and starts serving leases. When a spool is
// configured the bound address is also written to SPOOL/addr so scripts can
// join workers to a port-0 coordinator.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Study == nil {
		return nil, fmt.Errorf("fleet: coordinator without a study")
	}
	var buf bytes.Buffer
	if err := study.Encode(&buf, cfg.Study); err != nil {
		return nil, err
	}
	digest, err := cfg.Study.Digest()
	if err != nil {
		return nil, err
	}
	infos, err := cfg.Study.RunInfos()
	if err != nil {
		return nil, err
	}
	digests, err := cellDigests(cfg.Study, digest)
	if err != nil {
		return nil, err
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	c := &Coordinator{
		st:        cfg.Study,
		studyJSON: buf.Bytes(),
		digest:    digest,
		digests:   digests,
		infos:     infos,
		ttl:       ttl,
		observers: cfg.Observers,
		log:       cfg.Log,
		cells:     make([]cellState, len(infos)),
		remaining: len(infos),
		workers:   make(map[string]bool),
		failIdx:   -1,
		done:      make(chan struct{}),
		failed:    make(chan struct{}),
	}
	if c.log == nil {
		c.log = func(string, ...any) {}
	}

	if cfg.SpoolDir != "" {
		sp, err := openSpool(cfg.SpoolDir, c.studyJSON)
		if err != nil {
			return nil, err
		}
		c.spool = sp
		recs, err := sp.load(digests)
		if err != nil {
			return nil, err
		}
		for idx, rec := range recs {
			c.cells[idx] = cellState{state: stateDone, worker: rec.Worker, sum: rec.Summary}
			c.remaining--
			info := c.attributed(idx, "spool")
			c.fanDone(info, rec.Summary, nil)
		}
		if len(recs) > 0 {
			c.log("fleet: restored %d/%d cells from spool %s", len(recs), len(infos), cfg.SpoolDir)
		}
		if c.remaining == 0 {
			close(c.done)
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	c.ln = ln
	if c.spool != nil {
		if err := c.spool.writeAddr(ln.Addr().String()); err != nil {
			ln.Close()
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/v1/study", c.handleStudy)
	mux.HandleFunc("POST /fleet/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/v1/event", c.handleEvent)
	mux.HandleFunc("POST /fleet/v1/result", c.handleResult)
	c.srv = &http.Server{Handler: mux}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = c.srv.Serve(ln)
	}()
	return c, nil
}

// Addr is the bound address, e.g. "127.0.0.1:43117" after ":0".
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Remaining reports how many cells are not yet completed.
func (c *Coordinator) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remaining
}

// Wait blocks until the grid completes, a cell fails, or ctx is done.
//
// The contract mirrors study.Run: a complete grid assembles and returns the
// full Result; a cell failure returns a nil Result with the first failing
// cell's error (in grid order); cancellation returns the partial Result —
// completed cells have Done set and well-formed summaries — alongside
// ctx.Err(). Workers still holding leases learn the outcome from their next
// lease request.
func (c *Coordinator) Wait(ctx context.Context) (*study.Result, error) {
	select {
	case <-c.done:
		return c.assemble()
	case <-c.failed:
		c.mu.Lock()
		err := c.failErr
		c.mu.Unlock()
		return nil, fmt.Errorf("study %s: %w", c.st.Name, err)
	case <-ctx.Done():
		res, aerr := c.assemble()
		if aerr != nil {
			return nil, aerr
		}
		return res, ctx.Err()
	}
}

// assemble builds the study Result from the completed cells.
func (c *Coordinator) assemble() (*study.Result, error) {
	c.mu.Lock()
	sums := make([]experiment.Summary, len(c.cells))
	done := make([]bool, len(c.cells))
	for i, cs := range c.cells {
		if cs.state == stateDone {
			sums[i], done[i] = cs.sum, true
		}
	}
	c.mu.Unlock()
	return study.NewResult(c.st, sums, done)
}

// Close stops serving: the listener and every open connection close, and
// the server goroutine is joined. In-flight workers see connection errors
// and redial until their retry budget runs out.
func (c *Coordinator) Close() error {
	err := c.srv.Close()
	c.wg.Wait()
	return err
}

// attributed returns cell idx's RunInfo with its execution attributed to
// worker.
func (c *Coordinator) attributed(idx int, worker string) study.RunInfo {
	info := c.infos[idx]
	info.Worker = worker
	return info
}

// fanEach delivers one callback to every observer, panic-isolated per
// observer exactly like study.Run's fan-out: a misbehaving dashboard must
// never take the coordinator down.
func (c *Coordinator) fanEach(call func(study.Observer)) {
	for _, obs := range c.observers {
		if obs == nil {
			continue
		}
		func() {
			defer func() { _ = recover() }()
			call(obs)
		}()
	}
}

func (c *Coordinator) fanStart(info study.RunInfo) {
	c.fanEach(func(o study.Observer) { o.OnRunStart(info) })
}

func (c *Coordinator) fanDone(info study.RunInfo, sum experiment.Summary, err error) {
	c.fanEach(func(o study.Observer) { o.OnRunDone(info, sum, err) })
}

func (c *Coordinator) fanSample(info study.RunInfo, s experiment.SeriesSample) {
	c.fanEach(func(o study.Observer) { o.OnSample(info, s) })
}

// reapLocked requeues every expired lease. Called with c.mu held, lazily
// from the lease path: expiry only matters when someone could pick the cell
// up again.
func (c *Coordinator) reapLocked(now time.Time) {
	for i := range c.cells {
		cs := &c.cells[i]
		if cs.state == stateLeased && now.After(cs.deadline) {
			c.log("fleet: lease on cell %d/%d (%s) from %s expired; requeued",
				i+1, len(c.cells), c.infos[i].Label(), cs.worker)
			*cs = cellState{state: statePending}
		}
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeInto parses one strict JSON request body.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleStudy(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, studyReply{Study: c.studyJSON, Digest: c.digest, LeaseTTLMs: c.ttl.Milliseconds()})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "lease request without a worker name", http.StatusBadRequest)
		return
	}
	now := time.Now()
	c.mu.Lock()
	if !c.workers[req.Worker] {
		c.workers[req.Worker] = true
		c.log("fleet: worker %s joined (%s)", req.Worker, r.RemoteAddr)
	}
	if c.failErr != nil {
		rep := leaseReply{Status: StatusFailed, Error: c.failErr.Error()}
		c.mu.Unlock()
		writeJSON(w, rep)
		return
	}
	if c.remaining == 0 {
		c.mu.Unlock()
		writeJSON(w, leaseReply{Status: StatusDone})
		return
	}
	c.reapLocked(now)
	for i := range c.cells {
		if c.cells[i].state != statePending {
			continue
		}
		c.cells[i] = cellState{state: stateLeased, worker: req.Worker, deadline: now.Add(c.ttl)}
		rep := leaseReply{Status: StatusLease, Index: i, Digest: c.digests[i], TTLMs: c.ttl.Milliseconds()}
		c.mu.Unlock()
		writeJSON(w, rep)
		return
	}
	c.mu.Unlock()
	writeJSON(w, leaseReply{Status: StatusWait, RetryMs: waitRetry.Milliseconds()})
}

// holdsLease reports whether worker currently owns a live lease on cell
// idx, renewing it when so. Called with c.mu held.
func (c *Coordinator) holdsLeaseLocked(idx int, worker string, now time.Time) bool {
	if idx < 0 || idx >= len(c.cells) {
		return false
	}
	cs := &c.cells[idx]
	if cs.state != stateLeased || cs.worker != worker || now.After(cs.deadline) {
		return false
	}
	cs.deadline = now.Add(c.ttl)
	return true
}

func (c *Coordinator) handleEvent(w http.ResponseWriter, r *http.Request) {
	var ev eventPost
	if !decodeInto(w, r, &ev) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	if !c.holdsLeaseLocked(ev.Index, ev.Worker, now) {
		c.mu.Unlock()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	var fan func()
	switch ev.Kind {
	case eventStart:
		c.cells[ev.Index].started = true
		info := c.attributed(ev.Index, ev.Worker)
		fan = func() { c.fanStart(info) }
	case eventSample:
		if ev.Sample == nil {
			c.mu.Unlock()
			http.Error(w, "sample event without a sample", http.StatusBadRequest)
			return
		}
		info := c.attributed(ev.Index, ev.Worker)
		s := *ev.Sample
		fan = func() { c.fanSample(info, s) }
	case eventRenew:
		// The deadline extension above is the whole effect.
	default:
		c.mu.Unlock()
		http.Error(w, fmt.Sprintf("unknown event kind %q", ev.Kind), http.StatusBadRequest)
		return
	}
	c.mu.Unlock()
	if fan != nil {
		fan()
	}
	writeJSON(w, okReply{OK: true})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var res resultPost
	if !decodeInto(w, r, &res) {
		return
	}
	if res.Index < 0 || res.Index >= len(c.cells) {
		http.Error(w, "cell index out of range", http.StatusBadRequest)
		return
	}
	if res.Digest != c.digests[res.Index] {
		http.Error(w, "cell digest mismatch (different study?)", http.StatusBadRequest)
		return
	}
	if res.Error == "" && res.Summary == nil {
		http.Error(w, "result without a summary or error", http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	if c.cells[res.Index].state == stateDone {
		// A worker that lost its lease mid-post, or a duplicate delivery:
		// cells are deterministic, so the summary already recorded is the
		// same one. Acknowledge idempotently.
		complete := c.remaining == 0
		c.mu.Unlock()
		writeJSON(w, okReply{OK: true, Done: complete})
		return
	}
	if res.Error != "" {
		info := c.attributed(res.Index, res.Worker)
		err := fmt.Errorf("%s: %s", info.Label(), res.Error)
		if c.failIdx == -1 || res.Index < c.failIdx {
			c.failIdx, c.failErr = res.Index, err
		}
		c.cells[res.Index] = cellState{state: statePending}
		first := c.failIdx == res.Index
		c.mu.Unlock()
		c.log("fleet: cell %d/%d (%s) failed on %s: %s", res.Index+1, len(c.cells), info.Label(), res.Worker, res.Error)
		c.fanDone(info, experiment.Summary{}, err)
		if first {
			// Close exactly once: the lowest-index race is settled under
			// the lock; only the holder of failIdx at unlock closes.
			select {
			case <-c.failed:
			default:
				close(c.failed)
			}
		}
		writeJSON(w, okReply{OK: true})
		return
	}
	c.cells[res.Index] = cellState{state: stateDone, worker: res.Worker, sum: *res.Summary}
	c.remaining--
	last := c.remaining == 0
	info := c.attributed(res.Index, res.Worker)
	c.mu.Unlock()

	if c.spool != nil {
		rec := cellRecord{
			Digest: res.Digest, Index: res.Index, Label: info.Label(),
			Worker: res.Worker, Summary: *res.Summary,
		}
		if err := c.spool.put(rec); err != nil {
			// The run can still finish in memory; the record is just not
			// resumable. Say so loudly.
			c.log("fleet: checkpoint for cell %d failed: %v", res.Index, err)
		}
	}
	c.fanDone(info, *res.Summary, nil)
	if last {
		close(c.done)
	}
	writeJSON(w, okReply{OK: true, Done: last})
}
