package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// The checkpoint spool is a directory of completed cells keyed by their
// canonical JSON digests:
//
//	DIR/study.json       the study being executed (study codec encoding)
//	DIR/addr             the coordinator's bound address (rewritten on start)
//	DIR/cells/<digest>.json  one record per completed cell
//
// study.json pins the spool to one exact study: a coordinator reopening the
// spool with a different study (any knob changed) fails loudly instead of
// resuming the wrong grid, because the cell digests are derived from the
// study digest and would never match. Records are written via temp-file +
// rename so a crash mid-write can never leave a half record that a resume
// would trust.

// cellRecord is one checkpointed cell: its digest (also its file name), its
// grid coordinate, the worker that computed it, and its summary.
type cellRecord struct {
	Digest string `json:"digest"`
	Index  int    `json:"index"`
	Label  string `json:"label"`
	Worker string `json:"worker"`

	Summary experiment.Summary `json:"summary"`
}

// spool is an open checkpoint directory.
type spool struct {
	dir string
}

// openSpool creates or reopens the spool at dir for the study encoded as
// studyJSON. A fresh directory is stamped with study.json; an existing one
// must carry byte-identical study bytes — anything else is a loud error,
// never a silent resume of a different study.
func openSpool(dir string, studyJSON []byte) (*spool, error) {
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("fleet: spool: %w", err)
	}
	stPath := filepath.Join(dir, "study.json")
	existing, err := os.ReadFile(stPath)
	switch {
	case err == nil:
		if !bytes.Equal(existing, studyJSON) {
			return nil, fmt.Errorf("fleet: spool %s holds a different study (study.json differs); point -resume at a fresh directory or rerun the original spec", dir)
		}
	case os.IsNotExist(err):
		if err := writeAtomic(stPath, studyJSON); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("fleet: spool: %w", err)
	}
	return &spool{dir: dir}, nil
}

// writeAddr records the coordinator's bound address, so scripts (and the CI
// smoke) can join workers to a coordinator that picked its own port.
func (s *spool) writeAddr(addr string) error {
	return writeAtomic(filepath.Join(s.dir, "addr"), []byte(addr+"\n"))
}

// load reads every checkpointed cell, verifying each record against the
// study's own cell digests: the file name, the recorded digest, and the
// digest derived from the record's index must all agree. digests is the
// per-index cell digest table. A record that matches no cell of this study
// is corruption, reported loudly.
func (s *spool) load(digests []string) (map[int]cellRecord, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "cells"))
	if err != nil {
		return nil, fmt.Errorf("fleet: spool: %w", err)
	}
	byDigest := make(map[string]int, len(digests))
	for i, d := range digests {
		byDigest[d] = i
	}
	recs := make(map[int]cellRecord)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			return nil, fmt.Errorf("fleet: spool: unexpected entry %s in cells/", name)
		}
		rec, err := readRecord(filepath.Join(s.dir, "cells", name))
		if err != nil {
			return nil, err
		}
		digest := strings.TrimSuffix(name, ".json")
		idx, known := byDigest[digest]
		if !known || rec.Digest != digest || rec.Index != idx {
			return nil, fmt.Errorf("fleet: spool: record %s does not belong to this study's grid", name)
		}
		recs[idx] = rec
	}
	return recs, nil
}

// put checkpoints one completed cell.
func (s *spool) put(rec cellRecord) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return writeAtomic(filepath.Join(s.dir, "cells", rec.Digest+".json"), append(b, '\n'))
}

// readRecord parses one cell record, strictly.
func readRecord(path string) (cellRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return cellRecord{}, fmt.Errorf("fleet: spool: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var rec cellRecord
	if err := dec.Decode(&rec); err != nil {
		return cellRecord{}, fmt.Errorf("fleet: spool: %s: %w", path, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return cellRecord{}, fmt.Errorf("fleet: spool: %s: trailing data", path)
	}
	return rec, nil
}

// writeAtomic writes b to path via a temp file and rename, so readers (and
// crash-interrupted writers) only ever observe whole files.
func writeAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: spool: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fleet: spool: %w", err)
	}
	return nil
}

// cellDigests computes the per-index digest table for a study.
func cellDigests(st *study.Study, studyDigest string) ([]string, error) {
	infos, err := st.RunInfos()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(infos))
	for i, info := range infos {
		out[i] = study.CellDigest(studyDigest, info)
	}
	return out, nil
}
