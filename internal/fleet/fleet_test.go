package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// fleetStudy is the test grid: one app, four seeds — four deterministic
// cells, each sub-second at this duration and scale.
func fleetStudy() *study.Study {
	return &study.Study{
		Name:       "fleet-test",
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{1, 2, 3, 4},
		Duration:   study.Duration(15 * time.Second),
		PeerFactor: 0.05,
	}
}

// renderTable pins a result to its presentation bytes — the fleet's
// byte-identical acceptance bar.
func renderTable(t *testing.T, res *study.Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := res.ComparisonTable().Render(&buf); err != nil {
		t.Fatalf("render table: %v", err)
	}
	return buf.String()
}

// renderSVGs pins the result's metric-bar artifacts (-svg-out's payload).
func renderSVGs(t *testing.T, res *study.Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, a := range res.MetricBars() {
		var buf bytes.Buffer
		if err := a.Chart.Render(&buf); err != nil {
			t.Fatalf("render %s: %v", a.Name, err)
		}
		out[a.Name] = buf.String()
	}
	return out
}

// obsRec is a concurrency-safe recording observer.
type obsRec struct {
	mu      sync.Mutex
	starts  []study.RunInfo
	dones   []study.RunInfo
	errs    map[int]error
	samples map[int][]experiment.SeriesSample
}

func newObsRec() *obsRec {
	return &obsRec{errs: map[int]error{}, samples: map[int][]experiment.SeriesSample{}}
}

func (o *obsRec) OnRunStart(info study.RunInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.starts = append(o.starts, info)
}

func (o *obsRec) OnRunDone(info study.RunInfo, _ experiment.Summary, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dones = append(o.dones, info)
	if err != nil {
		o.errs[info.Index] = err
	}
}

func (o *obsRec) OnSample(info study.RunInfo, s experiment.SeriesSample) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.samples[info.Index] = append(o.samples[info.Index], s)
}

// doneWorkers returns the set of workers attributed across OnRunDone.
func (o *obsRec) doneWorkers() map[string]int {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := map[string]int{}
	for _, info := range o.dones {
		m[info.Worker]++
	}
	return m
}

func TestWorkerBudget(t *testing.T) {
	cases := []struct {
		name                string
		workers             int
		explicit            bool
		shards, cores, want int
		wantErr             bool
	}{
		{"default no shards", 0, false, 1, 8, 8, false},
		{"explicit fits", 2, true, 1, 8, 2, false},
		{"default derated by shards", 0, false, 4, 8, 2, false},
		{"derating floors at one", 0, false, 8, 4, 1, false},
		{"explicit one always fine", 1, true, 8, 4, 1, false},
		{"explicit oversubscribes", 4, true, 4, 8, 0, true},
		{"explicit at the edge", 2, true, 4, 8, 2, false},
	}
	for _, c := range cases {
		got, err := WorkerBudget(c.workers, c.explicit, c.shards, c.cores)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: no error", c.name)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("%s: got %d, %v; want %d", c.name, got, err, c.want)
		}
	}
}

// TestFleetParityTwoWorkers is the tentpole's core acceptance: one
// coordinator plus two workers must produce a byte-identical comparison
// table and byte-identical metric SVGs versus a single-process study.Run.
func TestFleetParityTwoWorkers(t *testing.T) {
	st := fleetStudy()
	serial, err := study.Run(context.Background(), st)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	obs := newObsRec()
	coord, err := NewCoordinator(CoordinatorConfig{
		Study: st, Addr: "127.0.0.1:0", LeaseTTL: 10 * time.Second,
		Observers: []study.Observer{obs}, Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	for i := range werrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			werrs[i] = RunWorker(ctx, WorkerConfig{
				Addr: coord.Addr(), Name: fmt.Sprintf("w%d", i+1),
				Workers: 1, ExplicitWorkers: true, Log: t.Logf,
			})
		}(i)
	}
	res, err := coord.Wait(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, werr := range werrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}

	if got, want := renderTable(t, res), renderTable(t, serial); got != want {
		t.Fatalf("fleet table differs from serial run:\n%s\nvs\n%s", got, want)
	}
	if got, want := renderSVGs(t, res), renderSVGs(t, serial); !reflect.DeepEqual(got, want) {
		t.Fatal("fleet metric SVGs differ from serial run")
	}

	if len(obs.dones) != st.Runs() {
		t.Fatalf("observer saw %d completions over a %d-cell grid", len(obs.dones), st.Runs())
	}
	for worker := range obs.doneWorkers() {
		if worker != "w1" && worker != "w2" {
			t.Errorf("completion attributed to unknown worker %q", worker)
		}
	}
	if len(obs.starts) < st.Runs() {
		t.Errorf("observer saw %d starts over a %d-cell grid", len(obs.starts), st.Runs())
	}
}

// TestFleetStreamsSamples: a scenario cell's time-series buckets must fan
// into the coordinator's observers exactly as a local run streams them —
// this is what keeps the live dashboard working over a distributed run.
func TestFleetStreamsSamples(t *testing.T) {
	st := &study.Study{
		Name:       "fleet-samples",
		Apps:       []string{"TVAnts"},
		Scenarios:  []study.Scenario{{Name: "flashcrowd"}},
		Seeds:      []int64{1},
		Duration:   study.Duration(20 * time.Second),
		PeerFactor: 0.05,
	}
	serialObs := newObsRec()
	if _, err := study.Run(context.Background(), st, study.WithObserver(serialObs)); err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	fleetObs := newObsRec()
	coord, err := NewCoordinator(CoordinatorConfig{
		Study: st, Addr: "127.0.0.1:0", Observers: []study.Observer{fleetObs}, Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{Addr: coord.Addr(), Name: "w1", Workers: 1, ExplicitWorkers: true}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(serialObs.samples[0]) == 0 {
		t.Fatal("serial scenario run streamed no samples; test is vacuous")
	}
	if !reflect.DeepEqual(fleetObs.samples[0], serialObs.samples[0]) {
		t.Fatalf("fleet streamed %d samples, serial %d, or values differ",
			len(fleetObs.samples[0]), len(serialObs.samples[0]))
	}
}

// TestFleetWorkerDeathRequeues is the fault-injection satellite: a worker
// that dies after computing (but never reporting) a cell holds its lease to
// the grave; the lease expires, the cell requeues, a second worker finishes
// the grid, and the final table is still byte-identical to a serial run.
func TestFleetWorkerDeathRequeues(t *testing.T) {
	st := fleetStudy()
	serial, err := study.Run(context.Background(), st)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		Study: st, Addr: "127.0.0.1:0", LeaseTTL: 500 * time.Millisecond, Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Worker 1 reports its first cell, then "dies" mid-second-cell: the
	// cell is computed but the kill lands before the result posts, so the
	// coordinator only ever learns about it by lease expiry.
	killed := errors.New("simulated kill")
	var w1cells int
	w1err := RunWorker(ctx, WorkerConfig{
		Addr: coord.Addr(), Name: "w1", Workers: 1, ExplicitWorkers: true, Log: t.Logf,
		beforeResult: func(int) error {
			w1cells++
			if w1cells >= 2 {
				return killed
			}
			return nil
		},
	})
	if !errors.Is(w1err, killed) {
		t.Fatalf("worker 1 exited with %v, want the simulated kill", w1err)
	}
	if got := coord.Remaining(); got != 3 {
		t.Fatalf("%d cells remain after worker 1's death, want 3 (one reported, one died holding its lease)", got)
	}

	if err := RunWorker(ctx, WorkerConfig{Addr: coord.Addr(), Name: "w2", Workers: 1, ExplicitWorkers: true, Log: t.Logf}); err != nil {
		t.Fatalf("worker 2: %v", err)
	}
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got, want := renderTable(t, res), renderTable(t, serial); got != want {
		t.Fatalf("post-requeue table differs from serial run:\n%s\nvs\n%s", got, want)
	}
}

// postJSON drives the wire protocol directly for the handler-level tests.
func postJSON(t *testing.T, addr, path string, in any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/fleet/v1/"+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func leaseAs(t *testing.T, addr, worker string) leaseReply {
	t.Helper()
	resp, body := postJSON(t, addr, "lease", leaseRequest{Worker: worker})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease as %s: %s: %s", worker, resp.Status, body)
	}
	var rep leaseReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLeaseExpiryGoneAndIdempotentResult drives the protocol edge the
// fault-injection path depends on, without timing races: an expired lease
// requeues to the next asker, the evicted worker's events answer 410 Gone,
// and — because cells are deterministic — a late result from the evicted
// worker is accepted, with the duplicate acknowledged idempotently.
func TestLeaseExpiryGoneAndIdempotentResult(t *testing.T) {
	st := &study.Study{
		Name: "fleet-gone", Apps: []string{"TVAnts"}, Seeds: []int64{1},
		Duration: study.Duration(15 * time.Second), PeerFactor: 0.05,
	}
	coord, err := NewCoordinator(CoordinatorConfig{Study: st, Addr: "127.0.0.1:0", LeaseTTL: time.Hour, Log: t.Logf})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	addr := coord.Addr()

	repA := leaseAs(t, addr, "wA")
	if repA.Status != StatusLease || repA.Index != 0 {
		t.Fatalf("wA lease: %+v", repA)
	}
	if resp, body := postJSON(t, addr, "event", eventPost{Worker: "wA", Index: 0, Kind: "start"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("wA start while leased: %s: %s", resp.Status, body)
	}

	// Expire wA's lease by hand (same package), then hand the cell to wB.
	coord.mu.Lock()
	coord.cells[0].deadline = time.Now().Add(-time.Second)
	coord.mu.Unlock()
	if repB := leaseAs(t, addr, "wB"); repB.Status != StatusLease || repB.Index != 0 {
		t.Fatalf("wB did not inherit the expired cell: %+v", repB)
	}

	if resp, _ := postJSON(t, addr, "event", eventPost{Worker: "wA", Index: 0, Kind: "renew"}); resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted worker's event answered %s, want 410 Gone", resp.Status)
	}

	// wA finished the cell anyway; its result is the same bytes wB's would
	// be, so the coordinator takes it.
	sum, err := study.RunCell(context.Background(), st, 0, nil)
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	resp, body := postJSON(t, addr, "result", resultPost{Worker: "wA", Index: 0, Digest: repA.Digest, Summary: &sum})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late result rejected: %s: %s", resp.Status, body)
	}
	// This result completes the 1-cell grid, and the acknowledgement says
	// so — wA need not (and must not have to) lease again to learn it.
	var ack okReply
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.OK || !ack.Done {
		t.Fatalf("grid-completing result acknowledged %+v, want ok+done", ack)
	}
	// wB's duplicate delivery of the now-done cell is acknowledged, also
	// with the completion flag.
	resp, body = postJSON(t, addr, "result", resultPost{Worker: "wB", Index: 0, Digest: repA.Digest, Summary: &sum})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate result not idempotent: %s: %s", resp.Status, body)
	}
	ack = okReply{}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.OK || !ack.Done {
		t.Fatalf("duplicate result on a complete grid acknowledged %+v, want ok+done", ack)
	}
	if got := coord.Remaining(); got != 0 {
		t.Fatalf("%d cells remain after result (+duplicate), want 0", got)
	}
	if rep := leaseAs(t, addr, "wC"); rep.Status != StatusDone {
		t.Fatalf("post-completion lease answered %+v, want done", rep)
	}
	if _, err := coord.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestFleetCellErrorFailsStudy: a cell error reported by a worker fails the
// whole study — Wait returns it and later lease requests disband workers —
// mirroring a local study.Run's first-error semantics.
func TestFleetCellErrorFailsStudy(t *testing.T) {
	st := fleetStudy()
	coord, err := NewCoordinator(CoordinatorConfig{Study: st, Addr: "127.0.0.1:0", LeaseTTL: time.Hour, Log: t.Logf})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer coord.Close()
	addr := coord.Addr()

	rep := leaseAs(t, addr, "wA")
	if rep.Status != StatusLease {
		t.Fatalf("lease: %+v", rep)
	}
	if resp, body := postJSON(t, addr, "result", resultPost{Worker: "wA", Index: rep.Index, Digest: rep.Digest, Error: "disk on fire"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("error result: %s: %s", resp.Status, body)
	}
	if _, err := coord.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("Wait after cell error: %v", err)
	}
	if rep := leaseAs(t, addr, "wB"); rep.Status != StatusFailed || !strings.Contains(rep.Error, "disk on fire") {
		t.Fatalf("lease after failure answered %+v, want failed", rep)
	}
}

// TestFleetResume is the resume satellite: kill the coordinator with half
// the grid checkpointed, reopen the spool, and the restored cells must not
// recompute — the second phase runs exactly the missing cells and the final
// table is byte-identical to a serial run.
func TestFleetResume(t *testing.T) {
	st := fleetStudy()
	serial, err := study.Run(context.Background(), st)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	spoolDir := t.TempDir()

	// Phase 1: a serial worker reports two cells, then its process "dies"
	// (context cancelled); the coordinator goes down without completing.
	coord1, err := NewCoordinator(CoordinatorConfig{
		Study: st, Addr: "127.0.0.1:0", SpoolDir: spoolDir, LeaseTTL: time.Hour, Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("phase 1 NewCoordinator: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	var phase1 int
	_ = RunWorker(ctx1, WorkerConfig{
		Addr: coord1.Addr(), Name: "w1", Workers: 1, ExplicitWorkers: true, Log: t.Logf,
		onCellDone: func(int, error) {
			phase1++
			if phase1 >= 2 {
				cancel1()
			}
		},
	})
	cancel1()
	if err := coord1.Close(); err != nil {
		t.Fatalf("phase 1 Close: %v", err)
	}
	if phase1 != 2 {
		t.Fatalf("phase 1 completed %d cells, want 2", phase1)
	}

	// The spool must pin its study: resuming with any knob changed fails.
	other := fleetStudy()
	other.Seeds = []int64{1, 2, 3, 4, 5}
	if _, err := NewCoordinator(CoordinatorConfig{Study: other, Addr: "127.0.0.1:0", SpoolDir: spoolDir}); err == nil ||
		!strings.Contains(err.Error(), "different study") {
		t.Fatalf("spool accepted a different study: %v", err)
	}

	// Phase 2: reopen. Restored cells fan in attributed to "spool"; the
	// fresh worker computes exactly the two missing cells.
	obs := newObsRec()
	coord2, err := NewCoordinator(CoordinatorConfig{
		Study: st, Addr: "127.0.0.1:0", SpoolDir: spoolDir, LeaseTTL: time.Hour,
		Observers: []study.Observer{obs}, Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("phase 2 NewCoordinator: %v", err)
	}
	defer coord2.Close()
	if got := obs.doneWorkers()["spool"]; got != 2 {
		t.Fatalf("%d cells restored from spool at construction, want 2", got)
	}
	if got := coord2.Remaining(); got != 2 {
		t.Fatalf("%d cells remain after resume, want 2", got)
	}
	// The addr file tracks the live coordinator for joining scripts.
	addrBytes, err := os.ReadFile(filepath.Join(spoolDir, "addr"))
	if err != nil || strings.TrimSpace(string(addrBytes)) != coord2.Addr() {
		t.Fatalf("addr file %q / %v, want %q", addrBytes, err, coord2.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var phase2 int
	if err := RunWorker(ctx, WorkerConfig{
		Addr: coord2.Addr(), Name: "w2", Workers: 1, ExplicitWorkers: true, Log: t.Logf,
		onCellDone: func(int, error) { phase2++ },
	}); err != nil {
		t.Fatalf("phase 2 worker: %v", err)
	}
	res, err := coord2.Wait(ctx)
	if err != nil {
		t.Fatalf("phase 2 Wait: %v", err)
	}
	if phase2 != 2 {
		t.Fatalf("phase 2 recomputed %d cells, want exactly the 2 missing", phase2)
	}
	if got, want := renderTable(t, res), renderTable(t, serial); got != want {
		t.Fatalf("resumed table differs from serial run:\n%s\nvs\n%s", got, want)
	}

	// A third open restores everything and completes without any worker.
	coord3, err := NewCoordinator(CoordinatorConfig{Study: st, Addr: "127.0.0.1:0", SpoolDir: spoolDir, Log: t.Logf})
	if err != nil {
		t.Fatalf("phase 3 NewCoordinator: %v", err)
	}
	defer coord3.Close()
	res3, err := coord3.Wait(context.Background())
	if err != nil {
		t.Fatalf("phase 3 Wait: %v", err)
	}
	if got, want := renderTable(t, res3), renderTable(t, serial); got != want {
		t.Fatal("fully-spooled table differs from serial run")
	}
}

// TestSpoolRejectsCorruptRecord: a tampered checkpoint must fail a resume
// loudly, never silently skew the assembled table.
func TestSpoolRejectsCorruptRecord(t *testing.T) {
	st := &study.Study{
		Name: "fleet-corrupt", Apps: []string{"TVAnts"}, Seeds: []int64{1},
		Duration: study.Duration(15 * time.Second), PeerFactor: 0.05,
	}
	spoolDir := t.TempDir()
	coord, err := NewCoordinator(CoordinatorConfig{Study: st, Addr: "127.0.0.1:0", SpoolDir: spoolDir, Log: t.Logf})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := RunWorker(ctx, WorkerConfig{Addr: coord.Addr(), Name: "w1", Workers: 1, ExplicitWorkers: true}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	coord.Close()

	cells, err := os.ReadDir(filepath.Join(spoolDir, "cells"))
	if err != nil || len(cells) != 1 {
		t.Fatalf("spool holds %d cells (%v), want 1", len(cells), err)
	}
	path := filepath.Join(spoolDir, "cells", cells[0].Name())
	rec, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(rec, []byte(`"index": 0`), []byte(`"index": 7`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(CoordinatorConfig{Study: st, Addr: "127.0.0.1:0", SpoolDir: spoolDir}); err == nil ||
		!strings.Contains(err.Error(), "does not belong") {
		t.Fatalf("corrupt spool record accepted: %v", err)
	}
}
