package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// dialBudget is how long a worker keeps retrying a failing coordinator call
// before giving up: long enough to ride out a coordinator restart, short
// enough that a dead coordinator doesn't strand workers forever.
const dialBudget = 60 * time.Second

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Name is the worker's stable identity for leases and attribution;
	// empty selects "<hostname>-<pid>".
	Name string
	// Workers is the concurrent-cell budget (the -workers flag);
	// ExplicitWorkers records whether the user set it. The effective
	// budget is WorkerBudget over the *study's* shard count, discovered at
	// join time — cells must run with the coordinator's shard setting to
	// stay byte-identical with a local run.
	Workers         int
	ExplicitWorkers bool
	// Log, when non-nil, receives one line per worker event. It must be
	// safe for concurrent use.
	Log func(format string, args ...any)

	// Test hooks. beforeResult runs after a cell computes but before its
	// result posts; returning an error abandons the worker there —
	// simulating death mid-cell without killing the test process.
	// onCellDone observes each cell attempt's outcome.
	beforeResult func(index int) error
	onCellDone   func(index int, err error)
}

// worker is one joined worker's client state.
type worker struct {
	cfg    WorkerConfig
	base   string // http://ADDR/fleet/v1
	client *http.Client
	st     *study.Study
	digest string
	ttl    time.Duration
	log    func(format string, args ...any)
}

// RunWorker joins the coordinator at cfg.Addr and executes leased cells
// until the grid completes ("done"), a cell fails anywhere in the fleet
// ("failed", returned as an error), ctx is cancelled, or the coordinator
// stays unreachable past the redial budget. Every coordinator call retries
// with backoff, so dropped connections and coordinator restarts cost a
// redial, not a cell.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Addr == "" {
		return fmt.Errorf("fleet: worker without a coordinator address")
	}
	if cfg.Name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &worker{
		cfg:    cfg,
		base:   "http://" + cfg.Addr + "/fleet/v1",
		client: &http.Client{},
		log:    cfg.Log,
	}
	if w.log == nil {
		w.log = func(string, ...any) {}
	}

	if err := w.fetchStudy(ctx); err != nil {
		return err
	}
	shards := w.st.Shards
	if shards < 1 {
		shards = 1
	}
	budget, err := WorkerBudget(cfg.Workers, cfg.ExplicitWorkers, shards, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	w.log("fleet: %s joined %s: study %s (%d cells, shards %d), running %d cell(s) at a time",
		cfg.Name, cfg.Addr, w.st.Name, w.st.Runs(), shards, budget)

	// Each slot loops lease → run → result until the coordinator disbands
	// it. The first slot error (a fleet-level failure or an exhausted
	// redial budget) wins; "done"/"failed" reach every slot identically so
	// they agree on when to stop.
	var wg sync.WaitGroup
	errs := make([]error, budget)
	for i := 0; i < budget; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.leaseLoop(ctx)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchStudy downloads and verifies the coordinator's study.
func (w *worker) fetchStudy(ctx context.Context) error {
	var rep studyReply
	if err := w.call(ctx, http.MethodGet, "study", nil, &rep); err != nil {
		return err
	}
	st, err := study.DecodeBytes(rep.Study)
	if err != nil {
		return err
	}
	digest, err := st.Digest()
	if err != nil {
		return err
	}
	if digest != rep.Digest {
		return fmt.Errorf("fleet: study digest mismatch: coordinator says %s, decoded study digests %s", rep.Digest, digest)
	}
	w.st, w.digest = st, digest
	w.ttl = time.Duration(rep.LeaseTTLMs) * time.Millisecond
	if w.ttl <= 0 {
		w.ttl = DefaultLeaseTTL
	}
	return nil
}

// leaseLoop drives one execution slot.
func (w *worker) leaseLoop(ctx context.Context) error {
	for {
		var rep leaseReply
		if err := w.call(ctx, http.MethodPost, "lease", leaseRequest{Worker: w.cfg.Name}, &rep); err != nil {
			return err
		}
		switch rep.Status {
		case StatusDone:
			return nil
		case StatusFailed:
			return fmt.Errorf("study %s: %s", w.st.Name, rep.Error)
		case StatusWait:
			retry := time.Duration(rep.RetryMs) * time.Millisecond
			if retry <= 0 {
				retry = waitRetry
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
		case StatusLease:
			gridDone, err := w.runCell(ctx, rep.Index, rep.Digest)
			if err != nil {
				return err
			}
			if gridDone {
				// Our result completed the grid: exit without another
				// lease request, which could only race the coordinator's
				// shutdown.
				return nil
			}
		default:
			return fmt.Errorf("fleet: unknown lease status %q", rep.Status)
		}
	}
}

// runCell executes one leased cell: heartbeats keep the lease alive, sample
// events stream the cell's time series, and the finished summary (or the
// cell's own error, which fails the whole study) posts back. A lease lost
// mid-flight (410) abandons the attempt without posting — some other worker
// owns the cell now, and determinism makes the duplicate work harmless.
// The returned bool reports whether this result completed the grid.
func (w *worker) runCell(ctx context.Context, index int, digest string) (bool, error) {
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// lost flips when the coordinator disowns our lease; everything after
	// that is abandoned, not reported.
	var mu sync.Mutex
	lost := false
	markLost := func() {
		mu.Lock()
		lost = true
		mu.Unlock()
		cancel()
	}
	isLost := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return lost
	}

	// post sends one event; a 410 marks the lease lost, transport errors
	// surface (the caller's redial already happened inside call).
	post := func(kind string, sample *experiment.SeriesSample) error {
		err := w.call(cellCtx, http.MethodPost, "event",
			eventPost{Worker: w.cfg.Name, Index: index, Kind: kind, Sample: sample}, &okReply{})
		if isGone(err) {
			markLost()
			return nil
		}
		return err
	}

	if err := post(eventStart, nil); err != nil && cellCtx.Err() == nil {
		return false, err
	}

	// Heartbeat at TTL/3: two beats can drop before the lease expires.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(w.ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-cellCtx.Done():
				return
			case <-tick.C:
				_ = post(eventRenew, nil)
			}
		}
	}()

	var sampleErr error
	onSample := func(s experiment.SeriesSample) {
		if isLost() || sampleErr != nil {
			return
		}
		sampleErr = post(eventSample, &s)
	}
	sum, runErr := study.RunCell(cellCtx, w.st, index, onSample)
	close(hbDone)
	hbWG.Wait()

	if isLost() {
		w.log("fleet: %s lost the lease on cell %d; abandoning", w.cfg.Name, index)
		if w.cfg.onCellDone != nil {
			w.cfg.onCellDone(index, fmt.Errorf("lease lost"))
		}
		return false, nil
	}
	if runErr == nil && sampleErr != nil {
		// The cell computed, but its stream broke on a non-410 transport
		// error that outlived the redial budget. Treat like a lost lease:
		// abandon, let the lease expire, let another attempt stream it.
		w.log("fleet: %s could not stream cell %d (%v); abandoning", w.cfg.Name, index, sampleErr)
		if w.cfg.onCellDone != nil {
			w.cfg.onCellDone(index, sampleErr)
		}
		return false, nil
	}
	if runErr != nil && ctx.Err() != nil {
		return false, ctx.Err()
	}

	if w.cfg.beforeResult != nil {
		if err := w.cfg.beforeResult(index); err != nil {
			return false, err
		}
	}

	res := resultPost{Worker: w.cfg.Name, Index: index, Digest: digest}
	if runErr != nil {
		res.Error = runErr.Error()
	} else {
		res.Summary = &sum
	}
	// Post the result on the parent ctx: the cell ctx may be cancelled by
	// a lost lease race, but a computed result is still worth delivering —
	// the coordinator acknowledges duplicates idempotently.
	var ack okReply
	err := w.call(ctx, http.MethodPost, "result", res, &ack)
	if isGone(err) {
		err = nil
	}
	if w.cfg.onCellDone != nil {
		w.cfg.onCellDone(index, runErr)
	}
	if err != nil {
		return false, err
	}
	if runErr != nil {
		w.log("fleet: %s reported cell %d failed: %v", w.cfg.Name, index, runErr)
	}
	return ack.Done, nil
}

// goneError marks a 410 Gone reply — the coordinator no longer recognises
// our lease on the cell.
type goneError struct{ msg string }

func (e *goneError) Error() string { return e.msg }

func isGone(err error) bool {
	_, ok := err.(*goneError)
	return ok
}

// call performs one coordinator round trip with redial-on-failure: any
// transport error or 5xx retries with growing backoff until dialBudget of
// continuous failure passes (a coordinator restart costs a redial, never a
// worker). 4xx replies — protocol errors and 410 lease losses — do not
// retry; they mean the coordinator heard us and said no.
func (w *worker) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("fleet: %s %s: %w", method, path, err)
		}
	}
	backoff := 100 * time.Millisecond
	deadline := time.Now().Add(dialBudget)
	for {
		err := w.callOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if _, retriable := err.(*dialError); !retriable {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: coordinator at %s unreachable for %s: %w", w.cfg.Addr, dialBudget, err)
		}
		w.log("fleet: %s: %s %s failed (%v); redialing in %s", w.cfg.Name, method, path, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// dialError wraps failures worth redialing: transport errors and 5xx.
type dialError struct{ err error }

func (e *dialError) Error() string { return e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

func (w *worker) callOnce(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, w.base+"/"+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return &dialError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		err := fmt.Errorf("fleet: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode == http.StatusGone {
			return &goneError{err.Error()}
		}
		if resp.StatusCode >= 500 {
			return &dialError{err}
		}
		return err
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return &dialError{fmt.Errorf("fleet: %s %s: decode reply: %w", method, path, err)}
	}
	return nil
}
