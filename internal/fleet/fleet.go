// Package fleet distributes a study grid across machines: one coordinator
// enumerates the grid and hands out cell leases over a stdlib-only
// HTTP/JSON protocol; any number of workers dial in, lease cells, execute
// them locally through study.RunCell, and stream progress plus time-series
// buckets back for live fan-in to the coordinator's observers (the
// dashboard and -svg-out artifacts work unchanged over a distributed run).
//
// The design leans on two properties the study layer already guarantees:
// every cell is deterministic (the same cell computes the same summary on
// any machine, so duplicated work after a lost lease is harmless), and
// every cell is JSON-addressable (a canonical digest keys its checkpoint,
// so a restarted coordinator resumes bit-for-bit instead of recomputing).
// Fault tolerance is lease-based, in the spirit of minimega's
// redial-on-disconnect clients: a worker renews its leases by heartbeat and
// by the events it streams; a worker that dies or wedges simply stops
// renewing, the lease expires, and the cell returns to the queue for the
// next lease request. Workers retry every call with backoff, so a dropped
// connection (or a coordinator briefly restarting) costs a redial, never a
// cell.
//
// Protocol (all JSON over HTTP, rooted at /fleet/v1/):
//
//	GET  study   → the study file (study codec), its digest, the lease TTL
//	POST lease   → {status:"lease", index, digest, ttl_ms}
//	               | {status:"wait", retry_ms}   (nothing leasable right now)
//	               | {status:"done"}             (grid complete; disband)
//	               | {status:"failed", error}    (a cell failed; disband)
//	POST event   → worker → coordinator progress on a leased cell:
//	               kind "start" | "sample" (carries one SeriesSample) |
//	               "renew" (heartbeat). Every event renews the lease.
//	               410 Gone when the lease is no longer the worker's.
//	POST result  → the finished cell's summary (or its error, which fails
//	               the whole study like a local cell error would). The
//	               acknowledgement reports whether the grid is now complete,
//	               so the worker that lands the last cell disbands without
//	               another lease round trip (the coordinator may already be
//	               rendering and gone by then).
package fleet

import (
	"errors"
	"fmt"

	"napawine/internal/experiment"
)

// ErrOversubscribed marks a WorkerBudget rejection, so the CLI can present
// it as a usage error (exit 2) rather than a runtime failure.
var ErrOversubscribed = errors.New("oversubscribed")

// Lease-reply statuses.
const (
	StatusLease  = "lease"
	StatusWait   = "wait"
	StatusDone   = "done"
	StatusFailed = "failed"
)

// studyReply answers GET study: the canonical study encoding (the same
// bytes the coordinator digested), its digest, and the coordinator's lease
// TTL so workers can size their heartbeats.
type studyReply struct {
	Study      []byte `json:"study"`
	Digest     string `json:"digest"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
}

// leaseRequest asks for one cell; Worker is the caller's stable identity
// (attribution and lease ownership both key on it).
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseReply grants a cell, asks the worker to wait, or disbands it.
type leaseReply struct {
	Status string `json:"status"`
	// Index and Digest identify the leased cell (status "lease").
	Index  int    `json:"index,omitempty"`
	Digest string `json:"digest,omitempty"`
	TTLMs  int64  `json:"ttl_ms,omitempty"`
	// RetryMs is the suggested poll delay (status "wait").
	RetryMs int64 `json:"retry_ms,omitempty"`
	// Error carries the failed study's first cell error (status "failed").
	Error string `json:"error,omitempty"`
}

// Event kinds a worker posts about a leased cell.
const (
	eventStart  = "start"
	eventSample = "sample"
	eventRenew  = "renew"
)

// eventPost is one progress event on a leased cell.
type eventPost struct {
	Worker string                   `json:"worker"`
	Index  int                      `json:"index"`
	Kind   string                   `json:"kind"`
	Sample *experiment.SeriesSample `json:"sample,omitempty"`
}

// resultPost delivers a finished cell: its summary, or the error that
// stopped it. Digest double-checks the worker and coordinator agree on
// which cell this is.
type resultPost struct {
	Worker  string              `json:"worker"`
	Index   int                 `json:"index"`
	Digest  string              `json:"digest"`
	Summary *experiment.Summary `json:"summary,omitempty"`
	Error   string              `json:"error,omitempty"`
}

// okReply acknowledges an event or result post. Done is set on result
// acknowledgements when the grid is complete, letting the worker that
// delivered the last summary exit instead of asking a possibly
// already-closed coordinator for its next lease.
type okReply struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// WorkerBudget applies the two-level parallelism guard shared by the local
// and fleet execution paths: workers × shards must not oversubscribe the
// machine. An explicitly-set worker count that does is a usage error; an
// unset one is derated to cores/shards so the default stays "use the
// machine once", not shards times over. On the fleet path the shard count
// is the study's own (the worker discovers it at join time): cells must run
// with the coordinator's shard setting or their results would not be
// byte-identical to a local run of the same spec.
func WorkerBudget(workers int, explicit bool, shards, cores int) (int, error) {
	if shards > 1 {
		if explicit && workers > 1 && workers*shards > cores {
			return 0, fmt.Errorf("%w: -workers %d × -shards %d exceeds GOMAXPROCS (%d); lower one of them",
				ErrOversubscribed, workers, shards, cores)
		}
		if !explicit {
			workers = cores / shards
			if workers < 1 {
				workers = 1
			}
		}
	}
	if workers <= 0 {
		workers = cores
	}
	return workers, nil
}
