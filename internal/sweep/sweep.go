// Package sweep fans replicated experiment batteries — applications ×
// seeds × optional profile variants — through the parallel runner and
// aggregates the per-run summaries into the paper's tables with error bars.
//
// The paper's tables print one number per (property, application) cell from
// a single measurement campaign; Silverston & Fourmaux's comparison work
// and Clegg et al.'s locality studies both show those numbers are noisy
// across trials. A sweep replays each experiment under n seeds and renders
// every cell as mean ± standard error across trials.
//
// Memory is bounded by construction: each worker reduces its finished
// Result to an experiment.Summary (a few hundred bytes) before returning,
// so a 3-app × 20-seed battery never holds more than workers full Results
// at once, not 60.
package sweep

import (
	"context"
	"fmt"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/overlay"
	"napawine/internal/report"
	"napawine/internal/scenario"
	"napawine/internal/stats"
	"napawine/internal/study"
)

// Variant derives an ablation profile from each application's stock
// profile. The zero Variant (empty name, nil mutate) means "stock profile".
type Variant struct {
	// Name suffixes the application label in every table ("TVAnts/blind").
	Name string
	// Mutate adjusts a fresh copy of the stock profile; nil leaves it stock.
	Mutate func(*overlay.Profile)
}

// Spec parameterizes one sweep.
type Spec struct {
	// Apps lists the applications to sweep; empty selects the paper's three.
	Apps []string
	// Seeds lists the trial seeds; empty selects Trials sequential seeds
	// starting at BaseSeed (or 1 when BaseSeed is 0).
	Seeds []int64
	// BaseSeed and Trials generate Seeds when Seeds is empty.
	BaseSeed int64
	Trials   int

	// Duration is the virtual run length per trial (0 = per-app default).
	Duration time.Duration
	// PeerFactor scales each application's default background population
	// exactly like napawine.Scale (0 selects 1.0, floor of 50 peers).
	PeerFactor float64
	// Peers pins the background population to an absolute count (0 =
	// leave to PeerFactor). Mutually exclusive with PeerFactor, like
	// study.Study.Peers.
	Peers int
	// LeanLedger forces O(1)-memory ground-truth accounting for every
	// trial; large worlds switch to it automatically.
	LeanLedger bool
	// Shards splits every trial's swarm across that many parallel shard
	// engines (experiment.Config.Shards); 0 or 1 keeps the serial engine.
	Shards int
	// Workers bounds parallel trials (0 = GOMAXPROCS). Each in-flight
	// trial additionally runs Shards goroutines.
	Workers int

	// Variants, when non-empty, replaces the stock run of every app with
	// one run per variant. Include a zero Variant to keep the stock run.
	Variants []Variant

	// Scenario names a registered workload scenario to replay under every
	// (app, variant, seed) triple ("" = the stationary default). Scenario
	// runs additionally sample per-bucket time series, aggregated by
	// SeriesTable.
	Scenario string

	// ScenarioSpec, when non-nil, is the workload timeline itself — a
	// file-authored spec (scenario.LoadFile) or a custom-built one — and
	// takes precedence over Scenario. The sweep never mutates it; every
	// worker runs its own deep copy.
	ScenarioSpec *scenario.Spec

	// Strategy names a registered chunk-scheduling strategy
	// (policy.StrategyNames) applied to every run of the battery (""
	// keeps each profile's own strategy). This is how the
	// latest-useful / rarest / deadline scheduling comparisons are
	// replicated across seeds.
	Strategy string

	// QueueDepth bounds every peer's uplink queue for every run of the
	// battery (tail-drop loss beyond it); 0 keeps the unbounded
	// congestion-off default.
	QueueDepth int
}

// seeds resolves the trial seed list.
func (s Spec) seeds() []int64 {
	st := study.Study{Seeds: s.Seeds, BaseSeed: s.BaseSeed, Trials: s.Trials}
	return st.SeedList()
}

// apps resolves the application list.
func (s Spec) apps() []string {
	if len(s.Apps) > 0 {
		return s.Apps
	}
	return []string{"PPLive", "SopCast", "TVAnts"}
}

// variants resolves the variant list; the stock run is a zero Variant.
func (s Spec) variants() []Variant {
	if len(s.Variants) > 0 {
		return s.Variants
	}
	return []Variant{{}}
}

// Group is one (application, variant) battery: its label and the per-seed
// summaries in seed order.
type Group struct {
	App     string
	Variant string
	// Label is App, or "App/Variant" for ablation groups.
	Label     string
	Summaries []experiment.Summary
}

// Result is everything a sweep produces.
type Result struct {
	Spec   Spec
	Seeds  []int64
	Groups []Group
}

// Trials reports the number of seeds per group.
func (r *Result) Trials() int { return len(r.Seeds) }

// Study compiles the sweep into its study: a one-strategy, one-scenario
// grid over apps × variants × seeds. The sweep layer is an adapter over
// the study engine — same cell order, same per-cell configuration — so a
// sweep's aggregated tables stay byte-identical to pre-study builds (the
// cross-worker determinism tests pin this).
func (s Spec) Study() *study.Study {
	variants := s.variants()
	vs := make([]study.Variant, len(variants))
	for i, vr := range variants {
		vs[i] = study.Variant{Name: vr.Name, Mutate: vr.Mutate}
	}
	return &study.Study{
		Name:       "sweep",
		Apps:       s.apps(),
		Strategies: []string{s.Strategy},
		Scenarios:  []study.Scenario{{Name: s.Scenario, Spec: s.ScenarioSpec}},
		Variants:   vs,
		Seeds:      s.seeds(),
		Duration:   study.Duration(s.Duration),
		PeerFactor: s.PeerFactor,
		Peers:      s.Peers,
		QueueDepth: s.QueueDepth,
		LeanLedger: s.LeanLedger,
		Shards:     s.Shards,
	}
}

// Run executes the sweep: every (app, variant, seed) triple is one
// independent experiment, each reduced to a Summary inside its worker so
// the full Result is released before the next trial starts on that worker.
func Run(spec Spec) (*Result, error) { return RunCtx(context.Background(), spec) }

// RunCtx is Run under a context, with optional study options (an Observer,
// say) forwarded to the underlying engine. Cancellation aborts the battery
// promptly and returns ctx.Err(); a sweep has no partial-result story — use
// the study API directly for that.
func RunCtx(ctx context.Context, spec Spec, opts ...study.Option) (*Result, error) {
	if spec.ScenarioSpec != nil && spec.Scenario == "" {
		spec.Scenario = spec.ScenarioSpec.Name // label SeriesTable and logs
	}
	sres, err := study.Run(ctx, spec.Study(),
		append([]study.Option{study.WithWorkers(spec.Workers)}, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	// Regroup the grid cells into the sweep's (app, variant) batteries.
	// Cell order is app → variant → seed (the strategy and scenario axes
	// are singletons), so summaries land in seed order within each group.
	groups := make([]Group, 0, len(spec.apps())*len(spec.variants()))
	index := map[[2]string]int{}
	for _, app := range spec.apps() {
		for _, vr := range spec.variants() {
			label := app
			if vr.Name != "" {
				label = app + "/" + vr.Name
			}
			index[[2]string{app, vr.Name}] = len(groups)
			groups = append(groups, Group{App: app, Variant: vr.Name, Label: label})
		}
	}
	for _, c := range sres.Cells {
		g := index[[2]string{c.App, c.Variant}]
		groups[g].Summaries = append(groups[g].Summaries, c.Summary)
	}
	return &Result{Spec: spec, Seeds: sres.Seeds, Groups: groups}, nil
}

// columnStat folds one per-run value across a group's trials.
func columnStat(g Group, get func(experiment.Summary) float64) stats.Accumulator {
	var acc stats.Accumulator
	for _, s := range g.Summaries {
		acc.Add(get(s))
	}
	return acc
}

func meanErr(acc stats.Accumulator, decimals int) string {
	return report.MeanErr(acc.Mean(), acc.StdErr(), decimals)
}

// TableII renders the aggregated experiment-summary table: each cell is the
// mean ± stderr across seeds of the per-run probe mean (or max).
func (r *Result) TableII() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("TABLE II — Summary of experiments (mean±stderr over %d seeds)", r.Trials()),
		"App", "RX kbps mean", "RX kbps max", "TX kbps mean", "TX kbps max",
		"All peers mean", "All peers max", "Contrib RX mean", "Contrib RX max",
		"Contrib TX mean", "Contrib TX max")
	cols := []func(experiment.Summary) float64{
		func(s experiment.Summary) float64 { return s.RxKbpsMean },
		func(s experiment.Summary) float64 { return s.RxKbpsMax },
		func(s experiment.Summary) float64 { return s.TxKbpsMean },
		func(s experiment.Summary) float64 { return s.TxKbpsMax },
		func(s experiment.Summary) float64 { return s.AllPeersMean },
		func(s experiment.Summary) float64 { return s.AllPeersMax },
		func(s experiment.Summary) float64 { return s.ContribRxMean },
		func(s experiment.Summary) float64 { return s.ContribRxMax },
		func(s experiment.Summary) float64 { return s.ContribTxMean },
		func(s experiment.Summary) float64 { return s.ContribTxMax },
	}
	for _, g := range r.Groups {
		cells := make([]string, 0, len(cols)+1)
		cells = append(cells, g.Label)
		for _, get := range cols {
			cells = append(cells, meanErr(columnStat(g, get), 0))
		}
		t.Add(cells...)
	}
	return t
}

// TableIII renders the aggregated self-induced-bias table.
func (r *Result) TableIII() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("TABLE III — NAPA-WINE self-induced bias (mean±stderr over %d seeds)", r.Trials()),
		"App", "Contrib Peer%", "Contrib Bytes%", "All Peer%", "All Bytes%")
	cols := []func(experiment.Summary) float64{
		func(s experiment.Summary) float64 { return s.SelfBiasContrib.PeerPct },
		func(s experiment.Summary) float64 { return s.SelfBiasContrib.BytePct },
		func(s experiment.Summary) float64 { return s.SelfBiasAll.PeerPct },
		func(s experiment.Summary) float64 { return s.SelfBiasAll.BytePct },
	}
	for _, g := range r.Groups {
		cells := make([]string, 0, len(cols)+1)
		cells = append(cells, g.Label)
		for _, get := range cols {
			cells = append(cells, meanErr(columnStat(g, get), 1))
		}
		t.Add(cells...)
	}
	return t
}

// TableIV renders the aggregated network-awareness table. A cell aggregates
// only the trials in which it was measurable; if no trial measured it the
// cell prints the paper's dash.
func (r *Result) TableIV() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("TABLE IV — Network awareness (mean±stderr over %d seeds)", r.Trials()),
		append([]string{"Net", "App"}, experiment.TableIVColumns[:]...)...)
	for _, prop := range []string{"BW", "AS", "CC", "NET", "HOP"} {
		for _, g := range r.Groups {
			cells := make([]string, 0, 10)
			cells = append(cells, prop, g.Label)
			for col := 0; col < 8; col++ {
				var acc stats.Accumulator
				for _, s := range g.Summaries {
					for _, cell := range s.TableIV {
						if cell.Property == prop && cell.Valid[col] {
							acc.Add(cell.Vals[col])
						}
					}
				}
				cells = append(cells,
					report.MeanErrOrDash(acc.Mean(), acc.StdErr(), 1, acc.N() > 0))
			}
			t.Add(cells...)
		}
	}
	return t
}

// SeriesTable renders the aggregated per-bucket time series of a scenario
// sweep: each (bucket, group) cell is the mean ± stderr across seeds. The
// intra-AS column aggregates only the trials whose bucket moved video (the
// same measurable-trials rule Table IV uses); a bucket no trial measured
// prints the dash. Returns nil when the sweep ran no scenario.
func (r *Result) SeriesTable() *report.Table {
	buckets := 0
	name := r.Spec.Scenario
	for _, g := range r.Groups {
		for _, s := range g.Summaries {
			if len(s.Series) > buckets {
				buckets = len(s.Series)
			}
		}
	}
	if buckets == 0 {
		return nil
	}
	t := report.NewTable(
		fmt.Sprintf("Time series — scenario %q (mean±stderr over %d seeds)", name, r.Trials()),
		"T", "App", "Online", "Continuity", "Intra-AS%", "Video kbps", "Tracker")
	for b := 0; b < buckets; b++ {
		for _, g := range r.Groups {
			var online, cont, intra, kbps stats.Accumulator
			label := ""
			trackerUp := true
			for _, s := range g.Summaries {
				if b >= len(s.Series) {
					continue
				}
				smp := s.Series[b]
				label = smp.T.String()
				// Tracker state is part of the scenario timeline, not the
				// seed, so every trial agrees; keep the last seen.
				trackerUp = smp.TrackerUp
				online.Add(float64(smp.Online))
				cont.Add(smp.Continuity)
				kbps.Add(smp.VideoKbps)
				if smp.IntraASValid {
					intra.Add(smp.IntraASPct)
				}
			}
			if online.N() == 0 {
				continue
			}
			t.Add(label, g.Label,
				meanErr(online, 0),
				meanErr(cont, 3),
				report.MeanErrOrDash(intra.Mean(), intra.StdErr(), 1, intra.N() > 0),
				meanErr(kbps, 0),
				experiment.TrackerMark(trackerUp))
		}
	}
	return t
}

// HealthTable renders the sweep's run-health panel: hop medians, playout
// continuity and event throughput per group — the replicated version of the
// single-run diagnostics cmd/napawine prints under Table IV.
func (r *Result) HealthTable() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Sweep health (mean±stderr over %d seeds)", r.Trials()),
		"App", "Hop median", "Continuity", "Events/run", "Unlocated")
	for _, g := range r.Groups {
		hop := columnStat(g, func(s experiment.Summary) float64 { return s.HopMedian })
		cont := columnStat(g, func(s experiment.Summary) float64 { return s.MeanContinuity })
		ev := columnStat(g, func(s experiment.Summary) float64 { return float64(s.Events) })
		unl := columnStat(g, func(s experiment.Summary) float64 { return float64(s.Unlocated) })
		t.Add(g.Label, meanErr(hop, 1), meanErr(cont, 3), meanErr(ev, 0), meanErr(unl, 1))
	}
	return t
}
