package sweep

import (
	"fmt"
	"math"

	"napawine/internal/experiment"
	"napawine/internal/plot"
	"napawine/internal/stats"
)

// SeriesPlots renders the sweep's aggregated time series as SVG line
// charts with mean±stderr bands: one chart per metric, one banded series
// per (app, variant) group, aggregated across seeds exactly like
// SeriesTable — the intra-AS metric folds only measurable trials and
// breaks the line where no trial measured. Nil when the sweep ran no
// scenario.
func (r *Result) SeriesPlots() []plot.Artifact {
	buckets := 0
	for _, g := range r.Groups {
		for _, s := range g.Summaries {
			if len(s.Series) > buckets {
				buckets = len(s.Series)
			}
		}
	}
	if buckets == 0 {
		return nil
	}

	metrics := []struct {
		name   string
		ylabel string
		get    func(experiment.SeriesSample) (float64, bool)
	}{
		{"online", "online peers",
			func(s experiment.SeriesSample) (float64, bool) { return float64(s.Online), true }},
		{"continuity", "continuity",
			func(s experiment.SeriesSample) (float64, bool) { return s.Continuity, true }},
		{"intra-as", "intra-AS %",
			func(s experiment.SeriesSample) (float64, bool) { return s.IntraASPct, s.IntraASValid }},
		{"video-kbps", "video kbps",
			func(s experiment.SeriesSample) (float64, bool) { return s.VideoKbps, true }},
	}

	var arts []plot.Artifact
	for _, m := range metrics {
		l := &plot.Line{
			Title: fmt.Sprintf("%s — scenario %q (mean±stderr over %d seeds)",
				m.ylabel, r.Spec.Scenario, r.Trials()),
			XLabel: "virtual time", YLabel: m.ylabel, XTime: true,
		}
		for _, g := range r.Groups {
			s := plot.Series{Name: g.Label,
				X:  make([]float64, 0, buckets),
				Y:  make([]float64, 0, buckets),
				Lo: make([]float64, 0, buckets),
				Hi: make([]float64, 0, buckets),
			}
			for b := 0; b < buckets; b++ {
				var acc stats.Accumulator
				t := math.NaN()
				for _, sum := range g.Summaries {
					if b >= len(sum.Series) {
						continue
					}
					smp := sum.Series[b]
					t = smp.T.Seconds()
					if v, ok := m.get(smp); ok {
						acc.Add(v)
					}
				}
				if math.IsNaN(t) {
					continue
				}
				s.X = append(s.X, t)
				if acc.N() == 0 {
					s.Y = append(s.Y, math.NaN())
					s.Lo = append(s.Lo, math.NaN())
					s.Hi = append(s.Hi, math.NaN())
					continue
				}
				mean, se := acc.Mean(), acc.StdErr()
				s.Y = append(s.Y, mean)
				s.Lo = append(s.Lo, mean-se)
				s.Hi = append(s.Hi, mean+se)
			}
			if len(s.X) > 0 {
				l.Series = append(l.Series, s)
			}
		}
		arts = append(arts, plot.Artifact{Name: "sweep-" + m.name, Chart: l})
	}
	return arts
}
