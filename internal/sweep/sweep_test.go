package sweep

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/overlay"
	"napawine/internal/policy"
	"napawine/internal/scenario"
)

// synthetic builds a Result with hand-written summaries so aggregation can
// be checked against exact arithmetic, no simulation involved.
func synthetic() *Result {
	mk := func(seed int64, base float64) experiment.Summary {
		s := experiment.Summary{App: "PPLive", Seed: seed}
		s.RxKbpsMean = base
		s.RxKbpsMax = base * 2
		s.SelfBiasContrib.PeerPct = base
		s.SelfBiasContrib.BytePct = base
		s.SelfBiasAll.PeerPct = base
		s.SelfBiasAll.BytePct = base
		cell := experiment.SummaryCell{Property: "AS"}
		for i := range cell.Vals {
			cell.Vals[i] = base
			cell.Valid[i] = true
		}
		dead := experiment.SummaryCell{Property: "BW"} // never valid
		s.TableIV = []experiment.SummaryCell{cell, dead}
		return s
	}
	return &Result{
		Seeds: []int64{1, 2},
		Groups: []Group{{
			App: "PPLive", Label: "PPLive",
			Summaries: []experiment.Summary{mk(1, 10), mk(2, 14)},
		}},
	}
}

func TestAggregationExact(t *testing.T) {
	res := synthetic()
	// Two trials 10 and 14: mean 12, sample sd sqrt(8), stderr 2.0.
	var b strings.Builder
	if err := res.TableII().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "12±2") {
		t.Errorf("Table II should contain RX mean cell 12±2:\n%s", out)
	}
	if !strings.Contains(out, "24±4") {
		t.Errorf("Table II should contain RX max cell 24±4:\n%s", out)
	}

	b.Reset()
	if err := res.TableIII().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "12.0±2.0") {
		t.Errorf("Table III should contain 12.0±2.0:\n%s", b.String())
	}

	b.Reset()
	if err := res.TableIV().Render(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if !strings.Contains(out, "12.0±2.0") {
		t.Errorf("Table IV AS row should aggregate to 12.0±2.0:\n%s", out)
	}
	// The BW row had no valid trials in any column: all dashes.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BW") {
			if strings.Count(line, "-") < 8 {
				t.Errorf("BW row should be all dashes: %q", line)
			}
		}
	}
}

func TestSingleTrialHasZeroError(t *testing.T) {
	res := synthetic()
	res.Groups[0].Summaries = res.Groups[0].Summaries[:1]
	res.Seeds = res.Seeds[:1]
	var b strings.Builder
	if err := res.TableIII().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "10.0±0.0") {
		t.Errorf("single trial should print ±0.0:\n%s", b.String())
	}
}

func TestSpecResolution(t *testing.T) {
	var s Spec
	if got := s.apps(); len(got) != 3 || got[0] != "PPLive" {
		t.Errorf("default apps = %v", got)
	}
	if got := s.seeds(); len(got) != 1 || got[0] != 1 {
		t.Errorf("default seeds = %v", got)
	}
	s = Spec{BaseSeed: 7, Trials: 3}
	if got := s.seeds(); len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("seeds = %v, want [7 8 9]", got)
	}
	s = Spec{Seeds: []int64{42}}
	if got := s.seeds(); len(got) != 1 || got[0] != 42 {
		t.Errorf("explicit seeds = %v", got)
	}
	if got := s.variants(); len(got) != 1 || got[0].Name != "" {
		t.Errorf("default variants = %v", got)
	}
}

func TestSweepUnknownApp(t *testing.T) {
	_, err := Run(Spec{Apps: []string{"Joost"}, Trials: 1})
	if err == nil || !strings.Contains(err.Error(), "Joost") {
		t.Errorf("unknown app should fail fast, got %v", err)
	}
}

func TestSweepVariantsGroupingAndLabels(t *testing.T) {
	res, err := Run(Spec{
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{5},
		Duration:   20 * time.Second,
		PeerFactor: 0.01, // floors at 50 peers
		Variants: []Variant{
			{}, // stock
			{Name: "blind", Mutate: func(p *overlay.Profile) { p.DiscoveryWeight = policy.Uniform{} }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	if res.Groups[0].Label != "TVAnts" || res.Groups[1].Label != "TVAnts/blind" {
		t.Errorf("labels = %q, %q", res.Groups[0].Label, res.Groups[1].Label)
	}
	for _, g := range res.Groups {
		if len(g.Summaries) != 1 {
			t.Errorf("group %s has %d summaries, want 1", g.Label, len(g.Summaries))
		}
		if g.Summaries[0].Events == 0 {
			t.Errorf("group %s summary has no events", g.Label)
		}
	}
}

// renderAll concatenates every table a sweep renders, for byte-comparison.
func renderAll(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	for _, err := range []error{
		res.TableII().Render(&b),
		res.TableIII().Render(&b),
		res.TableIV().Render(&b),
		res.HealthTable().Render(&b),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func TestSweepDeterministic(t *testing.T) {
	spec := Spec{
		Apps:       []string{"SopCast", "TVAnts"},
		BaseSeed:   11,
		Trials:     2,
		Duration:   30 * time.Second,
		PeerFactor: 0.05,
		Workers:    4,
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := renderAll(t, a), renderAll(t, b)
	if ra != rb {
		t.Errorf("same spec produced different tables:\n--- first ---\n%s\n--- second ---\n%s", ra, rb)
	}
	if !strings.Contains(ra, "±") {
		t.Errorf("aggregated tables should carry error bars:\n%s", ra)
	}
}

// TestScenarioSeriesDeterministicAcrossWorkers is the contract behind the
// CLI's headline: the same scenario spec and seeds must reproduce
// byte-identical time-series and awareness tables no matter how the trials
// are spread over workers.
func TestScenarioSeriesDeterministicAcrossWorkers(t *testing.T) {
	base := Spec{
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{3, 4},
		Duration:   30 * time.Second,
		PeerFactor: 0.05,
		Scenario:   "flashcrowd",
	}
	render := func(workers int) string {
		spec := base
		spec.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		series := res.SeriesTable()
		if series == nil {
			t.Fatal("scenario sweep produced no series table")
		}
		var b strings.Builder
		for _, err := range []error{
			series.Render(&b),
			res.TableIV().Render(&b),
		} {
			if err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Errorf("worker count changed scenario output:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "flashcrowd") {
		t.Errorf("series table does not name the scenario:\n%s", serial)
	}
}

func TestSweepWithoutScenarioHasNoSeriesTable(t *testing.T) {
	res := synthetic()
	if tab := res.SeriesTable(); tab != nil {
		t.Errorf("scenario-less sweep grew a series table: %v", tab.Title)
	}
}

func TestSweepUnknownScenario(t *testing.T) {
	_, err := Run(Spec{Apps: []string{"TVAnts"}, Trials: 1, Scenario: "worldcup"})
	if err == nil || !strings.Contains(err.Error(), "worldcup") {
		t.Errorf("unknown scenario should fail fast, got %v", err)
	}
}

// TestSweepSeriesShowsTrackerOutage: the aggregated series must carry the
// tracker column, or outage windows would be invisible in replicated runs.
func TestSweepSeriesShowsTrackerOutage(t *testing.T) {
	res, err := Run(Spec{
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{6},
		Duration:   40 * time.Second,
		PeerFactor: 0.05,
		Scenario:   "outage",
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.SeriesTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "DOWN") || !strings.Contains(out, "up") {
		t.Errorf("aggregated outage series does not show the tracker window:\n%s", out)
	}
}

func TestSweepUnknownStrategy(t *testing.T) {
	_, err := Run(Spec{Apps: []string{"TVAnts"}, Trials: 1, Strategy: "newest"})
	if err == nil || !strings.Contains(err.Error(), "newest") {
		t.Errorf("unknown strategy should fail fast, got %v", err)
	}
}

// TestSweepStrategyDeterministicAcrossWorkers plumbs a non-default chunk
// strategy through a replicated battery: the strategy must actually change
// the traffic (different tables than stock) while staying byte-identical
// across worker counts — ordering ties inside a strategy may never fall
// back to scheduling luck.
func TestSweepStrategyDeterministicAcrossWorkers(t *testing.T) {
	base := Spec{
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{3, 4},
		Duration:   30 * time.Second,
		PeerFactor: 0.05,
		Strategy:   "rarest",
	}
	render := func(workers int, strategy string) string {
		spec := base
		spec.Workers = workers
		spec.Strategy = strategy
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, res)
	}
	serial, parallel := render(1, "rarest"), render(4, "rarest")
	if serial != parallel {
		t.Errorf("worker count changed strategy-sweep output:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
	if stock := render(1, ""); stock == serial {
		t.Error("rarest-first sweep rendered byte-identical tables to the stock strategy; the knob is not plumbed through")
	}
}

// TestSweepLeavesScenarioSpecUnmodified is the shared-pointer regression
// guard: the sweep hands every parallel worker its own deep copy, so the
// caller's Spec must come back bit-for-bit identical — and the runs must
// not be able to corrupt each other through it.
func TestSweepLeavesScenarioSpecUnmodified(t *testing.T) {
	scn, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	want := scn.Clone()
	_, err = Run(Spec{
		Apps:         []string{"TVAnts"},
		Seeds:        []int64{3, 4},
		Duration:     20 * time.Second,
		PeerFactor:   0.05,
		Workers:      4,
		ScenarioSpec: scn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scn, want) {
		t.Errorf("sweep mutated the caller's scenario spec:\n before %+v\n after  %+v", want, scn)
	}
}

// TestSweepFileSpecMatchesNamedScenario: a ScenarioSpec decoded from JSON
// must reproduce the named registry run byte-for-byte — the file codec adds
// a parser, never a different simulation.
func TestSweepFileSpecMatchesNamedScenario(t *testing.T) {
	base := Spec{
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{5},
		Duration:   20 * time.Second,
		PeerFactor: 0.05,
	}
	render := func(spec Spec) string {
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		series := res.SeriesTable()
		if series == nil {
			t.Fatal("scenario sweep produced no series table")
		}
		var b strings.Builder
		if err := series.Render(&b); err != nil {
			t.Fatal(err)
		}
		if err := res.TableII().Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	named := base
	named.Scenario = "flashcrowd"

	var buf strings.Builder
	reg, _ := scenario.ByName("flashcrowd")
	if err := scenario.Encode(&buf, reg); err != nil {
		t.Fatal(err)
	}
	decoded, err := scenario.DecodeBytes([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	fileSpec := base
	fileSpec.ScenarioSpec = decoded

	a, b := render(named), render(fileSpec)
	if a != b {
		t.Errorf("file-decoded spec diverged from the named scenario:\n--- named ---\n%s\n--- file ---\n%s", a, b)
	}
	if !strings.Contains(b, "flashcrowd") {
		t.Errorf("file-spec series table not labeled with the spec name:\n%s", b)
	}
}

func TestSweepInvalidScenarioSpecFails(t *testing.T) {
	_, err := Run(Spec{
		Apps:         []string{"TVAnts"},
		Trials:       1,
		ScenarioSpec: &scenario.Spec{}, // nameless: invalid
	})
	if err == nil {
		t.Fatal("invalid scenario spec accepted")
	}
}
