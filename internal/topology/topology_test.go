package topology

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"napawine/internal/stats"
)

// buildSmall builds a 3-country, 5-AS world with two subnets per AS.
func buildSmall(t *testing.T, seed int64) (*Topology, []SubnetID) {
	t.Helper()
	b := NewBuilder(seed)
	b.AddCountry("CN", Asia)
	b.AddCountry("IT", Europe)
	b.AddCountry("HU", Europe)
	var subnets []SubnetID
	for _, cc := range []CC{"CN", "CN", "IT", "HU", "IT"} {
		asn := b.AddAS(cc)
		subnets = append(subnets, b.AddSubnet(asn), b.AddSubnet(asn))
	}
	return b.Build(), subnets
}

func TestHostAllocationAndLocate(t *testing.T) {
	topo, subnets := buildSmall(t, 1)
	h1, err := topo.NewHost(subnets[0])
	if err != nil {
		t.Fatal(err)
	}
	h2, err := topo.NewHost(subnets[0])
	if err != nil {
		t.Fatal(err)
	}
	if h1.Addr == h2.Addr {
		t.Fatal("two hosts share an address")
	}
	if h1.Subnet != h2.Subnet || h1.AS != h2.AS || h1.Country != h2.Country {
		t.Fatal("same-subnet hosts disagree on location")
	}
	got, ok := topo.Locate(h1.Addr)
	if !ok {
		t.Fatal("Locate failed for allocated address")
	}
	if got != h1 {
		t.Fatalf("Locate = %+v, want %+v", got, h1)
	}
}

func TestLocateUnknown(t *testing.T) {
	topo, _ := buildSmall(t, 1)
	if _, ok := topo.Locate(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("Locate should fail for foreign address")
	}
}

func TestSubnetExhaustion(t *testing.T) {
	topo, subnets := buildSmall(t, 1)
	for i := 0; i < 253; i++ {
		if _, err := topo.NewHost(subnets[1]); err != nil {
			t.Fatalf("allocation %d failed early: %v", i, err)
		}
	}
	if _, err := topo.NewHost(subnets[1]); err == nil {
		t.Error("254th allocation should fail")
	}
}

func TestNewHostUnknownSubnet(t *testing.T) {
	topo, _ := buildSmall(t, 1)
	if _, err := topo.NewHost(SubnetID(9999)); err == nil {
		t.Error("unknown subnet should fail")
	}
	if _, err := topo.NewHost(SubnetID(-1)); err == nil {
		t.Error("negative subnet should fail")
	}
}

func TestHopCountClasses(t *testing.T) {
	topo, subnets := buildSmall(t, 2)
	a1, _ := topo.NewHost(subnets[0])
	a2, _ := topo.NewHost(subnets[0]) // same subnet
	b1, _ := topo.NewHost(subnets[1]) // same AS, other subnet
	c1, _ := topo.NewHost(subnets[4]) // other AS

	if got := topo.HopCount(a1, a2); got != 0 {
		t.Errorf("same-subnet hops = %d, want 0", got)
	}
	sameAS := topo.HopCount(a1, b1)
	if sameAS < 3 || sameAS > 9 {
		t.Errorf("same-AS hops = %d, want small (3..9)", sameAS)
	}
	interAS := topo.HopCount(a1, c1)
	if interAS <= sameAS {
		t.Errorf("inter-AS hops (%d) should exceed same-AS hops (%d)", interAS, sameAS)
	}
}

func TestHopCountSymmetry(t *testing.T) {
	topo, subnets := buildSmall(t, 3)
	var hosts []Host
	for _, sn := range subnets {
		h, err := topo.NewHost(sn)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	for i := range hosts {
		for j := range hosts {
			if topo.HopCount(hosts[i], hosts[j]) != topo.HopCount(hosts[j], hosts[i]) {
				t.Fatalf("hop count asymmetric for pair %d,%d", i, j)
			}
			if topo.OneWayDelay(hosts[i], hosts[j]) != topo.OneWayDelay(hosts[j], hosts[i]) {
				t.Fatalf("delay asymmetric for pair %d,%d", i, j)
			}
		}
	}
}

func TestHopCountDeterminism(t *testing.T) {
	build := func() []int {
		topo, subnets := buildSmall(t, 4)
		var hosts []Host
		for _, sn := range subnets {
			h, _ := topo.NewHost(sn)
			hosts = append(hosts, h)
		}
		var out []int
		for i := range hosts {
			for j := range hosts {
				out = append(out, topo.HopCount(hosts[i], hosts[j]))
			}
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hop counts differ across identical builds at %d", i)
		}
	}
}

func TestRTTOrdering(t *testing.T) {
	b := NewBuilder(5)
	b.AddCountry("CN", Asia)
	b.AddCountry("IT", Europe)
	b.AddCountry("FR", Europe)
	cnAS := b.AddAS("CN")
	itAS := b.AddAS("IT")
	frAS := b.AddAS("FR")
	cnSub := b.AddSubnet(cnAS)
	itSub1 := b.AddSubnet(itAS)
	itSub2 := b.AddSubnet(itAS)
	frSub := b.AddSubnet(frAS)
	topo := b.Build()

	it1a, _ := topo.NewHost(itSub1)
	it1b, _ := topo.NewHost(itSub1)
	it2, _ := topo.NewHost(itSub2)
	fr, _ := topo.NewHost(frSub)
	cn, _ := topo.NewHost(cnSub)

	local := topo.RTT(it1a, it1b)
	national := topo.RTT(it1a, it2)
	continental := topo.RTT(it1a, fr)
	intercont := topo.RTT(it1a, cn)

	if !(local < national && national < continental && continental < intercont) {
		t.Errorf("RTT ordering violated: local=%v national=%v continental=%v intercontinental=%v",
			local, national, continental, intercont)
	}
	if local > 2*time.Millisecond {
		t.Errorf("same-subnet RTT = %v, want sub-millisecond scale", local)
	}
	if intercont < 100*time.Millisecond {
		t.Errorf("CN–EU RTT = %v, want ≥ 100ms", intercont)
	}
}

// The calibration target from §III-B: a China-dominant swarm observed from
// European probes should see a hop-count median around 19 (paper: 18–20).
// We allow a wider band here and let the experiment layer report the exact
// value; the point is that the constants are in the right regime.
func TestHopMedianCalibration(t *testing.T) {
	b := NewBuilder(77)
	b.AddCountry("CN", Asia)
	b.AddCountry("IT", Europe)
	b.AddCountry("HU", Europe)
	b.AddCountry("FR", Europe)
	b.AddCountry("PL", Europe)
	var cnSubs, euSubs []SubnetID
	for i := 0; i < 40; i++ {
		asn := b.AddAS("CN")
		for j := 0; j < 3; j++ {
			cnSubs = append(cnSubs, b.AddSubnet(asn))
		}
	}
	for _, cc := range []CC{"IT", "HU", "FR", "PL"} {
		for i := 0; i < 3; i++ {
			asn := b.AddAS(cc)
			euSubs = append(euSubs, b.AddSubnet(asn))
		}
	}
	topo := b.Build()

	rng := rand.New(rand.NewSource(9))
	var probes, peers []Host
	for i := 0; i < 20; i++ {
		h, err := topo.NewHost(euSubs[rng.Intn(len(euSubs))])
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, h)
	}
	for i := 0; i < 400; i++ {
		h, err := topo.NewHost(cnSubs[rng.Intn(len(cnSubs))])
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, h)
	}
	var s stats.Sample
	for _, p := range probes {
		for _, e := range peers {
			s.Add(float64(topo.HopCount(p, e)))
		}
	}
	med := s.Median()
	if med < 12 || med > 26 {
		t.Errorf("hop median = %v, want in [12, 26] (paper: 18-20)", med)
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics(t, func() { NewBuilder(1).AddAS("XX") })
	assertPanics(t, func() {
		b := NewBuilder(1)
		b.AddCountry("IT", Europe)
		b.AddCountry("IT", Asia)
	})
	assertPanics(t, func() { NewBuilder(1).AddSubnet(ASN(1)) })
	assertPanics(t, func() { NewBuilder(1).Build() })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestASesListing(t *testing.T) {
	topo, _ := buildSmall(t, 6)
	ases := topo.ASes()
	if len(ases) != 5 {
		t.Fatalf("ASes = %d, want 5", len(ases))
	}
	for i := 1; i < len(ases); i++ {
		if ases[i].Number <= ases[i-1].Number {
			t.Error("ASes not sorted by number")
		}
	}
	if topo.Subnets() != 10 {
		t.Errorf("Subnets = %d, want 10", topo.Subnets())
	}
}

func TestCountryOfAS(t *testing.T) {
	topo, _ := buildSmall(t, 7)
	ases := topo.ASes()
	cc, ok := topo.CountryOfAS(ases[0].Number)
	if !ok || cc == "" {
		t.Error("CountryOfAS failed for known AS")
	}
	if _, ok := topo.CountryOfAS(ASN(1)); ok {
		t.Error("CountryOfAS should fail for unknown AS")
	}
}

func TestSameCountryASesPeerCloser(t *testing.T) {
	// Statistical sanity: average AS distance between same-country AS
	// pairs should not exceed that of cross-country pairs, because the
	// builder prefers same-country peering. Run over several seeds to
	// avoid flakiness from a single random graph.
	var same, cross stats.Accumulator
	for seed := int64(0); seed < 10; seed++ {
		b := NewBuilder(seed)
		b.AddCountry("CN", Asia)
		b.AddCountry("IT", Europe)
		subByAS := make(map[ASN]SubnetID)
		var asns []ASN
		for i := 0; i < 12; i++ {
			cc := CC("CN")
			if i%2 == 0 {
				cc = "IT"
			}
			asn := b.AddAS(cc)
			asns = append(asns, asn)
			subByAS[asn] = b.AddSubnet(asn)
		}
		topo := b.Build()
		hosts := make(map[ASN]Host)
		for _, asn := range asns {
			h, err := topo.NewHost(subByAS[asn])
			if err != nil {
				t.Fatal(err)
			}
			hosts[asn] = h
		}
		for i, a := range asns {
			for _, bb := range asns[i+1:] {
				ccA, _ := topo.CountryOfAS(a)
				ccB, _ := topo.CountryOfAS(bb)
				h := float64(topo.HopCount(hosts[a], hosts[bb]))
				if ccA == ccB {
					same.Add(h)
				} else {
					cross.Add(h)
				}
			}
		}
	}
	if same.Mean() > cross.Mean()+1.0 {
		t.Errorf("same-country AS hops (%.2f) much larger than cross-country (%.2f)",
			same.Mean(), cross.Mean())
	}
}

func BenchmarkHopCount(b *testing.B) {
	bld := NewBuilder(1)
	bld.AddCountry("CN", Asia)
	bld.AddCountry("IT", Europe)
	var subs []SubnetID
	for i := 0; i < 50; i++ {
		cc := CC("CN")
		if i%5 == 0 {
			cc = "IT"
		}
		asn := bld.AddAS(cc)
		subs = append(subs, bld.AddSubnet(asn))
	}
	topo := bld.Build()
	var hosts []Host
	for _, sn := range subs {
		h, _ := topo.NewHost(sn)
		hosts = append(hosts, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topo.HopCount(hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)])
	}
}
