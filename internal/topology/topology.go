// Package topology models the network underlay the emulated swarm lives on:
// countries, autonomous systems, subnets, IP addressing, and a deterministic
// router-hop / RTT path model.
//
// The paper's measurement framework consumes exactly four facts about a peer
// pair — same subnet?, same AS?, same country?, and the router hop count
// (inferred from TTL) — plus path latency and bottleneck capacity for the
// traffic dynamics. This package is the oracle for the first four and for
// latency; capacity lives in internal/access.
//
// Everything is deterministic: the AS graph is built from a seed, and
// per-pair hop counts derive from hashes of the endpoint identifiers, so the
// same world always produces the same TTLs (and therefore the same inferred
// distances) without storing an O(hosts²) matrix.
package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"
)

// CC is an ISO-3166-style country code ("CN", "HU", "IT", "FR", "PL", ...).
type CC string

// Continent is a coarse region used only for propagation-delay modelling.
type Continent int

// Continents relevant to the experiments: the swarm is China-dominant and
// the probes are European, so the Asia–Europe distance drives most RTTs.
const (
	Europe Continent = iota
	Asia
	NorthAmerica
	SouthAmerica
	Africa
	Oceania
)

// ASN is an autonomous system number.
type ASN int

// SubnetID identifies one /24 allocated by the builder.
type SubnetID int

// AS describes one autonomous system.
type AS struct {
	Number  ASN
	Country CC
	// Transit reflects how deep in the provider hierarchy the AS sits;
	// it adds router hops when traffic crosses it. Assigned by the builder.
	Transit int
}

// Subnet describes one layer-3 subnet (always a /24 here; the granularity
// matches the paper's NET metric, which tests "same subnetwork").
type Subnet struct {
	ID     SubnetID
	AS     ASN
	Prefix netip.Prefix
	// edgeHops is the access/aggregation depth between hosts in this
	// subnet and the AS core: it contributes to every off-subnet path.
	edgeHops int
}

// Host is a network attachment point: an address plus its location facts.
type Host struct {
	Addr    netip.Addr
	Subnet  SubnetID
	AS      ASN
	Country CC
}

// Builder assembles a Topology. It is not safe for concurrent use.
type Builder struct {
	rng        *rand.Rand
	continents map[CC]Continent
	ases       []*AS
	asIndex    map[ASN]int
	subnets    []*Subnet
	nextASN    ASN
	nextNet    int
}

// NewBuilder returns a topology builder seeded for deterministic graph
// generation.
func NewBuilder(seed int64) *Builder {
	return &Builder{
		rng:        rand.New(rand.NewSource(seed)),
		continents: make(map[CC]Continent),
		asIndex:    make(map[ASN]int),
		nextASN:    64512, // private-use ASN range, clearly synthetic
	}
}

// AddCountry declares a country and the continent it sits on. Declaring a
// country twice with different continents panics — it would silently skew
// every RTT involving it.
func (b *Builder) AddCountry(cc CC, cont Continent) {
	if prev, ok := b.continents[cc]; ok && prev != cont {
		panic(fmt.Sprintf("topology: country %s redeclared on different continent", cc))
	}
	b.continents[cc] = cont
}

// AddAS creates a new autonomous system in cc and returns its number.
// The country must have been declared first.
func (b *Builder) AddAS(cc CC) ASN {
	if _, ok := b.continents[cc]; !ok {
		panic(fmt.Sprintf("topology: AddAS for undeclared country %s", cc))
	}
	asn := b.nextASN
	b.nextASN++
	b.asIndex[asn] = len(b.ases)
	b.ases = append(b.ases, &AS{
		Number:  asn,
		Country: cc,
		Transit: 2 + b.rng.Intn(3), // 2..4 router hops to cross this AS
	})
	return asn
}

// AddSubnet allocates a fresh /24 inside the given AS and returns its id.
func (b *Builder) AddSubnet(asn ASN) SubnetID {
	if _, ok := b.asIndex[asn]; !ok {
		panic(fmt.Sprintf("topology: AddSubnet for unknown AS%d", asn))
	}
	id := SubnetID(len(b.subnets))
	// 10.x.y.0/24 with x.y derived from the allocation counter keeps
	// addresses unique and recognizably synthetic.
	n := b.nextNet
	b.nextNet++
	prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(n >> 8), byte(n), 0}), 24)
	b.subnets = append(b.subnets, &Subnet{
		ID:       id,
		AS:       asn,
		Prefix:   prefix,
		edgeHops: 1 + b.rng.Intn(3), // 1..3 hops from host to AS core
	})
	return id
}

// Build wires the AS-level graph and freezes the topology. Each AS peers
// with a handful of earlier ASes, preferring same-country neighbours, which
// yields the short AS paths (2–5) real BGP tables show; a final pass
// guarantees connectivity.
func (b *Builder) Build() *Topology {
	n := len(b.ases)
	if n == 0 {
		panic("topology: Build with no ASes")
	}
	adj := make([][]int, n)
	link := func(i, j int) {
		if i == j {
			return
		}
		for _, k := range adj[i] {
			if k == j {
				return
			}
		}
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for i := 1; i < n; i++ {
		degree := 1 + b.rng.Intn(3)
		for d := 0; d < degree; d++ {
			// Prefer a same-country AS with probability 1/2 when one
			// exists: national ISPs peer locally first.
			j := -1
			if b.rng.Intn(2) == 0 {
				var candidates []int
				for k := 0; k < i; k++ {
					if b.ases[k].Country == b.ases[i].Country {
						candidates = append(candidates, k)
					}
				}
				if len(candidates) > 0 {
					j = candidates[b.rng.Intn(len(candidates))]
				}
			}
			if j < 0 {
				j = b.rng.Intn(i)
			}
			link(i, j)
		}
	}

	// All-pairs AS distances by BFS from every node; n is small (≤ a few
	// hundred), so O(n·(n+e)) is fine and exact.
	dist := make([][]int8, n)
	for s := 0; s < n; s++ {
		d := make([]int8, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if d[v] < 0 {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		dist[s] = d
	}

	t := &Topology{
		continents: make(map[CC]Continent, len(b.continents)),
		ases:       b.ases,
		asIndex:    b.asIndex,
		subnets:    b.subnets,
		asDist:     dist,
		bySubnet:   make(map[netip.Prefix]*Subnet, len(b.subnets)),
		nextHostIP: make([]int, len(b.subnets)),
	}
	for cc, cont := range b.continents {
		t.continents[cc] = cont
	}
	for _, s := range b.subnets {
		t.bySubnet[s.Prefix] = s
	}
	return t
}

// Topology is the frozen underlay. Safe for concurrent reads after Build;
// NewHost mutates allocation state and must not race with itself.
type Topology struct {
	continents map[CC]Continent
	ases       []*AS
	asIndex    map[ASN]int
	subnets    []*Subnet
	asDist     [][]int8
	bySubnet   map[netip.Prefix]*Subnet
	nextHostIP []int
}

// ASes lists all autonomous systems, ordered by number.
func (t *Topology) ASes() []AS {
	out := make([]AS, len(t.ases))
	for i, a := range t.ases {
		out[i] = *a
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Subnets reports the number of subnets.
func (t *Topology) Subnets() int { return len(t.subnets) }

// CountryOfAS reports the country an AS sits in.
func (t *Topology) CountryOfAS(asn ASN) (CC, bool) {
	i, ok := t.asIndex[asn]
	if !ok {
		return "", false
	}
	return t.ases[i].Country, true
}

// NewHost allocates the next address in the subnet and returns the fully
// located host. It fails when the /24 is exhausted (253 usable hosts), which
// surfaces world-generation bugs instead of silently wrapping addresses.
func (t *Topology) NewHost(id SubnetID) (Host, error) {
	if int(id) < 0 || int(id) >= len(t.subnets) {
		return Host{}, fmt.Errorf("topology: unknown subnet %d", id)
	}
	s := t.subnets[id]
	n := t.nextHostIP[id]
	if n >= 253 {
		return Host{}, fmt.Errorf("topology: subnet %v exhausted", s.Prefix)
	}
	t.nextHostIP[id] = n + 1
	base := s.Prefix.Addr().As4()
	base[3] = byte(n + 1) // .1 .. .253
	cc, _ := t.CountryOfAS(s.AS)
	return Host{
		Addr:    netip.AddrFrom4(base),
		Subnet:  s.ID,
		AS:      s.AS,
		Country: cc,
	}, nil
}

// Locate resolves an address produced by NewHost back to its subnet, AS and
// country — the synthetic equivalent of the whois/GeoIP lookups the paper's
// offline analysis performs.
func (t *Topology) Locate(addr netip.Addr) (Host, bool) {
	p := netip.PrefixFrom(addr, 24).Masked()
	s, ok := t.bySubnet[p]
	if !ok {
		return Host{}, false
	}
	cc, _ := t.CountryOfAS(s.AS)
	return Host{Addr: addr, Subnet: s.ID, AS: s.AS, Country: cc}, true
}

// splitmix64 is a tiny strong integer mixer; it gives every unordered pair a
// stable pseudo-random value without storing a matrix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairMix hashes an unordered pair so that f(a,b) == f(b,a): Internet paths
// in this model are symmetric, matching the paper's working assumption that
// coarse-granularity partitions neutralize path asymmetry (§III-C).
func pairMix(a, b uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	return splitmix64(a*0x1f123bb5159a55e5 + splitmix64(b))
}

// HopCount reports the number of router hops between two hosts:
//
//	same subnet          → 0 (the paper's NET partition)
//	same AS, other subnet→ edge depths + 1..3 core hops
//	different AS         → edge depths + per-AS transit along the BFS
//	                       AS path + a stable pair perturbation
//
// The constants are calibrated so a China-dominant swarm observed from
// European probes has a hop median ≈ 19, matching §III-B ("the actual HOP
// median ranges from 18 to 20").
func (t *Topology) HopCount(a, b Host) int {
	if a.Subnet == b.Subnet {
		return 0
	}
	sa, sb := t.subnets[a.Subnet], t.subnets[b.Subnet]
	if a.AS == b.AS {
		core := 1 + int(pairMix(uint64(a.Subnet), uint64(b.Subnet))%3)
		return sa.edgeHops + core + sb.edgeHops
	}
	ia, ib := t.asIndex[a.AS], t.asIndex[b.AS]
	d := int(t.asDist[ia][ib])
	if d < 0 {
		// Disconnected AS graph cannot happen for builder-made
		// topologies, but keep a sane fallback for hand-built tests.
		d = 5
	}
	transit := 0
	// Crossing d inter-AS links traverses d+1 ASes; charge each AS its
	// transit depth. Endpoints are charged via edgeHops plus half transit.
	transit += t.ases[ia].Transit + t.ases[ib].Transit
	for k := 0; k < d-1; k++ {
		transit += 2 // interior transit ASes, typical backbone crossing
	}
	jitterSrc := pairMix(uint64(a.AS)*31+uint64(a.Subnet), uint64(b.AS)*31+uint64(b.Subnet))
	jitter := int(jitterSrc % 4)
	return sa.edgeHops + sb.edgeHops + d + transit + jitter
}

// propagation distances in one direction.
const (
	rttSameSubnet     = 200 * time.Microsecond
	rttSameCountry    = 4 * time.Millisecond
	rttSameContinent  = 15 * time.Millisecond
	rttInterContinent = 90 * time.Millisecond
	rttPerHop         = 400 * time.Microsecond
)

// OneWayDelay reports the propagation+forwarding delay from a to b. It is
// symmetric by construction.
func (t *Topology) OneWayDelay(a, b Host) time.Duration {
	if a.Subnet == b.Subnet {
		return rttSameSubnet / 2
	}
	var base time.Duration
	switch {
	case a.Country == b.Country:
		base = rttSameCountry
	case t.continents[a.Country] == t.continents[b.Country]:
		base = rttSameContinent
	default:
		base = rttInterContinent
	}
	hops := t.HopCount(a, b)
	// Deterministic per-pair spread (±25%) so RTTs are not quantized.
	spread := pairMix(uint64(a.Subnet)*977+uint64(b.AS), uint64(b.Subnet)*977+uint64(a.AS)) % 50
	factor := 0.75 + float64(spread)/100
	d := time.Duration(float64(base)*factor) + time.Duration(hops)*rttPerHop
	return d
}

// RTT reports the round-trip time between two hosts.
func (t *Topology) RTT(a, b Host) time.Duration {
	return 2 * t.OneWayDelay(a, b)
}

// MinInterGroupDelay reports the minimum OneWayDelay between any two hosts
// whose ASes fall in different groups, for a partition of (some of) the
// ASes into groups. The sharded engine uses this as its conservative
// lookahead: with every AS kept whole inside one shard, no cross-shard
// message can arrive sooner than this bound.
//
// OneWayDelay is a pure function of the endpoints' (Subnet, AS, Country),
// so the exact minimum is found by scanning subnet pairs with synthetic
// hosts — O(subnets²), at most a few million cheap evaluations even for
// 10⁵-peer worlds, paid once per run. ASes absent from the partition map
// host no peers and are skipped. Returns 0 when no cross-group pair exists
// (fewer than two populated groups).
func (t *Topology) MinInterGroupDelay(group map[ASN]int) time.Duration {
	best := time.Duration(0)
	found := false
	for i := 0; i < len(t.subnets); i++ {
		sa := t.subnets[i]
		ga, ok := group[sa.AS]
		if !ok {
			continue
		}
		ca, _ := t.CountryOfAS(sa.AS)
		ha := Host{Subnet: sa.ID, AS: sa.AS, Country: ca}
		for j := i + 1; j < len(t.subnets); j++ {
			sb := t.subnets[j]
			gb, ok := group[sb.AS]
			if !ok || gb == ga {
				continue
			}
			cb, _ := t.CountryOfAS(sb.AS)
			d := t.OneWayDelay(ha, Host{Subnet: sb.ID, AS: sb.AS, Country: cb})
			if !found || d < best {
				best, found = d, true
			}
		}
	}
	return best
}
