// Package access models peer access links: asymmetric capacity, NAT and
// firewall flags, FIFO serialization of transfers, and — critically for the
// paper's BW metric — packet-train timing whose inter-packet gaps reflect
// the path bottleneck.
//
// §III-B of the paper infers a peer's access class from the minimum
// inter-packet gap (IPG) inside video-chunk packet trains: chunks are sent
// as bursts of ~1250-byte packets, so consecutive arrivals act as packet
// pairs and their spacing equals the serialization time at the path
// bottleneck (1 ms ⇔ 10 Mbit/s). Train reproduces exactly that observable.
package access

import (
	"fmt"
	"math/rand"
	"time"

	"napawine/internal/sim"
	"napawine/internal/units"
)

// Kind labels the flavour of attachment, mirroring Table I's Access column.
type Kind int

// Access kinds seen in the testbed inventory.
const (
	Institutional Kind = iota // "high-bw" LAN in the paper
	DSL
	CATV
	FTTH
)

// String renders the kind with the paper's vocabulary.
func (k Kind) String() string {
	switch k {
	case Institutional:
		return "high-bw"
	case DSL:
		return "DSL"
	case CATV:
		return "CATV"
	case FTTH:
		return "FTTH"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Link describes one peer's access link.
type Link struct {
	Kind     Kind
	Spec     units.AccessSpec
	NAT      bool // behind a NAT: no unsolicited inbound
	Firewall bool // behind a firewall: no inbound at all
}

// HighBandwidth reports whether the peer falls in the paper's preferred BW
// partition as ground truth: an uplink above 10 Mbit/s, the capacity whose
// 1250-byte serialization time equals the 1 ms IPG threshold. (The analysis
// layer must *infer* this from traces; this accessor is for world building
// and for validating the inference.)
func (l Link) HighBandwidth() bool { return l.Spec.Up > 10*units.Mbps }

// AcceptsFrom reports whether a connection initiated by from can be
// established toward l. Firewalled hosts accept nothing inbound; NATted
// hosts accept inbound only from publicly reachable initiators that they
// could also reach back (hole punching between two NATted peers is out of
// scope, as it was for the 2008-era clients).
func (l Link) AcceptsFrom(from Link) bool {
	if l.Firewall {
		return false
	}
	if l.NAT && (from.NAT || from.Firewall) {
		return false
	}
	return true
}

// Reachable reports whether at least one of the two peers can initiate a
// usable connection to the other.
func Reachable(a, b Link) bool {
	return a.AcceptsFrom(b) || b.AcceptsFrom(a)
}

// LossTailDrop is the only loss discipline the bounded queue implements
// today: a transfer arriving at a full queue is discarded outright, the way
// a FIFO router queue drops the tail of a burst. The CongestionModel field
// exists so alternative disciplines (RED-style early drop) can register
// later without changing any plumbing.
const LossTailDrop = "tail-drop"

// CongestionModel configures the bounded-queue behaviour of ports. The zero
// value — unbounded queue, no loss — is the historical model and leaves the
// event stream byte-identical to builds without the knob.
type CongestionModel struct {
	// QueueDepth bounds how many transfers a port queues: a TryReserve
	// arriving with this many reservations outstanding is tail-dropped.
	// 0 keeps the unbounded FIFO.
	QueueDepth int
	// LossMode names the drop discipline; "" selects LossTailDrop.
	// Meaningful only with QueueDepth > 0.
	LossMode string
}

// Enabled reports whether the model bounds queues at all.
func (m CongestionModel) Enabled() bool { return m.QueueDepth > 0 }

// Validate rejects malformed models: negative depths, unknown loss modes,
// or a loss mode without a queue bound to apply it to.
func (m CongestionModel) Validate() error {
	if m.QueueDepth < 0 {
		return fmt.Errorf("access: negative queue depth %d", m.QueueDepth)
	}
	switch m.LossMode {
	case "", LossTailDrop:
	default:
		return fmt.Errorf("access: unknown loss mode %q (valid: %q)", m.LossMode, LossTailDrop)
	}
	if m.LossMode != "" && m.QueueDepth == 0 {
		return fmt.Errorf("access: loss mode %q without a queue depth", m.LossMode)
	}
	return nil
}

// Port serializes transfers over one direction of an access link in FIFO
// order. It is the mechanism that makes high-capacity peers complete chunk
// uploads sooner and therefore get re-selected — the emergent side of the
// BW preference every application shows.
//
// A port may carry a bounded queue (SetQueueLimit): TryReserve then
// tail-drops transfers that would exceed the bound, and the port counts
// accepted and dropped transfers for loss reporting. The default limit of 0
// keeps the historical unbounded FIFO.
type Port struct {
	rate      units.BitRate
	busyUntil sim.Time
	// queued counts transfers currently reserved but not yet finished,
	// for observability and back-pressure decisions in the overlay.
	queued int
	// busyAccum integrates busy time for utilization reporting.
	busyAccum time.Duration
	// limit bounds queued when positive; 0 = unbounded.
	limit int
	// accepted and dropped count TryReserve/Reserve outcomes over the
	// port's lifetime (drops only happen under a positive limit).
	accepted int64
	dropped  int64
}

// NewPort builds a port of the given rate. A non-positive rate panics: a
// zero-capacity access link would deadlock the swarm invisibly.
func NewPort(rate units.BitRate) *Port {
	if rate <= 0 {
		panic(fmt.Sprintf("access: non-positive port rate %v", rate))
	}
	return &Port{rate: rate}
}

// Rate reports the port's capacity.
func (p *Port) Rate() units.BitRate { return p.rate }

// SetRate changes the port's capacity from now on. Transfers already
// reserved keep their booked completion times (the bits in flight were
// committed at the old rate); only future reservations serialize at the new
// rate. Scenario-driven access-link throttling uses this. A non-positive
// rate panics, as in NewPort.
func (p *Port) SetRate(rate units.BitRate) {
	if rate <= 0 {
		panic(fmt.Sprintf("access: non-positive port rate %v", rate))
	}
	p.rate = rate
}

// SetQueueLimit bounds the port's transfer queue from now on: a TryReserve
// arriving with limit reservations outstanding is tail-dropped. 0 restores
// the unbounded FIFO; negative panics.
func (p *Port) SetQueueLimit(limit int) {
	if limit < 0 {
		panic(fmt.Sprintf("access: negative queue limit %d", limit))
	}
	p.limit = limit
}

// QueueLimit reports the configured bound (0 = unbounded).
func (p *Port) QueueLimit() int { return p.limit }

// drain resets the queue counter once every booked transfer has finished.
// Reserve used to do this lazily on its next call, which left the internal
// counter stale between reservations (Queued compensated by checking
// busyUntil); now every entry point that reads or extends the queue drains
// first, so the counter is always exact.
func (p *Port) drain(now sim.Time) {
	if p.busyUntil <= now {
		p.queued = 0
	}
}

// Queued reports how many reservations are outstanding at now.
func (p *Port) Queued(now sim.Time) int {
	p.drain(now)
	return p.queued
}

// Backlog reports how long a transfer reserved at now would wait before
// starting.
func (p *Port) Backlog(now sim.Time) time.Duration {
	if p.busyUntil <= now {
		return 0
	}
	return p.busyUntil.Sub(now)
}

// Reserve books the port for size bytes starting no earlier than now and
// returns the transfer's start and end instants. Reservations are FIFO:
// each begins when the previous one ends. Reserve never drops — it is the
// must-send path (control traffic, callers predating the bounded queue);
// congestion-sensitive callers use TryReserve.
func (p *Port) Reserve(now sim.Time, size units.ByteSize) (start, end sim.Time) {
	p.drain(now)
	return p.book(now, size)
}

// TryReserve is Reserve under the port's queue bound: with a positive limit
// and that many reservations already outstanding the transfer is
// tail-dropped (counted, ok=false) instead of queued. With no limit it is
// exactly Reserve.
func (p *Port) TryReserve(now sim.Time, size units.ByteSize) (start, end sim.Time, ok bool) {
	p.drain(now)
	if p.limit > 0 && p.queued >= p.limit {
		p.dropped++
		return 0, 0, false
	}
	start, end = p.book(now, size)
	return start, end, true
}

// book extends the FIFO by one transfer; callers have already drained.
func (p *Port) book(now sim.Time, size units.ByteSize) (start, end sim.Time) {
	start = now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	d := p.rate.TransmitTime(size)
	end = start.Add(d)
	p.busyUntil = end
	p.queued++
	p.accepted++
	p.busyAccum += d
	return start, end
}

// BusyTime reports the total serialization time booked so far; dividing by
// the experiment duration yields link utilization.
func (p *Port) BusyTime() time.Duration { return p.busyAccum }

// Utilization reports the fraction of elapsed the port spent serializing
// booked transfers (may exceed 1 while a backlog extends past "now").
func (p *Port) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(p.busyAccum) / float64(elapsed)
}

// Accepted reports how many transfers the port has booked over its
// lifetime; Dropped how many the queue bound tail-dropped. LossRate is
// drops over offered load (0 when nothing was offered).
func (p *Port) Accepted() int64 { return p.accepted }

// Dropped reports the lifetime tail-drop count (0 without a queue limit).
func (p *Port) Dropped() int64 { return p.dropped }

// LossRate reports dropped / (accepted + dropped), 0 when idle.
func (p *Port) LossRate() float64 {
	offered := p.accepted + p.dropped
	if offered == 0 {
		return 0
	}
	return float64(p.dropped) / float64(offered)
}

// MTU-sized payload used to packetize chunks. 1250 bytes is the paper's own
// calibration packet (1 ms at 10 Mbit/s).
const PacketPayload = 1250 * units.Byte

// Packetize splits a transfer of size bytes into MTU-sized packet payloads,
// last packet possibly short. Size zero yields no packets.
func Packetize(size units.ByteSize) []units.ByteSize {
	return PacketizeInto(nil, size)
}

// PacketizeInto is Packetize writing into dst's capacity, growing it only
// when too small. Serving loops that packetize the same chunk size on every
// transfer thread one scratch slice through it instead of allocating per
// chunk.
func PacketizeInto(dst []units.ByteSize, size units.ByteSize) []units.ByteSize {
	if size <= 0 {
		return nil
	}
	n := int((size + PacketPayload - 1) / PacketPayload)
	if cap(dst) < n {
		dst = make([]units.ByteSize, n)
	}
	dst = dst[:n]
	for i := 0; i < n-1; i++ {
		dst[i] = PacketPayload
	}
	dst[n-1] = size - units.ByteSize(n-1)*PacketPayload
	return dst
}

// Train computes per-packet departure and arrival instants for a burst of
// packets sent back-to-back from a sender uplink of rate up toward a
// receiver downlink of rate down across a path with one-way delay owd.
//
// Departures are spaced by uplink serialization. Each arrival completes
// after the packet also serializes through the downlink, and cannot precede
// the previous arrival plus that serialization (store-and-forward FIFO).
// Consequently the receiver-side gap between consecutive full-size packets
// equals the serialization time at min(up, down) — exactly the packet-pair
// observable the paper's BW classifier relies on.
//
// jitter, when non-nil, adds a uniform random forwarding delay in
// [0, maxJitter) to each packet's network traversal. Jitter can only widen
// gaps (or leave the bottleneck-imposed floor intact), never compress them
// below the serialization floor, matching real FIFO queues.
func Train(start sim.Time, sizes []units.ByteSize, up, down units.BitRate,
	owd time.Duration, jitter *rand.Rand, maxJitter time.Duration) (departs, arrives []sim.Time) {
	return TrainInto(nil, nil, start, sizes, up, down, owd, jitter, maxJitter)
}

// TrainInto is Train writing into the capacity of the two provided slices,
// growing them only when too small. The chunk-serving hot path reuses one
// pair of scratch slices per network, which removes the two per-transfer
// allocations Train itself would make. Jitter draws are identical to
// Train's, so swapping call styles never shifts the RNG stream.
func TrainInto(dstDeparts, dstArrives []sim.Time, start sim.Time, sizes []units.ByteSize,
	up, down units.BitRate, owd time.Duration, jitter *rand.Rand, maxJitter time.Duration) (departs, arrives []sim.Time) {

	if cap(dstDeparts) < len(sizes) {
		dstDeparts = make([]sim.Time, len(sizes))
	}
	if cap(dstArrives) < len(sizes) {
		dstArrives = make([]sim.Time, len(sizes))
	}
	departs = dstDeparts[:len(sizes)]
	arrives = dstArrives[:len(sizes)]
	bottleneck := up
	if down < bottleneck {
		bottleneck = down
	}
	cursor := start
	var prevArrive sim.Time
	for i, sz := range sizes {
		txUp := up.TransmitTime(sz)
		depart := cursor.Add(txUp) // instant the last bit leaves the sender
		cursor = depart
		departs[i] = depart

		delay := owd
		if jitter != nil && maxJitter > 0 {
			delay += time.Duration(jitter.Int63n(int64(maxJitter)))
		}
		txDown := down.TransmitTime(sz)
		arrive := depart.Add(delay + txDown)
		if i > 0 {
			// A later packet queues behind its predecessor along the
			// path FIFO: spacing never compresses below the packet's
			// serialization time at the path bottleneck.
			if floor := prevArrive.Add(bottleneck.TransmitTime(sz)); arrive < floor {
				arrive = floor
			}
		}
		arrives[i] = arrive
		prevArrive = arrive
	}
	return departs, arrives
}

// Profiles for world generation, in the spirit of Table I's population mix.
var (
	// LAN100 is the institutional "high-bw" attachment.
	LAN100 = Link{Kind: Institutional, Spec: units.Symmetric(100 * units.Mbps)}
	// LAN1000 is a well-provisioned campus attachment.
	LAN1000 = Link{Kind: Institutional, Spec: units.Symmetric(units.Gbps)}
	// DSL6 is the 6/0.512 home profile from Table I.
	DSL6 = Link{Kind: DSL, Spec: units.MustAccessSpec("6/0.512")}
	// DSL4 is the 4/0.384 home profile.
	DSL4 = Link{Kind: DSL, Spec: units.MustAccessSpec("4/0.384")}
	// DSL8 is the 8/0.384 home profile.
	DSL8 = Link{Kind: DSL, Spec: units.MustAccessSpec("8/0.384")}
	// DSL22 is the 22/1.8 home profile.
	DSL22 = Link{Kind: DSL, Spec: units.MustAccessSpec("22/1.8")}
	// DSL25 is the 2.5/0.384 home profile.
	DSL25 = Link{Kind: DSL, Spec: units.MustAccessSpec("2.5/0.384")}
	// CATV6 is the 6/0.512 cable profile.
	CATV6 = Link{Kind: CATV, Spec: units.MustAccessSpec("6/0.512")}
)
