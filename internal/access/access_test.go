package access

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"napawine/internal/sim"
	"napawine/internal/units"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Institutional: "high-bw",
		DSL:           "DSL",
		CATV:          "CATV",
		FTTH:          "FTTH",
		Kind(42):      "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestHighBandwidthThreshold(t *testing.T) {
	if !LAN100.HighBandwidth() {
		t.Error("100Mbps LAN should be high-bw")
	}
	if DSL22.HighBandwidth() {
		t.Error("22/1.8 DSL should not be high-bw (uplink 1.8Mbps)")
	}
	exactly10 := Link{Spec: units.Symmetric(10 * units.Mbps)}
	if exactly10.HighBandwidth() {
		t.Error("threshold is strict: exactly 10Mbps is not high-bw")
	}
}

func TestConnectivityMatrix(t *testing.T) {
	open := Link{}
	nat := Link{NAT: true}
	fw := Link{Firewall: true}
	natfw := Link{NAT: true, Firewall: true}

	cases := []struct {
		name      string
		from, to  Link
		canAccept bool
	}{
		{"open->open", open, open, true},
		{"open->nat", open, nat, true},
		{"nat->open", nat, open, true},
		{"nat->nat", nat, nat, false},
		{"any->fw", open, fw, false},
		{"nat->fw", nat, fw, false},
		{"fw->open", fw, open, true},
		{"fw->nat", fw, nat, false},
		{"natfw->open", natfw, open, true},
		{"open->natfw", open, natfw, false},
	}
	for _, c := range cases {
		if got := c.to.AcceptsFrom(c.from); got != c.canAccept {
			t.Errorf("%s: AcceptsFrom = %v, want %v", c.name, got, c.canAccept)
		}
	}
	if !Reachable(fw, open) {
		t.Error("fw peer should reach open peer (outbound)")
	}
	if Reachable(fw, natfw) {
		t.Error("fw and nat+fw peers should be mutually unreachable")
	}
}

func TestPortFIFO(t *testing.T) {
	p := NewPort(1 * units.Mbps) // 125000 B/s
	s1, e1 := p.Reserve(0, 125*units.KB)
	if s1 != 0 || e1 != sim.Time(time.Second) {
		t.Fatalf("first reservation (%v,%v), want (0,1s)", s1, e1)
	}
	// Second reservation queues behind the first.
	s2, e2 := p.Reserve(0, 125*units.KB)
	if s2 != sim.Time(time.Second) || e2 != sim.Time(2*time.Second) {
		t.Fatalf("second reservation (%v,%v), want (1s,2s)", s2, e2)
	}
	// A reservation after the port drained starts immediately.
	s3, _ := p.Reserve(sim.Time(5*time.Second), units.KB)
	if s3 != sim.Time(5*time.Second) {
		t.Fatalf("post-idle reservation starts at %v, want 5s", s3)
	}
}

func TestPortBacklogAndQueue(t *testing.T) {
	p := NewPort(1 * units.Mbps)
	if p.Backlog(0) != 0 || p.Queued(0) != 0 {
		t.Error("fresh port should be idle")
	}
	p.Reserve(0, 125*units.KB) // busy until 1s
	p.Reserve(0, 125*units.KB) // busy until 2s
	if got := p.Backlog(0); got != 2*time.Second {
		t.Errorf("backlog = %v, want 2s", got)
	}
	if got := p.Queued(0); got != 2 {
		t.Errorf("queued = %d, want 2", got)
	}
	if got := p.Backlog(sim.Time(3 * time.Second)); got != 0 {
		t.Errorf("drained backlog = %v, want 0", got)
	}
	if got := p.Queued(sim.Time(3 * time.Second)); got != 0 {
		t.Errorf("drained queue = %d, want 0", got)
	}
	if p.BusyTime() != 2*time.Second {
		t.Errorf("BusyTime = %v, want 2s", p.BusyTime())
	}
}

func TestPortZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPort(0) should panic")
		}
	}()
	NewPort(0)
}

func TestPacketize(t *testing.T) {
	if got := Packetize(0); got != nil {
		t.Errorf("Packetize(0) = %v, want nil", got)
	}
	one := Packetize(100 * units.Byte)
	if len(one) != 1 || one[0] != 100*units.Byte {
		t.Errorf("Packetize(100B) = %v", one)
	}
	exact := Packetize(2 * PacketPayload)
	if len(exact) != 2 || exact[0] != PacketPayload || exact[1] != PacketPayload {
		t.Errorf("Packetize(2*MTU) = %v", exact)
	}
	ragged := Packetize(2*PacketPayload + 7)
	if len(ragged) != 3 || ragged[2] != 7*units.Byte {
		t.Errorf("Packetize ragged = %v", ragged)
	}
}

// Property: packetization conserves bytes and only the last packet is short.
func TestPacketizeConservationProperty(t *testing.T) {
	f := func(kb uint16) bool {
		size := units.ByteSize(kb) * units.KB
		pkts := Packetize(size)
		var sum units.ByteSize
		for i, p := range pkts {
			sum += p
			if i < len(pkts)-1 && p != PacketPayload {
				return false
			}
			if p <= 0 {
				return false
			}
		}
		return sum == size || (size == 0 && len(pkts) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// The core §III-B observable: the minimum receiver-side IPG inside a chunk
// train equals the serialization time of a full packet at the bottleneck.
func TestTrainIPGReflectsBottleneck(t *testing.T) {
	cases := []struct {
		name     string
		up, down units.BitRate
		wantIPG  time.Duration
	}{
		{"100M->100M", 100 * units.Mbps, 100 * units.Mbps, 100 * time.Microsecond},
		{"10M->100M", 10 * units.Mbps, 100 * units.Mbps, time.Millisecond},
		{"100M->10M", 100 * units.Mbps, 10 * units.Mbps, time.Millisecond},
		{"DSL-up->100M", 512 * units.Kbps, 100 * units.Mbps, 19531250 * time.Nanosecond},
	}
	for _, c := range cases {
		sizes := Packetize(40 * units.KB) // 32-packet train
		_, arrives := Train(0, sizes, c.up, c.down, 10*time.Millisecond, nil, 0)
		minIPG := time.Duration(1 << 62)
		for i := 1; i < len(arrives)-1; i++ { // skip final short packet
			if g := arrives[i].Sub(arrives[i-1]); g < minIPG {
				minIPG = g
			}
		}
		if minIPG != c.wantIPG {
			t.Errorf("%s: min IPG = %v, want %v", c.name, minIPG, c.wantIPG)
		}
	}
}

// The classifier boundary: >10 Mbit/s bottleneck gives IPG < 1 ms,
// ≤10 Mbit/s gives IPG ≥ 1 ms — even under forwarding jitter, because
// jitter can only widen gaps above the serialization floor.
func TestTrainIPGClassifierBoundaryUnderJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := Packetize(48 * units.KB)
	for trial := 0; trial < 50; trial++ {
		_, fast := Train(0, sizes, 100*units.Mbps, 100*units.Mbps,
			25*time.Millisecond, rng, 2*time.Millisecond)
		minFast := minGap(fast)
		if minFast >= time.Millisecond {
			t.Fatalf("high-bw path min IPG %v ≥ 1ms under jitter", minFast)
		}
		_, slow := Train(0, sizes, 10*units.Mbps, 100*units.Mbps,
			25*time.Millisecond, rng, 2*time.Millisecond)
		if g := minGap(slow); g < time.Millisecond {
			t.Fatalf("10Mbps path min IPG %v < 1ms", g)
		}
	}
}

func minGap(arrives []sim.Time) time.Duration {
	min := time.Duration(1 << 62)
	for i := 1; i < len(arrives)-1; i++ {
		if g := arrives[i].Sub(arrives[i-1]); g < min {
			min = g
		}
	}
	return min
}

func TestTrainArrivalsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		up := units.BitRate(rng.Int63n(int64(100*units.Mbps))) + units.Kbps
		down := units.BitRate(rng.Int63n(int64(100*units.Mbps))) + units.Kbps
		sizes := Packetize(units.ByteSize(rng.Int63n(int64(100 * units.KB))))
		departs, arrives := Train(0, sizes, up, down,
			time.Duration(rng.Int63n(int64(200*time.Millisecond))),
			rng, time.Duration(rng.Int63n(int64(5*time.Millisecond))))
		for i := 1; i < len(arrives); i++ {
			if arrives[i] < arrives[i-1] {
				t.Fatal("arrivals not monotone")
			}
			if departs[i] < departs[i-1] {
				t.Fatal("departures not monotone")
			}
		}
		for i := range arrives {
			if arrives[i] < departs[i] {
				t.Fatal("packet arrived before it departed")
			}
		}
	}
}

func TestTrainEmpty(t *testing.T) {
	d, a := Train(0, nil, units.Mbps, units.Mbps, time.Millisecond, nil, 0)
	if len(d) != 0 || len(a) != 0 {
		t.Error("empty train should produce no packets")
	}
}

func TestTableIProfiles(t *testing.T) {
	// The profile constants must match Table I's spec strings.
	if DSL6.Spec.String() != "6/0.512" {
		t.Errorf("DSL6 = %v", DSL6.Spec)
	}
	if DSL22.Spec.String() != "22/1.8" {
		t.Errorf("DSL22 = %v", DSL22.Spec)
	}
	if DSL25.Spec.String() != "2.5/0.384" {
		t.Errorf("DSL25 = %v", DSL25.Spec)
	}
	if !LAN100.HighBandwidth() || !LAN1000.HighBandwidth() {
		t.Error("institutional profiles must be high-bw")
	}
	for _, l := range []Link{DSL4, DSL6, DSL8, DSL22, DSL25, CATV6} {
		if l.HighBandwidth() {
			t.Errorf("home profile %v should not be high-bw", l.Spec)
		}
	}
}

// BenchmarkTrain48KB measures the steady-state transfer hot path the
// simulator runs per served chunk: TrainInto refilling caller-owned
// scratch, as overlay.serveChunk does. Allocates only on the first
// iteration.
func BenchmarkTrain48KB(b *testing.B) {
	sizes := PacketizeInto(nil, 48*units.KB)
	rng := rand.New(rand.NewSource(1))
	var departs, arrives []sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		departs, arrives = TrainInto(departs, arrives, 0, sizes,
			100*units.Mbps, 100*units.Mbps, 20*time.Millisecond, rng, time.Millisecond)
	}
}

// TestTrainIntoReusesScratch pins the scratch contract: refilling dirty
// caller-owned slices yields exactly what a fresh Train call computes, and
// large-enough scratch is reused in place rather than reallocated.
func TestTrainIntoReusesScratch(t *testing.T) {
	sizes := PacketizeInto(nil, 48*units.KB)
	wantDep, wantArr := Train(100, sizes, 10*units.Mbps, 6*units.Mbps,
		30*time.Millisecond, rand.New(rand.NewSource(7)), 2*time.Millisecond)

	dirty := func(n int) []sim.Time {
		s := make([]sim.Time, n)
		for i := range s {
			s[i] = sim.Time(-1)
		}
		return s
	}
	dep, arr := dirty(len(sizes)+5), dirty(len(sizes)+5)
	depBase, arrBase := &dep[0], &arr[0]
	gotDep, gotArr := TrainInto(dep, arr, 100, sizes, 10*units.Mbps, 6*units.Mbps,
		30*time.Millisecond, rand.New(rand.NewSource(7)), 2*time.Millisecond)

	if len(gotDep) != len(wantDep) || len(gotArr) != len(wantArr) {
		t.Fatalf("lengths differ: got %d/%d, want %d/%d", len(gotDep), len(gotArr), len(wantDep), len(wantArr))
	}
	for i := range wantDep {
		if gotDep[i] != wantDep[i] || gotArr[i] != wantArr[i] {
			t.Fatalf("packet %d differs: got (%v, %v), want (%v, %v)", i, gotDep[i], gotArr[i], wantDep[i], wantArr[i])
		}
	}
	if &gotDep[0] != depBase || &gotArr[0] != arrBase {
		t.Error("TrainInto reallocated despite sufficient scratch capacity")
	}

	// Undersized scratch must grow, not truncate.
	gotDep, gotArr = TrainInto(make([]sim.Time, 0, 1), nil, 100, sizes, 10*units.Mbps, 6*units.Mbps,
		30*time.Millisecond, rand.New(rand.NewSource(7)), 2*time.Millisecond)
	for i := range wantDep {
		if gotDep[i] != wantDep[i] || gotArr[i] != wantArr[i] {
			t.Fatalf("grown scratch packet %d differs", i)
		}
	}
}

// TestPacketizeIntoReusesScratch pins the same contract for PacketizeInto.
func TestPacketizeIntoReusesScratch(t *testing.T) {
	want := Packetize(48 * units.KB)
	scratch := make([]units.ByteSize, 64)
	base := &scratch[0]
	got := PacketizeInto(scratch, 48*units.KB)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != base {
		t.Error("PacketizeInto reallocated despite sufficient scratch capacity")
	}
}

// TestPortQueuedAcrossDrainBoundaries pins the explicit-drain fix: the
// internal queue counter used to reset only lazily inside the next Reserve,
// so any accessor-only sequence accumulated stale state. Now every entry
// point drains first and the counter is exact at all times.
func TestPortQueuedAcrossDrainBoundaries(t *testing.T) {
	p := NewPort(1 * units.Mbps)
	p.Reserve(0, 125*units.KB) // busy until 1s
	p.Reserve(0, 125*units.KB) // busy until 2s
	if got := p.Queued(sim.Time(1500 * time.Millisecond)); got != 2 {
		t.Errorf("mid-backlog queued = %d, want 2", got)
	}
	// Reading Queued past the drain boundary resets the counter...
	if got := p.Queued(sim.Time(3 * time.Second)); got != 0 {
		t.Errorf("post-drain queued = %d, want 0", got)
	}
	// ...and a reservation after the read counts from zero, not from the
	// stale pre-drain value.
	p.Reserve(sim.Time(3*time.Second), 125*units.KB)
	if got := p.Queued(sim.Time(3 * time.Second)); got != 1 {
		t.Errorf("post-drain reservation queued = %d, want 1", got)
	}
	if got := p.Backlog(sim.Time(3 * time.Second)); got != time.Second {
		t.Errorf("post-drain backlog = %v, want 1s", got)
	}
}

// TestPortSetRateMidBacklog pins the throttle contract while a backlog
// stands: booked transfers keep their completion times, later reservations
// serialize at the new rate behind them, and Queued/Backlog stay exact
// through the change.
func TestPortSetRateMidBacklog(t *testing.T) {
	p := NewPort(1 * units.Mbps)
	p.Reserve(0, 125*units.KB) // busy until 1s at the old rate
	p.SetRate(2 * units.Mbps)
	if got := p.Backlog(0); got != time.Second {
		t.Errorf("backlog after SetRate = %v, want 1s (booked transfer keeps its time)", got)
	}
	start, end := p.Reserve(0, 125*units.KB) // 0.5s at the new rate
	if start != sim.Time(time.Second) || end != sim.Time(1500*time.Millisecond) {
		t.Errorf("post-throttle reservation (%v,%v), want (1s,1.5s)", start, end)
	}
	if got := p.Queued(0); got != 2 {
		t.Errorf("queued mid-backlog = %d, want 2", got)
	}
	if got := p.Queued(sim.Time(2 * time.Second)); got != 0 {
		t.Errorf("queued after drain = %d, want 0", got)
	}
}

// TestPortTryReserveTailDrop exercises the bounded queue: at the limit a
// TryReserve is tail-dropped and counted, the backlog is untouched, and the
// port accepts again once the queue drains.
func TestPortTryReserveTailDrop(t *testing.T) {
	p := NewPort(1 * units.Mbps)
	p.SetQueueLimit(1)
	if p.QueueLimit() != 1 {
		t.Fatalf("QueueLimit = %d, want 1", p.QueueLimit())
	}
	start, end, ok := p.TryReserve(0, 125*units.KB)
	if !ok || start != 0 || end != sim.Time(time.Second) {
		t.Fatalf("first TryReserve = (%v,%v,%v), want (0,1s,true)", start, end, ok)
	}
	if _, _, ok := p.TryReserve(0, 125*units.KB); ok {
		t.Fatal("TryReserve at the limit should tail-drop")
	}
	if p.Accepted() != 1 || p.Dropped() != 1 {
		t.Errorf("accepted/dropped = %d/%d, want 1/1", p.Accepted(), p.Dropped())
	}
	if got := p.LossRate(); got != 0.5 {
		t.Errorf("LossRate = %v, want 0.5", got)
	}
	if got := p.Backlog(0); got != time.Second {
		t.Errorf("dropped transfer extended the backlog: %v, want 1s", got)
	}
	// After the queue drains, the port accepts again.
	if _, _, ok := p.TryReserve(sim.Time(2*time.Second), 125*units.KB); !ok {
		t.Error("post-drain TryReserve should accept")
	}
}

// TestPortTryReserveUnlimitedMatchesReserve pins the byte-identical-default
// contract: without a queue limit TryReserve books exactly what Reserve
// would, transfer for transfer.
func TestPortTryReserveUnlimitedMatchesReserve(t *testing.T) {
	a, b := NewPort(6*units.Mbps), NewPort(6*units.Mbps)
	times := []sim.Time{0, 0, sim.Time(time.Second), sim.Time(5 * time.Second)}
	for i, now := range times {
		ws, we := a.Reserve(now, 48*units.KB)
		gs, ge, ok := b.TryReserve(now, 48*units.KB)
		if !ok || gs != ws || ge != we {
			t.Fatalf("transfer %d: TryReserve = (%v,%v,%v), Reserve = (%v,%v)", i, gs, ge, ok, ws, we)
		}
	}
	if a.Accepted() != b.Accepted() || b.Dropped() != 0 {
		t.Errorf("counter mismatch: %d/%d vs %d/%d", a.Accepted(), a.Dropped(), b.Accepted(), b.Dropped())
	}
}

func TestSetQueueLimitNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetQueueLimit(-1) should panic")
		}
	}()
	NewPort(units.Mbps).SetQueueLimit(-1)
}

func TestCongestionModelValidate(t *testing.T) {
	cases := []struct {
		name    string
		m       CongestionModel
		ok      bool
		enabled bool
	}{
		{"zero", CongestionModel{}, true, false},
		{"bounded", CongestionModel{QueueDepth: 2}, true, true},
		{"bounded tail-drop", CongestionModel{QueueDepth: 2, LossMode: LossTailDrop}, true, true},
		{"negative depth", CongestionModel{QueueDepth: -1}, false, false},
		{"unknown mode", CongestionModel{QueueDepth: 2, LossMode: "red"}, false, false},
		{"mode without depth", CongestionModel{LossMode: LossTailDrop}, false, false},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.ok && c.m.Enabled() != c.enabled {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, c.m.Enabled(), c.enabled)
		}
	}
}
