package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"napawine/internal/overlay"
	"napawine/internal/sim"
	"napawine/internal/topology"
)

// Env is the wiring surface the experiment layer hands to Compile: the
// engine every event is scheduled on, the overlay network whose hooks the
// events drive, and the two node pools a scenario may manipulate. Probe
// nodes are deliberately absent — they are the measurement vantage points
// and, as in the real testbed, never churn.
type Env struct {
	Eng     *sim.Engine
	Net     *overlay.Network
	Horizon time.Duration

	// Background peers: already arrival-scheduled and churning.
	Background []*overlay.Node
	// Deferred pool: inactive until an Arrivals event claims them.
	Deferred []*overlay.Node
}

// Compile validates the spec and schedules every event onto env.Eng. It
// must be called before the engine runs (at virtual time zero). All
// randomness — compile-time arrival offsets and runtime victim selection —
// flows through the engine's seeded source, so the same seed and spec
// replay byte-identically.
func Compile(s *Spec, env Env) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if env.Eng == nil || env.Net == nil {
		return fmt.Errorf("scenario %s: nil engine or network", s.Name)
	}
	if env.Horizon <= 0 {
		return fmt.Errorf("scenario %s: non-positive horizon %v", s.Name, env.Horizon)
	}
	cursor := 0 // deferred-pool peers already claimed by earlier events
	// sessionEnd records the scheduled finite-session leave of every
	// arrivals peer, keyed by node. Zap rejoins consult it at runtime so a
	// zapped-away viewer whose session would have ended meanwhile stays
	// gone — without this, the session-end Leave no-ops on the zapped
	// (offline) node and the rejoin would resurrect it for good.
	sessionEnd := map[*overlay.Node]time.Duration{}
	for i, ev := range s.Events {
		var err error
		switch ev.Kind {
		case Arrivals:
			cursor, err = compileArrivals(ev, env, cursor, sessionEnd)
		case Departures:
			compileDepartures(ev, env)
		case Partition:
			err = compilePartition(ev, env)
		case Throttle:
			compileThrottle(ev, env)
		case TrackerOutage:
			env.Eng.Schedule(at(ev.From, env.Horizon), func() { env.Net.SetTrackerPaused(true) })
			env.Eng.Schedule(at(ev.To, env.Horizon), func() { env.Net.SetTrackerPaused(false) })
		case SourceFailover:
			err = compileSourceFailover(ev, env)
		case RegionalChurn:
			err = compileCountryWindow(ev, env, (*overlay.Node).SetChurnScale)
		case CountryThrottle:
			err = compileCountryWindow(ev, env, (*overlay.Node).SetLinkScale)
		case Zap:
			compileZap(ev, env, sessionEnd)
		}
		if err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// shapeOffset draws one arrival position in [0, 1) under the event's shape.
func shapeOffset(rng *rand.Rand, shape Shape) float64 {
	switch shape {
	case ShapeBurst:
		// Exponentially decaying density over the window: inverse-CDF of
		// a rate-4 exponential truncated to [0, 1).
		u := rng.Float64()
		return -math.Log(1-u*(1-math.Exp(-4))) / 4
	case ShapeWave:
		// Half-sine hump peaking mid-window, by rejection sampling.
		for {
			x := rng.Float64()
			if rng.Float64() <= math.Sin(math.Pi*x) {
				return x
			}
		}
	default:
		return rng.Float64()
	}
}

// expStay draws an exponential session length with the given mean, capped
// at 6× the mean so a single draw cannot dominate the run, then floored at
// one second. The cap applies before the floor: for sub-second means
// (short -dur smoke runs) the 6×-mean cap would otherwise clamp the draw
// below the documented one-second floor.
func expStay(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d > 6*mean {
		d = 6 * mean
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

func compileArrivals(ev Event, env Env, cursor int, sessionEnd map[*overlay.Node]time.Duration) (int, error) {
	remaining := len(env.Deferred) - cursor
	if remaining <= 0 {
		return cursor, fmt.Errorf("arrivals: deferred pool empty or exhausted (%d peers, %d already claimed) — set ExtraPeerFactor or shrink earlier arrivals",
			len(env.Deferred), cursor)
	}
	n := remaining
	if ev.Peers > 0 {
		n = int(ev.Peers * float64(len(env.Deferred)))
		if n > remaining {
			n = remaining
		}
		if n <= 0 {
			return cursor, fmt.Errorf("arrivals: pool share %v of %d deferred peers activates no one",
				ev.Peers, len(env.Deferred))
		}
	}
	rng := env.Eng.Rand()
	from := at(ev.From, env.Horizon)
	width := at(ev.To, env.Horizon) - from
	for _, nd := range env.Deferred[cursor : cursor+n] {
		nd := nd
		join := from + time.Duration(shapeOffset(rng, ev.Shape)*float64(width))
		env.Eng.Schedule(join, nd.Join)
		if ev.MeanStay > 0 {
			stay := expStay(rng, time.Duration(ev.MeanStay*float64(env.Horizon)))
			if leave := join + stay; leave < env.Horizon {
				env.Eng.Schedule(leave, nd.Leave)
				sessionEnd[nd] = leave
			}
		}
	}
	return cursor + n, nil
}

// eligible is every node a population event may touch: the background pool
// plus the deferred pool, in stable construction order.
func eligible(env Env) []*overlay.Node {
	out := make([]*overlay.Node, 0, len(env.Background)+len(env.Deferred))
	out = append(out, env.Background...)
	out = append(out, env.Deferred...)
	return out
}

// onlineVictims picks a Fraction of the currently online eligible peers via
// the engine RNG — the runtime victim-selection step shared by Departures
// and Zap. Selection happens at event time, over whoever is actually online
// then; deterministic because the engine is single-threaded.
func onlineVictims(env Env, rng *rand.Rand, fraction float64) []*overlay.Node {
	var online []*overlay.Node
	for _, nd := range eligible(env) {
		if nd.Online() {
			online = append(online, nd)
		}
	}
	rng.Shuffle(len(online), func(i, j int) { online[i], online[j] = online[j], online[i] })
	return online[:int(fraction*float64(len(online)))]
}

// victimLag spreads one victim's action uniformly over the event window.
func victimLag(rng *rand.Rand, width time.Duration) time.Duration {
	if width <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(width)))
}

func compileDepartures(ev Event, env Env) {
	start := at(ev.From, env.Horizon)
	width := at(ev.To, env.Horizon) - start
	env.Eng.Schedule(start, func() {
		rng := env.Eng.Rand()
		for _, nd := range onlineVictims(env, rng, ev.Fraction) {
			// Retire, not Leave: the program ended for these viewers, so
			// their own churn cycles must not quietly resurrect them and
			// erase the exodus.
			env.Eng.Schedule(victimLag(rng, width), nd.Retire)
		}
	})
}

// partitionTargets resolves the event's AS selector against the non-probe
// population. Ranking for the "N most-populated background ASes" selector
// counts only the base background population — the deferred pool hasn't
// arrived and must not skew which ASes the incident hits — but the blackout
// itself takes every non-probe peer of the chosen ASes (or country) off the
// network, deferred arrivals included. Selection is compile-time and purely
// structural (host placement), so it consumes no randomness.
func partitionTargets(ev Event, env Env) []*overlay.Node {
	pool := eligible(env)
	if ev.Country != "" {
		return countryPeers(env, ev.Country)
	}
	count := map[topology.ASN]int{}
	for _, nd := range env.Background {
		count[nd.Host.AS]++
	}
	asns := make([]topology.ASN, 0, len(count))
	for asn := range count {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool {
		if count[asns[i]] != count[asns[j]] {
			return count[asns[i]] > count[asns[j]]
		}
		return asns[i] < asns[j]
	})
	if ev.ASes < len(asns) {
		asns = asns[:ev.ASes]
	}
	hit := make(map[topology.ASN]bool, len(asns))
	for _, asn := range asns {
		hit[asn] = true
	}
	var out []*overlay.Node
	for _, nd := range pool {
		if hit[nd.Host.AS] {
			out = append(out, nd)
		}
	}
	return out
}

func compilePartition(ev Event, env Env) error {
	targets := partitionTargets(ev, env)
	if len(targets) == 0 {
		return fmt.Errorf("partition: selector matches no peers (country %q, ASes %d)", ev.Country, ev.ASes)
	}
	rejoin := make([]bool, len(targets))
	env.Eng.Schedule(at(ev.From, env.Horizon), func() {
		for i, nd := range targets {
			rejoin[i] = nd.Online()
			nd.Block()
		}
	})
	env.Eng.Schedule(at(ev.To, env.Horizon), func() {
		for i, nd := range targets {
			nd.Unblock()
			if rejoin[i] {
				// Connectivity back means the client reconnects at once —
				// the synchronized rejoin wave a real outage recovery shows.
				nd.Join()
			}
		}
	})
	return nil
}

func compileThrottle(ev Event, env Env) {
	pool := eligible(env)
	// Victim selection at compile time via the engine RNG: a Fisher–Yates
	// prefix of the stable pool order.
	rng := env.Eng.Rand()
	idx := rng.Perm(len(pool))
	want := int(ev.Fraction * float64(len(pool)))
	victims := make([]*overlay.Node, 0, want)
	for _, i := range idx[:want] {
		victims = append(victims, pool[i])
	}
	env.Eng.Schedule(at(ev.From, env.Horizon), func() {
		for _, nd := range victims {
			nd.SetLinkScale(ev.Factor)
		}
	})
	env.Eng.Schedule(at(ev.To, env.Horizon), func() {
		for _, nd := range victims {
			nd.SetLinkScale(1)
		}
	})
}

// countryPeers filters the eligible population by country, in stable
// construction order. Purely structural: consumes no randomness.
func countryPeers(env Env, cc topology.CC) []*overlay.Node {
	var out []*overlay.Node
	for _, nd := range eligible(env) {
		if nd.Host.Country == cc {
			out = append(out, nd)
		}
	}
	return out
}

// compileSourceFailover retires the source at From and promotes the backup
// at To. The backup is designated at compile time, structurally: the first
// (creation-order) high-bandwidth background peer — of ev.Country when set
// — falling back to the first background peer of the country. Compile-time
// designation keeps the promotion deterministic and lets a bad selector
// fail loudly before the run starts.
func compileSourceFailover(ev Event, env Env) error {
	src := env.Net.Source()
	if src == nil {
		return fmt.Errorf("source-failover: network has no source")
	}
	var backup *overlay.Node
	for _, nd := range env.Background {
		if ev.Country != "" && nd.Host.Country != ev.Country {
			continue
		}
		if nd.Link.HighBandwidth() {
			backup = nd
			break
		}
		if backup == nil {
			backup = nd
		}
	}
	if backup == nil {
		return fmt.Errorf("source-failover: no backup candidate (country %q, %d background peers)",
			ev.Country, len(env.Background))
	}
	env.Eng.Schedule(at(ev.From, env.Horizon), src.Retire)
	env.Eng.Schedule(at(ev.To, env.Horizon), func() { env.Net.PromoteSource(backup) })
	return nil
}

// compileCountryWindow is the shared scaffold of the country-windowed
// incident kinds: apply `set` with the event's Factor to every one of the
// country's peers at From, restore with factor 1 at To. RegionalChurn
// passes SetChurnScale (the region flaps Factor× as often, correlated
// instead of independent); CountryThrottle passes SetLinkScale (every link
// of the country at Factor × capacity — Partition's structural targeting
// with Throttle's link action).
func compileCountryWindow(ev Event, env Env, set func(*overlay.Node, float64)) error {
	targets := countryPeers(env, ev.Country)
	if len(targets) == 0 {
		return fmt.Errorf("%v: country %q matches no peers", ev.Kind, ev.Country)
	}
	env.Eng.Schedule(at(ev.From, env.Horizon), func() {
		for _, nd := range targets {
			set(nd, ev.Factor)
		}
	})
	env.Eng.Schedule(at(ev.To, env.Horizon), func() {
		for _, nd := range targets {
			set(nd, 1)
		}
	})
	return nil
}

// compileZap scripts channel-zapping: at the event instant a Fraction of
// the online population is chosen; each victim leaves at a random instant
// in the window and rejoins after an exponential away time with mean
// ev.MeanStay × horizon. Victims Leave, not Retire — a zapper surfs back,
// unless its scheduled finite session would have ended while it was away,
// in which case it stays gone (the session-end Leave no-ops on an offline
// node, and a rejoin would otherwise resurrect the viewer for good).
func compileZap(ev Event, env Env, sessionEnd map[*overlay.Node]time.Duration) {
	start := at(ev.From, env.Horizon)
	width := at(ev.To, env.Horizon) - start
	meanAway := time.Duration(ev.MeanStay * float64(env.Horizon))
	env.Eng.Schedule(start, func() {
		// Every lag and away time is drawn here, in one event, so the draw
		// order cannot interleave with other runtime randomness.
		rng := env.Eng.Rand()
		for _, nd := range onlineVictims(env, rng, ev.Fraction) {
			nd := nd
			lag := victimLag(rng, width)
			away := expStay(rng, meanAway)
			env.Eng.Schedule(lag, nd.Leave)
			if end, ok := sessionEnd[nd]; ok && end <= start+lag+away {
				continue // the program would be over before the surf back
			}
			env.Eng.Schedule(lag+away, nd.Join)
		}
	})
}
