package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"napawine/internal/overlay"
	"napawine/internal/sim"
	"napawine/internal/topology"
)

// Env is the wiring surface the experiment layer hands to Compile: the
// engine every event is scheduled on, the overlay network whose hooks the
// events drive, and the two node pools a scenario may manipulate. Probe
// nodes are deliberately absent — they are the measurement vantage points
// and, as in the real testbed, never churn.
type Env struct {
	Eng     *sim.Engine
	Net     *overlay.Network
	Horizon time.Duration

	// Background peers: already arrival-scheduled and churning.
	Background []*overlay.Node
	// Deferred pool: inactive until an Arrivals event claims them.
	Deferred []*overlay.Node
}

// Compile validates the spec and schedules every event onto env.Eng. It
// must be called before the engine runs (at virtual time zero). All
// randomness — compile-time arrival offsets and runtime victim selection —
// flows through the engine's seeded source, so the same seed and spec
// replay byte-identically.
func Compile(s *Spec, env Env) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if env.Eng == nil || env.Net == nil {
		return fmt.Errorf("scenario %s: nil engine or network", s.Name)
	}
	if env.Horizon <= 0 {
		return fmt.Errorf("scenario %s: non-positive horizon %v", s.Name, env.Horizon)
	}
	cursor := 0 // deferred-pool peers already claimed by earlier events
	for i, ev := range s.Events {
		switch ev.Kind {
		case Arrivals:
			cursor = compileArrivals(ev, env, cursor)
		case Departures:
			compileDepartures(ev, env)
		case Partition:
			if err := compilePartition(ev, env); err != nil {
				return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
			}
		case Throttle:
			compileThrottle(ev, env)
		case TrackerOutage:
			env.Eng.Schedule(at(ev.From, env.Horizon), func() { env.Net.SetTrackerPaused(true) })
			env.Eng.Schedule(at(ev.To, env.Horizon), func() { env.Net.SetTrackerPaused(false) })
		}
	}
	return nil
}

// shapeOffset draws one arrival position in [0, 1) under the event's shape.
func shapeOffset(rng *rand.Rand, shape Shape) float64 {
	switch shape {
	case ShapeBurst:
		// Exponentially decaying density over the window: inverse-CDF of
		// a rate-4 exponential truncated to [0, 1).
		u := rng.Float64()
		return -math.Log(1-u*(1-math.Exp(-4))) / 4
	case ShapeWave:
		// Half-sine hump peaking mid-window, by rejection sampling.
		for {
			x := rng.Float64()
			if rng.Float64() <= math.Sin(math.Pi*x) {
				return x
			}
		}
	default:
		return rng.Float64()
	}
}

// expStay draws an exponential session length with the given mean, floored
// at one second and capped at 6× the mean so a single draw cannot dominate
// the run.
func expStay(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < time.Second {
		d = time.Second
	}
	if d > 6*mean {
		d = 6 * mean
	}
	return d
}

func compileArrivals(ev Event, env Env, cursor int) int {
	remaining := len(env.Deferred) - cursor
	if remaining <= 0 {
		return cursor
	}
	n := remaining
	if ev.Peers > 0 {
		n = int(ev.Peers * float64(len(env.Deferred)))
		if n > remaining {
			n = remaining
		}
	}
	rng := env.Eng.Rand()
	from := at(ev.From, env.Horizon)
	width := at(ev.To, env.Horizon) - from
	for _, nd := range env.Deferred[cursor : cursor+n] {
		nd := nd
		join := from + time.Duration(shapeOffset(rng, ev.Shape)*float64(width))
		env.Eng.Schedule(join, nd.Join)
		if ev.MeanStay > 0 {
			stay := expStay(rng, time.Duration(ev.MeanStay*float64(env.Horizon)))
			if leave := join + stay; leave < env.Horizon {
				env.Eng.Schedule(leave, nd.Leave)
			}
		}
	}
	return cursor + n
}

// eligible is every node a population event may touch: the background pool
// plus the deferred pool, in stable construction order.
func eligible(env Env) []*overlay.Node {
	out := make([]*overlay.Node, 0, len(env.Background)+len(env.Deferred))
	out = append(out, env.Background...)
	out = append(out, env.Deferred...)
	return out
}

func compileDepartures(ev Event, env Env) {
	start := at(ev.From, env.Horizon)
	width := at(ev.To, env.Horizon) - start
	env.Eng.Schedule(start, func() {
		// Victim selection happens at event time, over whoever is actually
		// online then, via the engine RNG — deterministic because the
		// engine is single-threaded.
		var online []*overlay.Node
		for _, nd := range eligible(env) {
			if nd.Online() {
				online = append(online, nd)
			}
		}
		rng := env.Eng.Rand()
		rng.Shuffle(len(online), func(i, j int) { online[i], online[j] = online[j], online[i] })
		want := int(ev.Fraction * float64(len(online)))
		for _, nd := range online[:want] {
			nd := nd
			var lag time.Duration
			if width > 0 {
				lag = time.Duration(rng.Int63n(int64(width)))
			}
			// Retire, not Leave: the program ended for these viewers, so
			// their own churn cycles must not quietly resurrect them and
			// erase the exodus.
			env.Eng.Schedule(lag, nd.Retire)
		}
	})
}

// partitionTargets resolves the event's AS selector against the non-probe
// population. Ranking for the "N most-populated background ASes" selector
// counts only the base background population — the deferred pool hasn't
// arrived and must not skew which ASes the incident hits — but the blackout
// itself takes every non-probe peer of the chosen ASes (or country) off the
// network, deferred arrivals included. Selection is compile-time and purely
// structural (host placement), so it consumes no randomness.
func partitionTargets(ev Event, env Env) []*overlay.Node {
	pool := eligible(env)
	if ev.Country != "" {
		var out []*overlay.Node
		for _, nd := range pool {
			if nd.Host.Country == ev.Country {
				out = append(out, nd)
			}
		}
		return out
	}
	count := map[topology.ASN]int{}
	for _, nd := range env.Background {
		count[nd.Host.AS]++
	}
	asns := make([]topology.ASN, 0, len(count))
	for asn := range count {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool {
		if count[asns[i]] != count[asns[j]] {
			return count[asns[i]] > count[asns[j]]
		}
		return asns[i] < asns[j]
	})
	if ev.ASes < len(asns) {
		asns = asns[:ev.ASes]
	}
	hit := make(map[topology.ASN]bool, len(asns))
	for _, asn := range asns {
		hit[asn] = true
	}
	var out []*overlay.Node
	for _, nd := range pool {
		if hit[nd.Host.AS] {
			out = append(out, nd)
		}
	}
	return out
}

func compilePartition(ev Event, env Env) error {
	targets := partitionTargets(ev, env)
	if len(targets) == 0 {
		return fmt.Errorf("partition: selector matches no peers (country %q, ASes %d)", ev.Country, ev.ASes)
	}
	rejoin := make([]bool, len(targets))
	env.Eng.Schedule(at(ev.From, env.Horizon), func() {
		for i, nd := range targets {
			rejoin[i] = nd.Online()
			nd.Block()
		}
	})
	env.Eng.Schedule(at(ev.To, env.Horizon), func() {
		for i, nd := range targets {
			nd.Unblock()
			if rejoin[i] {
				// Connectivity back means the client reconnects at once —
				// the synchronized rejoin wave a real outage recovery shows.
				nd.Join()
			}
		}
	})
	return nil
}

func compileThrottle(ev Event, env Env) {
	pool := eligible(env)
	// Victim selection at compile time via the engine RNG: a Fisher–Yates
	// prefix of the stable pool order.
	rng := env.Eng.Rand()
	idx := rng.Perm(len(pool))
	want := int(ev.Fraction * float64(len(pool)))
	victims := make([]*overlay.Node, 0, want)
	for _, i := range idx[:want] {
		victims = append(victims, pool[i])
	}
	env.Eng.Schedule(at(ev.From, env.Horizon), func() {
		for _, nd := range victims {
			nd.SetLinkScale(ev.Factor)
		}
	})
	env.Eng.Schedule(at(ev.To, env.Horizon), func() {
		for _, nd := range victims {
			nd.SetLinkScale(1)
		}
	})
}
