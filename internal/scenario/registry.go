package scenario

import (
	"fmt"
	"strings"
)

// The built-in registry maps scenario names to fresh Spec constructors, in a
// fixed presentation order. ByName returns a fresh value each call so a
// caller mutating its copy (e.g. overriding Buckets) cannot corrupt the
// registry.
var registry = []struct {
	name  string
	build func() Spec
}{
	{"steady", steady},
	{"flashcrowd", flashCrowd},
	{"diurnal", diurnal},
	{"partition", partition},
	{"outage", outage},
	{"throttle", throttle},
}

// Names lists the registered scenarios in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// ByName returns a fresh copy of the named scenario.
func ByName(name string) (*Spec, error) {
	for _, r := range registry {
		if r.name == name {
			s := r.build()
			return &s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (want %s)",
		name, strings.Join(Names(), ", "))
}

// steady is the paper's own condition: the stationary background churn with
// no injected events. It exists so time-series output has a baseline to
// compare every dynamic scenario against.
func steady() Spec {
	return Spec{
		Name:        "steady",
		Description: "stationary audience, baseline churn only (the paper's §II condition)",
	}
}

// flashCrowd doubles the potential audience: the crowd piles in over a
// tenth of the run shortly after the broadcast starts, then half the swarm
// walks away near the end — the program-boundary pattern P2P IPTV
// measurement studies report around popular matches.
func flashCrowd() Spec {
	return Spec{
		Name:            "flashcrowd",
		Description:     "burst arrival doubling the swarm at ~25% of the run, mass exodus of half the audience at ~80%",
		ExtraPeerFactor: 1.0,
		Events: []Event{
			{Kind: Arrivals, From: 0.25, To: 0.35, Shape: ShapeBurst},
			{Kind: Departures, From: 0.78, To: 0.9, Fraction: 0.5},
		},
	}
}

// diurnal compresses a daily audience wave into the run: arrivals follow a
// half-sine hump with finite exponential stays, so the online population
// rises, crests mid-run and drains.
func diurnal() Spec {
	return Spec{
		Name:            "diurnal",
		Description:     "half-sine arrival wave with finite sessions: the virtual day's audience swell and drain",
		ExtraPeerFactor: 0.8,
		Events: []Event{
			{Kind: Arrivals, From: 0.05, To: 0.95, Shape: ShapeWave, MeanStay: 0.2},
		},
	}
}

// partition takes the three most populated background ASes off the network
// for a quarter of the run: their peers vanish at once and reconnect
// together, the pattern of a national backbone incident.
func partition() Spec {
	return Spec{
		Name:        "partition",
		Description: "the 3 most-populated background ASes lose connectivity for [40%, 65%] of the run, then reconnect at once",
		Events: []Event{
			{Kind: Partition, From: 0.4, To: 0.65, ASes: 3},
		},
	}
}

// outage pauses the tracker for a quarter of the run: churned-out peers
// cannot rediscover the swarm, so the population sags until the tracker
// returns and the rejoin backlog drains.
func outage() Spec {
	return Spec{
		Name:        "outage",
		Description: "tracker unreachable for [35%, 60%] of the run: discovery stalls, existing partnerships keep streaming",
		Events: []Event{
			{Kind: TrackerOutage, From: 0.35, To: 0.6},
		},
	}
}

// throttle runs half the non-probe population at quarter capacity for a
// third of the run — an access-ISP congestion episode that shifts which
// peers the bandwidth-aware schedulers favour.
func throttle() Spec {
	return Spec{
		Name:        "throttle",
		Description: "half the peers throttled to 25% link capacity during [40%, 70%] of the run",
		Events: []Event{
			{Kind: Throttle, From: 0.4, To: 0.7, Fraction: 0.5, Factor: 0.25},
		},
	}
}
