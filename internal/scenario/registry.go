package scenario

import (
	"fmt"
	"strings"
)

// The built-in registry maps scenario names to fresh Spec constructors, in a
// fixed presentation order. ByName returns a fresh value each call so a
// caller mutating its copy (e.g. overriding Buckets) cannot corrupt the
// registry.
var registry = []struct {
	name  string
	build func() Spec
}{
	{"steady", steady},
	{"flashcrowd", flashCrowd},
	{"diurnal", diurnal},
	{"partition", partition},
	{"outage", outage},
	{"throttle", throttle},
	{"failover", failover},
	{"zapping", zapping},
	{"regional", regional},
}

// Names lists the registered scenarios in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// ByName returns a fresh copy of the named scenario.
func ByName(name string) (*Spec, error) {
	for _, r := range registry {
		if r.name == name {
			s := r.build()
			return &s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (want %s)",
		name, strings.Join(Names(), ", "))
}

// steady is the paper's own condition: the stationary background churn with
// no injected events. It exists so time-series output has a baseline to
// compare every dynamic scenario against.
func steady() Spec {
	return Spec{
		Name:        "steady",
		Description: "stationary audience, baseline churn only (the paper's §II condition)",
	}
}

// flashCrowd doubles the potential audience: the crowd piles in over a
// tenth of the run shortly after the broadcast starts, then half the swarm
// walks away near the end — the program-boundary pattern P2P IPTV
// measurement studies report around popular matches.
func flashCrowd() Spec {
	return Spec{
		Name:            "flashcrowd",
		Description:     "burst arrival doubling the swarm at ~25% of the run, mass exodus of half the audience at ~80%",
		ExtraPeerFactor: 1.0,
		Events: []Event{
			{Kind: Arrivals, From: 0.25, To: 0.35, Shape: ShapeBurst},
			{Kind: Departures, From: 0.78, To: 0.9, Fraction: 0.5},
		},
	}
}

// diurnal compresses a daily audience wave into the run: arrivals follow a
// half-sine hump with finite exponential stays, so the online population
// rises, crests mid-run and drains.
func diurnal() Spec {
	return Spec{
		Name:            "diurnal",
		Description:     "half-sine arrival wave with finite sessions: the virtual day's audience swell and drain",
		ExtraPeerFactor: 0.8,
		Events: []Event{
			{Kind: Arrivals, From: 0.05, To: 0.95, Shape: ShapeWave, MeanStay: 0.2},
		},
	}
}

// partition takes the three most populated background ASes off the network
// for a quarter of the run: their peers vanish at once and reconnect
// together, the pattern of a national backbone incident.
func partition() Spec {
	return Spec{
		Name:        "partition",
		Description: "the 3 most-populated background ASes lose connectivity for [40%, 65%] of the run, then reconnect at once",
		Events: []Event{
			{Kind: Partition, From: 0.4, To: 0.65, ASes: 3},
		},
	}
}

// outage pauses the tracker for a quarter of the run: churned-out peers
// cannot rediscover the swarm, so the population sags until the tracker
// returns and the rejoin backlog drains.
func outage() Spec {
	return Spec{
		Name:        "outage",
		Description: "tracker unreachable for [35%, 60%] of the run: discovery stalls, existing partnerships keep streaming",
		Events: []Event{
			{Kind: TrackerOutage, From: 0.35, To: 0.6},
		},
	}
}

// throttle runs half the non-probe population at quarter capacity for a
// third of the run — an access-ISP congestion episode that shifts which
// peers the bandwidth-aware schedulers favour.
func throttle() Spec {
	return Spec{
		Name:        "throttle",
		Description: "half the peers throttled to 25% link capacity during [40%, 70%] of the run",
		Events: []Event{
			{Kind: Throttle, From: 0.4, To: 0.7, Fraction: 0.5, Factor: 0.25},
		},
	}
}

// failover kills the stream source mid-run; a high-bandwidth background
// peer is promoted after a 5%-of-horizon gap. The gap is the window where
// no one can refill the live edge — how fast continuity recovers afterwards
// is the swarm-resilience figure the epidemic-streaming literature argues
// about.
func failover() Spec {
	return Spec{
		Name:        "failover",
		Description: "the source retires at 40% of the run; a high-bandwidth backup peer is promoted at 45%",
		Events: []Event{
			{Kind: SourceFailover, From: 0.4, To: 0.45},
		},
	}
}

// zapping scripts a program boundary without an exodus: a chunk of the
// audience zaps away to other channels and surfs back after short
// exponential away times — the churn spike IPTV measurement studies report
// around program transitions.
func zapping() Spec {
	return Spec{
		Name:        "zapping",
		Description: "40% of the audience zaps away during [50%, 60%] of the run and surfs back after ~5%-of-horizon away times",
		Events: []Event{
			{Kind: Zap, From: 0.5, To: 0.6, Fraction: 0.4, MeanStay: 0.05},
		},
	}
}

// regional hits the channel's home country with a correlated incident: CN
// peers flap three times as often while their access links run at 40%
// capacity — the condition under which locality-aware policies either keep
// traffic local or abandon the region.
func regional() Spec {
	return Spec{
		Name:        "regional",
		Description: "CN peers churn 3x faster and run at 40% link capacity during [30%, 60%] of the run",
		Events: []Event{
			{Kind: RegionalChurn, From: 0.3, To: 0.6, Country: "CN", Factor: 3},
			{Kind: CountryThrottle, From: 0.3, To: 0.6, Country: "CN", Factor: 0.4},
		},
	}
}
