// Package scenario injects declarative workload timelines — flash crowds,
// diurnal population waves, AS partitions, access-link throttling, tracker
// outages — into a running experiment.
//
// The paper observes each application under a single stationary condition
// (one CCTV-1 broadcast at China peak hour, §II); measurement studies of the
// same clients under dynamics (Silverston & Fourmaux's IPTV comparison,
// Mathieu & Perino's resource-aware epidemic streaming) show that population
// and network transients are where locality and bandwidth policies actually
// earn or lose their keep. A Spec is a named, seedable list of events over
// the virtual run; Compile schedules them onto the experiment's existing
// sim.Engine, so a scenario inherits the engine's determinism — the same
// seed and spec replay byte-identically, regardless of how many experiments
// run in parallel around it.
//
// Event times are fractions of the run horizon, not absolute instants: the
// same scenario stretches from a 30-second smoke run to the paper's full
// virtual hour without editing the spec.
package scenario

import (
	"fmt"
	"time"

	"napawine/internal/topology"
)

// Kind enumerates the event families a timeline can contain.
type Kind int

// Event kinds.
const (
	// Arrivals activates peers from the experiment's deferred pool over the
	// [From, To] window, following Shape.
	Arrivals Kind = iota
	// Departures makes a Fraction of the online non-probe population leave
	// for good, spread across the [From, To] window — a program-boundary
	// exodus. Victims retire: their own churn cycles do not bring them
	// back.
	Departures
	// Partition takes an AS set (a country's ASes, or the N most populated
	// background ASes) off the network for the [From, To] window. Victims
	// drop offline at From and reconnect at To if they were online.
	Partition
	// Throttle runs a Fraction of the non-probe population's access links
	// at Factor × capacity during the [From, To] window.
	Throttle
	// TrackerOutage pauses the tracker for the [From, To] window: discovery
	// stalls, established partnerships keep streaming.
	TrackerOutage
)

// String names the kind for error messages and docs.
func (k Kind) String() string {
	switch k {
	case Arrivals:
		return "arrivals"
	case Departures:
		return "departures"
	case Partition:
		return "partition"
	case Throttle:
		return "throttle"
	case TrackerOutage:
		return "tracker-outage"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Shape selects the arrival-time density of an Arrivals event.
type Shape int

// Arrival shapes.
const (
	// ShapeUniform spreads arrivals evenly over the window — with random
	// offsets this is a Poisson trickle conditioned on the count.
	ShapeUniform Shape = iota
	// ShapeBurst front-loads the window with exponentially decaying
	// density: the classic flash-crowd onset.
	ShapeBurst
	// ShapeWave peaks arrival density mid-window (half-sine): one diurnal
	// hump over the virtual day.
	ShapeWave
)

// Event is one timeline entry. From and To are fractions of the experiment
// horizon in [0, 1]; point events use From == To.
type Event struct {
	Kind     Kind
	From, To float64

	// Arrivals knobs.
	//
	// Peers is the share of the deferred pool this event activates; <= 0
	// means every peer not claimed by an earlier Arrivals event. MeanStay,
	// when positive, gives activated peers exponential session lengths with
	// this mean (as a fraction of the horizon); zero means they stay to the
	// end.
	Peers    float64
	Shape    Shape
	MeanStay float64

	// Departures / Throttle target share of the eligible population.
	Fraction float64

	// Partition targeting: all ASes of Country when set, otherwise the
	// ASes most-populated *background* ASes (ties broken by lower AS
	// number; the deferred pool does not influence the ranking but is
	// blacked out with the chosen ASes).
	Country topology.CC
	ASes    int

	// Throttle capacity multiplier (0.25 = quarter speed).
	Factor float64
}

// Spec is a named, declarative workload timeline.
type Spec struct {
	Name        string
	Description string

	// ExtraPeerFactor sizes the deferred peer pool relative to the base
	// background population (1.0 doubles the potential swarm). The
	// experiment layer synthesizes the pool via world.Spec.ExtraPeers.
	ExtraPeerFactor float64

	// Buckets is the number of time-series sample buckets over the run
	// (0 selects DefaultBuckets; clamped to MaxBuckets so per-run summary
	// memory stays bounded no matter what a spec asks for).
	Buckets int

	Events []Event
}

// Time-series bucket bounds. MaxBuckets caps the memory every run summary
// retains; DefaultBuckets matches the granularity of the paper's per-hour
// observations scaled to short runs.
const (
	DefaultBuckets = 12
	MaxBuckets     = 96
)

// BucketCount resolves the spec's bucket request against the bounds.
func (s *Spec) BucketCount() int {
	b := s.Buckets
	if b <= 0 {
		b = DefaultBuckets
	}
	if b > MaxBuckets {
		b = MaxBuckets
	}
	return b
}

// Validate checks the spec is compilable; it reports the first offending
// event by index.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec without a name")
	}
	if s.ExtraPeerFactor < 0 {
		return fmt.Errorf("scenario %s: negative ExtraPeerFactor %v", s.Name, s.ExtraPeerFactor)
	}
	for i, ev := range s.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
	}
	// Windowed incident kinds toggle absolute state (block/unblock, pause/
	// resume, throttle/restore), so two live windows of the same kind would
	// end each other early. Reject the overlap loudly instead of running a
	// timeline that silently means something else. Touching windows count
	// as overlapping: same-instant ordering would depend on event order.
	windowed := func(k Kind) bool { return k == Partition || k == Throttle || k == TrackerOutage }
	for i, a := range s.Events {
		if !windowed(a.Kind) {
			continue
		}
		for j := i + 1; j < len(s.Events); j++ {
			b := s.Events[j]
			if b.Kind != a.Kind {
				continue
			}
			if a.From <= b.To && b.From <= a.To {
				return fmt.Errorf("scenario %s: events %d and %d: overlapping %v windows [%v, %v] and [%v, %v]",
					s.Name, i, j, a.Kind, a.From, a.To, b.From, b.To)
			}
		}
	}
	return nil
}

func (ev Event) validate() error {
	if ev.From < 0 || ev.To > 1 || ev.From > ev.To {
		return fmt.Errorf("%v: bad window [%v, %v]", ev.Kind, ev.From, ev.To)
	}
	switch ev.Kind {
	case Arrivals:
		if ev.Peers > 1 {
			return fmt.Errorf("arrivals: pool share %v exceeds 1", ev.Peers)
		}
		if ev.MeanStay < 0 {
			return fmt.Errorf("arrivals: negative mean stay %v", ev.MeanStay)
		}
	case Departures:
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("departures: fraction %v outside (0, 1]", ev.Fraction)
		}
	case Partition:
		if ev.Country == "" && ev.ASes <= 0 {
			return fmt.Errorf("partition: no target (set Country or ASes)")
		}
		if ev.From == ev.To {
			return fmt.Errorf("partition: zero-length window")
		}
	case Throttle:
		if ev.Factor <= 0 {
			return fmt.Errorf("throttle: non-positive factor %v", ev.Factor)
		}
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("throttle: fraction %v outside (0, 1]", ev.Fraction)
		}
	case TrackerOutage:
		if ev.From == ev.To {
			return fmt.Errorf("tracker-outage: zero-length window")
		}
	default:
		return fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// at converts a horizon fraction to an absolute offset.
func at(frac float64, horizon time.Duration) time.Duration {
	return time.Duration(frac * float64(horizon))
}
