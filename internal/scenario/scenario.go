// Package scenario injects declarative workload timelines — flash crowds,
// diurnal population waves, AS partitions, access-link throttling, tracker
// outages — into a running experiment.
//
// The paper observes each application under a single stationary condition
// (one CCTV-1 broadcast at China peak hour, §II); measurement studies of the
// same clients under dynamics (Silverston & Fourmaux's IPTV comparison,
// Mathieu & Perino's resource-aware epidemic streaming) show that population
// and network transients are where locality and bandwidth policies actually
// earn or lose their keep. A Spec is a named, seedable list of events over
// the virtual run; Compile schedules them onto the experiment's existing
// sim.Engine, so a scenario inherits the engine's determinism — the same
// seed and spec replay byte-identically, regardless of how many experiments
// run in parallel around it.
//
// Event times are fractions of the run horizon, not absolute instants: the
// same scenario stretches from a 30-second smoke run to the paper's full
// virtual hour without editing the spec.
package scenario

import (
	"fmt"
	"strings"
	"time"

	"napawine/internal/topology"
)

// Kind enumerates the event families a timeline can contain.
type Kind int

// Event kinds.
const (
	// Arrivals activates peers from the experiment's deferred pool over the
	// [From, To] window, following Shape.
	Arrivals Kind = iota
	// Departures makes a Fraction of the online non-probe population leave
	// for good, spread across the [From, To] window — a program-boundary
	// exodus. Victims retire: their own churn cycles do not bring them
	// back.
	Departures
	// Partition takes an AS set (a country's ASes, or the N most populated
	// background ASes) off the network for the [From, To] window. Victims
	// drop offline at From and reconnect at To if they were online.
	Partition
	// Throttle runs a Fraction of the non-probe population's access links
	// at Factor × capacity during the [From, To] window.
	Throttle
	// TrackerOutage pauses the tracker for the [From, To] window: discovery
	// stalls, established partnerships keep streaming.
	TrackerOutage
	// SourceFailover retires the stream source at From; at To a designated
	// backup peer (the first high-bandwidth background peer, optionally
	// restricted to Country) is promoted to be the new injection point.
	// The [From, To] gap is the blackout no peer can fill from the feed.
	SourceFailover
	// RegionalChurn scales the churn rate of one Country's peers by Factor
	// during the [From, To] window: a correlated regional instability
	// (power flickers, access-network flaps) rather than independent churn.
	RegionalChurn
	// CountryThrottle runs every one of Country's peers' access links at
	// Factor × capacity during the [From, To] window — structural
	// targeting like Partition, the link action of Throttle.
	CountryThrottle
	// Zap scripts a channel-zapping audience: a Fraction of the online
	// peers Leave at random instants in the [From, To] window and rejoin
	// after short exponential away times with mean MeanStay (a horizon
	// fraction) — program-boundary surfing, not an exodus.
	Zap
)

// kindNames maps each kind to its stable wire/doc name. The codec round-
// trips specs through these names, never raw ints, so a file stays readable
// and survives reordering of the Kind constants.
var kindNames = map[Kind]string{
	Arrivals:        "arrivals",
	Departures:      "departures",
	Partition:       "partition",
	Throttle:        "throttle",
	TrackerOutage:   "tracker-outage",
	SourceFailover:  "source-failover",
	RegionalChurn:   "regional-churn",
	CountryThrottle: "country-throttle",
	Zap:             "zap",
}

// String names the kind for error messages and docs.
func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindNames lists every event kind's wire name in declaration order, for
// docs and error messages.
func KindNames() []string {
	out := make([]string, 0, len(kindNames))
	for k := Arrivals; int(k) < len(kindNames); k++ {
		out = append(out, kindNames[k])
	}
	return out
}

// ParseKind resolves a wire name back to its Kind.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown event kind %q (want %s)",
		name, strings.Join(KindNames(), ", "))
}

// MarshalText encodes the kind as its wire name (the JSON codec rides on
// this, so specs never contain raw enum ints).
func (k Kind) MarshalText() ([]byte, error) {
	if name, ok := kindNames[k]; ok {
		return []byte(name), nil
	}
	return nil, fmt.Errorf("scenario: unencodable event kind %d", int(k))
}

// UnmarshalText decodes a wire name.
func (k *Kind) UnmarshalText(b []byte) error {
	parsed, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Shape selects the arrival-time density of an Arrivals event.
type Shape int

// Arrival shapes.
const (
	// ShapeUniform spreads arrivals evenly over the window — with random
	// offsets this is a Poisson trickle conditioned on the count.
	ShapeUniform Shape = iota
	// ShapeBurst front-loads the window with exponentially decaying
	// density: the classic flash-crowd onset.
	ShapeBurst
	// ShapeWave peaks arrival density mid-window (half-sine): one diurnal
	// hump over the virtual day.
	ShapeWave
)

// shapeNames maps each shape to its stable wire/doc name.
var shapeNames = map[Shape]string{
	ShapeUniform: "uniform",
	ShapeBurst:   "burst",
	ShapeWave:    "wave",
}

// String names the shape for error messages and docs.
func (s Shape) String() string {
	if name, ok := shapeNames[s]; ok {
		return name
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ShapeNames lists every arrival shape's wire name in declaration order.
func ShapeNames() []string {
	out := make([]string, 0, len(shapeNames))
	for s := ShapeUniform; int(s) < len(shapeNames); s++ {
		out = append(out, shapeNames[s])
	}
	return out
}

// ParseShape resolves a wire name back to its Shape.
func ParseShape(name string) (Shape, error) {
	for s, n := range shapeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown arrival shape %q (want %s)",
		name, strings.Join(ShapeNames(), ", "))
}

// MarshalText encodes the shape as its wire name.
func (s Shape) MarshalText() ([]byte, error) {
	if name, ok := shapeNames[s]; ok {
		return []byte(name), nil
	}
	return nil, fmt.Errorf("scenario: unencodable arrival shape %d", int(s))
}

// UnmarshalText decodes a wire name.
func (s *Shape) UnmarshalText(b []byte) error {
	parsed, err := ParseShape(string(b))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Event is one timeline entry. From and To are fractions of the experiment
// horizon in [0, 1]; point events use From == To. The json tags are the
// file-spec schema (see Decode/Encode): kinds and shapes travel as names.
type Event struct {
	Kind Kind    `json:"kind"`
	From float64 `json:"from"`
	To   float64 `json:"to"`

	// Arrivals knobs.
	//
	// Peers is the share of the deferred pool this event activates; <= 0
	// means every peer not claimed by an earlier Arrivals event. MeanStay,
	// when positive, gives activated peers exponential session lengths with
	// this mean (as a fraction of the horizon); zero means they stay to the
	// end. Zap reuses MeanStay as the mean away time (required there).
	Peers    float64 `json:"peers,omitempty"`
	Shape    Shape   `json:"shape,omitempty"`
	MeanStay float64 `json:"mean_stay,omitempty"`

	// Departures / Throttle / Zap target share of the eligible population.
	Fraction float64 `json:"fraction,omitempty"`

	// Partition targeting: all ASes of Country when set, otherwise the
	// ASes most-populated *background* ASes (ties broken by lower AS
	// number; the deferred pool does not influence the ranking but is
	// blacked out with the chosen ASes). RegionalChurn and CountryThrottle
	// require Country; SourceFailover optionally restricts the backup peer
	// to Country.
	Country topology.CC `json:"country,omitempty"`
	ASes    int         `json:"ases,omitempty"`

	// Throttle / CountryThrottle capacity multiplier (0.25 = quarter
	// speed); RegionalChurn churn-rate multiplier (3 = flap 3× as often).
	Factor float64 `json:"factor,omitempty"`
}

// Spec is a named, declarative workload timeline.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// ExtraPeerFactor sizes the deferred peer pool relative to the base
	// background population (1.0 doubles the potential swarm). The
	// experiment layer synthesizes the pool via world.Spec.ExtraPeers.
	ExtraPeerFactor float64 `json:"extra_peer_factor,omitempty"`

	// Buckets is the number of time-series sample buckets over the run
	// (0 selects DefaultBuckets; clamped to MaxBuckets so per-run summary
	// memory stays bounded no matter what a spec asks for).
	Buckets int `json:"buckets,omitempty"`

	Events []Event `json:"events,omitempty"`
}

// Clone returns an independent deep copy: mutating the copy (or compiling
// it) can never leak into the original. Parallel battery layers hand each
// worker its own clone so one Spec value is never shared across goroutines.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	cp := *s
	if s.Events != nil {
		cp.Events = append([]Event(nil), s.Events...)
	}
	return &cp
}

// Time-series bucket bounds. MaxBuckets caps the memory every run summary
// retains; DefaultBuckets matches the granularity of the paper's per-hour
// observations scaled to short runs.
const (
	DefaultBuckets = 12
	MaxBuckets     = 96
)

// BucketCount resolves the spec's bucket request against the bounds.
func (s *Spec) BucketCount() int {
	b := s.Buckets
	if b <= 0 {
		b = DefaultBuckets
	}
	if b > MaxBuckets {
		b = MaxBuckets
	}
	return b
}

// Validate checks the spec is compilable; it reports the first offending
// event by index.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec without a name")
	}
	if s.ExtraPeerFactor < 0 {
		return fmt.Errorf("scenario %s: negative ExtraPeerFactor %v", s.Name, s.ExtraPeerFactor)
	}
	for i, ev := range s.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("scenario %s: event %d: %w", s.Name, i, err)
		}
	}
	// Windowed incident kinds toggle absolute state (block/unblock, pause/
	// resume, throttle/restore), so two live windows over the same state
	// would end each other early. Reject the overlap loudly instead of
	// running a timeline that silently means something else. Touching
	// windows count as overlapping: same-instant ordering would depend on
	// event order.
	for i, a := range s.Events {
		for j := i + 1; j < len(s.Events); j++ {
			b := s.Events[j]
			if !windowsConflict(a, b) {
				continue
			}
			if a.From <= b.To && b.From <= a.To {
				return fmt.Errorf("scenario %s: events %d and %d: overlapping %v and %v windows [%v, %v] and [%v, %v]",
					s.Name, i, j, a.Kind, b.Kind, a.From, a.To, b.From, b.To)
			}
		}
	}
	// A second failover has no source left to fail: the promoted backup is
	// chosen at compile time, before the first failover rewires the swarm.
	failovers := 0
	for i, ev := range s.Events {
		if ev.Kind == SourceFailover {
			if failovers++; failovers > 1 {
				return fmt.Errorf("scenario %s: event %d: more than one source-failover", s.Name, i)
			}
		}
	}
	return nil
}

// windowsConflict reports whether two events toggle the same absolute state
// and therefore must not have overlapping windows. Country-targeted kinds
// conflict only when they hit the same country; Throttle and CountryThrottle
// share the link-scale state, so they conflict across kinds (a random-victim
// throttle may land on the throttled country's peers and its restore would
// end the country window early).
func windowsConflict(a, b Event) bool {
	windowed := func(k Kind) bool {
		switch k {
		case Partition, Throttle, TrackerOutage, RegionalChurn, CountryThrottle:
			return true
		}
		return false
	}
	if !windowed(a.Kind) || !windowed(b.Kind) {
		return false
	}
	linkScale := func(k Kind) bool { return k == Throttle || k == CountryThrottle }
	if a.Kind != b.Kind {
		return linkScale(a.Kind) && linkScale(b.Kind)
	}
	if a.Kind == RegionalChurn || a.Kind == CountryThrottle {
		return a.Country == b.Country
	}
	return true
}

func (ev Event) validate() error {
	if ev.From < 0 || ev.To > 1 || ev.From > ev.To {
		return fmt.Errorf("%v: bad window [%v, %v]", ev.Kind, ev.From, ev.To)
	}
	switch ev.Kind {
	case Arrivals:
		if ev.Peers > 1 {
			return fmt.Errorf("arrivals: pool share %v exceeds 1", ev.Peers)
		}
		if ev.MeanStay < 0 {
			return fmt.Errorf("arrivals: negative mean stay %v", ev.MeanStay)
		}
	case Departures:
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("departures: fraction %v outside (0, 1]", ev.Fraction)
		}
	case Partition:
		if ev.Country == "" && ev.ASes <= 0 {
			return fmt.Errorf("partition: no target (set Country or ASes)")
		}
		if ev.From == ev.To {
			return fmt.Errorf("partition: zero-length window")
		}
	case Throttle:
		if ev.Factor <= 0 {
			return fmt.Errorf("throttle: non-positive factor %v", ev.Factor)
		}
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("throttle: fraction %v outside (0, 1]", ev.Fraction)
		}
	case TrackerOutage:
		if ev.From == ev.To {
			return fmt.Errorf("tracker-outage: zero-length window")
		}
	case SourceFailover:
		// From == To is legal: the backup takes over the instant the
		// source dies. Country, when set, restricts the backup choice and
		// is checked against the population at compile time.
	case RegionalChurn, CountryThrottle:
		if ev.Country == "" {
			return fmt.Errorf("%v: no country", ev.Kind)
		}
		if ev.Factor <= 0 {
			return fmt.Errorf("%v: non-positive factor %v", ev.Kind, ev.Factor)
		}
		if ev.From == ev.To {
			return fmt.Errorf("%v: zero-length window", ev.Kind)
		}
	case Zap:
		if ev.Fraction <= 0 || ev.Fraction > 1 {
			return fmt.Errorf("zap: fraction %v outside (0, 1]", ev.Fraction)
		}
		if ev.MeanStay <= 0 {
			return fmt.Errorf("zap: non-positive mean away time %v", ev.MeanStay)
		}
	default:
		return fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// at converts a horizon fraction to an absolute offset.
func at(frac float64, horizon time.Duration) time.Duration {
	return time.Duration(frac * float64(horizon))
}
