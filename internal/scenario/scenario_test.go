package scenario

import (
	"math/rand"
	"testing"
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/overlay"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/topology"
	"napawine/internal/units"
)

func testProfile() *overlay.Profile {
	return &overlay.Profile{
		Name:              "test",
		PartnerTarget:     6,
		MaxPartners:       10,
		DropInterval:      15 * time.Second,
		ContactInterval:   2 * time.Second,
		NeighborListMax:   50,
		SignalingInterval: time.Second,
		KeepaliveFanout:   1,
		ScheduleInterval:  500 * time.Millisecond,
		PullDelay:         4,
		PullWindow:        6,
		MaxInflight:       4,
		RequestTimeout:    4 * time.Second,
		DiscoveryWeight:   policy.Uniform{},
		RequestWeight:     policy.Uniform{},
		RetainWeight:      policy.Uniform{},
	}
}

// rig is a miniature swarm with a deferred pool, enough to compile any
// builtin scenario onto.
type rig struct {
	eng        *sim.Engine
	net        *overlay.Network
	src        *overlay.Node
	background []*overlay.Node
	deferred   []*overlay.Node
}

func buildRig(t testing.TB, seed int64, nBackground, nDeferred int) *rig {
	t.Helper()
	b := topology.NewBuilder(seed)
	b.AddCountry("CN", topology.Asia)
	b.AddCountry("IT", topology.Europe)
	var subs []topology.SubnetID
	for i := 0; i < 6; i++ {
		cc := topology.CC("CN")
		if i >= 4 {
			cc = "IT"
		}
		asn := b.AddAS(cc)
		subs = append(subs, b.AddSubnet(asn), b.AddSubnet(asn))
	}
	topo := b.Build()
	eng := sim.New(seed)
	net := overlay.New(eng, topo, overlay.Config{
		Calendar:      chunkstream.NewCalendar(384*units.Kbps, 48*units.KB),
		BufferWindow:  64,
		TrackerBatch:  12,
		UplinkBusyCap: 3 * time.Second,
	})
	host := func(i int) topology.Host {
		h, err := topo.NewHost(subs[i%len(subs)])
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	src := net.AddSource(host(0), access.LAN100, testProfile())
	eng.Schedule(0, src.Join)
	r := &rig{eng: eng, net: net, src: src}
	for i := 0; i < nBackground; i++ {
		nd := net.AddNode(host(i+1), access.LAN100, testProfile())
		eng.Schedule(time.Duration(i)*100*time.Millisecond, nd.Join)
		r.background = append(r.background, nd)
	}
	for i := 0; i < nDeferred; i++ {
		r.deferred = append(r.deferred, net.AddNode(host(i+1+nBackground), access.LAN100, testProfile()))
	}
	return r
}

func (r *rig) env(horizon time.Duration) Env {
	return Env{Eng: r.eng, Net: r.net, Horizon: horizon,
		Background: r.background, Deferred: r.deferred}
}

func TestRegistryShipsCanonicalScenarios(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("registry has %d scenarios, the CLI contract requires at least 4", len(names))
	}
	for _, want := range []string{"steady", "flashcrowd", "diurnal", "partition"} {
		s, err := ByName(want)
		if err != nil {
			t.Fatalf("canonical scenario %q missing: %v", want, err)
		}
		if s.Name != want || s.Description == "" {
			t.Errorf("scenario %q badly formed: %+v", want, s)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q does not validate: %v", want, err)
		}
	}
}

func TestByNameReturnsFreshCopies(t *testing.T) {
	a, err := ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	a.Buckets = 77
	a.Events[0].From = 0.99
	b, _ := ByName("flashcrowd")
	if b.Buckets == 77 || b.Events[0].From == 0.99 {
		t.Error("ByName aliases registry state: mutating one copy leaked into the next")
	}
}

func TestByNameUnknownListsValidNames(t *testing.T) {
	_, err := ByName("worldcup")
	if err == nil {
		t.Fatal("unknown scenario should fail")
	}
	for _, name := range Names() {
		if !contains(err.Error(), name) {
			t.Errorf("error %q does not list valid scenario %q", err, name)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestValidateRejectsMalformedEvents(t *testing.T) {
	bad := []Event{
		{Kind: Arrivals, From: -0.1, To: 0.5},
		{Kind: Arrivals, From: 0.6, To: 0.5},
		{Kind: Arrivals, From: 0, To: 1.5},
		{Kind: Arrivals, From: 0, To: 1, Peers: 2},
		{Kind: Departures, From: 0.5, To: 0.6},                // no fraction
		{Kind: Departures, From: 0.5, To: 0.6, Fraction: 1.2}, // too big
		{Kind: Partition, From: 0.4, To: 0.6},                 // no target
		{Kind: Partition, From: 0.5, To: 0.5, ASes: 1},        // empty window
		{Kind: Throttle, From: 0.4, To: 0.6, Fraction: 0.5},   // no factor
		{Kind: Throttle, From: 0.4, To: 0.6, Factor: 0.5},     // no fraction
		{Kind: TrackerOutage, From: 0.5, To: 0.5},
		{Kind: RegionalChurn, From: 0.4, To: 0.6, Factor: 2},                   // no country
		{Kind: RegionalChurn, From: 0.4, To: 0.6, Country: "CN"},               // no factor
		{Kind: RegionalChurn, From: 0.5, To: 0.5, Country: "CN", Factor: 2},    // empty window
		{Kind: CountryThrottle, From: 0.4, To: 0.6, Factor: 0.5},               // no country
		{Kind: CountryThrottle, From: 0.4, To: 0.6, Country: "CN"},             // no factor
		{Kind: CountryThrottle, From: 0.5, To: 0.5, Country: "CN", Factor: .5}, // empty window
		{Kind: Zap, From: 0.5, To: 0.6, MeanStay: 0.05},                        // no fraction
		{Kind: Zap, From: 0.5, To: 0.6, Fraction: 1.5, MeanStay: 0.05},         // too big
		{Kind: Zap, From: 0.5, To: 0.6, Fraction: 0.4},                         // no mean away
		{Kind: Kind(99), From: 0, To: 1},
	}
	for i, ev := range bad {
		s := Spec{Name: "bad", Events: []Event{ev}}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%v): malformed event validated", i, ev.Kind)
		}
	}
	if err := (&Spec{Events: []Event{}}).Validate(); err == nil {
		t.Error("nameless spec validated")
	}
}

func TestShapeOffsetsStayInWindowAndDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	mean := func(shape Shape) float64 {
		sum := 0.0
		for i := 0; i < n; i++ {
			x := shapeOffset(rng, shape)
			if x < 0 || x >= 1 {
				t.Fatalf("%v offset %v outside [0,1)", shape, x)
			}
			sum += x
		}
		return sum / n
	}
	uni, burst, wave := mean(ShapeUniform), mean(ShapeBurst), mean(ShapeWave)
	if burst >= uni-0.05 {
		t.Errorf("burst arrivals should front-load the window: mean %.3f vs uniform %.3f", burst, uni)
	}
	if wave < 0.45 || wave > 0.55 {
		t.Errorf("wave arrivals should centre the window: mean %.3f", wave)
	}
}

func TestFlashCrowdActivatesDeferredPool(t *testing.T) {
	r := buildRig(t, 1, 10, 20)
	s, _ := ByName("flashcrowd")
	if err := Compile(s, r.env(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Before the burst window nothing from the pool is online.
	r.eng.Run(25 * time.Second) // 21% of the run
	for i, nd := range r.deferred {
		if nd.Online() {
			t.Fatalf("deferred peer %d online before the burst window", i)
		}
	}
	// After the window the whole pool has joined.
	r.eng.Run(60 * time.Second) // 50%
	joined := 0
	for _, nd := range r.deferred {
		if nd.Online() {
			joined++
		}
	}
	if joined != len(r.deferred) {
		t.Errorf("only %d/%d deferred peers joined after the burst", joined, len(r.deferred))
	}
	// The exodus takes roughly half the swarm down by the end.
	before := r.net.OnlineCount()
	r.eng.Run(2 * time.Minute)
	after := r.net.OnlineCount()
	if after >= before {
		t.Errorf("mass exodus did not shrink the swarm: %d -> %d online", before, after)
	}
}

func TestPartitionBlocksAndRestores(t *testing.T) {
	r := buildRig(t, 2, 16, 0)
	s := &Spec{Name: "cut", Events: []Event{
		{Kind: Partition, From: 0.4, To: 0.6, Country: "IT"},
	}}
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	var italians []*overlay.Node
	for _, nd := range r.background {
		if nd.Host.Country == "IT" {
			italians = append(italians, nd)
		}
	}
	if len(italians) == 0 {
		t.Fatal("rig has no IT peers")
	}
	r.eng.Run(50 * time.Second) // mid-partition
	for i, nd := range italians {
		if nd.Online() || !nd.Blocked() {
			t.Errorf("IT peer %d not partitioned off at 50%%", i)
		}
	}
	r.eng.Run(70 * time.Second) // past restoration
	for i, nd := range italians {
		if !nd.Online() || nd.Blocked() {
			t.Errorf("IT peer %d did not reconnect after the partition", i)
		}
	}
}

func TestPartitionWithNoMatchFails(t *testing.T) {
	r := buildRig(t, 3, 4, 0)
	s := &Spec{Name: "cut", Events: []Event{
		{Kind: Partition, From: 0.4, To: 0.6, Country: "US"},
	}}
	if err := Compile(s, r.env(time.Minute)); err == nil {
		t.Error("partition matching no peers should fail to compile")
	}
}

func TestTrackerOutageWindow(t *testing.T) {
	r := buildRig(t, 4, 8, 0)
	s, _ := ByName("outage")
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	probe := func(at time.Duration, wantPaused bool) {
		r.eng.Schedule(at, func() {
			if r.net.TrackerPaused() != wantPaused {
				t.Errorf("tracker paused=%v at %v, want %v", r.net.TrackerPaused(), at, wantPaused)
			}
		})
	}
	probe(30*time.Second, false)
	probe(50*time.Second, true)
	probe(70*time.Second, false)
	r.eng.Run(100 * time.Second)
}

func TestThrottleScalesAndRestoresLinks(t *testing.T) {
	r := buildRig(t, 5, 12, 0)
	s := &Spec{Name: "squeeze", Events: []Event{
		{Kind: Throttle, From: 0.3, To: 0.7, Fraction: 1.0, Factor: 0.25},
	}}
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	full := access.LAN100.Spec.Up
	r.eng.Run(50 * time.Second)
	throttled := 0
	for _, nd := range r.background {
		if nd.Link.Spec.Up < full {
			throttled++
		}
	}
	if throttled != len(r.background) {
		t.Errorf("%d/%d links throttled mid-window, want all", throttled, len(r.background))
	}
	r.eng.Run(80 * time.Second)
	for i, nd := range r.background {
		if nd.Link.Spec.Up != full {
			t.Errorf("peer %d link not restored: %v", i, nd.Link.Spec.Up)
		}
	}
}

func TestCompiledScenarioIsDeterministic(t *testing.T) {
	run := func() (uint64, int64, int) {
		r := buildRig(t, 42, 12, 12)
		s, _ := ByName("flashcrowd")
		if err := Compile(s, r.env(90*time.Second)); err != nil {
			t.Fatal(err)
		}
		r.eng.Run(90 * time.Second)
		return r.eng.Processed(), r.net.Ledger.VideoTotal, r.net.OnlineCount()
	}
	p1, v1, o1 := run()
	p2, v2, o2 := run()
	if p1 != p2 || v1 != v2 || o1 != o2 {
		t.Errorf("same seed+spec diverged: events %d/%d, video %d/%d, online %d/%d",
			p1, p2, v1, v2, o1, o2)
	}
	if v1 == 0 {
		t.Error("scenario run moved no video")
	}
}

func TestCompileEnvValidation(t *testing.T) {
	r := buildRig(t, 6, 2, 0)
	s, _ := ByName("steady")
	if err := Compile(s, Env{Eng: nil, Net: r.net, Horizon: time.Minute}); err == nil {
		t.Error("nil engine accepted")
	}
	if err := Compile(s, Env{Eng: r.eng, Net: r.net, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestBucketCountBounds(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultBuckets}, {-3, DefaultBuckets}, {24, 24}, {500, MaxBuckets},
	} {
		s := Spec{Buckets: tc.in}
		if got := s.BucketCount(); got != tc.want {
			t.Errorf("BucketCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestArrivalsDuringPartitionSurvive: a deferred peer whose arrival lands
// inside a partition window must connect when the partition heals, not be
// silently lost.
func TestArrivalsDuringPartitionSurvive(t *testing.T) {
	// 12 background peers cover every AS of the rig, so ASes:100 below
	// ranks (and blacks out) all of them.
	r := buildRig(t, 7, 12, 10)
	s := &Spec{Name: "storm", Events: []Event{
		// Whole pool arrives in [40%, 50%] — inside a total blackout
		// (ASes far above the rig's AS count ⇒ every AS partitioned).
		{Kind: Arrivals, From: 0.4, To: 0.5, Shape: ShapeUniform},
		{Kind: Partition, From: 0.3, To: 0.7, ASes: 100},
	}}
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(60 * time.Second) // mid-blackout, past the arrival window
	for i, nd := range r.deferred {
		if nd.Online() {
			t.Fatalf("deferred peer %d online during the blackout", i)
		}
	}
	r.eng.Run(80 * time.Second) // partitions healed at 70s
	joined := 0
	for _, nd := range r.deferred {
		if nd.Online() {
			joined++
		}
	}
	if joined != len(r.deferred) {
		t.Errorf("only %d/%d blackout-window arrivals connected after healing", joined, len(r.deferred))
	}
}

// TestDeparturesArePermanent: exodus victims must stay gone even when they
// have active churn cycles that would otherwise rejoin them.
func TestDeparturesArePermanent(t *testing.T) {
	r := buildRig(t, 8, 0, 0)
	var peers []*overlay.Node
	for i := 0; i < 12; i++ {
		h, err := r.net.Topo.NewHost(topology.SubnetID(i % r.net.Topo.Subnets()))
		if err != nil {
			t.Fatal(err)
		}
		nd := r.net.AddNode(h, access.LAN100, testProfile())
		// Short cycles: a resurrected victim would be back online within
		// ~20 virtual seconds of the exodus.
		nd.ScheduleChurn(time.Duration(i)*100*time.Millisecond, 15*time.Second, 4*time.Second)
		peers = append(peers, nd)
	}
	s := &Spec{Name: "goodbye", Events: []Event{
		{Kind: Departures, From: 0.25, To: 0.3, Fraction: 1.0},
	}}
	env := Env{Eng: r.eng, Net: r.net, Horizon: 2 * time.Minute, Background: peers}
	if err := Compile(s, env); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(2 * time.Minute)
	// Every peer online at the event retired; peers mid-off-phase kept
	// churning. No retired peer may have resurfaced.
	retired := 0
	for i, nd := range peers {
		if nd.Retired() {
			retired++
			if nd.Online() {
				t.Errorf("retired peer %d is back online", i)
			}
		}
	}
	if retired < len(peers)/2 {
		t.Errorf("exodus retired only %d/%d churning peers", retired, len(peers))
	}
}

// TestValidateRejectsOverlappingWindows: windowed incident kinds toggle
// absolute state, so two live windows of the same kind would end each other
// early — the spec must be rejected, not silently misread.
func TestValidateRejectsOverlappingWindows(t *testing.T) {
	bad := [][]Event{
		{
			{Kind: TrackerOutage, From: 0.2, To: 0.5},
			{Kind: TrackerOutage, From: 0.4, To: 0.8},
		},
		{ // touching windows count too: same-instant order is event-order luck
			{Kind: Throttle, From: 0.2, To: 0.5, Fraction: 0.5, Factor: 0.5},
			{Kind: Throttle, From: 0.5, To: 0.8, Fraction: 0.5, Factor: 0.5},
		},
		{ // overlap detection must not depend on event order
			{Kind: Partition, From: 0.1, To: 0.3, ASes: 1},
			{Kind: Partition, From: 0.6, To: 0.9, ASes: 1},
			{Kind: Partition, From: 0.2, To: 0.4, ASes: 1},
		},
	}
	for i, events := range bad {
		s := Spec{Name: "clash", Events: events}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: overlapping windows validated", i)
		}
	}
	// Disjoint windows of the same kind and overlapping windows of
	// different kinds are fine.
	good := Spec{Name: "fine", Events: []Event{
		{Kind: TrackerOutage, From: 0.1, To: 0.3},
		{Kind: TrackerOutage, From: 0.5, To: 0.7},
		{Kind: Throttle, From: 0.2, To: 0.6, Fraction: 0.5, Factor: 0.5},
		{Kind: Departures, From: 0.2, To: 0.6, Fraction: 0.3},
		{Kind: Departures, From: 0.3, To: 0.5, Fraction: 0.3},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("disjoint/different-kind windows rejected: %v", err)
	}
}

// TestValidateWindowRulesForNewKinds: country-targeted windows conflict only
// within a country; Throttle and CountryThrottle share the link-scale state
// and therefore conflict across kinds; only one SourceFailover is allowed.
func TestValidateWindowRulesForNewKinds(t *testing.T) {
	bad := [][]Event{
		{ // same-country regional churn windows overlap
			{Kind: RegionalChurn, From: 0.2, To: 0.5, Country: "CN", Factor: 2},
			{Kind: RegionalChurn, From: 0.4, To: 0.8, Country: "CN", Factor: 3},
		},
		{ // same-country throttle windows overlap
			{Kind: CountryThrottle, From: 0.2, To: 0.5, Country: "IT", Factor: 0.5},
			{Kind: CountryThrottle, From: 0.5, To: 0.8, Country: "IT", Factor: 0.25},
		},
		{ // random-victim throttle may land on the throttled country
			{Kind: Throttle, From: 0.2, To: 0.5, Fraction: 0.5, Factor: 0.5},
			{Kind: CountryThrottle, From: 0.4, To: 0.8, Country: "CN", Factor: 0.5},
		},
		{ // two failovers
			{Kind: SourceFailover, From: 0.2, To: 0.25},
			{Kind: SourceFailover, From: 0.6, To: 0.65},
		},
	}
	for i, events := range bad {
		s := Spec{Name: "clash", Events: events}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: conflicting timeline validated", i)
		}
	}
	good := Spec{Name: "fine", Events: []Event{
		// Different countries may overlap freely, zap overlaps anything,
		// and a single failover rides alongside.
		{Kind: RegionalChurn, From: 0.2, To: 0.6, Country: "CN", Factor: 2},
		{Kind: RegionalChurn, From: 0.3, To: 0.5, Country: "IT", Factor: 2},
		{Kind: CountryThrottle, From: 0.65, To: 0.9, Country: "CN", Factor: 0.5},
		{Kind: Zap, From: 0.3, To: 0.5, Fraction: 0.2, MeanStay: 0.02},
		{Kind: Zap, From: 0.4, To: 0.6, Fraction: 0.2, MeanStay: 0.02},
		{Kind: SourceFailover, From: 0.7, To: 0.7},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("legal timeline rejected: %v", err)
	}
}

// TestExpStaySmallMeanKeepsFloor: the documented one-second floor must win
// over the 6×-mean cap. Before the fix, means under ~167ms clamped draws to
// 6×mean < 1s — short -dur smoke runs got sub-second sessions the docs
// promise cannot happen.
func TestExpStaySmallMeanKeepsFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if d := expStay(rng, 50*time.Millisecond); d < time.Second {
			t.Fatalf("draw %d: stay %v below the one-second floor (mean 50ms)", i, d)
		}
	}
	// The large-mean regime keeps both bounds: floor 1s, cap 6×mean.
	for i := 0; i < 2000; i++ {
		d := expStay(rng, 10*time.Second)
		if d < time.Second || d > 60*time.Second {
			t.Fatalf("draw %d: stay %v outside [1s, 60s] (mean 10s)", i, d)
		}
	}
}

// TestCompileFailsLoudlyOnEmptyArrivals: an Arrivals event with no deferred
// pool must be a compile error, not a silent no-op — a file-authored spec
// with ExtraPeerFactor 0 would otherwise "run" and inject nothing.
func TestCompileFailsLoudlyOnEmptyArrivals(t *testing.T) {
	r := buildRig(t, 10, 8, 0)
	s, _ := ByName("flashcrowd")
	err := Compile(s, r.env(time.Minute))
	if err == nil {
		t.Fatal("arrivals with an empty deferred pool compiled silently")
	}
	if !contains(err.Error(), "deferred pool") {
		t.Errorf("error %q should explain the empty pool", err)
	}

	// An exhausted pool is the same bug one event later.
	r2 := buildRig(t, 11, 4, 6)
	exhausted := &Spec{Name: "greedy", Events: []Event{
		{Kind: Arrivals, From: 0.1, To: 0.2},
		{Kind: Arrivals, From: 0.5, To: 0.6},
	}}
	if err := Compile(exhausted, r2.env(time.Minute)); err == nil {
		t.Error("second arrivals event over an exhausted pool compiled silently")
	}

	// A pool share so small it activates nobody is equally silent death.
	r3 := buildRig(t, 12, 4, 6)
	tiny := &Spec{Name: "tiny", Events: []Event{
		{Kind: Arrivals, From: 0.1, To: 0.2, Peers: 0.01},
	}}
	if err := Compile(tiny, r3.env(time.Minute)); err == nil {
		t.Error("arrivals activating zero peers compiled silently")
	}
}

// TestSourceFailoverPromotesBackup: the source retires at From; at To the
// designated backup is the new origin and the swarm keeps moving video.
func TestSourceFailoverPromotesBackup(t *testing.T) {
	r := buildRig(t, 13, 12, 0)
	s, _ := ByName("failover") // failover at [40%, 45%]
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	oldSrc := r.src
	r.eng.Run(42 * time.Second) // source dead, backup not yet promoted
	if oldSrc.Online() || !oldSrc.Retired() {
		t.Error("source not retired inside the failover gap")
	}
	if got := r.net.Source(); got != oldSrc {
		t.Error("source handed over before the promotion instant")
	}
	r.eng.Run(50 * time.Second) // past promotion
	newSrc := r.net.Source()
	if newSrc == oldSrc || newSrc == nil {
		t.Fatal("no backup promoted after the gap")
	}
	if !newSrc.IsSource() || oldSrc.IsSource() {
		t.Error("IsSource not handed over")
	}
	if !newSrc.Online() {
		t.Error("promoted backup is offline")
	}
	videoAt50 := r.net.Ledger.VideoTotal
	r.eng.Run(100 * time.Second)
	if r.net.Ledger.VideoTotal <= videoAt50 {
		t.Error("swarm moved no video after the failover")
	}
}

// TestSourceFailoverNeedsBackup: a spec whose selector matches no backup
// peer must fail at compile time.
func TestSourceFailoverNeedsBackup(t *testing.T) {
	r := buildRig(t, 14, 6, 0)
	s := &Spec{Name: "doomed", Events: []Event{
		{Kind: SourceFailover, From: 0.4, To: 0.5, Country: "US"},
	}}
	if err := Compile(s, r.env(time.Minute)); err == nil {
		t.Error("failover with no matching backup compiled")
	}
	empty := &Spec{Name: "alone", Events: []Event{
		{Kind: SourceFailover, From: 0.4, To: 0.5},
	}}
	if err := Compile(empty, Env{Eng: r.eng, Net: r.net, Horizon: time.Minute}); err == nil {
		t.Error("failover with no background peers compiled")
	}
}

// TestRegionalChurnScalesOneCountry: CN peers flap faster inside the window
// and are restored after; IT peers never change.
func TestRegionalChurnScalesOneCountry(t *testing.T) {
	r := buildRig(t, 15, 12, 0)
	s := &Spec{Name: "storm", Events: []Event{
		{Kind: RegionalChurn, From: 0.3, To: 0.7, Country: "CN", Factor: 4},
	}}
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	check := func(at time.Duration, wantCN float64) {
		r.eng.Run(at)
		for i, nd := range r.background {
			want := 1.0
			if nd.Host.Country == "CN" {
				want = wantCN
			}
			if got := nd.ChurnScale(); got != want {
				t.Errorf("at %v: peer %d (%s) churn scale %v, want %v", at, i, nd.Host.Country, got, want)
			}
		}
	}
	check(20*time.Second, 1)
	check(50*time.Second, 4)
	check(80*time.Second, 1)
}

func TestRegionalChurnNoMatchFails(t *testing.T) {
	r := buildRig(t, 16, 6, 0)
	s := &Spec{Name: "ghost", Events: []Event{
		{Kind: RegionalChurn, From: 0.3, To: 0.7, Country: "US", Factor: 2},
	}}
	if err := Compile(s, r.env(time.Minute)); err == nil {
		t.Error("regional churn matching no peers compiled")
	}
}

// TestCountryThrottleScalesAndRestores: every CN link runs at the factor
// inside the window and is restored after; other countries are untouched.
func TestCountryThrottleScalesAndRestores(t *testing.T) {
	r := buildRig(t, 17, 12, 0)
	s := &Spec{Name: "squeeze", Events: []Event{
		{Kind: CountryThrottle, From: 0.3, To: 0.7, Country: "CN", Factor: 0.25},
	}}
	if err := Compile(s, r.env(100*time.Second)); err != nil {
		t.Fatal(err)
	}
	full := access.LAN100.Spec.Up
	r.eng.Run(50 * time.Second)
	for i, nd := range r.background {
		throttled := nd.Link.Spec.Up < full
		if wantThrottled := nd.Host.Country == "CN"; throttled != wantThrottled {
			t.Errorf("mid-window peer %d (%s): throttled=%v, want %v", i, nd.Host.Country, throttled, wantThrottled)
		}
	}
	r.eng.Run(80 * time.Second)
	for i, nd := range r.background {
		if nd.Link.Spec.Up != full {
			t.Errorf("peer %d link not restored: %v", i, nd.Link.Spec.Up)
		}
	}
}

func TestCountryThrottleNoMatchFails(t *testing.T) {
	r := buildRig(t, 18, 6, 0)
	s := &Spec{Name: "ghost", Events: []Event{
		{Kind: CountryThrottle, From: 0.3, To: 0.7, Country: "US", Factor: 0.5},
	}}
	if err := Compile(s, r.env(time.Minute)); err == nil {
		t.Error("country throttle matching no peers compiled")
	}
}

// TestZapLeavesAndRejoins: zap victims go offline inside the window and
// surf back — no one is retired, and the swarm ends the run repopulated.
func TestZapLeavesAndRejoins(t *testing.T) {
	r := buildRig(t, 19, 16, 0)
	s := &Spec{Name: "surf", Events: []Event{
		{Kind: Zap, From: 0.3, To: 0.35, Fraction: 0.5, MeanStay: 0.02},
	}}
	if err := Compile(s, r.env(200*time.Second)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(70 * time.Second) // mid-surf: leaves done at 70s = 35%
	dipped := 0
	for _, nd := range r.background {
		if !nd.Online() {
			dipped++
		}
		if nd.Retired() {
			t.Error("zap retired a viewer; zapping must be temporary")
		}
	}
	if dipped == 0 {
		t.Error("zap window took no one offline")
	}
	r.eng.Run(200 * time.Second)
	back := 0
	for _, nd := range r.background {
		if nd.Online() {
			back++
		}
	}
	if back != len(r.background) {
		t.Errorf("only %d/%d peers online at the end; zappers must surf back", back, len(r.background))
	}
}

// TestZapDoesNotResurrectEndedSessions: a zapped-away arrivals viewer whose
// finite session would have ended while it was off surfing must stay gone —
// the session-end Leave no-ops on the offline node, and an unconditional
// rejoin would resurrect the viewer for the rest of the run.
func TestZapDoesNotResurrectEndedSessions(t *testing.T) {
	r := buildRig(t, 23, 0, 20)
	s := &Spec{Name: "boundary", Events: []Event{
		// Whole pool in by 2% of the run, sessions mean 3% (ends ≤ 20%).
		{Kind: Arrivals, From: 0, To: 0.02, MeanStay: 0.03},
		// Everyone still watching at 5% zaps away for ~50% of the horizon:
		// nearly every away time outlives the viewer's own session.
		{Kind: Zap, From: 0.05, To: 0.06, Fraction: 1.0, MeanStay: 0.5},
	}}
	if err := Compile(s, r.env(200*time.Second)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(10 * time.Second) // past the arrival window
	watching := 0
	for _, nd := range r.deferred {
		if nd.Online() {
			watching++
		}
	}
	if watching == 0 {
		t.Fatal("setup: no arrivals online before the zap window")
	}
	r.eng.Run(200 * time.Second)
	// Every session was scheduled to end by ~20% of the run (join ≤ 4s +
	// 6×mean cap 36s), so by the horizon the audience must be gone — a
	// survivor is a zap rejoin that outlived its own session.
	for i, nd := range r.deferred {
		if nd.Online() {
			t.Errorf("peer %d resurrected by a zap rejoin after its session ended", i)
		}
	}
}

// TestNewScenariosDeterministic: the cross-worker byte-identity contract for
// every new event kind — same seed + spec ⇒ identical event counts, video
// totals and online populations, however many runs happen around them.
func TestNewScenariosDeterministic(t *testing.T) {
	specs := map[string]func() *Spec{
		"failover": func() *Spec { s, _ := ByName("failover"); return s },
		"zapping":  func() *Spec { s, _ := ByName("zapping"); return s },
		"regional": func() *Spec { s, _ := ByName("regional"); return s },
		"combined": func() *Spec {
			return &Spec{Name: "combined", Events: []Event{
				{Kind: RegionalChurn, From: 0.1, To: 0.4, Country: "CN", Factor: 3},
				{Kind: CountryThrottle, From: 0.5, To: 0.7, Country: "IT", Factor: 0.5},
				{Kind: Zap, From: 0.45, To: 0.55, Fraction: 0.3, MeanStay: 0.03},
				{Kind: SourceFailover, From: 0.8, To: 0.85},
			}}
		},
	}
	for name, build := range specs {
		run := func() (uint64, int64, int) {
			r := buildRig(t, 77, 14, 0)
			// Give half the peers churn cycles so RegionalChurn has teeth.
			for i, nd := range r.background {
				if i%2 == 0 {
					nd.ScheduleChurn(time.Duration(i)*50*time.Millisecond, 30*time.Second, 8*time.Second)
				}
			}
			if err := Compile(build(), r.env(2*time.Minute)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			r.eng.Run(2 * time.Minute)
			return r.eng.Processed(), r.net.Ledger.VideoTotal, r.net.OnlineCount()
		}
		p1, v1, o1 := run()
		p2, v2, o2 := run()
		if p1 != p2 || v1 != v2 || o1 != o2 {
			t.Errorf("%s: same seed+spec diverged: events %d/%d, video %d/%d, online %d/%d",
				name, p1, p2, v1, v2, o1, o2)
		}
		if v1 == 0 {
			t.Errorf("%s: scenario run moved no video", name)
		}
	}
}

// TestPartitionRankingIgnoresDeferredPool: the "N most-populated ASes"
// selector ranks by the base background only, so a huge deferred pool
// cannot steer the incident toward ASes that are mostly offline.
func TestPartitionRankingIgnoresDeferredPool(t *testing.T) {
	r := buildRig(t, 9, 12, 0)
	// Stack a deferred pool into one AS by adding nodes on one subnet.
	var deferred []*overlay.Node
	for i := 0; i < 40; i++ {
		h, err := r.net.Topo.NewHost(topology.SubnetID(10)) // an IT AS subnet
		if err != nil {
			t.Fatal(err)
		}
		deferred = append(deferred, r.net.AddNode(h, access.LAN100, testProfile()))
	}
	env := Env{Eng: r.eng, Net: r.net, Horizon: time.Minute,
		Background: r.background, Deferred: deferred}
	targets := partitionTargets(Event{Kind: Partition, ASes: 1}, env)
	// The rig spreads 12 background peers round-robin over 12 subnets in 6
	// ASes; the deferred-stacked IT AS must not win the ranking just
	// because 40 offline peers sit there. The chosen AS is decided by
	// background count (all equal ⇒ lowest ASN, a CN AS), and none of the
	// 40 stacked deferred peers may be among the targets.
	stacked := deferred[0].Host.AS
	for _, nd := range targets {
		if nd.Host.AS == stacked {
			t.Fatalf("partition ranking chose the deferred-stacked AS%d", stacked)
		}
	}
	if len(targets) == 0 {
		t.Fatal("partition selector matched nothing")
	}
}
