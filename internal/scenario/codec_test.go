package scenario

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestEveryRegisteredScenarioRoundTrips: the codec contract — each builtin
// spec survives Encode→Decode bit-for-bit and still validates afterwards.
func TestEveryRegisteredScenarioRoundTrips(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: decode: %v\nencoded:\n%s", name, err, buf.String())
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s does not round-trip:\n want %+v\n got  %+v\nencoded:\n%s", name, s, back, buf.String())
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: decoded spec no longer validates: %v", name, err)
		}
	}
}

// TestEncodedKindsAreNames: a file spec must never contain raw enum ints —
// that is the whole point of the named codec.
func TestEncodedKindsAreNames(t *testing.T) {
	s, _ := ByName("regional")
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind": "regional-churn"`, `"kind": "country-throttle"`, `"country": "CN"`} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded spec missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"kind": 0`) || strings.Contains(out, `"kind":0`) {
		t.Errorf("encoded spec leaks raw kind ints:\n%s", out)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name":"x","events":[{"kind":"meteor","from":0,"to":1}]}`))
	if err == nil {
		t.Fatal("unknown kind name decoded")
	}
	if !strings.Contains(err.Error(), "meteor") || !strings.Contains(err.Error(), "zap") {
		t.Errorf("error %q should name the bad kind and list valid ones", err)
	}
}

func TestDecodeRejectsUnknownShape(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name":"x","events":[{"kind":"arrivals","from":0,"to":1,"shape":"spike"}]}`))
	if err == nil {
		t.Fatal("unknown shape name decoded")
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name":"x","extr_peer_factor":1}`))
	if err == nil {
		t.Fatal("typo'd field decoded silently — it would run a different scenario than authored")
	}
}

func TestDecodeRejectsInvalidSpec(t *testing.T) {
	// Well-formed JSON, malformed scenario: validation must run at decode.
	_, err := DecodeBytes([]byte(`{"name":"x","events":[{"kind":"zap","from":0.2,"to":0.4}]}`))
	if err == nil {
		t.Fatal("zap without fraction/mean_stay decoded")
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name":"x"} {"name":"y"}`))
	if err == nil {
		t.Fatal("two concatenated specs decoded as one")
	}
}

func TestDecodeRejectsRawIntKind(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name":"x","events":[{"kind":3,"from":0,"to":1}]}`))
	if err == nil {
		t.Fatal("raw int kind decoded; the schema is named kinds only")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestShippedExampleSpecsLoad: every spec under examples/scenarios/ must
// decode, validate and (for registry-named ones) match its registered twin —
// the shipped files are the doc, so they must never drift from the code.
func TestShippedExampleSpecsLoad(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected shipped example specs, found %d: %v", len(files), files)
	}
	seen := map[string]bool{}
	for _, f := range files {
		s, err := LoadFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		seen[s.Name] = true
		if reg, err := ByName(s.Name); err == nil {
			if !reflect.DeepEqual(reg, s) {
				t.Errorf("%s drifted from the registered %q scenario:\n file %+v\n code %+v", f, s.Name, s, reg)
			}
		}
	}
	for _, want := range []string{"zapping", "failover"} {
		if !seen[want] {
			t.Errorf("no shipped example spec named %q", want)
		}
	}
}

func TestKindNamesCoverEveryKind(t *testing.T) {
	names := KindNames()
	if len(names) != len(kindNames) {
		t.Fatalf("KindNames returned %d names for %d kinds — a kind constant is missing its name", len(names), len(kindNames))
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("kind with empty wire name")
		}
		k, err := ParseKind(n)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", n, err)
		}
		if k.String() != n {
			t.Errorf("name %q parses to kind whose String is %q", n, k)
		}
	}
	if _, err := ParseKind("Kind(7)"); err == nil {
		t.Error("String fallback form parsed as a kind")
	}
}

func TestShapeNamesRoundTrip(t *testing.T) {
	for _, n := range ShapeNames() {
		s, err := ParseShape(n)
		if err != nil {
			t.Errorf("ParseShape(%q): %v", n, err)
		}
		if s.String() != n {
			t.Errorf("shape name %q round-trips to %q", n, s)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig, _ := ByName("flashcrowd")
	cp := orig.Clone()
	cp.Name = "mutant"
	cp.Events[0].From = 0.99
	if orig.Name != "flashcrowd" || orig.Events[0].From == 0.99 {
		t.Errorf("Clone shares state with the original: %+v", orig)
	}
	if (*Spec)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}
