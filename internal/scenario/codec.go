package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file is the scenario file codec: a JSON schema over Spec in which
// event kinds and arrival shapes travel as their wire names ("arrivals",
// "zap", "burst", ...), never as raw enum ints. A file-authored workload
// therefore needs no recompile and stays readable in review. Decode is
// strict — unknown fields and unknown names are loud errors, because a
// typo'd knob that silently defaults would "run" a different scenario than
// the one the author wrote.
//
// Example:
//
//	{
//	  "name": "zapping",
//	  "description": "program-boundary surfing",
//	  "events": [
//	    {"kind": "zap", "from": 0.5, "to": 0.6, "fraction": 0.4, "mean_stay": 0.05}
//	  ]
//	}

// UnmarshalJSON pins the schema to named kinds: a raw int would otherwise
// decode through the underlying type and silently mean whatever the enum
// order happens to be today.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("scenario: event kind must be a name string, got %s", b)
	}
	return k.UnmarshalText([]byte(name))
}

// UnmarshalJSON pins the schema to named shapes (see Kind.UnmarshalJSON).
func (s *Shape) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("scenario: arrival shape must be a name string, got %s", b)
	}
	return s.UnmarshalText([]byte(name))
}

// Encode writes the spec as indented JSON. Every registered scenario
// round-trips through Encode/Decode unchanged.
func Encode(w io.Writer, s *Spec) error {
	if s == nil {
		return fmt.Errorf("scenario: encode nil spec")
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode %s: %w", s.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("scenario: encode %s: %w", s.Name, err)
	}
	return nil
}

// Decode parses one JSON spec and validates it. Unknown fields, unknown
// kind/shape names and malformed events are all errors — a file spec must
// fail loudly at load time, never silently no-op at run time.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	// Trailing content after the spec object is a malformed file, not a
	// second scenario.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: decode: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeBytes is Decode over an in-memory spec.
func DecodeBytes(b []byte) (*Spec, error) { return Decode(bytes.NewReader(b)) }

// LoadFile reads and decodes one scenario file.
func LoadFile(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := DecodeBytes(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
