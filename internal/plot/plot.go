// Package plot renders charts as standalone SVG documents with no
// dependencies beyond the standard library. It exists so every run, sweep
// and study that renders a text table can also persist a plotted artifact —
// the time-series and cross-app comparison figures the paper's results are
// made of — without pulling a plotting stack into the build.
//
// Output is deterministic by construction: identical input renders
// byte-identical SVG (fixed float formatting, no maps on the render path,
// no timestamps), so artifacts are golden-testable and diffable across
// runs. Colors follow a fixed categorical order validated for
// colorblind-safe adjacency; series identity is never carried by color
// alone (legends are always emitted for multi-series charts).
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// palette is the categorical series order (validated colorblind-safe
// adjacency on the light surface). Series beyond its length wrap, which is
// acceptable only because chart producers in this module stay well under it.
var palette = [8]string{
	"#2a78d6", // blue
	"#eb6834", // orange
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e87ba4", // magenta
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
}

// Chart surface and ink roles (light mode).
const (
	surfaceColor = "#fcfcfb"
	gridColor    = "#e7e6e3"
	axisColor    = "#b5b4b0"
	inkPrimary   = "#0b0b0b"
	inkSecondary = "#52514e"
)

// SeriesColor returns the categorical color for series index i, the same
// fixed assignment the renderer uses (exported for UI code that must agree
// with emitted artifacts).
func SeriesColor(i int) string { return palette[i%len(palette)] }

// Series is one named line of a Line chart. X and Y must have equal length;
// Lo/Hi, when non-empty, must match too and shade a band around the line
// (mean±stderr in sweep artifacts). NaN/Inf points break the line into
// segments instead of corrupting the path.
type Series struct {
	Name   string
	X, Y   []float64
	Lo, Hi []float64
}

// Line is a multi-series line chart with axes, a legend and optional band
// shading.
type Line struct {
	Title          string
	XLabel, YLabel string
	// XTime formats X tick labels as durations (X values in seconds).
	XTime  bool
	Series []Series
	// Width and Height are the SVG dimensions (0 selects 720×360).
	Width, Height int
}

// BarSeries is one named bar group member of a Bar chart. Vals holds one
// value per group; Errs, when non-empty, draws stderr whiskers; Valid,
// when non-empty, skips unmeasured cells entirely (the bar-chart analogue
// of the tables' dash).
type BarSeries struct {
	Name  string
	Vals  []float64
	Errs  []float64
	Valid []bool
}

// Bar is a grouped bar chart: one cluster per group, one bar per series
// within each cluster, optional stderr whiskers.
type Bar struct {
	Title  string
	YLabel string
	Groups []string
	Series []BarSeries
	// Width and Height are the SVG dimensions (0 auto-sizes the width to
	// the cluster count and selects height 360).
	Width, Height int
}

// Artifact pairs a renderable chart with the file stem it should be written
// under (WriteDir appends ".svg").
type Artifact struct {
	Name  string
	Chart interface{ Render(io.Writer) error }
}

// tickLabel formats a tick value with exactly the decimals its step needs
// ("0.6", not the "0.6000000000000001" float accumulation would print).
// strconv's fixed-decimal formatting is deterministic across platforms.
func tickLabel(v, step float64) string {
	decimals := 0
	if step < 1 {
		decimals = int(math.Ceil(-math.Log10(step) - 1e-9))
	}
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// coord formats a pixel-space coordinate with fixed precision, normalizing
// the negative-zero strconv would otherwise leak into the byte stream.
func coord(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	if s == "-0.00" {
		return "0.00"
	}
	return s
}

// esc escapes text nodes and attribute values.
var esc = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

// finite reports whether v is plottable.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// niceStep returns the 1/2/5×10ⁿ step that yields at most maxTicks ticks
// over span.
func niceStep(span float64, maxTicks int) float64 {
	if span <= 0 || maxTicks < 1 {
		return 1
	}
	raw := span / float64(maxTicks)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if mag*m >= raw {
			return mag * m
		}
	}
	return mag * 10
}

// ticks enumerates the nice tick values covering [lo, hi] and reports the
// step they were built from (tickLabel needs it for decimal count).
func ticks(lo, hi float64, maxTicks int) ([]float64, float64) {
	step := niceStep(hi-lo, maxTicks)
	first := math.Ceil(lo/step) * step
	var out []float64
	// The epsilon absorbs float accumulation so hi itself stays included.
	for i := 0; ; i++ {
		v := first + float64(i)*step
		if v > hi+step*1e-9 {
			break
		}
		if v == 0 {
			v = 0 // normalize -0
		}
		out = append(out, v)
	}
	return out, step
}

// timeLabel renders an x tick as a duration ("90s", "5m", "1h10m").
func timeLabel(secs float64) string {
	d := time.Duration(math.Round(secs * float64(time.Second)))
	return d.Truncate(time.Second).String()
}

// scale maps data range [lo,hi] onto pixel range [a,b].
type scale struct{ lo, hi, a, b float64 }

func (s scale) px(v float64) float64 {
	if s.hi == s.lo {
		return (s.a + s.b) / 2
	}
	return s.a + (v-s.lo)/(s.hi-s.lo)*(s.b-s.a)
}

// svgBuilder accumulates the document.
type svgBuilder struct{ b strings.Builder }

func (s *svgBuilder) f(format string, args ...any) {
	fmt.Fprintf(&s.b, format, args...)
}

func (s *svgBuilder) open(w, h int, title string) {
	s.f(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	s.f(`<rect width="%d" height="%d" fill="%s"/>`+"\n", w, h, surfaceColor)
	if title != "" {
		s.f(`<text x="16" y="22" font-size="14" fill="%s">%s</text>`+"\n", inkPrimary, esc.Replace(title))
	}
}

func (s *svgBuilder) text(x, y float64, size int, fill, anchor, extra, txt string) {
	s.f(`<text x="%s" y="%s" font-size="%d" fill="%s"`, coord(x), coord(y), size, fill)
	if anchor != "" {
		s.f(` text-anchor="%s"`, anchor)
	}
	if extra != "" {
		s.f(` %s`, extra)
	}
	s.f(`>%s</text>`+"\n", esc.Replace(txt))
}

func (s *svgBuilder) hline(x1, x2, y float64, color string, width float64) {
	s.f(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"/>`+"\n",
		coord(x1), coord(y), coord(x2), coord(y), color, coord(width))
}

func (s *svgBuilder) vline(x, y1, y2 float64, color string, width float64) {
	s.f(`<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"/>`+"\n",
		coord(x), coord(y1), coord(x), coord(y2), color, coord(width))
}

// legend draws one horizontal legend row at (x, y); returns nothing —
// layout is a fixed 7px-per-character estimate, deterministic by
// construction. Charts with a single series emit no legend (the title
// names it).
func (s *svgBuilder) legend(x, y float64, names []string) {
	if len(names) < 2 {
		return
	}
	for i, name := range names {
		s.f(`<rect x="%s" y="%s" width="10" height="10" rx="2" fill="%s"/>`+"\n",
			coord(x), coord(y-9), SeriesColor(i))
		s.text(x+14, y, 11, inkSecondary, "", "", name)
		x += 14 + 7*float64(len(name)) + 14
	}
}

// dataRange folds finite values into [lo,hi]; ok reports any were seen.
func dataRange(lo, hi float64, ok bool, vals ...float64) (float64, float64, bool) {
	for _, v := range vals {
		if !finite(v) {
			continue
		}
		if !ok {
			lo, hi, ok = v, v, true
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return lo, hi, ok
}

// Render writes the chart as a complete SVG document.
func (l *Line) Render(w io.Writer) error {
	width, height := l.Width, l.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 360
	}
	const (
		marginL, marginR = 64, 18
		marginT, marginB = 52, 48
	)
	plotL, plotR := float64(marginL), float64(width-marginR)
	plotT, plotB := float64(marginT), float64(height-marginB)

	xlo, xhi, xok := 0.0, 0.0, false
	ylo, yhi, yok := 0.0, 0.0, false
	for _, s := range l.Series {
		xlo, xhi, xok = dataRange(xlo, xhi, xok, s.X...)
		ylo, yhi, yok = dataRange(ylo, yhi, yok, s.Y...)
		ylo, yhi, yok = dataRange(ylo, yhi, yok, s.Lo...)
		ylo, yhi, yok = dataRange(ylo, yhi, yok, s.Hi...)
	}
	if !xok {
		xlo, xhi = 0, 1
	}
	if !yok {
		ylo, yhi = 0, 1
	}
	// Non-negative data anchors at zero — bars and rates read from a zero
	// baseline; a negative range gets a nice floor instead.
	if ylo > 0 {
		ylo = 0
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	xs := scale{xlo, xhi, plotL, plotR}
	ys := scale{ylo, yhi, plotB, plotT}

	var b svgBuilder
	b.open(width, height, l.Title)
	names := make([]string, len(l.Series))
	for i, s := range l.Series {
		names[i] = s.Name
	}
	b.legend(plotL, 40, names)

	// Grid and axes. The grid is recessive; ink lives in the labels.
	yticks, ystep := ticks(ylo, yhi, 5)
	for _, tv := range yticks {
		y := ys.px(tv)
		b.hline(plotL, plotR, y, gridColor, 1)
		b.text(plotL-8, y+3.5, 10, inkSecondary, "end", "", tickLabel(tv, ystep))
	}
	xticks, xstep := ticks(xlo, xhi, 7)
	for _, tv := range xticks {
		x := xs.px(tv)
		b.vline(x, plotB, plotB+4, axisColor, 1)
		label := tickLabel(tv, xstep)
		if l.XTime {
			label = timeLabel(tv)
		}
		b.text(x, plotB+16, 10, inkSecondary, "middle", "", label)
	}
	b.hline(plotL, plotR, plotB, axisColor, 1)
	b.vline(plotL, plotT, plotB, axisColor, 1)
	if l.XLabel != "" {
		b.text((plotL+plotR)/2, float64(height)-10, 11, inkSecondary, "middle", "", l.XLabel)
	}
	if l.YLabel != "" {
		b.text(14, (plotT+plotB)/2, 11, inkSecondary, "middle",
			fmt.Sprintf(`transform="rotate(-90 14 %s)"`, coord((plotT+plotB)/2)), l.YLabel)
	}

	// Bands first (under every line), then lines, in series order.
	for i, s := range l.Series {
		if len(s.Lo) != len(s.X) || len(s.Hi) != len(s.X) {
			continue
		}
		eachSegment(s.X, func(j int) bool { return finite(s.Lo[j]) && finite(s.Hi[j]) && finite(s.X[j]) },
			func(seg []int) {
				if len(seg) < 2 {
					return
				}
				b.f(`<path d="`)
				for k, j := range seg {
					b.f("%s%s,%s", pathCmd(k), coord(xs.px(s.X[j])), coord(ys.px(s.Hi[j])))
				}
				for k := len(seg) - 1; k >= 0; k-- {
					j := seg[k]
					b.f("L%s,%s", coord(xs.px(s.X[j])), coord(ys.px(s.Lo[j])))
				}
				b.f(`Z" fill="%s" fill-opacity="0.15"/>`+"\n", SeriesColor(i))
			})
	}
	for i, s := range l.Series {
		if len(s.Y) != len(s.X) {
			continue
		}
		eachSegment(s.X, func(j int) bool { return finite(s.Y[j]) && finite(s.X[j]) },
			func(seg []int) {
				if len(seg) == 1 {
					j := seg[0]
					b.f(`<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n",
						coord(xs.px(s.X[j])), coord(ys.px(s.Y[j])), SeriesColor(i))
					return
				}
				b.f(`<path d="`)
				for k, j := range seg {
					b.f("%s%s,%s", pathCmd(k), coord(xs.px(s.X[j])), coord(ys.px(s.Y[j])))
				}
				b.f(`" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n", SeriesColor(i))
			})
	}
	b.f("</svg>\n")
	_, err := io.WriteString(w, b.b.String())
	return err
}

// pathCmd returns the SVG path command for point index k of a segment.
func pathCmd(k int) string {
	if k == 0 {
		return "M"
	}
	return "L"
}

// eachSegment walks indexes of x, grouping consecutive indexes accepted by
// ok into segments and handing each to emit. This is how NaN/Inf points
// split a line instead of poisoning the whole path.
func eachSegment(x []float64, ok func(int) bool, emit func([]int)) {
	var seg []int
	for j := range x {
		if ok(j) {
			seg = append(seg, j)
			continue
		}
		if len(seg) > 0 {
			emit(seg)
			seg = nil
		}
	}
	if len(seg) > 0 {
		emit(seg)
	}
}

// Render writes the chart as a complete SVG document.
func (b *Bar) Render(w io.Writer) error {
	const (
		marginL, marginR = 64, 18
		marginT          = 52
		barW, barGap     = 18.0, 2.0
		groupGap         = 26.0
	)
	nGroups, nSeries := len(b.Groups), len(b.Series)
	if nSeries == 0 {
		nGroups = 0
	}
	groupW := float64(nSeries)*(barW+barGap) - barGap
	width, height := b.Width, b.Height
	if width <= 0 {
		width = marginL + marginR + int(float64(nGroups)*(groupW+groupGap)+groupGap)
		if width < 480 {
			width = 480
		}
	}
	if height <= 0 {
		height = 360
	}
	// Group labels rotate when any would overflow its cluster width.
	rotate := false
	for _, g := range b.Groups {
		if 7*float64(len(g)) > groupW+groupGap {
			rotate = true
		}
	}
	marginB := 44.0
	if rotate {
		longest := 0
		for _, g := range b.Groups {
			if len(g) > longest {
				longest = len(g)
			}
		}
		marginB = 24 + math.Min(110, 4.5*float64(longest))
	}
	plotL, plotR := float64(marginL), float64(width-marginR)
	plotT, plotB := float64(marginT), float64(height)-marginB

	ylo, yhi, yok := 0.0, 0.0, false
	for _, s := range b.Series {
		for g := 0; g < nGroups && g < len(s.Vals); g++ {
			if len(s.Valid) > g && !s.Valid[g] {
				continue
			}
			v, e := s.Vals[g], 0.0
			if len(s.Errs) > g {
				e = s.Errs[g]
			}
			ylo, yhi, yok = dataRange(ylo, yhi, yok, v-e, v+e)
		}
	}
	if !yok {
		ylo, yhi = 0, 1
	}
	// Bars always include the zero baseline.
	ylo, yhi = math.Min(ylo, 0), math.Max(yhi, 0)
	if yhi == ylo {
		yhi = ylo + 1
	}
	ys := scale{ylo, yhi, plotB, plotT}

	var sb svgBuilder
	sb.open(width, height, b.Title)
	names := make([]string, nSeries)
	for i, s := range b.Series {
		names[i] = s.Name
	}
	sb.legend(plotL, 40, names)

	yticks, ystep := ticks(ylo, yhi, 5)
	for _, tv := range yticks {
		y := ys.px(tv)
		sb.hline(plotL, plotR, y, gridColor, 1)
		sb.text(plotL-8, y+3.5, 10, inkSecondary, "end", "", tickLabel(tv, ystep))
	}
	if b.YLabel != "" {
		sb.text(14, (plotT+plotB)/2, 11, inkSecondary, "middle",
			fmt.Sprintf(`transform="rotate(-90 14 %s)"`, coord((plotT+plotB)/2)), b.YLabel)
	}

	zero := ys.px(0)
	for g := 0; g < nGroups; g++ {
		gx := plotL + groupGap + float64(g)*(groupW+groupGap)
		for i, s := range b.Series {
			if g >= len(s.Vals) || (len(s.Valid) > g && !s.Valid[g]) {
				continue
			}
			v := s.Vals[g]
			if !finite(v) {
				continue
			}
			x := gx + float64(i)*(barW+barGap)
			y, h := ys.px(v), 0.0
			if v >= 0 {
				h = zero - y
			} else {
				y, h = zero, y-zero
			}
			// Rounded data end anchored to the baseline: round only the
			// outer corners by overshooting the rect into a clip at zero.
			sb.f(`<rect x="%s" y="%s" width="%s" height="%s" rx="2" fill="%s"/>`+"\n",
				coord(x), coord(y), coord(barW), coord(h), SeriesColor(i))
			if len(s.Errs) > g && finite(s.Errs[g]) && s.Errs[g] > 0 {
				cx := x + barW/2
				y1, y2 := ys.px(v-s.Errs[g]), ys.px(v+s.Errs[g])
				sb.vline(cx, y1, y2, inkSecondary, 1)
				sb.hline(cx-3, cx+3, y1, inkSecondary, 1)
				sb.hline(cx-3, cx+3, y2, inkSecondary, 1)
			}
		}
		cx := gx + groupW/2
		if rotate {
			sb.text(cx, plotB+14, 10, inkSecondary, "end",
				fmt.Sprintf(`transform="rotate(-30 %s %s)"`, coord(cx), coord(plotB+14)), b.Groups[g])
		} else {
			sb.text(cx, plotB+16, 10, inkSecondary, "middle", "", b.Groups[g])
		}
	}
	sb.hline(plotL, plotR, zero, axisColor, 1)
	sb.f("</svg>\n")
	_, err := io.WriteString(w, sb.b.String())
	return err
}
