package plot

import (
	"bytes"
	"encoding/xml"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden SVG files from the current renderer. Run
// it only for a change that *intends* to alter plotted output, and say so
// in the commit.
var update = flag.Bool("update", false, "rewrite golden SVG files")

// wellFormed fails the test unless the document parses as XML end to end —
// the TestMain-level guarantee that no emitted artifact is ever a broken
// document. Every render in this package's tests must pass through here.
func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("emitted SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

// checkGolden compares got against testdata/<name>, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/plot -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d bytes got, %d want); SVG output must be byte-deterministic.\nIf the change is intended, regenerate with -update and say so in the commit.",
			name, len(got), len(want))
	}
}

// goldenLine is the seed-fixed series fixture: two series over the same
// instants, one carrying a ±stderr band, plus a NaN hole that must split
// the line, exercising every path command the renderer emits.
func goldenLine() *Line {
	x := []float64{0, 30, 60, 90, 120, 150}
	return &Line{
		Title:  "Continuity — scenario \"flash<crowd>\"",
		XLabel: "virtual time",
		YLabel: "continuity",
		XTime:  true,
		Series: []Series{
			{
				Name: "PPLive",
				X:    x,
				Y:    []float64{0.91, 0.94, math.NaN(), 0.97, 0.96, 0.98},
			},
			{
				Name: "TVAnts",
				X:    x,
				Y:    []float64{0.88, 0.9, 0.93, 0.92, 0.95, 0.94},
				Lo:   []float64{0.86, 0.88, 0.91, 0.9, 0.93, 0.92},
				Hi:   []float64{0.9, 0.92, 0.95, 0.94, 0.97, 0.96},
			},
		},
	}
}

// goldenBar is the pivot fixture: three groups × two series with whiskers
// and one unmeasured cell (the tables' dash convention).
func goldenBar() *Bar {
	return &Bar{
		Title:  "Study \"strategy-comparison\" — Source kbps",
		YLabel: "kbps",
		Groups: []string{"PPLive urgent-random", "PPLive rarest", "TVAnts rarest"},
		Series: []BarSeries{
			{
				Name: "Source kbps",
				Vals: []float64{412.5, 388.25, 501},
				Errs: []float64{12.5, 9.75, 0},
			},
			{
				Name:  "Intra-AS%",
				Vals:  []float64{41.2, 0, 38.9},
				Errs:  []float64{2.1, 0, 1.4},
				Valid: []bool{true, false, true},
			},
		},
	}
}

func renderTo(t *testing.T, c Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Chart.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	return buf.Bytes()
}

func TestLineGolden(t *testing.T) {
	got := renderTo(t, Artifact{"line", goldenLine()})
	checkGolden(t, "line.svg", got)
}

func TestBarGolden(t *testing.T) {
	got := renderTo(t, Artifact{"bar", goldenBar()})
	checkGolden(t, "bar.svg", got)
}

// TestDeterministicRender pins the byte-identical contract directly: the
// same input must render the same bytes across repeated calls (no map
// iteration, no timestamps, no pointer-dependent state on the render path).
func TestDeterministicRender(t *testing.T) {
	a := renderTo(t, Artifact{"l", goldenLine()})
	b := renderTo(t, Artifact{"l", goldenLine()})
	if !bytes.Equal(a, b) {
		t.Error("two renders of the identical Line differ")
	}
	a = renderTo(t, Artifact{"b", goldenBar()})
	b = renderTo(t, Artifact{"b", goldenBar()})
	if !bytes.Equal(a, b) {
		t.Error("two renders of the identical Bar differ")
	}
}

// TestEmptyAndDegenerateInputs: charts over no data, single points and
// all-NaN series must still render well-formed documents, never panic or
// emit broken paths.
func TestEmptyAndDegenerateInputs(t *testing.T) {
	for _, c := range []Artifact{
		{"empty-line", &Line{Title: "empty"}},
		{"one-point", &Line{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{2}}}}},
		{"all-nan", &Line{Series: []Series{{Name: "n", X: []float64{0, 1}, Y: []float64{math.NaN(), math.Inf(1)}}}}},
		{"flat", &Line{Series: []Series{{Name: "f", X: []float64{0, 1}, Y: []float64{3, 3}}}}},
		{"empty-bar", &Bar{Title: "empty"}},
		{"no-valid-bar", &Bar{Groups: []string{"g"}, Series: []BarSeries{{Name: "s", Vals: []float64{1}, Valid: []bool{false}}}}},
	} {
		svg := renderTo(t, c)
		if !strings.Contains(string(svg), "</svg>") {
			t.Errorf("%s: truncated document", c.Name)
		}
	}
}

// TestEscaping: titles, labels and series names with XML metacharacters
// must be escaped, pinned by the parser.
func TestEscaping(t *testing.T) {
	l := &Line{
		Title:  `a<b & "c">`,
		XLabel: "<x>",
		YLabel: "&y",
		Series: []Series{
			{Name: `s<1> & "q"`, X: []float64{0, 1}, Y: []float64{1, 2}},
			{Name: "s2", X: []float64{0, 1}, Y: []float64{2, 1}},
		},
	}
	svg := renderTo(t, Artifact{"esc", l})
	if strings.Contains(string(svg), `a<b`) {
		t.Error("unescaped title leaked into the document")
	}
}

func TestSlug(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"Source kbps", "source-kbps"},
		{"AS B'D%", "as-b-d"},
		{"continuity", "continuity"},
		{"--", "chart"},
		{"Time series — scenario \"x\"", "time-series-scenario-x"},
	} {
		if got := Slug(tc.in); got != tc.want {
			t.Errorf("Slug(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "svg")
	paths, err := WriteDir(dir, []Artifact{
		{"line", goldenLine()},
		{"bar", goldenBar()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d artifacts, want 2", len(paths))
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		wellFormed(t, b)
	}
}

func TestTicksCoverRange(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{
		{0, 1}, {0, 237686}, {0.85, 0.99}, {-5, 5}, {0, 0.0001},
	} {
		tv, _ := ticks(tc.lo, tc.hi, 5)
		if len(tv) < 2 {
			t.Errorf("ticks(%v, %v) = %v: fewer than 2 ticks", tc.lo, tc.hi, tv)
		}
		for _, v := range tv {
			if v < tc.lo-1e-9 || v > tc.hi+1e-9 {
				t.Errorf("ticks(%v, %v): tick %v outside range", tc.lo, tc.hi, v)
			}
		}
	}
}
