package plot

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Slug reduces a human label to a safe, stable file stem: lower-cased,
// runs of non-alphanumerics collapsed to single dashes ("Source kbps" →
// "source-kbps", "AS B'D%" → "as-b-d").
func Slug(label string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	if b.Len() == 0 {
		return "chart"
	}
	return b.String()
}

// WriteDir renders every artifact into dir as <Name>.svg, creating the
// directory if needed, and returns the written paths in artifact order. The
// first render or write error aborts the batch — a partial artifact set
// must be loud, not a silent gap in a results directory.
func WriteDir(dir string, arts []Artifact) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plot: %w", err)
	}
	paths := make([]string, 0, len(arts))
	for _, a := range arts {
		path := filepath.Join(dir, a.Name+".svg")
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("plot: %w", err)
		}
		err = a.Chart.Render(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("plot: render %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
