package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"napawine/internal/experiment"
)

// This file is the result codec: the persistence contract for what a study
// computes, mirroring the strictness of the study and scenario codecs for
// what a study *is*. A Result travels as the study itself plus one cell
// record per grid point; a per-cell experiment.Summary travels standalone
// for the fleet's checkpoint spool and wire protocol. Both directions are
// strict — unknown fields are loud errors, a decoded Result must match its
// own study's grid cell-for-cell — and both round-trip bit-for-bit
// (Encode(Decode(x)) == x, pinned by test). Numbers survive exactly:
// encoding/json writes float64s in shortest-round-trip form, so a summary
// that crosses the codec aggregates into byte-identical tables.

// EncodeSummary writes one per-run summary as indented JSON.
func EncodeSummary(w io.Writer, s *experiment.Summary) error {
	if s == nil {
		return fmt.Errorf("study: encode nil summary")
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("study: encode summary: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("study: encode summary: %w", err)
	}
	return nil
}

// DecodeSummary parses one per-run summary, strictly: unknown fields and
// trailing data are errors.
func DecodeSummary(r io.Reader) (*experiment.Summary, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s experiment.Summary
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("study: decode summary: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("study: decode summary: trailing data after summary object")
	}
	return &s, nil
}

// DecodeSummaryBytes is DecodeSummary over an in-memory summary.
func DecodeSummaryBytes(b []byte) (*experiment.Summary, error) {
	return DecodeSummary(bytes.NewReader(b))
}

// resultJSON is the file form of a Result: the study it answers (in the
// study codec's own schema) plus the executed cells in grid order. Full
// per-cell experiment Results never travel — they hold live configuration
// (profiles, callbacks) that has no file form — so EncodeResult rejects a
// Result carrying them rather than silently shedding data.
type resultJSON struct {
	Study *Study  `json:"study"`
	Seeds []int64 `json:"seeds"`
	Cells []Cell  `json:"cells"`
}

// EncodeResult writes a study result as indented JSON: the study plus one
// record per grid cell. The study part inherits the study codec's
// restrictions (a programmatic variant Mutate cannot be encoded), and a
// Result retaining full experiment results (WithFullResults) is rejected —
// both would otherwise write a file that decodes into less than what was
// encoded.
func EncodeResult(w io.Writer, r *Result) error {
	if r == nil {
		return fmt.Errorf("study: encode nil result")
	}
	if r.Study == nil {
		return fmt.Errorf("study: encode result without its study")
	}
	for _, f := range r.Full {
		if f != nil {
			return fmt.Errorf("study: encode %s result: full experiment results have no file form (drop WithFullResults)",
				r.Study.Name)
		}
	}
	// Reuse the study codec's Mutate rejection (and any future rule) rather
	// than duplicating it here.
	if err := Encode(io.Discard, r.Study); err != nil {
		return err
	}
	b, err := json.MarshalIndent(resultJSON{Study: r.Study, Seeds: r.Seeds, Cells: r.Cells}, "", "  ")
	if err != nil {
		return fmt.Errorf("study: encode %s result: %w", r.Study.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("study: encode %s result: %w", r.Study.Name, err)
	}
	return nil
}

// DecodeResult parses one result file, strictly. Beyond field strictness,
// the decoded cells must be the study's own grid: same count, same
// coordinates at every index, seeds equal to the study's seed list. A
// result file can therefore never replay against a different (or edited)
// study without failing loudly.
func DecodeResult(rd io.Reader) (*Result, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var rj resultJSON
	if err := dec.Decode(&rj); err != nil {
		return nil, fmt.Errorf("study: decode result: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("study: decode result: trailing data after result object")
	}
	if rj.Study == nil {
		return nil, fmt.Errorf("study: decode result: missing study")
	}
	if err := rj.Study.Validate(); err != nil {
		return nil, err
	}
	infos, err := rj.Study.RunInfos()
	if err != nil {
		return nil, err
	}
	if len(rj.Cells) != len(infos) {
		return nil, fmt.Errorf("study: decode %s result: %d cells over a %d-cell grid",
			rj.Study.Name, len(rj.Cells), len(infos))
	}
	for i, c := range rj.Cells {
		want := infos[i]
		if c.Index != want.Index || c.App != want.App || c.Strategy != want.Strategy ||
			c.Scenario != want.Scenario || c.Variant != want.Variant ||
			c.QueueDepth != want.QueueDepth || c.Seed != want.Seed {
			return nil, fmt.Errorf("study: decode %s result: cell %d does not match the study's grid (got %s/%s/%s/%s/q%d/seed %d)",
				rj.Study.Name, i, c.App, c.Strategy, c.Scenario, c.Variant, c.QueueDepth, c.Seed)
		}
	}
	seeds := rj.Study.SeedList()
	if len(rj.Seeds) != len(seeds) {
		return nil, fmt.Errorf("study: decode %s result: %d seeds, study lists %d", rj.Study.Name, len(rj.Seeds), len(seeds))
	}
	for i, s := range rj.Seeds {
		if s != seeds[i] {
			return nil, fmt.Errorf("study: decode %s result: seed %d is %d, study lists %d", rj.Study.Name, i, s, seeds[i])
		}
	}
	return &Result{Study: rj.Study, Seeds: rj.Seeds, Cells: rj.Cells}, nil
}

// DecodeResultBytes is DecodeResult over an in-memory result.
func DecodeResultBytes(b []byte) (*Result, error) { return DecodeResult(bytes.NewReader(b)) }
