package study

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"napawine/internal/core"
	"napawine/internal/experiment"
	"napawine/internal/overlay"
)

// fullSummary builds a summary with every field populated, so a round trip
// that silently drops a field cannot pass by that field being zero.
func fullSummary() experiment.Summary {
	return experiment.Summary{
		App: "TVAnts", Seed: 7, Scenario: "flashcrowd",
		Series: []experiment.SeriesSample{
			{T: 10 * time.Second, Online: 42, Continuity: 0.875, IntraASPct: 12.5,
				IntraASValid: true, VideoKbps: 433.125, TrackerUp: true,
				PerAS: []experiment.ASSample{
					{AS: 3269, Online: 11, Continuity: 0.9375, IntraPct: 50, IntraValid: true},
					{AS: 12345, Online: 3, Continuity: 0.5},
				}},
			{T: 20 * time.Second, Online: 40, Continuity: 0.8125},
		},
		RxKbpsMean: 410.5, RxKbpsMax: 700.25, TxKbpsMean: 390.75, TxKbpsMax: 650.5,
		AllPeersMean: 80.5, AllPeersMax: 120, ContribRxMean: 20.25, ContribRxMax: 31,
		ContribTxMean: 18.5, ContribTxMax: 29,
		SelfBiasContrib: core.SelfBias{Contributor: true, PeerPct: 1.5, BytePct: 2.25, Peers: 200, Bytes: 1 << 30},
		SelfBiasAll:     core.SelfBias{PeerPct: 0.75, BytePct: 1.125, Peers: 400, Bytes: 2 << 30},
		TableIV: []experiment.SummaryCell{
			{Property: "AS", Vals: [8]float64{50.5, 49.5, 1, 2, 3, 4, 5, 6},
				Valid: [8]bool{true, true, false, true, true, true, true, true}},
		},
		HopMedian: 19, MeanContinuity: 0.84375, Events: 123456, Unlocated: 3,
		SourceKbps: 480.5, SourceSharePct: 6.25, VideoBytes: 3 << 28,
		DiffusionDelayS: 1.375, DiffusionChunks: 9876,
		Drops: 12, Retransmits: 8, Backoffs: 5, ChunksServed: 5000, LossPct: 0.2394,
	}
}

func TestSummaryCodecRoundTrip(t *testing.T) {
	orig := fullSummary()
	var buf bytes.Buffer
	if err := EncodeSummary(&buf, &orig); err != nil {
		t.Fatalf("EncodeSummary: %v", err)
	}
	first := buf.String()
	dec, err := DecodeSummaryBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeSummary: %v", err)
	}
	if !reflect.DeepEqual(*dec, orig) {
		t.Fatalf("summary changed across the codec:\n got %+v\nwant %+v", *dec, orig)
	}
	var buf2 bytes.Buffer
	if err := EncodeSummary(&buf2, dec); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf2.String() != first {
		t.Fatalf("summary encoding not bit-stable across a round trip:\n%s\nvs\n%s", first, buf2.String())
	}
}

func TestSummaryCodecRejectsUnknownFieldAndTrailing(t *testing.T) {
	if _, err := DecodeSummaryBytes([]byte(`{"App":"TVAnts","Bogus":1}`)); err == nil {
		t.Error("unknown summary field accepted")
	}
	if _, err := DecodeSummaryBytes([]byte(`{"App":"TVAnts"} {}`)); err == nil {
		t.Error("trailing data after summary accepted")
	}
}

// tinyStudy is the smallest grid worth running: one app, two seeds.
func tinyStudy() *Study {
	return &Study{
		Name:       "codec-tiny",
		Apps:       []string{"TVAnts"},
		Seeds:      []int64{1, 2},
		Duration:   Duration(15 * time.Second),
		PeerFactor: 0.05,
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), tinyStudy())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	first := buf.String()
	dec, err := DecodeResultBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	var buf2 bytes.Buffer
	if err := EncodeResult(&buf2, dec); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if buf2.String() != first {
		t.Fatal("result encoding not bit-stable across a round trip")
	}
	// The decoded result must render the exact table the original does —
	// the property the fleet's checkpointed assembly depends on.
	var want, got bytes.Buffer
	if err := res.ComparisonTable().Render(&want); err != nil {
		t.Fatalf("render original: %v", err)
	}
	if err := dec.ComparisonTable().Render(&got); err != nil {
		t.Fatalf("render decoded: %v", err)
	}
	if want.String() != got.String() {
		t.Fatalf("decoded result renders a different table:\n%s\nvs\n%s", want.String(), got.String())
	}
}

func TestResultCodecRejectsFullResults(t *testing.T) {
	res, err := Run(context.Background(), &Study{
		Name: "codec-full", Apps: []string{"TVAnts"}, Seeds: []int64{1},
		Duration: Duration(10 * time.Second), PeerFactor: 0.05,
	}, WithFullResults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	err = EncodeResult(&bytes.Buffer{}, res)
	if err == nil || !strings.Contains(err.Error(), "full experiment results") {
		t.Fatalf("EncodeResult accepted full results: %v", err)
	}
}

func TestResultCodecRejectsTamperedGrid(t *testing.T) {
	res, err := Run(context.Background(), tinyStudy())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, res); err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	for _, tamper := range []struct{ name, from, to string }{
		{"cell seed", `"Seed": 2`, `"Seed": 9`},
		{"unknown field", `"seeds"`, `"seedz"`},
	} {
		mangled := strings.Replace(buf.String(), tamper.from, tamper.to, 1)
		if mangled == buf.String() {
			t.Fatalf("tamper %q found nothing to replace", tamper.name)
		}
		if _, err := DecodeResultBytes([]byte(mangled)); err == nil {
			t.Errorf("tampered result (%s) accepted", tamper.name)
		}
	}
}

func TestStudyAndCellDigests(t *testing.T) {
	st := tinyStudy()
	d1, err := st.Digest()
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	d2, _ := st.Digest()
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest unstable or malformed: %q vs %q", d1, d2)
	}
	other := tinyStudy()
	other.Duration = Duration(16 * time.Second)
	dOther, _ := other.Digest()
	if dOther == d1 {
		t.Fatal("different studies share a digest")
	}
	infos, err := st.RunInfos()
	if err != nil {
		t.Fatalf("RunInfos: %v", err)
	}
	seen := map[string]bool{}
	for _, info := range infos {
		cd := CellDigest(d1, info)
		if len(cd) != 64 || seen[cd] {
			t.Fatalf("cell digest malformed or duplicated: %q", cd)
		}
		seen[cd] = true
		// Worker attribution must never shift a cell's identity.
		attributed := info
		attributed.Worker = "host-1234"
		if CellDigest(d1, attributed) != cd {
			t.Fatal("worker attribution changed a cell digest")
		}
		if CellDigest(dOther, info) == cd {
			t.Fatal("cell digest ignores the study digest")
		}
	}
	// A study with a programmatic Mutate has no canonical encoding, so it
	// has no digest either — distributing it must fail loudly.
	mutated := tinyStudy()
	mutated.Variants = []Variant{{Name: "m", Mutate: func(*overlay.Profile) {}}}
	if _, err := mutated.Digest(); err == nil {
		t.Error("Digest accepted a programmatic Mutate variant")
	}
}

func TestRunCellMatchesRunAndNewResultAssembles(t *testing.T) {
	st := tinyStudy()
	res, err := Run(context.Background(), st)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sums := make([]experiment.Summary, len(res.Cells))
	done := make([]bool, len(res.Cells))
	for i := range res.Cells {
		sum, err := RunCell(context.Background(), st, i, nil)
		if err != nil {
			t.Fatalf("RunCell(%d): %v", i, err)
		}
		if !reflect.DeepEqual(sum, res.Cells[i].Summary) {
			t.Fatalf("RunCell(%d) diverges from Run's summary", i)
		}
		sums[i], done[i] = sum, true
	}
	asm, err := NewResult(st, sums, done)
	if err != nil {
		t.Fatalf("NewResult: %v", err)
	}
	var want, got bytes.Buffer
	if err := res.ComparisonTable().Render(&want); err != nil {
		t.Fatal(err)
	}
	if err := asm.ComparisonTable().Render(&got); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("assembled result renders a different table:\n%s\nvs\n%s", want.String(), got.String())
	}
	if _, err := RunCell(context.Background(), st, len(res.Cells), nil); err == nil {
		t.Error("out-of-range cell index accepted")
	}
	if _, err := NewResult(st, sums[:1], done[:1]); err == nil {
		t.Error("short summary slice accepted")
	}
}
