package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"napawine/internal/scenario"
)

// This file is the study file codec, the same contract the scenario codec
// gives workload timelines: a strict JSON schema over Study in which every
// axis value travels by name, unknown fields are loud errors, and every
// registered study round-trips through Encode/Decode unchanged. Durations
// travel in time.Duration notation ("5m"), never raw nanoseconds; a
// scenario-axis entry is either a registered name or an object carrying an
// inline timeline in the scenario file schema.
//
// Example:
//
//	{
//	  "name": "strategy-comparison",
//	  "apps": ["PPLive", "SopCast", "TVAnts"],
//	  "strategies": ["urgent-random", "latest-useful", "rarest", "deadline"],
//	  "trials": 3,
//	  "duration": "2m"
//	}

// scenarioJSON is the object form of a scenario-axis entry.
type scenarioJSON struct {
	Name string         `json:"name,omitempty"`
	Spec *scenario.Spec `json:"spec,omitempty"`
}

// MarshalJSON encodes a name-only cell as a bare string and an inline-spec
// cell as an object carrying only the spec (the inline spec's own name is
// the cell's identity; a separate Name would be dead weight the decoder
// rejects as ambiguous), so the common case stays one readable token.
func (s Scenario) MarshalJSON() ([]byte, error) {
	if s.Spec == nil {
		return json.Marshal(s.Name)
	}
	return json.Marshal(scenarioJSON{Spec: s.Spec})
}

// UnmarshalJSON accepts both forms, strictly: a bare registered name, or an
// object carrying an inline spec and nothing else. Inline specs inherit the
// scenario codec's strictness (named kinds, unknown fields rejected). An
// object naming a registered scenario *and* carrying a spec is ambiguous —
// the run would silently follow the spec while the file appears to select
// the name — and is rejected.
func (s *Scenario) UnmarshalJSON(b []byte) error {
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return fmt.Errorf("study: bad scenario entry %s", b)
		}
		*s = Scenario{Name: name}
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var obj scenarioJSON
	if err := dec.Decode(&obj); err != nil {
		return fmt.Errorf("study: bad scenario entry: %w", err)
	}
	if obj.Name == "" && obj.Spec == nil {
		return fmt.Errorf("study: scenario entry without a name or spec")
	}
	if obj.Name != "" && obj.Spec != nil {
		return fmt.Errorf("study: scenario entry %q names a registered scenario and carries an inline spec; use one or the other", obj.Name)
	}
	*s = Scenario{Name: obj.Name, Spec: obj.Spec}
	return nil
}

// Encode writes the study as indented JSON. A study carrying a programmatic
// variant mutation cannot be represented in a file and is rejected loudly —
// silently dropping the mutation would encode a different study than the
// one being run.
func Encode(w io.Writer, st *Study) error {
	if st == nil {
		return fmt.Errorf("study: encode nil study")
	}
	for _, v := range st.Variants {
		if v.Mutate != nil {
			return fmt.Errorf("study: encode %s: variant %q carries a programmatic Mutate and cannot be written to a file",
				st.Name, v.Name)
		}
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("study: encode %s: %w", st.Name, err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("study: encode %s: %w", st.Name, err)
	}
	return nil
}

// Decode parses one JSON study and validates it. Unknown fields, unknown
// axis values and malformed durations are all errors — a file study must
// fail loudly at load time, never silently run a different grid.
func Decode(r io.Reader) (*Study, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var st Study
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("study: decode: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("study: decode: trailing data after study object")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

// DecodeBytes is Decode over an in-memory study.
func DecodeBytes(b []byte) (*Study, error) { return Decode(bytes.NewReader(b)) }

// LoadFile reads and decodes one study file.
func LoadFile(path string) (*Study, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("study: %w", err)
	}
	st, err := DecodeBytes(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}
