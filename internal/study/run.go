package study

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"napawine/internal/experiment"
	"napawine/internal/runner"
)

// RunInfo identifies one grid cell to an Observer: its position in the
// battery and its axis coordinates.
type RunInfo struct {
	// Index is the cell's 0-based position in grid order; Total is the
	// grid size.
	Index, Total int

	App        string
	Strategy   string // "" = the profile's own
	Scenario   string // "" = stationary
	Variant    string // "" = stock profile
	QueueDepth int    // 0 = unbounded uplink queues (congestion off)
	Seed       int64

	// Worker attributes the cell's execution in a distributed run: the
	// fleet worker that leased it, or "spool" for a cell restored from a
	// checkpoint. Empty for local (in-process) execution. Attribution
	// only — Worker never participates in cell identity, labels or
	// digests, so a cell is the same cell whoever computes it.
	Worker string
}

// info is the one place a cell becomes a RunInfo, so Run's callbacks and
// RunInfos' pre-enumeration can never disagree about a cell's identity.
func (c cell) info(total int) RunInfo {
	return RunInfo{
		Index: c.index, Total: total,
		App: c.app, Strategy: c.strategy, Scenario: c.scnLabel,
		Variant: c.varName, QueueDepth: c.depth, Seed: c.seed,
	}
}

// RunInfos enumerates the study's grid in execution order without running
// anything — the same RunInfo values, Index and Total included, that Run
// will later hand to observers. Dashboards use it to pre-populate a
// pending-cell grid before the first OnRunStart fires.
func (st *Study) RunInfos() ([]RunInfo, error) {
	cells, err := st.resolveGrid()
	if err != nil {
		return nil, err
	}
	infos := make([]RunInfo, len(cells))
	for i, c := range cells {
		infos[i] = c.info(len(cells))
	}
	return infos, nil
}

// Label renders the cell's non-default coordinates for progress lines.
func (r RunInfo) Label() string {
	s := r.App
	if r.Variant != "" {
		s += "/" + r.Variant
	}
	if r.Strategy != "" {
		s += " " + r.Strategy
	}
	if r.Scenario != "" {
		s += " @" + r.Scenario
	}
	if r.QueueDepth > 0 {
		s += " " + congestionLabel(r.QueueDepth)
	}
	return fmt.Sprintf("%s seed %d", s, r.Seed)
}

// Observer receives execution progress. Cells run on parallel workers, so
// callbacks fire concurrently; implementations must be safe for concurrent
// use and must not block (they run on the simulation goroutines).
type Observer interface {
	// OnRunStart fires as a worker picks the cell up. Cells skipped by
	// cancellation never start.
	OnRunStart(RunInfo)
	// OnRunDone fires when the cell finishes: with its summary, or with
	// the error that stopped it (ctx.Err() for cancelled cells).
	OnRunDone(RunInfo, experiment.Summary, error)
	// OnSample streams each time-series bucket of a scenario cell as the
	// run records it.
	OnSample(RunInfo, experiment.SeriesSample)
}

// options collects Run's functional options.
type options struct {
	workers   int
	observers []Observer
	keepFull  bool
}

// Option configures Run.
type Option func(*options)

// WithWorkers bounds parallel cells (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithObserver streams progress and time-series buckets to obs. Repeated
// options accumulate: every observer sees every callback, in the order the
// options were given, so a CLI progress printer and a dashboard can watch
// the same study without knowing about each other. A nil obs is ignored.
func WithObserver(obs Observer) Option {
	return func(o *options) {
		if obs != nil {
			o.observers = append(o.observers, obs)
		}
	}
}

// fanout composes the registered observers into one. Each delivery is
// panic-isolated per observer: a misbehaving dashboard callback must never
// take down the study (or starve the observers registered after it), so a
// panic is swallowed and that observer simply misses the event.
type fanout []Observer

func (f fanout) each(call func(Observer)) {
	for _, obs := range f {
		func() {
			defer func() { _ = recover() }()
			call(obs)
		}()
	}
}

func (f fanout) OnRunStart(info RunInfo) {
	f.each(func(o Observer) { o.OnRunStart(info) })
}

func (f fanout) OnRunDone(info RunInfo, sum experiment.Summary, err error) {
	f.each(func(o Observer) { o.OnRunDone(info, sum, err) })
}

func (f fanout) OnSample(info RunInfo, s experiment.SeriesSample) {
	f.each(func(o Observer) { o.OnSample(info, s) })
}

// WithFullResults retains every cell's full experiment.Result (Result.Full)
// instead of only its bounded summary. Memory then grows with the grid, not
// the worker count — this exists for the single-battery adapter
// (napawine.RunAll), whose callers need observations and figures.
func WithFullResults() Option { return func(o *options) { o.keepFull = true } }

// Cell is one executed grid point of a Result.
type Cell struct {
	// Index is the cell's position in grid order.
	Index int

	App        string
	Strategy   string // "" = the profile's own
	Scenario   string // "" = stationary
	Variant    string // "" = stock profile
	QueueDepth int    // 0 = unbounded uplink queues (congestion off)
	Seed       int64

	// Done reports whether the cell actually ran; cancellation leaves
	// trailing cells un-run with a zero Summary.
	Done    bool
	Summary experiment.Summary
}

// Coord reads the cell's coordinate along one axis, as rendered in tables
// (seed as digits, empty coordinates as "default"/"stationary"/"stock",
// queue depth 0 as "off").
func (c Cell) Coord(ax Axis) string {
	return cell{app: c.App, strategy: c.Strategy, scnLabel: c.Scenario,
		varName: c.Variant, depth: c.QueueDepth, seed: c.Seed}.coord(ax)
}

// Result is everything a study run produces: one Cell per grid point, in
// grid order.
type Result struct {
	Study *Study
	Seeds []int64
	Cells []Cell

	// Full holds each cell's complete experiment Result, parallel to
	// Cells, only under WithFullResults (nil slots for un-run cells).
	Full []*experiment.Result
}

// Trials reports the number of seeds per grid point.
func (r *Result) Trials() int { return len(r.Seeds) }

// errCellSkipped marks cells never started because an earlier cell failed.
var errCellSkipped = errors.New("study: cell skipped after an earlier failure")

// Run executes the study: every grid cell is one independent experiment
// dispatched through runner.ParallelCtx and reduced to its summary inside
// the worker, so memory stays bounded by the worker count (unless
// WithFullResults asks otherwise).
//
// Cancellation: when ctx is done, in-flight cells halt promptly
// (experiment.RunCtx polls the context on the engine clock), unstarted
// cells never run, and Run returns the partial Result — completed cells
// have Done set and well-formed summaries — alongside ctx.Err().
//
// Any other cell error fails the study: no further cells start (cells
// already in flight run to completion), and Run returns the first error in
// grid order with a nil Result.
func Run(ctx context.Context, st *Study, opts ...Option) (*Result, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	cells, err := st.resolveGrid()
	if err != nil {
		return nil, err
	}
	var observer Observer
	if len(o.observers) > 0 {
		observer = fanout(o.observers)
	}

	type out struct {
		sum  experiment.Summary
		full *experiment.Result
		done bool
	}
	total := len(cells)
	// failed gates cell dispatch; firstErr records the lowest-grid-index
	// real failure under its own lock, because concurrent workers can
	// observe the flag in any order relative to their own dequeue — an
	// in-flight low-index cell may return the skip sentinel after a
	// high-index cell stored the flag, so the runner's first-error-by-index
	// cannot be trusted to be a real one.
	var failed atomic.Bool
	var failMu sync.Mutex
	failIdx, firstErr := -1, error(nil)
	outs, err := runner.ParallelCtx(ctx, cells, o.workers, func(ctx context.Context, c cell) (out, error) {
		if failed.Load() {
			return out{}, errCellSkipped
		}
		info := c.info(total)
		if observer != nil {
			observer.OnRunStart(info)
		}
		cfg, err := c.config(st)
		if err == nil {
			if observer != nil && c.scn != nil {
				obs := observer
				cfg.OnSample = func(s experiment.SeriesSample) { obs.OnSample(info, s) }
			}
			var r *experiment.Result
			if r, err = experiment.RunCtx(ctx, cfg); err == nil {
				sum := experiment.Summarize(r)
				if observer != nil {
					observer.OnRunDone(info, sum, nil)
				}
				res := out{sum: sum, done: true}
				if o.keepFull {
					res.full = r
				}
				return res, nil
			}
		}
		failed.Store(true)
		wrapped := fmt.Errorf("%s: %w", info.Label(), err)
		failMu.Lock()
		if failIdx == -1 || c.index < failIdx {
			failIdx, firstErr = c.index, wrapped
		}
		failMu.Unlock()
		if observer != nil {
			observer.OnRunDone(info, experiment.Summary{}, err)
		}
		return out{}, wrapped
	})

	res := &Result{Study: st, Seeds: st.SeedList(), Cells: make([]Cell, len(cells))}
	if o.keepFull {
		res.Full = make([]*experiment.Result, len(cells))
	}
	for i, c := range cells {
		res.Cells[i] = Cell{
			Index: c.index,
			App:   c.app, Strategy: c.strategy, Scenario: c.scnLabel,
			Variant: c.varName, QueueDepth: c.depth, Seed: c.seed,
			Done: outs[i].done, Summary: outs[i].sum,
		}
		if o.keepFull {
			res.Full[i] = outs[i].full
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation: the partial result is well-formed and useful.
			return res, ctx.Err()
		}
		// Prefer the tracked first real failure over the runner's
		// first-by-index error, which may be a skip sentinel (see above).
		if firstErr != nil {
			return nil, fmt.Errorf("study %s: %w", st.Name, firstErr)
		}
		return nil, fmt.Errorf("study %s: %w", st.Name, err)
	}
	return res, nil
}
