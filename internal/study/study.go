// Package study is the declarative execution layer above the experiment
// engine: a Study names a grid — applications × chunk-scheduling strategies
// × workload scenarios × profile variants × seeds — and Run replays one
// experiment per grid cell, reducing each to a bounded summary and pivoting
// the lot into comparison tables.
//
// The paper's deliverable is comparative (the same swarm read side-by-side
// across applications and conditions, Tables II–IV), and simulation
// harnesses in the same literature (PSim/SSSim, Gallo et al.) treat an
// experiment campaign as a first-class declarative object for exactly that
// reason. A Study is that object here: strict JSON codec (mirroring the
// scenario codec — unknown fields are loud errors, registered studies
// round-trip), context cancellation, an Observer for progress and
// per-bucket time-series streaming, and axis pivots over the results. The
// single-battery (napawine.RunAll) and replicated-sweep (sweep.Run) entry
// points compile into one-cell/one-axis studies, so every execution path
// above the engine is this one.
package study

import (
	"fmt"
	"strconv"
	"time"

	"napawine/internal/access"
	"napawine/internal/apps"
	"napawine/internal/experiment"
	"napawine/internal/overlay"
	"napawine/internal/policy"
	"napawine/internal/runner"
	"napawine/internal/scenario"
)

// Duration is a time.Duration that travels through the JSON codec as a
// human-readable string ("5m", "90s"), never as raw nanoseconds.
type Duration time.Duration

// MarshalText encodes the duration in time.Duration notation.
func (d Duration) MarshalText() ([]byte, error) {
	return []byte(time.Duration(d).String()), nil
}

// UnmarshalText decodes time.Duration notation; a bare number is an error.
func (d *Duration) UnmarshalText(b []byte) error {
	parsed, err := time.ParseDuration(string(b))
	if err != nil {
		return fmt.Errorf("study: bad duration %q (want e.g. \"5m\", \"90s\")", b)
	}
	if parsed < 0 {
		return fmt.Errorf("study: negative duration %q", b)
	}
	*d = Duration(parsed)
	return nil
}

// Scenario is one cell of the scenario axis: a registered scenario by name,
// an inline workload timeline, or the zero value for the stationary
// condition (no scenario, no time series). In a JSON study the axis entry
// is either a bare name string ("flashcrowd") or an object carrying an
// inline spec ({"spec": {...}}); see the codec.
type Scenario struct {
	// Name selects a registered scenario ("" = stationary).
	Name string
	// Spec, when non-nil, is the timeline itself (e.g. a file-authored
	// spec) and takes precedence over Name.
	Spec *scenario.Spec
}

// Label names the cell for tables and progress lines.
func (s Scenario) Label() string {
	if s.Spec != nil {
		return s.Spec.Name
	}
	return s.Name
}

// resolve returns the spec this cell runs (nil = stationary), validating it.
func (s Scenario) resolve() (*scenario.Spec, error) {
	if s.Spec != nil {
		if err := s.Spec.Validate(); err != nil {
			return nil, err
		}
		return s.Spec, nil
	}
	if s.Name == "" {
		return nil, nil
	}
	return scenario.ByName(s.Name)
}

// Variant is one cell of the profile-variant axis. The zero Variant is the
// stock profile.
type Variant struct {
	// Name suffixes the application label in tables ("TVAnts/blind").
	Name string `json:"name,omitempty"`
	// Blind replaces the profile's discovery weight with the uniform
	// (location- and bandwidth-blind) weight — the paper's classic
	// ablation, and the one knob a file-authored study can turn.
	Blind bool `json:"blind,omitempty"`
	// Mutate applies arbitrary profile changes (programmatic studies
	// only). A study carrying a Mutate cannot be encoded to JSON: the
	// codec rejects it rather than silently dropping the mutation.
	Mutate func(*overlay.Profile) `json:"-"`
}

// Study is a declarative experiment grid. Empty axes select defaults: the
// paper's three applications, the profile's own strategy, the stationary
// condition, the stock profile, one seed. Every listed axis value is
// validated up front — a typo'd strategy fails before any CPU burns.
type Study struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Apps lists the applications (empty = the paper's three).
	Apps []string `json:"apps,omitempty"`
	// Strategies lists chunk-scheduling strategies by registered name;
	// "" means each profile's own. Empty = [""].
	Strategies []string `json:"strategies,omitempty"`
	// Scenarios lists workload-timeline cells. Empty = the stationary
	// condition.
	Scenarios []Scenario `json:"scenarios,omitempty"`
	// Variants lists profile-variant cells. Empty = the stock profile.
	Variants []Variant `json:"variants,omitempty"`

	// Seeds lists the trial seeds; empty selects Trials sequential seeds
	// starting at BaseSeed (or 1 when BaseSeed is 0). A 0 seed keeps the
	// application's calibrated default.
	Seeds    []int64 `json:"seeds,omitempty"`
	BaseSeed int64   `json:"base_seed,omitempty"`
	Trials   int     `json:"trials,omitempty"`

	// Duration is the virtual run length per cell (0 = per-app default).
	Duration Duration `json:"duration,omitempty"`
	// PeerFactor scales each application's default background population
	// (0 = 1.0, floor of 50 peers), exactly like napawine.Scale.
	PeerFactor float64 `json:"peer_factor,omitempty"`
	// Peers pins the background population to an absolute count instead
	// of scaling the per-app default; 0 leaves the default (or the
	// PeerFactor scaling). Setting both is rejected — two sizings for one
	// world would silently run whichever won.
	Peers int `json:"peers,omitempty"`
	// QueueDepths lists the congestion axis: uplink queue depths to cross
	// with the other axes, 0 meaning the unbounded (congestion-off)
	// default. QueueDepth pins a single depth for the whole study instead;
	// setting both is rejected. LossMode selects the loss discipline for
	// bounded cells ("" = tail-drop).
	QueueDepths []int  `json:"queue_depths,omitempty"`
	QueueDepth  int    `json:"queue_depth,omitempty"`
	LossMode    string `json:"loss_mode,omitempty"`

	// LeanLedger forces the O(1)-memory ledger regardless of world size
	// (it switches on automatically at experiment.LeanLedgerAutoPeers).
	LeanLedger bool `json:"lean_ledger,omitempty"`
	// Shards splits every cell's swarm across that many parallel shard
	// engines (experiment.Config.Shards). 0 or 1 is the serial engine;
	// results at N > 1 are deterministic per N but differ from serial the
	// way a different seed's would. Combine with Workers thoughtfully:
	// each in-flight cell runs Shards goroutines.
	Shards int `json:"shards,omitempty"`

	// Metrics names the comparison table's columns by registered metric
	// key (empty = the continuity / source load / diffusion delay
	// default). See study.Metrics for the registry.
	Metrics []string `json:"metrics,omitempty"`
}

// AppList resolves the application axis.
func (st *Study) AppList() []string {
	if len(st.Apps) > 0 {
		return st.Apps
	}
	return []string{"PPLive", "SopCast", "TVAnts"}
}

// StrategyList resolves the strategy axis.
func (st *Study) StrategyList() []string {
	if len(st.Strategies) > 0 {
		return st.Strategies
	}
	return []string{""}
}

// ScenarioList resolves the scenario axis.
func (st *Study) ScenarioList() []Scenario {
	if len(st.Scenarios) > 0 {
		return st.Scenarios
	}
	return []Scenario{{}}
}

// VariantList resolves the variant axis.
func (st *Study) VariantList() []Variant {
	if len(st.Variants) > 0 {
		return st.Variants
	}
	return []Variant{{}}
}

// QueueDepthList resolves the congestion axis: the listed depths, a pinned
// single depth, or the unbounded default.
func (st *Study) QueueDepthList() []int {
	if len(st.QueueDepths) > 0 {
		return st.QueueDepths
	}
	return []int{st.QueueDepth}
}

// SeedList resolves the seed axis (sweep.Spec shares this convention).
func (st *Study) SeedList() []int64 {
	if len(st.Seeds) > 0 {
		return st.Seeds
	}
	base := st.BaseSeed
	if base == 0 {
		base = 1
	}
	n := st.Trials
	if n <= 0 {
		n = 1
	}
	return runner.Seeds(base, n)
}

// Runs reports the grid size: one experiment per cell.
func (st *Study) Runs() int {
	return len(st.AppList()) * len(st.StrategyList()) * len(st.ScenarioList()) *
		len(st.VariantList()) * len(st.QueueDepthList()) * len(st.SeedList())
}

// Validate checks every axis value against its registry and rejects
// duplicate cells; it is the same fail-fast contract the scenario codec
// gives file-authored timelines.
func (st *Study) Validate() error {
	if st.Name == "" {
		return fmt.Errorf("study: study without a name")
	}
	if st.PeerFactor < 0 {
		return fmt.Errorf("study %s: negative peer factor %v", st.Name, st.PeerFactor)
	}
	if st.Peers < 0 {
		return fmt.Errorf("study %s: negative peers %d", st.Name, st.Peers)
	}
	if st.Peers > 0 && st.PeerFactor > 0 {
		return fmt.Errorf("study %s: peers and peer_factor are mutually exclusive", st.Name)
	}
	if st.Trials < 0 {
		return fmt.Errorf("study %s: negative trials %d", st.Name, st.Trials)
	}
	if st.Shards < 0 {
		return fmt.Errorf("study %s: negative shards %d", st.Name, st.Shards)
	}
	// Like seeds vs trials, a pinned depth and a depth axis are two
	// authorings of one dimension: reject the ambiguity.
	if st.QueueDepth != 0 && len(st.QueueDepths) > 0 {
		return fmt.Errorf("study %s: queue_depth and queue_depths are mutually exclusive", st.Name)
	}
	bounded := false
	seenDepth := map[int]bool{}
	for _, depth := range st.QueueDepthList() {
		if seenDepth[depth] {
			return fmt.Errorf("study %s: duplicate queue depth %d", st.Name, depth)
		}
		seenDepth[depth] = true
		if depth > 0 {
			bounded = true
		}
		m := access.CongestionModel{QueueDepth: depth}
		if depth > 0 {
			m.LossMode = st.LossMode
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("study %s: %w", st.Name, err)
		}
	}
	if st.LossMode != "" && !bounded {
		return fmt.Errorf("study %s: loss_mode %q without a bounded queue depth", st.Name, st.LossMode)
	}
	seenApp := map[string]bool{}
	for _, app := range st.AppList() {
		if _, err := apps.ByName(app); err != nil {
			return fmt.Errorf("study %s: %w", st.Name, err)
		}
		if seenApp[app] {
			return fmt.Errorf("study %s: duplicate app %q", st.Name, app)
		}
		seenApp[app] = true
	}
	seenStrat := map[string]bool{}
	for _, strat := range st.StrategyList() {
		if _, err := policy.StrategyByName(strat); err != nil {
			return fmt.Errorf("study %s: %w", st.Name, err)
		}
		if seenStrat[strat] {
			return fmt.Errorf("study %s: duplicate strategy %q", st.Name, strat)
		}
		seenStrat[strat] = true
	}
	// Scenario and variant cells deduplicate on their *rendered* labels,
	// not raw names: the zero scenario renders as "stationary" and the
	// zero variant as "stock", so an inline spec or variant literally
	// named that would silently merge with the default cell in every
	// pivot. Reject the collision loudly instead.
	seenScn := map[string]bool{}
	for i, scn := range st.ScenarioList() {
		if _, err := scn.resolve(); err != nil {
			return fmt.Errorf("study %s: scenario %d: %w", st.Name, i, err)
		}
		label := scenarioLabel(scn.Label())
		if seenScn[label] {
			return fmt.Errorf("study %s: duplicate scenario %q", st.Name, label)
		}
		seenScn[label] = true
	}
	seenVar := map[string]bool{}
	for _, vr := range st.VariantList() {
		label := variantLabel(vr.Name)
		if seenVar[label] {
			return fmt.Errorf("study %s: duplicate variant %q", st.Name, label)
		}
		seenVar[label] = true
	}
	// An explicit seed list and a generated one (Trials/BaseSeed) are two
	// different ways to author the same axis; a study carrying both would
	// silently run whichever SeedList prefers — the fail-loudly contract
	// says reject it instead.
	if len(st.Seeds) > 0 && (st.Trials != 0 || st.BaseSeed != 0) {
		return fmt.Errorf("study %s: seeds and trials/base_seed are mutually exclusive", st.Name)
	}
	seenSeed := map[int64]bool{}
	for _, seed := range st.SeedList() {
		// Seed 0 keeps the calibrated default, which is seed 1 — so 0 and
		// 1 in one list would run the same trial twice and aggregate the
		// duplicate as an independent replication.
		key := seed
		if key == 0 {
			key = 1
		}
		if seenSeed[key] {
			return fmt.Errorf("study %s: duplicate seed %d (0 selects the calibrated default, seed 1)", st.Name, seed)
		}
		seenSeed[key] = true
	}
	for _, key := range st.Metrics {
		if _, err := MetricByKey(key); err != nil {
			return fmt.Errorf("study %s: %w", st.Name, err)
		}
	}
	return nil
}

// Axis names one grid dimension for pivots and coordinate lookups.
type Axis string

// The six grid axes.
const (
	AxisApp        Axis = "app"
	AxisStrategy   Axis = "strategy"
	AxisScenario   Axis = "scenario"
	AxisVariant    Axis = "variant"
	AxisCongestion Axis = "congestion"
	AxisSeed       Axis = "seed"
)

// Axes lists the grid axes in nesting order (outermost first), which is
// also cell order in a Result.
func Axes() []Axis {
	return []Axis{AxisApp, AxisStrategy, AxisScenario, AxisVariant, AxisCongestion, AxisSeed}
}

// cell is one resolved grid point, ready to configure an experiment.
type cell struct {
	index    int
	app      string
	strategy string
	scnLabel string
	varName  string
	depth    int
	seed     int64

	scn     *scenario.Spec // resolved; nil = stationary
	variant Variant
}

// resolveGrid validates the study and expands it into cells in axis nesting
// order: app (outermost) → strategy → scenario → variant → congestion →
// seed. Scenario specs are resolved once and shared across cells;
// experiment.Run clones its spec on entry, so the sharing can never leak
// between parallel runs or back into the caller.
func (st *Study) resolveGrid() ([]cell, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	scns := st.ScenarioList()
	specs := make([]*scenario.Spec, len(scns))
	for i, s := range scns {
		spec, err := s.resolve()
		if err != nil {
			// Unreachable after Validate; kept so resolution can never
			// silently run a different grid than the one validated.
			return nil, fmt.Errorf("study %s: scenario %d: %w", st.Name, i, err)
		}
		specs[i] = spec
	}
	cells := make([]cell, 0, st.Runs())
	for _, app := range st.AppList() {
		for _, strat := range st.StrategyList() {
			for i, scn := range scns {
				for _, vr := range st.VariantList() {
					for _, depth := range st.QueueDepthList() {
						for _, seed := range st.SeedList() {
							cells = append(cells, cell{
								index:    len(cells),
								app:      app,
								strategy: strat,
								scnLabel: scn.Label(),
								varName:  vr.Name,
								depth:    depth,
								seed:     seed,
								scn:      specs[i],
								variant:  vr,
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// config builds the cell's experiment configuration — the same knob-for-knob
// construction napawine.RunAll and sweep.Run used before they became
// adapters, so adapted batteries reproduce their pre-study output
// byte-for-byte (the golden-digest tests pin this).
func (c cell) config(st *Study) (experiment.Config, error) {
	cfg := experiment.Default(c.app)
	if c.seed != 0 {
		cfg.Seed = c.seed
		cfg.World.Seed = c.seed
	}
	if st.Duration > 0 {
		cfg.Duration = time.Duration(st.Duration)
	}
	if st.Peers > 0 {
		cfg.World.Peers = st.Peers
	} else {
		cfg.ScalePeers(st.PeerFactor)
	}
	cfg.LeanLedger = st.LeanLedger
	cfg.Shards = st.Shards
	cfg.Scenario = c.scn
	cfg.Strategy = c.strategy
	if c.depth > 0 {
		cfg.Congestion = access.CongestionModel{QueueDepth: c.depth, LossMode: st.LossMode}
	}
	if c.variant.Blind || c.variant.Mutate != nil {
		base, err := apps.ByName(c.app)
		if err != nil {
			return cfg, err
		}
		blind := c.variant.Blind
		mutate := c.variant.Mutate
		cfg.Profile = apps.Variant(base, c.variant.Name, func(p *overlay.Profile) {
			if blind {
				p.DiscoveryWeight = policy.Uniform{}
			}
			if mutate != nil {
				mutate(p)
			}
		})
	}
	return cfg, nil
}

// coord reads one cell coordinate by axis, as rendered in tables.
func (c cell) coord(ax Axis) string {
	switch ax {
	case AxisApp:
		return c.app
	case AxisStrategy:
		return strategyLabel(c.strategy)
	case AxisScenario:
		return scenarioLabel(c.scnLabel)
	case AxisVariant:
		return variantLabel(c.varName)
	case AxisCongestion:
		return congestionLabel(c.depth)
	case AxisSeed:
		return strconv.FormatInt(c.seed, 10)
	}
	return ""
}

// congestionLabel renders the congestion coordinate; depth 0 is the
// unbounded (congestion-off) default.
func congestionLabel(depth int) string {
	if depth <= 0 {
		return "off"
	}
	return "q=" + strconv.Itoa(depth)
}

// strategyLabel renders the strategy coordinate; "" is each profile's own
// strategy.
func strategyLabel(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

// scenarioLabel renders the scenario coordinate; "" is the stationary
// condition.
func scenarioLabel(s string) string {
	if s == "" {
		return "stationary"
	}
	return s
}

// variantLabel renders the variant coordinate; "" is the stock profile.
func variantLabel(s string) string {
	if s == "" {
		return "stock"
	}
	return s
}
