package study

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/scenario"
)

// scenarioSpecEmptyArrivals validates but cannot compile: its arrivals
// window has no deferred pool to draw from (the study sets no
// ExtraPeerFactor), so every cell fails at run time, not validate time.
var scenarioSpecEmptyArrivals = scenario.Spec{
	Name:   "doomed",
	Events: []scenario.Event{{Kind: scenario.Arrivals, From: 0.1, To: 0.2}},
}

// miniStudy is a small but non-trivial grid: 1 app × 2 strategies × 2
// seeds at miniature scale, cheap enough to run repeatedly.
func miniStudy() *Study {
	return &Study{
		Name:        "mini",
		Description: "test grid",
		Apps:        []string{"TVAnts"},
		Strategies:  []string{"urgent-random", "rarest"},
		Seeds:       []int64{3, 4},
		Duration:    Duration(20 * time.Second),
		PeerFactor:  0.05,
	}
}

func renderStudy(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	if err := res.ComparisonTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.PivotTable(Metrics()[0], AxisStrategy, AxisSeed).Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunDeterministicAcrossWorkers: the same study renders byte-identical
// tables no matter how its cells are spread over workers — the study layer
// inherits the engine's determinism contract.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		res, err := Run(context.Background(), miniStudy(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return renderStudy(t, res)
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Errorf("worker count changed study output:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
	for _, want := range []string{"urgent-random", "rarest", "Continuity", "Source kbps", "Diffusion s"} {
		if !strings.Contains(serial, want) {
			t.Errorf("comparison table missing %q:\n%s", want, serial)
		}
	}
}

// TestRunCellsCarryCoordinates: every grid cell comes back Done with its
// axis coordinates and a well-formed summary.
func TestRunCellsCarryCoordinates(t *testing.T) {
	res, err := Run(context.Background(), miniStudy(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	if res.Trials() != 2 {
		t.Errorf("Trials = %d, want 2", res.Trials())
	}
	for i, c := range res.Cells {
		if !c.Done {
			t.Errorf("cell %d not done", i)
		}
		if c.Index != i || c.App != "TVAnts" {
			t.Errorf("cell %d coords wrong: %+v", i, c)
		}
		if c.Summary.Events == 0 || c.Summary.MeanContinuity == 0 {
			t.Errorf("cell %d summary malformed: %+v", i, c.Summary)
		}
		if c.Summary.SourceKbps <= 0 || c.Summary.DiffusionChunks == 0 {
			t.Errorf("cell %d missing comparison metrics: source %.1f kbps, %d diffusion chunks",
				i, c.Summary.SourceKbps, c.Summary.DiffusionChunks)
		}
	}
	if res.Full != nil {
		t.Error("full results retained without WithFullResults")
	}
}

// TestRunFullResults: WithFullResults retains the complete per-cell Result.
func TestRunFullResults(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Seeds = []int64{3}
	res, err := Run(context.Background(), st, WithFullResults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Full) != 1 || res.Full[0] == nil {
		t.Fatalf("Full = %v", res.Full)
	}
	if res.Full[0].App != "TVAnts" || len(res.Full[0].Observations) == 0 {
		t.Errorf("full result malformed: %+v", res.Full[0].App)
	}
}

// countingObserver records callbacks under a lock and can cancel the run
// after the first completed cell.
type countingObserver struct {
	mu       sync.Mutex
	starts   int
	dones    int
	errs     int
	samples  int
	cancelAt int // cancel after this many OnRunDone calls (0 = never)
	cancel   context.CancelFunc
}

func (o *countingObserver) OnRunStart(RunInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.starts++
}

func (o *countingObserver) OnRunDone(_ RunInfo, _ experiment.Summary, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dones++
	if err != nil {
		o.errs++
	}
	if o.cancelAt > 0 && o.dones >= o.cancelAt && o.cancel != nil {
		o.cancel()
	}
}

func (o *countingObserver) OnSample(_ RunInfo, _ experiment.SeriesSample) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.samples++
}

// TestObserverStreamsRunsAndSeries: every cell reports start and done, and
// scenario cells stream their per-bucket samples live.
func TestObserverStreamsRunsAndSeries(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Scenarios = []Scenario{{Name: "flashcrowd"}}
	obs := &countingObserver{}
	res, err := Run(context.Background(), st, WithObserver(obs), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.starts != 2 || obs.dones != 2 || obs.errs != 0 {
		t.Errorf("observer saw %d starts, %d dones, %d errors; want 2, 2, 0",
			obs.starts, obs.dones, obs.errs)
	}
	if obs.samples == 0 {
		t.Error("observer streamed no time-series samples for a scenario study")
	}
	// The streamed samples are the same ones the summaries retain.
	total := 0
	for _, c := range res.Cells {
		total += len(c.Summary.Series)
	}
	if obs.samples != total {
		t.Errorf("streamed %d samples, summaries retain %d", obs.samples, total)
	}
}

// TestMultiObserverFanout pins the multi-observer contract: repeated
// WithObserver options accumulate, every observer sees every callback in
// registration order, a panicking observer is isolated (the study and the
// observers after it are unharmed), and nil observers are ignored.
func TestMultiObserverFanout(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Scenarios = []Scenario{{Name: "steady"}}

	var mu sync.Mutex
	var order []string
	record := func(tag string) { mu.Lock(); order = append(order, tag); mu.Unlock() }

	panicky := observerFuncs{
		start: func(RunInfo) { record("a"); panic("observer a misbehaves") },
		done:  func(RunInfo, experiment.Summary, error) { panic("observer a misbehaves") },
	}
	second := &countingObserver{}
	third := observerFuncs{start: func(RunInfo) { record("c") }}

	res, err := Run(context.Background(), st,
		WithObserver(panicky),
		WithObserver(nil),
		WithObserver(second),
		WithObserver(third),
		WithWorkers(1))
	if err != nil {
		t.Fatalf("a panicking observer failed the study: %v", err)
	}
	for _, c := range res.Cells {
		if !c.Done {
			t.Errorf("cell %d did not run", c.Index)
		}
	}
	second.mu.Lock()
	defer second.mu.Unlock()
	if second.starts != len(res.Cells) || second.dones != len(res.Cells) || second.samples == 0 {
		t.Errorf("observer after the panicking one missed events: %d starts, %d dones, %d samples",
			second.starts, second.dones, second.samples)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order)%2 != 0 {
		t.Fatalf("start fan-out misfired: order %v", order)
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "c" {
			t.Errorf("observers fired out of registration order: %v", order)
			break
		}
	}
}

// observerFuncs adapts bare funcs to Observer; nil fields are no-ops.
type observerFuncs struct {
	start  func(RunInfo)
	done   func(RunInfo, experiment.Summary, error)
	sample func(RunInfo, experiment.SeriesSample)
}

func (o observerFuncs) OnRunStart(i RunInfo) {
	if o.start != nil {
		o.start(i)
	}
}

func (o observerFuncs) OnRunDone(i RunInfo, s experiment.Summary, err error) {
	if o.done != nil {
		o.done(i, s, err)
	}
}

func (o observerFuncs) OnSample(i RunInfo, s experiment.SeriesSample) {
	if o.sample != nil {
		o.sample(i, s)
	}
}

// TestRunInfosMatchesObservedCells: RunInfos pre-enumerates exactly the
// RunInfo values Run later delivers, in grid order.
func TestRunInfosMatchesObservedCells(t *testing.T) {
	st := miniStudy()
	infos, err := st.RunInfos()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]RunInfo)
	obs := observerFuncs{start: func(i RunInfo) { mu.Lock(); seen[i.Index] = i; mu.Unlock() }}
	if _, err := Run(context.Background(), st, WithObserver(obs)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(infos) {
		t.Fatalf("RunInfos enumerated %d cells, Run started %d", len(infos), len(seen))
	}
	for i, want := range infos {
		if want.Index != i || want.Total != len(infos) {
			t.Errorf("infos[%d] has Index=%d Total=%d", i, want.Index, want.Total)
		}
		if got := seen[i]; got != want {
			t.Errorf("cell %d: RunInfos says %+v, Run delivered %+v", i, want, got)
		}
	}
}

// TestRunCancellationMidBattery is the cancellation contract: a study
// cancelled mid-flight returns ctx.Err() promptly, leaks no goroutines,
// and hands back well-formed partial results for the cells that finished.
func TestRunCancellationMidBattery(t *testing.T) {
	before := runtime.NumGoroutine()

	st := miniStudy()
	st.Seeds = []int64{3, 4, 5, 6}
	st.Strategies = []string{"urgent-random", "rarest", "deadline"} // 12 cells
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &countingObserver{cancelAt: 1, cancel: cancel}

	start := time.Now()
	res, err := Run(ctx, st, WithWorkers(2), WithObserver(obs))
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if len(res.Cells) != 12 {
		t.Fatalf("partial result has %d cells, want 12", len(res.Cells))
	}
	done, undone := 0, 0
	for _, c := range res.Cells {
		if c.Done {
			done++
			if c.Summary.Events == 0 {
				t.Errorf("done cell %d has an empty summary", c.Index)
			}
		} else {
			undone++
			if c.Summary.Events != 0 {
				t.Errorf("skipped cell %d has a non-zero summary", c.Index)
			}
		}
	}
	if done == 0 {
		t.Error("no cell completed before the cancel (observer cancels after the first)")
	}
	if undone == 0 {
		t.Error("cancellation stopped nothing: every cell ran to completion")
	}
	// Promptness: the 12-cell battery would take many times longer than
	// the couple of runs that were in flight at cancel time.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled run took %v", elapsed)
	}
	// The partial result still renders.
	if tab := res.ComparisonTable(); tab == nil || len(tab.Rows) == 0 {
		t.Error("partial result does not render")
	}

	// No goroutine leaks: the worker pool must be fully joined. Allow the
	// runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunPreCancelled: a study under an already-cancelled context runs
// nothing and says so.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs := &countingObserver{}
	res, err := Run(ctx, miniStudy(), WithObserver(obs))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, c := range res.Cells {
		if c.Done {
			t.Error("pre-cancelled study completed a cell")
		}
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.starts != 0 {
		t.Errorf("pre-cancelled study started %d cells", obs.starts)
	}
}

// TestRunCellErrorStopsDispatch: a cell failure at run time (here, an
// arrivals event over an empty deferred pool, which Validate cannot see)
// must stop further cells from starting; the first error in grid order
// comes back, not hours of doomed simulation.
func TestRunCellErrorStopsDispatch(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Seeds = []int64{3, 4, 5, 6, 7, 8}
	// ExtraPeerFactor 0 ⇒ no deferred pool ⇒ Compile fails inside every
	// cell's experiment.
	st.Scenarios = []Scenario{{Spec: &scenarioSpecEmptyArrivals}}
	obs := &countingObserver{}
	res, err := Run(context.Background(), st, WithWorkers(1), WithObserver(obs))
	if err == nil {
		t.Fatal("doomed study reported success")
	}
	if res != nil {
		t.Error("failed (non-cancelled) study returned a result")
	}
	if errors.Is(err, errCellSkipped) {
		t.Errorf("skip sentinel surfaced as the study error: %v", err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.starts != 1 {
		t.Errorf("dispatch not stopped after first failure: %d cells started, want 1", obs.starts)
	}
}

// TestRunCellErrorNeverSurfacesSkipSentinel: under parallel workers an
// in-flight low-index cell can observe the failure flag after a
// higher-index cell set it; the study error must still be a real cell
// failure, never the internal skip marker.
func TestRunCellErrorNeverSurfacesSkipSentinel(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Seeds = []int64{3, 4, 5, 6, 7, 8, 9, 10}
	st.Scenarios = []Scenario{{Spec: &scenarioSpecEmptyArrivals}}
	for workers := 1; workers <= 8; workers *= 2 {
		_, err := Run(context.Background(), st, WithWorkers(workers))
		if err == nil {
			t.Fatalf("workers=%d: doomed study reported success", workers)
		}
		if errors.Is(err, errCellSkipped) || strings.Contains(err.Error(), "skipped") {
			t.Errorf("workers=%d: skip sentinel masked the real failure: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "doomed") {
			t.Errorf("workers=%d: error does not name the failing scenario: %v", workers, err)
		}
	}
}

// TestCancellableEventsMatchBackground: wiring up a cancellable context
// (Ctrl-C support) must not shift the reported Events metric — the
// cancellation poll's own firings are excluded, keeping tables
// byte-identical to context-free runs.
func TestCancellableEventsMatchBackground(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{""}
	st.Seeds = []int64{3}
	plain, err := Run(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancellable, err := Run(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if p, c := plain.Cells[0].Summary.Events, cancellable.Cells[0].Summary.Events; p != c {
		t.Errorf("Events drifted under a cancellable context: background %d, cancellable %d", p, c)
	}
}

// TestRunValidationFailsFast: a bad axis value dies before any simulation.
func TestRunValidationFailsFast(t *testing.T) {
	st := miniStudy()
	st.Strategies = []string{"newest"}
	start := time.Now()
	_, err := Run(context.Background(), st)
	if err == nil || !strings.Contains(err.Error(), "newest") {
		t.Errorf("bad strategy survived: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("validation burned simulation time")
	}
}
