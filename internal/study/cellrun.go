package study

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"napawine/internal/experiment"
)

// This file is the study's cell-level execution surface: the pieces a
// distributed executor (internal/fleet) needs to run a grid one cell at a
// time on different machines and still assemble the exact Result a local
// study.Run would have produced. Cells are addressed two ways — by grid
// index for the wire protocol, and by canonical JSON digest for the
// checkpoint spool, where a key must survive coordinator restarts and mean
// the same cell bit-for-bit.

// Digest returns the study's canonical content address: the SHA-256 of its
// canonical JSON encoding, in hex. Two Study values digest equal exactly
// when they encode equal, so a spool keyed by it can never resume one study
// with another's cells. A study that cannot be encoded (a programmatic
// variant Mutate) has no digest; distributing it is rejected loudly for the
// same reason the codec rejects it.
func (st *Study) Digest() (string, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// cellKeyDoc is the canonical JSON document a cell digest hashes: the
// owning study's digest plus the cell's full grid coordinate. Field order
// is fixed by the struct, values are scalars, so the encoding — and hence
// the digest — is deterministic across machines and Go releases.
type cellKeyDoc struct {
	Study      string `json:"study_sha256"`
	Index      int    `json:"index"`
	App        string `json:"app"`
	Strategy   string `json:"strategy"`
	Scenario   string `json:"scenario"`
	Variant    string `json:"variant"`
	QueueDepth int    `json:"queue_depth"`
	Seed       int64  `json:"seed"`
}

// CellDigest returns the canonical digest of one grid cell under the study
// identified by studyDigest (from Study.Digest): the SHA-256 of the cell's
// canonical JSON key document, in hex. It is the checkpoint spool's file
// key — stable across runs, unique per cell, and bound to the exact study
// encoding, so a resumed coordinator skips a finished cell only when every
// knob that shaped it is bit-identical.
func CellDigest(studyDigest string, info RunInfo) string {
	doc, err := json.Marshal(cellKeyDoc{
		Study:      studyDigest,
		Index:      info.Index,
		App:        info.App,
		Strategy:   info.Strategy,
		Scenario:   info.Scenario,
		Variant:    info.Variant,
		QueueDepth: info.QueueDepth,
		Seed:       info.Seed,
	})
	if err != nil {
		// cellKeyDoc is scalars only; Marshal cannot fail.
		panic(fmt.Sprintf("study: cell digest marshal: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// RunCell executes exactly one grid cell of st, by index, and reduces it to
// its bounded summary — the unit of work a fleet worker leases. The cell's
// configuration is the same knob-for-knob construction Run uses, so a cell
// computed remotely is byte-identical to the same cell computed locally
// (the fleet parity tests pin this). onSample, when non-nil, streams the
// cell's time-series buckets exactly as Run's Observer.OnSample would; it
// only fires for scenario cells, mirroring Run.
func RunCell(ctx context.Context, st *Study, index int, onSample func(experiment.SeriesSample)) (experiment.Summary, error) {
	cells, err := st.resolveGrid()
	if err != nil {
		return experiment.Summary{}, err
	}
	if index < 0 || index >= len(cells) {
		return experiment.Summary{}, fmt.Errorf("study %s: cell index %d out of range [0,%d)", st.Name, index, len(cells))
	}
	c := cells[index]
	cfg, err := c.config(st)
	if err != nil {
		return experiment.Summary{}, fmt.Errorf("%s: %w", c.info(len(cells)).Label(), err)
	}
	if onSample != nil && c.scn != nil {
		cfg.OnSample = onSample
	}
	r, err := experiment.RunCtx(ctx, cfg)
	if err != nil {
		return experiment.Summary{}, fmt.Errorf("%s: %w", c.info(len(cells)).Label(), err)
	}
	return experiment.Summarize(r), nil
}

// NewResult assembles a Result from externally computed cell summaries, in
// grid order — the fan-in counterpart of RunCell. sums and done must both
// be st.Runs() long; done[i] reports whether cell i actually ran (an
// aborted distributed run assembles its partial result exactly like a
// cancelled local one: un-run cells carry a zero Summary and Done=false).
// The cells' coordinates come from the study's own grid resolution, so an
// assembled Result and a study.Run Result render identical tables given
// identical summaries.
func NewResult(st *Study, sums []experiment.Summary, done []bool) (*Result, error) {
	cells, err := st.resolveGrid()
	if err != nil {
		return nil, err
	}
	if len(sums) != len(cells) || len(done) != len(cells) {
		return nil, fmt.Errorf("study %s: assembling %d summaries / %d done flags over a %d-cell grid",
			st.Name, len(sums), len(done), len(cells))
	}
	res := &Result{Study: st, Seeds: st.SeedList(), Cells: make([]Cell, len(cells))}
	for i, c := range cells {
		res.Cells[i] = Cell{
			Index: c.index,
			App:   c.app, Strategy: c.strategy, Scenario: c.scnLabel,
			Variant: c.varName, QueueDepth: c.depth, Seed: c.seed,
			Done: done[i], Summary: sums[i],
		}
	}
	return res, nil
}
