package study

import (
	"fmt"
	"strings"
	"time"
)

// The built-in registry maps study names to fresh Study constructors, in a
// fixed presentation order, exactly like the scenario registry: ByName
// returns a fresh value each call so a caller mutating its copy (e.g. a CLI
// -duration override) cannot corrupt the registry.
var registry = []struct {
	name  string
	build func() Study
}{
	{"strategy-comparison", strategyComparison},
	{"blind-ablation", blindAblation},
	{"awareness-ablation", awarenessAblation},
}

// Names lists the registered studies in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// ByName returns a fresh copy of the named study.
func ByName(name string) (*Study, error) {
	for _, r := range registry {
		if r.name == name {
			st := r.build()
			return &st, nil
		}
	}
	return nil, fmt.Errorf("study: unknown study %q (want %s)",
		name, strings.Join(Names(), ", "))
}

// strategyComparison is the ROADMAP's strategy-comparison artifact: the
// Mathieu–Perino chunk-scheduling space replayed per application, read as
// continuity (does the stream survive), source load (does the swarm carry
// itself) and diffusion delay (how fast a chunk reaches the audience),
// contrasted across all four registered strategies for all three
// applications with seed error bars.
func strategyComparison() Study {
	return Study{
		Name:        "strategy-comparison",
		Description: "continuity, source load and diffusion delay across the four chunk strategies per app",
		Apps:        []string{"PPLive", "SopCast", "TVAnts"},
		Strategies:  []string{"urgent-random", "latest-useful", "rarest", "deadline"},
		Trials:      3,
		BaseSeed:    1,
		Duration:    Duration(2 * time.Minute),
	}
}

// blindAblation is the network-awareness ablation as a study: each
// application's stock discovery against a location- and bandwidth-blind
// variant — the file-expressible version of the biasstudy example.
func blindAblation() Study {
	return Study{
		Name:        "blind-ablation",
		Description: "stock discovery vs uniform-blind discovery per app (AS awareness and the price of losing it)",
		Apps:        []string{"PPLive", "SopCast", "TVAnts"},
		Variants: []Variant{
			{},
			{Name: "blind", Blind: true},
		},
		Trials:   3,
		BaseSeed: 1,
		Duration: Duration(2 * time.Minute),
		Metrics:  []string{"continuity", "as-awareness", "source-share"},
	}
}

// awarenessAblation crosses congestion-agnostic schedulers against their
// congestion-aware hybrid counterparts, with and without bounded uplink
// queues — the Mathieu–Perino question (do resource-aware algorithms win?)
// asked under the Efthymiopoulos condition (only once congestion exists).
// The two hybrid members differ only in the awareness term, so any gap
// between them under q=2 is the value of reacting to loss, nothing else.
func awarenessAblation() Study {
	return Study{
		Name:        "awareness-ablation",
		Description: "congestion-agnostic vs loss-aware scheduling, unbounded vs bounded uplink queues",
		Apps:        []string{"TVAnts"},
		Strategies: []string{
			"urgent-random",
			"hybrid:u=0.4,r=1",
			"hybrid:u=0.4,r=1,a=1",
		},
		QueueDepths: []int{0, 2},
		Trials:      3,
		BaseSeed:    1,
		Duration:    Duration(2 * time.Minute),
		Metrics:     []string{"continuity", "diffusion-delay", "loss-pct", "retransmits"},
	}
}
