package study

import (
	"reflect"
	"strings"
	"testing"

	"napawine/internal/overlay"
	"napawine/internal/scenario"
)

// TestRegisteredStudiesRoundTrip is the codec's headline contract: every
// registered study must survive Encode → Decode → Encode bit-for-bit, so a
// file-authored copy of a registered study is the same study.
func TestRegisteredStudiesRoundTrip(t *testing.T) {
	for _, name := range Names() {
		st, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var first strings.Builder
		if err := Encode(&first, st); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		decoded, err := DecodeBytes([]byte(first.String()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(st, decoded) {
			t.Errorf("%s: decoded study differs:\n  reg  %+v\n  file %+v", name, st, decoded)
		}
		var second strings.Builder
		if err := Encode(&second, decoded); err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if first.String() != second.String() {
			t.Errorf("%s: encode not stable:\n--- first ---\n%s\n--- second ---\n%s",
				name, first.String(), second.String())
		}
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name": "x", "sedes": [1, 2]}`))
	if err == nil || !strings.Contains(err.Error(), "sedes") {
		t.Errorf("unknown field accepted: %v", err)
	}
}

func TestDecodeRejectsRawDuration(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name": "x", "duration": 300000000000}`))
	if err == nil {
		t.Error("raw nanosecond duration accepted")
	}
}

func TestDecodeRejectsUnknownAxisValues(t *testing.T) {
	for _, body := range []string{
		`{"name": "x", "apps": ["Joost"]}`,
		`{"name": "x", "strategies": ["newest"]}`,
		`{"name": "x", "scenarios": ["worldcup"]}`,
		`{"name": "x", "metrics": ["vibes"]}`,
	} {
		if _, err := DecodeBytes([]byte(body)); err == nil {
			t.Errorf("bad axis value accepted: %s", body)
		}
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, err := DecodeBytes([]byte(`{"name": "x"} {"name": "y"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data accepted: %v", err)
	}
}

// TestScenarioAxisForms: a scenario-axis entry decodes from a bare name or
// from an object with an inline spec, strictly in both forms.
func TestScenarioAxisForms(t *testing.T) {
	st, err := DecodeBytes([]byte(`{
		"name": "x",
		"scenarios": [
			"flashcrowd",
			{"spec": {"name": "inline", "events": [
				{"kind": "tracker-outage", "from": 0.3, "to": 0.5}
			]}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(st.Scenarios))
	}
	if st.Scenarios[0].Name != "flashcrowd" || st.Scenarios[0].Spec != nil {
		t.Errorf("bare-name entry = %+v", st.Scenarios[0])
	}
	if st.Scenarios[1].Spec == nil || st.Scenarios[1].Label() != "inline" {
		t.Errorf("inline entry = %+v", st.Scenarios[1])
	}

	// Unknown fields inside the object form and inside the inline spec are
	// both loud errors (the inline spec inherits the scenario codec's
	// strictness).
	for _, body := range []string{
		`{"name": "x", "scenarios": [{"nmae": "flashcrowd"}]}`,
		`{"name": "x", "scenarios": [{"spec": {"name": "i", "evnets": []}}]}`,
		`{"name": "x", "scenarios": [{"spec": {"name": "i", "events": [{"kind": 3, "from": 0, "to": 1}]}}]}`,
		`{"name": "x", "scenarios": [{}]}`,
		// name + spec together is ambiguous: the run would follow the spec
		// while the file appears to select the registered name.
		`{"name": "x", "scenarios": [{"name": "flashcrowd", "spec": {"name": "i"}}]}`,
	} {
		if _, err := DecodeBytes([]byte(body)); err == nil {
			t.Errorf("malformed scenario entry accepted: %s", body)
		}
	}
}

// TestEncodeRejectsProgrammaticVariant: silently dropping a Mutate would
// write a different study than the one being run.
func TestEncodeRejectsProgrammaticVariant(t *testing.T) {
	st := &Study{Name: "x", Variants: []Variant{
		{Name: "custom", Mutate: func(p *overlay.Profile) {}},
	}}
	var b strings.Builder
	if err := Encode(&b, st); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Errorf("programmatic variant encoded: %v", err)
	}
	if err := Encode(&b, nil); err == nil {
		t.Error("nil study encoded")
	}
}

// TestInlineSpecRoundTrip: an inline scenario spec survives the study codec
// exactly like it survives the scenario codec.
func TestInlineSpecRoundTrip(t *testing.T) {
	reg, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	st := &Study{Name: "x", Scenarios: []Scenario{{Spec: reg}}}
	var b strings.Builder
	if err := Encode(&b, st); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBytes([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded.Scenarios[0].Spec, reg) {
		t.Errorf("inline spec did not round-trip:\n  in  %+v\n  out %+v", reg, decoded.Scenarios[0].Spec)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("does/not/exist.json"); err == nil {
		t.Error("missing file accepted")
	}
}
