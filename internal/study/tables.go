package study

import (
	"fmt"
	"strings"

	"napawine/internal/experiment"
	"napawine/internal/report"
	"napawine/internal/stats"
)

// Metric is one per-run number a study can pivot: a label, a print
// precision and an accessor over the bounded run summary. The bool reports
// whether the run measured the metric at all — unmeasurable cells aggregate
// like Table IV's dashes, never as zeros.
type Metric struct {
	Key      string
	Label    string
	Decimals int
	Get      func(experiment.Summary) (float64, bool)
}

// metrics is the registry, in presentation order. The first three are the
// strategy-comparison study's headline: playout continuity, source load and
// chunk diffusion delay.
var metrics = []Metric{
	{"continuity", "Continuity", 3,
		func(s experiment.Summary) (float64, bool) { return s.MeanContinuity, true }},
	{"source-kbps", "Source kbps", 0,
		func(s experiment.Summary) (float64, bool) { return s.SourceKbps, true }},
	{"source-share", "Source share%", 1,
		func(s experiment.Summary) (float64, bool) { return s.SourceSharePct, s.VideoBytes > 0 }},
	{"diffusion-delay", "Diffusion s", 2,
		func(s experiment.Summary) (float64, bool) { return s.DiffusionDelayS, s.DiffusionChunks > 0 }},
	{"rx-kbps", "RX kbps", 0,
		func(s experiment.Summary) (float64, bool) { return s.RxKbpsMean, true }},
	{"hop-median", "Hop median", 1,
		func(s experiment.Summary) (float64, bool) { return s.HopMedian, true }},
	{"as-awareness", "AS B'D%", 1, func(s experiment.Summary) (float64, bool) {
		for _, cell := range s.TableIV {
			if cell.Property == "AS" {
				return cell.Vals[0], cell.Valid[0]
			}
		}
		return 0, false
	}},
	{"events", "Events", 0,
		func(s experiment.Summary) (float64, bool) { return float64(s.Events), true }},
	// Congestion metrics ride at the registry tail so DefaultMetrics — a
	// positional slice — keeps meaning what it always has. Loss is
	// measurable once anything was offered to the bounded queues; raw drop
	// and retransmit counts are measurable in every run (they are honestly
	// zero with congestion off).
	{"loss-pct", "Loss%", 2,
		func(s experiment.Summary) (float64, bool) { return s.LossPct, s.ChunksServed+s.Drops > 0 }},
	{"drops", "Drops", 0,
		func(s experiment.Summary) (float64, bool) { return float64(s.Drops), true }},
	{"retransmits", "Retx", 0,
		func(s experiment.Summary) (float64, bool) { return float64(s.Retransmits), true }},
	{"backoffs", "Backoffs", 0,
		func(s experiment.Summary) (float64, bool) { return float64(s.Backoffs), true }},
}

// Metrics lists the registered metrics in presentation order.
func Metrics() []Metric { return append([]Metric(nil), metrics...) }

// DefaultMetrics is the comparison-table default: continuity, source load
// (rate and share) and diffusion delay.
func DefaultMetrics() []Metric { return Metrics()[:4] }

// MetricByKey resolves a registered metric.
func MetricByKey(key string) (Metric, error) {
	for _, m := range metrics {
		if m.Key == key {
			return m, nil
		}
	}
	keys := make([]string, len(metrics))
	for i, m := range metrics {
		keys[i] = m.Key
	}
	return Metric{}, fmt.Errorf("study: unknown metric %q (want %s)", key, strings.Join(keys, ", "))
}

// Levels lists an axis's distinct rendered coordinates in grid order.
func (r *Result) Levels(ax Axis) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		v := c.Coord(ax)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// accumulate folds a metric over every completed cell matching the filter.
func (r *Result) accumulate(m Metric, match func(Cell) bool) stats.Accumulator {
	var acc stats.Accumulator
	for _, c := range r.Cells {
		if !c.Done || !match(c) {
			continue
		}
		if v, ok := m.Get(c.Summary); ok {
			acc.Add(v)
		}
	}
	return acc
}

// aggCell renders one mean±stderr table cell, or the dash when no matching
// run measured the metric.
func aggCell(acc stats.Accumulator, decimals int) string {
	return report.MeanErrOrDash(acc.Mean(), acc.StdErr(), decimals, acc.N() > 0)
}

// PivotTable aggregates one metric along two axes: one row per row-axis
// level, one column per column-axis level, each cell the mean ± stderr over
// every completed run at that coordinate pair (all remaining axes, seeds
// included, fold into the aggregate).
func (r *Result) PivotTable(m Metric, row, col Axis) *report.Table {
	cols := r.Levels(col)
	t := report.NewTable(
		fmt.Sprintf("Study %q — %s by %s × %s (mean±stderr over %d seeds)",
			r.Study.Name, m.Label, row, col, r.Trials()),
		append([]string{string(row)}, cols...)...)
	for _, rv := range r.Levels(row) {
		cells := make([]string, 0, len(cols)+1)
		cells = append(cells, rv)
		for _, cv := range cols {
			acc := r.accumulate(m, func(c Cell) bool {
				return c.Coord(row) == rv && c.Coord(col) == cv
			})
			cells = append(cells, aggCell(acc, m.Decimals))
		}
		t.Add(cells...)
	}
	return t
}

// ComparisonTable renders the study's headline artifact: one row per
// combination of the grid's non-trivial axes (those with more than one
// level; seeds always aggregate), one column per metric, each cell
// mean ± stderr across the folded axes. No metrics selects DefaultMetrics —
// for the registered strategy-comparison study that is continuity, source
// load and diffusion delay contrasted across every (app, strategy) pair.
func (r *Result) ComparisonTable(ms ...Metric) *report.Table {
	if len(ms) == 0 {
		for _, key := range r.Study.Metrics {
			if m, err := MetricByKey(key); err == nil {
				ms = append(ms, m)
			}
		}
	}
	if len(ms) == 0 {
		ms = DefaultMetrics()
	}
	var axes []Axis
	for _, ax := range Axes() {
		if ax == AxisSeed {
			continue
		}
		if len(r.Levels(ax)) > 1 {
			axes = append(axes, ax)
		}
	}
	if len(axes) == 0 {
		axes = []Axis{AxisApp}
	}
	header := make([]string, 0, len(axes)+len(ms))
	for _, ax := range axes {
		header = append(header, string(ax))
	}
	for _, m := range ms {
		header = append(header, m.Label)
	}
	t := report.NewTable(
		fmt.Sprintf("Study %q — %s (mean±stderr over %d seeds)",
			r.Study.Name, r.Study.Description, r.Trials()),
		header...)

	// One row per distinct axis-coordinate combination, in grid order.
	seen := map[string]bool{}
	for _, c := range r.Cells {
		key := ""
		coords := make([]string, len(axes))
		for i, ax := range axes {
			coords[i] = c.Coord(ax)
			key += coords[i] + "\x00"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		row := append([]string(nil), coords...)
		for _, m := range ms {
			acc := r.accumulate(m, func(cc Cell) bool {
				for i, ax := range axes {
					if cc.Coord(ax) != coords[i] {
						return false
					}
				}
				return true
			})
			row = append(row, aggCell(acc, m.Decimals))
		}
		t.Add(row...)
	}
	return t
}
