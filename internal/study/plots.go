package study

import (
	"strings"

	"napawine/internal/plot"
)

// MetricBars renders the study's comparison as SVG bar charts: one chart
// per metric, one bar group per combination of the grid's non-trivial axes
// (the same rows ComparisonTable prints), each bar the mean across seeds
// with a stderr whisker. Unmeasured combinations render as the bar-chart
// dash: a gap. No metrics selects the study's own (then DefaultMetrics).
func (r *Result) MetricBars(ms ...Metric) []plot.Artifact {
	if len(ms) == 0 {
		for _, key := range r.Study.Metrics {
			if m, err := MetricByKey(key); err == nil {
				ms = append(ms, m)
			}
		}
	}
	if len(ms) == 0 {
		ms = DefaultMetrics()
	}
	var axes []Axis
	for _, ax := range Axes() {
		if ax == AxisSeed {
			continue
		}
		if len(r.Levels(ax)) > 1 {
			axes = append(axes, ax)
		}
	}
	if len(axes) == 0 {
		axes = []Axis{AxisApp}
	}

	// One bar group per distinct axis-coordinate combination, grid order —
	// exactly ComparisonTable's rows.
	var groups []string
	var combos [][]string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		key := ""
		coords := make([]string, len(axes))
		for i, ax := range axes {
			coords[i] = c.Coord(ax)
			key += coords[i] + "\x00"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		groups = append(groups, strings.Join(coords, " "))
		combos = append(combos, coords)
	}

	arts := make([]plot.Artifact, 0, len(ms))
	for _, m := range ms {
		bs := plot.BarSeries{Name: m.Label,
			Vals:  make([]float64, len(combos)),
			Errs:  make([]float64, len(combos)),
			Valid: make([]bool, len(combos)),
		}
		for i, coords := range combos {
			acc := r.accumulate(m, func(c Cell) bool {
				for j, ax := range axes {
					if c.Coord(ax) != coords[j] {
						return false
					}
				}
				return true
			})
			if acc.N() > 0 {
				bs.Vals[i] = acc.Mean()
				bs.Errs[i] = acc.StdErr()
				bs.Valid[i] = true
			}
		}
		arts = append(arts, plot.Artifact{
			Name: "study-" + plot.Slug(m.Label),
			Chart: &plot.Bar{
				Title:  "Study \"" + r.Study.Name + "\" — " + m.Label,
				YLabel: m.Label, Groups: groups, Series: []plot.BarSeries{bs},
			},
		})
	}
	return arts
}
