package study

import (
	"strings"
	"testing"
	"time"

	"napawine/internal/overlay"
	"napawine/internal/scenario"
)

func TestStudyDefaults(t *testing.T) {
	st := &Study{Name: "d"}
	if got := st.AppList(); len(got) != 3 || got[0] != "PPLive" {
		t.Errorf("default apps = %v", got)
	}
	if got := st.StrategyList(); len(got) != 1 || got[0] != "" {
		t.Errorf("default strategies = %v", got)
	}
	if got := st.ScenarioList(); len(got) != 1 || got[0].Label() != "" {
		t.Errorf("default scenarios = %v", got)
	}
	if got := st.VariantList(); len(got) != 1 || got[0].Name != "" {
		t.Errorf("default variants = %v", got)
	}
	if got := st.SeedList(); len(got) != 1 || got[0] != 1 {
		t.Errorf("default seeds = %v", got)
	}
	if st.Runs() != 3 {
		t.Errorf("Runs = %d, want 3", st.Runs())
	}
	if err := st.Validate(); err != nil {
		t.Errorf("default study invalid: %v", err)
	}
}

func TestStudyRunsIsGridProduct(t *testing.T) {
	st := &Study{
		Name:       "grid",
		Apps:       []string{"TVAnts", "SopCast"},
		Strategies: []string{"urgent-random", "rarest"},
		Scenarios:  []Scenario{{}, {Name: "flashcrowd"}},
		Variants:   []Variant{{}, {Name: "blind", Blind: true}},
		Trials:     3,
	}
	if got := st.Runs(); got != 2*2*2*2*3 {
		t.Errorf("Runs = %d, want 48", got)
	}
	if err := st.Validate(); err != nil {
		t.Errorf("grid study invalid: %v", err)
	}
}

func TestStudyValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   Study
		want string
	}{
		{"no name", Study{}, "without a name"},
		{"bad app", Study{Name: "s", Apps: []string{"Joost"}}, "Joost"},
		{"dup app", Study{Name: "s", Apps: []string{"TVAnts", "TVAnts"}}, "duplicate app"},
		{"bad strategy", Study{Name: "s", Strategies: []string{"newest"}}, "newest"},
		{"dup strategy", Study{Name: "s", Strategies: []string{"rarest", "rarest"}}, "duplicate strategy"},
		{"bad scenario", Study{Name: "s", Scenarios: []Scenario{{Name: "worldcup"}}}, "worldcup"},
		{"dup scenario", Study{Name: "s", Scenarios: []Scenario{{Name: "outage"}, {Name: "outage"}}}, "duplicate scenario"},
		{"dup variant", Study{Name: "s", Variants: []Variant{{}, {Blind: true}}}, "duplicate variant"},
		// Rendered-label collisions: an axis cell whose name collides with
		// a default cell's rendered coordinate would silently merge with it
		// in every pivot.
		{"variant named stock", Study{Name: "s", Variants: []Variant{{}, {Name: "stock", Blind: true}}}, "duplicate variant"},
		{"scenario named stationary", Study{Name: "s", Scenarios: []Scenario{
			{}, {Spec: &scenario.Spec{Name: "stationary"}}}}, "duplicate scenario"},
		{"dup seed", Study{Name: "s", Seeds: []int64{4, 4}}, "duplicate seed"},
		// Seed 0 keeps the calibrated default (seed 1), so listing both
		// would replicate one trial and call it two.
		{"seed 0 aliases 1", Study{Name: "s", Seeds: []int64{0, 1}}, "duplicate seed"},
		{"seeds and trials", Study{Name: "s", Seeds: []int64{4}, Trials: 5}, "mutually exclusive"},
		{"seeds and base seed", Study{Name: "s", Seeds: []int64{4}, BaseSeed: 9}, "mutually exclusive"},
		{"neg factor", Study{Name: "s", PeerFactor: -1}, "negative peer factor"},
		{"neg trials", Study{Name: "s", Trials: -2}, "negative trials"},
		{"bad metric", Study{Name: "s", Metrics: []string{"vibes"}}, "vibes"},
	} {
		err := tc.st.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestGridOrder pins cell nesting: app outermost, then strategy, scenario,
// variant, seed — the order the sweep adapter's regrouping relies on.
func TestGridOrder(t *testing.T) {
	st := &Study{
		Name:       "order",
		Apps:       []string{"TVAnts"},
		Strategies: []string{"urgent-random", "rarest"},
		Variants:   []Variant{{}, {Name: "blind", Blind: true}},
		Seeds:      []int64{7, 8},
	}
	cells, err := st.resolveGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	want := []struct {
		strat, vr string
		seed      int64
	}{
		{"urgent-random", "", 7}, {"urgent-random", "", 8},
		{"urgent-random", "blind", 7}, {"urgent-random", "blind", 8},
		{"rarest", "", 7}, {"rarest", "", 8},
		{"rarest", "blind", 7}, {"rarest", "blind", 8},
	}
	for i, w := range want {
		c := cells[i]
		if c.strategy != w.strat || c.varName != w.vr || c.seed != w.seed || c.index != i {
			t.Errorf("cell %d = (%s, %s, %d, idx %d), want (%s, %s, %d, idx %d)",
				i, c.strategy, c.varName, c.seed, c.index, w.strat, w.vr, w.seed, i)
		}
	}
}

// TestCellConfig pins the per-cell experiment configuration to the battery
// conventions: seed 0 keeps the calibrated default, durations and scale
// apply, variants derive profiles.
func TestCellConfig(t *testing.T) {
	st := &Study{Name: "cfg", Duration: Duration(42 * time.Second), PeerFactor: 0.5}
	blind := false
	c := cell{app: "TVAnts", strategy: "rarest", seed: 9,
		variant: Variant{Name: "v", Mutate: func(p *overlay.Profile) { blind = true }}}
	cfg, err := c.config(st)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.World.Seed != 9 {
		t.Errorf("seed not applied: %d/%d", cfg.Seed, cfg.World.Seed)
	}
	if cfg.Duration != 42*time.Second {
		t.Errorf("duration = %v", cfg.Duration)
	}
	if cfg.Strategy != "rarest" {
		t.Errorf("strategy = %q", cfg.Strategy)
	}
	if cfg.World.Peers != 120 { // 240 * 0.5
		t.Errorf("peers = %d, want 120", cfg.World.Peers)
	}
	if cfg.Profile == nil || cfg.Profile.Name != "v" {
		t.Errorf("variant profile not derived: %+v", cfg.Profile)
	}
	if !blind {
		t.Error("variant Mutate not applied")
	}

	zero := cell{app: "TVAnts"}
	cfg, err = zero.config(&Study{Name: "z"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 1 || cfg.Profile != nil {
		t.Errorf("zero cell should keep defaults: seed %d, profile %v", cfg.Seed, cfg.Profile)
	}
}

func TestCoordLabels(t *testing.T) {
	c := Cell{App: "TVAnts", Seed: 3}
	for ax, want := range map[Axis]string{
		AxisApp: "TVAnts", AxisStrategy: "default", AxisScenario: "stationary",
		AxisVariant: "stock", AxisSeed: "3",
	} {
		if got := c.Coord(ax); got != want {
			t.Errorf("Coord(%s) = %q, want %q", ax, got, want)
		}
	}
}

func TestDurationText(t *testing.T) {
	var d Duration
	if err := d.UnmarshalText([]byte("90s")); err != nil || time.Duration(d) != 90*time.Second {
		t.Errorf("UnmarshalText(90s) = %v, %v", d, err)
	}
	if err := d.UnmarshalText([]byte("not-a-duration")); err == nil {
		t.Error("garbage duration accepted")
	}
	if err := d.UnmarshalText([]byte("-5s")); err == nil {
		t.Error("negative duration accepted")
	}
	b, err := Duration(2 * time.Minute).MarshalText()
	if err != nil || string(b) != "2m0s" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
}

func TestRegistryStudiesValid(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty study registry")
	}
	for _, name := range names {
		st, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("registered study %s invalid: %v", name, err)
		}
		if st.Description == "" {
			t.Errorf("registered study %s has no description", name)
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown study error = %v", err)
	}
	// ByName hands out fresh copies: mutating one must not corrupt the next.
	a, _ := ByName(names[0])
	a.Trials = 99
	b, _ := ByName(names[0])
	if b.Trials == 99 {
		t.Error("ByName returned a shared value")
	}
}

func TestMetricRegistry(t *testing.T) {
	for _, m := range Metrics() {
		if m.Key == "" || m.Label == "" || m.Get == nil {
			t.Errorf("malformed metric %+v", m)
		}
		got, err := MetricByKey(m.Key)
		if err != nil || got.Label != m.Label {
			t.Errorf("MetricByKey(%s) = %+v, %v", m.Key, got, err)
		}
	}
	if _, err := MetricByKey("vibes"); err == nil || !strings.Contains(err.Error(), "vibes") {
		t.Errorf("unknown metric error = %v", err)
	}
	if got := len(DefaultMetrics()); got != 4 {
		t.Errorf("DefaultMetrics = %d metrics, want 4", got)
	}
}

func TestStudyCongestionAxis(t *testing.T) {
	st := &Study{
		Name:        "cong",
		Apps:        []string{"TVAnts"},
		QueueDepths: []int{0, 2},
		LossMode:    "tail-drop",
		Seeds:       []int64{7},
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := st.Runs(); got != 2 {
		t.Errorf("Runs = %d, want 2", got)
	}
	cells, err := st.resolveGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].depth != 0 || cells[1].depth != 2 {
		t.Fatalf("congestion grid = %+v", cells)
	}
	// The off cell must carry a zero model — loss mode only rides along
	// with a bounded depth, or the config itself would fail validation.
	off, err := cells[0].config(st)
	if err != nil {
		t.Fatal(err)
	}
	if off.Congestion.Enabled() || off.Congestion.LossMode != "" {
		t.Errorf("off cell congestion = %+v", off.Congestion)
	}
	on, err := cells[1].config(st)
	if err != nil {
		t.Fatal(err)
	}
	if on.Congestion.QueueDepth != 2 || on.Congestion.LossMode != "tail-drop" {
		t.Errorf("bounded cell congestion = %+v", on.Congestion)
	}

	c := Cell{App: "TVAnts", Seed: 7}
	if got := c.Coord(AxisCongestion); got != "off" {
		t.Errorf("Coord(congestion) = %q, want off", got)
	}
	c.QueueDepth = 2
	if got := c.Coord(AxisCongestion); got != "q=2" {
		t.Errorf("Coord(congestion) = %q, want q=2", got)
	}
}

func TestStudyCongestionValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   Study
		want string
	}{
		{"both forms", Study{Name: "s", QueueDepth: 2, QueueDepths: []int{0, 2}}, "mutually exclusive"},
		{"negative depth", Study{Name: "s", QueueDepth: -1}, "queue depth"},
		{"negative level", Study{Name: "s", QueueDepths: []int{0, -2}}, "queue depth"},
		{"dup level", Study{Name: "s", QueueDepths: []int{2, 2}}, "duplicate queue depth"},
		{"bad loss mode", Study{Name: "s", QueueDepth: 2, LossMode: "red"}, "red"},
		{"mode without depth", Study{Name: "s", LossMode: "tail-drop"}, "loss_mode"},
	} {
		err := tc.st.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
