package overlay

import (
	"math"
	"testing"
	"time"

	"napawine/internal/policy"
)

// TestPartnerIndexStaysConsistent drives a churning swarm and then audits
// every node's incremental indexes against its partner map: same set, byID
// ascending, byReq weight-descending with id-ascending ties, cached
// weights equal to a fresh evaluation. This is the invariant the whole
// zero-alloc selection path leans on.
func TestPartnerIndexStaysConsistent(t *testing.T) {
	w := buildWorld(t, 5, 30, 3)
	w.startAll()
	w.eng.Run(60 * time.Second)

	for _, nd := range append(w.peers, w.src) {
		if len(nd.byID) != len(nd.partners) || len(nd.byReq) != len(nd.partners) {
			t.Fatalf("node %d: index sizes %d/%d vs %d partners",
				nd.ID, len(nd.byID), len(nd.byReq), len(nd.partners))
		}
		for i, en := range nd.byID {
			p := en.p
			if en.id != p.node.ID {
				t.Fatalf("node %d: byID entry carries id %d for partner %d", nd.ID, en.id, p.node.ID)
			}
			if got, ok := nd.partners[en.id]; !ok || got != p {
				t.Fatalf("node %d: byID entry %d not in partner map", nd.ID, en.id)
			}
			if i > 0 && nd.byID[i-1].id >= en.id {
				t.Fatalf("node %d: byID out of order at %d", nd.ID, i)
			}
			wantReq, wantRet := policy.Score(nd.Profile.RequestWeight, nd.Profile.RetainWeight, p.info)
			if p.reqW != wantReq || p.retW != wantRet {
				t.Fatalf("node %d: partner %d cached weights (%v,%v) stale, want (%v,%v)",
					nd.ID, en.id, p.reqW, p.retW, wantReq, wantRet)
			}
		}
		for i, en := range nd.byReq {
			if en.w != en.p.reqW && !(math.IsNaN(en.w) && math.IsNaN(en.p.reqW)) {
				t.Fatalf("node %d: byReq entry %d inline weight %v, partner caches %v",
					nd.ID, i, en.w, en.p.reqW)
			}
			if en.id != en.p.node.ID {
				t.Fatalf("node %d: byReq entry carries id %d for partner %d", nd.ID, en.id, en.p.node.ID)
			}
			if i == 0 {
				continue
			}
			a := nd.byReq[i-1]
			if a.w < en.w || (a.w == en.w && a.id > en.id) {
				t.Fatalf("node %d: byReq out of order at %d: (%v,%d) before (%v,%d)",
					nd.ID, i, a.w, a.id, en.w, en.id)
			}
		}
	}
}

// TestByReqInsertKeepsNaNWeightsInTail covers custom Weight
// implementations that can produce NaN (e.g. a Product of +Inf and 0
// factors): NaN entries must sink to an id-ordered tail and never strand
// later inserts behind them, or bestPartner's early exit would miss
// selectable partners.
func TestByReqInsertKeepsNaNWeightsInTail(t *testing.T) {
	w := buildWorld(t, 13, 4, 0)
	nd := w.peers[0]
	mk := func(id int, reqW float64) *partner {
		return &partner{node: w.peers[id], reqW: reqW}
	}
	nan := math.NaN()
	for _, p := range []*partner{mk(1, nan), mk(2, 5), mk(3, nan), mk(0, 9)} {
		nd.byReqInsert(p)
	}
	got := make([]float64, len(nd.byReq))
	for i, en := range nd.byReq {
		got[i] = en.w
	}
	if len(got) != 4 || got[0] != 9 || got[1] != 5 ||
		!math.IsNaN(got[2]) || !math.IsNaN(got[3]) {
		t.Fatalf("byReq order = %v, want [9 5 NaN NaN]", got)
	}
	if nd.byReq[2].id > nd.byReq[3].id {
		t.Error("NaN tail not id-ordered")
	}
	// bestPartner must reach the positive entries despite the NaNs.
	for _, en := range nd.byReq {
		en.p.node.online = true
	}
	if best := nd.bestPartner(); best == nil || best.reqW != 9 {
		t.Errorf("bestPartner = %v, want the weight-9 partner", best)
	}
	nd.byReq = nd.byReq[:0] // undo the synthetic index before teardown
}

// TestChunkStrategySwapChangesTraffic runs the same seed under the default
// and the deadline-first strategies: both must sustain the stream, and the
// traffic they generate must differ — proof the profile knob reaches the
// scheduler rather than being cosmetic.
func TestChunkStrategySwapChangesTraffic(t *testing.T) {
	run := func(strat policy.ChunkStrategy) (int64, float64) {
		w := buildWorld(t, 9, 24, 4)
		for _, nd := range append(w.peers, w.src) {
			nd.Profile.ChunkStrategy = strat
		}
		w.startAll()
		w.eng.Run(90 * time.Second)
		var video int64
		for _, v := range w.net.Ledger.VideoRx {
			video += v
		}
		okCount := 0
		for _, p := range w.peers {
			if p.Continuity() > 0.7 {
				okCount++
			}
		}
		return video, float64(okCount) / float64(len(w.peers))
	}
	// buildWorld shares one profile pointer per call, so mutate per-world.
	defVideo, defOK := run(policy.DefaultStrategy())
	dlVideo, dlOK := run(policy.DeadlineFirst{})
	if defVideo == 0 || dlVideo == 0 {
		t.Fatalf("a strategy starved the swarm: default %d bytes, deadline %d bytes", defVideo, dlVideo)
	}
	if defOK < 0.5 || dlOK < 0.5 {
		t.Errorf("continuity collapsed: default %.2f, deadline %.2f ok-fraction", defOK, dlOK)
	}
	if defVideo == dlVideo {
		t.Error("deadline-first moved byte-identical video to urgent-random; strategy not reaching the scheduler")
	}
}

// TestRarestStrategySustainsSwarm exercises the holder-counting path end
// to end (the only strategy that reads ChunkRef.Holders).
func TestRarestStrategySustainsSwarm(t *testing.T) {
	w := buildWorld(t, 11, 24, 4)
	for _, nd := range append(w.peers, w.src) {
		nd.Profile.ChunkStrategy = policy.RarestFirst{}
	}
	w.startAll()
	w.eng.Run(90 * time.Second)
	var video int64
	for _, v := range w.net.Ledger.VideoRx {
		video += v
	}
	if video == 0 {
		t.Fatal("rarest-first moved no video")
	}
}

func TestContactFanoutDefaultAndValidation(t *testing.T) {
	cfg := testConfig()
	if cfg.ContactFanout != 0 {
		t.Fatalf("fixture unexpectedly sets ContactFanout=%d", cfg.ContactFanout)
	}
	net := New(nil, nil, cfg)
	if net.Cfg.ContactFanout != DefaultContactFanout {
		t.Errorf("zero ContactFanout = %d after validate, want default %d",
			net.Cfg.ContactFanout, DefaultContactFanout)
	}
	cfg2 := testConfig()
	cfg2.ContactFanout = 7
	if got := New(nil, nil, cfg2).Cfg.ContactFanout; got != 7 {
		t.Errorf("explicit ContactFanout overridden to %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative ContactFanout must panic")
		}
	}()
	bad := testConfig()
	bad.ContactFanout = -1
	New(nil, nil, bad)
}
