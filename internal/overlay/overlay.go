// Package overlay implements a mesh-pull P2P live-streaming engine of the
// kind every 2008-era commercial client (PPLive, SopCast, TVAnts) is known
// to embody: a tracker hands out peer candidates, peers gossip and keep a
// partner set, advertise holdings with buffer maps, and pull missing chunks
// from partners before their playout deadline.
//
// The engine is parameterized by a Profile whose policy knobs — discovery
// weighting, request weighting, partner-retention weighting, contact rate,
// partner-set size — are precisely the "network awareness" the paper's
// methodology is designed to expose from the traffic. internal/apps ships
// three profiles emulating the measured behaviours of PPLive, SopCast and
// TVAnts.
//
// All activity runs inside one deterministic sim.Engine. Packet records are
// materialized only at nodes that carry a sniffer (the NAPA-WINE probes),
// which keeps large swarms tractable while preserving exact per-packet
// observables where it matters.
package overlay

import (
	"fmt"
	"slices"
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// PeerID identifies a node inside one Network.
type PeerID int32

// Profile is the behavioural parameter set of one application. See
// internal/apps for the three paper profiles.
type Profile struct {
	Name string

	// Partner management.
	PartnerTarget int           // partners a node tries to hold
	MaxPartners   int           // hard acceptance cap (≥ PartnerTarget)
	DropInterval  time.Duration // how often the worst partner is churned out

	// Discovery.
	ContactInterval time.Duration // gossip handshakes with new random peers
	NeighborListMax int           // contacted peers remembered (keepalive set)

	// Signaling.
	SignalingInterval time.Duration // buffer-map push period
	KeepaliveFanout   int           // neighbors pinged per signaling round

	// Pull scheduling.
	ScheduleInterval time.Duration // chunk scheduler tick
	PullDelay        int           // chunks behind the live edge before pulling
	PullWindow       int           // width of the pull range, in chunks
	MaxInflight      int           // outstanding chunk requests
	RequestTimeout   time.Duration
	// BestFill is the greedy component of the scheduler: up to this many
	// chunks per tick are pulled directly from the highest-RequestWeight
	// partner that advertises them, before the strategy-ordered pass shops
	// the rest around. It is how a strongly weighted partner (a fast peer,
	// or a same-AS peer under an AS-biased profile) actually ends up
	// carrying a disproportionate share of bytes. Zero disables it.
	BestFill int

	// ChunkStrategy orders each scheduler round's missing-chunk requests
	// (see policy.ChunkStrategy). nil selects policy.DefaultStrategy() —
	// the urgent-random hybrid the engine has always used — resolved
	// lazily at the read site, never written back (the profile may be
	// shared across parallel runs).
	ChunkStrategy policy.ChunkStrategy

	// Awareness knobs (the subject of the whole study).
	DiscoveryWeight policy.Weight // choosing partners among candidates
	RequestWeight   policy.Weight // choosing whom to pull a chunk from
	RetainWeight    policy.Weight // valuing partners at churn time
}

// validate panics on profiles that cannot run; these are programming errors
// in experiment setup, not runtime conditions.
func (p *Profile) validate() {
	switch {
	case p.Name == "":
		panic("overlay: profile without a name")
	case p.PartnerTarget <= 0 || p.MaxPartners < p.PartnerTarget:
		panic(fmt.Sprintf("overlay: %s: bad partner bounds %d/%d", p.Name, p.PartnerTarget, p.MaxPartners))
	case p.ContactInterval <= 0 || p.SignalingInterval <= 0 || p.ScheduleInterval <= 0:
		panic(fmt.Sprintf("overlay: %s: non-positive intervals", p.Name))
	case p.PullDelay < 1 || p.PullWindow < 1 || p.MaxInflight < 1:
		panic(fmt.Sprintf("overlay: %s: bad pull shape", p.Name))
	case p.RequestTimeout <= 0 || p.DropInterval <= 0:
		panic(fmt.Sprintf("overlay: %s: bad timers", p.Name))
	case p.DiscoveryWeight == nil || p.RequestWeight == nil || p.RetainWeight == nil:
		panic(fmt.Sprintf("overlay: %s: nil policy", p.Name))
	}
}

// strategy resolves the profile's chunk strategy, defaulting a nil field
// lazily. Resolution stays at the read site because one *Profile may be
// shared across the parallel runs of a battery: validate() writing the
// default back would race with concurrent readers.
func (p *Profile) strategy() policy.ChunkStrategy {
	if p.ChunkStrategy == nil {
		return policy.DefaultStrategy()
	}
	return p.ChunkStrategy
}

// DefaultContactFanout is the tracker candidates one gossip round
// (contactTick) examines when Config.ContactFanout is zero.
const DefaultContactFanout = 3

// Config carries network-wide constants.
type Config struct {
	Calendar     chunkstream.Calendar
	BufferWindow int // chunks each node's buffer map covers
	TrackerBatch int // candidates per tracker query
	// ContactFanout is the number of tracker candidates one gossip round
	// examines before settling on a single peer exchange. Zero selects
	// DefaultContactFanout; negative is a configuration error.
	ContactFanout int
	JitterMax     time.Duration // per-packet forwarding jitter bound
	// UplinkBusyCap is the backlog beyond which a node rejects chunk
	// requests instead of queueing them; rejections are what steer
	// requesters toward fast peers.
	UplinkBusyCap time.Duration
	// Congestion bounds each node's uplink transfer queue (tail-drop loss
	// past the depth) and switches the scheduler's congestion machinery
	// on: per-partner exponential backoff after timeouts, immediate
	// retransmit of lost chunks, and the observed-loss EWMA that
	// congestion-aware strategies fold into partner weighting. The zero
	// value is the historical unbounded model and leaves the event and
	// RNG sequence byte-identical.
	Congestion access.CongestionModel
	// LeanLedger drops the ledger's per-peer and per-pair maps, keeping
	// only the swarm-wide scalar totals. Per-peer ground truth grows
	// O(peers) — and VideoByPair O(peers²) in the worst case — which is
	// what pins resident memory at 10⁵-peer scale; every result the
	// experiment layer reports comes from the scalars. Accounting calls
	// are identical either way, so the event and RNG sequence — and with
	// them the golden digests — do not depend on this switch.
	LeanLedger bool
}

func (c *Config) validate() {
	if c.BufferWindow <= 0 {
		panic("overlay: non-positive buffer window")
	}
	if c.TrackerBatch <= 0 {
		panic("overlay: non-positive tracker batch")
	}
	if c.ContactFanout < 0 {
		panic("overlay: negative contact fanout")
	}
	if c.ContactFanout == 0 {
		c.ContactFanout = DefaultContactFanout
	}
	if c.UplinkBusyCap <= 0 {
		panic("overlay: non-positive uplink busy cap")
	}
	if err := c.Congestion.Validate(); err != nil {
		panic("overlay: " + err.Error())
	}
}

// wire-size constants for control traffic (bytes, representative of the
// UDP payloads observed for these clients).
const (
	handshakeSize = 80 * units.Byte
	requestSize   = 60 * units.Byte
	rejectSize    = 40 * units.Byte
	keepaliveSize = 48 * units.Byte
	// peer-exchange messages carry peer lists and dominate PPLive's
	// signaling volume. Entries per message are bounded so a PX packet
	// always fits one MTU and stays clearly below video-packet size —
	// larger lists are split across successive gossip rounds, as the
	// real clients do.
	gossipHeader     = 40 * units.Byte
	gossipPerPeer    = 6 * units.Byte
	gossipMaxEntries = 100
)

// PairKey orders two peer ids for use as a map key of an unordered pair.
type PairKey struct{ A, B PeerID }

// MakePairKey builds the canonical (ordered) key.
func MakePairKey(a, b PeerID) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

// Ledger is the ground-truth accounting kept by the network itself,
// independent of what probes can see. The analysis layer never reads it for
// inference; tests and EXPERIMENTS.md use it to validate what the passive
// methodology recovered.
type Ledger struct {
	// lean drops every map below, leaving only scalar totals; the
	// accumulation methods gate their map writes on it. See
	// Config.LeanLedger.
	lean bool

	// VideoByPair counts video payload bytes per directed pair. Nil in
	// lean mode, like every map here.
	VideoByPair map[[2]PeerID]int64
	// Totals per node.
	VideoRx, VideoTx   map[PeerID]int64
	SignalRx, SignalTx map[PeerID]int64
	ChunksServed       map[PeerID]int64
	Rejections         map[PeerID]int64
	Timeouts           map[PeerID]int64
	// Congestion accounting, by the peer whose uplink queue dropped the
	// transfer (Drops), whose scheduler re-requested a lost chunk
	// (Retransmits), or who put a partner into backoff (Backoffs). All
	// zero under the default unbounded congestion model.
	Drops       map[PeerID]int64
	Retransmits map[PeerID]int64
	Backoffs    map[PeerID]int64

	// Swarm-wide totals mirroring the sums of the maps above, maintained
	// in both modes so lean runs still report aggregate health.
	SignalTotal       int64
	ChunksServedTotal int64
	RejectionsTotal   int64
	TimeoutsTotal     int64
	DropsTotal        int64
	RetransmitsTotal  int64
	BackoffsTotal     int64

	// Running swarm-wide video totals, split by whether the transfer stayed
	// inside one AS. Time-series samplers difference these between buckets
	// to report per-bucket locality without walking VideoByPair.
	VideoTotal   int64
	VideoIntraAS int64

	// Per-AS video received by peers in each AS, total and intra-AS — the
	// per-AS counterpart of the two scalars above, so samplers can report
	// each AS's locality share over time (the partition scenario's
	// observable). Maintained in lean mode too: the key space is the AS
	// count (tens), not the peer count, so the maps stay O(ASes) and never
	// threaten the lean ledger's memory contract.
	VideoRxByAS    map[topology.ASN]int64
	VideoIntraByAS map[topology.ASN]int64

	// DiffusionDelaySum accumulates, over every first-time chunk delivery
	// to a peer, the virtual time between the chunk's calendar birth and
	// its arrival; DiffusionChunks counts those deliveries. Their ratio is
	// the swarm's mean diffusion delay — the Mathieu–Perino figure of merit
	// that separates the chunk-scheduling strategies.
	DiffusionDelaySum time.Duration
	DiffusionChunks   int64

	// SourceVideoTx counts video bytes uploaded by whichever node was the
	// stream origin at send time — accumulated at transfer time, so a
	// source-failover handoff attributes each byte to the node that was
	// actually injecting when it moved (VideoTx[id] cannot distinguish a
	// backup's pre-promotion peer traffic from its injection duty).
	SourceVideoTx int64
}

func newLedger(lean bool) *Ledger {
	if lean {
		return &Ledger{
			lean:           true,
			VideoRxByAS:    make(map[topology.ASN]int64),
			VideoIntraByAS: make(map[topology.ASN]int64),
		}
	}
	return &Ledger{
		VideoByPair:    make(map[[2]PeerID]int64),
		VideoRx:        make(map[PeerID]int64),
		VideoTx:        make(map[PeerID]int64),
		SignalRx:       make(map[PeerID]int64),
		SignalTx:       make(map[PeerID]int64),
		ChunksServed:   make(map[PeerID]int64),
		Rejections:     make(map[PeerID]int64),
		Timeouts:       make(map[PeerID]int64),
		Drops:          make(map[PeerID]int64),
		Retransmits:    make(map[PeerID]int64),
		Backoffs:       make(map[PeerID]int64),
		VideoRxByAS:    make(map[topology.ASN]int64),
		VideoIntraByAS: make(map[topology.ASN]int64),
	}
}

// Lean reports whether per-peer and per-pair accounting is disabled.
func (l *Ledger) Lean() bool { return l.lean }

func (l *Ledger) video(from, to PeerID, n int64, toAS topology.ASN, sameAS bool) {
	if !l.lean {
		l.VideoByPair[[2]PeerID{from, to}] += n
		l.VideoTx[from] += n
		l.VideoRx[to] += n
	}
	l.VideoTotal += n
	l.VideoRxByAS[toAS] += n
	if sameAS {
		l.VideoIntraAS += n
		l.VideoIntraByAS[toAS] += n
	}
}

func (l *Ledger) signal(from, to PeerID, n int64) {
	if !l.lean {
		l.SignalTx[from] += n
		l.SignalRx[to] += n
	}
	l.SignalTotal += n
}

func (l *Ledger) chunkServed(id PeerID) {
	if !l.lean {
		l.ChunksServed[id]++
	}
	l.ChunksServedTotal++
}

func (l *Ledger) rejection(id PeerID) {
	if !l.lean {
		l.Rejections[id]++
	}
	l.RejectionsTotal++
}

func (l *Ledger) timeout(id PeerID) {
	if !l.lean {
		l.Timeouts[id]++
	}
	l.TimeoutsTotal++
}

func (l *Ledger) drop(id PeerID) {
	if !l.lean {
		l.Drops[id]++
	}
	l.DropsTotal++
}

func (l *Ledger) retransmit(id PeerID) {
	if !l.lean {
		l.Retransmits[id]++
	}
	l.RetransmitsTotal++
}

func (l *Ledger) backoff(id PeerID) {
	if !l.lean {
		l.Backoffs[id]++
	}
	l.BackoffsTotal++
}

// shardCtx is the execution context of one shard: its engine (clock + RNG
// stream), its slice of the ground-truth ledger, its live-peer list and the
// scratch buffers its events run inside. With one shard the single context
// wraps the network's engine and ledger, and every code path reduces to
// the historical serial behaviour.
type shardCtx struct {
	idx    int
	eng    *sim.Engine
	ledger *Ledger

	online []*Node // compact set for O(1) random tracker sampling

	// Tracker-query scratch, reused across calls: each shard is
	// single-threaded and a query's result is consumed before the next
	// query starts, so one set per shard keeps every gossip round
	// allocation-free. Callers must not retain the returned slice.
	sampleOut  []*Node
	sampleSeen []PeerID

	// Chunk-serve scratch (transfer.go): one packetization of the
	// network's constant chunk size plus the per-transfer packet-train
	// instants. serveChunk runs to completion inside a single event and
	// hands only scalars to the delivery callback, so the buffers are
	// free again before any other transfer can start.
	trainSizes   []units.ByteSize
	trainDeparts []sim.Time
	trainArrives []sim.Time
}

// Network owns every node of one emulated swarm.
type Network struct {
	// Eng is the global engine: with one shard, the engine everything runs
	// on; with several, the barrier-phase engine whose events may touch
	// state on any shard (see sim.Sharded). Scenario timelines, samplers
	// and capture flushes schedule here.
	Eng    *sim.Engine
	Topo   *topology.Topology
	Cfg    Config
	Ledger *Ledger

	// sharded is the lockstep coordinator; nil when the network was built
	// with New on a bare engine. shards always holds at least one context.
	sharded *sim.Sharded
	shards  []*shardCtx
	shardOf map[topology.ASN]int

	// onlineSnaps[j] is a snapshot of shard j's online list, refreshed by
	// a periodic global event. During a window, shards sample tracker
	// candidates on other shards from these (slightly stale, like a real
	// tracker's view) because the live lists over there are in motion.
	// Written only at barriers, read-only during windows.
	onlineSnaps [][]*Node

	nodes  []*Node
	source *Node
	// trackerPaused models a tracker outage: queries return nothing, so
	// discovery stalls while established partnerships keep streaming.
	// Toggled only by global (barrier-phase) events, read by shards.
	trackerPaused bool
}

// trackerRefresh is how often the cross-shard tracker snapshots are
// rebuilt. One virtual second of staleness is far below the session
// dynamics the tracker view feeds (multi-second gossip and churn
// intervals) and is, if anything, fresher than a real tracker's view.
const trackerRefresh = time.Second

// New builds an empty network on the given engine and topology. The whole
// swarm runs serially on that engine — the historical single-core mode.
func New(eng *sim.Engine, topo *topology.Topology, cfg Config) *Network {
	cfg.validate()
	led := newLedger(cfg.LeanLedger)
	n := &Network{Eng: eng, Topo: topo, Cfg: cfg, Ledger: led}
	n.shards = []*shardCtx{{eng: eng, ledger: led}}
	return n
}

// NewSharded builds an empty network on a sharded coordinator. shardOf
// assigns every peer-hosting AS to a shard in [0, sh.N()); each AS must be
// kept whole — the coordinator's lookahead is derived from *inter*-AS
// delays. With sh.N() == 1 the network is identical to New on sh.Global(),
// byte-for-byte.
func NewSharded(sh *sim.Sharded, topo *topology.Topology, cfg Config, shardOf map[topology.ASN]int) *Network {
	cfg.validate()
	n := &Network{Eng: sh.Global(), Topo: topo, Cfg: cfg, sharded: sh, shardOf: shardOf}
	n.shards = make([]*shardCtx, sh.N())
	for i := range n.shards {
		n.shards[i] = &shardCtx{idx: i, eng: sh.Shard(i), ledger: newLedger(cfg.LeanLedger)}
	}
	n.Ledger = n.shards[0].ledger
	if sh.N() > 1 {
		// The exported field would silently expose one shard's slice of
		// the accounting; force readers through LedgerView.
		n.Ledger = nil
		n.onlineSnaps = make([][]*Node, sh.N())
		n.Eng.Every(trackerRefresh, trackerRefresh, 0, n.refreshTrackerSnaps)
	}
	return n
}

// LedgerView returns the swarm-wide ground-truth accounting. With one
// shard it is the live ledger itself; with several it is a fresh merge of
// the per-shard ledgers, valid only at barrier time (call it from global
// events or after the run, never from shard events).
func (n *Network) LedgerView() *Ledger {
	if len(n.shards) == 1 {
		return n.shards[0].ledger
	}
	m := newLedger(n.Cfg.LeanLedger)
	for _, sc := range n.shards {
		m.merge(sc.ledger)
	}
	return m
}

// merge folds src into l. Map merges allocate nothing new for keys already
// present; in lean mode only the AS-keyed maps exist on either side.
func (l *Ledger) merge(src *Ledger) {
	if !l.lean && !src.lean {
		for k, v := range src.VideoByPair {
			l.VideoByPair[k] += v
		}
		mergePeer := func(dst, s map[PeerID]int64) {
			for k, v := range s {
				dst[k] += v
			}
		}
		mergePeer(l.VideoRx, src.VideoRx)
		mergePeer(l.VideoTx, src.VideoTx)
		mergePeer(l.SignalRx, src.SignalRx)
		mergePeer(l.SignalTx, src.SignalTx)
		mergePeer(l.ChunksServed, src.ChunksServed)
		mergePeer(l.Rejections, src.Rejections)
		mergePeer(l.Timeouts, src.Timeouts)
		mergePeer(l.Drops, src.Drops)
		mergePeer(l.Retransmits, src.Retransmits)
		mergePeer(l.Backoffs, src.Backoffs)
	}
	l.SignalTotal += src.SignalTotal
	l.ChunksServedTotal += src.ChunksServedTotal
	l.RejectionsTotal += src.RejectionsTotal
	l.TimeoutsTotal += src.TimeoutsTotal
	l.DropsTotal += src.DropsTotal
	l.RetransmitsTotal += src.RetransmitsTotal
	l.BackoffsTotal += src.BackoffsTotal
	l.VideoTotal += src.VideoTotal
	l.VideoIntraAS += src.VideoIntraAS
	for as, v := range src.VideoRxByAS {
		l.VideoRxByAS[as] += v
	}
	for as, v := range src.VideoIntraByAS {
		l.VideoIntraByAS[as] += v
	}
	l.DiffusionDelaySum += src.DiffusionDelaySum
	l.DiffusionChunks += src.DiffusionChunks
	l.SourceVideoTx += src.SourceVideoTx
}

// Shards reports the shard count the network runs across.
func (n *Network) Shards() int { return len(n.shards) }

// shardFor resolves the shard context hosting an AS. ASes outside the
// partition map (possible only in hand-built tests) fall to shard 0.
func (n *Network) shardFor(as topology.ASN) *shardCtx {
	if len(n.shards) == 1 {
		return n.shards[0]
	}
	if i, ok := n.shardOf[as]; ok && i >= 0 && i < len(n.shards) {
		return n.shards[i]
	}
	return n.shards[0]
}

// refreshTrackerSnaps republishes every shard's online list for the other
// shards to sample from. Runs as a global event: shard goroutines are
// parked, so the live lists are stable and the snapshot swap is safe.
func (n *Network) refreshTrackerSnaps() {
	for i, sc := range n.shards {
		snap := n.onlineSnaps[i][:0]
		n.onlineSnaps[i] = append(snap, sc.online...)
	}
}

// Nodes returns all nodes ever added, in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// OnlineCount reports how many nodes are currently online.
func (n *Network) OnlineCount() int {
	total := 0
	for _, sc := range n.shards {
		total += len(sc.online)
	}
	return total
}

// Source returns the stream source node, nil before AddSource.
func (n *Network) Source() *Node { return n.source }

// AddNode creates a node. It does not join the overlay until Join (or
// ScheduleChurn) is called, so the experiment layer controls arrival times.
func (n *Network) AddNode(host topology.Host, link access.Link, prof *Profile) *Node {
	prof.validate()
	node := &Node{
		net:      n,
		sc:       n.shardFor(host.AS),
		ID:       PeerID(len(n.nodes)),
		Host:     host,
		Link:     link,
		Profile:  prof,
		up:       access.NewPort(link.Spec.Up),
		down:     access.NewPort(link.Spec.Down),
		partners: make(map[PeerID]*partner),
		inflight: make(map[chunkstream.ChunkID]pendingReq),
		onlineAt: -1,
	}
	// Only the uplink carries the bound: the pull protocol serializes video
	// through the responder's uplink port, so that is where a congested
	// queue drops chunks.
	if d := n.Cfg.Congestion.QueueDepth; d > 0 {
		node.up.SetQueueLimit(d)
	}
	n.nodes = append(n.nodes, node)
	return node
}

// congestionOn reports whether the bounded-queue congestion machinery —
// tail-drop loss, backoff, retransmit, loss EWMA — is active. Every new
// congestion code path gates on it so the default model stays
// byte-identical.
func (n *Network) congestionOn() bool { return n.Cfg.Congestion.Enabled() }

// AddSource creates the stream origin: a node that natively holds every
// chunk the calendar has produced and never pulls. Only one source is
// supported (the paper's channel has a single injection point).
func (n *Network) AddSource(host topology.Host, link access.Link, prof *Profile) *Node {
	if n.source != nil {
		panic("overlay: second source")
	}
	node := n.AddNode(host, link, prof)
	node.isSource = true
	n.source = node
	return node
}

// PromoteSource hands the stream origin over to backup: the previous
// source (if any) stops counting as origin, backup natively holds every
// chunk the calendar has produced from now on, and the tracker advertises
// it like any online peer. A promoted backup that is offline — churned out,
// or retired by the failover that killed the old source — is brought back
// online immediately (a blocked backup joins when its partition heals).
// Workload scenarios use this as the source-failover handoff hook; callers
// are expected to take the old source offline (Retire) beforehand.
func (n *Network) PromoteSource(backup *Node) {
	if backup == nil {
		panic("overlay: promote nil source")
	}
	if backup.isSource {
		return
	}
	if old := n.source; old != nil {
		old.isSource = false
	}
	backup.isSource = true
	n.source = backup
	if !backup.online {
		// The promotion overrides a retirement: the operator turned the
		// backup injection point on, whatever the viewer behind it did.
		backup.retired = false
		backup.Join()
	}
}

// AttachSniffer equips a node with a probe capture; records for every
// packet crossing the node's access link will be spooled and can be drained
// with FlushCaptures.
func (n *Network) AttachSniffer(node *Node) *sniffer.Capture {
	if node.capture != nil {
		return node.capture
	}
	node.capture = sniffer.New(node.Host.Addr)
	node.spool = &sniffer.Spool{}
	return node.capture
}

// FlushCaptures drains every probe spool into its capture in timestamp
// order. Call once after the run (or periodically between runs).
func (n *Network) FlushCaptures() {
	for _, node := range n.nodes {
		if node.spool != nil {
			node.spool.Drain(node.capture)
		}
	}
}

// FlushCapturesBefore drains spooled records with timestamps strictly
// before the current virtual time into the captures. Safe at any instant:
// an event executing at time t only ever emits records stamped ≥ t, so
// everything older than "now" is final. Long experiments call this
// periodically to keep spool memory bounded by the in-flight horizon
// rather than the run length.
func (n *Network) FlushCapturesBefore() {
	cutoff := int64(n.Eng.Now())
	for _, node := range n.nodes {
		if node.spool != nil {
			node.spool.DrainBefore(node.capture, cutoff)
		}
	}
}

// SetTrackerPaused pauses or resumes the tracker. While paused every query
// comes back empty — peers cannot discover new partners but keep whatever
// partnerships they already hold. Workload scenarios use this to model
// tracker outage windows.
func (n *Network) SetTrackerPaused(paused bool) { n.trackerPaused = paused }

// TrackerPaused reports whether the tracker is currently paused.
func (n *Network) TrackerPaused() bool { return n.trackerPaused }

// trackerSample returns up to k distinct online nodes other than asker,
// uniformly at random. Commercial trackers return random subsets; locality
// bias, where it exists, is applied by the client (its DiscoveryWeight).
// The result aliases a per-shard scratch buffer: it is valid until the
// next query on that shard and must not be retained.
//
// Under sharding the asker's shard samples its own live list plus the
// published snapshots of the other shards — the snapshot staleness models
// a tracker whose view lags reality, and a stale candidate that has since
// gone offline is weeded out at contact time like any departed peer.
func (n *Network) trackerSample(asker *Node, k int) []*Node {
	sc := asker.sc
	total := len(sc.online)
	if len(n.shards) > 1 {
		for j := range n.onlineSnaps {
			if j != sc.idx {
				total += len(n.onlineSnaps[j])
			}
		}
	}
	if n.trackerPaused || k <= 0 || total == 0 {
		return nil
	}
	rng := sc.eng.Rand()
	// Partial Fisher-Yates over a copy of indexes would cost O(online);
	// sample with rejection instead, bounded to a few attempts per slot.
	// The dedup set is a linear-scanned slice: it holds at most k+1 ids,
	// and a map here would allocate on every gossip round of every node.
	out := sc.sampleOut[:0]
	seen := append(sc.sampleSeen[:0], asker.ID)
	attempts := 0
	for len(out) < k && attempts < 8*k {
		attempts++
		cand := n.trackerEntry(sc, rng.Intn(total))
		if slices.Contains(seen, cand.ID) {
			continue
		}
		seen = append(seen, cand.ID)
		out = append(out, cand)
	}
	sc.sampleOut, sc.sampleSeen = out, seen
	return out
}

// trackerEntry resolves one index of the tracker's virtual candidate list:
// the asker shard's live list first, then the other shards' snapshots in
// shard order.
func (n *Network) trackerEntry(sc *shardCtx, i int) *Node {
	if i < len(sc.online) {
		return sc.online[i]
	}
	i -= len(sc.online)
	for j := range n.onlineSnaps {
		if j == sc.idx {
			continue
		}
		if i < len(n.onlineSnaps[j]) {
			return n.onlineSnaps[j][i]
		}
		i -= len(n.onlineSnaps[j])
	}
	panic("overlay: tracker index out of range")
}

func (n *Network) markOnline(node *Node) {
	sc := node.sc
	node.onlineIdx = len(sc.online)
	sc.online = append(sc.online, node)
}

func (n *Network) markOffline(node *Node) {
	sc := node.sc
	idx := node.onlineIdx
	last := len(sc.online) - 1
	sc.online[idx] = sc.online[last]
	sc.online[idx].onlineIdx = idx
	sc.online = sc.online[:last]
	node.onlineIdx = -1
}

// NodeByID returns the node with the given id.
func (n *Network) NodeByID(id PeerID) *Node { return n.nodes[id] }
