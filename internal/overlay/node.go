package overlay

import (
	"fmt"
	"math"
	"slices"
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// partner is the per-neighbour state a node keeps for peers it actively
// exchanges video with.
type partner struct {
	node *Node
	// have mirrors the partner's last advertised buffer map.
	have *chunkstream.BufferMap
	// info carries the locality facts plus the running delivery-rate
	// estimate that selection policies consume.
	info policy.Info
	// reqW and retW cache the profile's request- and retain-time weights
	// for this pair. The locality facts in info are immutable from the
	// moment the partnership forms, so the caches go stale only when
	// info.EstRate moves — every such site calls rescore, which also
	// repositions the partner in the weight-ordered request index.
	reqW, retW float64
	// consecutive failures (timeouts/rejections) since the last success.
	failures int
	// Congestion observations, maintained only when the network's
	// congestion model is on (node.go gates every write): lossEWMA tracks
	// the fraction of requests to this partner that timed out (1 = every
	// recent request lost), and backoffUntil holds requests off the
	// partner after a timeout, doubling per consecutive failure.
	lossEWMA     float64
	backoffUntil sim.Time
}

// lossEWMARetain is the smoothing of the per-partner observed-loss EWMA:
// each timeout pulls it toward 1 and each delivery toward 0 with this
// retention. 0.75 forgets a loss burst in a handful of deliveries — fast
// enough to rehabilitate a partner whose queue drained.
const lossEWMARetain = 0.75

// congestionFailureLimit replaces the historical 4-failure partner drop
// when the congestion model is on: transient queue overload should put a
// partner into backoff, not evict it — eviction is for peers that look
// dead, and under congestion that takes a longer streak.
const congestionFailureLimit = 8

// pendingReq tracks one outstanding chunk request. Stored by value in the
// inflight map (keyed by chunk id) so issuing a request allocates nothing.
type pendingReq struct {
	from   PeerID
	sentAt sim.Time
}

// idEntry is one element of the id-ordered partner index. The sort key
// rides inline next to the pointer (struct-of-arrays style): the index's
// hot loops — insertion scans, dead-partner sweeps — touch only the id and
// stay within the entry slice instead of chasing a pointer per comparison.
type idEntry struct {
	id PeerID
	p  *partner
}

// reqEntry is one element of the weight-ordered request index, with both
// sort keys (cached request weight, then id) inline for the same reason.
// w duplicates p.reqW and is refreshed whenever rescore repositions the
// partner.
type reqEntry struct {
	w  float64
	id PeerID
	p  *partner
}

// Node is one peer in the swarm.
type Node struct {
	net *Network
	// sc is the shard this node executes on: all of its events, randomness
	// and accounting flow through sc. With one shard it wraps the
	// network's engine and ledger. Assigned at AddNode from the host's AS
	// and never changed.
	sc      *shardCtx
	ID      PeerID
	Host    topology.Host
	Link    access.Link
	Profile *Profile

	up, down *access.Port

	buf  *chunkstream.BufferMap
	play *chunkstream.Playout

	partners map[PeerID]*partner
	// byID is the partner set ordered by peer id — the deterministic
	// iteration backbone. Every loop that consumes randomness or emits
	// events walks it instead of ranging over the partners map: Go map
	// order is randomized per run, and leaking it into the event sequence
	// would break seed-reproducibility. Maintained incrementally on
	// partner add/drop; never rebuilt.
	byID []idEntry
	// byReq is the same set ordered by (cached request weight descending,
	// peer id ascending): the weight-ordered partner index. Its head is
	// the greedy scheduler's best partner. Maintained incrementally on
	// add/drop and whenever a delivery-rate update rescores a partner.
	// Churn-time worst-partner selection instead scans byID with the
	// cached retain weights: retain order generally differs from request
	// order, and a full second index would cost more to maintain than the
	// O(partners) scan it replaces.
	byReq     []reqEntry
	neighbors []PeerID // contacted, remembered for keepalives (bounded)
	inflight  map[chunkstream.ChunkID]pendingReq
	// rateMemory persists per-remote delivery-rate estimates across
	// partnership episodes within one session.
	rateMemory map[PeerID]units.BitRate
	// partnerPool recycles partner structs (and their buffer maps) across
	// partnership episodes: partner churn runs for the whole experiment,
	// and without the pool every add allocated a partner, a BufferMap and
	// its bitfield. Pooled structs keep only their have-map allocation;
	// all other state is re-initialized on reuse.
	partnerPool []*partner

	// Per-node scratch buffers: the selection hot path (scheduler ticks,
	// chunk requests, partner churn) runs entirely inside these, so
	// steady-state selection allocates nothing. The engine is
	// single-threaded, and no tick re-enters another, so one set per node
	// is safe.
	scorer   policy.Scorer
	reqOrder []*partner            // candidate order of one requestChunk round
	refs     []policy.ChunkRef     // missing chunks of one scheduler tick
	expired  []chunkstream.ChunkID // timed-out requests of one tick
	dropIDs  []PeerID              // dead partners collected before dropping
	snapBits []uint64              // buffer-map snapshot words

	isSource bool
	online   bool
	// blocked: connectivity lost (scenario partition): Join is deferred.
	// joinDeferred records a Join attempted while blocked, honoured at
	// Unblock — an arrival during a partition connects when the network
	// heals instead of being lost.
	blocked      bool
	joinDeferred bool
	// retired: the viewer is gone for good (scenario exodus): every later
	// Join — including the node's own churn cycle — is refused.
	retired   bool
	onlineIdx int
	onlineAt  sim.Time

	// baseSpec remembers the link's factory rates across SetLinkScale
	// calls; zero until the first throttle.
	baseSpec units.AccessSpec

	// churnScale divides the churn cycle's holding-time draws: >1 makes
	// the node flap faster (scenario regional churn), 1 restores the
	// configured means. Zero (never set) means unscaled, so untouched
	// nodes stay byte-identical to builds without the knob.
	churnScale float64

	capture *sniffer.Capture
	spool   *sniffer.Spool

	cancels []func()
}

// Online reports whether the node is currently participating.
func (nd *Node) Online() bool { return nd.online }

// Partners reports the current partner count.
func (nd *Node) Partners() int { return len(nd.partners) }

// Continuity reports the playout continuity achieved so far (1.0 before
// anything was due). Sources report 1.
func (nd *Node) Continuity() float64 {
	if nd.isSource || nd.play == nil {
		return 1
	}
	return nd.play.Continuity()
}

// Buffered reports how many chunks the node currently holds.
func (nd *Node) Buffered() int {
	if nd.buf == nil {
		return 0
	}
	return nd.buf.Count()
}

// IsSource reports whether this node is the stream origin.
func (nd *Node) IsSource() bool { return nd.isSource }

// hasChunk answers availability; the source holds everything already born.
func (nd *Node) hasChunk(id chunkstream.ChunkID, now sim.Time) bool {
	if nd.isSource {
		return id >= 0 && id <= nd.net.Cfg.Calendar.LatestAt(now)
	}
	return nd.buf != nil && nd.buf.Has(id)
}

// Join brings the node online: it resets buffers to the live edge, asks the
// tracker for candidates, forms initial partnerships and starts its
// periodic activities.
func (nd *Node) Join() {
	if nd.retired {
		return
	}
	if nd.blocked {
		nd.joinDeferred = true
		return
	}
	if nd.online {
		return
	}
	nd.online = true
	nd.onlineAt = nd.sc.eng.Now()
	nd.net.markOnline(nd)

	cal := nd.net.Cfg.Calendar
	live := cal.LatestAt(nd.sc.eng.Now())
	if live < 0 {
		live = 0
	}
	base := live - chunkstream.ChunkID(nd.net.Cfg.BufferWindow)
	if base < 0 {
		base = 0
	}
	// Re-arm the session's episode state in place: buffer map, playout
	// tracker and the two maps are recycled across join/leave cycles, so a
	// node that flaps for the whole experiment allocates its hot state once.
	// Neither map is ever ranged un-sorted into RNG- or event-visible work,
	// so reuse cannot leak map iteration order into the deterministic
	// schedule.
	if nd.buf == nil {
		nd.buf = chunkstream.NewBufferMap(base, nd.net.Cfg.BufferWindow)
	} else {
		nd.buf.Reset(base)
	}
	start := live - chunkstream.ChunkID(nd.Profile.PullDelay)
	if start < 0 {
		start = 0
	}
	if nd.play == nil {
		nd.play = chunkstream.NewPlayout(start)
	} else {
		nd.play.Reset(start)
	}
	clear(nd.inflight)
	clear(nd.partners)
	nd.byID = nd.byID[:0]
	nd.byReq = nd.byReq[:0]
	nd.neighbors = nd.neighbors[:0]
	if nd.rateMemory == nil {
		nd.rateMemory = make(map[PeerID]units.BitRate)
	}

	eng := nd.sc.eng
	p := nd.Profile
	jitter := func(d time.Duration) time.Duration { return d / 4 }

	nd.refillPartners()

	nd.cancels = append(nd.cancels,
		eng.Every(p.SignalingInterval, p.SignalingInterval, jitter(p.SignalingInterval), nd.signalingTick))
	if !nd.isSource {
		nd.cancels = append(nd.cancels,
			eng.Every(p.ScheduleInterval, p.ScheduleInterval, jitter(p.ScheduleInterval), nd.scheduleTick))
	}
	nd.cancels = append(nd.cancels,
		eng.Every(p.ContactInterval, p.ContactInterval, jitter(p.ContactInterval), nd.contactTick))
	nd.cancels = append(nd.cancels,
		eng.Every(p.DropInterval, p.DropInterval, jitter(p.DropInterval), nd.churnTick))
}

// Leave takes the node offline, cancelling periodic work. Partner state at
// remote peers decays lazily: their next interaction notices the absence.
func (nd *Node) Leave() {
	// A leave ends the session whether or not it ever materialized: a
	// deferred join whose session would already be over must not fire.
	nd.joinDeferred = false
	if !nd.online {
		return
	}
	nd.online = false
	nd.net.markOffline(nd)
	for _, c := range nd.cancels {
		c()
	}
	nd.cancels = nil
	// Partners on this shard observe the online flag lazily, as always.
	// Cross-shard partners cannot, so the departure travels to them as a
	// message after the pair's one-way delay.
	for i := range nd.byID {
		if other := nd.byID[i].p.node; !sameShard(nd, other) {
			nd.net.crossRemovePartner(nd, other)
		}
	}
	// Recycle every partner episode and empty the maps in place; the next
	// Join reuses all of it.
	for i := range nd.byID {
		nd.recyclePartner(nd.byID[i].p)
	}
	clear(nd.partners)
	nd.byID = nd.byID[:0]
	nd.byReq = nd.byReq[:0]
	clear(nd.inflight)
}

// Retire takes the node offline for good: the viewer switched the program
// off, so neither its churn cycle nor any scheduled Join brings it back.
// This is what makes a scenario's mass exodus permanent instead of a dip
// the background churn quietly refills.
func (nd *Node) Retire() {
	nd.Leave()
	nd.retired = true
}

// Retired reports whether the node has permanently left.
func (nd *Node) Retired() bool { return nd.retired }

// Block models the node losing network connectivity (an AS or country
// partition): it is forced offline immediately and every Join attempt —
// scheduled arrivals, churn cycles — is deferred until Unblock. Idempotent.
func (nd *Node) Block() {
	nd.Leave()
	nd.blocked = true
}

// Unblock restores connectivity. A Join attempted during the blocked
// window (a scenario arrival, a churn-cycle rejoin) fires now; a node that
// was simply offline stays offline — the caller decides whether the
// partition's victims reconnect at once (Join) or drift back with their
// own churn cycles.
func (nd *Node) Unblock() {
	nd.blocked = false
	if nd.joinDeferred {
		nd.joinDeferred = false
		nd.Join()
	}
}

// Blocked reports whether the node is currently partitioned off.
func (nd *Node) Blocked() bool { return nd.blocked }

// SetLinkScale throttles (or restores) the node's access link: both
// directions run at factor × the original capacity from now on. factor 1
// restores the factory rates; factors are absolute, not cumulative.
// Transfers already booked keep their completion times. The scaled rates
// govern packet-train timing too, so throttling is visible to the paper's
// IPG-based bandwidth inference exactly like a genuinely slower peer.
func (nd *Node) SetLinkScale(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("overlay: non-positive link scale %v", factor))
	}
	if nd.baseSpec.Up == 0 {
		nd.baseSpec = nd.Link.Spec
	}
	scale := func(r units.BitRate) units.BitRate {
		s := units.BitRate(float64(r) * factor)
		if s < 64*units.Kbps { // floor: a link below this would starve even signaling
			s = 64 * units.Kbps
		}
		return s
	}
	nd.Link.Spec.Up = scale(nd.baseSpec.Up)
	nd.Link.Spec.Down = scale(nd.baseSpec.Down)
	nd.up.SetRate(nd.Link.Spec.Up)
	nd.down.SetRate(nd.Link.Spec.Down)
}

// SetChurnScale scales the node's churn rate from now on: holding-time
// draws of its churn cycle (both on- and off-phases) are divided by factor,
// so factor 3 makes the node flap three times as often. Factor 1 restores
// the configured means; factors are absolute, not cumulative, and apply
// from the next draw — sessions already running keep their end times.
// Scaling changes only the multiplier, never the number of RNG draws, so
// determinism is preserved event-for-event.
func (nd *Node) SetChurnScale(factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("overlay: non-positive churn scale %v", factor))
	}
	nd.churnScale = factor
}

// ChurnScale reports the current churn-rate multiplier (1 when never set).
func (nd *Node) ChurnScale() float64 {
	if nd.churnScale <= 0 {
		return 1
	}
	return nd.churnScale
}

// ScheduleJoin schedules the node's Join after the given delay, on the
// node's own shard engine — the arrival form experiment setup uses, so a
// sharded run places every join on the engine that owns the node while the
// delay itself can come from any RNG the caller likes.
func (nd *Node) ScheduleJoin(after time.Duration) {
	nd.sc.eng.Schedule(after, nd.Join)
}

// ScheduleChurn makes the node cycle online/offline with exponential
// holding times; permanent probe nodes simply never call this. The first
// join happens after `firstJoin`.
func (nd *Node) ScheduleChurn(firstJoin time.Duration, meanOn, meanOff time.Duration) {
	eng := nd.sc.eng
	rng := eng.Rand()
	expDur := func(mean time.Duration) time.Duration {
		if s := nd.churnScale; s > 0 {
			mean = time.Duration(float64(mean) / s)
		}
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		// Cap before floor: under a heavy churn scale the 10×-mean cap can
		// sit below one second, and the floor is the documented guarantee.
		if d > 10*mean {
			d = 10 * mean
		}
		if d < time.Second {
			d = time.Second
		}
		return d
	}
	var cycle func()
	cycle = func() {
		// A retired viewer's chain dies here: rescheduling it would burn
		// events and RNG draws on refused joins for the rest of the run.
		if nd.retired {
			return
		}
		nd.Join()
		eng.Schedule(expDur(meanOn), func() {
			nd.Leave()
			if nd.retired {
				return
			}
			eng.Schedule(expDur(meanOff), cycle)
		})
	}
	eng.Schedule(firstJoin, cycle)
}

// infoFor assembles the policy-visible facts about a remote node.
func (nd *Node) infoFor(other *Node) policy.Info {
	return policy.Info{
		SameSubnet: nd.Host.Subnet == other.Host.Subnet,
		SameAS:     nd.Host.AS == other.Host.AS,
		SameCC:     nd.Host.Country == other.Host.Country,
		RTT:        nd.net.Topo.RTT(nd.Host, other.Host),
	}
}

// indexInsert places a freshly added partner into both orders.
func (nd *Node) indexInsert(p *partner) {
	id := p.node.ID
	i := 0
	for i < len(nd.byID) && nd.byID[i].id < id {
		i++
	}
	nd.byID = append(nd.byID, idEntry{})
	copy(nd.byID[i+1:], nd.byID[i:])
	nd.byID[i] = idEntry{id: id, p: p}
	nd.byReqInsert(p)
}

// indexRemove takes a departing partner out of both orders.
func (nd *Node) indexRemove(p *partner) {
	for i := range nd.byID {
		if nd.byID[i].p == p {
			nd.byID = append(nd.byID[:i], nd.byID[i+1:]...)
			break
		}
	}
	nd.byReqRemove(p)
}

// byReqInsert places p at its weight-ordered position: request weight
// descending, peer id ascending on ties — so the head is always the
// lowest-id partner of maximal weight, matching the historical
// scan-in-id-order tie-break. NaN weights (reachable only through custom
// Weight implementations) are kept in an id-ordered tail segment after
// every real weight: naive float comparisons would otherwise strand
// later-inserted partners behind a NaN and break the descending
// invariant bestPartner's early exit relies on.
func (nd *Node) byReqInsert(p *partner) {
	w, id := p.reqW, p.node.ID
	pNaN := math.IsNaN(w)
	i := 0
	for i < len(nd.byReq) {
		q := &nd.byReq[i]
		if qNaN := math.IsNaN(q.w); qNaN {
			if !pNaN || q.id > id {
				break
			}
		} else if !pNaN && (q.w < w || (q.w == w && q.id > id)) {
			break
		}
		i++
	}
	nd.byReq = append(nd.byReq, reqEntry{})
	copy(nd.byReq[i+1:], nd.byReq[i:])
	nd.byReq[i] = reqEntry{w: w, id: id, p: p}
}

func (nd *Node) byReqRemove(p *partner) {
	for i := range nd.byReq {
		if nd.byReq[i].p == p {
			nd.byReq = append(nd.byReq[:i], nd.byReq[i+1:]...)
			return
		}
	}
}

// rescore refreshes a partner's cached weights after its delivery-rate
// estimate moved, and repositions it in the weight-ordered index. This is
// the single invalidation door: locality facts never change, so every
// cache stays exact as long as each EstRate mutation ends here.
func (nd *Node) rescore(p *partner) {
	p.reqW, p.retW = policy.Score(nd.Profile.RequestWeight, nd.Profile.RetainWeight, p.info)
	nd.byReqRemove(p)
	nd.byReqInsert(p)
}

// refillPartners queries the tracker and adopts candidates, weighted by the
// profile's DiscoveryWeight, until the partner target is met.
func (nd *Node) refillPartners() {
	need := nd.Profile.PartnerTarget - len(nd.partners)
	if need <= 0 {
		return
	}
	cands := nd.net.trackerSample(nd, nd.net.Cfg.TrackerBatch)
	nd.scorer.Reset()
	for i, c := range cands {
		if _, dup := nd.partners[c.ID]; dup {
			continue
		}
		if !c.Link.AcceptsFrom(nd.Link) {
			continue
		}
		nd.scorer.Push(policy.Candidate{Index: i, Info: nd.infoFor(c)}, nd.Profile.DiscoveryWeight)
	}
	for _, pick := range nd.scorer.Sample(nd.sc.eng.Rand(), need) {
		nd.handshake(cands[pick.Index])
	}
}

// handshake performs the two-packet introduction and, when both sides have
// room, establishes a partnership. Every handshake also records the remote
// in the neighbor list (the "contacted peers" population). A remote on
// another shard goes through the two-phase message exchange instead
// (shard.go); same-shard pairs keep the synchronous form.
func (nd *Node) handshake(other *Node) {
	if other.ID == nd.ID {
		return
	}
	if !sameShard(nd, other) {
		nd.handshakeCross(other)
		return
	}
	if !other.online {
		return
	}
	nd.net.sendSignal(nd, other, handshakeSize)
	nd.net.sendSignal(other, nd, handshakeSize)
	nd.rememberNeighbor(other.ID)
	other.rememberNeighbor(nd.ID)
	if len(nd.partners) >= nd.Profile.MaxPartners || len(other.partners) >= other.Profile.MaxPartners {
		return
	}
	nd.addPartner(other)
	other.addPartner(nd)
}

func (nd *Node) addPartner(other *Node) {
	if _, dup := nd.partners[other.ID]; dup {
		return
	}
	info := nd.infoFor(other)
	// Clients remember how a peer performed in earlier partnership
	// episodes; without this, partner churn would erase every bandwidth
	// measurement and selection would stay near-uniform forever.
	if nd.rateMemory != nil {
		info.EstRate = nd.rateMemory[other.ID]
	}
	p := nd.newPartner(other, info)
	// Locality facts are settled for good at partnership formation; this
	// is the once-per-pair weighing the selection loops reuse from here on.
	p.reqW, p.retW = policy.Score(nd.Profile.RequestWeight, nd.Profile.RetainWeight, info)
	nd.partners[other.ID] = p
	nd.indexInsert(p)
}

// newPartner takes a recycled partner struct from the pool (resetting its
// have-map in place) or allocates a fresh one on first use.
func (nd *Node) newPartner(other *Node, info policy.Info) *partner {
	var p *partner
	if n := len(nd.partnerPool); n > 0 {
		p = nd.partnerPool[n-1]
		nd.partnerPool[n-1] = nil
		nd.partnerPool = nd.partnerPool[:n-1]
		p.have.Reset(0)
	} else {
		p = &partner{have: chunkstream.NewBufferMap(0, nd.net.Cfg.BufferWindow)}
	}
	p.node = other
	p.info = info
	p.failures = 0
	p.lossEWMA = 0
	p.backoffUntil = 0
	return p
}

// recyclePartner returns a partner struct to the pool. Only the have-map
// allocation is worth keeping; everything else is dropped so a pooled
// struct cannot pin a departed node.
func (nd *Node) recyclePartner(p *partner) {
	p.node = nil
	p.info = policy.Info{}
	p.reqW, p.retW = 0, 0
	p.failures = 0
	p.lossEWMA = 0
	p.backoffUntil = 0
	nd.partnerPool = append(nd.partnerPool, p)
}

func (nd *Node) dropPartner(id PeerID) {
	nd.removePartner(id)
	if other := nd.net.NodeByID(id); other != nil {
		if sameShard(nd, other) {
			other.removePartner(nd.ID)
		} else {
			nd.net.crossRemovePartner(nd, other)
		}
	}
}

// removePartner clears one side of a partnership, keeping map and indexes
// in lockstep.
func (nd *Node) removePartner(id PeerID) {
	p, ok := nd.partners[id]
	if !ok {
		return
	}
	delete(nd.partners, id)
	nd.indexRemove(p)
	nd.recyclePartner(p)
}

func (nd *Node) rememberNeighbor(id PeerID) {
	max := nd.Profile.NeighborListMax
	if max <= 0 {
		return
	}
	for _, n := range nd.neighbors {
		if n == id {
			return
		}
	}
	if len(nd.neighbors) >= max {
		// Evict the oldest: neighbor lists behave like bounded FIFOs.
		copy(nd.neighbors, nd.neighbors[1:])
		nd.neighbors[len(nd.neighbors)-1] = id
		return
	}
	nd.neighbors = append(nd.neighbors, id)
}

// contactTick gossips with one fresh random peer: handshake packets plus a
// peer-exchange message whose size grows with the neighbor list. This is
// what makes aggressive clients (PPLive) observe enormous peer populations.
func (nd *Node) contactTick() {
	if !nd.online {
		return
	}
	cands := nd.net.trackerSample(nd, nd.net.Cfg.ContactFanout)
	for _, c := range cands {
		if _, dup := nd.partners[c.ID]; dup {
			continue
		}
		if !c.Link.AcceptsFrom(nd.Link) && !nd.Link.AcceptsFrom(c.Link) {
			continue
		}
		if !sameShard(nd, c) {
			nd.gossipCross(c)
			break // one gossip exchange per tick
		}
		// Peer exchange both ways, list length capped per message.
		mine := len(nd.neighbors)
		if mine > gossipMaxEntries {
			mine = gossipMaxEntries
		}
		theirs := len(c.neighbors)
		if theirs > gossipMaxEntries {
			theirs = gossipMaxEntries
		}
		nd.net.sendSignal(nd, c, gossipHeader+gossipPerPeer*units.ByteSize(mine))
		nd.net.sendSignal(c, nd, gossipHeader+gossipPerPeer*units.ByteSize(theirs))
		nd.rememberNeighbor(c.ID)
		c.rememberNeighbor(nd.ID)
		// Adopt as partner when short-handed, using the discovery policy
		// as an accept/reject filter relative to a uniform candidate.
		if len(nd.partners) < nd.Profile.PartnerTarget && len(c.partners) < c.Profile.MaxPartners {
			info := nd.infoFor(c)
			w := nd.Profile.DiscoveryWeight.Weight(info)
			base := nd.Profile.DiscoveryWeight.Weight(policy.Info{})
			if base <= 0 {
				base = 1
			}
			accept := w >= base || nd.sc.eng.Rand().Float64() < w/base
			if accept {
				nd.addPartner(c)
				c.addPartner(nd)
			}
		}
		break // one gossip exchange per tick
	}
}

// dropDeadPartners forgets partners that went offline. Collect-then-drop
// keeps the iteration off the live index while it mutates. Cross-shard
// partners are presumed alive here — their departures arrive as messages
// (crossRemovePartner) instead of being observed.
func (nd *Node) dropDeadPartners() {
	nd.dropIDs = nd.dropIDs[:0]
	for i := range nd.byID {
		if !nd.partnerAlive(nd.byID[i].p) {
			nd.dropIDs = append(nd.dropIDs, nd.byID[i].id)
		}
	}
	for _, id := range nd.dropIDs {
		nd.dropPartner(id)
	}
}

// signalingTick pushes the node's buffer map to each partner and keepalives
// a random slice of the neighbor list.
func (nd *Node) signalingTick() {
	if !nd.online {
		return
	}
	if nd.buf != nil {
		nd.dropDeadPartners()
		var base chunkstream.ChunkID
		base, nd.snapBits = nd.buf.SnapshotInto(nd.snapBits)
		size := nd.buf.WireSize() + 40 // header overhead
		// Cross-shard partners receive an immutable copy of this tick's
		// snapshot words (one copy shared by all of them): the scratch
		// buffer will be rewritten before their messages arrive.
		var crossBits []uint64
		for _, en := range nd.byID {
			other := en.p.node
			if !sameShard(nd, other) {
				if crossBits == nil {
					crossBits = append(crossBits, nd.snapBits...)
				}
				nd.pushBufferMapCross(other, size, base, crossBits)
				continue
			}
			nd.net.sendSignal(nd, other, size)
			// The partner learns our holdings.
			if remote, ok := other.partners[nd.ID]; ok {
				remote.have.LoadSnapshot(base, nd.snapBits)
			}
		}
	}
	// Keepalives to a bounded random subset of remembered neighbors.
	fan := nd.Profile.KeepaliveFanout
	rng := nd.sc.eng.Rand()
	for i := 0; i < fan && len(nd.neighbors) > 0; i++ {
		id := nd.neighbors[rng.Intn(len(nd.neighbors))]
		other := nd.net.NodeByID(id)
		if other == nil {
			continue
		}
		if !sameShard(nd, other) {
			nd.keepaliveCross(other)
			continue
		}
		if other.online {
			nd.net.sendSignal(nd, other, keepaliveSize)
			nd.net.sendSignal(other, nd, keepaliveSize)
		}
	}
}

// churnTick drops the least valuable partner (by the cached retain weights)
// once the set is full, then refills. Replacing the weakest contributor
// with a fresh candidate is the adaptation loop that concentrates traffic
// on high-bandwidth peers.
func (nd *Node) churnTick() {
	if !nd.online {
		return
	}
	nd.dropDeadPartners()
	if len(nd.partners) >= nd.Profile.PartnerTarget {
		nd.scorer.Reset()
		for _, en := range nd.byID {
			nd.scorer.PushScored(policy.Candidate{Index: int(en.id), Info: en.p.info}, en.p.retW)
		}
		worst := nd.scorer.Worst()
		if worst.Index >= 0 {
			nd.dropPartner(PeerID(worst.Index))
		}
	}
	nd.refillPartners()
}

// scheduleTick is the pull scheduler: advance the window, account playout,
// and issue chunk requests for missing pieces in the pull range.
func (nd *Node) scheduleTick() {
	if !nd.online || nd.isSource {
		return
	}
	now := nd.sc.eng.Now()
	cal := nd.net.Cfg.Calendar
	live := cal.LatestAt(now)
	if live < 0 {
		return
	}
	p := nd.Profile

	// Slide the buffer window to track the live edge.
	base := live - chunkstream.ChunkID(nd.net.Cfg.BufferWindow) + 4
	if base < 0 {
		base = 0
	}
	if base > nd.buf.Base() {
		nd.buf.Advance(base)
	}

	// Playout deadline: PullDelay+PullWindow chunks behind live.
	deadline := live - chunkstream.ChunkID(p.PullDelay+p.PullWindow)
	if deadline > nd.play.Next() {
		start := nd.onlineAt
		// Grace: do not charge misses for chunks due before we had a
		// realistic chance to fetch them (join warm-up).
		if now.Sub(start) > 2*time.Duration(p.PullDelay+p.PullWindow)*cal.Interval() {
			nd.play.CatchUp(nd.buf, deadline)
		} else {
			for nd.play.Next() < deadline {
				if nd.buf.Has(nd.play.Next()) {
					nd.play.CatchUp(nd.buf, nd.play.Next()+1)
				} else {
					nd.play.Skip()
				}
			}
		}
	}

	// Expire stale requests (sorted for deterministic RNG consumption).
	nd.expired = nd.expired[:0]
	for id, req := range nd.inflight {
		if now.Sub(req.sentAt) > p.RequestTimeout {
			nd.expired = append(nd.expired, id)
		}
	}
	slices.Sort(nd.expired)
	cong := nd.net.congestionOn()
	for _, id := range nd.expired {
		req := nd.inflight[id]
		delete(nd.inflight, id)
		nd.sc.ledger.timeout(nd.ID)
		if pr, ok := nd.partners[req.from]; ok {
			pr.failures++
			pr.info.EstRate /= 2 // stale partner loses standing
			if cong {
				// A timeout is the requester's only evidence of a tail
				// drop: absorb it into the partner's observed-loss EWMA
				// and hold requests off the partner for an exponentially
				// growing window.
				pr.lossEWMA = pr.lossEWMA*lossEWMARetain + (1 - lossEWMARetain)
				shift := pr.failures - 1
				if shift > 4 {
					shift = 4
				}
				pr.backoffUntil = now.Add(p.RequestTimeout << shift)
				nd.sc.ledger.backoff(nd.ID)
			}
			nd.rescore(pr)
			limit := 4
			if cong {
				limit = congestionFailureLimit
			}
			if pr.failures >= limit {
				nd.dropPartner(req.from)
			}
		}
		if cong && id >= nd.play.Next() && !nd.buf.Has(id) {
			// Retransmit the lost chunk right away (from another partner —
			// the loser is in backoff) instead of waiting for the shopping
			// pass to rediscover it.
			if nd.requestChunk(id, now) {
				nd.sc.ledger.retransmit(nd.ID)
			}
		}
	}

	// Request missing chunks. Order matters enormously for swarm health —
	// pure oldest-first makes every peer fetch each chunk at the last
	// moment, so no one holds it early enough to serve others and the
	// source becomes the only provider. The ordering itself is the
	// profile's ChunkStrategy (urgent-random by default); the scheduler
	// only assembles the candidate window.
	lo := live - chunkstream.ChunkID(p.PullDelay+p.PullWindow)
	hi := live - chunkstream.ChunkID(p.PullDelay)
	if lo < nd.play.Next() {
		lo = nd.play.Next()
	}
	if lo < 0 {
		lo = 0
	}
	budget := p.MaxInflight - len(nd.inflight)

	// Greedy pass: fill from the single best partner first — the head of
	// the weight-ordered index. Whatever the best partner advertises and
	// we miss, we take from it directly; this is what converts a selection
	// *weight* into a byte-share *preference* observable in traces.
	if p.BestFill > 0 && budget > 0 {
		if best := nd.bestPartner(); best != nil {
			fill := p.BestFill
			for id := lo; id <= hi && fill > 0 && budget > 0; id++ {
				if nd.buf.Has(id) {
					continue
				}
				if _, pending := nd.inflight[id]; pending {
					continue
				}
				if !best.have.Has(id) {
					continue
				}
				nd.inflight[id] = pendingReq{from: best.node.ID, sentAt: now}
				nd.net.sendRequest(nd, best.node, id)
				fill--
				budget--
			}
		}
	}

	// The shopping pass covers only the older portion of the window when
	// a greedy pass is configured: young chunks get a grace period in
	// which the preferred partner may advertise them, instead of being
	// snapped up from whoever happens to hold them first. Without
	// BestFill the full window is shopped.
	shopHi := hi
	if p.BestFill > 0 {
		shopHi = lo + chunkstream.ChunkID(2*p.PullWindow/3)
		if shopHi > hi {
			shopHi = hi
		}
	}
	strat := p.strategy()
	needHolders := strat.NeedHolders()
	urgentEdge := lo + chunkstream.ChunkID(p.PullWindow/3)
	nd.refs = nd.refs[:0]
	for id := lo; id <= shopHi; id++ {
		if nd.buf.Has(id) {
			continue
		}
		if _, pending := nd.inflight[id]; pending {
			continue
		}
		ref := policy.ChunkRef{ID: int64(id), Urgent: id < urgentEdge}
		if needHolders {
			ref.Holders = nd.countHolders(id, now)
		}
		nd.refs = append(nd.refs, ref)
	}
	strat.Order(nd.sc.eng.Rand(), nd.refs)
	for _, ref := range nd.refs {
		if budget <= 0 {
			break
		}
		if nd.requestChunk(chunkstream.ChunkID(ref.ID), now) {
			budget--
		}
	}
}

// countHolders reports how many selectable partners advertise id — the
// rarity signal consumed by holder-aware chunk strategies.
func (nd *Node) countHolders(id chunkstream.ChunkID, now sim.Time) int {
	n := 0
	for _, en := range nd.byID {
		p := en.p
		if !nd.partnerAlive(p) {
			continue
		}
		if (p.node.isSource && p.node.hasChunk(id, now)) || p.have.Has(id) {
			n++
		}
	}
	return n
}

// bestPartner returns the online, non-source partner with the highest
// request weight, nil when none has positive weight: the first selectable
// entry of the weight-ordered index. Ties sit in the index lowest-id
// first, preserving the historical deterministic tie-break. Under the
// congestion model, partners in backoff are skipped.
func (nd *Node) bestPartner() *partner {
	cong := nd.net.congestionOn()
	var now sim.Time
	if cong {
		now = nd.sc.eng.Now()
	}
	for i := range nd.byReq {
		en := &nd.byReq[i]
		if !nd.partnerAlive(en.p) || en.p.node.isSource {
			continue
		}
		if cong && en.p.backoffUntil > now {
			continue
		}
		if en.w > 0 {
			return en.p
		}
		// Weights only descend from here (NaNs sink to the tail); nothing
		// selectable remains.
		break
	}
	return nil
}

// requestChunk picks a partner advertising id (the source counts as always
// advertising) using the cached request weights and sends the request.
// Reports whether a request went out. Under the congestion model, partners
// in backoff are excluded, and a congestion-aware strategy additionally
// discounts each candidate by its observed-loss EWMA — the bandwidth-aware
// weighting that separates "aware" hybrids from agnostic presets in the
// awareness ablation.
func (nd *Node) requestChunk(id chunkstream.ChunkID, now sim.Time) bool {
	cong := nd.net.congestionOn()
	var aware float64
	if cong {
		aware = policy.Awareness(nd.Profile.strategy())
	}
	nd.scorer.Reset()
	nd.reqOrder = nd.reqOrder[:0]
	for _, en := range nd.byID {
		p := en.p
		if !nd.partnerAlive(p) {
			continue
		}
		if cong && p.backoffUntil > now {
			continue
		}
		// A client only knows what the partner advertised; the single
		// exception is the source, which everyone knows holds the feed.
		if (p.node.isSource && p.node.hasChunk(id, now)) || p.have.Has(id) {
			w := p.reqW
			if aware > 0 {
				w *= policy.LossPenalty(p.lossEWMA, aware)
			}
			nd.scorer.PushScored(policy.Candidate{Index: len(nd.reqOrder), Info: p.info}, w)
			nd.reqOrder = append(nd.reqOrder, p)
		}
	}
	pick := nd.scorer.PickOne(nd.sc.eng.Rand())
	if pick.Index < 0 {
		return false
	}
	target := nd.reqOrder[pick.Index]
	nd.inflight[id] = pendingReq{from: target.node.ID, sentAt: now}
	nd.net.sendRequest(nd, target.node, id)
	return true
}
