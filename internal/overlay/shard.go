package overlay

import (
	"time"

	"napawine/internal/chunkstream"
	"napawine/internal/packet"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/units"
)

// Cross-shard interaction layer.
//
// The serial overlay leans on shared memory in three ways that a sharded
// run cannot: peers mutate each other's state synchronously (handshakes,
// buffer-map pushes, partner teardown), read each other's volatile state
// (online flags, neighbor-list lengths), and call each other's handlers in
// the same event (rejections). For any pair that crosses a shard boundary,
// those interactions become messages delivered on the destination shard no
// earlier than the pair's OneWayDelay — which is exactly the bound the
// coordinator's lookahead window rests on, so a message never lands inside
// the window that produced it. Same-shard pairs keep the serial forms, so
// a one-shard run is byte-identical to the serial engine.
//
// The message forms are the protocol the synchronous forms abbreviate:
// a handshake or gossip exchange becomes offer → accept/decline → commit
// (with a teardown if the initiator filled up while the reply flew), a
// buffer-map push carries a snapshot copy, and a departure travels to
// remote partners instead of being observed through the online flag.
// Receiver-side state is consulted at arrival time, on the receiver's
// clock — slightly later than the serial check, the way a real exchange
// over a latency-separated path behaves.

// sameShard reports whether two nodes execute on the same shard engine.
func sameShard(a, b *Node) bool { return a.sc == b.sc }

// partnerAlive reports whether a partner should be treated as present.
// Same-shard partners expose their online flag directly; a cross-shard
// partner is presumed alive until its departure notification arrives —
// membership in the partner set implies a believed-online peer. A remote
// that vanished ungracefully is shed by the failure escalation (timeouts
// drive failures past the drop threshold), like a silent peer on the
// real network.
func (nd *Node) partnerAlive(p *partner) bool {
	if p.node.sc == nd.sc {
		return p.node.online
	}
	return true
}

// crossSend schedules fn on dst's shard at the absolute instant at, on
// behalf of src. During a window it rides the coordinator's mailboxes;
// from a global (barrier-phase) event it enqueues directly.
func (net *Network) crossSend(src, dst *Node, at sim.Time, fn func()) {
	net.sharded.Send(src.sc.idx, dst.sc.idx, at, fn)
}

// crossRemovePartner tears down the remote half of a partnership across
// shards. The serial engine needs no message here — remote peers observe
// the online flag (or the synchronous dropPartner) directly — so this
// carries no packet accounting; it replaces that shared-memory observation
// with one delayed by the pair's one-way latency, as a real observation
// would be.
func (net *Network) crossRemovePartner(nd, other *Node) {
	at := nd.sc.eng.Now().Add(net.Topo.OneWayDelay(nd.Host, other.Host))
	from := nd.ID
	net.crossSend(nd, other, at, func() { other.removePartner(from) })
}

// signalCross models one control packet from a to b across shards: ground
// truth and the tx record account at the sender now (the sender cannot
// know whether b is still online — the packet departs regardless, unlike
// the serial sendSignal's synchronous check); the rx record and the
// receiver-side effect land on b's shard after the one-way delay, and are
// dropped there if b has gone offline. onRx may be nil.
func (net *Network) signalCross(a, b *Node, size units.ByteSize, kind packet.Kind, onRx func()) {
	sc := a.sc
	now := sc.eng.Now()
	owd := net.Topo.OneWayDelay(a.Host, b.Host)
	if net.Cfg.JitterMax > 0 {
		owd += time.Duration(sc.eng.Rand().Int63n(int64(net.Cfg.JitterMax)))
	}
	arrive := now.Add(owd)
	recordAt(a, packet.Record{
		TS: now, Src: a.Host.Addr, Dst: b.Host.Addr,
		Size: size, TTL: packet.InitialTTL, Kind: kind,
	})
	if kind == packet.Signaling || kind == packet.Request {
		sc.ledger.signal(a.ID, b.ID, int64(size))
	}
	needRec := b.spool != nil
	if !needRec && onRx == nil {
		return
	}
	var rec packet.Record
	if needRec {
		rec = packet.Record{
			TS: arrive, Src: a.Host.Addr, Dst: b.Host.Addr,
			Size: size, TTL: net.ttlAtReceiver(a, b), Kind: kind,
		}
	}
	net.crossSend(a, b, arrive, func() {
		if !b.online {
			return
		}
		if needRec {
			recordAt(b, rec)
		}
		if onRx != nil {
			onRx()
		}
	})
}

// handshakeCross runs the serial handshake's two-packet introduction as a
// two-phase exchange: offer with the initiator's intent, acceptance (and
// remote partner add) at the responder, completion at the initiator.
func (nd *Node) handshakeCross(other *Node) {
	nd.rememberNeighbor(other.ID)
	want := len(nd.partners) < nd.Profile.MaxPartners
	nd.net.signalCross(nd, other, handshakeSize, packet.Signaling, func() {
		other.handshakeAccept(nd, want)
	})
}

// handshakeAccept is the responder side of a cross-shard handshake,
// executing on the responder's shard at offer arrival.
func (nd *Node) handshakeAccept(from *Node, want bool) {
	nd.rememberNeighbor(from.ID)
	accept := want && len(nd.partners) < nd.Profile.MaxPartners
	if accept {
		nd.addPartner(from)
	}
	nd.net.signalCross(nd, from, handshakeSize, packet.Signaling, func() {
		from.handshakeComplete(nd, accept)
	})
}

// handshakeComplete closes a cross-shard handshake or gossip adoption on
// the initiator's shard. If the initiator can no longer take a partner,
// the half-open remote side is torn down again.
func (nd *Node) handshakeComplete(other *Node, accepted bool) {
	if !accepted {
		return
	}
	if _, dup := nd.partners[other.ID]; dup {
		return
	}
	if len(nd.partners) < nd.Profile.MaxPartners {
		nd.addPartner(other)
		return
	}
	nd.net.crossRemovePartner(nd, other)
}

// gossipCross is the cross-shard form of one contactTick exchange: the
// initiator's peer-exchange message carries its adoption intent — the
// discovery-policy coin depends only on immutable locality facts, so it is
// drawn from the initiator's stream before the message departs — and the
// responder replies with its own list and the partnership verdict.
func (nd *Node) gossipCross(c *Node) {
	mine := len(nd.neighbors)
	if mine > gossipMaxEntries {
		mine = gossipMaxEntries
	}
	nd.rememberNeighbor(c.ID)
	want := false
	if len(nd.partners) < nd.Profile.PartnerTarget {
		info := nd.infoFor(c)
		w := nd.Profile.DiscoveryWeight.Weight(info)
		base := nd.Profile.DiscoveryWeight.Weight(policy.Info{})
		if base <= 0 {
			base = 1
		}
		want = w >= base || nd.sc.eng.Rand().Float64() < w/base
	}
	nd.net.signalCross(nd, c, gossipHeader+gossipPerPeer*units.ByteSize(mine), packet.Signaling, func() {
		c.gossipReply(nd, want)
	})
}

// gossipReply is the responder side of a cross-shard gossip exchange.
func (nd *Node) gossipReply(from *Node, want bool) {
	theirs := len(nd.neighbors)
	if theirs > gossipMaxEntries {
		theirs = gossipMaxEntries
	}
	nd.rememberNeighbor(from.ID)
	accept := want && len(nd.partners) < nd.Profile.MaxPartners
	if accept {
		nd.addPartner(from)
	}
	nd.net.signalCross(nd, from, gossipHeader+gossipPerPeer*units.ByteSize(theirs), packet.Signaling, func() {
		from.handshakeComplete(nd, accept)
	})
}

// pushBufferMapCross carries one signaling-tick buffer-map push to a
// partner on another shard. bits is an immutable copy of this tick's
// snapshot words, shared by every cross push of the tick.
func (nd *Node) pushBufferMapCross(other *Node, size units.ByteSize, base chunkstream.ChunkID, bits []uint64) {
	from := nd.ID
	nd.net.signalCross(nd, other, size, packet.Signaling, func() {
		if remote, ok := other.partners[from]; ok {
			remote.have.LoadSnapshot(base, bits)
		}
	})
}

// keepaliveCross is the cross-shard keepalive ping-pong: the pong departs
// from the remote at ping arrival, if the remote is still online.
func (nd *Node) keepaliveCross(other *Node) {
	net := nd.net
	net.signalCross(nd, other, keepaliveSize, packet.Signaling, func() {
		net.signalCross(other, nd, keepaliveSize, packet.Signaling, nil)
	})
}
