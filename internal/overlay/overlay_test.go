package overlay

import (
	"testing"
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/packet"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// testProfile is a small, fast-converging generic client.
func testProfile() *Profile {
	return &Profile{
		Name:              "test",
		PartnerTarget:     8,
		MaxPartners:       14,
		DropInterval:      15 * time.Second,
		ContactInterval:   2 * time.Second,
		NeighborListMax:   50,
		SignalingInterval: 1 * time.Second,
		KeepaliveFanout:   1,
		ScheduleInterval:  500 * time.Millisecond,
		PullDelay:         4,
		PullWindow:        6,
		MaxInflight:       4,
		RequestTimeout:    4 * time.Second,
		DiscoveryWeight:   policy.Uniform{},
		RequestWeight: policy.BandwidthBias{
			Ref: 384 * units.Kbps, Alpha: 2, Floor: 768 * units.Kbps,
		},
		RetainWeight: policy.BandwidthBias{
			Ref: 384 * units.Kbps, Alpha: 1, Floor: 192 * units.Kbps,
		},
	}
}

func testConfig() Config {
	return Config{
		Calendar:      chunkstream.NewCalendar(384*units.Kbps, 48*units.KB),
		BufferWindow:  64,
		TrackerBatch:  12,
		JitterMax:     2 * time.Millisecond,
		UplinkBusyCap: 3 * time.Second,
	}
}

// world is a reusable miniature swarm fixture.
type world struct {
	eng   *sim.Engine
	topo  *topology.Topology
	net   *Network
	src   *Node
	peers []*Node
}

func buildWorld(t testing.TB, seed int64, nPeers int, slowEvery int) *world {
	t.Helper()
	b := topology.NewBuilder(seed)
	b.AddCountry("CN", topology.Asia)
	b.AddCountry("IT", topology.Europe)
	var subs []topology.SubnetID
	for i := 0; i < 6; i++ {
		cc := topology.CC("CN")
		if i >= 4 {
			cc = "IT"
		}
		asn := b.AddAS(cc)
		subs = append(subs, b.AddSubnet(asn), b.AddSubnet(asn))
	}
	topo := b.Build()
	eng := sim.New(seed)
	net := New(eng, topo, testConfig())

	srcHost, err := topo.NewHost(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	src := net.AddSource(srcHost, access.LAN100, testProfile())

	var peers []*Node
	for i := 0; i < nPeers; i++ {
		h, err := topo.NewHost(subs[(i+1)%len(subs)])
		if err != nil {
			t.Fatal(err)
		}
		link := access.LAN100
		if slowEvery > 0 && i%slowEvery == 0 {
			link = access.DSL6
		}
		peers = append(peers, net.AddNode(h, link, testProfile()))
	}
	return &world{eng: eng, topo: topo, net: net, src: src, peers: peers}
}

func (w *world) startAll() {
	w.eng.Schedule(0, w.src.Join)
	for i, p := range w.peers {
		p := p
		w.eng.Schedule(time.Duration(i)*200*time.Millisecond, p.Join)
	}
}

func TestSwarmSustainsStream(t *testing.T) {
	w := buildWorld(t, 1, 24, 4)
	w.startAll()
	w.eng.Run(90 * time.Second)

	okCount := 0
	for _, p := range w.peers {
		if !p.Online() {
			t.Fatalf("peer %d offline unexpectedly", p.ID)
		}
		if p.Continuity() > 0.85 {
			okCount++
		}
	}
	if okCount < len(w.peers)*3/4 {
		t.Errorf("only %d/%d peers achieved continuity > 0.85", okCount, len(w.peers))
	}
	var totalVideo int64
	for _, v := range w.net.Ledger.VideoRx {
		totalVideo += v
	}
	if totalVideo == 0 {
		t.Fatal("no video moved at all")
	}
}

func TestPartnerBoundsRespected(t *testing.T) {
	w := buildWorld(t, 2, 30, 0)
	w.startAll()
	w.eng.Run(60 * time.Second)
	for _, p := range append(w.peers, w.src) {
		if got := p.Partners(); got > p.Profile.MaxPartners {
			t.Errorf("peer %d holds %d partners, max %d", p.ID, got, p.Profile.MaxPartners)
		}
	}
}

func TestProbeCapturesPlausibleTraffic(t *testing.T) {
	w := buildWorld(t, 3, 20, 4)
	probe := w.peers[3]
	cap := w.net.AttachSniffer(probe)
	w.startAll()
	w.eng.Run(60 * time.Second)
	w.net.FlushCaptures()

	if cap.Count() == 0 {
		t.Fatal("probe saw no packets")
	}
	// The probe must have seen both video and signaling, in both
	// directions, and the ledger must agree that it received video.
	if w.net.Ledger.VideoRx[probe.ID] == 0 {
		t.Error("probe received no video per ledger")
	}
}

func TestSnifferRecordsMatchLedgerVideo(t *testing.T) {
	w := buildWorld(t, 4, 16, 0)
	probe := w.peers[0]
	w.net.AttachSniffer(probe)
	var inVideo, outVideo int64
	probe.capture.Attach(sniffer.ConsumerFunc(func(r packet.Record) {
		if r.Kind != packet.Video {
			return
		}
		if r.Dst == probe.Host.Addr {
			inVideo += int64(r.Size)
		} else {
			outVideo += int64(r.Size)
		}
	}))
	w.startAll()
	w.eng.Run(45 * time.Second)
	w.net.FlushCaptures()

	// Chunks still in flight at the horizon were ledgered at serve time
	// but their packets may land after the run; captured video can lag the
	// ledger slightly, never exceed it.
	ledgerRx := w.net.Ledger.VideoRx[probe.ID]
	if inVideo > ledgerRx {
		t.Errorf("captured video in (%d) exceeds ledger (%d)", inVideo, ledgerRx)
	}
	if ledgerRx > 0 && inVideo < ledgerRx/2 {
		t.Errorf("captured video in (%d) under half of ledger (%d)", inVideo, ledgerRx)
	}
	ledgerTx := w.net.Ledger.VideoTx[probe.ID]
	if outVideo > ledgerTx {
		t.Errorf("captured video out (%d) exceeds ledger (%d)", outVideo, ledgerTx)
	}
}

func TestFirewalledPairNeverPartners(t *testing.T) {
	w := buildWorld(t, 5, 10, 0)
	fw1 := w.peers[0]
	fw2 := w.peers[1]
	fw1.Link.Firewall = true
	fw2.Link.Firewall = true
	w.startAll()
	w.eng.Run(60 * time.Second)
	if _, ok := fw1.partners[fw2.ID]; ok {
		t.Error("two firewalled peers formed a partnership")
	}
	if _, ok := fw2.partners[fw1.ID]; ok {
		t.Error("two firewalled peers formed a partnership (reverse)")
	}
}

func TestChurnCycleSurvives(t *testing.T) {
	w := buildWorld(t, 6, 20, 4)
	w.eng.Schedule(0, w.src.Join)
	for i, p := range w.peers {
		if i < 10 {
			p.ScheduleChurn(time.Duration(i)*500*time.Millisecond, 20*time.Second, 5*time.Second)
		} else {
			p := p
			w.eng.Schedule(time.Duration(i)*200*time.Millisecond, p.Join)
		}
	}
	w.eng.Run(2 * time.Minute)
	// The network must remain functional: stable peers keep streaming.
	streaming := 0
	for _, p := range w.peers[10:] {
		if p.Continuity() > 0.7 {
			streaming++
		}
	}
	if streaming < 5 {
		t.Errorf("only %d/10 stable peers stream through churn", streaming)
	}
}

func TestLeaveStopsActivity(t *testing.T) {
	w := buildWorld(t, 7, 12, 0)
	w.startAll()
	w.eng.Run(30 * time.Second)
	victim := w.peers[5]
	rxAtLeave := w.net.Ledger.VideoRx[victim.ID]
	victim.Leave()
	if victim.Online() {
		t.Fatal("Leave did not mark offline")
	}
	w.eng.Run(60 * time.Second)
	rxAfter := w.net.Ledger.VideoRx[victim.ID]
	// In-flight chunks ledgered before the leave may still account, but no
	// new requests can be issued; allow at most a couple of stragglers.
	if rxAfter-rxAtLeave > 4*48_000 {
		t.Errorf("offline peer kept receiving: %d bytes after leave", rxAfter-rxAtLeave)
	}
	if w.net.OnlineCount() != 12 { // 11 peers + source
		t.Errorf("OnlineCount = %d, want 12", w.net.OnlineCount())
	}
}

func TestDeterministicLedger(t *testing.T) {
	run := func() (int64, uint64) {
		w := buildWorld(t, 42, 18, 3)
		w.startAll()
		w.eng.Run(45 * time.Second)
		var total int64
		for _, v := range w.net.Ledger.VideoRx {
			total += v
		}
		return total, w.eng.Processed()
	}
	v1, e1 := run()
	v2, e2 := run()
	if v1 != v2 || e1 != e2 {
		t.Errorf("same seed diverged: bytes %d vs %d, events %d vs %d", v1, v2, e1, e2)
	}
	if v1 == 0 {
		t.Error("deterministic run moved no video")
	}
}

func TestBandwidthPreferenceEmerges(t *testing.T) {
	// Half the swarm is DSL, half institutional. With bandwidth-weighted
	// request scheduling plus uplink backpressure, most received bytes
	// must come from high-bandwidth peers — the Table IV BW row. Rate
	// estimates need a warm-up, so only steady state (after 60s) counts.
	w := buildWorld(t, 8, 30, 2) // every 2nd peer slow
	w.startAll()
	w.eng.Run(time.Minute)
	baseline := make(map[[2]PeerID]int64, len(w.net.Ledger.VideoByPair))
	for pair, bytes := range w.net.Ledger.VideoByPair {
		baseline[pair] = bytes
	}
	w.eng.Run(3 * time.Minute)

	var fromFast, fromSlow int64
	for pair, bytes := range w.net.Ledger.VideoByPair {
		src := w.net.NodeByID(pair[0])
		if src.IsSource() {
			continue
		}
		delta := bytes - baseline[pair]
		if src.Link.HighBandwidth() {
			fromFast += delta
		} else {
			fromSlow += delta
		}
	}
	total := fromFast + fromSlow
	if total == 0 {
		t.Fatal("no peer-to-peer video at all")
	}
	frac := float64(fromFast) / float64(total)
	if frac < 0.7 {
		t.Errorf("high-bw peers supplied only %.2f of steady-state bytes, want > 0.7", frac)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.PartnerTarget = 0 },
		func(p *Profile) { p.MaxPartners = p.PartnerTarget - 1 },
		func(p *Profile) { p.ContactInterval = 0 },
		func(p *Profile) { p.PullDelay = 0 },
		func(p *Profile) { p.RequestTimeout = 0 },
		func(p *Profile) { p.DiscoveryWeight = nil },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid profile accepted", i)
				}
			}()
			p.validate()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.BufferWindow = 0 },
		func(c *Config) { c.TrackerBatch = 0 },
		func(c *Config) { c.UplinkBusyCap = 0 },
	} {
		c := testConfig()
		mutate(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			c.validate()
		}()
	}
}

func TestSecondSourcePanics(t *testing.T) {
	w := buildWorld(t, 9, 2, 0)
	h := w.peers[0].Host
	defer func() {
		if recover() == nil {
			t.Error("second source should panic")
		}
	}()
	w.net.AddSource(h, access.LAN100, testProfile())
}

func TestDoubleJoinLeaveIdempotent(t *testing.T) {
	w := buildWorld(t, 10, 4, 0)
	w.eng.Schedule(0, w.src.Join)
	p := w.peers[0]
	w.eng.Schedule(time.Second, p.Join)
	w.eng.Schedule(2*time.Second, p.Join) // second join is a no-op
	w.eng.Run(10 * time.Second)
	if w.net.OnlineCount() != 2 {
		t.Errorf("OnlineCount = %d, want 2", w.net.OnlineCount())
	}
	p.Leave()
	p.Leave() // second leave is a no-op
	if w.net.OnlineCount() != 1 {
		t.Errorf("OnlineCount after leaves = %d, want 1", w.net.OnlineCount())
	}
}

func BenchmarkSwarm20Peers30s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := buildWorld(b, int64(i+1), 20, 4)
		w.startAll()
		w.eng.Run(30 * time.Second)
	}
}
