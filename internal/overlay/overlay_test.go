package overlay

import (
	"testing"
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/packet"
	"napawine/internal/policy"
	"napawine/internal/sim"
	"napawine/internal/sniffer"
	"napawine/internal/topology"
	"napawine/internal/units"
)

// testProfile is a small, fast-converging generic client.
func testProfile() *Profile {
	return &Profile{
		Name:              "test",
		PartnerTarget:     8,
		MaxPartners:       14,
		DropInterval:      15 * time.Second,
		ContactInterval:   2 * time.Second,
		NeighborListMax:   50,
		SignalingInterval: 1 * time.Second,
		KeepaliveFanout:   1,
		ScheduleInterval:  500 * time.Millisecond,
		PullDelay:         4,
		PullWindow:        6,
		MaxInflight:       4,
		RequestTimeout:    4 * time.Second,
		DiscoveryWeight:   policy.Uniform{},
		RequestWeight: policy.BandwidthBias{
			Ref: 384 * units.Kbps, Alpha: 2, Floor: 768 * units.Kbps,
		},
		RetainWeight: policy.BandwidthBias{
			Ref: 384 * units.Kbps, Alpha: 1, Floor: 192 * units.Kbps,
		},
	}
}

func testConfig() Config {
	return Config{
		Calendar:      chunkstream.NewCalendar(384*units.Kbps, 48*units.KB),
		BufferWindow:  64,
		TrackerBatch:  12,
		JitterMax:     2 * time.Millisecond,
		UplinkBusyCap: 3 * time.Second,
	}
}

// world is a reusable miniature swarm fixture.
type world struct {
	eng   *sim.Engine
	topo  *topology.Topology
	net   *Network
	src   *Node
	peers []*Node
}

func buildWorld(t testing.TB, seed int64, nPeers int, slowEvery int) *world {
	t.Helper()
	return buildWorldCfg(t, seed, nPeers, slowEvery, testConfig())
}

func buildWorldCfg(t testing.TB, seed int64, nPeers int, slowEvery int, cfg Config) *world {
	t.Helper()
	b := topology.NewBuilder(seed)
	b.AddCountry("CN", topology.Asia)
	b.AddCountry("IT", topology.Europe)
	var subs []topology.SubnetID
	for i := 0; i < 6; i++ {
		cc := topology.CC("CN")
		if i >= 4 {
			cc = "IT"
		}
		asn := b.AddAS(cc)
		subs = append(subs, b.AddSubnet(asn), b.AddSubnet(asn))
	}
	topo := b.Build()
	eng := sim.New(seed)
	net := New(eng, topo, cfg)

	srcHost, err := topo.NewHost(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	src := net.AddSource(srcHost, access.LAN100, testProfile())

	var peers []*Node
	for i := 0; i < nPeers; i++ {
		h, err := topo.NewHost(subs[(i+1)%len(subs)])
		if err != nil {
			t.Fatal(err)
		}
		link := access.LAN100
		if slowEvery > 0 && i%slowEvery == 0 {
			link = access.DSL6
		}
		peers = append(peers, net.AddNode(h, link, testProfile()))
	}
	return &world{eng: eng, topo: topo, net: net, src: src, peers: peers}
}

func (w *world) startAll() {
	w.eng.Schedule(0, w.src.Join)
	for i, p := range w.peers {
		p := p
		w.eng.Schedule(time.Duration(i)*200*time.Millisecond, p.Join)
	}
}

func TestSwarmSustainsStream(t *testing.T) {
	w := buildWorld(t, 1, 24, 4)
	w.startAll()
	w.eng.Run(90 * time.Second)

	okCount := 0
	for _, p := range w.peers {
		if !p.Online() {
			t.Fatalf("peer %d offline unexpectedly", p.ID)
		}
		if p.Continuity() > 0.85 {
			okCount++
		}
	}
	if okCount < len(w.peers)*3/4 {
		t.Errorf("only %d/%d peers achieved continuity > 0.85", okCount, len(w.peers))
	}
	var totalVideo int64
	for _, v := range w.net.Ledger.VideoRx {
		totalVideo += v
	}
	if totalVideo == 0 {
		t.Fatal("no video moved at all")
	}
}

func TestPartnerBoundsRespected(t *testing.T) {
	w := buildWorld(t, 2, 30, 0)
	w.startAll()
	w.eng.Run(60 * time.Second)
	for _, p := range append(w.peers, w.src) {
		if got := p.Partners(); got > p.Profile.MaxPartners {
			t.Errorf("peer %d holds %d partners, max %d", p.ID, got, p.Profile.MaxPartners)
		}
	}
}

func TestProbeCapturesPlausibleTraffic(t *testing.T) {
	w := buildWorld(t, 3, 20, 4)
	probe := w.peers[3]
	cap := w.net.AttachSniffer(probe)
	w.startAll()
	w.eng.Run(60 * time.Second)
	w.net.FlushCaptures()

	if cap.Count() == 0 {
		t.Fatal("probe saw no packets")
	}
	// The probe must have seen both video and signaling, in both
	// directions, and the ledger must agree that it received video.
	if w.net.Ledger.VideoRx[probe.ID] == 0 {
		t.Error("probe received no video per ledger")
	}
}

func TestSnifferRecordsMatchLedgerVideo(t *testing.T) {
	w := buildWorld(t, 4, 16, 0)
	probe := w.peers[0]
	w.net.AttachSniffer(probe)
	var inVideo, outVideo int64
	probe.capture.Attach(sniffer.ConsumerFunc(func(r packet.Record) {
		if r.Kind != packet.Video {
			return
		}
		if r.Dst == probe.Host.Addr {
			inVideo += int64(r.Size)
		} else {
			outVideo += int64(r.Size)
		}
	}))
	w.startAll()
	w.eng.Run(45 * time.Second)
	w.net.FlushCaptures()

	// Chunks still in flight at the horizon were ledgered at serve time
	// but their packets may land after the run; captured video can lag the
	// ledger slightly, never exceed it.
	ledgerRx := w.net.Ledger.VideoRx[probe.ID]
	if inVideo > ledgerRx {
		t.Errorf("captured video in (%d) exceeds ledger (%d)", inVideo, ledgerRx)
	}
	if ledgerRx > 0 && inVideo < ledgerRx/2 {
		t.Errorf("captured video in (%d) under half of ledger (%d)", inVideo, ledgerRx)
	}
	ledgerTx := w.net.Ledger.VideoTx[probe.ID]
	if outVideo > ledgerTx {
		t.Errorf("captured video out (%d) exceeds ledger (%d)", outVideo, ledgerTx)
	}
}

func TestFirewalledPairNeverPartners(t *testing.T) {
	w := buildWorld(t, 5, 10, 0)
	fw1 := w.peers[0]
	fw2 := w.peers[1]
	fw1.Link.Firewall = true
	fw2.Link.Firewall = true
	w.startAll()
	w.eng.Run(60 * time.Second)
	if _, ok := fw1.partners[fw2.ID]; ok {
		t.Error("two firewalled peers formed a partnership")
	}
	if _, ok := fw2.partners[fw1.ID]; ok {
		t.Error("two firewalled peers formed a partnership (reverse)")
	}
}

func TestChurnCycleSurvives(t *testing.T) {
	w := buildWorld(t, 6, 20, 4)
	w.eng.Schedule(0, w.src.Join)
	for i, p := range w.peers {
		if i < 10 {
			p.ScheduleChurn(time.Duration(i)*500*time.Millisecond, 20*time.Second, 5*time.Second)
		} else {
			p := p
			w.eng.Schedule(time.Duration(i)*200*time.Millisecond, p.Join)
		}
	}
	w.eng.Run(2 * time.Minute)
	// The network must remain functional: stable peers keep streaming.
	streaming := 0
	for _, p := range w.peers[10:] {
		if p.Continuity() > 0.7 {
			streaming++
		}
	}
	if streaming < 5 {
		t.Errorf("only %d/10 stable peers stream through churn", streaming)
	}
}

func TestLeaveStopsActivity(t *testing.T) {
	w := buildWorld(t, 7, 12, 0)
	w.startAll()
	w.eng.Run(30 * time.Second)
	victim := w.peers[5]
	rxAtLeave := w.net.Ledger.VideoRx[victim.ID]
	victim.Leave()
	if victim.Online() {
		t.Fatal("Leave did not mark offline")
	}
	w.eng.Run(60 * time.Second)
	rxAfter := w.net.Ledger.VideoRx[victim.ID]
	// In-flight chunks ledgered before the leave may still account, but no
	// new requests can be issued; allow at most a couple of stragglers.
	if rxAfter-rxAtLeave > 4*48_000 {
		t.Errorf("offline peer kept receiving: %d bytes after leave", rxAfter-rxAtLeave)
	}
	if w.net.OnlineCount() != 12 { // 11 peers + source
		t.Errorf("OnlineCount = %d, want 12", w.net.OnlineCount())
	}
}

func TestDeterministicLedger(t *testing.T) {
	run := func() (int64, uint64) {
		w := buildWorld(t, 42, 18, 3)
		w.startAll()
		w.eng.Run(45 * time.Second)
		var total int64
		for _, v := range w.net.Ledger.VideoRx {
			total += v
		}
		return total, w.eng.Processed()
	}
	v1, e1 := run()
	v2, e2 := run()
	if v1 != v2 || e1 != e2 {
		t.Errorf("same seed diverged: bytes %d vs %d, events %d vs %d", v1, v2, e1, e2)
	}
	if v1 == 0 {
		t.Error("deterministic run moved no video")
	}
}

func TestBandwidthPreferenceEmerges(t *testing.T) {
	// Half the swarm is DSL, half institutional. With bandwidth-weighted
	// request scheduling plus uplink backpressure, most received bytes
	// must come from high-bandwidth peers — the Table IV BW row. Rate
	// estimates need a warm-up, so only steady state (after 60s) counts.
	w := buildWorld(t, 8, 30, 2) // every 2nd peer slow
	w.startAll()
	w.eng.Run(time.Minute)
	baseline := make(map[[2]PeerID]int64, len(w.net.Ledger.VideoByPair))
	for pair, bytes := range w.net.Ledger.VideoByPair {
		baseline[pair] = bytes
	}
	w.eng.Run(3 * time.Minute)

	var fromFast, fromSlow int64
	for pair, bytes := range w.net.Ledger.VideoByPair {
		src := w.net.NodeByID(pair[0])
		if src.IsSource() {
			continue
		}
		delta := bytes - baseline[pair]
		if src.Link.HighBandwidth() {
			fromFast += delta
		} else {
			fromSlow += delta
		}
	}
	total := fromFast + fromSlow
	if total == 0 {
		t.Fatal("no peer-to-peer video at all")
	}
	frac := float64(fromFast) / float64(total)
	if frac < 0.7 {
		t.Errorf("high-bw peers supplied only %.2f of steady-state bytes, want > 0.7", frac)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.PartnerTarget = 0 },
		func(p *Profile) { p.MaxPartners = p.PartnerTarget - 1 },
		func(p *Profile) { p.ContactInterval = 0 },
		func(p *Profile) { p.PullDelay = 0 },
		func(p *Profile) { p.RequestTimeout = 0 },
		func(p *Profile) { p.DiscoveryWeight = nil },
	}
	for i, mutate := range bad {
		p := testProfile()
		mutate(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid profile accepted", i)
				}
			}()
			p.validate()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.BufferWindow = 0 },
		func(c *Config) { c.TrackerBatch = 0 },
		func(c *Config) { c.UplinkBusyCap = 0 },
	} {
		c := testConfig()
		mutate(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config accepted", i)
				}
			}()
			c.validate()
		}()
	}
}

func TestSecondSourcePanics(t *testing.T) {
	w := buildWorld(t, 9, 2, 0)
	h := w.peers[0].Host
	defer func() {
		if recover() == nil {
			t.Error("second source should panic")
		}
	}()
	w.net.AddSource(h, access.LAN100, testProfile())
}

func TestDoubleJoinLeaveIdempotent(t *testing.T) {
	w := buildWorld(t, 10, 4, 0)
	w.eng.Schedule(0, w.src.Join)
	p := w.peers[0]
	w.eng.Schedule(time.Second, p.Join)
	w.eng.Schedule(2*time.Second, p.Join) // second join is a no-op
	w.eng.Run(10 * time.Second)
	if w.net.OnlineCount() != 2 {
		t.Errorf("OnlineCount = %d, want 2", w.net.OnlineCount())
	}
	p.Leave()
	p.Leave() // second leave is a no-op
	if w.net.OnlineCount() != 1 {
		t.Errorf("OnlineCount after leaves = %d, want 1", w.net.OnlineCount())
	}
}

func BenchmarkSwarm20Peers30s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := buildWorld(b, int64(i+1), 20, 4)
		w.startAll()
		w.eng.Run(30 * time.Second)
	}
}

// TestRejoinAfterOutageResumesCleanly covers the scenario subsystem's
// hardest overlay contract: a peer that leaves during a tracker outage and
// rejoins afterwards must re-register with the tracker, rebuild a partner
// set and resume streaming — and its first session must leave no ghost
// activity behind (a left peer emits nothing once its stale ticks drain).
func TestRejoinAfterOutageResumesCleanly(t *testing.T) {
	w := buildWorld(t, 11, 20, 4)
	w.startAll()
	w.eng.Run(30 * time.Second)

	victim := w.peers[4]
	w.net.SetTrackerPaused(true)
	victim.Leave()
	if victim.Online() || victim.Partners() != 0 {
		t.Fatal("Leave did not tear the victim down")
	}

	// Drain the one no-op firing each cancelled periodic tick gets, then
	// the victim must be completely silent: no signaling, no video.
	w.eng.Run(50 * time.Second)
	sigAtRest := w.net.Ledger.SignalTx[victim.ID]
	rxAtRest := w.net.Ledger.VideoRx[victim.ID]
	w.eng.Run(40 * time.Second)
	if got := w.net.Ledger.SignalTx[victim.ID]; got != sigAtRest {
		t.Errorf("ghost signaling after Leave: %d bytes", got-sigAtRest)
	}
	if got := w.net.Ledger.VideoRx[victim.ID]; got != rxAtRest {
		t.Errorf("ghost video after Leave: %d bytes", got-rxAtRest)
	}

	// Outage over, the viewer comes back.
	w.net.SetTrackerPaused(false)
	victim.Join()
	w.eng.Run(60 * time.Second)
	if !victim.Online() {
		t.Fatal("victim not online after rejoin")
	}
	if victim.Partners() == 0 {
		t.Error("rejoined victim rebuilt no partner set (tracker re-registration failed?)")
	}
	grew := w.net.Ledger.VideoRx[victim.ID] - rxAtRest
	if grew < 10*48_000 {
		t.Errorf("rejoined victim resumed only %d video bytes", grew)
	}
	if c := victim.Continuity(); c < 0.7 {
		t.Errorf("rejoined victim continuity %.3f, want > 0.7", c)
	}
}

// TestRejoinProcessedDeterministic replays the leave-during-outage /
// rejoin dance twice: ghost timers from the first session would perturb the
// event count, so byte-identical Processed() across replays (and a stable
// pending queue) is the regression guard.
func TestRejoinProcessedDeterministic(t *testing.T) {
	dance := func() (uint64, int) {
		w := buildWorld(t, 12, 16, 4)
		w.startAll()
		victim := w.peers[2]
		w.eng.Schedule(25*time.Second, func() {
			w.net.SetTrackerPaused(true)
			victim.Leave()
		})
		w.eng.Schedule(55*time.Second, func() {
			w.net.SetTrackerPaused(false)
			victim.Join()
		})
		w.eng.Run(2 * time.Minute)
		return w.eng.Processed(), w.eng.Pending()
	}
	p1, q1 := dance()
	p2, q2 := dance()
	if p1 != p2 || q1 != q2 {
		t.Errorf("rejoin dance diverged: processed %d/%d, pending %d/%d", p1, p2, q1, q2)
	}
}

// TestBlockDefersJoin covers the partition hook: a blocked node must stay
// offline through every Join attempt — scheduled arrivals and churn cycles
// alike — and a join attempted during the window must fire at Unblock, so
// an arrival scheduled inside a partition connects when the network heals
// instead of being lost.
func TestBlockDefersJoin(t *testing.T) {
	w := buildWorld(t, 13, 8, 0)
	w.startAll()
	w.eng.Run(20 * time.Second)
	nd := w.peers[0]
	nd.Block()
	if nd.Online() {
		t.Fatal("Block left the node online")
	}
	nd.Join() // must be deferred, not executed
	if nd.Online() {
		t.Fatal("Join succeeded while blocked")
	}
	w.eng.Run(30 * time.Second)
	if nd.Online() {
		t.Fatal("blocked node resurfaced")
	}
	nd.Unblock() // honours the deferred join
	w.eng.Run(30 * time.Second)
	if !nd.Online() || nd.Partners() == 0 {
		t.Error("deferred join did not fire at Unblock and rebuild partners")
	}

	// A node that never attempted to join while blocked stays offline.
	idle := w.peers[1]
	idle.Leave()
	idle.Block()
	idle.Unblock()
	if idle.Online() {
		t.Error("Unblock resurrected a node with no deferred join")
	}

	// A deferred join whose session ended (Leave) before Unblock is void.
	gone := w.peers[2]
	gone.Block()
	gone.Join()
	gone.Leave()
	gone.Unblock()
	if gone.Online() {
		t.Error("Unblock honoured a join whose session already ended")
	}
}

// TestSetLinkScaleIsAbsolute: factors apply to the factory rates, not
// cumulatively, and factor 1 restores them exactly.
func TestSetLinkScaleIsAbsolute(t *testing.T) {
	w := buildWorld(t, 14, 2, 0)
	nd := w.peers[0]
	orig := nd.Link.Spec
	nd.SetLinkScale(0.5)
	nd.SetLinkScale(0.5)
	if nd.Link.Spec.Up != units.BitRate(float64(orig.Up)*0.5) {
		t.Errorf("two 0.5 scales compounded: %v", nd.Link.Spec.Up)
	}
	nd.SetLinkScale(1)
	if nd.Link.Spec != orig {
		t.Errorf("scale 1 did not restore factory rates: %v vs %v", nd.Link.Spec, orig)
	}
	if nd.up.Rate() != orig.Up || nd.down.Rate() != orig.Down {
		t.Errorf("ports not restored: %v/%v", nd.up.Rate(), nd.down.Rate())
	}
}

// TestRetireIsPermanent: a retired node refuses every later Join, including
// its own churn cycle's — the overlay contract behind a scenario exodus.
func TestRetireIsPermanent(t *testing.T) {
	w := buildWorld(t, 15, 10, 0)
	w.eng.Schedule(0, w.src.Join)
	churner := w.peers[0]
	churner.ScheduleChurn(0, 10*time.Second, 3*time.Second)
	w.eng.Run(15 * time.Second)
	churner.Retire()
	if churner.Online() || !churner.Retired() {
		t.Fatal("Retire did not take the node down")
	}
	w.eng.Run(2 * time.Minute) // many churn cycles' worth
	if churner.Online() {
		t.Error("churn cycle resurrected a retired node")
	}
	churner.Join() // explicit joins are refused too
	if churner.Online() {
		t.Error("Join resurrected a retired node")
	}
}

// TestRetireStopsChurnChain: a retired node's churn loop must stop
// rescheduling itself — ghost cycles would burn events and RNG draws on
// refused joins for the rest of the run.
func TestRetireStopsChurnChain(t *testing.T) {
	w := buildWorld(t, 16, 1, 0)
	nd := w.peers[0]
	nd.ScheduleChurn(0, 5*time.Second, 2*time.Second)
	w.eng.Run(12 * time.Second)
	nd.Retire()
	// The in-flight chain segment drains (bounded by the 10×mean cap);
	// after that the engine must be empty — the source never joined, so
	// the churn chain was the only event producer.
	w.eng.Run(10 * time.Minute)
	if p := w.eng.Pending(); p != 0 {
		t.Errorf("retired node still has %d events scheduled", p)
	}
}

// TestPromoteSourceHandsOverOrigin: the source-handoff hook behind scenario
// failovers — the old source stops counting as origin, the backup natively
// holds the feed and the swarm keeps pulling from it.
func TestPromoteSourceHandsOverOrigin(t *testing.T) {
	w := buildWorld(t, 17, 16, 0)
	w.startAll()
	w.eng.Run(20 * time.Second)
	backup := w.peers[0]
	w.eng.Schedule(time.Second, func() {
		w.src.Retire()
		w.net.PromoteSource(backup)
	})
	w.eng.Run(25 * time.Second)
	if w.net.Source() != backup || !backup.IsSource() {
		t.Fatal("backup not promoted")
	}
	if w.src.IsSource() {
		t.Error("old source still counts as origin")
	}
	if backup.Continuity() != 1 {
		t.Error("a source must report perfect continuity")
	}
	live := w.net.Cfg.Calendar.LatestAt(w.eng.Now())
	if !backup.hasChunk(live, w.eng.Now()) {
		t.Error("promoted source does not hold the live edge")
	}
	served := w.net.Ledger.ChunksServed[backup.ID]
	w.eng.Run(60 * time.Second)
	if w.net.Ledger.ChunksServed[backup.ID] <= served {
		t.Error("promoted source served no chunks")
	}
}

// TestPromoteSourceRevivesOfflineBackup: promoting a churned-out (or even
// retired) backup brings it online — the operator turned the injection
// point on regardless of what the viewer behind it did.
func TestPromoteSourceRevivesOfflineBackup(t *testing.T) {
	w := buildWorld(t, 18, 4, 0)
	w.startAll()
	w.eng.Run(5 * time.Second)
	backup := w.peers[1]
	backup.Retire()
	if backup.Online() {
		t.Fatal("setup: backup should be offline")
	}
	w.net.PromoteSource(backup)
	if !backup.Online() || !backup.IsSource() || backup.Retired() {
		t.Errorf("promotion must revive the backup: online=%v source=%v retired=%v",
			backup.Online(), backup.IsSource(), backup.Retired())
	}
	// Idempotent: promoting the current source is a no-op.
	w.net.PromoteSource(backup)
	if w.net.Source() != backup {
		t.Error("re-promotion changed the source")
	}
}

func TestPromoteNilSourcePanics(t *testing.T) {
	w := buildWorld(t, 19, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("PromoteSource(nil) did not panic")
		}
	}()
	w.net.PromoteSource(nil)
}

// TestSetChurnScaleSpeedsUpCycling: scaling the churn rate must produce
// more on/off cycles over the same horizon, and the default scale is 1.
// Fixed seeds; both runs are deterministic, transitions counted by a 1 Hz
// online-state sampler.
func TestSetChurnScaleSpeedsUpCycling(t *testing.T) {
	cycles := func(scale float64) int {
		w := buildWorld(t, 20, 1, 0)
		nd := w.peers[0]
		if scale != 0 {
			nd.SetChurnScale(scale)
		}
		nd.ScheduleChurn(0, 60*time.Second, 20*time.Second)
		transitions, prev := 0, false
		w.eng.Every(time.Second, time.Second, 0, func() {
			if cur := nd.Online(); cur != prev {
				transitions++
				prev = cur
			}
		})
		w.eng.Run(20 * time.Minute)
		return transitions
	}
	base, fast := cycles(0), cycles(8)
	if fast <= 2*base {
		t.Errorf("scale 8 produced %d on/off transitions vs %d unscaled; faster churn must cycle much more", fast, base)
	}
	if nd := buildWorld(t, 21, 1, 0).peers[0]; nd.ChurnScale() != 1 {
		t.Errorf("default churn scale = %v, want 1", nd.ChurnScale())
	}
}

func TestSetChurnScaleRejectsNonPositive(t *testing.T) {
	w := buildWorld(t, 22, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("SetChurnScale(0) did not panic")
		}
	}()
	w.peers[0].SetChurnScale(0)
}

// TestLeanLedgerMatchesFullRun pins the Config.LeanLedger contract: lean
// accounting must not perturb the simulation (the accumulation methods
// touch no RNG and schedule nothing, so a lean run with the same seed
// processes the identical event sequence), every per-peer and per-pair map
// must stay nil, and the swarm-wide scalars a lean run keeps must equal
// the sums of the maps a full run maintains.
func TestLeanLedgerMatchesFullRun(t *testing.T) {
	run := func(lean bool) (*world, uint64) {
		cfg := testConfig()
		cfg.LeanLedger = lean
		w := buildWorldCfg(t, 7, 20, 3, cfg)
		w.startAll()
		w.eng.Run(60 * time.Second)
		return w, w.eng.Processed()
	}
	full, fullEvents := run(false)
	lean, leanEvents := run(true)

	if fullEvents != leanEvents {
		t.Fatalf("lean run diverged: %d events vs %d", leanEvents, fullEvents)
	}
	fl, ll := full.net.Ledger, lean.net.Ledger
	if fl.Lean() || !ll.Lean() {
		t.Fatalf("Lean() flags wrong: full=%v lean=%v", fl.Lean(), ll.Lean())
	}

	// Scalars must be identical across modes.
	type scalars struct {
		video, intra, signal, served, rej, to, dchunks, srcTx int64
		dsum                                                  time.Duration
	}
	get := func(l *Ledger) scalars {
		return scalars{l.VideoTotal, l.VideoIntraAS, l.SignalTotal,
			l.ChunksServedTotal, l.RejectionsTotal, l.TimeoutsTotal,
			l.DiffusionChunks, l.SourceVideoTx, l.DiffusionDelaySum}
	}
	if get(fl) != get(ll) {
		t.Errorf("scalar totals diverged:\n full %+v\n lean %+v", get(fl), get(ll))
	}
	if ll.VideoTotal == 0 || ll.ChunksServedTotal == 0 {
		t.Error("lean run moved no video; totals not exercised")
	}

	// Lean mode allocates no per-peer maps at all.
	if ll.VideoByPair != nil || ll.VideoRx != nil || ll.VideoTx != nil ||
		ll.SignalRx != nil || ll.SignalTx != nil || ll.ChunksServed != nil ||
		ll.Rejections != nil || ll.Timeouts != nil {
		t.Error("lean ledger allocated per-peer maps")
	}

	// Per-AS accounting is O(ASes), not O(peers), so it survives lean mode
	// and must be byte-identical across modes.
	if ll.VideoRxByAS == nil || ll.VideoIntraByAS == nil {
		t.Fatal("lean ledger dropped per-AS maps; per-AS series need them in both modes")
	}
	if len(fl.VideoRxByAS) != len(ll.VideoRxByAS) {
		t.Errorf("per-AS rx map sizes diverged: full=%d lean=%d", len(fl.VideoRxByAS), len(ll.VideoRxByAS))
	}
	sumAS := func(m map[topology.ASN]int64) int64 {
		var s int64
		for _, v := range m {
			s += v
		}
		return s
	}
	for as, v := range fl.VideoRxByAS {
		if ll.VideoRxByAS[as] != v {
			t.Errorf("AS %d rx diverged: full=%d lean=%d", as, v, ll.VideoRxByAS[as])
		}
	}
	for as, v := range fl.VideoIntraByAS {
		if ll.VideoIntraByAS[as] != v {
			t.Errorf("AS %d intra diverged: full=%d lean=%d", as, v, ll.VideoIntraByAS[as])
		}
		if v > fl.VideoRxByAS[as] {
			t.Errorf("AS %d intra %d exceeds rx %d", as, v, fl.VideoRxByAS[as])
		}
	}
	if sumAS(fl.VideoRxByAS) != fl.VideoTotal {
		t.Errorf("VideoRxByAS sums to %d, VideoTotal %d", sumAS(fl.VideoRxByAS), fl.VideoTotal)
	}
	if sumAS(fl.VideoIntraByAS) != fl.VideoIntraAS {
		t.Errorf("VideoIntraByAS sums to %d, VideoIntraAS %d", sumAS(fl.VideoIntraByAS), fl.VideoIntraAS)
	}

	// Full-mode maps sum to the scalars both modes maintain.
	sum := func(m map[PeerID]int64) int64 {
		var s int64
		for _, v := range m {
			s += v
		}
		return s
	}
	var pairSum int64
	for _, v := range fl.VideoByPair {
		pairSum += v
	}
	if pairSum != fl.VideoTotal || sum(fl.VideoRx) != fl.VideoTotal || sum(fl.VideoTx) != fl.VideoTotal {
		t.Errorf("video maps disagree with VideoTotal=%d: pair=%d rx=%d tx=%d",
			fl.VideoTotal, pairSum, sum(fl.VideoRx), sum(fl.VideoTx))
	}
	if sum(fl.SignalRx) != fl.SignalTotal || sum(fl.SignalTx) != fl.SignalTotal {
		t.Errorf("signal maps disagree with SignalTotal=%d: rx=%d tx=%d",
			fl.SignalTotal, sum(fl.SignalRx), sum(fl.SignalTx))
	}
	if sum(fl.ChunksServed) != fl.ChunksServedTotal {
		t.Errorf("ChunksServed sums to %d, total %d", sum(fl.ChunksServed), fl.ChunksServedTotal)
	}
	if sum(fl.Rejections) != fl.RejectionsTotal {
		t.Errorf("Rejections sums to %d, total %d", sum(fl.Rejections), fl.RejectionsTotal)
	}
	if sum(fl.Timeouts) != fl.TimeoutsTotal {
		t.Errorf("Timeouts sums to %d, total %d", sum(fl.Timeouts), fl.TimeoutsTotal)
	}
}
