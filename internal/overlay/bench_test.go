package overlay

import (
	"testing"
	"time"

	"napawine/internal/chunkstream"
)

// benchSwarm warms a miniature swarm into steady state so the hot-path
// micro-benchmarks below measure selection against realistic partner sets,
// buffer maps and rate estimates rather than empty structures.
func benchSwarm(b *testing.B) *world {
	b.Helper()
	w := buildWorld(b, 1, 40, 4)
	w.startAll()
	w.eng.Run(45 * time.Second)
	return w
}

// pickPeer returns an online, well-connected non-source peer.
func pickPeer(b *testing.B, w *world) *Node {
	b.Helper()
	var best *Node
	for _, p := range w.peers {
		if p.Online() && (best == nil || p.Partners() > best.Partners()) {
			best = p
		}
	}
	if best == nil || best.Partners() == 0 {
		b.Fatal("warmup produced no connected peer")
	}
	return best
}

// BenchmarkRequestChunk measures one per-chunk selection round: walk the
// id-ordered partner index, assemble the advertising candidates with their
// cached request weights, and draw one weighted pick. This ran four
// allocations deep before the incremental index (fresh sorted slice,
// candidate slice, order slice, weight slice, boxed pending request);
// steady state is now allocation-free apart from the scheduled response
// event.
func BenchmarkRequestChunk(b *testing.B) {
	w := benchSwarm(b)
	nd := pickPeer(b, w)
	now := w.eng.Now()
	live := w.net.Cfg.Calendar.LatestAt(now)
	// A chunk in the pull window some partner advertises; the exact id
	// matters less than the candidate scan it triggers.
	id := live - chunkstream.ChunkID(nd.Profile.PullDelay)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if nd.requestChunk(id, now) {
			delete(nd.inflight, id)
		}
	}
}

// BenchmarkChurnTick measures one partner-churn round: sweep dead
// partners, pick the worst by cached retain weight, drop it, query the
// tracker and adopt replacements through the discovery sampler — the full
// adaptation loop, previously dominated by per-call sorting and map
// allocation.
func BenchmarkChurnTick(b *testing.B) {
	w := benchSwarm(b)
	nd := pickPeer(b, w)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nd.churnTick()
	}
}
