package overlay

import (
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/packet"
	"napawine/internal/units"
)

// recordAt spools one packet record at a probe-equipped node.
func recordAt(n *Node, r packet.Record) {
	if n.spool != nil {
		n.spool.Add(r)
	}
}

// ttlAtReceiver computes the TTL a packet from `from` carries when it
// reaches `to`: the Windows initial TTL minus the modelled router hops.
func (net *Network) ttlAtReceiver(from, to *Node) uint8 {
	hops := net.Topo.HopCount(from.Host, to.Host)
	if hops >= packet.InitialTTL {
		return 0
	}
	return uint8(packet.InitialTTL - hops)
}

// sendSignal models a single small control packet from a to b, emitting
// records at whichever endpoints carry sniffers and accounting ground
// truth. Control packets ride above the FIFO data queues (they are tiny and
// real clients interleave them), so only propagation delay applies. Both
// endpoints must live on the same shard — cross-shard control flows through
// signalCross (shard.go).
func (net *Network) sendSignal(a, b *Node, size units.ByteSize) {
	if !a.online || !b.online {
		return
	}
	net.sendControl(a, b, size, packet.Signaling)
}

// sendControl runs on the shard both endpoints share: its clock stamps the
// records, its RNG stream draws the jitter, its ledger takes the
// accounting. With one shard that is the network's engine and ledger.
func (net *Network) sendControl(a, b *Node, size units.ByteSize, kind packet.Kind) {
	sc := a.sc
	now := sc.eng.Now()
	owd := net.Topo.OneWayDelay(a.Host, b.Host)
	if net.Cfg.JitterMax > 0 {
		owd += time.Duration(sc.eng.Rand().Int63n(int64(net.Cfg.JitterMax)))
	}
	arrive := now.Add(owd)
	recordAt(a, packet.Record{
		TS: now, Src: a.Host.Addr, Dst: b.Host.Addr,
		Size: size, TTL: packet.InitialTTL, Kind: kind,
	})
	recordAt(b, packet.Record{
		TS: arrive, Src: a.Host.Addr, Dst: b.Host.Addr,
		Size: size, TTL: net.ttlAtReceiver(a, b), Kind: kind,
	})
	if kind == packet.Signaling || kind == packet.Request {
		sc.ledger.signal(a.ID, b.ID, int64(size))
	}
}

// sendRequest carries a chunk request from nd to target and schedules the
// response at the responder after the one-way delay.
func (net *Network) sendRequest(nd, target *Node, id chunkstream.ChunkID) {
	if !sameShard(nd, target) {
		net.signalCross(nd, target, requestSize, packet.Request, func() {
			target.serveChunk(nd, id)
		})
		return
	}
	net.sendControl(nd, target, requestSize, packet.Request)
	owd := net.Topo.OneWayDelay(nd.Host, target.Host)
	nd.sc.eng.Schedule(owd, func() { target.serveChunk(nd, id) })
}

// rejectReply declines a request. On a shared shard the requester's
// handler runs synchronously (the serial engine's shortcut); across shards
// the reject packet carries the news after the pair's one-way delay.
func (nd *Node) rejectReply(requester *Node, id chunkstream.ChunkID) {
	net := nd.net
	nd.sc.ledger.rejection(nd.ID)
	if sameShard(nd, requester) {
		net.sendControl(nd, requester, rejectSize, packet.Signaling)
		requester.onReject(nd.ID, id)
		return
	}
	from := nd.ID
	net.signalCross(nd, requester, rejectSize, packet.Signaling, func() {
		requester.onReject(from, id)
	})
}

// serveChunk is the responder side of the pull protocol. The responder
// rejects when it no longer holds the chunk (stale advertisement), when its
// uplink backlog exceeds the busy cap, or when either side went offline —
// though a requester on another shard cannot be checked from here: its
// departure is discovered at delivery time instead, and the transfer still
// accounts as served, the way bytes already in flight toward a vanished
// peer are genuinely spent.
func (nd *Node) serveChunk(requester *Node, id chunkstream.ChunkID) {
	net := nd.net
	sc := nd.sc
	now := sc.eng.Now()
	local := sameShard(nd, requester)
	if !nd.online || (local && !requester.online) {
		return
	}
	if !nd.hasChunk(id, now) {
		nd.rejectReply(requester, id)
		return
	}
	if nd.up.Backlog(now) > net.Cfg.UplinkBusyCap {
		nd.rejectReply(requester, id)
		return
	}

	chunkSize := net.Cfg.Calendar.ChunkSize()
	// With a bounded queue the reservation can tail-drop: the chunk is
	// silently lost and the requester discovers it through its request
	// timeout, exactly how a dropped TCP-less transfer surfaces in the
	// wild. Without a queue limit TryReserve is Reserve.
	start, _, ok := nd.up.TryReserve(now, chunkSize)
	if !ok {
		sc.ledger.drop(nd.ID)
		return
	}
	sizes := access.PacketizeInto(sc.trainSizes, chunkSize)
	sc.trainSizes = sizes
	owd := net.Topo.OneWayDelay(nd.Host, requester.Host)
	departs, arrives := access.TrainInto(sc.trainDeparts, sc.trainArrives, start, sizes,
		nd.Link.Spec.Up, requester.Link.Spec.Down,
		owd, sc.eng.Rand(), net.Cfg.JitterMax)
	sc.trainDeparts, sc.trainArrives = departs, arrives

	// Materialize per-packet records at whichever ends are probes.
	if nd.spool != nil {
		for i, sz := range sizes {
			recordAt(nd, packet.Record{
				TS: departs[i], Src: nd.Host.Addr, Dst: requester.Host.Addr,
				Size: sz, TTL: packet.InitialTTL, Kind: packet.Video,
			})
		}
	}

	sc.ledger.video(nd.ID, requester.ID, int64(chunkSize), requester.Host.AS, nd.Host.AS == requester.Host.AS)
	sc.ledger.chunkServed(nd.ID)
	if nd.isSource {
		sc.ledger.SourceVideoTx += int64(chunkSize)
	}

	last := arrives[len(arrives)-1]
	// The receiver estimates the partner's rate from goodput *during*
	// the burst (first to last packet), the way real clients sample
	// throughput. Using request-to-completion time instead would fold
	// the full RTT into the estimate and make nearby peers look faster
	// than equally provisioned distant ones — a proximity bias none of
	// the 2008 clients actually had (stop-and-wait is our simplification,
	// not theirs: they pipelined requests).
	burst := last.Sub(arrives[0])
	from := nd.ID

	if local {
		if requester.spool != nil {
			ttl := net.ttlAtReceiver(nd, requester)
			for i, sz := range sizes {
				recordAt(requester, packet.Record{
					TS: arrives[i], Src: nd.Host.Addr, Dst: requester.Host.Addr,
					Size: sz, TTL: ttl, Kind: packet.Video,
				})
			}
		}
		sc.eng.At(last, func() { requester.onChunkDelivered(from, id, chunkSize, burst) })
		return
	}

	// Cross-shard delivery: the rx records and the completion handler land
	// on the requester's shard. A probe's records materialize at
	// first-packet arrival — never behind a capture-flush cutoff, since
	// every record's timestamp is at or after its insertion instant, the
	// same property the serial path has.
	if requester.spool != nil {
		recs := make([]packet.Record, len(sizes))
		ttl := net.ttlAtReceiver(nd, requester)
		for i, sz := range sizes {
			recs[i] = packet.Record{
				TS: arrives[i], Src: nd.Host.Addr, Dst: requester.Host.Addr,
				Size: sz, TTL: ttl, Kind: packet.Video,
			}
		}
		net.crossSend(nd, requester, arrives[0], func() {
			if requester.online {
				for _, r := range recs {
					recordAt(requester, r)
				}
			}
			requester.sc.eng.At(last, func() { requester.onChunkDelivered(from, id, chunkSize, burst) })
		})
		return
	}
	net.crossSend(nd, requester, last, func() { requester.onChunkDelivered(from, id, chunkSize, burst) })
}

// onReject reacts to a responder declining a request: the pending entry is
// cleared so the next scheduler tick retries elsewhere, and the partner's
// standing decays, steering future requests toward less loaded (in
// practice: higher-capacity) peers.
func (nd *Node) onReject(from PeerID, id chunkstream.ChunkID) {
	if !nd.online {
		return
	}
	if req, ok := nd.inflight[id]; ok && req.from == from {
		delete(nd.inflight, id)
	}
	if p, ok := nd.partners[from]; ok {
		p.failures++
		p.info.EstRate = p.info.EstRate * 3 / 4
		nd.rescore(p)
	}
}

// onChunkDelivered completes a pull: the chunk enters the buffer map and
// the partner's delivery-rate estimate absorbs the burst-goodput sample.
func (nd *Node) onChunkDelivered(from PeerID, id chunkstream.ChunkID, size units.ByteSize, burst time.Duration) {
	if !nd.online {
		return
	}
	req, ok := nd.inflight[id]
	if ok && req.from == from {
		delete(nd.inflight, id)
	}
	if fresh := !nd.buf.Has(id); nd.buf.Set(id) && fresh {
		// First receipt of an in-window chunk: account its diffusion delay
		// (birth at the source calendar to arrival here) on the ledger.
		if now, born := nd.sc.eng.Now(), nd.net.Cfg.Calendar.BornAt(id); now >= born {
			nd.sc.ledger.DiffusionDelaySum += now.Sub(born)
			nd.sc.ledger.DiffusionChunks++
		}
	}
	if p, ok := nd.partners[from]; ok {
		p.failures = 0
		if nd.net.congestionOn() {
			// A successful delivery decays the observed-loss estimate and
			// lifts any standing backoff: the partner is reachable again.
			p.lossEWMA *= lossEWMARetain
			p.backoffUntil = 0
		}
		var sample units.BitRate
		if burst > 0 {
			sample = units.RateOf(size, burst)
		}
		if sample > 0 {
			if p.info.EstRate == 0 {
				p.info.EstRate = sample
			} else {
				// EWMA with 0.7 retention: smooth but responsive.
				p.info.EstRate = (p.info.EstRate*7 + sample*3) / 10
			}
			nd.rescore(p)
			if nd.rateMemory != nil {
				nd.rateMemory[from] = p.info.EstRate
			}
		}
	}
}
