package overlay

import (
	"time"

	"napawine/internal/access"
	"napawine/internal/chunkstream"
	"napawine/internal/packet"
	"napawine/internal/units"
)

// recordAt spools one packet record at a probe-equipped node.
func recordAt(n *Node, r packet.Record) {
	if n.spool != nil {
		n.spool.Add(r)
	}
}

// ttlAtReceiver computes the TTL a packet from `from` carries when it
// reaches `to`: the Windows initial TTL minus the modelled router hops.
func (net *Network) ttlAtReceiver(from, to *Node) uint8 {
	hops := net.Topo.HopCount(from.Host, to.Host)
	if hops >= packet.InitialTTL {
		return 0
	}
	return uint8(packet.InitialTTL - hops)
}

// sendSignal models a single small control packet from a to b, emitting
// records at whichever endpoints carry sniffers and accounting ground
// truth. Control packets ride above the FIFO data queues (they are tiny and
// real clients interleave them), so only propagation delay applies.
func (net *Network) sendSignal(a, b *Node, size units.ByteSize) {
	if !a.online || !b.online {
		return
	}
	net.sendControl(a, b, size, packet.Signaling)
}

func (net *Network) sendControl(a, b *Node, size units.ByteSize, kind packet.Kind) {
	now := net.Eng.Now()
	owd := net.Topo.OneWayDelay(a.Host, b.Host)
	if net.Cfg.JitterMax > 0 {
		owd += time.Duration(net.Eng.Rand().Int63n(int64(net.Cfg.JitterMax)))
	}
	arrive := now.Add(owd)
	recordAt(a, packet.Record{
		TS: now, Src: a.Host.Addr, Dst: b.Host.Addr,
		Size: size, TTL: packet.InitialTTL, Kind: kind,
	})
	recordAt(b, packet.Record{
		TS: arrive, Src: a.Host.Addr, Dst: b.Host.Addr,
		Size: size, TTL: net.ttlAtReceiver(a, b), Kind: kind,
	})
	if kind == packet.Signaling || kind == packet.Request {
		net.Ledger.signal(a.ID, b.ID, int64(size))
	}
}

// sendRequest carries a chunk request from nd to target and schedules the
// response at the responder after the one-way delay.
func (net *Network) sendRequest(nd, target *Node, id chunkstream.ChunkID) {
	net.sendControl(nd, target, requestSize, packet.Request)
	owd := net.Topo.OneWayDelay(nd.Host, target.Host)
	net.Eng.Schedule(owd, func() { target.serveChunk(nd, id) })
}

// serveChunk is the responder side of the pull protocol. The responder
// rejects when it no longer holds the chunk (stale advertisement), when its
// uplink backlog exceeds the busy cap, or when either side went offline.
func (nd *Node) serveChunk(requester *Node, id chunkstream.ChunkID) {
	net := nd.net
	now := net.Eng.Now()
	if !nd.online || !requester.online {
		return
	}
	if !nd.hasChunk(id, now) {
		net.sendControl(nd, requester, rejectSize, packet.Signaling)
		net.Ledger.rejection(nd.ID)
		requester.onReject(nd.ID, id)
		return
	}
	if nd.up.Backlog(now) > net.Cfg.UplinkBusyCap {
		net.sendControl(nd, requester, rejectSize, packet.Signaling)
		net.Ledger.rejection(nd.ID)
		requester.onReject(nd.ID, id)
		return
	}

	chunkSize := net.Cfg.Calendar.ChunkSize()
	start, _ := nd.up.Reserve(now, chunkSize)
	sizes := access.PacketizeInto(net.trainSizes, chunkSize)
	net.trainSizes = sizes
	owd := net.Topo.OneWayDelay(nd.Host, requester.Host)
	departs, arrives := access.TrainInto(net.trainDeparts, net.trainArrives, start, sizes,
		nd.Link.Spec.Up, requester.Link.Spec.Down,
		owd, net.Eng.Rand(), net.Cfg.JitterMax)
	net.trainDeparts, net.trainArrives = departs, arrives

	// Materialize per-packet records at whichever ends are probes.
	if nd.spool != nil {
		for i, sz := range sizes {
			recordAt(nd, packet.Record{
				TS: departs[i], Src: nd.Host.Addr, Dst: requester.Host.Addr,
				Size: sz, TTL: packet.InitialTTL, Kind: packet.Video,
			})
		}
	}
	if requester.spool != nil {
		ttl := net.ttlAtReceiver(nd, requester)
		for i, sz := range sizes {
			recordAt(requester, packet.Record{
				TS: arrives[i], Src: nd.Host.Addr, Dst: requester.Host.Addr,
				Size: sz, TTL: ttl, Kind: packet.Video,
			})
		}
	}

	net.Ledger.video(nd.ID, requester.ID, int64(chunkSize), requester.Host.AS, nd.Host.AS == requester.Host.AS)
	net.Ledger.chunkServed(nd.ID)
	if nd.isSource {
		net.Ledger.SourceVideoTx += int64(chunkSize)
	}

	last := arrives[len(arrives)-1]
	// The receiver estimates the partner's rate from goodput *during*
	// the burst (first to last packet), the way real clients sample
	// throughput. Using request-to-completion time instead would fold
	// the full RTT into the estimate and make nearby peers look faster
	// than equally provisioned distant ones — a proximity bias none of
	// the 2008 clients actually had (stop-and-wait is our simplification,
	// not theirs: they pipelined requests).
	burst := last.Sub(arrives[0])
	net.Eng.At(last, func() { requester.onChunkDelivered(nd.ID, id, chunkSize, burst) })
}

// onReject reacts to a responder declining a request: the pending entry is
// cleared so the next scheduler tick retries elsewhere, and the partner's
// standing decays, steering future requests toward less loaded (in
// practice: higher-capacity) peers.
func (nd *Node) onReject(from PeerID, id chunkstream.ChunkID) {
	if !nd.online {
		return
	}
	if req, ok := nd.inflight[id]; ok && req.from == from {
		delete(nd.inflight, id)
	}
	if p, ok := nd.partners[from]; ok {
		p.failures++
		p.info.EstRate = p.info.EstRate * 3 / 4
		nd.rescore(p)
	}
}

// onChunkDelivered completes a pull: the chunk enters the buffer map and
// the partner's delivery-rate estimate absorbs the burst-goodput sample.
func (nd *Node) onChunkDelivered(from PeerID, id chunkstream.ChunkID, size units.ByteSize, burst time.Duration) {
	if !nd.online {
		return
	}
	req, ok := nd.inflight[id]
	if ok && req.from == from {
		delete(nd.inflight, id)
	}
	if fresh := !nd.buf.Has(id); nd.buf.Set(id) && fresh {
		// First receipt of an in-window chunk: account its diffusion delay
		// (birth at the source calendar to arrival here) on the ledger.
		if now, born := nd.net.Eng.Now(), nd.net.Cfg.Calendar.BornAt(id); now >= born {
			nd.net.Ledger.DiffusionDelaySum += now.Sub(born)
			nd.net.Ledger.DiffusionChunks++
		}
	}
	if p, ok := nd.partners[from]; ok {
		p.failures = 0
		var sample units.BitRate
		if burst > 0 {
			sample = units.RateOf(size, burst)
		}
		if sample > 0 {
			if p.info.EstRate == 0 {
				p.info.EstRate = sample
			} else {
				// EWMA with 0.7 retention: smooth but responsive.
				p.info.EstRate = (p.info.EstRate*7 + sample*3) / 10
			}
			nd.rescore(p)
			if nd.rateMemory != nil {
				nd.rateMemory[from] = p.info.EstRate
			}
		}
	}
}
