// Package packet defines the packet-level observation record produced at
// probe hosts and a compact binary trace format (plus CSV export) for
// storing and replaying captures.
//
// A Record carries exactly what a passive sniffer at the probe's access
// link would see — timestamp, addresses, ports, payload size, TTL — plus a
// ground-truth Kind annotation that real traces do not have. The analysis
// layer must not consult Kind for inference (the paper's heuristics work
// from sizes and timing alone); Kind exists so tests can validate those
// heuristics against the truth.
package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"napawine/internal/sim"
	"napawine/internal/units"
)

// Kind is the ground-truth role of a packet in the emulated protocol.
type Kind uint8

// Packet roles. Signaling covers buffer maps, keep-alives and peer-exchange
// gossip; Request is a chunk request; Video is chunk payload.
const (
	Signaling Kind = iota
	Request
	Video
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Signaling:
		return "signaling"
	case Request:
		return "request"
	case Video:
		return "video"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one captured packet.
type Record struct {
	TS   sim.Time // capture instant at the probe
	Src  netip.Addr
	Dst  netip.Addr
	Size units.ByteSize // transport payload bytes
	TTL  uint8          // IP TTL as seen at the probe
	Kind Kind
}

// InitialTTL is the TTL every emulated peer stamps on outgoing packets. The
// paper assumes Windows hosts, whose default is 128, and infers hop counts
// as 128−TTL (§III-B).
const InitialTTL = 128

// Hops reports the router hops this packet traversed, inferred exactly the
// way the paper does.
func (r Record) Hops() int { return InitialTTL - int(r.TTL) }

const (
	magic       = "NWT1"
	recordBytes = 8 + 4 + 4 + 4 + 1 + 1 // ts, src, dst, size, ttl, kind
)

// Writer streams records to a binary trace. Close flushes; the caller owns
// closing the underlying writer if it is a file.
type Writer struct {
	bw    *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes the trace header for the given probe and returns the
// writer.
func NewWriter(w io.Writer, probe netip.Addr, label string) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	a := probe.As4()
	if _, err := bw.Write(a[:]); err != nil {
		return nil, err
	}
	lb := []byte(label)
	if len(lb) > 255 {
		return nil, fmt.Errorf("packet: label too long (%d bytes)", len(lb))
	}
	if err := bw.WriteByte(byte(len(lb))); err != nil {
		return nil, err
	}
	if _, err := bw.Write(lb); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	if r.Size < 0 || r.Size > 1<<31 {
		w.err = fmt.Errorf("packet: record size %d out of range", r.Size)
		return w.err
	}
	if !r.Src.Is4() || !r.Dst.Is4() {
		w.err = fmt.Errorf("packet: record addresses must be IPv4 (src=%v dst=%v)", r.Src, r.Dst)
		return w.err
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.TS))
	src := r.Src.As4()
	dst := r.Dst.As4()
	copy(buf[8:12], src[:])
	copy(buf[12:16], dst[:])
	binary.LittleEndian.PutUint32(buf[16:20], uint32(r.Size))
	buf[20] = r.TTL
	buf[21] = byte(r.Kind)
	if _, err := w.bw.Write(buf[:]); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Count reports how many records have been written.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered records.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader streams records from a binary trace.
type Reader struct {
	br    *bufio.Reader
	probe netip.Addr
	label string
}

// ErrBadTrace reports a malformed trace header or record.
var ErrBadTrace = errors.New("packet: malformed trace")

// NewReader parses the trace header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrBadTrace, err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head)
	}
	var addr [4]byte
	if _, err := io.ReadFull(br, addr[:]); err != nil {
		return nil, fmt.Errorf("%w: short probe address", ErrBadTrace)
	}
	n, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: short label length", ErrBadTrace)
	}
	lb := make([]byte, n)
	if _, err := io.ReadFull(br, lb); err != nil {
		return nil, fmt.Errorf("%w: short label", ErrBadTrace)
	}
	return &Reader{br: br, probe: netip.AddrFrom4(addr), label: string(lb)}, nil
}

// Probe reports the probe address recorded in the header.
func (r *Reader) Probe() netip.Addr { return r.probe }

// Label reports the experiment label recorded in the header.
func (r *Reader) Label() string { return r.label }

// Next returns the next record, or io.EOF at a clean end of trace. A
// truncated record yields ErrBadTrace, so corruption never passes silently.
func (r *Reader) Next() (Record, error) {
	var buf [recordBytes]byte
	n, err := io.ReadFull(r.br, buf[:])
	if err == io.EOF && n == 0 {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("%w: truncated record (%d bytes)", ErrBadTrace, n)
	}
	var rec Record
	rec.TS = sim.Time(binary.LittleEndian.Uint64(buf[0:8]))
	rec.Src = netip.AddrFrom4([4]byte(buf[8:12]))
	rec.Dst = netip.AddrFrom4([4]byte(buf[12:16]))
	rec.Size = units.ByteSize(binary.LittleEndian.Uint32(buf[16:20]))
	rec.TTL = buf[20]
	rec.Kind = Kind(buf[21])
	return rec, nil
}

// ReadAll drains the reader into a slice. Intended for tests and tools, not
// for the analysis pipeline, which streams.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// WriteCSV renders records in a human-auditable CSV with a header row,
// mirroring the fields of the binary format.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("ts_ns,src,dst,size,ttl,kind\n"); err != nil {
		return err
	}
	for _, r := range recs {
		line := fmt.Sprintf("%d,%s,%s,%d,%d,%s\n",
			int64(r.TS), r.Src, r.Dst, int64(r.Size), r.TTL, r.Kind)
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseCSVLine parses one non-header CSV line produced by WriteCSV.
func ParseCSVLine(line string) (Record, error) {
	parts := strings.Split(strings.TrimSpace(line), ",")
	if len(parts) != 6 {
		return Record{}, fmt.Errorf("%w: csv field count %d", ErrBadTrace, len(parts))
	}
	ts, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: csv ts: %v", ErrBadTrace, err)
	}
	src, err := netip.ParseAddr(parts[1])
	if err != nil {
		return Record{}, fmt.Errorf("%w: csv src: %v", ErrBadTrace, err)
	}
	dst, err := netip.ParseAddr(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("%w: csv dst: %v", ErrBadTrace, err)
	}
	size, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: csv size: %v", ErrBadTrace, err)
	}
	ttl, err := strconv.ParseUint(parts[4], 10, 8)
	if err != nil {
		return Record{}, fmt.Errorf("%w: csv ttl: %v", ErrBadTrace, err)
	}
	var kind Kind
	switch parts[5] {
	case "signaling":
		kind = Signaling
	case "request":
		kind = Request
	case "video":
		kind = Video
	default:
		return Record{}, fmt.Errorf("%w: csv kind %q", ErrBadTrace, parts[5])
	}
	return Record{
		TS: sim.Time(ts), Src: src, Dst: dst,
		Size: units.ByteSize(size), TTL: uint8(ttl), Kind: kind,
	}, nil
}
