package packet

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"napawine/internal/sim"
	"napawine/internal/units"
)

func mkAddr(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

func randomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			TS:   sim.Time(rng.Int63n(1 << 40)),
			Src:  mkAddr(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(253))),
			Dst:  mkAddr(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(253))),
			Size: units.ByteSize(rng.Int63n(1500)),
			TTL:  uint8(100 + rng.Intn(29)),
			Kind: Kind(rng.Intn(3)),
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	probe := mkAddr(10, 0, 0, 1)
	recs := randomRecords(500, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, probe, "pplive-run-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Probe() != probe {
		t.Errorf("Probe = %v", r.Probe())
	}
	if r.Label() != "pplive-run-1" {
		t.Errorf("Label = %q", r.Label())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

// Property: any record survives a binary round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(ts int64, s, d [4]byte, size uint16, ttl uint8, kind uint8) bool {
		if ts < 0 {
			ts = -ts
		}
		rec := Record{
			TS:   sim.Time(ts),
			Src:  netip.AddrFrom4(s),
			Dst:  netip.AddrFrom4(d),
			Size: units.ByteSize(size),
			TTL:  ttl,
			Kind: Kind(kind % 3),
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, mkAddr(10, 0, 0, 1), "p")
		if err != nil {
			return false
		}
		if w.Write(rec) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, mkAddr(10, 0, 0, 1), "x")
	for _, r := range randomRecords(3, 2) {
		_ = w.Write(r)
	}
	_ = w.Close()
	full := buf.Bytes()

	// Chop mid-record: reader must surface ErrBadTrace, not silent EOF.
	chopped := full[:len(full)-7]
	r, err := NewReader(bytes.NewReader(chopped))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil {
		t.Fatal("truncated trace should error")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error = %v, want truncation report", err)
	}
}

func TestBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("NWT1"),             // missing probe
		[]byte("NWT1\x0a\x00\x00"), // short probe
		append([]byte("NWT1\x0a\x00\x00\x01"), 5), // label length but no label
	}
	for i, raw := range cases {
		if _, err := NewReader(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: bad header accepted", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, mkAddr(10, 0, 0, 1), "")
	_ = w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty trace Next = %v, want io.EOF", err)
	}
}

func TestWriterRejectsLongLabel(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, mkAddr(1, 2, 3, 4), strings.Repeat("x", 300)); err == nil {
		t.Error("long label should be rejected")
	}
}

func TestWriterRejectsHugeSize(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, mkAddr(1, 2, 3, 4), "x")
	if err := w.Write(Record{Size: 1 << 40}); err == nil {
		t.Error("oversized record should be rejected")
	}
	// Writer stays poisoned afterwards.
	if err := w.Write(Record{Size: 10}); err == nil {
		t.Error("writer should stay failed after an error")
	}
}

func TestHops(t *testing.T) {
	r := Record{TTL: 128}
	if r.Hops() != 0 {
		t.Errorf("TTL 128 → hops %d, want 0", r.Hops())
	}
	r.TTL = 109
	if r.Hops() != 19 {
		t.Errorf("TTL 109 → hops %d, want 19 (the paper's median threshold)", r.Hops())
	}
}

func TestKindString(t *testing.T) {
	if Signaling.String() != "signaling" || Request.String() != "request" || Video.String() != "video" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include its number")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := randomRecords(50, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "ts_ns,src,dst,size,ttl,kind" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines)-1 != len(recs) {
		t.Fatalf("csv lines = %d, want %d", len(lines)-1, len(recs))
	}
	for i, line := range lines[1:] {
		got, err := ParseCSVLine(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("line %d: %+v vs %+v", i, got, recs[i])
		}
	}
}

func TestParseCSVLineErrors(t *testing.T) {
	bad := []string{
		"",
		"1,2,3",
		"x,10.0.0.1,10.0.0.2,100,128,video",
		"1,not-an-ip,10.0.0.2,100,128,video",
		"1,10.0.0.1,nope,100,128,video",
		"1,10.0.0.1,10.0.0.2,xx,128,video",
		"1,10.0.0.1,10.0.0.2,100,999,video",
		"1,10.0.0.1,10.0.0.2,100,128,mystery",
	}
	for _, line := range bad {
		if _, err := ParseCSVLine(line); err == nil {
			t.Errorf("ParseCSVLine(%q) should fail", line)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, mkAddr(10, 0, 0, 1), "bench")
	rec := Record{TS: 12345, Src: mkAddr(10, 0, 0, 2), Dst: mkAddr(10, 0, 0, 1),
		Size: 1250, TTL: 110, Kind: Video}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadNext(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, mkAddr(10, 0, 0, 1), "bench")
	for _, r := range randomRecords(10000, 4) {
		_ = w.Write(r)
	}
	_ = w.Close()
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
