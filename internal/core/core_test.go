package core

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
}

// mkObs builds a download contributor with the given properties.
func mkObs(i int, downBytes int64, sameAS bool, ipg time.Duration, hops int) Observation {
	return Observation{
		Probe:     addr(0),
		Peer:      addr(i + 1),
		VideoDown: downBytes,
		TotalDown: downBytes,
		MinIPG:    ipg,
		Hops:      hops,
		SameAS:    sameAS,
	}
}

var th = ContribThresholds{MinBytes: 1000, MinPackets: 1}

func TestComputeASPartition(t *testing.T) {
	obs := []Observation{
		mkObs(1, 70_000, true, time.Microsecond, 3),   // same AS, many bytes
		mkObs(2, 10_000, false, time.Microsecond, 20), // other AS
		mkObs(3, 10_000, false, time.Microsecond, 20),
		mkObs(4, 10_000, false, time.Microsecond, 20),
	}
	m := Compute(obs, Download, ASClassifier{}, th, false)
	if m.PeersPreferred != 1 || m.PeersOther != 3 {
		t.Fatalf("peers = %d/%d", m.PeersPreferred, m.PeersOther)
	}
	if m.PeerPct != 25 {
		t.Errorf("P = %v, want 25", m.PeerPct)
	}
	if m.BytePct != 70 {
		t.Errorf("B = %v, want 70", m.BytePct)
	}
	if !m.Valid() {
		t.Error("metrics should be valid")
	}
}

func TestComputeDirections(t *testing.T) {
	o := Observation{
		Probe: addr(0), Peer: addr(1),
		VideoUp: 50_000, VideoDown: 0,
		SameAS: true, Hops: 5, MinIPG: time.Microsecond,
	}
	// Upload direction: o is a contributor.
	mu := Compute([]Observation{o}, Upload, ASClassifier{}, th, false)
	if mu.PeersPreferred != 1 || mu.BytesPreferred != 50_000 {
		t.Errorf("upload metrics wrong: %+v", mu)
	}
	// Download direction: not a contributor (no down bytes).
	md := Compute([]Observation{o}, Download, ASClassifier{}, th, false)
	if md.Valid() {
		t.Error("download metrics should be empty for upload-only peer")
	}
}

func TestComputeExcludesProbes(t *testing.T) {
	obs := []Observation{
		mkObs(1, 50_000, true, time.Microsecond, 2),
		mkObs(2, 50_000, false, time.Microsecond, 25),
	}
	obs[0].PeerIsProbe = true
	full := Compute(obs, Download, ASClassifier{}, th, false)
	if full.PeersPreferred != 1 || full.PeersOther != 1 {
		t.Fatalf("full set wrong: %+v", full)
	}
	prime := Compute(obs, Download, ASClassifier{}, th, true)
	if prime.PeersPreferred != 0 || prime.PeersOther != 1 {
		t.Fatalf("primed set wrong: %+v", prime)
	}
	if !prime.ExcludeProbes {
		t.Error("primed flag lost")
	}
}

func TestBWClassifier(t *testing.T) {
	c := NewBWClassifier()
	if pref, ok := c.Classify(Observation{MinIPG: 100 * time.Microsecond}); !ok || !pref {
		t.Error("100µs IPG must classify high-bw")
	}
	if pref, ok := c.Classify(Observation{MinIPG: time.Millisecond}); !ok || pref {
		t.Error("exactly 1ms must classify low-bw (strict threshold)")
	}
	if pref, ok := c.Classify(Observation{MinIPG: 20 * time.Millisecond}); !ok || pref {
		t.Error("20ms IPG must classify low-bw")
	}
	if _, ok := c.Classify(Observation{MinIPG: 0}); ok {
		t.Error("zero IPG must be unmeasurable")
	}
}

func TestBWUnmeasurableOmitted(t *testing.T) {
	// Upload contributors with no received trains: BW must be fully
	// unmeasurable, like the dashes in the paper's upload BW cells.
	obs := []Observation{
		{Probe: addr(0), Peer: addr(1), VideoUp: 90_000, MinIPG: 0, Hops: -1},
		{Probe: addr(0), Peer: addr(2), VideoUp: 80_000, MinIPG: 0, Hops: -1},
	}
	m := Compute(obs, Upload, NewBWClassifier(), th, false)
	if m.Valid() {
		t.Error("all-unmeasurable metrics must be invalid")
	}
	if m.Unmeasurable != 2 {
		t.Errorf("unmeasurable = %d, want 2", m.Unmeasurable)
	}
}

func TestHOPClassifier(t *testing.T) {
	c := NewHOPClassifier()
	if pref, ok := c.Classify(Observation{Hops: 5}); !ok || !pref {
		t.Error("5 hops must be preferred")
	}
	if pref, ok := c.Classify(Observation{Hops: 19}); !ok || pref {
		t.Error("19 hops must not be preferred (strict <)")
	}
	if _, ok := c.Classify(Observation{Hops: -1}); ok {
		t.Error("negative hops must be unmeasurable")
	}
}

func TestNETAndCCClassifiers(t *testing.T) {
	if pref, _ := (NETClassifier{}).Classify(Observation{SameSubnet: true}); !pref {
		t.Error("same subnet must be preferred")
	}
	if pref, _ := (CCClassifier{}).Classify(Observation{SameCC: true}); !pref {
		t.Error("same country must be preferred")
	}
}

func TestPaperClassifiersOrder(t *testing.T) {
	names := []string{"BW", "AS", "CC", "NET", "HOP"}
	cs := PaperClassifiers()
	if len(cs) != len(names) {
		t.Fatalf("classifiers = %d", len(cs))
	}
	for i, c := range cs {
		if c.Name() != names[i] {
			t.Errorf("classifier %d = %s, want %s", i, c.Name(), names[i])
		}
	}
}

// Property: complementarity — for any observation set and any two-way
// classifier without unmeasurables, P(X_P) + P(X_P̄) = 100 and likewise for
// bytes; and P/B are unit-free (scaling all byte counts leaves B fixed).
func TestPartitionComplementarityProperty(t *testing.T) {
	type flippedAS struct{ inner ASClassifier }
	flip := classifierFunc{
		name: "notAS",
		fn: func(o Observation) (bool, bool) {
			p, ok := flippedAS{}.inner.Classify(o)
			return !p, ok
		},
	}
	f := func(seeds []uint32, scale uint8) bool {
		rng := rand.New(rand.NewSource(int64(len(seeds)) + int64(scale)))
		obs := make([]Observation, 0, len(seeds))
		for i := range seeds {
			obs = append(obs, mkObs(i, 1000+int64(rng.Intn(100_000)), rng.Intn(2) == 0,
				time.Duration(1+rng.Intn(3_000_000)), rng.Intn(30)))
		}
		a := Compute(obs, Download, ASClassifier{}, th, false)
		b := Compute(obs, Download, flip, th, false)
		if a.PeersPreferred != b.PeersOther || a.PeersOther != b.PeersPreferred {
			return false
		}
		if len(obs) > 0 && math.Abs((a.PeerPct+b.PeerPct)-100) > 1e-9 {
			return false
		}
		if len(obs) > 0 && math.Abs((a.BytePct+b.BytePct)-100) > 1e-9 {
			return false
		}
		// Scale-freeness: multiplying every byte count by k keeps B.
		k := int64(scale%7) + 2
		scaled := make([]Observation, len(obs))
		for i, o := range obs {
			o.VideoDown *= k
			scaled[i] = o
		}
		c := Compute(scaled, Download, ASClassifier{}, th, false)
		return math.Abs(c.BytePct-a.BytePct) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

type classifierFunc struct {
	name string
	fn   func(Observation) (bool, bool)
}

func (c classifierFunc) Name() string                        { return c.name }
func (c classifierFunc) Classify(o Observation) (bool, bool) { return c.fn(o) }

func TestContributorThresholds(t *testing.T) {
	o := Observation{VideoDown: 999, VideoUp: 1001}
	if Contributor(o, Download, th) {
		t.Error("999 bytes below 1000 threshold")
	}
	if !Contributor(o, Upload, th) {
		t.Error("1001 bytes above threshold")
	}
}

func TestComputeSelfBias(t *testing.T) {
	obs := []Observation{
		// Probe peer: contributor, 100k video.
		{Probe: addr(0), Peer: addr(1), VideoDown: 100_000, TotalDown: 110_000, PeerIsProbe: true},
		// Non-probe contributor, 100k video.
		{Probe: addr(0), Peer: addr(2), VideoDown: 100_000, TotalDown: 105_000},
		// Non-probe non-contributor (signaling only).
		{Probe: addr(0), Peer: addr(3), TotalDown: 500},
	}
	contrib := ComputeSelfBias(obs, th, true)
	if contrib.Peers != 2 {
		t.Fatalf("contributor population = %d, want 2", contrib.Peers)
	}
	if contrib.PeerPct != 50 || contrib.BytePct != 50 {
		t.Errorf("contributor self-bias = %.1f/%.1f, want 50/50", contrib.PeerPct, contrib.BytePct)
	}
	all := ComputeSelfBias(obs, th, false)
	if all.Peers != 3 {
		t.Fatalf("all-peers population = %d, want 3", all.Peers)
	}
	wantByte := 100.0 * 110_000 / 215_500
	if math.Abs(all.BytePct-wantByte) > 1e-9 {
		t.Errorf("all-peers byte bias = %v, want %v", all.BytePct, wantByte)
	}
}

func TestHopMedian(t *testing.T) {
	obs := []Observation{
		{Hops: 10}, {Hops: 19}, {Hops: 25}, {Hops: -1},
	}
	med, ok := HopMedian(obs)
	if !ok || med != 19 {
		t.Errorf("median = %v/%v, want 19", med, ok)
	}
	if _, ok := HopMedian([]Observation{{Hops: -1}}); ok {
		t.Error("all-unmeasurable median should not exist")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Property: "AS", Direction: Download, ExcludeProbes: true,
		PeerPct: 3.3, BytePct: 7.3, PeersPreferred: 1, PeersOther: 29}
	s := m.String()
	if s == "" || s[:4] != "AS D" {
		t.Errorf("String = %q", s)
	}
}

func TestDirectionString(t *testing.T) {
	if Upload.String() != "U" || Download.String() != "D" {
		t.Error("direction names wrong")
	}
}

func BenchmarkCompute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	obs := make([]Observation, 5000)
	for i := range obs {
		obs[i] = mkObs(i, int64(rng.Intn(1_000_000)), rng.Intn(10) == 0,
			time.Duration(rng.Intn(5_000_000)), rng.Intn(30))
	}
	cs := PaperClassifiers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(obs, Download, cs[i%len(cs)], DefaultContrib, i%2 == 0)
	}
}
