// Package core implements the paper's primary contribution: the
// preference-partition framework of §III that turns passive per-peer
// traffic aggregates into scale-free "network awareness" indices.
//
// For a network property X, the support is split into a preferred partition
// X_P and its complement. Over the contributor set of every probe p ∈ W,
// the framework computes (Eqs. 1–8):
//
//	P = 100 · Peer_P / (Peer_P + Peer_P̄)   — peer-wise preference
//	B = 100 · Byte_P / (Byte_P + Byte_P̄)   — byte-wise preference
//
// per direction (upload/download), and the primed variants P′/B′ over the
// contributor set with the probe set W itself removed, which cancels the
// testbed's self-induced bias (§III-C, Table III).
//
// The same peer observed from several probes is counted once per probe, as
// in the paper ("notice that a peer e may be counted more than once").
package core

import (
	"fmt"
	"net/netip"
	"time"

	"napawine/internal/stats"
)

// Observation is the per-(probe, remote-peer) aggregate the framework
// consumes — exactly what the paper's offline trace analysis produces
// before applying the partitions. All fields are derivable passively:
// byte counters from the trace, MinIPG from video packet trains, Hops from
// received TTLs, locality booleans from registry (whois/GeoIP) lookups.
type Observation struct {
	Probe netip.Addr // p ∈ W
	Peer  netip.Addr // e

	// Video payload bytes exchanged with the peer: Up is B(p,e) (probe
	// uploads), Down is B(e,p) (probe downloads).
	VideoUp, VideoDown int64
	// All bytes regardless of traffic class, for the all-peers variant
	// of the self-bias table.
	TotalUp, TotalDown int64

	// MinIPG is the minimum inter-packet gap observed inside the peer's
	// video packet trains toward the probe; zero means unmeasurable (the
	// peer never sent a train).
	MinIPG time.Duration
	// Hops is the router-hop count inferred from received TTLs
	// (128−TTL); negative means unmeasurable (nothing received).
	Hops int

	SameAS, SameCC, SameSubnet bool

	// PeerIsProbe marks e ∈ W (the self-bias filter key).
	PeerIsProbe bool
}

// ContribThresholds parameterizes the contributor heuristic of [14]: a peer
// is a contributor in a direction when the video bytes and full-size video
// packets exchanged in that direction reach these floors.
type ContribThresholds struct {
	MinBytes   int64
	MinPackets int
}

// DefaultContrib is conservative, as [14] describes its heuristic: a peer
// counts as contributor only after roughly two chunks' worth of video
// payload, so a single exploratory transfer does not qualify.
var DefaultContrib = ContribThresholds{MinBytes: 80_000, MinPackets: 32}

// Direction selects the traffic side under analysis.
type Direction int

// Directions, named as the paper's subscripts.
const (
	Upload   Direction = iota // U: probe → peer
	Download                  // D: peer → probe
)

// String renders U or D.
func (d Direction) String() string {
	if d == Upload {
		return "U"
	}
	return "D"
}

// Classifier is one network property X with its preferred partition X_P.
// Classify reports whether the observation falls in X_P, and whether the
// property is measurable for this observation at all (e.g. BW needs a
// received packet train; HOP needs a received TTL).
type Classifier interface {
	Name() string
	Classify(Observation) (preferred, measurable bool)
}

// BWClassifier implements the §III-B bandwidth partition: a peer is
// high-bandwidth when the minimum inter-packet gap of its video trains is
// below Threshold (1 ms ⇔ 10 Mbit/s with 1250-byte packets).
type BWClassifier struct {
	Threshold time.Duration
}

// NewBWClassifier returns the paper's 1 ms classifier.
func NewBWClassifier() BWClassifier { return BWClassifier{Threshold: time.Millisecond} }

// Name implements Classifier.
func (BWClassifier) Name() string { return "BW" }

// Classify implements Classifier.
func (c BWClassifier) Classify(o Observation) (bool, bool) {
	if o.MinIPG <= 0 {
		return false, false
	}
	return o.MinIPG < c.Threshold, true
}

// ASClassifier prefers peers in the probe's own autonomous system.
type ASClassifier struct{}

// Name implements Classifier.
func (ASClassifier) Name() string { return "AS" }

// Classify implements Classifier.
func (ASClassifier) Classify(o Observation) (bool, bool) { return o.SameAS, true }

// CCClassifier prefers peers in the probe's own country.
type CCClassifier struct{}

// Name implements Classifier.
func (CCClassifier) Name() string { return "CC" }

// Classify implements Classifier.
func (CCClassifier) Classify(o Observation) (bool, bool) { return o.SameCC, true }

// NETClassifier prefers peers in the probe's own subnet (hop count zero).
type NETClassifier struct{}

// Name implements Classifier.
func (NETClassifier) Name() string { return "NET" }

// Classify implements Classifier.
func (NETClassifier) Classify(o Observation) (bool, bool) { return o.SameSubnet, true }

// HOPClassifier prefers peers whose inferred path is shorter than
// Threshold hops. The paper fixes the threshold at 19, the observed median
// (18–20 across applications).
type HOPClassifier struct {
	Threshold int
}

// NewHOPClassifier returns the paper's fixed 19-hop classifier.
func NewHOPClassifier() HOPClassifier { return HOPClassifier{Threshold: 19} }

// Name implements Classifier.
func (HOPClassifier) Name() string { return "HOP" }

// Classify implements Classifier.
func (c HOPClassifier) Classify(o Observation) (bool, bool) {
	if o.Hops < 0 {
		return false, false
	}
	return o.Hops < c.Threshold, true
}

// PaperClassifiers returns the five property classifiers in the order of
// Table IV's rows.
func PaperClassifiers() []Classifier {
	return []Classifier{
		NewBWClassifier(),
		ASClassifier{},
		CCClassifier{},
		NETClassifier{},
		NewHOPClassifier(),
	}
}

// Contributor reports whether the observation qualifies as a contributor
// in the given direction under the thresholds.
func Contributor(o Observation, dir Direction, th ContribThresholds) bool {
	if dir == Upload {
		return o.VideoUp >= th.MinBytes
	}
	return o.VideoDown >= th.MinBytes
}

// Metrics carries P and B of Eqs. (7)–(8) plus the raw tallies of
// Eqs. (1)–(6) for auditability.
type Metrics struct {
	Property  string
	Direction Direction
	// ExcludeProbes marks the primed variant (P′/B′): the contributor
	// set was filtered to P\W.
	ExcludeProbes bool

	PeersPreferred int
	PeersOther     int
	BytesPreferred int64
	BytesOther     int64
	// Unmeasurable counts contributors the classifier could not place
	// (omitted from both partitions, as the paper omits BW uploads).
	Unmeasurable int

	PeerPct float64 // P (Eq. 7)
	BytePct float64 // B (Eq. 8)
}

// Valid reports whether any contributor was measurable: when false, the
// table cell should print "-" like the paper's BW upload cells.
func (m Metrics) Valid() bool { return m.PeersPreferred+m.PeersOther > 0 }

// String renders a compact debug form.
func (m Metrics) String() string {
	prime := ""
	if m.ExcludeProbes {
		prime = "'"
	}
	return fmt.Sprintf("%s %s%s: P=%.1f%% B=%.1f%% (peers %d/%d, bytes %d/%d)",
		m.Property, m.Direction, prime, m.PeerPct, m.BytePct,
		m.PeersPreferred, m.PeersOther, m.BytesPreferred, m.BytesOther)
}

// Compute evaluates one classifier over the observations in one direction.
// Only contributors (per th) in that direction enter the tallies;
// excludeProbes additionally removes e ∈ W, yielding the primed metrics.
func Compute(obs []Observation, dir Direction, c Classifier,
	th ContribThresholds, excludeProbes bool) Metrics {

	m := Metrics{Property: c.Name(), Direction: dir, ExcludeProbes: excludeProbes}
	for _, o := range obs {
		if !Contributor(o, dir, th) {
			continue
		}
		if excludeProbes && o.PeerIsProbe {
			continue
		}
		bytes := o.VideoDown
		if dir == Upload {
			bytes = o.VideoUp
		}
		pref, ok := c.Classify(o)
		if !ok {
			m.Unmeasurable++
			continue
		}
		if pref {
			m.PeersPreferred++
			m.BytesPreferred += bytes
		} else {
			m.PeersOther++
			m.BytesOther += bytes
		}
	}
	m.PeerPct = stats.Percent(float64(m.PeersPreferred), float64(m.PeersPreferred+m.PeersOther))
	m.BytePct = stats.Percent(float64(m.BytesPreferred), float64(m.BytesPreferred+m.BytesOther))
	return m
}

// SelfBias is one row of Table III: the share of peers and bytes that the
// probe set exchanged among itself.
type SelfBias struct {
	// Contributor restricts the population to contributors (either
	// direction) and video bytes; otherwise all peers and all bytes.
	Contributor bool
	PeerPct     float64
	BytePct     float64
	Peers       int // total population counted
	Bytes       int64
}

// ComputeSelfBias evaluates the §III-C self-induced bias for one
// application's observation set.
func ComputeSelfBias(obs []Observation, th ContribThresholds, contributorsOnly bool) SelfBias {
	var probePeers, totalPeers int
	var probeBytes, totalBytes int64
	for _, o := range obs {
		var bytes int64
		if contributorsOnly {
			if !Contributor(o, Upload, th) && !Contributor(o, Download, th) {
				continue
			}
			bytes = o.VideoUp + o.VideoDown
		} else {
			bytes = o.TotalUp + o.TotalDown
		}
		totalPeers++
		totalBytes += bytes
		if o.PeerIsProbe {
			probePeers++
			probeBytes += bytes
		}
	}
	return SelfBias{
		Contributor: contributorsOnly,
		PeerPct:     stats.Percent(float64(probePeers), float64(totalPeers)),
		BytePct:     stats.Percent(float64(probeBytes), float64(totalBytes)),
		Peers:       totalPeers,
		Bytes:       totalBytes,
	}
}

// HopMedian reports the median inferred hop count across measurable
// observations — the statistic the paper uses to justify its fixed
// 19-hop threshold.
func HopMedian(obs []Observation) (float64, bool) {
	var s stats.Sample
	for _, o := range obs {
		if o.Hops >= 0 {
			s.Add(float64(o.Hops))
		}
	}
	if s.N() == 0 {
		return 0, false
	}
	return s.Median(), true
}
