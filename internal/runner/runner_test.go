package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelOrderPreserved(t *testing.T) {
	in := make([]int, 50)
	for i := range in {
		in[i] = i
	}
	out, err := Parallel(in, 8, func(x int) (int, error) {
		// Reverse completion order: later inputs finish first.
		time.Sleep(time.Duration(50-x) * 100 * time.Microsecond)
		return x * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelConcurrencyBound(t *testing.T) {
	var active, peak int64
	in := make([]int, 40)
	_, err := Parallel(in, 4, func(int) (int, error) {
		n := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&active, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Errorf("peak concurrency %d exceeds worker bound 4", peak)
	}
}

func TestParallelError(t *testing.T) {
	in := []int{0, 1, 2, 3}
	boom := errors.New("boom")
	out, err := Parallel(in, 2, func(x int) (int, error) {
		if x == 2 {
			return 0, boom
		}
		return x + 10, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "input 2") {
		t.Errorf("error should name the failing input: %v", err)
	}
	// Successful slots still populated.
	if out[0] != 10 || out[1] != 11 || out[3] != 13 {
		t.Errorf("partial results lost: %v", out)
	}
}

func TestParallelFirstErrorByInputOrder(t *testing.T) {
	// Input 3 fails fast, input 1 fails slow: the reported error must be
	// input 1's — first by input order, not by completion order.
	in := []int{0, 1, 2, 3}
	errSlow := errors.New("slow failure")
	errFast := errors.New("fast failure")
	out, err := Parallel(in, 4, func(x int) (int, error) {
		switch x {
		case 1:
			time.Sleep(20 * time.Millisecond)
			return 0, errSlow
		case 3:
			return 0, errFast
		}
		return x + 100, nil
	})
	if !errors.Is(err, errSlow) {
		t.Fatalf("err = %v, want input 1's error (first by input order)", err)
	}
	if !strings.Contains(err.Error(), "input 1") {
		t.Errorf("error should name input 1: %v", err)
	}
	// Successful slots keep their results even when the call errors.
	if out[0] != 100 || out[2] != 102 {
		t.Errorf("partial results lost: %v", out)
	}
	// Failed slots hold the zero value.
	if out[1] != 0 || out[3] != 0 {
		t.Errorf("failed slots not zeroed: %v", out)
	}
}

func TestParallelPanicCaptured(t *testing.T) {
	in := []int{1}
	_, err := Parallel(in, 1, func(int) (int, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func TestParallelEmptyAndDefaults(t *testing.T) {
	out, err := Parallel(nil, 0, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Error("empty input should be a no-op")
	}
	// workers <= 0 defaults to GOMAXPROCS; workers > len clamps.
	out, err = Parallel([]int{5}, -3, func(x int) (int, error) { return x, nil })
	if err != nil || out[0] != 5 {
		t.Error("default workers failed")
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(100, 3)
	if len(s) != 3 || s[0] != 100 || s[2] != 102 {
		t.Errorf("Seeds = %v", s)
	}
	if len(Seeds(1, 0)) != 0 {
		t.Error("zero seeds should be empty")
	}
}

// TestSeedsNegativeCount is the regression guard for the make([]int64, n)
// panic: a computed trial count that goes negative must degrade to an empty
// seed list, not crash the battery.
func TestSeedsNegativeCount(t *testing.T) {
	if s := Seeds(7, -1); len(s) != 0 {
		t.Errorf("Seeds(7, -1) = %v, want empty", s)
	}
	if s := Seeds(7, -100); len(s) != 0 {
		t.Errorf("Seeds(7, -100) = %v, want empty", s)
	}
}

// TestParallelCtxCancelSkipsPendingTasks: once the context is cancelled,
// workers must stop picking up new inputs, every worker goroutine must be
// joined, and the call must return ctx.Err() with the completed slots
// intact.
func TestParallelCtxCancelSkipsPendingTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make([]int, 32)
	for i := range in {
		in[i] = i
	}
	var started int64
	out, err := ParallelCtx(ctx, in, 2, func(ctx context.Context, x int) (int, error) {
		atomic.AddInt64(&started, 1)
		if x == 1 {
			cancel()
		}
		// Let the cancellation propagate before the next pickup.
		time.Sleep(2 * time.Millisecond)
		return x + 10, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&started); n == 32 {
		t.Error("cancellation did not stop task pickup: every input ran")
	}
	// Slot 0 ran before the cancel (workers=2 started inputs 0 and 1).
	if out[0] != 10 {
		t.Errorf("completed slot lost: out[0] = %d, want 10", out[0])
	}
}

// TestParallelCtxBackgroundMatchesParallel: under a never-cancelled context
// the ctx path must behave exactly like Parallel.
func TestParallelCtxBackgroundMatchesParallel(t *testing.T) {
	in := []int{1, 2, 3, 4, 5}
	out, err := ParallelCtx(context.Background(), in, 3,
		func(_ context.Context, x int) (int, error) { return x * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != in[i]*2 {
			t.Errorf("out[%d] = %d, want %d", i, v, in[i]*2)
		}
	}
}

// TestParallelCtxPreCancelled: a context cancelled before the call runs
// nothing and reports ctx.Err().
func TestParallelCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	_, err := ParallelCtx(ctx, []int{1, 2, 3}, 2, func(_ context.Context, x int) (int, error) {
		atomic.AddInt64(&ran, 1)
		return x, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Error("pre-cancelled context still ran tasks")
	}
}

func BenchmarkParallelOverhead(b *testing.B) {
	in := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Parallel(in, 8, func(x int) (int, error) { return x, nil })
	}
}
