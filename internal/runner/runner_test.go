package runner

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelOrderPreserved(t *testing.T) {
	in := make([]int, 50)
	for i := range in {
		in[i] = i
	}
	out, err := Parallel(in, 8, func(x int) (int, error) {
		// Reverse completion order: later inputs finish first.
		time.Sleep(time.Duration(50-x) * 100 * time.Microsecond)
		return x * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelConcurrencyBound(t *testing.T) {
	var active, peak int64
	in := make([]int, 40)
	_, err := Parallel(in, 4, func(int) (int, error) {
		n := atomic.AddInt64(&active, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&active, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Errorf("peak concurrency %d exceeds worker bound 4", peak)
	}
}

func TestParallelError(t *testing.T) {
	in := []int{0, 1, 2, 3}
	boom := errors.New("boom")
	out, err := Parallel(in, 2, func(x int) (int, error) {
		if x == 2 {
			return 0, boom
		}
		return x + 10, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "input 2") {
		t.Errorf("error should name the failing input: %v", err)
	}
	// Successful slots still populated.
	if out[0] != 10 || out[1] != 11 || out[3] != 13 {
		t.Errorf("partial results lost: %v", out)
	}
}

func TestParallelFirstErrorByInputOrder(t *testing.T) {
	// Input 3 fails fast, input 1 fails slow: the reported error must be
	// input 1's — first by input order, not by completion order.
	in := []int{0, 1, 2, 3}
	errSlow := errors.New("slow failure")
	errFast := errors.New("fast failure")
	out, err := Parallel(in, 4, func(x int) (int, error) {
		switch x {
		case 1:
			time.Sleep(20 * time.Millisecond)
			return 0, errSlow
		case 3:
			return 0, errFast
		}
		return x + 100, nil
	})
	if !errors.Is(err, errSlow) {
		t.Fatalf("err = %v, want input 1's error (first by input order)", err)
	}
	if !strings.Contains(err.Error(), "input 1") {
		t.Errorf("error should name input 1: %v", err)
	}
	// Successful slots keep their results even when the call errors.
	if out[0] != 100 || out[2] != 102 {
		t.Errorf("partial results lost: %v", out)
	}
	// Failed slots hold the zero value.
	if out[1] != 0 || out[3] != 0 {
		t.Errorf("failed slots not zeroed: %v", out)
	}
}

func TestParallelPanicCaptured(t *testing.T) {
	in := []int{1}
	_, err := Parallel(in, 1, func(int) (int, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func TestParallelEmptyAndDefaults(t *testing.T) {
	out, err := Parallel(nil, 0, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Error("empty input should be a no-op")
	}
	// workers <= 0 defaults to GOMAXPROCS; workers > len clamps.
	out, err = Parallel([]int{5}, -3, func(x int) (int, error) { return x, nil })
	if err != nil || out[0] != 5 {
		t.Error("default workers failed")
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(100, 3)
	if len(s) != 3 || s[0] != 100 || s[2] != 102 {
		t.Errorf("Seeds = %v", s)
	}
	if len(Seeds(1, 0)) != 0 {
		t.Error("zero seeds should be empty")
	}
}

func BenchmarkParallelOverhead(b *testing.B) {
	in := make([]int, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Parallel(in, 8, func(x int) (int, error) { return x, nil })
	}
}
