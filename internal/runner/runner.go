// Package runner executes independent experiments in parallel. Each
// simulation engine is strictly single-threaded for determinism, so all
// parallelism in this project lives here: one goroutine per worker, one
// experiment per task, results delivered in input order regardless of
// completion order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Parallel maps f over inputs using at most workers goroutines and returns
// the outputs in input order. The first error (by input order) is returned
// alongside the partial results; failed slots hold the zero value. A panic
// inside f is captured and converted to an error rather than tearing down
// the whole sweep.
func Parallel[I any, O any](inputs []I, workers int, f func(I) (O, error)) ([]O, error) {
	return ParallelCtx(context.Background(), inputs, workers,
		func(_ context.Context, in I) (O, error) { return f(in) })
}

// ParallelCtx is Parallel under a context: once ctx is done, workers stop
// picking up new tasks (unstarted slots hold ctx.Err() and the zero value)
// and ctx.Err() is returned in preference to any task error, alongside the
// partial results. In-flight tasks receive ctx and are expected to wind
// down on their own (experiment.RunCtx polls it); every worker goroutine is
// joined before ParallelCtx returns, cancelled or not, so callers never
// leak goroutines.
func ParallelCtx[I any, O any](ctx context.Context, inputs []I, workers int, f func(context.Context, I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	out := make([]O, len(inputs))
	errs := make([]error, len(inputs))
	if len(inputs) == 0 {
		return out, ctx.Err()
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = runOne(ctx, inputs[i], f)
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return out, err
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("runner: input %d: %w", i, err)
		}
	}
	return out, nil
}

func runOne[I any, O any](ctx context.Context, in I, f func(context.Context, I) (O, error)) (out O, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f(ctx, in)
}

// Seeds builds n sequential seeds starting at base — the conventional
// input for multi-trial sweeps. A non-positive n yields an empty list
// rather than a panic, so a computed trial count of -1 degrades into "no
// trials", a loud empty table, not a crash.
func Seeds(base int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
