// Package runner executes independent experiments in parallel. Each
// simulation engine is strictly single-threaded for determinism, so all
// parallelism in this project lives here: one goroutine per worker, one
// experiment per task, results delivered in input order regardless of
// completion order.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Parallel maps f over inputs using at most workers goroutines and returns
// the outputs in input order. The first error (by input order) is returned
// alongside the partial results; failed slots hold the zero value. A panic
// inside f is captured and converted to an error rather than tearing down
// the whole sweep.
func Parallel[I any, O any](inputs []I, workers int, f func(I) (O, error)) ([]O, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	out := make([]O, len(inputs))
	errs := make([]error, len(inputs))
	if len(inputs) == 0 {
		return out, nil
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = runOne(inputs[i], f)
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("runner: input %d: %w", i, err)
		}
	}
	return out, nil
}

func runOne[I any, O any](in I, f func(I) (O, error)) (out O, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f(in)
}

// Seeds builds n sequential seeds starting at base — the conventional
// input for multi-trial sweeps.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
