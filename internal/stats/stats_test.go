package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero accumulator should report zeros")
	}
	for _, v := range []float64{3, -1, 4, 1.5} {
		a.Add(v)
	}
	if a.N() != 4 {
		t.Errorf("N = %d", a.N())
	}
	if a.Min() != -1 || a.Max() != 4 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Mean(); math.Abs(got-1.875) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := a.Sum(); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
}

func TestAccumulatorVariance(t *testing.T) {
	var a Accumulator
	if a.Variance() != 0 || a.StdDev() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zero spread")
	}
	a.Add(10)
	if a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("single value carries no spread information")
	}
	a.Add(14)
	// Sample variance of {10, 14} is 8; stderr = sqrt(8)/sqrt(2) = 2.
	if got := a.Variance(); math.Abs(got-8) > 1e-12 {
		t.Errorf("variance = %v, want 8", got)
	}
	if got := a.StdErr(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stderr = %v, want 2", got)
	}

	// Welford must survive a large offset that would wreck naive
	// sum-of-squares: same spread, shifted by 1e9.
	var b Accumulator
	for _, v := range []float64{1e9 + 10, 1e9 + 14} {
		b.Add(v)
	}
	if got := b.Variance(); math.Abs(got-8) > 1e-3 {
		t.Errorf("offset variance = %v, want 8", got)
	}
}

func TestAccumulatorMergeVariance(t *testing.T) {
	xs := []float64{3, 7, 1, 9, 4, 6, 2, 8}
	var whole, left, right Accumulator
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if math.Abs(left.StdErr()-whole.StdErr()) > 1e-9 {
		t.Errorf("merged stderr = %v, want %v", left.StdErr(), whole.StdErr())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Error("merge into empty did not copy")
	}
}

// Property: merging split streams equals accumulating the whole stream.
func TestAccumulatorMergeAssociativityProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			// Skip pathological floats: the accumulator carries sums of
			// byte counts and rates, which live far below 1e15.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				return true
			}
		}
		var whole Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var left, right Accumulator
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return left.Min() == whole.Min() && left.Max() == whole.Max() &&
			math.Abs(left.Sum()-whole.Sum()) < 1e-9*(1+math.Abs(whole.Sum()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if s.Median() != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Error("empty sample should report zeros")
	}
	for _, v := range []float64{9, 1, 8, 2, 7, 3, 6, 4, 5} {
		s.Add(v)
	}
	if got := s.Median(); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("q1 = %v, want 9", got)
	}
	if got := s.Quantile(-0.5); got != 1 {
		t.Errorf("clamped q = %v, want 1", got)
	}
	if got := s.Quantile(1.5); got != 9 {
		t.Errorf("clamped q = %v, want 9", got)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if s.N() != 9 {
		t.Errorf("N = %d", s.N())
	}
}

func TestSampleMedianEven(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	// Nearest-rank: ceil(0.5*4) = 2nd smallest.
	if got := s.Median(); got != 2 {
		t.Errorf("median = %v, want 2 (nearest rank)", got)
	}
}

// Property: quantile is monotone in q and brackets min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var s Sample
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
			}
			if v < s.Min() || v > s.Max() {
				t.Fatalf("quantile %v outside [min,max]", v)
			}
			prev = v
		}
	}
}

func TestSampleValuesSortedCopy(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	vals := s.Values()
	if !sort.Float64sAreSorted(vals) {
		t.Error("Values not sorted")
	}
	vals[0] = 99 // mutating the copy must not affect the sample
	if s.Min() == 99 {
		t.Error("Values returned internal storage")
	}
}

func TestSampleInterleavedAddQuery(t *testing.T) {
	var s Sample
	s.Add(5)
	if s.Median() != 5 {
		t.Error("median after one add")
	}
	s.Add(1) // add after a sorted query must re-sort
	s.Add(9)
	if got := s.Median(); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-5, 0, 9.99, 10, 25, 49, 50, 1e9} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(0) != 3 { // -5 (clamped), 0, 9.99
		t.Errorf("bucket0 = %d, want 3", h.Count(0))
	}
	if h.Count(1) != 1 { // 10
		t.Errorf("bucket1 = %d, want 1", h.Count(1))
	}
	if h.Count(2) != 1 { // 25
		t.Errorf("bucket2 = %d, want 1", h.Count(2))
	}
	if h.Count(4) != 3 { // 49, 50 (overflow), 1e9 (overflow)
		t.Errorf("bucket4 = %d, want 3", h.Count(4))
	}
	if got := h.Share(0); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("share0 = %v", got)
	}
	if h.Buckets() != 5 {
		t.Errorf("buckets = %d", h.Buckets())
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, -1, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmptyShare(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	if h.Share(0) != 0 {
		t.Error("empty histogram share should be 0")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix([]string{"AS1", "AS2", "AS3"})
	m.Add("AS1", "AS1", 10)
	m.Add("AS1", "AS2", 2)
	m.Add("AS2", "AS1", 4)
	m.Add("AS1", "AS2", 6)
	if got := m.At("AS1", "AS2"); got != 8 {
		t.Errorf("At = %v, want 8", got)
	}
	if got := m.CellMean("AS1", "AS2"); got != 4 {
		t.Errorf("CellMean = %v, want 4", got)
	}
	if got := m.CellMean("AS3", "AS3"); got != 0 {
		t.Errorf("empty CellMean = %v, want 0", got)
	}
	labels := m.Labels()
	labels[0] = "mutated"
	if m.Labels()[0] != "AS1" {
		t.Error("Labels returned internal storage")
	}
}

func TestMatrixIntraInterRatio(t *testing.T) {
	m := NewMatrix([]string{"a", "b"})
	// diagonal mean = (10+2)/2 = 6; off-diag mean = (4+2)/2 = 3 → R = 2.
	m.Add("a", "a", 10)
	m.Add("b", "b", 2)
	m.Add("a", "b", 4)
	m.Add("b", "a", 2)
	r, ok := m.IntraInterRatio()
	if !ok {
		t.Fatal("ratio should exist")
	}
	if math.Abs(r-2) > 1e-12 {
		t.Errorf("R = %v, want 2", r)
	}
}

func TestMatrixRatioDegenerate(t *testing.T) {
	m := NewMatrix([]string{"only"})
	m.Add("only", "only", 10)
	if _, ok := m.IntraInterRatio(); ok {
		t.Error("single-AS matrix should have no ratio")
	}
	empty := NewMatrix(nil)
	if _, ok := empty.IntraInterRatio(); ok {
		t.Error("empty matrix should have no ratio")
	}
	zero := NewMatrix([]string{"a", "b"})
	zero.Add("a", "a", 5) // all inter-AS cells zero
	if _, ok := zero.IntraInterRatio(); ok {
		t.Error("zero off-diagonal should have no ratio")
	}
}

func TestMatrixPanics(t *testing.T) {
	assertPanics(t, func() { NewMatrix([]string{"x", "x"}) })
	m := NewMatrix([]string{"a"})
	assertPanics(t, func() { m.Add("nope", "a", 1) })
	assertPanics(t, func() { m.Add("a", "nope", 1) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestPercent(t *testing.T) {
	if got := Percent(25, 100); got != 25 {
		t.Errorf("Percent = %v", got)
	}
	if got := Percent(1, 0); got != 0 {
		t.Errorf("zero-denominator Percent = %v, want 0", got)
	}
	if got := Percent(3, 4); got != 75 {
		t.Errorf("Percent = %v, want 75", got)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i))
	}
}

func BenchmarkSampleMedian(b *testing.B) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
		_ = s.Median()
	}
}
