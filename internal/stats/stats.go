// Package stats provides the small statistical toolkit the analysis layer
// needs: streaming accumulators, exact quantiles over retained samples,
// fixed-width histograms and labelled square matrices (for the Figure-2
// AS-to-AS traffic matrix).
//
// Everything is deterministic and allocation-conscious; nothing here is a
// general statistics library, just the exact operations the paper's tables
// require, implemented carefully.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, sum, min, max, mean and variance of a stream of
// values in O(1) space. The zero value is ready to use. Variance uses
// Welford's online recurrence, which stays numerically stable where the
// naive sum-of-squares formula cancels catastrophically.
type Accumulator struct {
	n        int64
	sum      float64
	min, max float64
	mean, m2 float64
}

// Add folds v into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.n++
	a.sum += v
	delta := v - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (v - a.mean)
}

// N reports the number of values seen.
func (a *Accumulator) N() int64 { return a.n }

// Sum reports the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean reports the arithmetic mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min reports the smallest value seen, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max reports the largest value seen, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Variance reports the unbiased sample variance, or 0 when fewer than two
// values have been seen (a single trial carries no spread information).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr reports the standard error of the mean, StdDev/sqrt(n) — the ±
// half-width printed in every replicated sweep table.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Merge folds another accumulator into a. Merging is associative and
// commutative, which is what lets the parallel runner aggregate per-worker
// partial results in any completion order. Variance merges by the parallel
// (Chan et al.) update.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean = (float64(a.n)*a.mean + float64(b.n)*b.mean) / float64(n)
	a.n = n
	a.sum += b.sum
}

// Sample retains every value for exact quantile queries. For the trace
// volumes this project handles (≤ millions of per-peer aggregates) exact
// retention is cheaper than the complexity of a sketch.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends a value.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// N reports the number of retained values.
func (s *Sample) N() int { return len(s.xs) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) using the nearest-rank method
// on the sorted sample. An empty sample yields 0.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.ensureSorted()
	idx := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.xs) {
		idx = len(s.xs) - 1
	}
	return s.xs[idx]
}

// Median reports the 0.5-quantile. The paper uses the hop-count median as
// the HOP partition threshold (§III-B).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Max reports the largest value, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Min reports the smallest value, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Values returns a copy of the retained values in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Histogram counts values into fixed-width buckets starting at origin.
// Values below origin land in bucket 0; values beyond the last bucket land
// in the overflow (last) bucket.
type Histogram struct {
	origin  float64
	width   float64
	buckets []int64
	total   int64
}

// NewHistogram builds a histogram with n buckets of the given width
// starting at origin. It panics on a non-positive width or bucket count,
// since a silent empty histogram would corrupt downstream percentages.
func NewHistogram(origin, width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("stats: bad histogram shape width=%v n=%d", width, n))
	}
	return &Histogram{origin: origin, width: width, buckets: make([]int64, n)}
}

// Add counts one observation of v.
func (h *Histogram) Add(v float64) {
	idx := int(math.Floor((v - h.origin) / h.width))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.total++
}

// Count reports the tally of bucket i.
func (h *Histogram) Count(i int) int64 { return h.buckets[i] }

// Total reports the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Share reports bucket i's fraction of all observations (0 for an empty
// histogram).
func (h *Histogram) Share(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.buckets[i]) / float64(h.total)
}

// Buckets reports the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Matrix is a labelled square matrix of float64 accumulators, used for the
// Figure-2 per-AS-pair traffic averages.
type Matrix struct {
	labels []string
	index  map[string]int
	sum    []float64
	count  []int64
}

// NewMatrix builds an n×n matrix over the given labels. Duplicate labels
// panic because they would silently merge distinct ASes.
func NewMatrix(labels []string) *Matrix {
	m := &Matrix{
		labels: append([]string(nil), labels...),
		index:  make(map[string]int, len(labels)),
		sum:    make([]float64, len(labels)*len(labels)),
		count:  make([]int64, len(labels)*len(labels)),
	}
	for i, l := range labels {
		if _, dup := m.index[l]; dup {
			panic(fmt.Sprintf("stats: duplicate matrix label %q", l))
		}
		m.index[l] = i
	}
	return m
}

// Labels reports the row/column labels in order.
func (m *Matrix) Labels() []string { return append([]string(nil), m.labels...) }

// Add accumulates v into cell (from, to). Unknown labels panic: an AS that
// was never declared is a bug in the caller's world construction.
func (m *Matrix) Add(from, to string, v float64) {
	i, ok := m.index[from]
	if !ok {
		panic(fmt.Sprintf("stats: unknown matrix label %q", from))
	}
	j, ok := m.index[to]
	if !ok {
		panic(fmt.Sprintf("stats: unknown matrix label %q", to))
	}
	m.sum[i*len(m.labels)+j] += v
	m.count[i*len(m.labels)+j]++
}

// At reports the accumulated sum of cell (from, to).
func (m *Matrix) At(from, to string) float64 {
	return m.sum[m.index[from]*len(m.labels)+m.index[to]]
}

// CellMean reports the mean of observations in cell (from, to), 0 if none.
func (m *Matrix) CellMean(from, to string) float64 {
	idx := m.index[from]*len(m.labels) + m.index[to]
	if m.count[idx] == 0 {
		return 0
	}
	return m.sum[idx] / float64(m.count[idx])
}

// IntraInterRatio reports R, the paper's Figure-2 statistic: the mean of the
// diagonal cell sums divided by the mean of the off-diagonal cell sums.
// It returns (ratio, ok); ok is false when the off-diagonal mean is zero,
// in which case no meaningful ratio exists (e.g. a single-AS world).
func (m *Matrix) IntraInterRatio() (float64, bool) {
	n := len(m.labels)
	if n == 0 {
		return 0, false
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.sum[i*n+j]
			if i == j {
				intra += v
				nIntra++
			} else {
				inter += v
				nInter++
			}
		}
	}
	if nInter == 0 || inter == 0 {
		return 0, false
	}
	meanIntra := intra / float64(nIntra)
	meanInter := inter / float64(nInter)
	return meanIntra / meanInter, true
}

// Percent renders part/whole as a percentage, 0 when whole is 0. It exists
// because every table in the paper is expressed in percentages and the
// zero-denominator convention must be uniform.
func Percent(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
