package dash

// indexHTML is the whole dashboard UI: no frameworks, no external assets,
// one EventSource. Colors follow the repo's chart conventions (see
// internal/plot): neutral surface and recessive grid tones, with status
// carried by the validated categorical palette — blue running, green done,
// red failed — plus a label on every cell so state is never color-alone.
const indexHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>napawine study</title>
<style>
  body { font-family: sans-serif; background: #fcfcfb; color: #0b0b0b; margin: 24px; }
  h1 { font-size: 18px; margin: 0 0 4px; }
  #meta { color: #52514e; font-size: 13px; margin-bottom: 12px; }
  #bar { height: 8px; background: #e7e6e3; border-radius: 4px; overflow: hidden; margin-bottom: 16px; }
  #fill { height: 100%; width: 0; background: #1baf7a; transition: width .3s; }
  #grid { display: flex; flex-wrap: wrap; gap: 8px; }
  .cell { width: 150px; border: 1px solid #e7e6e3; border-radius: 6px; padding: 6px 8px;
          background: #fff; font-size: 11px; }
  .cell .lbl { color: #52514e; white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
  .cell .st { font-weight: 600; }
  .cell.pending  .st { color: #52514e; }
  .cell.running  .st { color: #2a78d6; }
  .cell.done     .st { color: #1baf7a; }
  .cell.failed   .st { color: #e34948; }
  .cell.running  { border-color: #2a78d6; }
  .cell.failed   { border-color: #e34948; }
  svg.spark { display: block; margin-top: 4px; }
  #drops { color: #eb6834; font-size: 12px; margin-top: 12px; }
  #fleet { margin-top: 16px; font-size: 12px; color: #52514e; }
  #fleet div { border-left: 2px solid #e7e6e3; padding-left: 8px; margin: 2px 0; }
  .cell .wk { color: #8a67c8; }
</style>
</head>
<body>
<h1 id="name">napawine study</h1>
<div id="meta">waiting for study…</div>
<div id="bar"><div id="fill"></div></div>
<div id="grid"></div>
<div id="drops"></div>
<div id="fleet"></div>
<script>
"use strict";
const runs = new Map();   // index -> run view
const series = new Map(); // index -> [continuity...]
let study = null, dropped = 0;

function fmtMs(ms) {
  if (ms < 0) return "–";
  const s = Math.round(ms / 1000);
  return s >= 60 ? Math.floor(s / 60) + "m" + (s % 60) + "s" : s + "s";
}

function spark(pts) {
  if (!pts || pts.length < 2) return "";
  const w = 134, h = 20;
  const step = w / (pts.length - 1);
  const path = pts.map((v, i) =>
    (i * step).toFixed(1) + "," + (h - v * (h - 2) - 1).toFixed(1)).join(" ");
  return '<svg class="spark" width="' + w + '" height="' + h + '">' +
    '<polyline points="' + path + '" fill="none" stroke="#2a78d6" stroke-width="2"/></svg>';
}

function renderCell(r) {
  let el = document.getElementById("run-" + r.index);
  if (!el) {
    el = document.createElement("div");
    el.id = "run-" + r.index;
    document.getElementById("grid").appendChild(el);
  }
  el.className = "cell " + r.status;
  el.title = r.label + (r.error ? " — " + r.error : "");
  let detail = r.status;
  if (r.status === "done") detail += " · cont " + r.continuity.toFixed(3);
  if (r.elapsed_ms > 0) detail += " · " + fmtMs(r.elapsed_ms);
  const wk = r.worker ?
    ' <span class="wk">@' + r.worker.replace(/&/g, "&amp;").replace(/</g, "&lt;") + "</span>" : "";
  el.innerHTML = '<div class="lbl">' + (r.index + 1) + "/" + (study ? study.total : "?") +
    " " + r.label.replace(/&/g, "&amp;").replace(/</g, "&lt;") + "</div>" +
    '<div class="st">' + detail + wk + "</div>" + spark(series.get(r.index));
}

function renderStudy(s) {
  study = s;
  document.getElementById("name").textContent = "study " + (s.name || "(unnamed)");
  const fin = s.done + s.failed;
  document.getElementById("fill").style.width =
    (s.total ? 100 * fin / s.total : 0) + "%";
  document.getElementById("meta").textContent =
    fin + "/" + s.total + " finished · " + s.running + " running · " +
    s.failed + " failed · elapsed " + fmtMs(s.elapsed_ms) + " · eta " + fmtMs(s.eta_ms);
}

const es = new EventSource("/events");
es.addEventListener("study", e => renderStudy(JSON.parse(e.data)));
es.addEventListener("run", e => {
  const r = JSON.parse(e.data);
  runs.set(r.index, r);
  renderCell(r);
  fetch("/api/study").then(x => x.json()).then(renderStudy);
});
es.addEventListener("sample", e => {
  const s = JSON.parse(e.data);
  const pts = series.get(s.run) || [];
  pts.push(s.continuity);
  series.set(s.run, pts);
  const r = runs.get(s.run);
  if (r) renderCell(r);
});
es.addEventListener("fleet", e => {
  const n = JSON.parse(e.data);
  const el = document.createElement("div");
  el.textContent = fmtMs(n.t_ms) + " [" + n.kind + "] " + n.text;
  document.getElementById("fleet").appendChild(el);
});
es.addEventListener("drop", e => {
  dropped += JSON.parse(e.data).dropped;
  document.getElementById("drops").textContent =
    dropped + " events dropped on this connection (stream stayed live; refresh to resync)";
});
</script>
</body>
</html>
`
