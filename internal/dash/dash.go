// Package dash serves a live, dependency-free study dashboard over HTTP.
//
// A Server is a study.Observer: wire it into study.Run with WithObserver
// and every grid cell's lifecycle and time-series buckets stream to any
// number of browsers over Server-Sent Events, while JSON endpoints expose
// the same state for scripts (`/api/study`, `/api/runs`, `/api/series`).
// Everything is stdlib: net/http for transport, an embedded HTML page for
// the UI, hand-rolled SSE framing.
//
// Observer callbacks run on the simulation goroutines, so the hot path
// never blocks: each event is marshalled once and offered to every
// subscriber's bounded buffer with a non-blocking send. A slow or stalled
// browser loses events — counted per subscriber and reported on its stream
// as a `drop` notice — never slows the study.
package dash

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// defaultSubBuffer is the per-subscriber event buffer. At one run event per
// cell transition plus one sample per series bucket, a whole mid-size study
// fits; a browser has to stall for a while to start dropping.
const defaultSubBuffer = 256

// runState tracks one grid cell through its lifecycle.
type runState struct {
	Info       study.RunInfo
	Status     string // "pending" | "running" | "done" | "failed"
	Continuity float64
	Err        string
	StartedAt  time.Time
	ElapsedMs  int64
	Samples    []experiment.SeriesSample
}

// Server is the dashboard: an http.Server bound to its listener, the
// study's observed state, and the SSE subscriber set.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	quit chan struct{}
	wg   sync.WaitGroup

	// subBuffer sizes each subscriber's event channel; tests shrink it to
	// force drops without megabytes of traffic.
	subBuffer int

	mu        sync.Mutex
	studyName string
	startedAt time.Time
	runs      []runState
	notes     []noteView
	subs      map[*subscriber]struct{}
}

// New binds the dashboard to addr (host:port; port 0 picks a free one) and
// starts serving. The returned Server has no study yet — BeginStudy
// installs one — but the page and APIs respond immediately.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	s := &Server{
		ln:        ln,
		quit:      make(chan struct{}),
		subBuffer: defaultSubBuffer,
		subs:      make(map[*subscriber]struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/study", s.handleStudy)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/series", s.handleSeries)
	mux.HandleFunc("/api/fleet", s.handleFleet)
	mux.HandleFunc("/events", s.handleEvents)
	s.srv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// Serve returns on Close; anything else would be a programming
		// error surfaced by the first request instead.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr is the bound address, e.g. "127.0.0.1:46213" after ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close tears the dashboard down: wakes every SSE handler, closes the
// listener and all connections, and waits for the handlers to return, so a
// caller observing Close has no dashboard goroutines left.
func (s *Server) Close() error {
	close(s.quit)
	// http.Server.Close (not Shutdown): SSE handlers hold their
	// connections open forever, so graceful shutdown would never finish.
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// BeginStudy installs the study the observer callbacks will report
// against: every grid cell starts pending, enumerated by the same RunInfos
// the study layer hands to observers, so indices always line up.
func (s *Server) BeginStudy(st *study.Study) error {
	infos, err := st.RunInfos()
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.studyName = st.Name
	s.startedAt = time.Now()
	s.runs = make([]runState, len(infos))
	for i, info := range infos {
		s.runs[i] = runState{Info: info, Status: "pending"}
	}
	ev := event("study", s.studyJSONLocked())
	s.mu.Unlock()
	s.broadcast(ev)
	return nil
}

// Note records one fleet-level event (a worker joining, a lease expiring,
// cells restored from a checkpoint) and streams it to every browser. Fleet
// notes sit outside the cell grid: they narrate the machinery executing the
// study, not the study itself. Kind is a short category ("worker", "lease",
// "spool"); text is the human line. Safe for concurrent use.
func (s *Server) Note(kind, text string) {
	s.mu.Lock()
	n := noteView{Kind: kind, Text: text, TMs: time.Since(s.startedAt).Milliseconds()}
	if s.startedAt.IsZero() {
		n.TMs = 0
	}
	s.notes = append(s.notes, n)
	ev := event("fleet", n)
	s.mu.Unlock()
	s.broadcast(ev)
}

// --- study.Observer ---

func (s *Server) OnRunStart(info study.RunInfo) {
	s.mu.Lock()
	if info.Index >= len(s.runs) {
		s.mu.Unlock()
		return
	}
	r := &s.runs[info.Index]
	r.Info = info
	r.Status = "running"
	r.StartedAt = time.Now()
	ev := event("run", s.runJSONLocked(info.Index))
	s.mu.Unlock()
	s.broadcast(ev)
}

func (s *Server) OnRunDone(info study.RunInfo, sum experiment.Summary, err error) {
	s.mu.Lock()
	if info.Index >= len(s.runs) {
		s.mu.Unlock()
		return
	}
	r := &s.runs[info.Index]
	if err != nil {
		r.Status = "failed"
		r.Err = err.Error()
	} else {
		r.Status = "done"
		r.Continuity = sum.MeanContinuity
	}
	if !r.StartedAt.IsZero() {
		r.ElapsedMs = time.Since(r.StartedAt).Milliseconds()
	}
	ev := event("run", s.runJSONLocked(info.Index))
	s.mu.Unlock()
	s.broadcast(ev)
}

func (s *Server) OnSample(info study.RunInfo, sample experiment.SeriesSample) {
	s.mu.Lock()
	if info.Index >= len(s.runs) {
		s.mu.Unlock()
		return
	}
	s.runs[info.Index].Samples = append(s.runs[info.Index].Samples, sample)
	ev := event("sample", sampleJSON(info.Index, sample))
	s.mu.Unlock()
	s.broadcast(ev)
}

// --- JSON views ---

type studyView struct {
	Name      string `json:"name"`
	Total     int    `json:"total"`
	Pending   int    `json:"pending"`
	Running   int    `json:"running"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	ElapsedMs int64  `json:"elapsed_ms"`
	// EtaMs extrapolates the remaining wall time from the mean duration of
	// finished cells; -1 until the first cell finishes.
	EtaMs int64 `json:"eta_ms"`
}

type runView struct {
	Index      int     `json:"index"`
	Label      string  `json:"label"`
	App        string  `json:"app"`
	Strategy   string  `json:"strategy,omitempty"`
	Scenario   string  `json:"scenario,omitempty"`
	Variant    string  `json:"variant,omitempty"`
	Seed       int64   `json:"seed"`
	Worker     string  `json:"worker,omitempty"`
	Status     string  `json:"status"`
	Continuity float64 `json:"continuity"`
	Error      string  `json:"error,omitempty"`
	ElapsedMs  int64   `json:"elapsed_ms"`
	Samples    int     `json:"samples"`
}

// noteView is one fleet note: machinery narration alongside the cell grid.
type noteView struct {
	Kind string `json:"kind"`
	Text string `json:"text"`
	TMs  int64  `json:"t_ms"`
}

type sampleView struct {
	Run        int     `json:"run"`
	TMs        int64   `json:"t_ms"`
	Online     int     `json:"online"`
	Continuity float64 `json:"continuity"`
	IntraASPct float64 `json:"intra_as_pct"`
	VideoKbps  float64 `json:"video_kbps"`
	TrackerUp  bool    `json:"tracker_up"`
}

func (s *Server) studyJSONLocked() studyView {
	v := studyView{Name: s.studyName, Total: len(s.runs), EtaMs: -1}
	var doneMs int64
	for _, r := range s.runs {
		switch r.Status {
		case "running":
			v.Running++
		case "done":
			v.Done++
			doneMs += r.ElapsedMs
		case "failed":
			v.Failed++
			doneMs += r.ElapsedMs
		default:
			v.Pending++
		}
	}
	if !s.startedAt.IsZero() {
		v.ElapsedMs = time.Since(s.startedAt).Milliseconds()
	}
	if fin := v.Done + v.Failed; fin > 0 {
		v.EtaMs = doneMs / int64(fin) * int64(v.Total-fin)
	}
	return v
}

func (s *Server) runJSONLocked(i int) runView {
	r := s.runs[i]
	return runView{
		Index: r.Info.Index, Label: r.Info.Label(),
		App: r.Info.App, Strategy: r.Info.Strategy,
		Scenario: r.Info.Scenario, Variant: r.Info.Variant,
		Seed: r.Info.Seed, Worker: r.Info.Worker, Status: r.Status,
		Continuity: r.Continuity, Error: r.Err,
		ElapsedMs: r.ElapsedMs, Samples: len(r.Samples),
	}
}

func sampleJSON(run int, s experiment.SeriesSample) sampleView {
	return sampleView{
		Run: run, TMs: s.T.Milliseconds(), Online: s.Online,
		Continuity: s.Continuity, IntraASPct: s.IntraASPct,
		VideoKbps: s.VideoKbps, TrackerUp: s.TrackerUp,
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleStudy(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	v := s.studyJSONLocked()
	s.mu.Unlock()
	writeJSON(w, v)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]runView, len(s.runs))
	for i := range s.runs {
		views[i] = s.runJSONLocked(i)
	}
	s.mu.Unlock()
	writeJSON(w, views)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	idx, err := strconv.Atoi(r.URL.Query().Get("run"))
	s.mu.Lock()
	if err != nil || idx < 0 || idx >= len(s.runs) {
		s.mu.Unlock()
		http.Error(w, "bad or missing ?run index", http.StatusBadRequest)
		return
	}
	views := make([]sampleView, len(s.runs[idx].Samples))
	for i, smp := range s.runs[idx].Samples {
		views[i] = sampleJSON(idx, smp)
	}
	s.mu.Unlock()
	writeJSON(w, views)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]noteView, len(s.notes))
	copy(views, s.notes)
	s.mu.Unlock()
	writeJSON(w, views)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
