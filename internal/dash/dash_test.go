package dash

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"napawine/internal/experiment"
	"napawine/internal/study"
)

// miniStudy is a small but real grid: 4 cells with a scenario axis so
// OnSample traffic flows too.
func miniStudy() *study.Study {
	return &study.Study{
		Name:        "dash-mini",
		Description: "dashboard test grid",
		Apps:        []string{"TVAnts"},
		Strategies:  []string{"urgent-random", "rarest"},
		Scenarios:   []study.Scenario{{Name: "steady"}},
		Seeds:       []int64{3, 4},
		Duration:    study.Duration(15 * time.Second),
		PeerFactor:  0.05,
	}
}

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// sseEvents connects to /events and returns received event names on a
// channel until ctx ends; the connection closes when ctx does. A nil
// channel means the connection failed — callers racing server shutdown
// just skip it; test-critical callers check it.
func sseEvents(ctx context.Context, addr string) <-chan string {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/events", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil
	}
	out := make(chan string, 1024)
	go func() {
		defer resp.Body.Close()
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
				select {
				case out <- name:
				default:
				}
			}
		}
	}()
	return out
}

// TestDashboardObservesStudy drives a real study through the server and
// checks the JSON endpoints and the SSE stream agree on the outcome.
func TestDashboardObservesStudy(t *testing.T) {
	s := newServer(t)
	defer s.Close()

	st := miniStudy()
	if err := s.BeginStudy(st); err != nil {
		t.Fatal(err)
	}

	// Pre-run: every cell pending, grid fully enumerated.
	var sv studyView
	getJSON(t, "http://"+s.Addr()+"/api/study", &sv)
	if sv.Name != "dash-mini" || sv.Total != 4 || sv.Pending != 4 {
		t.Fatalf("pre-run study view: %+v", sv)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := sseEvents(ctx, s.Addr())
	if events == nil {
		t.Fatal("could not open the SSE stream")
	}

	if _, err := study.Run(context.Background(), st, study.WithObserver(s)); err != nil {
		t.Fatal(err)
	}

	getJSON(t, "http://"+s.Addr()+"/api/study", &sv)
	if sv.Done != 4 || sv.Failed != 0 || sv.Pending != 0 || sv.Running != 0 {
		t.Fatalf("post-run study view: %+v", sv)
	}
	if sv.EtaMs != 0 {
		t.Errorf("finished study reports eta %d ms, want 0", sv.EtaMs)
	}

	var runs []runView
	getJSON(t, "http://"+s.Addr()+"/api/runs", &runs)
	if len(runs) != 4 {
		t.Fatalf("got %d runs", len(runs))
	}
	for i, r := range runs {
		if r.Index != i || r.Status != "done" || r.Label == "" {
			t.Errorf("run %d malformed: %+v", i, r)
		}
		if r.Samples == 0 {
			t.Errorf("scenario run %d streamed no samples", i)
		}
		var samples []sampleView
		getJSON(t, fmt.Sprintf("http://%s/api/series?run=%d", s.Addr(), i), &samples)
		if len(samples) != r.Samples {
			t.Errorf("run %d: /api/series has %d samples, run view says %d", i, len(samples), r.Samples)
		}
		for _, smp := range samples {
			if smp.Run != i || smp.TMs <= 0 {
				t.Errorf("run %d sample malformed: %+v", i, smp)
			}
		}
	}

	// The live stream saw the study happen: hello snapshot plus per-cell
	// transitions and samples.
	cancel()
	counts := map[string]int{}
	for name := range events {
		counts[name]++
	}
	if counts["study"] == 0 || counts["run"] < 8 || counts["sample"] == 0 {
		t.Errorf("SSE stream incomplete: %v", counts)
	}

	// Bad series queries are 400s, not panics.
	for _, q := range []string{"", "?run=-1", "?run=99", "?run=x"} {
		resp, err := http.Get("http://" + s.Addr() + "/api/series" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("/api/series%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// The index page serves the embedded UI.
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<!doctype html>") {
		t.Error("index page is not the embedded UI")
	}
}

// TestSubscribersAttachDetachMidStudy churns SSE subscribers while a study
// runs and pins the no-leak contract: once the study is over and the
// server closed, the goroutine count returns to its baseline. Run under
// -race this is also the concurrency check on the whole broadcast path.
func TestSubscribersAttachDetachMidStudy(t *testing.T) {
	before := runtime.NumGoroutine()

	s := newServer(t)
	st := miniStudy()
	if err := s.BeginStudy(st); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				if ch := sseEvents(ctx, s.Addr()); ch != nil {
					for range ch {
					}
				}
				cancel()
			}
		}()
	}

	if _, err := study.Run(context.Background(), st, study.WithObserver(s)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Give exiting handlers a beat, then compare against the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestSlowSubscriberNeverBlocks pins the bounded-buffer contract: a
// subscriber that stops reading must not stall broadcasts, and the events
// it misses are counted against it, not silently lost.
func TestSlowSubscriberNeverBlocks(t *testing.T) {
	s := newServer(t)
	defer s.Close()
	s.subBuffer = 4 // tiny buffer so a handful of events overflows it

	st := miniStudy()
	if err := s.BeginStudy(st); err != nil {
		t.Fatal(err)
	}

	// A subscriber whose channel is never drained: once its 4-slot buffer
	// fills, every further event must be counted as dropped, not waited
	// on. (A raw /events connection can hide this behind kernel socket
	// buffering, so the overflow is pinned at the subscriber level.)
	stuck, _ := s.subscribe()
	defer s.unsubscribe(stuck)

	// And a raw connection that sends the request and then never reads,
	// exercising the same path through a real handler.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /events HTTP/1.1\r\nHost: %s\r\nAccept: text/event-stream\r\n\r\n", s.Addr())
	time.Sleep(50 * time.Millisecond) // let the handler register the subscriber

	// Broadcast far more events than the buffer holds; each call must
	// return promptly no matter what any subscriber does.
	ev := event("study", map[string]int{"tick": 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.broadcast(ev)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast blocked on a slow subscriber")
	}

	if got := stuck.dropped.Load(); got != 100-int64(s.subBuffer) {
		t.Errorf("stuck subscriber dropped %d events, want %d", got, 100-s.subBuffer)
	}
}

// TestFleetNotesAndWorkerAttribution pins the distributed-run surface: a
// RunInfo carrying a Worker shows up in the run views, and Server.Note
// events reach /api/fleet, the SSE stream, and late subscribers' snapshots.
func TestFleetNotesAndWorkerAttribution(t *testing.T) {
	s := newServer(t)
	defer s.Close()

	st := miniStudy()
	if err := s.BeginStudy(st); err != nil {
		t.Fatal(err)
	}
	infos, err := st.RunInfos()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := sseEvents(ctx, s.Addr())
	if events == nil {
		t.Fatal("could not open the SSE stream")
	}

	s.Note("worker", "worker w1 joined")
	info := infos[0]
	info.Worker = "w1"
	s.OnRunStart(info)
	s.OnRunDone(info, experiment.Summary{MeanContinuity: 0.9}, nil)
	s.Note("lease", "lease on cell 2 expired; requeued")

	var runs []runView
	getJSON(t, "http://"+s.Addr()+"/api/runs", &runs)
	if runs[0].Worker != "w1" || runs[0].Status != "done" {
		t.Fatalf("run view lost worker attribution: %+v", runs[0])
	}
	if runs[1].Worker != "" {
		t.Fatalf("unattributed cell grew a worker: %+v", runs[1])
	}

	var notes []noteView
	getJSON(t, "http://"+s.Addr()+"/api/fleet", &notes)
	if len(notes) != 2 || notes[0].Kind != "worker" || notes[1].Kind != "lease" ||
		!strings.Contains(notes[1].Text, "requeued") {
		t.Fatalf("fleet notes: %+v", notes)
	}

	// A subscriber arriving after the notes still sees them: the snapshot
	// replays stored notes.
	lateCtx, lateCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer lateCancel()
	late := sseEvents(lateCtx, s.Addr())
	if late == nil {
		t.Fatal("could not open the late SSE stream")
	}
	lateFleet := 0
	for name := range late {
		if name == "fleet" {
			lateFleet++
			if lateFleet == 2 {
				lateCancel()
			}
		}
	}
	if lateFleet != 2 {
		t.Errorf("late subscriber snapshot replayed %d fleet notes, want 2", lateFleet)
	}

	cancel()
	liveFleet := 0
	for name := range events {
		if name == "fleet" {
			liveFleet++
		}
	}
	if liveFleet != 2 {
		t.Errorf("live stream delivered %d fleet events, want 2", liveFleet)
	}
}
