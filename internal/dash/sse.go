package dash

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// subscriber is one open /events connection: a bounded event buffer the
// broadcaster writes without ever blocking, plus a count of the events the
// buffer was too full to take.
type subscriber struct {
	ch      chan []byte
	dropped atomic.Int64
}

// event frames one SSE event: the name line, the JSON payload, a blank
// separator. Marshalling happens here, once per broadcast, never per
// subscriber.
func event(name string, payload any) []byte {
	data, err := json.Marshal(payload)
	if err != nil {
		// Views are plain structs; a marshal failure is a programming
		// error, surfaced to every stream rather than silently dropped.
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + name + "\ndata: " + string(data) + "\n\n")
}

// broadcast offers the framed event to every subscriber. The send is
// non-blocking: a full buffer counts a drop and moves on, so the slowest
// browser in the room costs the simulation nothing.
func (s *Server) broadcast(ev []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
}

// subscribe registers a new subscriber and returns it along with a full
// state snapshot, both produced under one lock acquisition so the snapshot
// and the event stream tile exactly: no event is ever missing between them.
func (s *Server) subscribe() (*subscriber, [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub := &subscriber{ch: make(chan []byte, s.subBuffer)}
	s.subs[sub] = struct{}{}
	snapshot := [][]byte{event("study", s.studyJSONLocked())}
	for i := range s.runs {
		snapshot = append(snapshot, event("run", s.runJSONLocked(i)))
	}
	for _, n := range s.notes {
		snapshot = append(snapshot, event("fleet", n))
	}
	return sub, snapshot
}

func (s *Server) unsubscribe(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// handleEvents is the SSE endpoint. The handler goroutine is the writer:
// it sends the hello snapshot, then relays buffered events until the
// client goes away or the server closes. Drops accumulated while the
// buffer was full are reported in-band as a `drop` event the next time the
// stream catches up, so a consumer can tell a quiet study from a lossy
// connection.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")

	sub, snapshot := s.subscribe()
	defer s.unsubscribe(sub)
	for _, ev := range snapshot {
		if _, err := w.Write(ev); err != nil {
			return
		}
	}
	fl.Flush()

	for {
		select {
		case ev := <-sub.ch:
			if _, err := w.Write(ev); err != nil {
				return
			}
			if n := sub.dropped.Swap(0); n > 0 {
				if _, err := w.Write(event("drop", map[string]int64{"dropped": n})); err != nil {
					return
				}
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}
