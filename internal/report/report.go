// Package report renders the paper's tables and figures as aligned ASCII
// (for terminals and EXPERIMENTS.md) and CSV (for downstream plotting).
package report

import (
	"fmt"
	"io"
	"strings"

	"napawine/internal/plot"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable builds an empty table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; short rows are padded, long rows panic (a column
// mismatch is a bug in the producing code, not data).
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV with a header row. Cells containing
// commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a percentage the way the paper's tables do (one decimal).
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// MeanErr formats a replicated cell as "mean±stderr" with the given number
// of decimals — the convention every aggregated sweep table uses.
func MeanErr(mean, stderr float64, decimals int) string {
	return fmt.Sprintf("%.*f±%.*f", decimals, mean, decimals, stderr)
}

// MeanErrOrDash formats a replicated cell, or "-" when no trial produced a
// measurable value (mirroring PctOrDash for single-run tables).
func MeanErrOrDash(mean, stderr float64, decimals int, valid bool) string {
	if !valid {
		return "-"
	}
	return MeanErr(mean, stderr, decimals)
}

// PctOrDash formats a percentage, or the paper's "-" when the cell is not
// measurable (e.g. BW on the upload side).
func PctOrDash(v float64, valid bool) string {
	if !valid {
		return "-"
	}
	return Pct(v)
}

// Bars renders a horizontal bar chart: one row per label, bar length
// proportional to value, annotated with the numeric value. Used for the
// Figure-1 geographic breakdown.
type Bars struct {
	Title string
	rows  []barRow
	max   float64
}

type barRow struct {
	label string
	value float64
	note  string
}

// NewBars builds an empty chart.
func NewBars(title string) *Bars { return &Bars{Title: title} }

// Add appends one bar.
func (b *Bars) Add(label string, value float64, note string) {
	b.rows = append(b.rows, barRow{label: label, value: value, note: note})
	if value > b.max {
		b.max = value
	}
}

// Render writes the chart, scaling the longest bar to width characters.
func (b *Bars) Render(w io.Writer, width int) error {
	if width <= 0 {
		width = 40
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, r := range b.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	for _, r := range b.rows {
		n := 0
		if b.max > 0 {
			n = int(r.value / b.max * float64(width))
		}
		sb.WriteString(r.label)
		sb.WriteString(strings.Repeat(" ", labelW-len(r.label)))
		sb.WriteString(" |")
		sb.WriteString(strings.Repeat("#", n))
		sb.WriteString(strings.Repeat(" ", width-n))
		sb.WriteString(fmt.Sprintf("| %6.2f", r.value))
		if r.note != "" {
			sb.WriteString("  " + r.note)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Plot converts the chart to its SVG counterpart: the same labels and
// values as vertical bars, so every ASCII Bars artifact (Figure 1's
// breakdowns) has a one-call graphical twin for -svg-out.
func (b *Bars) Plot() *plot.Bar {
	p := &plot.Bar{Title: b.Title, Groups: make([]string, len(b.rows)),
		Series: []plot.BarSeries{{Name: b.Title, Vals: make([]float64, len(b.rows))}}}
	for i, r := range b.rows {
		p.Groups[i] = r.label
		p.Series[0].Vals[i] = r.value
	}
	return p
}

// Matrix renders a labelled square matrix of values (the Figure-2 AS-to-AS
// traffic averages), highlighting the diagonal with brackets as the paper
// highlights intra-AS cells in black.
func Matrix(w io.Writer, title string, labels []string, cell func(i, j int) string) error {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	cells := make([][]string, len(labels))
	for i := range labels {
		cells[i] = make([]string, len(labels))
		for j := range labels {
			s := cell(i, j)
			if i == j {
				s = "[" + s + "]"
			}
			cells[i][j] = s
			if len(s) > width {
				width = len(s)
			}
		}
	}
	pad := func(s string) string { return strings.Repeat(" ", width-len(s)) + s }
	b.WriteString(pad(""))
	for _, l := range labels {
		b.WriteString(" " + pad(l))
	}
	b.WriteByte('\n')
	for i, l := range labels {
		b.WriteString(pad(l))
		for j := range labels {
			b.WriteString(" " + pad(cells[i][j]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
