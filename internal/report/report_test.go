package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "App", "P%", "B%")
	tab.Add("PPLive", "1.3", "12.8")
	tab.Add("SopCast", "3.9", "3.5")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "App") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(out, "SopCast") || !strings.Contains(out, "12.8") {
		t.Error("cells missing")
	}
	// All data lines align: same rune offset for second column.
	h := strings.Index(lines[1], "P%")
	if h < 0 || !strings.HasPrefix(lines[3][h:], "1.3") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.Add("x")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows[0]) != 3 {
		t.Error("short row not padded")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tab := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("long row should panic")
		}
	}()
	tab.Add("1", "2")
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "name", "value")
	tab.Add("plain", "1")
	tab.Add(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "name,value" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[2] != `"with,comma","with""quote"` {
		t.Errorf("csv quoting = %q", lines[2])
	}
}

func TestPct(t *testing.T) {
	if Pct(12.84) != "12.8" {
		t.Errorf("Pct = %q", Pct(12.84))
	}
	if PctOrDash(5, false) != "-" {
		t.Error("invalid cell should dash")
	}
	if PctOrDash(5, true) != "5.0" {
		t.Error("valid cell should format")
	}
}

func TestBars(t *testing.T) {
	bars := NewBars("Geo")
	bars.Add("CN", 62.5, "")
	bars.Add("IT", 3.1, "probe country")
	bars.Add("*", 0, "")
	var b strings.Builder
	if err := bars.Render(&b, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Geo") || !strings.Contains(out, "probe country") {
		t.Error("chart content missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// CN has the longest bar (20 #), the zero row none.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar has marks: %q", lines[3])
	}
}

func TestBarsZeroWidthDefault(t *testing.T) {
	bars := NewBars("")
	bars.Add("x", 1, "")
	var b strings.Builder
	if err := bars.Render(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#") {
		t.Error("default width not applied")
	}
}

func TestMatrix(t *testing.T) {
	labels := []string{"AS1", "AS2"}
	var b strings.Builder
	err := Matrix(&b, "Fig2", labels, func(i, j int) string {
		if i == j {
			return "9.9"
		}
		return "1.1"
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[9.9]") {
		t.Error("diagonal not bracketed")
	}
	if !strings.Contains(out, "1.1") {
		t.Error("off-diagonal missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Errorf("matrix lines = %d:\n%s", len(lines), out)
	}
}
