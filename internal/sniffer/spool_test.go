package sniffer

import (
	"math/rand"
	"testing"

	"napawine/internal/packet"
	"napawine/internal/sim"
)

func TestSpoolSortsBeforeDrain(t *testing.T) {
	var s Spool
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s.Add(rec(rng.Int63n(10000), peerA, probe, 100, packet.Video))
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	c := New(probe)
	var m MemorySink
	c.Attach(&m)
	s.Drain(c) // would panic on regression if unsorted
	if len(m.Records) != 500 {
		t.Fatalf("drained %d", len(m.Records))
	}
	for i := 1; i < len(m.Records); i++ {
		if m.Records[i].TS < m.Records[i-1].TS {
			t.Fatal("drained records not sorted")
		}
	}
	if s.Len() != 0 {
		t.Error("spool not emptied")
	}
}

func TestSpoolStableForEqualTimestamps(t *testing.T) {
	var s Spool
	s.Add(rec(5, peerA, probe, 1, packet.Video))
	s.Add(rec(5, peerB, probe, 2, packet.Video))
	c := New(probe)
	var m MemorySink
	c.Attach(&m)
	s.Drain(c)
	if m.Records[0].Size != 1 || m.Records[1].Size != 2 {
		t.Error("equal-timestamp order not preserved")
	}
}

func TestDrainBefore(t *testing.T) {
	var s Spool
	for _, ts := range []int64{30, 10, 50, 20, 40} {
		s.Add(rec(ts, peerA, probe, 1, packet.Video))
	}
	c := New(probe)
	var m MemorySink
	c.Attach(&m)
	s.DrainBefore(c, 35)
	if len(m.Records) != 3 {
		t.Fatalf("drained %d, want 3", len(m.Records))
	}
	if s.Len() != 2 {
		t.Fatalf("left %d, want 2", s.Len())
	}
	// Remaining records still drain correctly afterwards.
	s.Add(rec(35, peerB, probe, 1, packet.Signaling))
	s.Drain(c)
	if len(m.Records) != 6 {
		t.Fatalf("total drained %d, want 6", len(m.Records))
	}
	for i := 1; i < len(m.Records); i++ {
		if m.Records[i].TS < m.Records[i-1].TS {
			t.Fatal("regression across DrainBefore/Drain boundary")
		}
	}
}

func TestDrainBeforeEmpty(t *testing.T) {
	var s Spool
	c := New(probe)
	s.DrainBefore(c, 100)
	s.Drain(c)
	if c.Count() != 0 {
		t.Error("empty spool should feed nothing")
	}
}

func BenchmarkSpoolDrain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := int64(0)
	for i := 0; i < b.N; i++ {
		var s Spool
		for j := 0; j < 1000; j++ {
			s.Add(rec(base+rng.Int63n(1000), peerA, probe, 100, packet.Video))
		}
		c := New(probe)
		s.Drain(c)
		base += 2000
		_ = sim.Time(base)
	}
}
